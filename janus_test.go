package janus

import (
	"strings"
	"testing"
)

func TestFacadeQuickstart(t *testing.T) {
	f := NewCover(4,
		Product([]int{0, 1, 2, 3}, nil),
		Product(nil, []int{0, 1, 2, 3}))
	res, err := Synthesize(f, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Size != 8 {
		t.Fatalf("size = %d, want 8", res.Size)
	}
	if !res.Assignment.Realizes(res.ISOP) {
		t.Fatal("unverified result")
	}
}

func TestFacadeMinimizeAndDual(t *testing.T) {
	f := NewCover(2,
		Product([]int{0, 1}, nil),
		Product([]int{0}, []int{1}))
	m := Minimize(f)
	if len(m.Cubes) != 1 {
		t.Fatalf("Minimize = %v", m)
	}
	d := Dual(m) // dual of a is a
	if !d.Equiv(m) {
		t.Fatalf("Dual(a) = %v", d)
	}
}

func TestFacadeBounds(t *testing.T) {
	f := NewCover(5,
		Product([]int{2, 3}, nil),
		Product(nil, []int{2, 3}),
		Product([]int{0, 1, 4}, nil),
		Product(nil, []int{0, 1, 4}))
	bs := Bounds(f, true)
	if len(bs) == 0 {
		t.Fatal("no bounds")
	}
	if lb := LowerBound(f, 100); lb != 12 {
		t.Fatalf("LowerBound = %d, want 12", lb)
	}
}

func TestFacadeLatticeFunctions(t *testing.T) {
	g := Grid{M: 3, N: 3}
	if n := len(LatticeFunction(g).Cubes); n != 9 {
		t.Fatalf("|f_3x3| = %d", n)
	}
	if n := len(LatticeDual(g).Cubes); n != 17 {
		t.Fatalf("|dual| = %d", n)
	}
}

func TestFacadePLA(t *testing.T) {
	f, err := ParsePLAString(".i 2\n.o 1\n11 1\n.e\n")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Synthesize(f.Covers[0], Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Size != 2 {
		t.Fatalf("ab should fit 2 switches, got %d", res.Size)
	}
	var sb strings.Builder
	if err := WritePLA(&sb, f); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), ".i 2") {
		t.Fatal("write lost header")
	}
}

func TestFacadeBaselines(t *testing.T) {
	f := NewCover(3,
		Product([]int{0, 1}, nil),
		Product([]int{2}, nil))
	jr, err := Synthesize(f, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for name, run := range map[string]func(Cover, BaselineOptions) (BaselineResult, error){
		"exact":     ExactBaseline,
		"approx":    ApproxBaseline,
		"heuristic": HeuristicBaseline,
	} {
		br, err := run(f, BaselineOptions{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if br.Size < jr.Size {
			t.Fatalf("%s beat JANUS: %d < %d", name, br.Size, jr.Size)
		}
	}
}

func TestFacadeMulti(t *testing.T) {
	fns := []Cover{
		NewCover(3, Product([]int{0, 1}, nil)),
		NewCover(3, Product([]int{2}, []int{0})),
	}
	mr, err := SynthesizeMulti(fns, Options{}, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := mr.Lattice.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeMapOnto(t *testing.T) {
	f := NewCover(4,
		Product([]int{0, 1, 2, 3}, nil),
		Product(nil, []int{0, 1, 2, 3}))
	r, err := MapOnto(f, Grid{M: 4, N: 2}, EncodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Assignment == nil || !r.Assignment.Realizes(Minimize(f)) {
		t.Fatal("MapOnto SAT result must verify")
	}
	r, err = MapOnto(f, Grid{M: 2, N: 2}, EncodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Assignment != nil {
		t.Fatal("2x2 must be infeasible")
	}
}
