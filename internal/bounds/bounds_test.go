package bounds

import (
	"math/rand"
	"testing"

	"github.com/lattice-tools/janus/internal/cube"
	"github.com/lattice-tools/janus/internal/minimize"
)

// fig4 is the paper's bound example f = cd + c'd' + abe + a'b'e' with
// a=0, b=1, c=2, d=3, e=4.
func fig4() cube.Cover {
	return cube.NewCover(5,
		cube.FromLiterals([]int{2, 3}, nil),
		cube.FromLiterals(nil, []int{2, 3}),
		cube.FromLiterals([]int{0, 1, 4}, nil),
		cube.FromLiterals(nil, []int{0, 1, 4}))
}

func fig4Pair() (cube.Cover, cube.Cover) {
	return minimize.AutoDual(fig4())
}

func TestFigure4PaperBounds(t *testing.T) {
	f, d := fig4Pair()
	if len(f.Cubes) != 4 || f.Degree() != 3 {
		t.Fatalf("fig4 ISOP unexpected: %v", f)
	}
	// Paper: DP is 6×4 (dual has 6 products, γ=4).
	if len(d.Cubes) != 6 || d.Degree() != 4 {
		t.Fatalf("fig4 dual ISOP unexpected: %d products degree %d", len(d.Cubes), d.Degree())
	}
	dp, err := DP(f, d)
	if err != nil {
		t.Fatal(err)
	}
	if dp.Grid.M != 6 || dp.Grid.N != 4 {
		t.Fatalf("DP grid = %v, want 6x4", dp.Grid)
	}
	if !dp.Realizes(f) {
		t.Fatal("DP does not realize fig4")
	}
	// Paper: PS is 3×7.
	ps := PS(f)
	if ps.Grid.M != 3 || ps.Grid.N != 7 {
		t.Fatalf("PS grid = %v, want 3x7", ps.Grid)
	}
	if !ps.Realizes(f) {
		t.Fatal("PS does not realize fig4")
	}
	// Paper: DPS is 11×4.
	dps := DPS(d)
	if dps.Grid.M != 11 || dps.Grid.N != 4 {
		t.Fatalf("DPS grid = %v, want 11x4", dps.Grid)
	}
	if !dps.Realizes(f) {
		t.Fatal("DPS does not realize fig4")
	}
	// Paper: IPS achieves 3×5 = 15 switches; our greedy may pack the two
	// long products and the two self-isolating doubles even tighter, so
	// only require size ≤ 15 and verification.
	ips := IPS(f)
	if !ips.Realizes(f) {
		t.Fatal("IPS does not realize fig4")
	}
	if ips.Size() > 15 {
		t.Fatalf("IPS size = %d (%v), want ≤ 15", ips.Size(), ips.Grid)
	}
	// Paper: IDPS achieves 8×4 = 32; require ≤ 32 and verification.
	idps := IDPS(f, d)
	if !idps.Realizes(f) {
		t.Fatal("IDPS does not realize fig4")
	}
	if idps.Size() > 32 {
		t.Fatalf("IDPS size = %d (%v), want ≤ 32", idps.Size(), idps.Grid)
	}
	// Paper: the initial lower bound is 12.
	if lb := LowerBound(f, d, 100); lb != 12 {
		t.Fatalf("LowerBound = %d, want 12", lb)
	}
}

func TestAllBoundsSorted(t *testing.T) {
	f, d := fig4Pair()
	bs := All(f, d, true)
	if len(bs) < 4 {
		t.Fatalf("expected several verified bounds, got %d", len(bs))
	}
	for i := 1; i < len(bs); i++ {
		if bs[i-1].Size() > bs[i].Size() {
			t.Fatal("bounds not sorted by size")
		}
	}
	// Improved bounds must not be worse than the plain set's best.
	plain := All(f, d, false)
	if bs[0].Size() > plain[0].Size() {
		t.Fatalf("improved best %d worse than plain best %d", bs[0].Size(), plain[0].Size())
	}
}

func TestBoundsSingleProduct(t *testing.T) {
	// f = abc: DP is 3×1, PS is 3×1.
	f, d := minimize.ISOPDual(cube.NewCover(3, cube.FromLiterals([]int{0, 1, 2}, nil)))
	dp, err := DP(f, d)
	if err != nil {
		t.Fatal(err)
	}
	if !dp.Realizes(f) {
		t.Fatal("DP wrong for abc")
	}
	if dp.Grid.M != 3 || dp.Grid.N != 1 {
		t.Fatalf("DP grid = %v", dp.Grid)
	}
	ps := PS(f)
	if ps.Grid.N != 1 || !ps.Realizes(f) {
		t.Fatalf("PS wrong for abc: %v", ps.Grid)
	}
	for _, b := range All(f, d, true) {
		if !b.Assignment.Realizes(f) {
			t.Fatalf("%s bound unverified", b.Name)
		}
	}
}

func TestBoundsSingleLiteralProducts(t *testing.T) {
	// f = a + b + c (all singles): IPS packs them as 1×3 at best.
	f, d := minimize.ISOPDual(cube.NewCover(3,
		cube.FromLiterals([]int{0}, nil),
		cube.FromLiterals([]int{1}, nil),
		cube.FromLiterals([]int{2}, nil)))
	ips := IPS(f)
	if !ips.Realizes(f) {
		t.Fatal("IPS wrong for a+b+c")
	}
	if ips.Size() > 3 {
		t.Fatalf("IPS size = %d, want ≤ 3", ips.Size())
	}
	dps := DPS(d)
	if !dps.Realizes(f) {
		t.Fatal("DPS wrong for a+b+c")
	}
}

func TestLowerBoundSimple(t *testing.T) {
	// Single product abc: lower bound should be 3 (a 3×1 column).
	f, d := minimize.ISOPDual(cube.NewCover(3, cube.FromLiterals([]int{0, 1, 2}, nil)))
	if lb := LowerBound(f, d, 50); lb != 3 {
		t.Fatalf("LowerBound(abc) = %d, want 3", lb)
	}
	// Two disjoint degree-4 products (Fig. 1): minimum is 8 (4×2); the
	// structural lower bound must not exceed it.
	f2, d2 := minimize.ISOPDual(cube.NewCover(4,
		cube.FromLiterals([]int{0, 1, 2, 3}, nil),
		cube.FromLiterals(nil, []int{0, 1, 2, 3})))
	lb := LowerBound(f2, d2, 50)
	if lb > 8 {
		t.Fatalf("LowerBound(fig1) = %d, want ≤ 8", lb)
	}
	if lb < 1 {
		t.Fatal("nonsense lower bound")
	}
}

func randomFunc(r *rand.Rand, n, k int) cube.Cover {
	f := cube.Zero(n)
	for i := 0; i < k; i++ {
		var c cube.Cube
		for v := 0; v < n; v++ {
			switch r.Intn(3) {
			case 0:
				c = c.WithPos(v)
			case 1:
				c = c.WithNeg(v)
			}
		}
		if c.NumLiterals() == 0 {
			continue
		}
		f.Cubes = append(f.Cubes, c)
	}
	return f
}

// TestRandomBoundsAlwaysVerify is the load-bearing property: every bound
// construction must produce a lattice that implements the target exactly,
// for arbitrary (non-constant) functions.
func TestRandomBoundsAlwaysVerify(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 60; trial++ {
		raw := randomFunc(rng, 5, 4)
		f := minimize.ISOP(raw)
		if f.IsZero() || f.IsOne() {
			continue
		}
		d := minimize.ISOP(f.Dual())
		bs := All(f, d, true)
		if len(bs) == 0 {
			t.Fatalf("trial %d: no verified bounds for %v", trial, f)
		}
		names := map[string]bool{}
		for _, b := range bs {
			names[b.Name] = true
		}
		// DP, PS and DPS are unconditional constructions and must always
		// verify.
		for _, want := range []string{"DP", "PS", "DPS"} {
			if !names[want] {
				t.Fatalf("trial %d: bound %s missing for %v", trial, want, f)
			}
		}
		lb := LowerBound(f, d, bs[0].Size()+1)
		if lb > bs[0].Size() {
			t.Fatalf("trial %d: lb %d exceeds ub %d", trial, lb, bs[0].Size())
		}
	}
}

func TestPadBlockRows(t *testing.T) {
	f, _ := minimize.ISOPDual(cube.NewCover(2, cube.FromLiterals([]int{0, 1}, nil)))
	ps := PS(f) // 2×1
	padded, ok := padBlockRows(ps, 4)
	if !ok || padded.Grid.M != 4 {
		t.Fatal("padBlockRows failed")
	}
	if !padded.Realizes(f) {
		t.Fatal("row padding changed the function")
	}
	if _, ok := padBlockRows(padded, 2); ok {
		t.Fatal("shrinking must be rejected")
	}
}

func TestPadBlockCols(t *testing.T) {
	f, d := minimize.ISOPDual(cube.NewCover(2, cube.FromLiterals([]int{0, 1}, nil)))
	dps := DPS(d)
	padded, ok := padBlockCols(dps, dps.Grid.N+2)
	if !ok {
		t.Fatal("padBlockCols failed")
	}
	if !padded.Realizes(f) {
		t.Fatal("column padding changed the function")
	}
}
