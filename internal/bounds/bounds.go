// Package bounds computes the initial lower and upper bounds of the
// lattice synthesis problem (Section III-B of the paper).
//
// The lower bound walks lattice sizes upward until some m×n factorization
// passes the structural check on the target and its dual. Upper bounds are
// constructive: the dual production method DP [Altun & Riedel 2012], the
// product separation method PS [Gange et al. 2014], the dual product
// separation method DPS [Morgül & Altun], and the paper's improved
// variants IPS and IDPS that reclaim isolation columns/rows. Every
// construction returned by this package has been verified against the
// target's truth table by lattice connectivity simulation; improved
// variants fall back tier by tier to the plain constructions when a rule
// application does not verify on a pathological input.
package bounds

import (
	"errors"
	"fmt"
	"sort"

	"github.com/lattice-tools/janus/internal/cube"
	"github.com/lattice-tools/janus/internal/encode"
	"github.com/lattice-tools/janus/internal/lattice"
	"github.com/lattice-tools/janus/internal/minimize"
)

// Bound is a named, verified upper-bound construction.
type Bound struct {
	Name       string
	Assignment *lattice.Assignment
}

// Size returns the number of switches of the bound's lattice.
func (b Bound) Size() int { return b.Assignment.Size() }

// Grid returns the bound's lattice dimensions.
func (b Bound) Grid() lattice.Grid { return b.Assignment.Grid }

// literalEntries lists a cube's literals as lattice entries in variable
// order.
func literalEntries(c cube.Cube) []lattice.Entry {
	var es []lattice.Entry
	for v := 0; v < cube.MaxVars; v++ {
		bit := uint64(1) << uint(v)
		if c.Pos&bit != 0 {
			es = append(es, lattice.Entry{Kind: lattice.PosVar, Var: v})
		}
		if c.Neg&bit != 0 {
			es = append(es, lattice.Entry{Kind: lattice.NegVar, Var: v})
		}
	}
	return es
}

// sharedLiteral returns a literal common to both cubes.
func sharedLiteral(a, b cube.Cube) (lattice.Entry, bool) {
	if m := a.Pos & b.Pos; m != 0 {
		return lattice.Entry{Kind: lattice.PosVar, Var: lowBit(m)}, true
	}
	if m := a.Neg & b.Neg; m != 0 {
		return lattice.Entry{Kind: lattice.NegVar, Var: lowBit(m)}, true
	}
	return lattice.Entry{}, false
}

func lowBit(m uint64) int {
	for v := 0; v < 64; v++ {
		if m&(1<<uint(v)) != 0 {
			return v
		}
	}
	return -1
}

// ErrNoSharedLiteral is returned by DP when a product of the target and a
// product of the dual share no literal, which contradicts duality and
// indicates the two covers do not describe dual functions.
var ErrNoSharedLiteral = errors.New("bounds: target and dual products share no literal")

// DP builds the dual production bound [3]: an m×n lattice with n the
// number of target products (columns) and m the number of dual products
// (rows); cell (i,j) carries a literal shared by target product j and dual
// product i.
func DP(target, targetDual cube.Cover) (*lattice.Assignment, error) {
	n := len(target.Cubes)
	m := len(targetDual.Cubes)
	if n == 0 || m == 0 {
		return nil, errors.New("bounds: DP needs non-constant target")
	}
	a := lattice.NewAssignment(lattice.Grid{M: m, N: n})
	for i, d := range targetDual.Cubes {
		for j, p := range target.Cubes {
			e, ok := sharedLiteral(p, d)
			if !ok {
				return nil, fmt.Errorf("%w: product %d, dual %d", ErrNoSharedLiteral, j, i)
			}
			a.Set(i, j, e)
		}
	}
	return a, nil
}

// PS builds the product separation bound [6]: target products on columns
// padded with constant 1, separated by constant-0 isolation columns,
// giving a δ×(2n−1) lattice.
func PS(target cube.Cover) *lattice.Assignment {
	delta := target.Degree()
	n := len(target.Cubes)
	g := lattice.Grid{M: delta, N: 2*n - 1}
	a := lattice.NewAssignment(g)
	for j, p := range target.Cubes {
		col := 2 * j
		for r, e := range literalEntries(p) {
			a.Set(r, col, e)
		}
		for r := p.NumLiterals(); r < delta; r++ {
			a.Set(r, col, lattice.Entry{Kind: lattice.Const1})
		}
		// Isolation columns stay at the zero value Const0.
	}
	return a
}

// DPS builds the dual product separation bound [11]: dual products on rows
// padded with constant 0, separated by constant-1 isolation rows, giving a
// (2m−1)×γ lattice.
func DPS(targetDual cube.Cover) *lattice.Assignment {
	gamma := targetDual.Degree()
	m := len(targetDual.Cubes)
	g := lattice.Grid{M: 2*m - 1, N: gamma}
	a := lattice.NewAssignment(g)
	for i, d := range targetDual.Cubes {
		row := 2 * i
		for c, e := range literalEntries(d) {
			a.Set(row, c, e)
		}
		// Padding cells stay Const0.
		if row+1 < g.M {
			for c := 0; c < gamma; c++ {
				a.Set(row+1, c, lattice.Entry{Kind: lattice.Const1})
			}
		}
	}
	return a
}

// pairScanLimit bounds the quadratic rule-(iii) pairing scan; beyond this
// many long products the scan (one logic minimization per candidate pair)
// would dominate the whole synthesis.
const pairScanLimit = 24

// ipsTier parameterizes the IPS assembly aggressiveness.
type ipsTier struct {
	usePairs       bool // rule (iii): merge two long products on a DP block
	doublesSelf    bool // rule (ii): two-literal products need no isolation
	singlesIsolate bool // rule (i): single-literal products act as isolators
}

var ipsTiers = []ipsTier{
	{true, true, true},
	{false, true, true},
	{false, false, true},
	{false, false, false}, // equivalent to plain PS
}

// column is one assembled lattice column plus its isolation behaviour.
type column struct {
	entries  []lattice.Entry // length = delta
	isolates bool            // safe to stand between two needy columns
	needy    bool            // requires isolation from needy neighbours
}

// IPS builds the improved product separation bound (Section III-B). The
// returned assignment is verified; tiers of the improvement rules are
// dropped until verification succeeds, bottoming out at plain PS.
func IPS(target cube.Cover) *lattice.Assignment {
	for _, tier := range ipsTiers {
		if a := buildIPS(target, tier); a != nil && a.Realizes(target) {
			return a
		}
	}
	return PS(target) // unreachable in practice; PS always verifies
}

func buildIPS(target cube.Cover, tier ipsTier) *lattice.Assignment {
	delta := target.Degree()
	if delta == 0 {
		return nil
	}
	var singles, doubles, longs []cube.Cube
	for _, p := range target.Cubes {
		switch p.NumLiterals() {
		case 1:
			singles = append(singles, p)
		case 2:
			doubles = append(doubles, p)
		default:
			longs = append(longs, p)
		}
	}
	if !tier.doublesSelf {
		longs = append(longs, doubles...)
		doubles = nil
	}
	if !tier.singlesIsolate {
		longs = append(longs, singles...)
		singles = nil
	}
	// Deterministic order: big products first.
	sort.Slice(longs, func(i, j int) bool { return longs[j].Less(longs[i]) })

	// Rule (iii): pair long products whose two-product sub-function has a
	// dual with at most delta products; realize the pair with DP on a
	// delta×2 block. The pairing scan is quadratic with a minimization per
	// pair, so it is skipped for covers beyond pairScanLimit products.
	type pairBlock struct{ cols [2][]lattice.Entry }
	var pairBlocks []pairBlock
	if len(longs) > pairScanLimit {
		tier.usePairs = false
	}
	if tier.usePairs {
		used := make([]bool, len(longs))
		var rest []cube.Cube
		for i := 0; i < len(longs); i++ {
			if used[i] {
				continue
			}
			paired := false
			for j := i + 1; j < len(longs) && !paired; j++ {
				if used[j] {
					continue
				}
				sub := cube.NewCover(target.N, longs[i], longs[j])
				subDual := minimize.Auto(sub.Dual())
				if len(subDual.Cubes) > delta {
					continue
				}
				dp, err := DP(sub, subDual)
				if err != nil {
					continue
				}
				blk, ok := padBlockRows(dp, delta)
				if !ok || !blk.Realizes(sub) {
					continue
				}
				var pb pairBlock
				for c := 0; c < 2; c++ {
					col := make([]lattice.Entry, delta)
					for r := 0; r < delta; r++ {
						col[r] = blk.At(r, c)
					}
					pb.cols[c] = col
				}
				pairBlocks = append(pairBlocks, pb)
				used[i], used[j] = true, true
				paired = true
			}
			if !paired {
				rest = append(rest, longs[i])
				used[i] = true
			}
		}
		longs = rest
	}

	// Column factories.
	longCol := func(p cube.Cube) column {
		es := make([]lattice.Entry, delta)
		lits := literalEntries(p)
		for r := 0; r < delta; r++ {
			if r < len(lits) {
				es[r] = lits[r]
			} else {
				es[r] = lattice.Entry{Kind: lattice.Const1}
			}
		}
		return column{entries: es, needy: true}
	}
	doubleCol := func(p cube.Cube) column {
		lits := literalEntries(p)
		es := make([]lattice.Entry, delta)
		for r := 0; r < delta-1; r++ {
			es[r] = lits[0]
		}
		es[delta-1] = lits[1]
		return column{entries: es, isolates: true}
	}
	singleCol := func(p cube.Cube) column {
		lits := literalEntries(p)
		es := make([]lattice.Entry, delta)
		for r := 0; r < delta; r++ {
			es[r] = lits[0]
		}
		return column{entries: es, isolates: true}
	}
	zeroCol := func() column {
		return column{entries: make([]lattice.Entry, delta), isolates: true}
	}

	// Needy units: pair blocks (two needy columns glued together) and long
	// columns. A crossing path through a single-product column always picks
	// up that product's literal and stays an implicant, so single columns
	// are free isolators anywhere. Double columns are safe next to each
	// other (every path reaching the bottom picks up a complete double) but
	// not next to needy units, so they form one trailing group behind a
	// separator. Anything else needs a constant-0 column.
	var units [][]column
	for _, pb := range pairBlocks {
		units = append(units, []column{
			{entries: pb.cols[0], needy: true},
			{entries: pb.cols[1], needy: true},
		})
	}
	for _, p := range longs {
		units = append(units, []column{longCol(p)})
	}
	var isolators []column
	for _, p := range singles {
		isolators = append(isolators, singleCol(p))
	}
	var doubleGroup []column
	for _, p := range doubles {
		doubleGroup = append(doubleGroup, doubleCol(p))
	}

	var cols []column
	sepIdx := 0
	sep := func() column {
		if sepIdx < len(isolators) {
			c := isolators[sepIdx]
			sepIdx++
			return c
		}
		return zeroCol()
	}
	for i, u := range units {
		if i > 0 {
			cols = append(cols, sep())
		}
		cols = append(cols, u...)
	}
	if len(doubleGroup) > 0 {
		if len(cols) > 0 {
			cols = append(cols, sep())
		}
		cols = append(cols, doubleGroup...)
	}
	// Remaining single-product columns are safe anywhere; append them.
	for ; sepIdx < len(isolators); sepIdx++ {
		cols = append(cols, isolators[sepIdx])
	}
	if len(cols) == 0 {
		return nil
	}
	a := lattice.NewAssignment(lattice.Grid{M: delta, N: len(cols)})
	for c, col := range cols {
		for r := 0; r < delta; r++ {
			a.Set(r, c, col.entries[r])
		}
	}
	return a
}

// padBlockRows stretches an assignment to the requested number of rows by
// duplicating its last row, which preserves the top–bottom function.
func padBlockRows(a *lattice.Assignment, rows int) (*lattice.Assignment, bool) {
	if a.Grid.M > rows {
		return nil, false
	}
	if a.Grid.M == rows {
		return a, true
	}
	b := lattice.NewAssignment(lattice.Grid{M: rows, N: a.Grid.N})
	for r := 0; r < rows; r++ {
		src := r
		if src >= a.Grid.M {
			src = a.Grid.M - 1
		}
		for c := 0; c < a.Grid.N; c++ {
			b.Set(r, c, a.At(src, c))
		}
	}
	return b, true
}

// padBlockCols stretches an assignment to the requested number of columns
// by duplicating its last column.
func padBlockCols(a *lattice.Assignment, cols int) (*lattice.Assignment, bool) {
	if a.Grid.N > cols {
		return nil, false
	}
	if a.Grid.N == cols {
		return a, true
	}
	b := lattice.NewAssignment(lattice.Grid{M: a.Grid.M, N: cols})
	for c := 0; c < cols; c++ {
		src := c
		if src >= a.Grid.N {
			src = a.Grid.N - 1
		}
		for r := 0; r < a.Grid.M; r++ {
			b.Set(r, c, a.At(r, src))
		}
	}
	return b, true
}

// IDPS builds the improved dual product separation bound: the row-wise
// mirror of IPS operating on the dual products, with constant-1 isolation
// rows reclaimed by the mirrored rules. Verified with tier fallback down
// to plain DPS.
func IDPS(target, targetDual cube.Cover) *lattice.Assignment {
	for _, tier := range ipsTiers {
		if a := buildIDPS(target, targetDual, tier); a != nil && a.Realizes(target) {
			return a
		}
	}
	return DPS(targetDual)
}

func buildIDPS(target, targetDual cube.Cover, tier ipsTier) *lattice.Assignment {
	gamma := targetDual.Degree()
	if gamma == 0 {
		return nil
	}
	var singles, doubles, longs []cube.Cube
	for _, d := range targetDual.Cubes {
		switch d.NumLiterals() {
		case 1:
			singles = append(singles, d)
		case 2:
			doubles = append(doubles, d)
		default:
			longs = append(longs, d)
		}
	}
	if !tier.doublesSelf {
		longs = append(longs, doubles...)
		doubles = nil
	}
	if !tier.singlesIsolate {
		longs = append(longs, singles...)
		singles = nil
	}
	sort.Slice(longs, func(i, j int) bool { return longs[j].Less(longs[i]) })

	type pairBlock struct{ rows [2][]lattice.Entry }
	var pairBlocks []pairBlock
	if len(longs) > pairScanLimit {
		tier.usePairs = false
	}
	if tier.usePairs {
		used := make([]bool, len(longs))
		var rest []cube.Cube
		for i := 0; i < len(longs); i++ {
			if used[i] {
				continue
			}
			paired := false
			for j := i + 1; j < len(longs) && !paired; j++ {
				if used[j] {
					continue
				}
				// Sub-function whose dual cover is the two clauses: the
				// conjunction of the clauses, i.e. dual of (p + q).
				subDualCover := cube.NewCover(target.N, longs[i], longs[j])
				sub := minimize.Auto(subDualCover.Dual())
				if len(sub.Cubes) > gamma {
					continue
				}
				dp, err := DP(sub, subDualCover)
				if err != nil {
					continue
				}
				blk, ok := padBlockCols(dp, gamma)
				if !ok || blk.Grid.M != 2 || !blk.Realizes(sub) {
					continue
				}
				var pb pairBlock
				for r := 0; r < 2; r++ {
					row := make([]lattice.Entry, gamma)
					for c := 0; c < gamma; c++ {
						row[c] = blk.At(r, c)
					}
					pb.rows[r] = row
				}
				pairBlocks = append(pairBlocks, pb)
				used[i], used[j] = true, true
				paired = true
			}
			if !paired {
				rest = append(rest, longs[i])
				used[i] = true
			}
		}
		longs = rest
	}

	type row struct {
		entries []lattice.Entry
		needy   bool
	}
	longRow := func(d cube.Cube) row {
		es := make([]lattice.Entry, gamma)
		lits := literalEntries(d)
		for c := 0; c < gamma; c++ {
			if c < len(lits) {
				es[c] = lits[c]
			} // padding stays Const0
		}
		return row{entries: es, needy: true}
	}
	doubleRow := func(d cube.Cube) row {
		lits := literalEntries(d)
		es := make([]lattice.Entry, gamma)
		for c := 0; c < gamma-1; c++ {
			es[c] = lits[0]
		}
		es[gamma-1] = lits[1]
		return row{entries: es}
	}
	singleRow := func(d cube.Cube) row {
		lits := literalEntries(d)
		es := make([]lattice.Entry, gamma)
		for c := 0; c < gamma; c++ {
			es[c] = lits[0]
		}
		return row{entries: es}
	}
	oneRow := func() row {
		es := make([]lattice.Entry, gamma)
		for c := 0; c < gamma; c++ {
			es[c] = lattice.Entry{Kind: lattice.Const1}
		}
		return row{entries: es}
	}

	// Mirror of the IPS assembly: single-clause rows isolate anywhere,
	// double-clause rows are safe among themselves, needy rows (pair blocks
	// and long clauses) are separated by singles or constant-1 rows.
	var units [][]row
	for _, pb := range pairBlocks {
		units = append(units, []row{
			{entries: pb.rows[0], needy: true},
			{entries: pb.rows[1], needy: true},
		})
	}
	for _, d := range longs {
		units = append(units, []row{longRow(d)})
	}
	var isolators []row
	for _, d := range singles {
		isolators = append(isolators, singleRow(d))
	}
	var doubleGroup []row
	for _, d := range doubles {
		doubleGroup = append(doubleGroup, doubleRow(d))
	}

	var rows []row
	sepIdx := 0
	sep := func() row {
		if sepIdx < len(isolators) {
			r := isolators[sepIdx]
			sepIdx++
			return r
		}
		return oneRow()
	}
	for i, u := range units {
		if i > 0 {
			rows = append(rows, sep())
		}
		rows = append(rows, u...)
	}
	if len(doubleGroup) > 0 {
		if len(rows) > 0 {
			rows = append(rows, sep())
		}
		rows = append(rows, doubleGroup...)
	}
	for ; sepIdx < len(isolators); sepIdx++ {
		rows = append(rows, isolators[sepIdx])
	}
	if len(rows) == 0 {
		return nil
	}
	a := lattice.NewAssignment(lattice.Grid{M: len(rows), N: gamma})
	for r, rw := range rows {
		for c := 0; c < gamma; c++ {
			a.Set(r, c, rw.entries[c])
		}
	}
	return a
}

// LowerBound walks lattice sizes upward from 1 and returns the first size
// for which some factorization passes the structural check on the target
// and its dual, capped at max (which is returned when nothing smaller
// passes).
func LowerBound(target, targetDual cube.Cover, max int) int {
	for s := 1; s < max; s++ {
		for m := 1; m <= s; m++ {
			if s%m != 0 {
				continue
			}
			n := s / m
			if encode.StructuralCheck(target, targetDual, lattice.Grid{M: m, N: n}) {
				return s
			}
		}
	}
	return max
}

// All runs every bound construction, verifies each against the target, and
// returns the verified bounds sorted by size. improved selects whether the
// IPS/IDPS variants are included (the paper's "nub" vs "oub").
func All(target, targetDual cube.Cover, improved bool) []Bound {
	if target.IsZero() || target.IsOne() {
		a := lattice.NewAssignment(lattice.Grid{M: 1, N: 1})
		if target.IsOne() {
			a.Entries[0] = lattice.Entry{Kind: lattice.Const1}
		}
		return []Bound{{Name: "const", Assignment: a}}
	}
	var bs []Bound
	add := func(name string, a *lattice.Assignment, err error) {
		if err != nil || a == nil {
			return
		}
		if !a.Realizes(target) {
			return
		}
		bs = append(bs, Bound{Name: name, Assignment: a})
	}
	dp, err := DP(target, targetDual)
	add("DP", dp, err)
	add("PS", PS(target), nil)
	add("DPS", DPS(targetDual), nil)
	if improved {
		add("IPS", IPS(target), nil)
		add("IDPS", IDPS(target, targetDual), nil)
	}
	sort.SliceStable(bs, func(i, j int) bool { return bs[i].Size() < bs[j].Size() })
	return bs
}
