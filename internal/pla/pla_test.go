package pla

import (
	"strings"
	"testing"

	"github.com/lattice-tools/janus/internal/cube"
)

const sample = `
# a tiny two-output PLA
.i 4
.o 2
.ilb a b c d
.ob f g
.p 3
1--0 10
01-- 11
-111 01
.e
`

func TestParseSample(t *testing.T) {
	f, err := ParseString(sample)
	if err != nil {
		t.Fatal(err)
	}
	if f.Inputs != 4 || f.Outputs != 2 {
		t.Fatalf("dims = %d/%d", f.Inputs, f.Outputs)
	}
	if len(f.Covers[0].Cubes) != 2 || len(f.Covers[1].Cubes) != 2 {
		t.Fatalf("cover sizes = %d/%d", len(f.Covers[0].Cubes), len(f.Covers[1].Cubes))
	}
	want := cube.FromLiterals([]int{0}, []int{3}) // 1--0
	if f.Covers[0].Cubes[0] != want {
		t.Fatalf("first cube = %v", f.Covers[0].Cubes[0])
	}
	if f.InputNames[0] != "a" || f.OutputNames[1] != "g" {
		t.Fatal("names lost")
	}
}

func TestParsePackedRows(t *testing.T) {
	f, err := ParseString(".i 2\n.o 1\n111\n.e\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Covers[0].Cubes) != 1 || f.Covers[0].Cubes[0] != cube.FromLiterals([]int{0, 1}, nil) {
		t.Fatalf("packed row parse wrong: %v", f.Covers[0])
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		".i 2\n.o 1\n1 1\n.e\n",    // wrong input width
		".i 2\n.o 1\nx- 1\n.e\n",   // bad char
		"11 1\n.e\n",               // cube before .i/.o
		".i 2\n.o 1\n.magic\n.e\n", // unknown directive
		".i 99\n.o 1\n.e\n",        // too many inputs
		".i 2\n.o 1\n-- 1 extra\n", // width mismatch after join
	}
	for i, s := range cases {
		if _, err := ParseString(s); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	f, err := ParseString(sample)
	if err != nil {
		t.Fatal(err)
	}
	text := Format(f)
	g, err := ParseString(text)
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, text)
	}
	for o := range f.Covers {
		if !f.Covers[o].Equiv(g.Covers[o]) {
			t.Fatalf("output %d drifted after round trip", o)
		}
	}
}

func TestMissingHeader(t *testing.T) {
	if _, err := ParseString("\n"); err == nil {
		t.Fatal("empty file should fail")
	}
}

func TestDefaultNames(t *testing.T) {
	f, err := ParseString(".i 2\n.o 1\n-- 1\n.e\n")
	if err != nil {
		t.Fatal(err)
	}
	if f.InputNames[1] != "x1" || f.OutputNames[0] != "f0" {
		t.Fatalf("default names wrong: %v %v", f.InputNames, f.OutputNames)
	}
	if !f.Covers[0].IsOne() {
		t.Fatal("dash-only cube should be constant 1")
	}
}

func TestWriteSharedCubes(t *testing.T) {
	// Two outputs sharing one cube must produce a single row with "11".
	f := &File{Inputs: 2, Outputs: 2}
	c := cube.FromLiterals([]int{0}, nil)
	f.Covers = []cube.Cover{
		cube.NewCover(2, c),
		cube.NewCover(2, c),
	}
	f, err := f.finish()
	if err != nil {
		t.Fatal(err)
	}
	text := Format(f)
	if !strings.Contains(text, "1- 11") {
		t.Fatalf("shared cube not merged:\n%s", text)
	}
}
