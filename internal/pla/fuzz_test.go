package pla

import (
	"strings"
	"testing"
)

// FuzzParse checks the PLA parser never panics and that accepted files
// round-trip through Write/Parse to equivalent covers.
func FuzzParse(f *testing.F) {
	f.Add(".i 2\n.o 1\n11 1\n.e\n")
	f.Add(".i 4\n.o 2\n.ilb a b c d\n.ob f g\n1--0 10\n01-- 11\n.e\n")
	f.Add(".i 1\n.o 1\n- 1\n")
	f.Add("p cnf nonsense")
	f.Add(".i 3\n.o 1\n1-1 1\n0-0 1\n")
	f.Fuzz(func(t *testing.T, input string) {
		pf, err := ParseString(input)
		if err != nil {
			return
		}
		text := Format(pf)
		back, err := ParseString(text)
		if err != nil {
			t.Fatalf("rewritten PLA does not parse: %v\n%s", err, text)
		}
		if back.Inputs != pf.Inputs || back.Outputs != pf.Outputs {
			t.Fatal("round trip changed dimensions")
		}
		for o := range pf.Covers {
			if pf.Inputs <= 12 && !pf.Covers[o].Equiv(back.Covers[o]) {
				t.Fatalf("output %d drifted", o)
			}
		}
	})
}

func TestFuzzSeedsViaUnit(t *testing.T) {
	// Keep the seed corpus exercised in normal test runs too.
	for _, s := range []string{
		".i 2\n.o 1\n11 1\n.e\n",
		".i 1\n.o 1\n- 1\n",
	} {
		if _, err := ParseString(s); err != nil {
			t.Fatalf("seed %q failed: %v", s, err)
		}
	}
	if _, err := ParseString(strings.Repeat("-", 100)); err == nil {
		t.Fatal("garbage accepted")
	}
}
