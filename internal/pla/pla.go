// Package pla reads and writes Berkeley PLA files (the espresso input
// format), the interchange format for the benchmark functions JANUS
// consumes.
//
// Supported directives: .i .o .p .ilb .ob .type (f and fr) .e; input
// characters 0, 1, - and output characters 0, 1, ~ (treated as 0). Each
// output bit becomes one cube.Cover.
package pla

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"github.com/lattice-tools/janus/internal/cube"
)

// File is a parsed PLA: one cover per output plus the declared names.
type File struct {
	Inputs      int
	Outputs     int
	InputNames  []string
	OutputNames []string
	Covers      []cube.Cover
}

// Parse reads a PLA file.
func Parse(r io.Reader) (*File, error) {
	f := &File{Inputs: -1, Outputs: -1}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if i := strings.IndexByte(text, '#'); i >= 0 {
			text = strings.TrimSpace(text[:i])
		}
		if text == "" {
			continue
		}
		fields := strings.Fields(text)
		switch {
		case fields[0] == ".i":
			if len(fields) != 2 {
				return nil, fmt.Errorf("pla: line %d: malformed .i", line)
			}
			if _, err := fmt.Sscanf(fields[1], "%d", &f.Inputs); err != nil {
				return nil, fmt.Errorf("pla: line %d: %v", line, err)
			}
			if f.Inputs < 0 || f.Inputs > cube.MaxVars {
				return nil, fmt.Errorf("pla: line %d: unsupported input count %d", line, f.Inputs)
			}
		case fields[0] == ".o":
			if len(fields) != 2 {
				return nil, fmt.Errorf("pla: line %d: malformed .o", line)
			}
			if _, err := fmt.Sscanf(fields[1], "%d", &f.Outputs); err != nil {
				return nil, fmt.Errorf("pla: line %d: %v", line, err)
			}
			if f.Outputs < 1 {
				return nil, fmt.Errorf("pla: line %d: bad output count", line)
			}
			f.Covers = make([]cube.Cover, f.Outputs)
		case fields[0] == ".ilb":
			f.InputNames = fields[1:]
		case fields[0] == ".ob":
			f.OutputNames = fields[1:]
		case fields[0] == ".p" || fields[0] == ".type" || fields[0] == ".phase":
			// .p is advisory; .type f/fr both treat 1 as on-set.
		case fields[0] == ".e" || fields[0] == ".end":
			return f.finish()
		case strings.HasPrefix(fields[0], "."):
			return nil, fmt.Errorf("pla: line %d: unsupported directive %s", line, fields[0])
		default:
			if f.Inputs < 0 || f.Outputs < 0 {
				return nil, fmt.Errorf("pla: line %d: cube before .i/.o", line)
			}
			if len(fields) < 2 {
				// Single-field rows pack inputs+outputs together.
				if len(fields[0]) != f.Inputs+f.Outputs {
					return nil, fmt.Errorf("pla: line %d: malformed cube row", line)
				}
				fields = []string{fields[0][:f.Inputs], fields[0][f.Inputs:]}
			}
			in := strings.Join(fields[:len(fields)-1], "")
			out := fields[len(fields)-1]
			if len(in) != f.Inputs || len(out) != f.Outputs {
				return nil, fmt.Errorf("pla: line %d: cube width mismatch", line)
			}
			var c cube.Cube
			for v, ch := range in {
				switch ch {
				case '0':
					c = c.WithNeg(v)
				case '1':
					c = c.WithPos(v)
				case '-', '2':
				default:
					return nil, fmt.Errorf("pla: line %d: bad input char %q", line, ch)
				}
			}
			for o, ch := range out {
				switch ch {
				case '1', '4':
					f.Covers[o].Cubes = append(f.Covers[o].Cubes, c)
				case '0', '~', '2', '-':
				default:
					return nil, fmt.Errorf("pla: line %d: bad output char %q", line, ch)
				}
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return f.finish()
}

func (f *File) finish() (*File, error) {
	if f.Inputs < 0 || f.Outputs < 0 {
		return nil, fmt.Errorf("pla: missing .i or .o")
	}
	for i := range f.Covers {
		f.Covers[i].N = f.Inputs
	}
	if f.InputNames == nil {
		for v := 0; v < f.Inputs; v++ {
			f.InputNames = append(f.InputNames, fmt.Sprintf("x%d", v))
		}
	}
	if f.OutputNames == nil {
		for o := 0; o < f.Outputs; o++ {
			f.OutputNames = append(f.OutputNames, fmt.Sprintf("f%d", o))
		}
	}
	return f, nil
}

// ParseString parses a PLA held in a string.
func ParseString(s string) (*File, error) { return Parse(strings.NewReader(s)) }

// Write serializes the file back to PLA format.
func Write(w io.Writer, f *File) error {
	if _, err := fmt.Fprintf(w, ".i %d\n.o %d\n", f.Inputs, f.Outputs); err != nil {
		return err
	}
	if len(f.InputNames) == f.Inputs {
		fmt.Fprintf(w, ".ilb %s\n", strings.Join(f.InputNames, " "))
	}
	if len(f.OutputNames) == f.Outputs {
		fmt.Fprintf(w, ".ob %s\n", strings.Join(f.OutputNames, " "))
	}
	// Collect distinct cubes across outputs, then emit rows.
	type row struct {
		c   cube.Cube
		out []byte
	}
	var rows []row
	index := map[cube.Cube]int{}
	for o, cov := range f.Covers {
		for _, c := range cov.Cubes {
			i, ok := index[c]
			if !ok {
				i = len(rows)
				index[c] = i
				out := make([]byte, f.Outputs)
				for j := range out {
					out[j] = '0'
				}
				rows = append(rows, row{c: c, out: out})
			}
			rows[i].out[o] = '1'
		}
	}
	fmt.Fprintf(w, ".p %d\n", len(rows))
	for _, r := range rows {
		in := make([]byte, f.Inputs)
		for v := 0; v < f.Inputs; v++ {
			switch {
			case r.c.HasPos(v):
				in[v] = '1'
			case r.c.HasNeg(v):
				in[v] = '0'
			default:
				in[v] = '-'
			}
		}
		if _, err := fmt.Fprintf(w, "%s %s\n", in, r.out); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, ".e")
	return err
}

// Format renders the file as a PLA string.
func Format(f *File) string {
	var sb strings.Builder
	if err := Write(&sb, f); err != nil {
		return ""
	}
	return sb.String()
}
