package minimize

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/lattice-tools/janus/internal/cube"
	"github.com/lattice-tools/janus/internal/truth"
)

func randomCover(r *rand.Rand, n, k int) cube.Cover {
	f := cube.Zero(n)
	for i, m := 0, 1+r.Intn(k); i < m; i++ {
		var c cube.Cube
		for v := 0; v < n; v++ {
			switch r.Intn(3) {
			case 0:
				c = c.WithPos(v)
			case 1:
				c = c.WithNeg(v)
			}
		}
		f.Cubes = append(f.Cubes, c)
	}
	return f
}

func TestISOPClassic(t *testing.T) {
	// f = ab + ab' minimizes to a.
	f := cube.NewCover(2,
		cube.FromLiterals([]int{0, 1}, nil),
		cube.FromLiterals([]int{0}, []int{1}))
	g := ISOP(f)
	if len(g.Cubes) != 1 || g.Cubes[0] != cube.FromLiterals([]int{0}, nil) {
		t.Fatalf("ISOP(ab+ab') = %v, want a", g)
	}
}

func TestISOPConstants(t *testing.T) {
	if g := ISOP(cube.Zero(3)); !g.IsZero() {
		t.Fatalf("ISOP(0) = %v", g)
	}
	if g := ISOP(cube.One(3)); !g.IsOne() {
		t.Fatalf("ISOP(1) = %v", g)
	}
	// x + !x should collapse to 1.
	f := cube.NewCover(1, cube.FromLiterals([]int{0}, nil), cube.FromLiterals(nil, []int{0}))
	if g := ISOP(f); !g.IsOne() {
		t.Fatalf("ISOP(x+!x) = %v", g)
	}
}

func TestISOPKeepsFunction(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 80; i++ {
		f := randomCover(rng, 6, 7)
		g := ISOP(f)
		if !truth.FromCover(f).Equal(truth.FromCover(g)) {
			t.Fatalf("ISOP changed function: %v -> %v", f, g)
		}
	}
}

func TestISOPIsIrredundantPrime(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 60; i++ {
		f := randomCover(rng, 6, 6)
		g := ISOP(f)
		if !IsIrredundantPrimeCover(g, f) {
			t.Fatalf("ISOP output not an irredundant prime cover: %v -> %v", f, g)
		}
	}
}

func TestPrimesXor2(t *testing.T) {
	// x ^ y has exactly two primes: xy' and x'y.
	f := cube.NewCover(2,
		cube.FromLiterals([]int{0}, []int{1}),
		cube.FromLiterals([]int{1}, []int{0}))
	ps := Primes(f)
	if len(ps) != 2 {
		t.Fatalf("Primes = %v", ps)
	}
}

func TestPrimesConsensusChain(t *testing.T) {
	// ab + a'c: primes are ab, a'c, bc.
	f := cube.NewCover(3,
		cube.FromLiterals([]int{0, 1}, nil),
		cube.FromLiterals([]int{2}, []int{0}))
	ps := Primes(f)
	if len(ps) != 3 {
		t.Fatalf("Primes = %v, want 3 primes", ps)
	}
	want := cube.FromLiterals([]int{1, 2}, nil)
	found := false
	for _, p := range ps {
		if p == want {
			found = true
		}
	}
	if !found {
		t.Fatalf("consensus prime bc missing from %v", ps)
	}
}

func TestExactMajority(t *testing.T) {
	// MAJ3 = ab + ac + bc: exactly 3 products.
	f := cube.NewCover(3,
		cube.FromLiterals([]int{0, 1}, nil),
		cube.FromLiterals([]int{0, 2}, nil),
		cube.FromLiterals([]int{1, 2}, nil))
	g := Exact(f)
	if len(g.Cubes) != 3 {
		t.Fatalf("Exact(MAJ3) = %v, want 3 cubes", g)
	}
	if !g.Equiv(f) {
		t.Fatal("Exact changed the function")
	}
}

func TestExactCollapse(t *testing.T) {
	// Four minterms of 2 vars = constant 1.
	f := cube.Zero(2)
	for p := uint64(0); p < 4; p++ {
		var c cube.Cube
		for v := 0; v < 2; v++ {
			if p&(1<<uint(v)) != 0 {
				c = c.WithPos(v)
			} else {
				c = c.WithNeg(v)
			}
		}
		f.Cubes = append(f.Cubes, c)
	}
	g := Exact(f)
	if !g.IsOne() {
		t.Fatalf("Exact(all minterms) = %v, want 1", g)
	}
}

// Property: heuristic never beats nor breaks the exact result's function,
// and is at most a small factor larger.
func TestPropISOPVsExact(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		f := randomCover(r, 5, 5)
		h := ISOP(f)
		e := Exact(f)
		if !h.Equiv(f) || !e.Equiv(f) {
			return false
		}
		return len(e.Cubes) <= len(h.Cubes)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: every cube reported by Primes is prime and an implicant.
func TestPropPrimesAretPrime(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		f := randomCover(r, 5, 4)
		off := f.Complement()
		for _, p := range Primes(f) {
			if !isImplicant(p, off) {
				return false
			}
			sup := p.Support()
			for v := 0; v < cube.MaxVars; v++ {
				if sup&(1<<uint(v)) == 0 {
					continue
				}
				if isImplicant(p.Without(v), off) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestISOPDual(t *testing.T) {
	f := cube.NewCover(3,
		cube.FromLiterals([]int{0, 1}, nil),
		cube.FromLiterals([]int{2}, nil))
	isop, dual := ISOPDual(f)
	if !isop.Equiv(f) {
		t.Fatal("isop wrong")
	}
	if !dual.Equiv(f.Dual()) {
		t.Fatal("dual isop wrong")
	}
}

func TestFigure1Function(t *testing.T) {
	// The paper's running example f = abcd + a'b'c'd' is already an ISOP
	// with 2 products of degree 4.
	f := cube.NewCover(4,
		cube.FromLiterals([]int{0, 1, 2, 3}, nil),
		cube.FromLiterals(nil, []int{0, 1, 2, 3}))
	g := ISOP(f)
	if len(g.Cubes) != 2 || g.Degree() != 4 {
		t.Fatalf("ISOP(fig1) = %v", g)
	}
	// Its dual has 8 products (choose one literal per product, 2*... ).
	d := ISOP(f.Dual())
	if !d.Equiv(f.Dual()) {
		t.Fatal("dual mismatched")
	}
}

func TestEssentials(t *testing.T) {
	// MAJ3: all three primes are essential.
	f := cube.NewCover(3,
		cube.FromLiterals([]int{0, 1}, nil),
		cube.FromLiterals([]int{0, 2}, nil),
		cube.FromLiterals([]int{1, 2}, nil))
	ess := Essentials(f)
	if len(ess) != 3 {
		t.Fatalf("Essentials(MAJ3) = %v", ess)
	}
	// ab + a'c: the consensus prime bc is NOT essential.
	g := cube.NewCover(3,
		cube.FromLiterals([]int{0, 1}, nil),
		cube.FromLiterals([]int{2}, []int{0}))
	ess = Essentials(g)
	for _, e := range ess {
		if e == cube.FromLiterals([]int{1, 2}, nil) {
			t.Fatal("bc must not be essential")
		}
	}
	if len(ess) != 2 {
		t.Fatalf("Essentials(ab+a'c) = %v", ess)
	}
	if len(Essentials(cube.One(2))) != 0 || len(Essentials(cube.Zero(2))) != 0 {
		t.Fatal("constants have no essentials")
	}
}

// Property: every essential prime appears in the exact minimum cover.
func TestPropEssentialsInExact(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		f := randomCover(r, 5, 4)
		if f.Absorb().IsZero() || f.Absorb().IsOne() {
			return true
		}
		ex := Exact(f)
		inEx := map[cube.Cube]bool{}
		for _, c := range ex.Cubes {
			inEx[c] = true
		}
		for _, e := range Essentials(f) {
			if !inEx[e] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
