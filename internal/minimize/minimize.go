// Package minimize provides two-level logic minimization. It fills the role
// espresso [Brayton et al. 1984] plays for JANUS: producing an irredundant
// sum-of-products (ISOP) form — every product a prime implicant, no product
// removable — for a target function and for its dual.
//
// Two engines are provided: a heuristic EXPAND / IRREDUNDANT / REDUCE loop
// in the espresso style (ISOP), and an exact minimum-cardinality cover
// solver over all prime implicants (Exact) used on small functions and as
// a test oracle.
package minimize

import (
	"math/bits"
	"sort"

	"github.com/lattice-tools/janus/internal/cube"
)

// ISOP returns an irredundant prime cover of f with a heuristically
// minimized number of products. The result denotes the same function as f.
func ISOP(f cube.Cover) cube.Cover {
	F := f.Absorb()
	if F.IsZero() || F.IsOne() {
		return F
	}
	off := F.Complement()
	F = expand(F, off)
	F = irredundant(F)
	bestCost := cost(F)
	for iter := 0; iter < 16; iter++ {
		R := reduce(F)
		R = expand(R, off)
		R = irredundant(R)
		if c := cost(R); c.less(bestCost) {
			F, bestCost = R, c
			continue
		}
		break
	}
	return F.Canonical()
}

// ISOPDual returns ISOP forms of f and of its dual f^D.
func ISOPDual(f cube.Cover) (isop, dualISOP cube.Cover) {
	return ISOP(f), ISOP(f.Dual())
}

type coverCost struct{ cubes, lits int }

func (a coverCost) less(b coverCost) bool {
	if a.cubes != b.cubes {
		return a.cubes < b.cubes
	}
	return a.lits < b.lits
}

func cost(f cube.Cover) coverCost { return coverCost{len(f.Cubes), f.NumLiterals()} }

// isImplicant reports whether c does not intersect the off-set cover.
func isImplicant(c cube.Cube, off cube.Cover) bool {
	for _, o := range off.Cubes {
		if c.Distance(o) == 0 {
			return false
		}
	}
	return true
}

// expandCube grows c to a prime implicant by removing literals greedily.
// Literals whose removal conflicts with the fewest off-cubes are tried
// first, which tends to free the most freedom for later removals.
func expandCube(c cube.Cube, off cube.Cover) cube.Cube {
	for {
		type cand struct {
			v     int
			score int
		}
		var best *cand
		sup := c.Support()
		for v := 0; v < cube.MaxVars && sup>>uint(v) != 0; v++ {
			bit := uint64(1) << uint(v)
			if sup&bit == 0 {
				continue
			}
			trial := c.Without(v)
			if !isImplicant(trial, off) {
				continue
			}
			// Score: prefer removals leaving the most distance to off-set.
			score := 0
			for _, o := range off.Cubes {
				score += trial.Distance(o)
			}
			if best == nil || score > best.score {
				best = &cand{v: v, score: score}
			}
		}
		if best == nil {
			return c
		}
		c = c.Without(best.v)
	}
}

func expand(f, off cube.Cover) cube.Cover {
	g := cube.Cover{N: f.N}
	for _, c := range f.Cubes {
		g.Cubes = append(g.Cubes, expandCube(c, off))
	}
	return g.Absorb()
}

// irredundant removes cubes covered by the rest of the cover, dropping the
// largest (most-literal) candidates first so small general cubes survive.
func irredundant(f cube.Cover) cube.Cover {
	cs := make([]cube.Cube, len(f.Cubes))
	copy(cs, f.Cubes)
	sort.Slice(cs, func(i, j int) bool { return cs[j].Less(cs[i]) })
	for i := 0; i < len(cs); {
		rest := cube.Cover{N: f.N}
		rest.Cubes = append(rest.Cubes, cs[:i]...)
		rest.Cubes = append(rest.Cubes, cs[i+1:]...)
		if rest.CoversCube(cs[i]) {
			cs = append(cs[:i], cs[i+1:]...)
			continue
		}
		i++
	}
	return cube.Cover{N: f.N, Cubes: cs}
}

// superCube returns the smallest cube containing every cube of f, and
// false when f is empty.
func superCube(f cube.Cover) (cube.Cube, bool) {
	if len(f.Cubes) == 0 {
		return cube.Cube{}, false
	}
	r := f.Cubes[0]
	for _, c := range f.Cubes[1:] {
		r.Pos &= c.Pos
		r.Neg &= c.Neg
	}
	return r, true
}

// reduce shrinks each cube to the smallest cube covering the part of the
// function no other cube covers, enabling expand to move in new directions.
func reduce(f cube.Cover) cube.Cover {
	cs := make([]cube.Cube, len(f.Cubes))
	copy(cs, f.Cubes)
	// Process largest cubes last so they shrink against reduced peers.
	sort.Slice(cs, func(i, j int) bool { return cs[i].Less(cs[j]) })
	for i := len(cs) - 1; i >= 0; i-- {
		rest := cube.Cover{N: f.N}
		rest.Cubes = append(rest.Cubes, cs[:i]...)
		rest.Cubes = append(rest.Cubes, cs[i+1:]...)
		// Points of cs[i] not covered by the rest, in the local space of
		// cs[i]: complement of rest cofactored by the cube.
		local := rest.CofactorCube(cs[i]).Complement()
		sc, ok := superCube(local)
		if !ok {
			// Entirely covered by the rest; drop it.
			cs = append(cs[:i], cs[i+1:]...)
			continue
		}
		if r, valid := cs[i].Intersect(sc); valid {
			cs[i] = r
		}
	}
	return cube.Cover{N: f.N, Cubes: cs}
}

// Primes returns every prime implicant of f, computed by iterated
// consensus over an absorbed cube list. The input cubes are first expanded
// so the closure starts from implicants of maximal size.
func Primes(f cube.Cover) []cube.Cube {
	F := f.Absorb()
	if F.IsZero() {
		return nil
	}
	if F.IsOne() {
		return []cube.Cube{cube.Top()}
	}
	list := make([]cube.Cube, len(F.Cubes))
	copy(list, F.Cubes)
	for changed := true; changed; {
		changed = false
		var added []cube.Cube
		for i := 0; i < len(list); i++ {
			for j := i + 1; j < len(list); j++ {
				cons, ok := list[i].Consensus(list[j])
				if !ok {
					continue
				}
				dominated := false
				for _, c := range list {
					if c.Contains(cons) {
						dominated = true
						break
					}
				}
				if !dominated {
					for _, c := range added {
						if c.Contains(cons) {
							dominated = true
							break
						}
					}
				}
				if !dominated {
					added = append(added, cons)
				}
			}
		}
		if len(added) > 0 {
			list = append(list, added...)
			list = cube.Cover{N: F.N, Cubes: list}.Absorb().Cubes
			changed = true
		}
	}
	cube.SortCubes(list)
	return list
}

// Exact returns a minimum-cardinality prime cover of f (ties broken by
// literal count) using branch and bound over the prime implicant table.
// It panics if f has more than 16 variables; intended for small functions
// and as an oracle for ISOP.
func Exact(f cube.Cover) cube.Cover {
	return exact(f, 1<<62)
}

// exact is Exact with a branch-and-bound node budget; when the budget runs
// out the best cover found so far is returned (still a correct cover,
// possibly not minimum).
func exact(f cube.Cover, nodeBudget int64) cube.Cover {
	if f.N > 16 {
		panic("minimize: Exact limited to 16 variables")
	}
	F := f.Absorb()
	if F.IsZero() || F.IsOne() {
		return F
	}
	primes := Primes(F)
	minterms := F.Minterms()
	// cover[i] = indexes of primes covering minterm i.
	coverers := make([][]int, len(minterms))
	for mi, m := range minterms {
		for pi, p := range primes {
			if p.Eval(m) {
				coverers[mi] = append(coverers[mi], pi)
			}
		}
	}
	// Essential primes — sole coverers of some minterm — are forced into
	// every cover; choosing them up front shrinks the branch and bound.
	essential := map[int]bool{}
	for mi := range minterms {
		if len(coverers[mi]) == 1 {
			essential[coverers[mi][0]] = true
		}
	}
	var chosen []int
	covered := make([]bool, len(minterms))
	for pi := range essential {
		chosen = append(chosen, pi)
		for i, m := range minterms {
			if primes[pi].Eval(m) {
				covered[i] = true
			}
		}
	}
	var bestSel []int
	bestSize := len(primes) + 1
	nodes := int64(0)

	var rec func()
	rec = func() {
		nodes++
		if nodes > nodeBudget {
			return
		}
		// Find the uncovered minterm with the fewest coverers.
		sel := -1
		for i := range minterms {
			if covered[i] {
				continue
			}
			if sel < 0 || len(coverers[i]) < len(coverers[sel]) {
				sel = i
			}
		}
		if sel < 0 {
			if len(chosen) < bestSize || (len(chosen) == bestSize && litCount(primes, chosen) < litCount(primes, bestSel)) {
				bestSize = len(chosen)
				bestSel = append([]int(nil), chosen...)
			}
			return
		}
		if len(chosen)+1 > bestSize {
			return
		}
		for _, pi := range coverers[sel] {
			var newly []int
			for i, m := range minterms {
				if !covered[i] && primes[pi].Eval(m) {
					covered[i] = true
					newly = append(newly, i)
				}
			}
			chosen = append(chosen, pi)
			rec()
			chosen = chosen[:len(chosen)-1]
			for _, i := range newly {
				covered[i] = false
			}
		}
	}
	rec()
	if len(bestSel) == 0 {
		// Budget exhausted before any complete cover; fall back to the
		// heuristic, which always yields a valid cover.
		return ISOP(F)
	}
	g := cube.Cover{N: F.N}
	for _, pi := range bestSel {
		g.Cubes = append(g.Cubes, primes[pi])
	}
	return g.Canonical()
}

// autoPrimeLimit and autoMintermLimit bound when Auto attempts the exact
// minimizer; beyond them the heuristic is used.
const (
	autoPrimeLimit   = 160
	autoMintermLimit = 4096
	autoNodeBudget   = 300000
)

// Auto returns an ISOP of f with a minimized product count: the exact
// cover when the function is small enough (as espresso effectively
// achieves on the paper's benchmarks), the espresso-style heuristic
// otherwise. The result always denotes the same function as f and is an
// irredundant prime cover.
func Auto(f cube.Cover) cube.Cover {
	F := f.Absorb()
	if F.IsZero() || F.IsOne() || F.N > 14 {
		return ISOP(F)
	}
	heur := ISOP(F)
	primes := Primes(F)
	if len(primes) > autoPrimeLimit || F.CountOnes() > autoMintermLimit {
		return heur
	}
	ex := exact(F, autoNodeBudget)
	if len(ex.Cubes) < len(heur.Cubes) ||
		(len(ex.Cubes) == len(heur.Cubes) && ex.NumLiterals() < heur.NumLiterals()) {
		return ex
	}
	return heur
}

// AutoDual returns Auto-minimized ISOP forms of f and of its dual.
func AutoDual(f cube.Cover) (isop, dualISOP cube.Cover) {
	return Auto(f), Auto(f.Dual())
}

func litCount(primes []cube.Cube, sel []int) int {
	t := 0
	for _, i := range sel {
		t += primes[i].NumLiterals()
	}
	return t
}

// Essentials returns the essential prime implicants of f: the primes that
// are the sole coverer of some minterm and therefore appear in every
// minimum prime cover. Limited to 16 variables like Exact.
func Essentials(f cube.Cover) []cube.Cube {
	if f.N > 16 {
		panic("minimize: Essentials limited to 16 variables")
	}
	F := f.Absorb()
	if F.IsZero() || F.IsOne() {
		return nil
	}
	primes := Primes(F)
	var ess []cube.Cube
	seen := map[cube.Cube]bool{}
	for _, m := range F.Minterms() {
		sole, count := -1, 0
		for pi, p := range primes {
			if p.Eval(m) {
				sole = pi
				count++
				if count > 1 {
					break
				}
			}
		}
		if count == 1 && !seen[primes[sole]] {
			seen[primes[sole]] = true
			ess = append(ess, primes[sole])
		}
	}
	cube.SortCubes(ess)
	return ess
}

// IsIrredundantPrimeCover verifies the two defining ISOP properties: every
// cube is a prime implicant of f and no cube can be removed.
func IsIrredundantPrimeCover(g, f cube.Cover) bool {
	if !g.Equiv(f) {
		return false
	}
	off := f.Complement()
	for i, c := range g.Cubes {
		if !isImplicant(c, off) {
			return false
		}
		// Primality: removing any literal must hit the off-set.
		sup := c.Support()
		for v := 0; v < cube.MaxVars; v++ {
			if sup&(1<<uint(v)) == 0 {
				continue
			}
			if isImplicant(c.Without(v), off) {
				return false
			}
		}
		rest := cube.Cover{N: g.N}
		rest.Cubes = append(rest.Cubes, g.Cubes[:i]...)
		rest.Cubes = append(rest.Cubes, g.Cubes[i+1:]...)
		if rest.CoversCube(c) {
			return false
		}
	}
	return true
}

// SupportSize returns the number of variables actually used by f.
func SupportSize(f cube.Cover) int { return bits.OnesCount64(f.Support()) }
