package sat

import (
	"math/rand"
	"testing"
)

// TestPruneLearntsSound: pruning learnt clauses between solves must
// never change answers — learnts are consequences of the problem
// clauses, so dropping any subset only costs re-derivation work. Random
// 3-SAT instances are solved under alternating assumption sets with an
// aggressive prune between every call, cross-checked against a fresh
// solver given the same assumptions as units.
func TestPruneLearntsSound(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for inst := 0; inst < 100; inst++ {
		nVars := 8 + rng.Intn(8)
		cls := randomCNF(rng, nVars, 3*nVars+rng.Intn(2*nVars), 3)

		pruned := New(nVars)
		for _, c := range cls {
			pruned.AddClause(c...)
		}
		for call := 0; call < 4; call++ {
			v1, v2 := rng.Intn(nVars), rng.Intn(nVars)
			as := []Lit{MkLit(v1, rng.Intn(2) == 0), MkLit(v2, rng.Intn(2) == 0)}
			got := pruned.SolveAssume(Limits{}, as...)
			pruned.PruneLearnts(0, 0) // everything unlocked and non-binary goes

			fresh := New(nVars)
			for _, c := range cls {
				fresh.AddClause(c...)
			}
			for _, a := range as {
				fresh.AddClause(a)
			}
			want := fresh.Solve(Limits{})
			if got != want {
				t.Fatalf("inst %d call %d: pruned solver %v, fresh %v (assume %v)",
					inst, call, got, want, as)
			}
		}
	}
}

// TestPruneLearntsCounts checks the bookkeeping: a generous budget keeps
// the database intact, a zero budget drains it down to binary/locked
// clauses and feeds the Removed/Reductions stats.
func TestPruneLearntsCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	s := New(30)
	for _, c := range randomCNF(rng, 25, 110, 3) {
		s.AddClause(c...)
	}
	if st := s.Solve(Limits{}); st == Unknown {
		t.Fatal("unexpected Unknown")
	}
	if s.Stats().Learnts == 0 {
		t.Skip("instance produced no learnt clauses")
	}
	before := len(s.learnts)
	if n := s.PruneLearnts(1<<30, 1<<30); n != 0 {
		t.Fatalf("generous budget pruned %d clauses", n)
	}
	if len(s.learnts) != before {
		t.Fatalf("generous budget changed DB size: %d → %d", before, len(s.learnts))
	}
	removed0 := s.Stats().Removed
	n := s.PruneLearnts(0, 0)
	for _, c := range s.learnts {
		locked := s.value(c.lits[0]) == lTrue && s.reason[c.lits[0].Var()] == c
		if !locked && len(c.lits) != 2 {
			t.Fatalf("zero budget kept an unlocked %d-lit clause", len(c.lits))
		}
	}
	if n != before-len(s.learnts) {
		t.Fatalf("prune reported %d, DB shrank by %d", n, before-len(s.learnts))
	}
	if n > 0 && s.Stats().Removed != removed0+int64(n) {
		t.Fatalf("Removed stat: %d, want %d", s.Stats().Removed, removed0+int64(n))
	}
}
