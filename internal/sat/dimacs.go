package sat

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ParseDIMACS reads a DIMACS CNF formula into a fresh Solver. The "p cnf"
// header is honored when present; variables beyond the declared count are
// grown on demand. Comment lines (c ...) and the optional trailing "%"
// section of SATLIB files are ignored.
func ParseDIMACS(r io.Reader) (*Solver, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<22)
	s := New(0)
	var clause []Lit
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || text[0] == 'c' || text[0] == '%' {
			continue
		}
		if strings.HasPrefix(text, "p ") {
			fields := strings.Fields(text)
			if len(fields) != 4 || fields[1] != "cnf" {
				return nil, fmt.Errorf("sat: line %d: malformed problem line %q", line, text)
			}
			nVars, err := strconv.Atoi(fields[2])
			if err != nil || nVars < 0 {
				return nil, fmt.Errorf("sat: line %d: bad variable count", line)
			}
			s.grow(nVars)
			continue
		}
		for _, tok := range strings.Fields(text) {
			v, err := strconv.Atoi(tok)
			if err != nil {
				return nil, fmt.Errorf("sat: line %d: bad literal %q", line, tok)
			}
			if v == 0 {
				if err := s.AddClause(clause...); err != nil {
					return s, nil // already unsat; rest is irrelevant
				}
				clause = clause[:0]
				continue
			}
			neg := v < 0
			if neg {
				v = -v
			}
			clause = append(clause, MkLit(v-1, neg))
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(clause) > 0 {
		// Tolerate a final clause without the terminating 0.
		if err := s.AddClause(clause...); err != nil {
			return s, nil
		}
	}
	return s, nil
}
