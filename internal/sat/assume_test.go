package sat

import (
	"math/rand"
	"testing"
)

func lit(v int) Lit  { return MkLit(v, false) }
func nlit(v int) Lit { return MkLit(v, true) }

// TestAssumeBasic: x0 ∨ x1 is Sat under either assumption, Unsat under
// both negated, and the solver stays usable throughout.
func TestAssumeBasic(t *testing.T) {
	s := New(2)
	s.AddClause(lit(0), lit(1))

	if st := s.SolveAssume(Limits{}, nlit(0)); st != Sat {
		t.Fatalf("under ¬x0: %v", st)
	}
	if !s.Model(1) {
		t.Fatal("¬x0 must force x1")
	}
	if st := s.SolveAssume(Limits{}, nlit(0), nlit(1)); st != Unsat {
		t.Fatalf("under ¬x0 ¬x1: %v", st)
	}
	core := s.FinalCore()
	if core == nil {
		t.Fatal("Unsat under assumptions must report a core")
	}
	// The refutation needs both assumptions.
	if len(core) != 2 {
		t.Fatalf("core = %v, want both assumptions", core)
	}
	// Unsat under assumptions must not poison the solver.
	if st := s.Solve(Limits{}); st != Sat {
		t.Fatalf("after assumption Unsat, plain Solve: %v", st)
	}
}

// TestAssumeCoreSubset: with independent constraint groups, the core
// names only the assumptions the refutation used.
func TestAssumeCoreSubset(t *testing.T) {
	s := New(6)
	// Group A (guarded by x4): x4 → x0, x4 → ¬x0 — contradictory.
	s.AddClause(nlit(4), lit(0))
	s.AddClause(nlit(4), nlit(0))
	// Group B (guarded by x5): x5 → x1 — satisfiable.
	s.AddClause(nlit(5), lit(1))

	if st := s.SolveAssume(Limits{}, lit(5), lit(4)); st != Unsat {
		t.Fatalf("status = %v", st)
	}
	core := s.FinalCore()
	for _, l := range core {
		if l == lit(5) {
			t.Fatalf("core %v mentions the innocent group", core)
		}
	}
	found := false
	for _, l := range core {
		if l == lit(4) {
			found = true
		}
	}
	if !found {
		t.Fatalf("core %v must mention the conflicting group", core)
	}
	// Deactivating group A restores satisfiability.
	if st := s.SolveAssume(Limits{}, lit(5), nlit(4)); st != Sat {
		t.Fatalf("with group A off: %v", st)
	}
	if !s.Model(1) {
		t.Fatal("group B must still force x1")
	}
}

// TestAssumeGlobalUnsatNilCore: when the formula itself is Unsat, the
// answer does not depend on the assumptions and the core is nil.
func TestAssumeGlobalUnsatNilCore(t *testing.T) {
	s := New(2)
	s.AddClause(lit(0))
	s.AddClause(nlit(0))
	if st := s.SolveAssume(Limits{}, lit(1)); st != Unsat {
		t.Fatalf("status = %v", st)
	}
	if core := s.FinalCore(); core != nil {
		t.Fatalf("global Unsat core = %v, want nil", core)
	}
}

// TestAssumeActivationPattern mimics the shared-encoder usage: several
// clause groups each guarded by an activation literal, solved one at a
// time with only its guard assumed true and the others assumed false.
func TestAssumeActivationPattern(t *testing.T) {
	const groups = 4
	s := New(0)
	act := make([]Lit, groups)
	payload := make([]int, groups)
	for g := 0; g < groups; g++ {
		a := s.AddVar()
		x := s.AddVar()
		y := s.AddVar()
		act[g] = lit(a)
		payload[g] = x
		// act → (x ∨ y), act → (x ∨ ¬y): together force x when active.
		s.AddClause(nlit(a), lit(x), lit(y))
		s.AddClause(nlit(a), lit(x), nlit(y))
		if g%2 == 1 {
			// Odd groups additionally force ¬x: contradictory when active.
			s.AddClause(nlit(a), nlit(x))
		}
	}
	for g := 0; g < groups; g++ {
		assume := make([]Lit, groups)
		for i := range assume {
			if i == g {
				assume[i] = act[i]
			} else {
				assume[i] = act[i].Not()
			}
		}
		st := s.SolveAssume(Limits{}, assume...)
		if g%2 == 0 {
			if st != Sat {
				t.Fatalf("group %d: %v", g, st)
			}
			if !s.Model(payload[g]) {
				t.Fatalf("group %d: payload not forced", g)
			}
		} else {
			if st != Unsat {
				t.Fatalf("group %d: %v", g, st)
			}
			core := s.FinalCore()
			if len(core) != 1 || core[0] != act[g] {
				t.Fatalf("group %d: core = %v, want [%v]", g, core, act[g])
			}
		}
	}
}

// TestAssumeKeepsLearnts: clauses learnt under one assumption set keep
// pruning later calls, and interleaved AddClause stays sound.
func TestAssumeKeepsLearnts(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := New(30)
	for _, c := range randomCNF(rng, 25, 95, 3) {
		s.AddClause(c...)
	}
	a := lit(28)
	st1 := s.SolveAssume(Limits{}, a)
	learnt := s.Stats().Learnts
	// Same assumptions again: the learnt database carries over, so the
	// repeat costs at most as many new conflicts as the first call.
	st2 := s.SolveAssume(Limits{}, a)
	if st1 != st2 {
		t.Fatalf("statuses differ: %v then %v", st1, st2)
	}
	if got := s.Stats().Learnts; got < learnt {
		t.Fatalf("learnt count went backwards: %d → %d", learnt, got)
	}
	// Interleave a clause touching the assumption var, then flip it.
	s.AddClause(nlit(28), lit(29))
	if st := s.SolveAssume(Limits{}, a, nlit(29)); st != Unsat {
		t.Fatalf("x28 ∧ ¬x29 with x28→x29: %v", st)
	}
	if st := s.SolveAssume(Limits{}, a.Not(), nlit(29)); st == Unknown {
		t.Fatalf("unexpected Unknown")
	}
}

// TestAssumeMatchesConditioned cross-checks SolveAssume against a fresh
// solver with the assumptions added as unit clauses, on random 3-SAT.
func TestAssumeMatchesConditioned(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for inst := 0; inst < 150; inst++ {
		nVars := 8 + rng.Intn(8)
		cls := randomCNF(rng, nVars, 3*nVars+rng.Intn(2*nVars), 3)

		shared := New(nVars)
		for _, c := range cls {
			shared.AddClause(c...)
		}
		for call := 0; call < 4; call++ {
			nAssume := rng.Intn(4)
			assume := make([]Lit, nAssume)
			for i := range assume {
				assume[i] = MkLit(rng.Intn(nVars), rng.Intn(2) == 0)
			}
			fresh := New(nVars)
			for _, c := range cls {
				fresh.AddClause(c...)
			}
			for _, l := range assume {
				fresh.AddClause(l)
			}
			want := fresh.Solve(Limits{})
			got := shared.SolveAssume(Limits{}, assume...)
			if got != want {
				t.Fatalf("inst %d call %d assume %v: shared %v, conditioned %v",
					inst, call, assume, got, want)
			}
			if got == Sat {
				for _, l := range assume {
					if shared.value(l) != lTrue {
						t.Fatalf("inst %d: model violates assumption %v", inst, l)
					}
				}
			}
		}
	}
}
