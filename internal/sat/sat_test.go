package sat

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestLitEncoding(t *testing.T) {
	l := MkLit(3, false)
	if l.Var() != 3 || l.IsNeg() {
		t.Fatal("positive literal wrong")
	}
	n := l.Not()
	if n.Var() != 3 || !n.IsNeg() {
		t.Fatal("negation wrong")
	}
	if n.Not() != l {
		t.Fatal("double negation")
	}
	if l.String() != "4" || n.String() != "-4" {
		t.Fatalf("String = %q %q", l.String(), n.String())
	}
}

func TestTrivialSat(t *testing.T) {
	s := New(2)
	s.AddClause(MkLit(0, false))
	s.AddClause(MkLit(1, true))
	if st := s.Solve(Limits{}); st != Sat {
		t.Fatalf("status = %v", st)
	}
	if !s.Model(0) || s.Model(1) {
		t.Fatalf("model = %v %v", s.Model(0), s.Model(1))
	}
}

func TestTrivialUnsat(t *testing.T) {
	s := New(1)
	s.AddClause(MkLit(0, false))
	s.AddClause(MkLit(0, true))
	if st := s.Solve(Limits{}); st != Unsat {
		t.Fatalf("status = %v", st)
	}
}

func TestEmptyClauseUnsat(t *testing.T) {
	s := New(1)
	s.AddClause()
	if st := s.Solve(Limits{}); st != Unsat {
		t.Fatalf("status = %v", st)
	}
	if err := s.AddClause(MkLit(0, false)); err != ErrAddAfterUnsat {
		t.Fatalf("AddClause after unsat: %v", err)
	}
}

func TestTautologyClauseIgnored(t *testing.T) {
	s := New(1)
	s.AddClause(MkLit(0, false), MkLit(0, true))
	if st := s.Solve(Limits{}); st != Sat {
		t.Fatalf("status = %v", st)
	}
}

func TestImplicationChain(t *testing.T) {
	// x0 and a chain x_i -> x_{i+1}; all must be true.
	const n = 50
	s := New(n)
	s.AddClause(MkLit(0, false))
	for i := 0; i < n-1; i++ {
		s.AddClause(MkLit(i, true), MkLit(i+1, false))
	}
	if st := s.Solve(Limits{}); st != Sat {
		t.Fatalf("status = %v", st)
	}
	for i := 0; i < n; i++ {
		if !s.Model(i) {
			t.Fatalf("x%d should be true", i)
		}
	}
}

// pigeonhole builds PHP(n+1, n): n+1 pigeons into n holes — UNSAT.
func pigeonhole(pigeons, holes int) *Solver {
	s := New(pigeons * holes)
	v := func(p, h int) int { return p*holes + h }
	for p := 0; p < pigeons; p++ {
		lits := make([]Lit, holes)
		for h := 0; h < holes; h++ {
			lits[h] = MkLit(v(p, h), false)
		}
		s.AddClause(lits...)
	}
	for h := 0; h < holes; h++ {
		for p1 := 0; p1 < pigeons; p1++ {
			for p2 := p1 + 1; p2 < pigeons; p2++ {
				s.AddClause(MkLit(v(p1, h), true), MkLit(v(p2, h), true))
			}
		}
	}
	return s
}

func TestPigeonholeUnsat(t *testing.T) {
	for n := 2; n <= 6; n++ {
		s := pigeonhole(n+1, n)
		if st := s.Solve(Limits{}); st != Unsat {
			t.Fatalf("PHP(%d,%d) = %v, want UNSAT", n+1, n, st)
		}
	}
}

func TestPigeonholeSat(t *testing.T) {
	s := pigeonhole(5, 5)
	if st := s.Solve(Limits{}); st != Sat {
		t.Fatalf("PHP(5,5) = %v, want SAT", st)
	}
}

func TestConflictBudget(t *testing.T) {
	s := pigeonhole(9, 8) // hard enough to exceed a tiny budget
	st := s.Solve(Limits{MaxConflicts: 10})
	if st != Unknown {
		t.Fatalf("status = %v, want UNKNOWN under 10-conflict budget", st)
	}
}

func TestTimeout(t *testing.T) {
	s := pigeonhole(11, 10)
	start := time.Now()
	st := s.Solve(Limits{Timeout: 50 * time.Millisecond})
	if st == Sat {
		t.Fatal("PHP(11,10) cannot be SAT")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("timeout not honored: %v", elapsed)
	}
}

func TestLuby(t *testing.T) {
	want := []int64{1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8}
	for i, w := range want {
		if got := luby(int64(i)); got != w {
			t.Fatalf("luby(%d) = %d, want %d", i, got, w)
		}
	}
}

func TestAddVarGrow(t *testing.T) {
	s := New(0)
	a := s.AddVar()
	b := s.AddVar()
	if a != 0 || b != 1 || s.NumVars() != 2 {
		t.Fatal("AddVar indices wrong")
	}
	s.AddClause(MkLit(a, false), MkLit(b, false))
	if st := s.Solve(Limits{}); st != Sat {
		t.Fatalf("status = %v", st)
	}
}

// randomCNF builds a random k-SAT instance and returns the clause list.
func randomCNF(r *rand.Rand, nVars, nClauses, k int) [][]Lit {
	var cls [][]Lit
	for i := 0; i < nClauses; i++ {
		seen := map[int]bool{}
		var c []Lit
		for len(c) < k {
			v := r.Intn(nVars)
			if seen[v] {
				continue
			}
			seen[v] = true
			c = append(c, MkLit(v, r.Intn(2) == 0))
		}
		cls = append(cls, c)
	}
	return cls
}

func bruteForceSat(nVars int, cls [][]Lit) bool {
	for m := uint64(0); m < 1<<uint(nVars); m++ {
		ok := true
		for _, c := range cls {
			sat := false
			for _, l := range c {
				val := m&(1<<uint(l.Var())) != 0
				if val != l.IsNeg() {
					sat = true
					break
				}
			}
			if !sat {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

// Property: solver agrees with brute force on random small instances, and
// SAT models actually satisfy all clauses.
func TestPropSolverVsBruteForce(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nVars := 4 + r.Intn(9)
		nClauses := 5 + r.Intn(40)
		cls := randomCNF(r, nVars, nClauses, 3)
		s := New(nVars)
		for _, c := range cls {
			s.AddClause(c...)
		}
		st := s.Solve(Limits{})
		want := bruteForceSat(nVars, cls)
		if (st == Sat) != want {
			return false
		}
		if st == Sat {
			for _, c := range cls {
				ok := false
				for _, l := range c {
					if s.Model(l.Var()) != l.IsNeg() {
						ok = true
						break
					}
				}
				if !ok {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: mixed clause widths (1..4) also agree with brute force.
func TestPropSolverMixedWidths(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nVars := 3 + r.Intn(7)
		var cls [][]Lit
		for i, n := 0, 3+r.Intn(25); i < n; i++ {
			k := 1 + r.Intn(4)
			if k > nVars {
				k = nVars
			}
			cls = append(cls, randomCNF(r, nVars, 1, k)[0])
		}
		s := New(nVars)
		for _, c := range cls {
			s.AddClause(c...)
		}
		st := s.Solve(Limits{})
		return (st == Sat) == bruteForceSat(nVars, cls)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestStatsPopulated(t *testing.T) {
	s := pigeonhole(6, 5)
	s.Solve(Limits{})
	st := s.Stats()
	if st.Conflicts == 0 || st.Decisions == 0 || st.Propagations == 0 {
		t.Fatalf("stats look empty: %+v", st)
	}
}

func TestXorChain(t *testing.T) {
	// XOR constraints as CNF: x_i xor x_{i+1} = 1 forces alternation; with
	// x0 = true the model is determined.
	const n = 24
	s := New(n)
	s.AddClause(MkLit(0, false))
	for i := 0; i < n-1; i++ {
		// (xi | xi+1) & (!xi | !xi+1)
		s.AddClause(MkLit(i, false), MkLit(i+1, false))
		s.AddClause(MkLit(i, true), MkLit(i+1, true))
	}
	if st := s.Solve(Limits{}); st != Sat {
		t.Fatalf("status = %v", st)
	}
	for i := 0; i < n; i++ {
		if s.Model(i) != (i%2 == 0) {
			t.Fatalf("alternation broken at %d", i)
		}
	}
}

func TestReduceDBKeepsCorrectness(t *testing.T) {
	// A hard instance that accumulates learnt clauses; the reduced DB
	// must not change the answer.
	s := pigeonhole(8, 7)
	if st := s.Solve(Limits{}); st != Unsat {
		t.Fatalf("PHP(8,7) = %v", st)
	}
	if s.Stats().Learnts == 0 {
		t.Fatal("expected learnt clauses")
	}
}

func TestSolveTwice(t *testing.T) {
	// Solving an already-SAT solver again must stay SAT with a model.
	s := New(3)
	s.AddClause(MkLit(0, false), MkLit(1, false))
	if s.Solve(Limits{}) != Sat || s.Solve(Limits{}) != Sat {
		t.Fatal("re-solve failed")
	}
}

func TestGrowDuringAddClause(t *testing.T) {
	// Literals beyond the initial variable count grow the solver.
	s := New(1)
	s.AddClause(MkLit(10, false))
	if s.NumVars() != 11 {
		t.Fatalf("NumVars = %d", s.NumVars())
	}
	if s.Solve(Limits{}) != Sat || !s.Model(10) {
		t.Fatal("grown variable not handled")
	}
}

func TestModelSlice(t *testing.T) {
	s := New(2)
	s.AddClause(MkLit(0, false))
	s.AddClause(MkLit(1, true))
	s.Solve(Limits{})
	m := s.ModelSlice()
	if len(m) != 2 || !m[0] || m[1] {
		t.Fatalf("ModelSlice = %v", m)
	}
}
