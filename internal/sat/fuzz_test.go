package sat

import (
	"strings"
	"testing"
)

// FuzzParseDIMACS checks the DIMACS reader never panics and that solvable
// parses yield internally consistent models.
func FuzzParseDIMACS(f *testing.F) {
	f.Add("p cnf 3 2\n1 -2 0\n2 3 0\n")
	f.Add("1 0\n-1 0\n")
	f.Add("c comment\np cnf 1 1\n1 0\n")
	f.Fuzz(func(t *testing.T, input string) {
		if len(input) > 1<<12 {
			return
		}
		s, err := ParseDIMACS(strings.NewReader(input))
		if err != nil {
			return
		}
		if s.NumVars() > 64 || s.NumClauses() > 512 {
			return // keep the fuzz executions cheap
		}
		if st := s.Solve(Limits{MaxConflicts: 2000}); st == Sat {
			// A model must exist for every variable index queried.
			for v := 0; v < s.NumVars(); v++ {
				_ = s.Model(v)
			}
		}
	})
}
