package sat

import (
	"math/rand"
	"strings"
	"testing"
)

func TestParseDIMACSSat(t *testing.T) {
	s, err := ParseDIMACS(strings.NewReader(`c a comment
p cnf 3 3
1 -2 0
2 3 0
-1 0
`))
	if err != nil {
		t.Fatal(err)
	}
	if st := s.Solve(Limits{}); st != Sat {
		t.Fatalf("status = %v", st)
	}
	if s.Model(0) { // -1 forced
		t.Fatal("x1 must be false")
	}
}

func TestParseDIMACSUnsat(t *testing.T) {
	s, err := ParseDIMACS(strings.NewReader("p cnf 1 2\n1 0\n-1 0\n"))
	if err != nil {
		t.Fatal(err)
	}
	if st := s.Solve(Limits{}); st != Unsat {
		t.Fatalf("status = %v", st)
	}
}

func TestParseDIMACSNoHeader(t *testing.T) {
	// Header-free and final clause without terminating 0.
	s, err := ParseDIMACS(strings.NewReader("1 2\n"))
	if err != nil {
		t.Fatal(err)
	}
	if st := s.Solve(Limits{}); st != Sat {
		t.Fatalf("status = %v", st)
	}
}

func TestParseDIMACSErrors(t *testing.T) {
	for _, text := range []string{
		"p cnf x 3\n",
		"p dnf 2 2\n",
		"1 two 0\n",
	} {
		if _, err := ParseDIMACS(strings.NewReader(text)); err == nil {
			t.Errorf("expected error for %q", text)
		}
	}
}

// TestDIMACSRoundTripAgainstDirect: a random formula fed via DIMACS text
// decides the same as clauses added directly.
func TestDIMACSRoundTripAgainstDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 40; trial++ {
		nVars := 4 + rng.Intn(6)
		cls := randomCNF(rng, nVars, 8+rng.Intn(25), 3)
		var sb strings.Builder
		sb.WriteString("p cnf 0 0\n")
		direct := New(nVars)
		for _, c := range cls {
			direct.AddClause(c...)
			for _, l := range c {
				if l.IsNeg() {
					sb.WriteString("-")
				}
				sb.WriteString(itoa(l.Var()+1) + " ")
			}
			sb.WriteString("0\n")
		}
		parsed, err := ParseDIMACS(strings.NewReader(sb.String()))
		if err != nil {
			t.Fatal(err)
		}
		if (direct.Solve(Limits{}) == Sat) != (parsed.Solve(Limits{}) == Sat) {
			t.Fatalf("trial %d: DIMACS round trip changed the answer", trial)
		}
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}
