package sat

import (
	"math/rand"
	"testing"
)

// randomHardCNF builds a random 3-CNF near the phase-transition density
// so Solve has to search (conflicts, learnt clauses, restarts).
func randomHardCNF(t *testing.T, s *Solver, nVars, nClauses int, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < nClauses; i++ {
		var lits []Lit
		for len(lits) < 3 {
			v := rng.Intn(nVars)
			lits = append(lits, MkLit(v, rng.Intn(2) == 0))
		}
		if err := s.AddClause(lits...); err != nil {
			t.Fatalf("AddClause: %v", err)
		}
	}
}

func TestSolveObserver(t *testing.T) {
	s := New(60)
	randomHardCNF(t, s, 60, 250, 1)

	var calls []SolveStats
	s.SetObserver(func(ss SolveStats) { calls = append(calls, ss) })

	st1 := s.Solve(Limits{})
	if len(calls) != 1 {
		t.Fatalf("observer called %d times, want 1", len(calls))
	}
	ss := calls[0]
	if ss.Status != st1 {
		t.Fatalf("observer status %v != solve status %v", ss.Status, st1)
	}
	if ss.Delta != ss.Total {
		t.Fatalf("first call: delta %+v != total %+v", ss.Delta, ss.Total)
	}
	if ss.Delta.Decisions == 0 || ss.Delta.Propagations == 0 {
		t.Fatalf("observer saw no effort: %+v", ss.Delta)
	}
	if ss.Dur <= 0 {
		t.Fatalf("non-positive duration %v", ss.Dur)
	}
	if ss.Clauses == 0 {
		t.Fatal("observer saw no problem clauses")
	}

	// A second call must report deltas, not lifetime totals, and totals
	// must stay monotone.
	s.AddClause(MkLit(0, false), MkLit(1, false))
	st2 := s.Solve(Limits{})
	if len(calls) != 2 {
		t.Fatalf("observer called %d times, want 2", len(calls))
	}
	ss2 := calls[1]
	if ss2.Status != st2 {
		t.Fatalf("second status %v != %v", ss2.Status, st2)
	}
	if ss2.Total.Propagations < ss.Total.Propagations {
		t.Fatalf("totals went backwards: %+v then %+v", ss.Total, ss2.Total)
	}
	if got := ss2.Total.Propagations - ss.Total.Propagations; ss2.Delta.Propagations > got {
		t.Fatalf("delta %d exceeds total growth %d", ss2.Delta.Propagations, got)
	}

	// Detaching the observer stops the callbacks.
	s.SetObserver(nil)
	s.Solve(Limits{})
	if len(calls) != 2 {
		t.Fatalf("observer called after detach: %d calls", len(calls))
	}
}

func TestLBDHistogramAndReductions(t *testing.T) {
	s := New(80)
	randomHardCNF(t, s, 80, 340, 7)
	var got SolveStats
	s.SetObserver(func(ss SolveStats) { got = ss })
	s.Solve(Limits{MaxConflicts: 20000})

	if got.Delta.Conflicts == 0 {
		t.Skip("instance solved without conflicts; nothing to check")
	}
	var histTotal int64
	for _, n := range got.LBDHist {
		histTotal += n
	}
	// Every learnt clause of length ≥ 2 contributes one histogram entry;
	// unit learnts don't, so histTotal ≤ Learnts.
	if histTotal == 0 || histTotal > got.Delta.Learnts {
		t.Fatalf("LBD histogram total %d vs learnts %d", histTotal, got.Delta.Learnts)
	}
	if got.Delta.LBDSum <= 0 {
		t.Fatalf("LBDSum = %d, want > 0", got.Delta.LBDSum)
	}
	hist := s.LBDHistogram()
	var lifetime int64
	for _, n := range hist {
		lifetime += n
	}
	if lifetime < histTotal {
		t.Fatalf("lifetime histogram %d < per-call %d", lifetime, histTotal)
	}
	if got.Delta.Removed > 0 && got.Delta.Reductions == 0 {
		t.Fatalf("clauses removed (%d) without a reduction pass", got.Delta.Removed)
	}
}
