package sat

import (
	"testing"
	"time"
)

// The tests use the pigeonhole helper from sat_test.go: PHP(n+1, n) is
// unsatisfiable and exponentially hard for CDCL, so the solver cannot
// finish early by deciding the instance — a good clock-discipline probe.

// TestTimeoutOvershoot pins the deadline-stride fix: the clock must be
// consulted every checkStride search steps regardless of the conflict
// rate, so a Solve with a small Timeout returns close to it. The pre-fix
// code only checked on conflict-count multiples of 256, which let
// propagation-heavy stretches run far past the budget.
func TestTimeoutOvershoot(t *testing.T) {
	s := pigeonhole(12, 11)
	const timeout = 50 * time.Millisecond
	start := time.Now()
	st := s.Solve(Limits{Timeout: timeout})
	elapsed := time.Since(start)
	if st != Unknown {
		// PHP(12,11) proved within 50ms would be a miracle; treat any
		// definitive answer as a broken budget.
		t.Fatalf("Solve = %v, want Unknown under %v budget", st, timeout)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("Solve overshot its %v deadline by %v", timeout, elapsed-timeout)
	}
}

// TestInterrupt exercises the cooperative cancellation channel: closing
// Limits.Interrupt makes a running Solve return Unknown promptly, and a
// pre-closed channel stops the call before any search.
func TestInterrupt(t *testing.T) {
	stop := make(chan struct{})
	s := pigeonhole(12, 11)
	done := make(chan Status, 1)
	go func() { done <- s.Solve(Limits{Interrupt: stop}) }()
	time.Sleep(20 * time.Millisecond)
	close(stop)
	select {
	case st := <-done:
		if st != Unknown {
			t.Fatalf("interrupted Solve = %v, want Unknown", st)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Solve did not return after interrupt")
	}

	pre := make(chan struct{})
	close(pre)
	if st := s.Solve(Limits{Interrupt: pre}); st != Unknown {
		t.Fatalf("pre-interrupted Solve = %v, want Unknown", st)
	}
}

// TestSolveAfterInterrupt checks the solver stays usable: an interrupted
// call leaves the clause database intact, so a follow-up unbounded Solve
// on an easy instance still decides it.
func TestSolveAfterInterrupt(t *testing.T) {
	s := New(2)
	s.AddClause(MkLit(0, false), MkLit(1, false))
	s.AddClause(MkLit(0, true))
	pre := make(chan struct{})
	close(pre)
	if st := s.Solve(Limits{Interrupt: pre}); st != Unknown {
		t.Fatalf("pre-interrupted Solve = %v, want Unknown", st)
	}
	if st := s.Solve(Limits{}); st != Sat {
		t.Fatalf("follow-up Solve = %v, want Sat", st)
	}
	if !s.Model(1) {
		t.Fatal("model must set x1 (x0 is forced false)")
	}
}
