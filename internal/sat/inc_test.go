package sat

import (
	"math/rand"
	"testing"
)

// randClause draws a random 3-clause over nVars variables with distinct
// variables.
func randClause(rng *rand.Rand, nVars int) []Lit {
	vs := rng.Perm(nVars)[:3]
	c := make([]Lit, 3)
	for i, v := range vs {
		c[i] = MkLit(v, rng.Intn(2) == 0)
	}
	return c
}

// modelSatisfies checks a model against a clause set.
func modelSatisfies(model []bool, clauses [][]Lit) bool {
	for _, c := range clauses {
		ok := false
		for _, l := range c {
			if model[l.Var()] != l.IsNeg() {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// TestIncrementalMatchesFresh is the soundness property behind the CEGAR
// engine's persistent solver: interleaving Solve and AddClause must agree
// with a from-scratch solver on every prefix of the clause sequence,
// including the transition from Sat to Unsat. 200 random 3-SAT instances
// around the phase transition give plenty of both outcomes.
func TestIncrementalMatchesFresh(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for inst := 0; inst < 200; inst++ {
		nVars := 6 + rng.Intn(5)
		nClauses := int(float64(nVars)*4.3) + rng.Intn(8)
		clauses := make([][]Lit, nClauses)
		for i := range clauses {
			clauses[i] = randClause(rng, nVars)
		}

		inc := New(nVars)
		added := 0
		sawSat, sawUnsatAfterSat := false, false
		for added < nClauses {
			// Add a random-sized chunk, then solve both ways.
			chunk := 1 + rng.Intn(5)
			for i := 0; i < chunk && added < nClauses; i++ {
				inc.AddClause(clauses[added]...)
				added++
			}
			got := inc.Solve(Limits{})

			fresh := New(nVars)
			for _, c := range clauses[:added] {
				fresh.AddClause(c...)
			}
			want := fresh.Solve(Limits{})

			if got != want {
				t.Fatalf("inst %d after %d clauses: incremental=%v fresh=%v",
					inst, added, got, want)
			}
			switch got {
			case Sat:
				sawSat = true
				if m := inc.ModelSlice(); !modelSatisfies(m, clauses[:added]) {
					t.Fatalf("inst %d after %d clauses: incremental model invalid", inst, added)
				}
			case Unsat:
				if sawSat {
					sawUnsatAfterSat = true
				}
				// Once Unsat the solver must stay Unsat and refuse clauses.
				if err := inc.AddClause(clauses[0]...); err != ErrAddAfterUnsat {
					t.Fatalf("inst %d: AddClause after Unsat: err=%v", inst, err)
				}
				added = nClauses // next instance
			}
			_ = sawUnsatAfterSat
		}
	}
}

// TestUnsatAfterSat pins the exact transition the CEGAR loop relies on:
// a satisfiable formula strengthened clause by clause until refutation.
func TestUnsatAfterSat(t *testing.T) {
	s := New(2)
	x, y := MkLit(0, false), MkLit(1, false)
	s.AddClause(x, y)
	if st := s.Solve(Limits{}); st != Sat {
		t.Fatalf("step 1: %v", st)
	}
	s.AddClause(x.Not())
	if st := s.Solve(Limits{}); st != Sat {
		t.Fatalf("step 2: %v", st)
	}
	if s.Model(1) != true {
		t.Fatal("step 2: model must set y")
	}
	s.AddClause(y.Not())
	if st := s.Solve(Limits{}); st != Unsat {
		t.Fatalf("step 3: %v", st)
	}
	if st := s.Solve(Limits{}); st != Unsat {
		t.Fatalf("step 4: Unsat must persist, got %v", st)
	}
}

// TestIncrementalKeepsState documents what persists across Solve calls:
// learnt clauses and search statistics accumulate rather than reset.
func TestIncrementalKeepsState(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := New(12)
	for i := 0; i < 40; i++ {
		s.AddClause(randClause(rng, 12)...)
	}
	s.Solve(Limits{})
	before := s.Stats()
	for i := 0; i < 10; i++ {
		s.AddClause(randClause(rng, 12)...)
	}
	s.Solve(Limits{})
	after := s.Stats()
	if after.Decisions < before.Decisions || after.Conflicts < before.Conflicts {
		t.Fatalf("stats went backwards: %+v then %+v", before, after)
	}
}

// TestEnsureVars checks that variables without clause occurrences still
// receive model values.
func TestEnsureVars(t *testing.T) {
	s := New(1)
	s.EnsureVars(5)
	if s.NumVars() != 5 {
		t.Fatalf("NumVars = %d", s.NumVars())
	}
	s.AddClause(MkLit(4, false))
	if st := s.Solve(Limits{}); st != Sat {
		t.Fatalf("status %v", st)
	}
	_ = s.Model(2) // must not panic
	if !s.Model(4) {
		t.Fatal("var 4 must be true")
	}
}
