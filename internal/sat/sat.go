// Package sat implements a conflict-driven clause-learning (CDCL) SAT
// solver in the MiniSat/glucose tradition. It fills the role glucose 4.1
// plays for JANUS: deciding the CNF encodings of lattice mapping problems
// under a configurable time / conflict budget.
//
// Features: two-watched-literal propagation, first-UIP conflict analysis
// with recursive clause minimization, VSIDS variable activity with phase
// saving, Luby restarts, and glucose-style learnt-clause database
// reduction keyed on the literal block distance (LBD).
package sat

import (
	"errors"
	"fmt"
	"sort"
	"time"
)

// Lit is a literal: variable v (0-based) encoded as 2v for the positive
// literal and 2v+1 for the negation.
type Lit int32

// MkLit builds the literal of variable v with the given polarity.
func MkLit(v int, neg bool) Lit {
	l := Lit(v << 1)
	if neg {
		l |= 1
	}
	return l
}

// Var returns the literal's variable index.
func (l Lit) Var() int { return int(l >> 1) }

// IsNeg reports whether the literal is negated.
func (l Lit) IsNeg() bool { return l&1 == 1 }

// Not returns the complement literal.
func (l Lit) Not() Lit { return l ^ 1 }

// String renders the literal as v or ¬v (1-based like DIMACS).
func (l Lit) String() string {
	if l.IsNeg() {
		return fmt.Sprintf("-%d", l.Var()+1)
	}
	return fmt.Sprintf("%d", l.Var()+1)
}

// Status is the result of a Solve call.
type Status int

const (
	// Unknown means the budget was exhausted before a decision.
	Unknown Status = iota
	// Sat means a satisfying assignment was found.
	Sat
	// Unsat means the formula was proved unsatisfiable.
	Unsat
)

func (s Status) String() string {
	switch s {
	case Sat:
		return "SAT"
	case Unsat:
		return "UNSAT"
	default:
		return "UNKNOWN"
	}
}

// Limits bounds a Solve call. Zero values mean unlimited.
type Limits struct {
	MaxConflicts int64
	Timeout      time.Duration
	// Interrupt, when non-nil, cancels the search cooperatively: Solve
	// returns Unknown shortly after the channel closes. The check shares
	// the deadline's stride (checkStride search steps) plus every restart
	// boundary, so cancellation latency is bounded by a few hundred
	// propagate/decide rounds, not by conflict counts.
	Interrupt <-chan struct{}
}

// stopped reports whether the limits ask the search to give up now:
// either the interrupt channel is closed or the deadline has passed.
func (lim Limits) stopped(deadline time.Time) bool {
	select {
	case <-lim.Interrupt:
		return true
	default:
	}
	return !deadline.IsZero() && time.Now().After(deadline)
}

// Stats reports search effort counters, cumulative over the solver's
// lifetime (Solve calls interleaved with AddClause keep counting).
type Stats struct {
	Decisions    int64
	Conflicts    int64
	Propagations int64
	Restarts     int64
	Learnts      int64
	Removed      int64
	// Reductions counts learnt-DB reduction passes (each pass removes
	// many clauses; Removed counts the clauses).
	Reductions int64
	// LBDSum accumulates the literal block distance of every learnt
	// clause; LBDSum/Learnts is the mean learnt quality (lower is
	// better, glucose-style).
	LBDSum int64
}

// Sub returns the counter deltas s − t, for windowed measurements such
// as per-Solve effort.
func (s Stats) Sub(t Stats) Stats {
	return Stats{
		Decisions:    s.Decisions - t.Decisions,
		Conflicts:    s.Conflicts - t.Conflicts,
		Propagations: s.Propagations - t.Propagations,
		Restarts:     s.Restarts - t.Restarts,
		Learnts:      s.Learnts - t.Learnts,
		Removed:      s.Removed - t.Removed,
		Reductions:   s.Reductions - t.Reductions,
		LBDSum:       s.LBDSum - t.LBDSum,
	}
}

// LBDBuckets is the size of the solver's LBD distribution: bucket i
// counts learnt clauses with LBD i (clamped into the last bucket).
const LBDBuckets = 16

// SolveStats describes one Solve call, handed to the observer installed
// with SetObserver when the call returns.
type SolveStats struct {
	// Status is the call's outcome (Sat, Unsat, or Unknown on budget).
	Status Status
	// Dur is the call's wall-clock duration.
	Dur time.Duration
	// Delta is the effort this call spent; Total the cumulative counters
	// after it.
	Delta, Total Stats
	// LBDHist is the per-call LBD distribution of the clauses this call
	// learnt (see LBDBuckets).
	LBDHist [LBDBuckets]int64
	// LearntDB is the learnt-clause database size after the call.
	LearntDB int
	// Clauses is the problem clause count at the time of the call.
	Clauses int
}

type clause struct {
	lits   []Lit
	learnt bool
	lbd    int32
	act    float32
}

type watcher struct {
	c       *clause
	blocker Lit
}

// binWatcher is the specialized watch entry for two-literal clauses: when
// the watched literal is falsified, other must hold.
type binWatcher struct {
	other Lit
	c     *clause
}

type lbool int8

const (
	lUndef lbool = 0
	lTrue  lbool = 1
	lFalse lbool = -1
)

// Solver is a CDCL SAT solver. The zero value is not usable; call New.
type Solver struct {
	nVars      int
	clauses    []*clause
	learnts    []*clause
	watches    [][]watcher
	binWatches [][]binWatcher

	assign   []lbool // per literal (2v positive, 2v+1 negative)
	level    []int32
	reason   []*clause
	phase    []bool // saved phases
	activity []float64
	varInc   float64
	varDecay float64

	heap    []int32 // binary max-heap of variables by activity
	heapPos []int32 // position in heap, -1 if absent

	trail    []Lit
	trailLim []int32
	qhead    int

	claInc   float32
	ok       bool
	stats    Stats
	seen     []bool
	lbdStamp []int64
	lbdGen   int64
	lbdHist  [LBDBuckets]int64

	learntCap int

	// assume holds the current call's assumption literals: assumption i
	// is decided at decision level i+1 before any branching. finalCore
	// records, after an Unsat answer under assumptions, the subset of the
	// assumptions the refutation actually used.
	assume    []Lit
	finalCore []Lit

	// observer, when set, receives per-call statistics at the end of
	// every Solve. It lets an external tracer see inside the CDCL loop
	// without this package depending on it (internal/obsv stays a
	// consumer, not a dependency).
	observer func(SolveStats)
}

// New returns a solver over nVars variables.
func New(nVars int) *Solver {
	s := &Solver{varDecay: 0.95, varInc: 1.0, claInc: 1.0, ok: true, learntCap: 8192}
	s.grow(nVars)
	return s
}

func (s *Solver) grow(nVars int) {
	for v := s.nVars; v < nVars; v++ {
		s.assign = append(s.assign, lUndef, lUndef)
		s.level = append(s.level, 0)
		s.reason = append(s.reason, nil)
		s.phase = append(s.phase, false)
		s.activity = append(s.activity, 0)
		s.seen = append(s.seen, false)
		s.lbdStamp = append(s.lbdStamp, 0)
		s.watches = append(s.watches, nil, nil)
		s.binWatches = append(s.binWatches, nil, nil)
		s.heapPos = append(s.heapPos, -1)
		s.heapInsert(int32(v))
	}
	s.nVars = nVars
}

// NumVars returns the variable count.
func (s *Solver) NumVars() int { return s.nVars }

// NumClauses returns the number of problem clauses currently stored.
func (s *Solver) NumClauses() int { return len(s.clauses) }

// Stats returns search counters accumulated so far.
func (s *Solver) Stats() Stats { return s.stats }

// LBDHistogram returns the lifetime LBD distribution of learnt clauses:
// element i counts clauses learnt with LBD i, the last element catching
// everything at or above LBDBuckets−1.
func (s *Solver) LBDHistogram() [LBDBuckets]int64 { return s.lbdHist }

// SetObserver installs a callback invoked at the end of every Solve call
// with that call's statistics. A nil observer disables the hook. The
// callback runs on the Solve goroutine; it must not call back into the
// solver.
func (s *Solver) SetObserver(fn func(SolveStats)) { s.observer = fn }

// AddVar allocates a fresh variable and returns its index.
func (s *Solver) AddVar() int {
	v := s.nVars
	s.grow(v + 1)
	return v
}

// EnsureVars grows the variable space to at least n variables, so that
// models of incrementally added formulas cover variables that do not yet
// occur in any clause.
func (s *Solver) EnsureVars(n int) {
	if n > s.nVars {
		s.grow(n)
	}
}

func (s *Solver) value(l Lit) lbool { return s.assign[l] }

// ErrAddAfterUnsat is returned when clauses are added to a solver already
// known to be unsatisfiable.
var ErrAddAfterUnsat = errors.New("sat: solver is already unsatisfiable")

// AddClause adds a clause given as a literal slice. It performs level-0
// simplifications: duplicate removal, tautology elimination, false-literal
// stripping. Adding the empty clause makes the solver permanently Unsat.
//
// AddClause may be called again after Solve has returned, which makes the
// solver incremental: the search state is rewound to decision level 0 (so
// read the model first — it is invalidated), the new clause is attached,
// and the next Solve re-propagates from scratch while keeping all learnt
// clauses, VSIDS activity, and saved phases. Learnt clauses remain sound
// because they are resolvents of the existing clauses, which adding new
// clauses never invalidates.
func (s *Solver) AddClause(lits ...Lit) error {
	if !s.ok {
		return ErrAddAfterUnsat
	}
	s.backtrackTo(0)
	// Normalize.
	ls := append([]Lit(nil), lits...)
	sort.Slice(ls, func(i, j int) bool { return ls[i] < ls[j] })
	out := ls[:0]
	var prev Lit = -1
	for _, l := range ls {
		if int(l>>1) >= s.nVars {
			s.grow(int(l>>1) + 1)
		}
		if l == prev {
			continue
		}
		if prev >= 0 && l == prev.Not() {
			return nil // tautology
		}
		switch s.value(l) {
		case lTrue:
			return nil // already satisfied at level 0
		case lFalse:
			continue // drop falsified literal
		}
		out = append(out, l)
		prev = l
	}
	switch len(out) {
	case 0:
		s.ok = false
		return nil
	case 1:
		s.uncheckedEnqueue(out[0], nil)
		if s.propagate() != nil {
			s.ok = false
		}
		return nil
	}
	c := &clause{lits: append([]Lit(nil), out...)}
	s.clauses = append(s.clauses, c)
	s.attach(c)
	return nil
}

func (s *Solver) attach(c *clause) {
	if len(c.lits) == 2 {
		s.binWatches[c.lits[0].Not()] = append(s.binWatches[c.lits[0].Not()], binWatcher{c.lits[1], c})
		s.binWatches[c.lits[1].Not()] = append(s.binWatches[c.lits[1].Not()], binWatcher{c.lits[0], c})
		return
	}
	s.watches[c.lits[0].Not()] = append(s.watches[c.lits[0].Not()], watcher{c, c.lits[1]})
	s.watches[c.lits[1].Not()] = append(s.watches[c.lits[1].Not()], watcher{c, c.lits[0]})
}

func (s *Solver) detach(c *clause) {
	if len(c.lits) == 2 {
		for _, w := range []Lit{c.lits[0].Not(), c.lits[1].Not()} {
			ws := s.binWatches[w]
			for i := range ws {
				if ws[i].c == c {
					ws[i] = ws[len(ws)-1]
					s.binWatches[w] = ws[:len(ws)-1]
					break
				}
			}
		}
		return
	}
	for _, w := range []Lit{c.lits[0].Not(), c.lits[1].Not()} {
		ws := s.watches[w]
		for i := range ws {
			if ws[i].c == c {
				ws[i] = ws[len(ws)-1]
				s.watches[w] = ws[:len(ws)-1]
				break
			}
		}
	}
}

func (s *Solver) decisionLevel() int { return len(s.trailLim) }

func (s *Solver) uncheckedEnqueue(l Lit, from *clause) {
	v := l.Var()
	s.assign[l] = lTrue
	s.assign[l^1] = lFalse
	s.level[v] = int32(s.decisionLevel())
	s.reason[v] = from
	s.trail = append(s.trail, l)
}

// propagate performs unit propagation; returns a conflicting clause or nil.
func (s *Solver) propagate() *clause {
	for s.qhead < len(s.trail) {
		p := s.trail[s.qhead]
		s.qhead++
		s.stats.Propagations++
		notP := p.Not()
		// Binary clauses first: no watch juggling needed.
		for _, bw := range s.binWatches[p] {
			switch s.value(bw.other) {
			case lFalse:
				s.qhead = len(s.trail)
				return bw.c
			case lUndef:
				s.uncheckedEnqueue(bw.other, bw.c)
			}
		}
		ws := s.watches[p]
		n := 0
	nextWatcher:
		for i := 0; i < len(ws); i++ {
			w := ws[i]
			if s.value(w.blocker) == lTrue {
				ws[n] = w
				n++
				continue
			}
			c := w.c
			// Make sure the falsified literal is lits[1].
			if c.lits[0] == notP {
				c.lits[0], c.lits[1] = c.lits[1], c.lits[0]
			}
			first := c.lits[0]
			if first != w.blocker && s.value(first) == lTrue {
				ws[n] = watcher{c, first}
				n++
				continue
			}
			// Look for a new watch.
			for k := 2; k < len(c.lits); k++ {
				if s.value(c.lits[k]) != lFalse {
					c.lits[1], c.lits[k] = c.lits[k], c.lits[1]
					s.watches[c.lits[1].Not()] = append(s.watches[c.lits[1].Not()], watcher{c, first})
					continue nextWatcher
				}
			}
			// Unit or conflict.
			ws[n] = watcher{c, first}
			n++
			if s.value(first) == lFalse {
				// Conflict: copy back remaining watchers and bail.
				for i++; i < len(ws); i++ {
					ws[n] = ws[i]
					n++
				}
				s.watches[p] = ws[:n]
				s.qhead = len(s.trail)
				return c
			}
			s.uncheckedEnqueue(first, c)
		}
		s.watches[p] = ws[:n]
	}
	return nil
}

func (s *Solver) varBump(v int) {
	s.activity[v] += s.varInc
	if s.activity[v] > 1e100 {
		for i := range s.activity {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
	}
	if s.heapPos[v] >= 0 {
		s.heapUp(s.heapPos[v])
	}
}

func (s *Solver) varDecayActivity() { s.varInc /= s.varDecay }

func (s *Solver) claBump(c *clause) {
	c.act += s.claInc
	if c.act > 1e30 {
		for _, lc := range s.learnts {
			lc.act *= 1e-30
		}
		s.claInc *= 1e-30
	}
}

// lbdPrecise counts the distinct decision levels among the clause literals
// (the glucose LBD measure), using a stamped array to avoid allocation.
func (s *Solver) lbdPrecise(lits []Lit) int32 {
	s.lbdGen++
	var n int32
	for _, l := range lits {
		lv := int(s.level[l.Var()])
		if lv == 0 {
			continue
		}
		for lv >= len(s.lbdStamp) {
			s.lbdStamp = append(s.lbdStamp, 0)
		}
		if s.lbdStamp[lv] != s.lbdGen {
			s.lbdStamp[lv] = s.lbdGen
			n++
		}
	}
	return n
}

// analyze performs first-UIP conflict analysis. It returns the learnt
// clause (asserting literal first) and the backtrack level.
func (s *Solver) analyze(confl *clause) ([]Lit, int) {
	learnt := []Lit{0} // placeholder for the asserting literal
	pathC := 0
	var p Lit = -1
	idx := len(s.trail) - 1
	var toClear []int

	for {
		s.claBump(confl)
		for _, q := range confl.lits {
			if p >= 0 && q == p {
				continue
			}
			v := q.Var()
			if !s.seen[v] && s.level[v] > 0 {
				s.seen[v] = true
				toClear = append(toClear, v)
				s.varBump(v)
				if int(s.level[v]) >= s.decisionLevel() {
					pathC++
				} else {
					learnt = append(learnt, q)
				}
			}
		}
		// Select next literal to look at.
		for !s.seen[s.trail[idx].Var()] {
			idx--
		}
		p = s.trail[idx]
		idx--
		v := p.Var()
		s.seen[v] = false
		confl = s.reason[v]
		pathC--
		if pathC == 0 {
			break
		}
	}
	learnt[0] = p.Not()

	// Clause minimization: drop literals implied by the rest. The literals
	// of learnt[1:] are still marked seen, which redundant() relies on.
	out := learnt[:1]
	for i := 1; i < len(learnt); i++ {
		if !s.redundant(learnt[i]) {
			out = append(out, learnt[i])
		}
	}
	learnt = out
	for _, v := range toClear {
		s.seen[v] = false
	}

	// Backtrack level: max level among learnt[1:], and move that literal to
	// position 1 for watching.
	btLevel := 0
	if len(learnt) > 1 {
		maxI := 1
		for i := 2; i < len(learnt); i++ {
			if s.level[learnt[i].Var()] > s.level[learnt[maxI].Var()] {
				maxI = i
			}
		}
		learnt[1], learnt[maxI] = learnt[maxI], learnt[1]
		btLevel = int(s.level[learnt[1].Var()])
	}
	return learnt, btLevel
}

// analyzeFinal computes the final-conflict core: given assumption p found
// falsified while establishing the assumption levels, it walks the
// implication trail backwards and collects the subset of the already
// established assumptions that (together with p) the refutation actually
// used. The core is returned in the assumptions' original polarity, p
// included, so a caller activating clause groups by assumption literal
// can read exactly which groups conflicted.
func (s *Solver) analyzeFinal(p Lit) []Lit {
	core := []Lit{p}
	if s.decisionLevel() == 0 {
		// p is refuted by level-0 facts alone (e.g. a learnt unit): no
		// other assumption shares the blame.
		return core
	}
	s.seen[p.Var()] = true
	for i := len(s.trail) - 1; i >= int(s.trailLim[0]); i-- {
		v := s.trail[i].Var()
		if !s.seen[v] {
			continue
		}
		if s.reason[v] == nil {
			// A decision below the branching levels is an assumption.
			if s.level[v] > 0 {
				core = append(core, s.trail[i])
			}
		} else {
			for _, q := range s.reason[v].lits {
				if q.Var() != v && s.level[q.Var()] > 0 {
					s.seen[q.Var()] = true
				}
			}
		}
		s.seen[v] = false
	}
	s.seen[p.Var()] = false
	return core
}

// FinalCore returns the assumptions responsible for the last SolveAssume
// call's Unsat answer, in their original polarity. A nil core after Unsat
// means the formula is unsatisfiable regardless of assumptions. The slice
// is valid until the next Solve/SolveAssume call.
func (s *Solver) FinalCore() []Lit { return s.finalCore }

// redundant reports whether literal l of a learnt clause is implied by the
// remaining marked literals (simple non-recursive check on its reason).
func (s *Solver) redundant(l Lit) bool {
	r := s.reason[l.Var()]
	if r == nil {
		return false
	}
	for _, q := range r.lits {
		if q.Var() == l.Var() {
			continue
		}
		if s.level[q.Var()] != 0 && !s.seen[q.Var()] {
			return false
		}
	}
	return true
}

func (s *Solver) backtrackTo(level int) {
	if s.decisionLevel() <= level {
		return
	}
	lim := s.trailLim[level]
	for i := len(s.trail) - 1; i >= int(lim); i-- {
		l := s.trail[i]
		v := l.Var()
		s.phase[v] = s.assign[l&^1] == lTrue
		s.assign[l] = lUndef
		s.assign[l^1] = lUndef
		s.reason[v] = nil
		if s.heapPos[v] < 0 {
			s.heapInsert(int32(v))
		}
	}
	s.trail = s.trail[:lim]
	s.trailLim = s.trailLim[:level]
	s.qhead = len(s.trail)
}

// --- decision heap -------------------------------------------------------

func (s *Solver) heapLess(a, b int32) bool { return s.activity[a] > s.activity[b] }

func (s *Solver) heapInsert(v int32) {
	s.heapPos[v] = int32(len(s.heap))
	s.heap = append(s.heap, v)
	s.heapUp(s.heapPos[v])
}

func (s *Solver) heapUp(i int32) {
	v := s.heap[i]
	for i > 0 {
		parent := (i - 1) / 2
		if !s.heapLess(v, s.heap[parent]) {
			break
		}
		s.heap[i] = s.heap[parent]
		s.heapPos[s.heap[i]] = i
		i = parent
	}
	s.heap[i] = v
	s.heapPos[v] = i
}

func (s *Solver) heapDown(i int32) {
	v := s.heap[i]
	n := int32(len(s.heap))
	for {
		c := 2*i + 1
		if c >= n {
			break
		}
		if c+1 < n && s.heapLess(s.heap[c+1], s.heap[c]) {
			c++
		}
		if !s.heapLess(s.heap[c], v) {
			break
		}
		s.heap[i] = s.heap[c]
		s.heapPos[s.heap[i]] = i
		i = c
	}
	s.heap[i] = v
	s.heapPos[v] = i
}

func (s *Solver) heapPop() int32 {
	v := s.heap[0]
	last := s.heap[len(s.heap)-1]
	s.heap = s.heap[:len(s.heap)-1]
	s.heapPos[v] = -1
	if len(s.heap) > 0 {
		s.heap[0] = last
		s.heapPos[last] = 0
		s.heapDown(0)
	}
	return v
}

func (s *Solver) pickBranchVar() int {
	for len(s.heap) > 0 {
		v := s.heapPop()
		if s.assign[v<<1] == lUndef {
			return int(v)
		}
	}
	return -1
}

// --- learnt DB management ------------------------------------------------

func (s *Solver) reduceDB() {
	s.stats.Reductions++
	sort.Slice(s.learnts, func(i, j int) bool {
		a, b := s.learnts[i], s.learnts[j]
		if a.lbd != b.lbd {
			return a.lbd > b.lbd // worst first
		}
		return a.act < b.act
	})
	keepFrom := len(s.learnts) / 2
	kept := s.learnts[:0]
	for i, c := range s.learnts {
		locked := false
		if s.value(c.lits[0]) == lTrue && s.reason[c.lits[0].Var()] == c {
			locked = true
		}
		if i >= keepFrom || c.lbd <= 3 || len(c.lits) == 2 || locked {
			kept = append(kept, c)
		} else {
			s.detach(c)
			s.stats.Removed++
		}
	}
	s.learnts = kept
}

// PruneLearnts detaches every learnt clause whose LBD exceeds maxLBD or
// whose length exceeds maxSize, the same quality measures reduceDB keys
// on. Binary clauses and clauses locked as propagation reasons are always
// kept, so the operation is safe between Solve calls; learnt clauses are
// implied by the formula, so dropping any subset never changes an answer,
// only how much pruning the next call inherits. The trail is unwound to
// decision level 0 first, which invalidates any model from the previous
// Solve. Returns the number of clauses removed.
//
// A caller sharing one solver across many assumption frames (see
// internal/encode.SharedPool) uses this when switching frames: clauses
// learnt deep inside one frame tend to mention its activation literal and
// rate a high LBD, so they are watch-list freight for every other frame.
func (s *Solver) PruneLearnts(maxLBD int32, maxSize int) int {
	s.backtrackTo(0)
	kept := s.learnts[:0]
	removed := 0
	for _, c := range s.learnts {
		locked := s.value(c.lits[0]) == lTrue && s.reason[c.lits[0].Var()] == c
		if locked || len(c.lits) == 2 || (c.lbd <= maxLBD && len(c.lits) <= maxSize) {
			kept = append(kept, c)
		} else {
			s.detach(c)
			removed++
		}
	}
	s.learnts = kept
	if removed > 0 {
		s.stats.Removed += int64(removed)
		s.stats.Reductions++
	}
	return removed
}

// luby returns element x (0-based) of the Luby restart sequence
// 1,1,2,1,1,2,4,1,1,2,1,1,2,4,8,... (MiniSat's formulation).
func luby(x int64) int64 {
	size, seq := int64(1), uint(0)
	for size < x+1 {
		seq++
		size = 2*size + 1
	}
	for size-1 != x {
		size = (size - 1) >> 1
		seq--
		x %= size
	}
	return int64(1) << seq
}

// Solve runs the CDCL search under the given limits. When the result is
// Sat, Model returns the satisfying assignment.
//
// Solve may be called repeatedly, interleaved with AddClause: each call
// restarts the search from decision level 0 against the clauses added so
// far, reusing the learnt-clause database, variable activities, and saved
// phases accumulated by earlier calls.
func (s *Solver) Solve(lim Limits) Status { return s.SolveAssume(lim) }

// SolveAssume runs the CDCL search with the given assumption literals
// held true for the duration of this call only. Assumptions are decided
// on dedicated decision levels before any branching, so an Unsat answer
// means "unsatisfiable under these assumptions" — the solver itself stays
// usable, and FinalCore reports which assumptions the refutation used (a
// nil core means the formula is unsatisfiable outright). Learnt clauses,
// variable activities, and saved phases persist across calls exactly as
// with Solve; clauses learnt under assumptions mention the assumption
// literals explicitly, so they remain globally sound and keep pruning
// later calls made under different assumptions.
func (s *Solver) SolveAssume(lim Limits, assumptions ...Lit) Status {
	for _, a := range assumptions {
		if int(a>>1) >= s.nVars {
			s.grow(int(a>>1) + 1)
		}
	}
	s.assume = assumptions
	s.finalCore = nil
	defer func() { s.assume = nil }()
	if s.observer == nil {
		return s.solve(lim)
	}
	before, histBefore := s.stats, s.lbdHist
	start := time.Now()
	st := s.solve(lim)
	ss := SolveStats{
		Status:   st,
		Dur:      time.Since(start),
		Delta:    s.stats.Sub(before),
		Total:    s.stats,
		LearntDB: len(s.learnts),
		Clauses:  len(s.clauses),
	}
	for i := range ss.LBDHist {
		ss.LBDHist[i] = s.lbdHist[i] - histBefore[i]
	}
	s.observer(ss)
	return st
}

func (s *Solver) solve(lim Limits) Status {
	if !s.ok {
		return Unsat
	}
	s.backtrackTo(0)
	var deadline time.Time
	if lim.Timeout > 0 {
		deadline = time.Now().Add(lim.Timeout)
	}
	if lim.stopped(deadline) {
		return Unknown
	}
	restartN := int64(0)
	for {
		budget := luby(restartN) * 128
		restartN++
		st := s.search(budget, lim, deadline)
		if st != Unknown {
			return st
		}
		if lim.MaxConflicts > 0 && s.stats.Conflicts >= lim.MaxConflicts {
			s.backtrackTo(0)
			return Unknown
		}
		// Restart boundary: re-check the deadline and the interrupt even
		// when the conflict stride inside search never fired.
		if lim.stopped(deadline) {
			s.backtrackTo(0)
			return Unknown
		}
		s.stats.Restarts++
	}
}

// checkStride is how many search steps (propagate/decide or conflict
// rounds) pass between deadline/interrupt checks. The pre-fix code keyed
// the check on conflict counts alone (`conflicts%256 == 0` on the
// no-conflict branch), so after the first conflict a low-conflict,
// high-propagation instance would not look at the clock again until 256
// conflicts accumulated — far past Limits.Timeout on instances whose
// time goes into propagation. Counting every loop iteration bounds the
// overshoot by the stride regardless of the conflict rate.
const checkStride = 256

func (s *Solver) search(budget int64, lim Limits, deadline time.Time) Status {
	conflicts := int64(0)
	steps := int64(0)
	for {
		steps++
		if steps%checkStride == 0 && lim.stopped(deadline) {
			s.backtrackTo(0)
			return Unknown
		}
		confl := s.propagate()
		if confl != nil {
			s.stats.Conflicts++
			conflicts++
			if s.decisionLevel() == 0 {
				s.ok = false
				return Unsat
			}
			learnt, btLevel := s.analyze(confl)
			s.backtrackTo(btLevel)
			if len(learnt) == 1 {
				s.uncheckedEnqueue(learnt[0], nil)
			} else {
				c := &clause{lits: learnt, learnt: true}
				c.lbd = s.lbdPrecise(learnt)
				s.learnts = append(s.learnts, c)
				s.stats.Learnts++
				s.stats.LBDSum += int64(c.lbd)
				if b := int(c.lbd); b < LBDBuckets {
					s.lbdHist[b]++
				} else {
					s.lbdHist[LBDBuckets-1]++
				}
				s.attach(c)
				s.claBump(c)
				s.uncheckedEnqueue(learnt[0], c)
			}
			s.varDecayActivity()
			continue
		}
		// No conflict.
		if conflicts >= budget {
			s.backtrackTo(0)
			return Unknown
		}
		if lim.MaxConflicts > 0 && s.stats.Conflicts >= lim.MaxConflicts {
			s.backtrackTo(0)
			return Unknown
		}
		if len(s.learnts) > s.learntCap+len(s.trail) {
			s.reduceDB()
			s.learntCap += 256
		}
		// Establish the assumption levels before any branching. A restart
		// or a deep backtrack unwinds them; this loop re-asserts whichever
		// are missing, one propagation round at a time.
		if s.decisionLevel() < len(s.assume) {
			p := s.assume[s.decisionLevel()]
			switch s.value(p) {
			case lTrue:
				// Already implied: open a dummy level so assumption i
				// stays pinned to decision level i+1.
				s.trailLim = append(s.trailLim, int32(len(s.trail)))
			case lFalse:
				// The remaining assumptions are incompatible with what the
				// formula (plus the established assumptions) implies.
				s.finalCore = s.analyzeFinal(p)
				s.backtrackTo(0)
				return Unsat
			default:
				s.trailLim = append(s.trailLim, int32(len(s.trail)))
				s.uncheckedEnqueue(p, nil)
			}
			continue
		}
		v := s.pickBranchVar()
		if v < 0 {
			return Sat // all variables assigned
		}
		s.stats.Decisions++
		s.trailLim = append(s.trailLim, int32(len(s.trail)))
		s.uncheckedEnqueue(MkLit(v, !s.phase[v]), nil)
	}
}

// Model returns the value of variable v in the last satisfying assignment.
// Only meaningful immediately after Solve returned Sat.
func (s *Solver) Model(v int) bool { return s.assign[v<<1] == lTrue }

// ModelSlice copies the full model into a bool slice.
func (s *Solver) ModelSlice() []bool {
	m := make([]bool, s.nVars)
	for v := 0; v < s.nVars; v++ {
		m[v] = s.assign[v<<1] == lTrue
	}
	return m
}
