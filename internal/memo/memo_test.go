package memo

import (
	"sync"
	"testing"

	"github.com/lattice-tools/janus/internal/cube"
	"github.com/lattice-tools/janus/internal/lattice"
	"github.com/lattice-tools/janus/internal/truth"
)

func TestPathsCached(t *testing.T) {
	Reset()
	g := lattice.Grid{M: 3, N: 3}
	a := Paths(g, false)
	b := Paths(g, false)
	if len(a) != len(b) || len(a) == 0 {
		t.Fatalf("path counts differ: %d vs %d", len(a), len(b))
	}
	if &a[0] != &b[0] {
		t.Fatal("second lookup did not hit the cache")
	}
	if got := int64(len(a)); g.CountPaths() != got {
		t.Fatalf("cached enumeration wrong: %d paths", got)
	}
	s := Snapshot()
	if s.PathHits != 1 || s.PathMisses != 1 {
		t.Fatalf("stats = %+v, want 1 hit 1 miss", s)
	}
	// Dual orientation is a distinct key.
	d := Paths(g, true)
	if int64(len(d)) != g.CountDualPaths() {
		t.Fatal("dual enumeration wrong")
	}
}

func TestTableOfCanonicalKey(t *testing.T) {
	Reset()
	f := cube.NewCover(3,
		cube.FromLiterals([]int{0, 1}, nil),
		cube.FromLiterals(nil, []int{2}))
	perm := cube.Cover{N: 3, Cubes: []cube.Cube{f.Cubes[1], f.Cubes[0]}}

	before := truth.FromCoverCalls()
	a := TableOf(f)
	b := TableOf(perm) // same cube set, different order: must hit
	if truth.FromCoverCalls() != before+1 {
		t.Fatalf("table built %d times, want 1", truth.FromCoverCalls()-before)
	}
	if a != b || !a.Equal(truth.FromCover(f)) {
		t.Fatal("cached table wrong or not shared")
	}
	s := Snapshot()
	if s.TableHits != 1 || s.TableMisses != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestFunctionClonesCubes(t *testing.T) {
	Reset()
	g := lattice.Grid{M: 2, N: 2}
	a := Function(g, false)
	a.Cubes[0] = cube.Cube{} // mutate the returned copy
	b := Function(g, false)
	if b.Cubes[0] == (cube.Cube{}) {
		t.Fatal("cache returned an aliased cube slice")
	}
	if len(b.Cubes) != len(g.Function().Cubes) {
		t.Fatal("cached cover wrong")
	}
}

func TestEviction(t *testing.T) {
	c := newCache(10)
	c.put("a", 1, 6)
	c.put("b", 2, 6) // over budget: evicts a
	if _, ok := c.get("a"); ok {
		t.Fatal("a should have been evicted")
	}
	if _, ok := c.get("b"); !ok {
		t.Fatal("b should remain")
	}
	// An oversized entry is kept (never wedge empty) until the next put.
	c.put("huge", 3, 100)
	if _, ok := c.get("huge"); !ok {
		t.Fatal("newest entry must survive its own insert")
	}
}

func TestConcurrentAccess(t *testing.T) {
	Reset()
	grids := []lattice.Grid{{M: 2, N: 2}, {M: 3, N: 2}, {M: 3, N: 3}, {M: 4, N: 3}}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				g := grids[(w+i)%len(grids)]
				dual := i%2 == 0
				ps := Paths(g, dual)
				if len(ps) == 0 {
					t.Error("empty path enumeration")
					return
				}
				TableOf(Function(g, dual))
			}
		}(w)
	}
	wg.Wait()
	s := Snapshot()
	if s.Hits() == 0 || s.Misses() == 0 {
		t.Fatalf("expected both hits and misses, got %+v", s)
	}
}
