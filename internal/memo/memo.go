// Package memo provides small, concurrency-safe, process-wide caches for
// the quantities the synthesis search recomputes most: minimal-path
// enumerations of a lattice, the lattice (dual) function covers built
// from them, and truth tables of SOP covers.
//
// The dichotomic search, the DS/MF sub-syntheses, and parallel candidate
// workers all revisit the same small grids and targets over and over —
// every build of an LM formulation used to re-enumerate Grid.Paths() and
// re-evaluate truth.FromCover from scratch. Each cache here is a mutexed
// LRU with a cost budget (not an entry count: a single wide lattice's
// path list can outweigh a thousand small ones), safe under
// core.Options.Workers > 1. Cached values are shared; callers must treat
// them as immutable.
package memo

import (
	"container/list"
	"encoding/binary"
	"sort"
	"sync"

	"github.com/lattice-tools/janus/internal/cube"
	"github.com/lattice-tools/janus/internal/lattice"
	"github.com/lattice-tools/janus/internal/obsv"
	"github.com/lattice-tools/janus/internal/truth"
)

// cache is a mutex-protected LRU keyed by string, evicting by total cost.
type cache struct {
	mu     sync.Mutex
	budget int64
	used   int64
	order  *list.List // front = most recently used
	items  map[string]*list.Element
	hits   int64
	misses int64
}

type entry struct {
	key  string
	val  any
	cost int64
}

func newCache(budget int64) *cache {
	return &cache{budget: budget, order: list.New(), items: make(map[string]*list.Element)}
}

func (c *cache) get(k string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.items[k]; ok {
		c.order.MoveToFront(e)
		c.hits++
		return e.Value.(*entry).val, true
	}
	c.misses++
	return nil, false
}

// put inserts a computed value. Concurrent computers of the same key may
// both call put; the second insert is dropped (the values are equal).
func (c *cache) put(k string, v any, cost int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.items[k]; ok {
		return
	}
	c.items[k] = c.order.PushFront(&entry{key: k, val: v, cost: cost})
	c.used += cost
	// Evict least-recently-used entries over budget, but always keep the
	// newest so an oversized value cannot wedge the cache empty.
	for c.used > c.budget && c.order.Len() > 1 {
		back := c.order.Back()
		ent := back.Value.(*entry)
		c.order.Remove(back)
		delete(c.items, ent.key)
		c.used -= ent.cost
	}
}

func (c *cache) counters() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

func (c *cache) reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.order.Init()
	c.items = make(map[string]*list.Element)
	c.used, c.hits, c.misses = 0, 0, 0
}

// Budgets, in cache-specific cost units (see the cost expressions at the
// put sites). Sized for tens of MB total, far above what the paper's
// instance sizes need but bounded against pathological sweeps.
const (
	pathBudget  = 16 << 20 // total path cells across cached enumerations
	tableBudget = 4 << 20  // total 64-bit words across cached tables
	coverBudget = 1 << 20  // total cubes across cached covers
)

var (
	pathCache  = newCache(pathBudget)
	tableCache = newCache(tableBudget)
	coverCache = newCache(coverBudget)
)

// The cache counters are exposed through the process-wide metrics
// registry (janus_memo_*), so /metrics, expvar, and the cmd footers read
// hit rates from one place instead of re-threading Snapshot by hand.
// They are function-backed gauges, not counters, because Reset may send
// them back to zero.
func init() {
	for _, c := range []struct {
		name  string
		cache *cache
	}{
		{"paths", pathCache},
		{"tables", tableCache},
		{"covers", coverCache},
	} {
		cache := c.cache
		obsv.Default.RegisterFunc("janus_memo_"+c.name+"_hits", func() int64 {
			h, _ := cache.counters()
			return h
		})
		obsv.Default.RegisterFunc("janus_memo_"+c.name+"_misses", func() int64 {
			_, m := cache.counters()
			return m
		})
	}
}

// gridKey encodes (M, N, dual) into a compact string key.
func gridKey(g lattice.Grid, dual bool) string {
	var b [9]byte
	binary.LittleEndian.PutUint32(b[0:], uint32(g.M))
	binary.LittleEndian.PutUint32(b[4:], uint32(g.N))
	if dual {
		b[8] = 1
	}
	return string(b[:])
}

// coverKey builds the canonical key of a cover: the variable count plus
// the (Pos, Neg) masks of its cubes in sorted order, so permutations of
// the same cube set share one cache line. The key is exact — no hashing —
// so collisions cannot alias two different functions.
func coverKey(f cube.Cover) string {
	cubes := append([]cube.Cube(nil), f.Cubes...)
	sort.Slice(cubes, func(i, j int) bool {
		if cubes[i].Pos != cubes[j].Pos {
			return cubes[i].Pos < cubes[j].Pos
		}
		return cubes[i].Neg < cubes[j].Neg
	})
	b := make([]byte, 4+16*len(cubes))
	binary.LittleEndian.PutUint32(b[0:], uint32(f.N))
	for i, c := range cubes {
		binary.LittleEndian.PutUint64(b[4+16*i:], c.Pos)
		binary.LittleEndian.PutUint64(b[12+16*i:], c.Neg)
	}
	return string(b)
}

// CoverKey exposes the canonical cover key for callers that need to
// index their own per-function state (the shared-solver pool keys its
// engines by cover and orientation) with the same exactness guarantee.
func CoverKey(f cube.Cover) string { return coverKey(f) }

// Paths returns the minimal-path enumeration of the grid (primal
// top–bottom, or dual 8-connected left–right), cached process-wide. The
// returned slice is shared: callers must not modify it or the paths'
// Cells.
func Paths(g lattice.Grid, dual bool) []lattice.Path {
	k := gridKey(g, dual)
	if v, ok := pathCache.get(k); ok {
		return v.([]lattice.Path)
	}
	ps := g.PathsOf(dual)
	cost := int64(1)
	for _, p := range ps {
		cost += int64(len(p.Cells))
	}
	pathCache.put(k, ps, cost)
	return ps
}

// Function returns the lattice (dual) function cover, cached
// process-wide. The cover's cube slice is cloned on the way out so the
// caller may extend it freely.
func Function(g lattice.Grid, dual bool) cube.Cover {
	k := gridKey(g, dual)
	if v, ok := coverCache.get(k); ok {
		f := v.(cube.Cover)
		return cube.Cover{N: f.N, Cubes: append([]cube.Cube(nil), f.Cubes...)}
	}
	f := g.FunctionOf(dual)
	coverCache.put(k, f, int64(len(f.Cubes))+1)
	return cube.Cover{N: f.N, Cubes: append([]cube.Cube(nil), f.Cubes...)}
}

// TableOf returns the truth table of the cover, cached process-wide
// under the cover's canonical cube key. The returned table is shared:
// callers must treat it as read-only.
func TableOf(f cube.Cover) *truth.Table {
	k := coverKey(f)
	if v, ok := tableCache.get(k); ok {
		return v.(*truth.Table)
	}
	t := truth.FromCover(f)
	words := int64(1)
	if f.N > 6 {
		words = 1 << uint(f.N-6)
	}
	tableCache.put(k, t, words)
	return t
}

// Stats is a snapshot of the cache hit/miss counters.
type Stats struct {
	PathHits, PathMisses   int64
	TableHits, TableMisses int64
	CoverHits, CoverMisses int64
}

// Hits returns the total hits across all caches.
func (s Stats) Hits() int64 { return s.PathHits + s.TableHits + s.CoverHits }

// Misses returns the total misses across all caches.
func (s Stats) Misses() int64 { return s.PathMisses + s.TableMisses + s.CoverMisses }

// Sub returns the counter deltas s − t, for windowed measurements.
func (s Stats) Sub(t Stats) Stats {
	return Stats{
		PathHits: s.PathHits - t.PathHits, PathMisses: s.PathMisses - t.PathMisses,
		TableHits: s.TableHits - t.TableHits, TableMisses: s.TableMisses - t.TableMisses,
		CoverHits: s.CoverHits - t.CoverHits, CoverMisses: s.CoverMisses - t.CoverMisses,
	}
}

// Snapshot reads the current process-wide counters.
func Snapshot() Stats {
	var s Stats
	s.PathHits, s.PathMisses = pathCache.counters()
	s.TableHits, s.TableMisses = tableCache.counters()
	s.CoverHits, s.CoverMisses = coverCache.counters()
	return s
}

// Reset clears all caches and counters. Intended for tests and
// benchmarks that need cold-cache or exact-count conditions.
func Reset() {
	pathCache.reset()
	tableCache.reset()
	coverCache.reset()
}
