package memo

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/lattice-tools/janus/internal/lattice"
)

// TestPathSnapshotRoundtrip: saving after warming the cache and loading
// into a cold cache must make the warmed enumerations hits, not misses,
// and the restored paths must be structurally identical (cells and mask).
func TestPathSnapshotRoundtrip(t *testing.T) {
	Reset()
	defer Reset()
	grids := []struct {
		g    lattice.Grid
		dual bool
	}{
		{lattice.Grid{M: 3, N: 3}, false},
		{lattice.Grid{M: 3, N: 3}, true},
		{lattice.Grid{M: 4, N: 2}, false},
	}
	want := make([][]lattice.Path, len(grids))
	for i, gr := range grids {
		want[i] = Paths(gr.g, gr.dual)
	}

	var buf bytes.Buffer
	if err := SavePaths(&buf); err != nil {
		t.Fatal(err)
	}

	Reset()
	n, err := LoadPaths(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if n != len(grids) {
		t.Fatalf("loaded %d grids, want %d", n, len(grids))
	}
	before := Snapshot()
	for i, gr := range grids {
		got := Paths(gr.g, gr.dual)
		if len(got) != len(want[i]) {
			t.Fatalf("grid %v dual=%v: %d paths, want %d",
				gr.g, gr.dual, len(got), len(want[i]))
		}
		for j := range got {
			if got[j].Mask != want[i][j].Mask {
				t.Fatalf("grid %v dual=%v path %d: mask %x, want %x",
					gr.g, gr.dual, j, got[j].Mask, want[i][j].Mask)
			}
			for k := range got[j].Cells {
				if got[j].Cells[k] != want[i][j].Cells[k] {
					t.Fatalf("grid %v dual=%v path %d cell %d differs",
						gr.g, gr.dual, j, k)
				}
			}
		}
	}
	delta := Snapshot().Sub(before)
	if delta.PathMisses != 0 {
		t.Fatalf("%d path misses after loading snapshot, want 0", delta.PathMisses)
	}
	if delta.PathHits != int64(len(grids)) {
		t.Fatalf("%d path hits, want %d", delta.PathHits, len(grids))
	}
}

// TestPathSnapshotFile exercises the file variants: save, load in a
// "fresh process" (Reset), and confirm the atomic write left no temp
// droppings behind.
func TestPathSnapshotFile(t *testing.T) {
	Reset()
	defer Reset()
	Paths(lattice.Grid{M: 4, N: 2}, false)

	dir := t.TempDir()
	file := filepath.Join(dir, "paths.json")
	if err := SavePathsFile(file); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.Contains(e.Name(), ".tmp") {
			t.Fatalf("temp file %q left behind", e.Name())
		}
	}

	Reset()
	n, err := LoadPathsFile(file)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("loaded %d grids, want 1", n)
	}
}

// TestPathSnapshotMissingFile: a cold cache dir is the normal first-run
// state, not an error.
func TestPathSnapshotMissingFile(t *testing.T) {
	n, err := LoadPathsFile(filepath.Join(t.TempDir(), "nope.json"))
	if err != nil || n != 0 {
		t.Fatalf("missing file: n=%d err=%v, want 0, nil", n, err)
	}
}

// TestPathSnapshotCorrupt: truncated or garbage snapshots must fail the
// load without touching the cache, and the cache must keep working.
func TestPathSnapshotCorrupt(t *testing.T) {
	Reset()
	defer Reset()
	for _, body := range []string{
		"",
		"{not json",
		`{"version": 99, "grids": []}`,
		`{"version": 1, "grids":`, // truncated mid-write (non-atomic writer)
	} {
		if _, err := LoadPaths(strings.NewReader(body)); err == nil {
			t.Fatalf("LoadPaths(%q) succeeded, want error", body)
		}
	}
	if h, _ := pathCache.counters(); h != 0 {
		t.Fatal("corrupt loads must not touch the cache")
	}
	// Cache still functions after rejected loads.
	if ps := Paths(lattice.Grid{M: 2, N: 2}, false); len(ps) == 0 {
		t.Fatal("cache unusable after corrupt load")
	}
}

// TestPathSnapshotRejectsBadRecords: records with out-of-range cells or
// absurd dimensions are skipped, valid siblings still load.
func TestPathSnapshotRejectsBadRecords(t *testing.T) {
	Reset()
	defer Reset()
	doc := `{"version":1,"grids":[
		{"m":2,"n":2,"dual":false,"paths":[[0,99]]},
		{"m":0,"n":5,"dual":false,"paths":[[0]]},
		{"m":1,"n":1,"dual":false,"paths":[[0]]}
	]}`
	n, err := LoadPaths(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("loaded %d records, want 1 (the valid 1x1)", n)
	}
	before := Snapshot()
	Paths(lattice.Grid{M: 1, N: 1}, false)
	if d := Snapshot().Sub(before); d.PathHits != 1 {
		t.Fatal("valid record was not served from the loaded snapshot")
	}
}
