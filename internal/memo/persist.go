package memo

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"github.com/lattice-tools/janus/internal/lattice"
)

// Disk persistence for the path-enumeration cache (the ROADMAP item
// "persist memo contents across process runs"). Path enumeration is the
// one memoized quantity that is both expensive to recompute — wide grids
// take seconds of backtracking — and purely structural (it depends only
// on the grid shape, never on a target function), so a snapshot from any
// earlier run is valid forever. Truth tables and covers are cheap enough
// to rebuild that persisting them would mostly ship bytes around.
//
// The format is a single JSON document: a version header plus one record
// per cached (grid, orientation). Writers go through a temp file and an
// atomic rename so a killed process can never leave a half-written
// snapshot; readers treat any decode error as "no snapshot" and rebuild
// from scratch.

// pathSnapshotVersion guards the on-disk layout; bump it when the record
// shape changes and old snapshots silently become cache misses.
const pathSnapshotVersion = 1

type pathSnapshot struct {
	Version int             `json:"version"`
	Grids   []gridPathsJSON `json:"grids"`
}

type gridPathsJSON struct {
	M     int        `json:"m"`
	N     int        `json:"n"`
	Dual  bool       `json:"dual"`
	Paths [][]uint16 `json:"paths"`
}

// snapshotEntries copies the cache contents (most recent first) under
// the lock; values stay shared because cached paths are immutable.
func (c *cache) snapshotEntries() []entry {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]entry, 0, c.order.Len())
	for e := c.order.Front(); e != nil; e = e.Next() {
		out = append(out, *e.Value.(*entry))
	}
	return out
}

// SavePaths writes a snapshot of the path-enumeration cache to w.
func SavePaths(w io.Writer) error {
	snap := pathSnapshot{Version: pathSnapshotVersion}
	for _, ent := range pathCache.snapshotEntries() {
		if len(ent.key) != 9 {
			continue
		}
		m := int(binary.LittleEndian.Uint32([]byte(ent.key)[0:]))
		n := int(binary.LittleEndian.Uint32([]byte(ent.key)[4:]))
		rec := gridPathsJSON{M: m, N: n, Dual: ent.key[8] == 1}
		for _, p := range ent.val.([]lattice.Path) {
			rec.Paths = append(rec.Paths, p.Cells)
		}
		snap.Grids = append(snap.Grids, rec)
	}
	return json.NewEncoder(w).Encode(snap)
}

// LoadPaths reads a snapshot and inserts every structurally valid record
// into the path cache, returning how many grid enumerations were loaded.
// Records that fail validation (cells out of range, bad dimensions) are
// skipped rather than poisoning the cache; a record for a grid already
// cached is dropped by the cache's duplicate-insert rule.
func LoadPaths(r io.Reader) (int, error) {
	var snap pathSnapshot
	if err := json.NewDecoder(r).Decode(&snap); err != nil {
		return 0, fmt.Errorf("memo: decoding path snapshot: %w", err)
	}
	if snap.Version != pathSnapshotVersion {
		return 0, fmt.Errorf("memo: path snapshot version %d, want %d",
			snap.Version, pathSnapshotVersion)
	}
	loaded := 0
	for _, rec := range snap.Grids {
		if rec.M < 1 || rec.N < 1 || rec.M*rec.N > 4096 {
			continue
		}
		g := lattice.Grid{M: rec.M, N: rec.N}
		cells := g.Cells()
		useMask := cells <= 64
		ps := make([]lattice.Path, 0, len(rec.Paths))
		cost := int64(1)
		valid := true
		for _, cs := range rec.Paths {
			p := lattice.Path{Cells: cs}
			for _, c := range cs {
				if int(c) >= cells {
					valid = false
					break
				}
				if useMask {
					p.Mask |= 1 << c
				}
			}
			if !valid {
				break
			}
			cost += int64(len(cs))
			ps = append(ps, p)
		}
		if !valid || len(ps) == 0 {
			continue
		}
		pathCache.put(gridKey(g, rec.Dual), ps, cost)
		loaded++
	}
	return loaded, nil
}

// SavePathsFile writes the snapshot atomically: the document lands in a
// temp file next to path and is renamed over it, so readers (and a
// process killed mid-write) only ever see a complete snapshot.
func SavePathsFile(path string) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if err := SavePaths(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// LoadPathsFile loads a snapshot file into the path cache. A missing
// file is not an error (0, nil): a cold cache directory is the normal
// first-run state.
func LoadPathsFile(path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, err
	}
	defer f.Close()
	return LoadPaths(f)
}
