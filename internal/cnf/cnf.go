// Package cnf provides a small CNF construction layer on top of the SAT
// solver: named variable allocation, cardinality helpers (at-least-one,
// at-most-one, exactly-one), implications, and the Larrabee-style
// product-of-sums formulas of AND/OR gates used by the lattice-mapping
// encoding (the paper's Fig. 2). Formulas can be exported in DIMACS format
// for debugging against external solvers.
package cnf

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"github.com/lattice-tools/janus/internal/sat"
)

// Builder accumulates a CNF formula and transfers it into a sat.Solver.
type Builder struct {
	nVars    int
	clauses  [][]sat.Lit
	released int // clause count preserved after ReleaseClauses
	names    map[int]string
}

// NewBuilder returns an empty formula builder.
func NewBuilder() *Builder {
	return &Builder{names: make(map[int]string)}
}

// NewVar allocates a fresh variable with an optional debug name.
func (b *Builder) NewVar(name string) sat.Lit {
	v := b.nVars
	b.nVars++
	if name != "" {
		b.names[v] = name
	}
	return sat.MkLit(v, false)
}

// NumVars returns the number of allocated variables.
func (b *Builder) NumVars() int { return b.nVars }

// NumClauses returns the number of accumulated clauses (including ones
// already released to a solver).
func (b *Builder) NumClauses() int { return b.released + len(b.clauses) }

// Complexity is the paper's SAT problem complexity measure: the number of
// variables times the number of clauses.
func (b *Builder) Complexity() int64 {
	return int64(b.nVars) * int64(b.NumClauses())
}

// ReleaseClauses drops the stored clause bodies (keeping the counters) so
// their memory can be reclaimed once they have been transferred into a
// solver. The builder can no longer be serialized or solved afterwards.
func (b *Builder) ReleaseClauses() {
	b.released = b.NumClauses()
	b.clauses = nil
}

// Name returns the debug name of a literal's variable.
func (b *Builder) Name(l sat.Lit) string {
	if n, ok := b.names[l.Var()]; ok {
		if l.IsNeg() {
			return "!" + n
		}
		return n
	}
	return l.String()
}

// Add appends a clause.
func (b *Builder) Add(lits ...sat.Lit) {
	b.clauses = append(b.clauses, append([]sat.Lit(nil), lits...))
}

// AddImply adds a → b as the clause (¬a ∨ b).
func (b *Builder) AddImply(a, c sat.Lit) { b.Add(a.Not(), c) }

// AddImplyAll adds a → c_i for every consequent.
func (b *Builder) AddImplyAll(a sat.Lit, cs ...sat.Lit) {
	for _, c := range cs {
		b.AddImply(a, c)
	}
}

// AtLeastOne adds the clause (l1 ∨ … ∨ lk).
func (b *Builder) AtLeastOne(lits ...sat.Lit) { b.Add(lits...) }

// AtMostOne adds the pairwise encoding (¬li ∨ ¬lj) for i < j, as in the
// paper's mapping-variable constraints.
func (b *Builder) AtMostOne(lits ...sat.Lit) {
	for i := 0; i < len(lits); i++ {
		for j := i + 1; j < len(lits); j++ {
			b.Add(lits[i].Not(), lits[j].Not())
		}
	}
}

// ExactlyOne adds both AtLeastOne and AtMostOne.
func (b *Builder) ExactlyOne(lits ...sat.Lit) {
	b.AtLeastOne(lits...)
	b.AtMostOne(lits...)
}

// AndGate adds the POS formula of out = AND(ins): (¬out ∨ in_i) for each
// input and (out ∨ ¬in_1 ∨ … ∨ ¬in_k).
func (b *Builder) AndGate(out sat.Lit, ins ...sat.Lit) {
	back := make([]sat.Lit, 0, len(ins)+1)
	back = append(back, out)
	for _, in := range ins {
		b.Add(out.Not(), in)
		back = append(back, in.Not())
	}
	b.Add(back...)
}

// OrGate adds the POS formula of out = OR(ins): (out ∨ ¬in_i) for each
// input and (¬out ∨ in_1 ∨ … ∨ in_k).
func (b *Builder) OrGate(out sat.Lit, ins ...sat.Lit) {
	back := make([]sat.Lit, 0, len(ins)+1)
	back = append(back, out.Not())
	for _, in := range ins {
		b.Add(out, in.Not())
		back = append(back, in)
	}
	b.Add(back...)
}

// AndGateForward adds only out → in_i. Used when the gate output is known
// to be 1 and the reverse clauses are redundant (paper, Fig. 3(b)).
func (b *Builder) AndGateForward(out sat.Lit, ins ...sat.Lit) {
	for _, in := range ins {
		b.Add(out.Not(), in)
	}
}

// SolverFrom builds a sat.Solver holding the accumulated formula.
func (b *Builder) SolverFrom() *sat.Solver {
	s := sat.New(b.nVars)
	for _, c := range b.clauses {
		if err := s.AddClause(c...); err != nil {
			break // solver already unsat; remaining clauses are irrelevant
		}
	}
	return s
}

// FlushTo transfers the clauses accumulated since the last flush (or
// since construction) into the solver and releases their bodies,
// returning how many were transferred. Interleaving clause construction
// with FlushTo and Solver.Solve is how the incremental CEGAR engine grows
// one persistent solver instead of rebuilding per refinement: the builder
// keeps allocating variables and clauses, the solver only ever sees each
// clause once. NumVars/NumClauses keep counting across flushes.
func (b *Builder) FlushTo(s *sat.Solver) int {
	s.EnsureVars(b.nVars)
	n := len(b.clauses)
	for _, c := range b.clauses {
		if err := s.AddClause(c...); err != nil {
			break // solver already unsat; remaining clauses are irrelevant
		}
	}
	b.released += n
	b.clauses = nil
	return n
}

// WriteDIMACS serializes the formula in DIMACS CNF format.
func (b *Builder) WriteDIMACS(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "p cnf %d %d\n", b.nVars, len(b.clauses)); err != nil {
		return err
	}
	for _, c := range b.clauses {
		parts := make([]string, 0, len(c)+1)
		for _, l := range c {
			parts = append(parts, l.String())
		}
		parts = append(parts, "0")
		if _, err := fmt.Fprintln(w, strings.Join(parts, " ")); err != nil {
			return err
		}
	}
	return nil
}

// String renders the formula as a human-readable conjunction of clauses
// using debug names, e.g. "(x1+x5).(x2+x5)". Clauses render in insertion
// order; literals are sorted for stability.
func (b *Builder) String() string {
	var sb strings.Builder
	for i, c := range b.clauses {
		if i > 0 {
			sb.WriteByte('.')
		}
		ls := append([]sat.Lit(nil), c...)
		sort.Slice(ls, func(i, j int) bool { return ls[i] < ls[j] })
		sb.WriteByte('(')
		for j, l := range ls {
			if j > 0 {
				sb.WriteByte('+')
			}
			sb.WriteString(b.Name(l))
		}
		sb.WriteByte(')')
	}
	return sb.String()
}
