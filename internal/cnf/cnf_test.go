package cnf

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"github.com/lattice-tools/janus/internal/sat"
)

func TestExactlyOne(t *testing.T) {
	b := NewBuilder()
	x := b.NewVar("x")
	y := b.NewVar("y")
	z := b.NewVar("z")
	b.ExactlyOne(x, y, z)
	s := b.SolverFrom()
	if st := s.Solve(sat.Limits{}); st != sat.Sat {
		t.Fatalf("status = %v", st)
	}
	count := 0
	for _, l := range []sat.Lit{x, y, z} {
		if s.Model(l.Var()) {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("exactly-one violated: %d set", count)
	}
	// Forcing two of them true must be unsat.
	b.Add(x)
	b.Add(y)
	if st := b.SolverFrom().Solve(sat.Limits{}); st != sat.Unsat {
		t.Fatalf("two-true should be UNSAT, got %v", st)
	}
}

func TestAndGateSemantics(t *testing.T) {
	// Enumerate all input combinations; out must equal AND.
	for mask := 0; mask < 8; mask++ {
		for _, outVal := range []bool{false, true} {
			b := NewBuilder()
			out := b.NewVar("out")
			ins := []sat.Lit{b.NewVar("a"), b.NewVar("b"), b.NewVar("c")}
			b.AndGate(out, ins...)
			for i, in := range ins {
				if mask&(1<<uint(i)) != 0 {
					b.Add(in)
				} else {
					b.Add(in.Not())
				}
			}
			if outVal {
				b.Add(out)
			} else {
				b.Add(out.Not())
			}
			want := mask == 7
			st := b.SolverFrom().Solve(sat.Limits{})
			if (st == sat.Sat) != (want == outVal) {
				t.Fatalf("AND gate: mask=%b out=%v status=%v", mask, outVal, st)
			}
		}
	}
}

func TestOrGateSemantics(t *testing.T) {
	for mask := 0; mask < 8; mask++ {
		for _, outVal := range []bool{false, true} {
			b := NewBuilder()
			out := b.NewVar("out")
			ins := []sat.Lit{b.NewVar("a"), b.NewVar("b"), b.NewVar("c")}
			b.OrGate(out, ins...)
			for i, in := range ins {
				if mask&(1<<uint(i)) != 0 {
					b.Add(in)
				} else {
					b.Add(in.Not())
				}
			}
			if outVal {
				b.Add(out)
			} else {
				b.Add(out.Not())
			}
			want := mask != 0
			st := b.SolverFrom().Solve(sat.Limits{})
			if (st == sat.Sat) != (want == outVal) {
				t.Fatalf("OR gate: mask=%b out=%v status=%v", mask, outVal, st)
			}
		}
	}
}

// TestFigure2POS reproduces the paper's Fig. 2: a two-level AND-OR circuit
// (x1x2 -> x5, x3x4 -> x6, x5+x6 -> x7) and its POS formula.
func TestFigure2POS(t *testing.T) {
	b := NewBuilder()
	var x [8]sat.Lit
	for i := 1; i <= 7; i++ {
		x[i] = b.NewVar("")
	}
	b.AndGate(x[5], x[1], x[2])
	b.AndGate(x[6], x[3], x[4])
	b.OrGate(x[7], x[5], x[6])
	if b.NumClauses() != 9 {
		t.Fatalf("Fig. 2 formula must have 9 clauses, got %d", b.NumClauses())
	}
	// Check functional behaviour on every input assignment.
	for mask := 0; mask < 16; mask++ {
		s := b.SolverFrom()
		bit := func(i int) bool { return mask&(1<<uint(i-1)) != 0 }
		for i := 1; i <= 4; i++ {
			if bit(i) {
				s.AddClause(x[i])
			} else {
				s.AddClause(x[i].Not())
			}
		}
		if st := s.Solve(sat.Limits{}); st != sat.Sat {
			t.Fatalf("circuit must be satisfiable for any input, mask=%b", mask)
		}
		want := (bit(1) && bit(2)) || (bit(3) && bit(4))
		if s.Model(x[7].Var()) != want {
			t.Fatalf("x7 wrong for mask=%b", mask)
		}
	}
}

func TestDIMACS(t *testing.T) {
	b := NewBuilder()
	x := b.NewVar("x")
	y := b.NewVar("y")
	b.Add(x, y.Not())
	var buf bytes.Buffer
	if err := b.WriteDIMACS(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	if !strings.HasPrefix(got, "p cnf 2 1\n") || !strings.Contains(got, "1 -2 0") {
		t.Fatalf("DIMACS = %q", got)
	}
}

func TestNamesAndString(t *testing.T) {
	b := NewBuilder()
	x := b.NewVar("x1")
	y := b.NewVar("x5")
	b.Add(x, y)
	if s := b.String(); s != "(x1+x5)" {
		t.Fatalf("String = %q", s)
	}
	if b.Name(x.Not()) != "!x1" {
		t.Fatalf("Name = %q", b.Name(x.Not()))
	}
}

func TestComplexity(t *testing.T) {
	b := NewBuilder()
	b.NewVar("")
	b.NewVar("")
	b.Add(sat.MkLit(0, false))
	b.Add(sat.MkLit(1, false))
	if b.Complexity() != 4 {
		t.Fatalf("Complexity = %d", b.Complexity())
	}
}

// Property: in any model of ExactlyOne over k literals, exactly one holds.
func TestPropExactlyOne(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		k := 2 + r.Intn(6)
		b := NewBuilder()
		lits := make([]sat.Lit, k)
		for i := range lits {
			lits[i] = b.NewVar("")
		}
		b.ExactlyOne(lits...)
		// Random extra forcing of one literal.
		forced := r.Intn(k)
		b.Add(lits[forced])
		s := b.SolverFrom()
		if s.Solve(sat.Limits{}) != sat.Sat {
			return false
		}
		for i, l := range lits {
			if s.Model(l.Var()) != (i == forced) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestAndGateForward(t *testing.T) {
	b := NewBuilder()
	out := b.NewVar("out")
	a := b.NewVar("a")
	c := b.NewVar("c")
	b.AndGateForward(out, a, c)
	b.Add(out)
	s := b.SolverFrom()
	if s.Solve(sat.Limits{}) != sat.Sat {
		t.Fatal("unexpected unsat")
	}
	if !s.Model(a.Var()) || !s.Model(c.Var()) {
		t.Fatal("forward AND must force inputs high")
	}
}
