package lattice

import (
	"strings"
	"testing"
)

func TestWriteSVG(t *testing.T) {
	a := NewAssignment(Grid{M: 2, N: 2})
	a.Set(0, 0, Entry{Kind: PosVar, Var: 0})
	a.Set(0, 1, Entry{Kind: NegVar, Var: 1})
	a.Set(1, 0, Entry{Kind: Const1})
	var sb strings.Builder
	if err := a.WriteSVG(&sb, []string{"a", "b"}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"<svg", "</svg>", ">a<", ">!b<", ">1<", ">0<"} {
		if !strings.Contains(out, want) {
			t.Fatalf("SVG missing %q:\n%s", want, out)
		}
	}
	// Four switch rects plus two plates.
	if n := strings.Count(out, "<rect"); n != 6 {
		t.Fatalf("rect count = %d, want 6", n)
	}
}

func TestSVGEscape(t *testing.T) {
	if svgEscape("<&>") != "&lt;&amp;&gt;" {
		t.Fatal("escape wrong")
	}
}
