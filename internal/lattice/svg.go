package lattice

import (
	"fmt"
	"io"
)

// WriteSVG renders the assignment as a standalone SVG drawing in the
// style of the paper's figures: one square per four-terminal switch
// labelled with its control entry, plus the top and bottom plates.
// names supplies input variable names (falling back to x<i>).
func (a *Assignment) WriteSVG(w io.Writer, names []string) error {
	const (
		cell   = 48
		gap    = 6
		plateH = 14
		margin = 10
	)
	g := a.Grid
	width := margin*2 + g.N*cell + (g.N-1)*gap
	height := margin*2 + plateH*2 + gap*2 + g.M*cell + (g.M-1)*gap

	if _, err := fmt.Fprintf(w,
		`<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		width, height, width, height); err != nil {
		return err
	}
	put := func(format string, args ...any) error {
		_, err := fmt.Fprintf(w, format+"\n", args...)
		return err
	}
	// Plates.
	if err := put(`<rect x="%d" y="%d" width="%d" height="%d" fill="#444"/>`,
		margin, margin, width-2*margin, plateH); err != nil {
		return err
	}
	if err := put(`<rect x="%d" y="%d" width="%d" height="%d" fill="#444"/>`,
		margin, height-margin-plateH, width-2*margin, plateH); err != nil {
		return err
	}
	for r := 0; r < g.M; r++ {
		for c := 0; c < g.N; c++ {
			x := margin + c*(cell+gap)
			y := margin + plateH + gap + r*(cell+gap)
			e := a.At(r, c)
			fill := "#e8f0fe"
			switch e.Kind {
			case Const0:
				fill = "#f3f3f3"
			case Const1:
				fill = "#d7f0d7"
			}
			if err := put(`<rect x="%d" y="%d" width="%d" height="%d" rx="6" fill="%s" stroke="#333"/>`,
				x, y, cell, cell, fill); err != nil {
				return err
			}
			if err := put(`<text x="%d" y="%d" font-family="monospace" font-size="14" text-anchor="middle">%s</text>`,
				x+cell/2, y+cell/2+5, svgEscape(e.Format(names))); err != nil {
				return err
			}
		}
	}
	return put(`</svg>`)
}

func svgEscape(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '<':
			out = append(out, "&lt;"...)
		case '>':
			out = append(out, "&gt;"...)
		case '&':
			out = append(out, "&amp;"...)
		default:
			out = append(out, s[i])
		}
	}
	return string(out)
}
