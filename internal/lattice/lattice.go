// Package lattice models two-dimensional switching lattices of
// four-terminal switches (Altun & Riedel 2012).
//
// An m×n lattice is a grid of switches; each switch is connected to its
// four neighbours. The lattice function evaluates to 1 when the on
// switches form a 4-connected path between the top and bottom plates. Its
// dual consists of the 8-connected paths between the left and right
// plates.
//
// The products of the lattice function are exactly the *minimal* switch
// sets connecting top to bottom, which this package enumerates as
// chordless (induced) paths: no cell repeats, no two non-consecutive cells
// are adjacent, only the first cell lies in the top row and only the last
// in the bottom row. The same holds for the dual under 8-adjacency with
// the left/right columns. The enumeration reproduces Table I of the paper.
package lattice

import (
	"fmt"
	"math/bits"
	"strings"

	"github.com/lattice-tools/janus/internal/cube"
	"github.com/lattice-tools/janus/internal/truth"
)

// Grid identifies an m×n lattice: M rows between the top and bottom
// plates, N columns between the left and right plates.
type Grid struct {
	M, N int
}

// Cells returns the number of switches, m·n (the paper's lattice size).
func (g Grid) Cells() int { return g.M * g.N }

// Cell maps (row, col) to the cell index r·N + c.
func (g Grid) Cell(r, c int) int { return r*g.N + c }

// RowCol inverts Cell.
func (g Grid) RowCol(cell int) (r, c int) { return cell / g.N, cell % g.N }

func (g Grid) String() string { return fmt.Sprintf("%dx%d", g.M, g.N) }

// Transpose returns the lattice with rows and columns swapped.
func (g Grid) Transpose() Grid { return Grid{M: g.N, N: g.M} }

func (g Grid) validate() {
	if g.M < 1 || g.N < 1 {
		panic(fmt.Sprintf("lattice: invalid grid %v", g))
	}
}

const maskLimit = 64

// Path is one product of the lattice function (or of its dual): a minimal
// connecting switch set. Cells lists the cells in traversal order; Mask is
// the corresponding bitset (only for lattices with at most 64 cells).
type Path struct {
	Cells []uint16
	Mask  uint64
}

// Len returns the number of switches on the path.
func (p Path) Len() int { return len(p.Cells) }

type pathEnum struct {
	g        Grid
	eight    bool // 8-adjacency (dual enumeration)
	vertical bool // top→bottom when true, left→right otherwise
	useMask  bool
	limit    int64 // abort enumeration once count exceeds this (0 = none)
	stopLen  int   // abort (successfully) once a path this long is found
	onPath   []bool
	cells    []uint16
	emit     func(Path)
	count    int64
	found    bool
}

func (e *pathEnum) aborted() bool { return e.found || (e.limit > 0 && e.count > e.limit) }

// neighbors appends the neighbour cells of (r,c) under the enumerator's
// adjacency into buf.
func (e *pathEnum) neighbors(r, c int, buf []int) []int {
	g := e.g
	push := func(rr, cc int) []int {
		if rr >= 0 && rr < g.M && cc >= 0 && cc < g.N {
			buf = append(buf, g.Cell(rr, cc))
		}
		return buf
	}
	buf = push(r-1, c)
	buf = push(r+1, c)
	buf = push(r, c-1)
	buf = push(r, c+1)
	if e.eight {
		buf = push(r-1, c-1)
		buf = push(r-1, c+1)
		buf = push(r+1, c-1)
		buf = push(r+1, c+1)
	}
	return buf
}

func (e *pathEnum) adjacent(a, b int) bool {
	ra, ca := e.g.RowCol(a)
	rb, cb := e.g.RowCol(b)
	dr, dc := ra-rb, ca-cb
	if dr < 0 {
		dr = -dr
	}
	if dc < 0 {
		dc = -dc
	}
	if dr > 1 || dc > 1 {
		return false
	}
	if e.eight {
		return dr+dc > 0
	}
	return dr+dc == 1
}

// atStart reports whether the cell lies on the starting plate (top row or
// left column).
func (e *pathEnum) atStart(cell int) bool {
	r, c := e.g.RowCol(cell)
	if e.vertical {
		return r == 0
	}
	return c == 0
}

// atEnd reports whether the cell lies on the finishing plate (bottom row
// or right column).
func (e *pathEnum) atEnd(cell int) bool {
	r, c := e.g.RowCol(cell)
	if e.vertical {
		return r == e.g.M-1
	}
	return c == e.g.N-1
}

func (e *pathEnum) run() {
	e.onPath = make([]bool, e.g.Cells())
	var starts []int
	if e.vertical {
		for c := 0; c < e.g.N; c++ {
			starts = append(starts, e.g.Cell(0, c))
		}
	} else {
		for r := 0; r < e.g.M; r++ {
			starts = append(starts, e.g.Cell(r, 0))
		}
	}
	for _, s := range starts {
		e.cells = append(e.cells, uint16(s))
		e.onPath[s] = true
		if e.atEnd(s) {
			e.record()
		} else {
			e.extend(s)
		}
		e.onPath[s] = false
		e.cells = e.cells[:0]
	}
}

func (e *pathEnum) record() {
	e.count++
	if e.stopLen > 0 && len(e.cells) >= e.stopLen {
		e.found = true
	}
	if e.emit == nil {
		return
	}
	p := Path{Cells: append([]uint16(nil), e.cells...)}
	if e.useMask {
		for _, c := range e.cells {
			p.Mask |= 1 << uint(c)
		}
	}
	e.emit(p)
}

func (e *pathEnum) extend(cur int) {
	if e.aborted() {
		return
	}
	r, c := e.g.RowCol(cur)
	var buf [8]int
	for _, nxt := range e.neighbors(r, c, buf[:0]) {
		if e.onPath[nxt] {
			continue
		}
		if e.atStart(nxt) {
			continue // only the first cell may touch the start plate
		}
		// Chordless: the new cell may be adjacent only to the current tip.
		chord := false
		for _, pc := range e.cells {
			if int(pc) != cur && e.adjacent(int(pc), nxt) {
				chord = true
				break
			}
		}
		if chord {
			continue
		}
		e.cells = append(e.cells, uint16(nxt))
		e.onPath[nxt] = true
		if e.atEnd(nxt) {
			e.record() // minimality: stop at the first end-plate contact
		} else {
			e.extend(nxt)
		}
		e.onPath[nxt] = false
		e.cells = e.cells[:len(e.cells)-1]
	}
}

// Paths enumerates the products of the lattice function f_{m×n}: minimal
// 4-connected top–bottom switch sets.
func (g Grid) Paths() []Path {
	g.validate()
	var out []Path
	e := pathEnum{g: g, vertical: true, useMask: g.Cells() <= maskLimit,
		emit: func(p Path) { out = append(out, p) }}
	e.run()
	return out
}

// DualPaths enumerates the products of the dual lattice function: minimal
// 8-connected left–right switch sets.
func (g Grid) DualPaths() []Path {
	g.validate()
	var out []Path
	e := pathEnum{g: g, eight: true, vertical: false, useMask: g.Cells() <= maskLimit,
		emit: func(p Path) { out = append(out, p) }}
	e.run()
	return out
}

// PathsOf unifies Paths and DualPaths behind one orientation flag, the
// shape every encoding-layer caller wants (and the key the process-wide
// path cache in internal/memo is indexed by).
func (g Grid) PathsOf(dual bool) []Path {
	if dual {
		return g.DualPaths()
	}
	return g.Paths()
}

// FunctionOf unifies Function and DualFunction behind one orientation
// flag.
func (g Grid) FunctionOf(dual bool) cube.Cover {
	if dual {
		return g.DualFunction()
	}
	return g.Function()
}

// CountPaths returns the number of products of f_{m×n} without storing
// them (Table I, top entries).
func (g Grid) CountPaths() int64 {
	g.validate()
	e := pathEnum{g: g, vertical: true}
	e.run()
	return e.count
}

// CountDualPaths returns the number of products of the dual of f_{m×n}
// (Table I, bottom entries).
func (g Grid) CountDualPaths() int64 {
	g.validate()
	e := pathEnum{g: g, eight: true, vertical: false}
	e.run()
	return e.count
}

// HasPathOfLen reports whether the lattice has a minimal path (dual
// selects the 8-connected left–right enumeration) with at least k
// switches. The search inspects at most a bounded number of paths; when
// the bound is hit without an answer it conservatively returns true, so
// a false result is always definitive.
func (g Grid) HasPathOfLen(k int, dual bool) bool {
	if k <= 0 {
		return true
	}
	if k > g.Cells() {
		return false
	}
	g.validate()
	e := pathEnum{g: g, eight: dual, vertical: !dual, limit: 20000, stopLen: k}
	e.run()
	if e.found {
		return true
	}
	return e.count > e.limit // bound hit: unknown, do not refute
}

// CountPathsLimited counts minimal paths (dual selects the 8-connected
// left–right enumeration) but gives up once the count exceeds limit,
// returning a value greater than limit in that case. Used to reject
// lattice formulations that would be too large to encode without paying
// for a full enumeration.
func (g Grid) CountPathsLimited(limit int64, dual bool) int64 {
	g.validate()
	e := pathEnum{g: g, eight: dual, vertical: !dual, limit: limit}
	e.run()
	return e.count
}

// Function returns the lattice function as an SOP cover whose variables
// are the cell indexes. Limited to lattices with at most 64 cells.
func (g Grid) Function() cube.Cover {
	if g.Cells() > maskLimit {
		panic("lattice: Function limited to 64 cells")
	}
	f := cube.Zero(g.Cells())
	for _, p := range g.Paths() {
		f.Cubes = append(f.Cubes, cube.Cube{Pos: p.Mask})
	}
	return f
}

// DualFunction returns the dual lattice function as an SOP cover over the
// cell indexes.
func (g Grid) DualFunction() cube.Cover {
	if g.Cells() > maskLimit {
		panic("lattice: DualFunction limited to 64 cells")
	}
	f := cube.Zero(g.Cells())
	for _, p := range g.DualPaths() {
		f.Cubes = append(f.Cubes, cube.Cube{Pos: p.Mask})
	}
	return f
}

// EntryKind classifies what is assigned to a switch's control input.
type EntryKind uint8

const (
	// Const0 keeps the switch permanently off.
	Const0 EntryKind = iota
	// Const1 keeps the switch permanently on.
	Const1
	// PosVar drives the switch with input variable x_Var.
	PosVar
	// NegVar drives the switch with the complement of x_Var.
	NegVar
)

// Entry is the control-input assignment of one switch.
type Entry struct {
	Kind EntryKind
	Var  int
}

// Eval returns the switch state under the given input point.
func (e Entry) Eval(point uint64) bool {
	switch e.Kind {
	case Const0:
		return false
	case Const1:
		return true
	case PosVar:
		return point&(1<<uint(e.Var)) != 0
	default:
		return point&(1<<uint(e.Var)) == 0
	}
}

// Complement returns the entry computing the complemented control value.
func (e Entry) Complement() Entry {
	switch e.Kind {
	case Const0:
		return Entry{Kind: Const1}
	case Const1:
		return Entry{Kind: Const0}
	case PosVar:
		return Entry{Kind: NegVar, Var: e.Var}
	default:
		return Entry{Kind: PosVar, Var: e.Var}
	}
}

// Format renders the entry with the given variable names.
func (e Entry) Format(names []string) string {
	switch e.Kind {
	case Const0:
		return "0"
	case Const1:
		return "1"
	}
	name := fmt.Sprintf("x%d", e.Var)
	if e.Var < len(names) && names[e.Var] != "" {
		name = names[e.Var]
	}
	if e.Kind == NegVar {
		return "!" + name
	}
	return name
}

// Assignment is a fully specified lattice implementation: a grid plus one
// entry per switch (row-major).
type Assignment struct {
	Grid    Grid
	Entries []Entry
}

// NewAssignment returns an assignment with every switch set to Const0.
func NewAssignment(g Grid) *Assignment {
	g.validate()
	return &Assignment{Grid: g, Entries: make([]Entry, g.Cells())}
}

// Set assigns the switch at (r, c).
func (a *Assignment) Set(r, c int, e Entry) { a.Entries[a.Grid.Cell(r, c)] = e }

// At returns the entry at (r, c).
func (a *Assignment) At(r, c int) Entry { return a.Entries[a.Grid.Cell(r, c)] }

// Size returns the number of switches.
func (a *Assignment) Size() int { return a.Grid.Cells() }

// EvalConnectivity evaluates the implemented function at the input point
// by switching the lattice and testing 4-connected top–bottom
// reachability. This is the physical ground truth used to verify every
// synthesis result.
func (a *Assignment) EvalConnectivity(point uint64) bool {
	g := a.Grid
	on := make([]bool, g.Cells())
	for i, e := range a.Entries {
		on[i] = e.Eval(point)
	}
	// BFS from on-cells of the top row.
	queue := make([]int, 0, g.Cells())
	seen := make([]bool, g.Cells())
	for c := 0; c < g.N; c++ {
		cell := g.Cell(0, c)
		if on[cell] {
			queue = append(queue, cell)
			seen[cell] = true
		}
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		r, c := g.RowCol(cur)
		if r == g.M-1 {
			return true
		}
		for _, d := range [4][2]int{{-1, 0}, {1, 0}, {0, -1}, {0, 1}} {
			rr, cc := r+d[0], c+d[1]
			if rr < 0 || rr >= g.M || cc < 0 || cc >= g.N {
				continue
			}
			nxt := g.Cell(rr, cc)
			if on[nxt] && !seen[nxt] {
				seen[nxt] = true
				queue = append(queue, nxt)
			}
		}
	}
	return false
}

// EvalDualConnectivity tests 8-connected left–right reachability of the on
// switches, i.e. the dual plate pair.
func (a *Assignment) EvalDualConnectivity(point uint64) bool {
	g := a.Grid
	on := make([]bool, g.Cells())
	for i, e := range a.Entries {
		on[i] = e.Eval(point)
	}
	queue := make([]int, 0, g.Cells())
	seen := make([]bool, g.Cells())
	for r := 0; r < g.M; r++ {
		cell := g.Cell(r, 0)
		if on[cell] {
			queue = append(queue, cell)
			seen[cell] = true
		}
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		r, c := g.RowCol(cur)
		if c == g.N-1 {
			return true
		}
		for dr := -1; dr <= 1; dr++ {
			for dc := -1; dc <= 1; dc++ {
				if dr == 0 && dc == 0 {
					continue
				}
				rr, cc := r+dr, c+dc
				if rr < 0 || rr >= g.M || cc < 0 || cc >= g.N {
					continue
				}
				nxt := g.Cell(rr, cc)
				if on[nxt] && !seen[nxt] {
					seen[nxt] = true
					queue = append(queue, nxt)
				}
			}
		}
	}
	return false
}

// Table evaluates the implemented function over all 2^nInputs points.
func (a *Assignment) Table(nInputs int) *truth.Table {
	t := truth.New(nInputs)
	for p := uint64(0); p < t.Size(); p++ {
		t.Set(p, a.EvalConnectivity(p))
	}
	return t
}

// Realizes reports whether the assignment implements exactly the function
// denoted by the cover.
func (a *Assignment) Realizes(f cube.Cover) bool {
	return a.Table(f.N).Equal(truth.FromCover(f))
}

// Complement returns the assignment with every entry complemented. By the
// lattice duality theorem, the complemented lattice's 8-connected
// left–right connectivity function is the complement of the original
// top–bottom function — the relationship exploited by the dual encoding.
func (a *Assignment) Complement() *Assignment {
	b := NewAssignment(a.Grid)
	for i, e := range a.Entries {
		b.Entries[i] = e.Complement()
	}
	return b
}

// Transpose returns the assignment reflected along the main diagonal
// (rows become columns).
func (a *Assignment) Transpose() *Assignment {
	b := NewAssignment(a.Grid.Transpose())
	for r := 0; r < a.Grid.M; r++ {
		for c := 0; c < a.Grid.N; c++ {
			b.Set(c, r, a.At(r, c))
		}
	}
	return b
}

// Format renders the assignment as a grid of entry labels, one row per
// line, columns separated by spaces (like the paper's figures).
func (a *Assignment) Format(names []string) string {
	var sb strings.Builder
	width := 1
	labels := make([]string, len(a.Entries))
	for i, e := range a.Entries {
		labels[i] = e.Format(names)
		if len(labels[i]) > width {
			width = len(labels[i])
		}
	}
	for r := 0; r < a.Grid.M; r++ {
		if r > 0 {
			sb.WriteByte('\n')
		}
		for c := 0; c < a.Grid.N; c++ {
			if c > 0 {
				sb.WriteByte(' ')
			}
			l := labels[a.Grid.Cell(r, c)]
			sb.WriteString(l)
			for pad := len(l); pad < width; pad++ {
				sb.WriteByte(' ')
			}
		}
	}
	return sb.String()
}

func (a *Assignment) String() string { return a.Format(nil) }

// MaxPathLen returns the maximum product size (degree) of the lattice
// function, i.e. the longest minimal path.
func (g Grid) MaxPathLen() int {
	max := 0
	e := pathEnum{g: g, vertical: true, emit: func(p Path) {
		if p.Len() > max {
			max = p.Len()
		}
	}}
	e.run()
	return max
}

// PopCount64 is a tiny helper re-exported for callers working with path
// masks.
func PopCount64(m uint64) int { return bits.OnesCount64(m) }
