package lattice

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/lattice-tools/janus/internal/cube"
)

// tableI holds the paper's Table I: products of f_{m×n} (primal) and of
// its dual, for 2 ≤ m, n ≤ 8.
var tableIPrimal = [7][7]int64{
	{2, 3, 4, 5, 6, 7, 8},
	{4, 9, 16, 25, 36, 49, 64},
	{6, 17, 36, 67, 118, 203, 344},
	{10, 37, 94, 205, 436, 957, 2146},
	{16, 77, 236, 621, 1668, 4883, 14880},
	{26, 163, 602, 1905, 6562, 26317, 110838},
	{42, 343, 1528, 5835, 25686, 139231, 797048},
}

var tableIDual = [7][7]int64{
	{4, 8, 16, 32, 64, 128, 256},
	{7, 17, 41, 99, 239, 577, 1393},
	{10, 28, 78, 216, 600, 1666, 4626},
	{13, 41, 139, 453, 1497, 4981, 16539},
	{16, 56, 250, 1018, 4286, 18730, 81192},
	{19, 73, 461, 2439, 13833, 86963, 539537},
	{22, 92, 872, 6004, 45788, 421182, 3779226},
}

// TestTableISmall pins Table I for 2 ≤ m,n ≤ 6 (fast subset; the full
// table is exercised by the Table I benchmark and TestTableIFull with
// -short skipping).
func TestTableISmall(t *testing.T) {
	for m := 2; m <= 6; m++ {
		for n := 2; n <= 6; n++ {
			g := Grid{M: m, N: n}
			if got := g.CountPaths(); got != tableIPrimal[m-2][n-2] {
				t.Errorf("|f_%dx%d| = %d, want %d", m, n, got, tableIPrimal[m-2][n-2])
			}
			if got := g.CountDualPaths(); got != tableIDual[m-2][n-2] {
				t.Errorf("|dual f_%dx%d| = %d, want %d", m, n, got, tableIDual[m-2][n-2])
			}
		}
	}
}

func TestTableIFull(t *testing.T) {
	if testing.Short() {
		t.Skip("full Table I in short mode")
	}
	for m := 2; m <= 8; m++ {
		for n := 2; n <= 8; n++ {
			g := Grid{M: m, N: n}
			if got := g.CountPaths(); got != tableIPrimal[m-2][n-2] {
				t.Errorf("|f_%dx%d| = %d, want %d", m, n, got, tableIPrimal[m-2][n-2])
			}
			if got := g.CountDualPaths(); got != tableIDual[m-2][n-2] {
				t.Errorf("|dual f_%dx%d| = %d, want %d", m, n, got, tableIDual[m-2][n-2])
			}
		}
	}
}

// TestF3x3Products pins the 9 products of f_{3×3} listed in the paper
// (x1..x9 are cells 0..8 row-major).
func TestF3x3Products(t *testing.T) {
	g := Grid{M: 3, N: 3}
	paths := g.Paths()
	if len(paths) != 9 {
		t.Fatalf("|f_3x3| = %d, want 9", len(paths))
	}
	want := map[uint64]bool{}
	mask := func(cells ...int) uint64 {
		var m uint64
		for _, c := range cells {
			m |= 1 << uint(c-1) // paper's x1..x9 are 1-based
		}
		return m
	}
	for _, cells := range [][]int{
		{1, 4, 7}, {2, 5, 8}, {3, 6, 9},
		{1, 4, 5, 8}, {2, 5, 4, 7}, {2, 5, 6, 9}, {3, 6, 5, 8},
		{1, 4, 5, 6, 9}, {3, 6, 5, 4, 7},
	} {
		want[mask(cells...)] = true
	}
	for _, p := range paths {
		if !want[p.Mask] {
			t.Errorf("unexpected product %b", p.Mask)
		}
		delete(want, p.Mask)
	}
	if len(want) != 0 {
		t.Errorf("missing products: %v", want)
	}
}

// TestDual3x3Products pins the 17 dual products of f_{3×3} from the
// paper's footnote.
func TestDual3x3Products(t *testing.T) {
	g := Grid{M: 3, N: 3}
	paths := g.DualPaths()
	if len(paths) != 17 {
		t.Fatalf("|dual f_3x3| = %d, want 17", len(paths))
	}
	want := map[uint64]bool{}
	mask := func(cells ...int) uint64 {
		var m uint64
		for _, c := range cells {
			m |= 1 << uint(c-1)
		}
		return m
	}
	for _, cells := range [][]int{
		{1, 2, 3}, {1, 2, 6}, {1, 5, 3}, {1, 5, 6}, {1, 5, 9},
		{4, 2, 3}, {4, 2, 6}, {4, 5, 3}, {4, 5, 6}, {4, 5, 9},
		{4, 8, 6}, {4, 8, 9}, {7, 5, 3}, {7, 5, 6}, {7, 5, 9},
		{7, 8, 6}, {7, 8, 9},
	} {
		want[mask(cells...)] = true
	}
	for _, p := range paths {
		if !want[p.Mask] {
			t.Errorf("unexpected dual product %b", p.Mask)
		}
		delete(want, p.Mask)
	}
	if len(want) != 0 {
		t.Errorf("missing dual products: %v", want)
	}
}

func TestDegenerateGrids(t *testing.T) {
	// 1×1: one switch; one primal path and one dual path.
	g := Grid{M: 1, N: 1}
	if g.CountPaths() != 1 || g.CountDualPaths() != 1 {
		t.Fatal("1x1 path counts wrong")
	}
	// m×1: single primal path (the column), m dual paths (each cell).
	g = Grid{M: 4, N: 1}
	if g.CountPaths() != 1 {
		t.Fatalf("4x1 primal = %d", g.CountPaths())
	}
	if g.CountDualPaths() != 4 {
		t.Fatalf("4x1 dual = %d", g.CountDualPaths())
	}
	// 1×n: n primal paths, one dual path (the row).
	g = Grid{M: 1, N: 4}
	if g.CountPaths() != 4 || g.CountDualPaths() != 1 {
		t.Fatal("1x4 counts wrong")
	}
}

func TestPathsAreMinimalAndChordless(t *testing.T) {
	for _, g := range []Grid{{3, 4}, {4, 3}, {4, 4}} {
		paths := g.Paths()
		// No product's mask may contain another's.
		for i := range paths {
			for j := range paths {
				if i != j && paths[i].Mask&paths[j].Mask == paths[j].Mask {
					t.Fatalf("%v: product %d contains product %d", g, i, j)
				}
			}
		}
	}
}

func TestFunctionMatchesConnectivity(t *testing.T) {
	// For every subset of switches of a 3×3 grid, the lattice function
	// (SOP over paths) must equal BFS connectivity.
	g := Grid{M: 3, N: 3}
	f := g.Function()
	a := NewAssignment(g)
	for i := range a.Entries {
		a.Entries[i] = Entry{Kind: PosVar, Var: i} // switch i driven by x_i
	}
	for p := uint64(0); p < 512; p++ {
		if f.Eval(p) != a.EvalConnectivity(p) {
			t.Fatalf("mismatch at switch state %b", p)
		}
	}
}

func TestDualFunctionMatchesConnectivity(t *testing.T) {
	g := Grid{M: 3, N: 3}
	f := g.DualFunction()
	a := NewAssignment(g)
	for i := range a.Entries {
		a.Entries[i] = Entry{Kind: PosVar, Var: i}
	}
	for p := uint64(0); p < 512; p++ {
		if f.Eval(p) != a.EvalDualConnectivity(p) {
			t.Fatalf("dual mismatch at switch state %b", p)
		}
	}
}

// TestLatticeDualityTheorem checks f_{m×n}^D equals the 8-connected
// left–right function (Altun & Riedel's duality) via cube algebra.
func TestLatticeDualityTheorem(t *testing.T) {
	for _, g := range []Grid{{2, 2}, {2, 3}, {3, 2}, {3, 3}, {2, 4}} {
		primal := g.Function()
		dual := g.DualFunction()
		if !primal.Dual().Equiv(dual) {
			t.Fatalf("%v: dual(f) != 8-connected LR function", g)
		}
	}
}

func TestEntryEval(t *testing.T) {
	if (Entry{Kind: Const0}).Eval(0xFF) || !(Entry{Kind: Const1}).Eval(0) {
		t.Fatal("constants wrong")
	}
	e := Entry{Kind: PosVar, Var: 2}
	if !e.Eval(0b100) || e.Eval(0b011) {
		t.Fatal("PosVar wrong")
	}
	n := e.Complement()
	if n.Kind != NegVar || n.Eval(0b100) || !n.Eval(0) {
		t.Fatal("NegVar wrong")
	}
	if (Entry{Kind: Const0}).Complement().Kind != Const1 {
		t.Fatal("complement of 0 wrong")
	}
}

// TestFigure1d verifies the paper's Fig. 1(d): f = abcd + a'b'c'd'
// realized on the minimum-size 4×2 lattice. Placing the two products on
// the two columns works because every bent path crosses opposing literals
// and vanishes.
func TestFigure1d(t *testing.T) {
	f := cube.NewCover(4,
		cube.FromLiterals([]int{0, 1, 2, 3}, nil),
		cube.FromLiterals(nil, []int{0, 1, 2, 3}))
	a := NewAssignment(Grid{M: 4, N: 2})
	for v := 0; v < 4; v++ {
		a.Set(v, 0, Entry{Kind: PosVar, Var: v})
		a.Set(v, 1, Entry{Kind: NegVar, Var: v})
	}
	if !a.Realizes(f) {
		t.Fatalf("4x2 mapping does not realize f:\n%s", a.Format([]string{"a", "b", "c", "d"}))
	}
	if a.Size() != 8 {
		t.Fatalf("size = %d, want 8", a.Size())
	}
}

func TestAssignmentFormat(t *testing.T) {
	a := NewAssignment(Grid{M: 2, N: 2})
	a.Set(0, 0, Entry{Kind: PosVar, Var: 0})
	a.Set(0, 1, Entry{Kind: NegVar, Var: 1})
	a.Set(1, 0, Entry{Kind: Const1})
	got := a.Format([]string{"a", "b"})
	want := "a  !b\n1  0 "
	if got != want {
		t.Fatalf("Format = %q, want %q", got, want)
	}
}

func TestTranspose(t *testing.T) {
	a := NewAssignment(Grid{M: 2, N: 3})
	a.Set(0, 2, Entry{Kind: PosVar, Var: 5})
	b := a.Transpose()
	if b.Grid.M != 3 || b.Grid.N != 2 {
		t.Fatal("transpose dims wrong")
	}
	if b.At(2, 0) != (Entry{Kind: PosVar, Var: 5}) {
		t.Fatal("transpose entry wrong")
	}
}

// Property: for random assignments on random small grids, the SOP-over-
// paths evaluation always equals BFS connectivity, and complemented
// assignments satisfy the duality theorem pointwise.
func TestPropConnectivityAgreesWithPaths(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := Grid{M: 1 + r.Intn(4), N: 1 + r.Intn(4)}
		nIn := 3
		a := NewAssignment(g)
		for i := range a.Entries {
			switch r.Intn(4) {
			case 0:
				a.Entries[i] = Entry{Kind: Const0}
			case 1:
				a.Entries[i] = Entry{Kind: Const1}
			case 2:
				a.Entries[i] = Entry{Kind: PosVar, Var: r.Intn(nIn)}
			default:
				a.Entries[i] = Entry{Kind: NegVar, Var: r.Intn(nIn)}
			}
		}
		f := g.Function()
		for p := uint64(0); p < 1<<uint(nIn); p++ {
			// Build switch-state point for the cover evaluation.
			var sw uint64
			for i, e := range a.Entries {
				if e.Eval(p) {
					sw |= 1 << uint(i)
				}
			}
			if f.Eval(sw) != a.EvalConnectivity(p) {
				return false
			}
			// Duality: top-bottom connectivity of a == NOT left-right
			// 8-connectivity of complemented a.
			if a.EvalConnectivity(p) == a.Complement().EvalDualConnectivity(p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestMaxPathLen(t *testing.T) {
	if got := (Grid{M: 3, N: 3}).MaxPathLen(); got != 5 {
		t.Fatalf("MaxPathLen(3x3) = %d, want 5", got)
	}
	if got := (Grid{M: 2, N: 2}).MaxPathLen(); got != 2 {
		t.Fatalf("MaxPathLen(2x2) = %d, want 2", got)
	}
}

func TestCountPathsLimited(t *testing.T) {
	g := Grid{M: 4, N: 4} // 36 primal paths
	if got := g.CountPathsLimited(100, false); got != 36 {
		t.Fatalf("unbounded count = %d, want 36", got)
	}
	if got := g.CountPathsLimited(10, false); got <= 10 {
		t.Fatalf("limited count = %d, want > 10 (abort indicator)", got)
	}
	if got := g.CountPathsLimited(100, true); got != 78 {
		t.Fatalf("dual count = %d, want 78", got)
	}
}

func TestHasPathOfLen(t *testing.T) {
	g := Grid{M: 3, N: 3}
	// Max primal path length in 3×3 is 5.
	for k := 1; k <= 5; k++ {
		if !g.HasPathOfLen(k, false) {
			t.Fatalf("3x3 must have a path of length %d", k)
		}
	}
	if g.HasPathOfLen(6, false) {
		t.Fatal("3x3 cannot have a 6-cell minimal path")
	}
	if g.HasPathOfLen(10, false) {
		t.Fatal("length above cell count must be false")
	}
	if !g.HasPathOfLen(0, false) {
		t.Fatal("length 0 is trivially true")
	}
	// Dual: max length in 3×3 is 3.
	if !g.HasPathOfLen(3, true) || g.HasPathOfLen(4, true) {
		t.Fatal("dual length bounds wrong")
	}
}

// Property: the limited count agrees with the exact count whenever the
// limit is not hit.
func TestPropCountPathsLimitedConsistent(t *testing.T) {
	for m := 1; m <= 4; m++ {
		for n := 1; n <= 4; n++ {
			g := Grid{M: m, N: n}
			exact := g.CountPaths()
			if got := g.CountPathsLimited(exact, false); got != exact {
				t.Fatalf("%v: limited(%d) = %d", g, exact, got)
			}
			exactD := g.CountDualPaths()
			if got := g.CountPathsLimited(exactD, true); got != exactD {
				t.Fatalf("%v dual: limited(%d) = %d", g, exactD, got)
			}
		}
	}
}
