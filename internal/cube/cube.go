// Package cube implements cube and sum-of-products (SOP) algebra over
// single-output Boolean functions with up to 64 variables.
//
// A Cube is a conjunction of literals stored as two bit masks (positive and
// negative literals). A Cover is a disjunction of cubes, i.e. an SOP form.
// The package provides the classical two-level operations needed by a logic
// minimizer and by lattice synthesis: containment, intersection, cofactors,
// unate-recursive tautology and complementation, dualization, and SOP
// multiplication with absorption.
package cube

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
)

// MaxVars is the maximum number of input variables supported by a Cube.
const MaxVars = 64

// Cube is a product (conjunction) of literals over variables 0..n-1.
// Bit v of Pos set means the positive literal x_v appears; bit v of Neg set
// means the complemented literal x̄_v appears. A cube with Pos&Neg != 0 is
// contradictory (always 0). The empty cube (Pos == Neg == 0) is the constant
// 1 product.
type Cube struct {
	Pos uint64
	Neg uint64
}

// Top returns the constant-1 cube (no literals).
func Top() Cube { return Cube{} }

// FromLiterals builds a cube from explicit literal lists.
func FromLiterals(pos, neg []int) Cube {
	var c Cube
	for _, v := range pos {
		c.Pos |= 1 << uint(v)
	}
	for _, v := range neg {
		c.Neg |= 1 << uint(v)
	}
	return c
}

// IsContradiction reports whether the cube contains both x and x̄ for some
// variable and therefore denotes the constant-0 function.
func (c Cube) IsContradiction() bool { return c.Pos&c.Neg != 0 }

// IsTop reports whether the cube has no literals (constant 1).
func (c Cube) IsTop() bool { return c.Pos == 0 && c.Neg == 0 }

// Support returns the mask of variables mentioned by the cube.
func (c Cube) Support() uint64 { return c.Pos | c.Neg }

// NumLiterals returns the number of literals in the cube.
func (c Cube) NumLiterals() int { return bits.OnesCount64(c.Pos) + bits.OnesCount64(c.Neg) }

// HasPos reports whether x_v appears positively.
func (c Cube) HasPos(v int) bool { return c.Pos&(1<<uint(v)) != 0 }

// HasNeg reports whether x_v appears complemented.
func (c Cube) HasNeg(v int) bool { return c.Neg&(1<<uint(v)) != 0 }

// WithPos returns the cube extended with literal x_v.
func (c Cube) WithPos(v int) Cube { c.Pos |= 1 << uint(v); return c }

// WithNeg returns the cube extended with literal x̄_v.
func (c Cube) WithNeg(v int) Cube { c.Neg |= 1 << uint(v); return c }

// Without returns the cube with any literal of variable v removed.
func (c Cube) Without(v int) Cube {
	m := ^(uint64(1) << uint(v))
	c.Pos &= m
	c.Neg &= m
	return c
}

// Contains reports whether c's literal set is a subset of d's, i.e. d ⇒ c
// as Boolean functions (d is a more specific product). Every cube contains
// a contradictory d vacuously only if the masks line up; callers normally
// keep covers free of contradictory cubes.
func (c Cube) Contains(d Cube) bool {
	return c.Pos&^d.Pos == 0 && c.Neg&^d.Neg == 0
}

// Intersect returns the conjunction of two cubes and whether it is
// non-contradictory.
func (c Cube) Intersect(d Cube) (Cube, bool) {
	r := Cube{Pos: c.Pos | d.Pos, Neg: c.Neg | d.Neg}
	return r, !r.IsContradiction()
}

// Distance returns the number of variables in which c and d have opposing
// literals. Distance 0 means the cubes intersect.
func (c Cube) Distance(d Cube) int {
	return bits.OnesCount64(c.Pos&d.Neg | c.Neg&d.Pos)
}

// Consensus returns the consensus cube of c and d if their distance is
// exactly 1, and false otherwise.
func (c Cube) Consensus(d Cube) (Cube, bool) {
	opp := c.Pos&d.Neg | c.Neg&d.Pos
	if bits.OnesCount64(opp) != 1 {
		return Cube{}, false
	}
	r := Cube{Pos: (c.Pos | d.Pos) &^ opp, Neg: (c.Neg | d.Neg) &^ opp}
	if r.IsContradiction() {
		return Cube{}, false
	}
	return r, true
}

// Eval evaluates the cube on the given assignment, where bit v of point is
// the value of variable x_v.
func (c Cube) Eval(point uint64) bool {
	return c.Pos&^point == 0 && c.Neg&point == 0
}

// Cofactor returns the cofactor of the cube with respect to x_v = val and
// whether it is non-zero.
func (c Cube) Cofactor(v int, val bool) (Cube, bool) {
	bit := uint64(1) << uint(v)
	if val {
		if c.Neg&bit != 0 {
			return Cube{}, false
		}
	} else if c.Pos&bit != 0 {
		return Cube{}, false
	}
	return c.Without(v), true
}

// Less provides a deterministic total order on cubes (by literal count,
// then by masks), used to canonicalize covers.
func (c Cube) Less(d Cube) bool {
	if a, b := c.NumLiterals(), d.NumLiterals(); a != b {
		return a < b
	}
	if c.Pos != d.Pos {
		return c.Pos < d.Pos
	}
	return c.Neg < d.Neg
}

// String renders the cube with variable names x0, x1, ... Constant-1 cubes
// render as "1".
func (c Cube) String() string { return c.Format(nil) }

// Format renders the cube using the supplied variable names. Missing names
// fall back to x<i>.
func (c Cube) Format(names []string) string {
	if c.IsTop() {
		return "1"
	}
	if c.IsContradiction() {
		return "0"
	}
	var b strings.Builder
	for v := 0; v < MaxVars; v++ {
		bit := uint64(1) << uint(v)
		if c.Pos&bit == 0 && c.Neg&bit == 0 {
			continue
		}
		if b.Len() > 0 {
			b.WriteByte('&')
		}
		name := fmt.Sprintf("x%d", v)
		if v < len(names) && names[v] != "" {
			name = names[v]
		}
		if c.Neg&bit != 0 {
			b.WriteByte('!')
		}
		b.WriteString(name)
	}
	return b.String()
}

// SortCubes sorts a cube slice into the canonical order.
func SortCubes(cs []Cube) {
	sort.Slice(cs, func(i, j int) bool { return cs[i].Less(cs[j]) })
}
