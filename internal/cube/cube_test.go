package cube

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCubeBasics(t *testing.T) {
	c := FromLiterals([]int{0, 2}, []int{1})
	if c.NumLiterals() != 3 {
		t.Fatalf("NumLiterals = %d, want 3", c.NumLiterals())
	}
	if !c.HasPos(0) || !c.HasPos(2) || !c.HasNeg(1) {
		t.Fatal("literal membership wrong")
	}
	if c.HasPos(1) || c.HasNeg(0) {
		t.Fatal("phantom literal")
	}
	if c.IsContradiction() || c.IsTop() {
		t.Fatal("classification wrong")
	}
	if got := c.String(); got != "x0&!x1&x2" {
		t.Fatalf("String = %q", got)
	}
	if got := c.Format([]string{"a", "b", "c"}); got != "a&!b&c" {
		t.Fatalf("Format = %q", got)
	}
}

func TestCubeEval(t *testing.T) {
	c := FromLiterals([]int{0}, []int{1}) // x0 & !x1
	cases := []struct {
		point uint64
		want  bool
	}{
		{0b00, false},
		{0b01, true},
		{0b10, false},
		{0b11, false},
		{0b101, true}, // irrelevant variable set
	}
	for _, tc := range cases {
		if got := c.Eval(tc.point); got != tc.want {
			t.Errorf("Eval(%b) = %v, want %v", tc.point, got, tc.want)
		}
	}
}

func TestCubeContainsIntersect(t *testing.T) {
	ab := FromLiterals([]int{0, 1}, nil)
	a := FromLiterals([]int{0}, nil)
	if !a.Contains(ab) {
		t.Fatal("a should contain ab (ab implies a)")
	}
	if ab.Contains(a) {
		t.Fatal("ab should not contain a")
	}
	if !Top().Contains(ab) {
		t.Fatal("top contains everything")
	}
	r, ok := a.Intersect(FromLiterals(nil, []int{1}))
	if !ok || r != FromLiterals([]int{0}, []int{1}) {
		t.Fatalf("Intersect = %v, %v", r, ok)
	}
	if _, ok := a.Intersect(FromLiterals(nil, []int{0})); ok {
		t.Fatal("a & !a should be contradictory")
	}
}

func TestConsensus(t *testing.T) {
	// ab + a'c has consensus bc on variable a.
	c1 := FromLiterals([]int{0, 1}, nil)
	c2 := FromLiterals([]int{2}, []int{0})
	r, ok := c1.Consensus(c2)
	if !ok || r != FromLiterals([]int{1, 2}, nil) {
		t.Fatalf("Consensus = %v, %v", r, ok)
	}
	// Distance 2: no consensus.
	c3 := FromLiterals(nil, []int{0, 1})
	if _, ok := c1.Consensus(c3); ok {
		t.Fatal("distance-2 cubes must not have a consensus")
	}
}

func TestCofactor(t *testing.T) {
	c := FromLiterals([]int{0, 1}, nil)
	r, ok := c.Cofactor(0, true)
	if !ok || r != FromLiterals([]int{1}, nil) {
		t.Fatalf("Cofactor(0,1) = %v, %v", r, ok)
	}
	if _, ok := c.Cofactor(0, false); ok {
		t.Fatal("Cofactor against literal must vanish")
	}
}

func xorFunc(n int) Cover {
	// Parity of n variables as a canonical SOP (2^(n-1) minterm cubes).
	f := Zero(n)
	for p := uint64(0); p < 1<<uint(n); p++ {
		ones := 0
		for v := 0; v < n; v++ {
			if p&(1<<uint(v)) != 0 {
				ones++
			}
		}
		if ones%2 == 1 {
			var c Cube
			for v := 0; v < n; v++ {
				if p&(1<<uint(v)) != 0 {
					c = c.WithPos(v)
				} else {
					c = c.WithNeg(v)
				}
			}
			f.Cubes = append(f.Cubes, c)
		}
	}
	return f
}

func TestTautology(t *testing.T) {
	if !One(3).Tautology() {
		t.Fatal("One must be a tautology")
	}
	if Zero(3).Tautology() {
		t.Fatal("Zero must not be a tautology")
	}
	// x + !x is a tautology.
	f := NewCover(1, FromLiterals([]int{0}, nil), FromLiterals(nil, []int{0}))
	if !f.Tautology() {
		t.Fatal("x + !x must be a tautology")
	}
	// Parity plus its complement is a tautology.
	n := 4
	g := xorFunc(n).Or(xorFunc(n).Complement())
	if !g.Tautology() {
		t.Fatal("f + !f must be a tautology")
	}
	if xorFunc(n).Tautology() {
		t.Fatal("parity is not a tautology")
	}
}

func TestComplementSemantics(t *testing.T) {
	fns := []Cover{
		Zero(3), One(3), xorFunc(3),
		NewCover(3, FromLiterals([]int{0, 1}, nil), FromLiterals([]int{2}, []int{0})),
	}
	for _, f := range fns {
		g := f.Complement()
		for p := uint64(0); p < 1<<uint(f.N); p++ {
			if f.Eval(p) == g.Eval(p) {
				t.Fatalf("complement wrong at point %b for %v", p, f)
			}
		}
	}
}

func TestDualSemantics(t *testing.T) {
	f := NewCover(4,
		FromLiterals([]int{0, 1, 2, 3}, nil),
		FromLiterals(nil, []int{0, 1, 2, 3}))
	d := f.Dual()
	for p := uint64(0); p < 16; p++ {
		want := !f.Eval(^p & 15)
		if d.Eval(p) != want {
			t.Fatalf("dual wrong at %b", p)
		}
	}
}

func TestDualMatchesExpansion(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		f := randomCover(rng, 5, 4)
		a := f.Dual()
		b := f.DualByExpansion()
		if !a.Equiv(b) {
			t.Fatalf("Dual and DualByExpansion disagree on %v:\n%v\nvs\n%v", f, a, b)
		}
	}
}

func TestAbsorb(t *testing.T) {
	a := FromLiterals([]int{0}, nil)
	ab := FromLiterals([]int{0, 1}, nil)
	f := NewCover(2, ab, a, ab)
	g := f.Absorb()
	if len(g.Cubes) != 1 || g.Cubes[0] != a {
		t.Fatalf("Absorb = %v", g)
	}
}

func TestAndOr(t *testing.T) {
	a := NewCover(2, FromLiterals([]int{0}, nil))
	b := NewCover(2, FromLiterals([]int{1}, nil))
	and := a.And(b)
	if len(and.Cubes) != 1 || and.Cubes[0] != FromLiterals([]int{0, 1}, nil) {
		t.Fatalf("And = %v", and)
	}
	or := a.Or(b)
	if len(or.Cubes) != 2 {
		t.Fatalf("Or = %v", or)
	}
	// x & !x = 0
	notA := NewCover(2, FromLiterals(nil, []int{0}))
	if !a.And(notA).IsZero() {
		t.Fatal("x & !x must be zero")
	}
}

func TestCoversCube(t *testing.T) {
	// f = ab + a'  covers cube b? f(b=1): a=1 -> 1; a=0 -> 1. Yes.
	f := NewCover(2, FromLiterals([]int{0, 1}, nil), FromLiterals(nil, []int{0}))
	if !f.CoversCube(FromLiterals([]int{1}, nil)) {
		t.Fatal("f must cover b")
	}
	if f.CoversCube(FromLiterals([]int{0}, nil)) {
		t.Fatal("f must not cover a")
	}
}

func TestDegreeAndCounts(t *testing.T) {
	f := NewCover(4,
		FromLiterals([]int{0, 1, 2}, nil),
		FromLiterals([]int{3}, nil))
	if f.Degree() != 3 || f.MinDegree() != 1 || f.NumLiterals() != 4 {
		t.Fatalf("degree stats wrong: %d %d %d", f.Degree(), f.MinDegree(), f.NumLiterals())
	}
}

func TestMinterms(t *testing.T) {
	f := NewCover(2, FromLiterals([]int{0}, nil)) // x0
	pts := f.Minterms()
	if len(pts) != 2 || pts[0] != 1 || pts[1] != 3 {
		t.Fatalf("Minterms = %v", pts)
	}
	if f.CountOnes() != 2 {
		t.Fatalf("CountOnes = %d", f.CountOnes())
	}
}

func randomCube(rng *rand.Rand, n int) Cube {
	var c Cube
	for v := 0; v < n; v++ {
		switch rng.Intn(3) {
		case 0:
			c = c.WithPos(v)
		case 1:
			c = c.WithNeg(v)
		}
	}
	return c
}

func randomCover(rng *rand.Rand, n, k int) Cover {
	f := Zero(n)
	m := 1 + rng.Intn(k)
	for i := 0; i < m; i++ {
		f.Cubes = append(f.Cubes, randomCube(rng, n))
	}
	return f
}

// Property: absorption never changes the function.
func TestPropAbsorbPreservesFunction(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed ^ rng.Int63()))
		f := randomCover(r, 6, 6)
		g := f.Absorb()
		for p := uint64(0); p < 64; p++ {
			if f.Eval(p) != g.Eval(p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: dual is an involution, dual(dual(f)) ≡ f.
func TestPropDualInvolution(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		f := randomCover(r, 5, 5)
		return f.Dual().Dual().Equiv(f)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// Property: complement is pointwise correct.
func TestPropComplementPointwise(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		f := randomCover(r, 6, 6)
		g := f.Complement()
		for p := uint64(0); p < 64; p++ {
			if f.Eval(p) == g.Eval(p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: De Morgan — dual distributes AND over OR.
func TestPropDualDeMorgan(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		f := randomCover(r, 4, 3)
		g := randomCover(r, 4, 3)
		lhs := f.Or(g).Dual()
		rhs := f.Dual().And(g.Dual())
		return lhs.Equiv(rhs)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Property: Equiv agrees with exhaustive evaluation.
func TestPropEquivMatchesTruthTable(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		f := randomCover(r, 5, 4)
		g := randomCover(r, 5, 4)
		same := true
		for p := uint64(0); p < 32; p++ {
			if f.Eval(p) != g.Eval(p) {
				same = false
				break
			}
		}
		return f.Equiv(g) == same
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestCanonical(t *testing.T) {
	a := FromLiterals([]int{0}, nil)
	b := FromLiterals([]int{1}, nil)
	f := NewCover(2, b, a, b)
	g := f.Canonical()
	if len(g.Cubes) != 2 {
		t.Fatalf("Canonical dedup failed: %v", g)
	}
	if g.Cubes[0] != a || g.Cubes[1] != b {
		t.Fatalf("Canonical order wrong: %v", g)
	}
}

func TestFormatCover(t *testing.T) {
	if got := Zero(2).String(); got != "0" {
		t.Fatalf("Zero string = %q", got)
	}
	if got := One(2).String(); got != "1" {
		t.Fatalf("One string = %q", got)
	}
}
