package cube

import (
	"math/bits"
	"strings"
)

// Cover is a sum of products (SOP) over N variables. The zero value is the
// constant-0 function over zero variables.
type Cover struct {
	N     int
	Cubes []Cube
}

// NewCover returns a cover over n variables with the given cubes,
// contradictions removed.
func NewCover(n int, cubes ...Cube) Cover {
	c := Cover{N: n}
	for _, q := range cubes {
		if !q.IsContradiction() {
			c.Cubes = append(c.Cubes, q)
		}
	}
	return c
}

// Zero returns the constant-0 cover over n variables.
func Zero(n int) Cover { return Cover{N: n} }

// One returns the constant-1 cover over n variables.
func One(n int) Cover { return Cover{N: n, Cubes: []Cube{Top()}} }

// IsZero reports whether the cover has no cubes (syntactic constant 0).
func (f Cover) IsZero() bool { return len(f.Cubes) == 0 }

// IsOne reports whether some cube of the cover is the constant-1 cube.
func (f Cover) IsOne() bool {
	for _, c := range f.Cubes {
		if c.IsTop() {
			return true
		}
	}
	return false
}

// Clone returns a deep copy of the cover.
func (f Cover) Clone() Cover {
	g := Cover{N: f.N, Cubes: make([]Cube, len(f.Cubes))}
	copy(g.Cubes, f.Cubes)
	return g
}

// Eval evaluates the cover on the given point (bit v = value of x_v).
func (f Cover) Eval(point uint64) bool {
	for _, c := range f.Cubes {
		if c.Eval(point) {
			return true
		}
	}
	return false
}

// Degree returns the maximum number of literals over the cubes of the
// cover (the paper's δ). The degree of the empty cover is 0.
func (f Cover) Degree() int {
	d := 0
	for _, c := range f.Cubes {
		if n := c.NumLiterals(); n > d {
			d = n
		}
	}
	return d
}

// MinDegree returns the minimum number of literals over the cubes, or 0 for
// an empty cover.
func (f Cover) MinDegree() int {
	if len(f.Cubes) == 0 {
		return 0
	}
	d := f.Cubes[0].NumLiterals()
	for _, c := range f.Cubes[1:] {
		if n := c.NumLiterals(); n < d {
			d = n
		}
	}
	return d
}

// NumLiterals returns the total literal count across all cubes.
func (f Cover) NumLiterals() int {
	t := 0
	for _, c := range f.Cubes {
		t += c.NumLiterals()
	}
	return t
}

// Support returns the mask of variables appearing in the cover.
func (f Cover) Support() uint64 {
	var m uint64
	for _, c := range f.Cubes {
		m |= c.Support()
	}
	return m
}

// LiteralSet returns the distinct literals of the cover as (posMask,
// negMask): bit v of posMask set means x_v appears positively somewhere.
func (f Cover) LiteralSet() (pos, neg uint64) {
	for _, c := range f.Cubes {
		pos |= c.Pos
		neg |= c.Neg
	}
	return pos, neg
}

// Absorb removes every cube that is contained in another cube of the cover
// (single-cube containment) along with duplicates, returning a new cover.
func (f Cover) Absorb() Cover {
	cs := make([]Cube, len(f.Cubes))
	copy(cs, f.Cubes)
	SortCubes(cs)
	out := cs[:0]
	for _, c := range cs {
		if c.IsContradiction() {
			continue
		}
		redundant := false
		for _, kept := range out {
			if kept.Contains(c) {
				redundant = true
				break
			}
		}
		if !redundant {
			out = append(out, c)
		}
	}
	g := Cover{N: f.N, Cubes: make([]Cube, len(out))}
	copy(g.Cubes, out)
	return g
}

// Or returns the disjunction of two covers (with absorption).
func (f Cover) Or(g Cover) Cover {
	n := f.N
	if g.N > n {
		n = g.N
	}
	cs := make([]Cube, 0, len(f.Cubes)+len(g.Cubes))
	cs = append(cs, f.Cubes...)
	cs = append(cs, g.Cubes...)
	return Cover{N: n, Cubes: cs}.Absorb()
}

// And returns the conjunction of two covers (cube-by-cube multiplication
// with absorption).
func (f Cover) And(g Cover) Cover {
	n := f.N
	if g.N > n {
		n = g.N
	}
	var cs []Cube
	for _, a := range f.Cubes {
		for _, b := range g.Cubes {
			if r, ok := a.Intersect(b); ok {
				cs = append(cs, r)
			}
		}
	}
	return Cover{N: n, Cubes: cs}.Absorb()
}

// Cofactor returns the cover cofactored by x_v = val.
func (f Cover) Cofactor(v int, val bool) Cover {
	g := Cover{N: f.N}
	for _, c := range f.Cubes {
		if r, ok := c.Cofactor(v, val); ok {
			g.Cubes = append(g.Cubes, r)
		}
	}
	return g
}

// CofactorCube returns the generalized cofactor f/c used by containment
// checks: each cube of f that intersects c, with c's literals removed.
func (f Cover) CofactorCube(c Cube) Cover {
	g := Cover{N: f.N}
	for _, q := range f.Cubes {
		if q.Pos&c.Neg != 0 || q.Neg&c.Pos != 0 {
			continue // disjoint from c
		}
		g.Cubes = append(g.Cubes, Cube{Pos: q.Pos &^ c.Pos, Neg: q.Neg &^ c.Neg})
	}
	return g
}

// mostBinate picks the splitting variable for unate-recursive procedures:
// the variable occurring in the most cubes with both phases present,
// falling back to the most frequent variable.
func (f Cover) mostBinate() int {
	bestVar, bestScore := -1, -1
	support := f.Support()
	for v := 0; v < f.N; v++ {
		bit := uint64(1) << uint(v)
		if support&bit == 0 {
			continue
		}
		var np, nn int
		for _, c := range f.Cubes {
			if c.Pos&bit != 0 {
				np++
			}
			if c.Neg&bit != 0 {
				nn++
			}
		}
		score := np + nn
		if np > 0 && nn > 0 {
			score += 1 << 20 // strongly prefer binate variables
		}
		if score > bestScore {
			bestScore, bestVar = score, v
		}
	}
	return bestVar
}

// Tautology reports whether the cover is the constant-1 function, using the
// unate-recursive paradigm.
func (f Cover) Tautology() bool {
	if f.IsOne() {
		return true
	}
	if len(f.Cubes) == 0 {
		return false
	}
	// Unate reduction: if some variable appears in only one phase, cubes
	// using it can never help cover the opposite half-space; a unate cover
	// is a tautology iff it contains the constant-1 cube.
	pos, neg := f.LiteralSet()
	binate := pos & neg
	if binate == 0 {
		return false // no constant-1 cube (checked above) and unate
	}
	v := f.mostBinate()
	if v < 0 {
		return false
	}
	return f.Cofactor(v, false).Tautology() && f.Cofactor(v, true).Tautology()
}

// CoversCube reports whether cube c is contained in the cover (c ⇒ f).
func (f Cover) CoversCube(c Cube) bool {
	return f.CofactorCube(c).Tautology()
}

// Covers reports whether g ⇒ f (every cube of g is covered by f).
func (f Cover) Covers(g Cover) bool {
	for _, c := range g.Cubes {
		if !f.CoversCube(c) {
			return false
		}
	}
	return true
}

// Equiv reports whether f and g denote the same Boolean function.
func (f Cover) Equiv(g Cover) bool {
	return f.Covers(g) && g.Covers(f)
}

// Complement returns an SOP cover of ¬f using the unate-recursive
// complementation (Shannon expansion with cube-list merging).
func (f Cover) Complement() Cover {
	return f.complement().Absorb()
}

func (f Cover) complement() Cover {
	if len(f.Cubes) == 0 {
		return One(f.N)
	}
	if f.IsOne() {
		return Zero(f.N)
	}
	if len(f.Cubes) == 1 {
		// De Morgan on a single cube.
		c := f.Cubes[0]
		g := Cover{N: f.N}
		for v := 0; v < f.N; v++ {
			bit := uint64(1) << uint(v)
			if c.Pos&bit != 0 {
				g.Cubes = append(g.Cubes, Cube{Neg: bit})
			}
			if c.Neg&bit != 0 {
				g.Cubes = append(g.Cubes, Cube{Pos: bit})
			}
		}
		return g
	}
	v := f.mostBinate()
	if v < 0 {
		return Zero(f.N)
	}
	c0 := f.Cofactor(v, false).complement()
	c1 := f.Cofactor(v, true).complement()
	g := Cover{N: f.N}
	for _, c := range c0.Cubes {
		if !c.HasPos(v) {
			g.Cubes = append(g.Cubes, c.WithNeg(v))
		}
	}
	for _, c := range c1.Cubes {
		if !c.HasNeg(v) {
			g.Cubes = append(g.Cubes, c.WithPos(v))
		}
	}
	return g.Absorb()
}

// Dual returns the dual function f^D(x) = ¬f(¬x) as an SOP cover, computed
// by complementing f and flipping every literal's polarity.
func (f Cover) Dual() Cover {
	comp := f.Complement()
	g := Cover{N: f.N, Cubes: make([]Cube, len(comp.Cubes))}
	for i, c := range comp.Cubes {
		g.Cubes[i] = Cube{Pos: c.Neg, Neg: c.Pos}
	}
	return g.Absorb()
}

// DualByExpansion computes the dual by interpreting the SOP as a POS (the
// classical definition) and multiplying the clauses out with absorption.
// It is exponential in the worst case but matches Dual on every input and
// is kept as an independent oracle for testing.
func (f Cover) DualByExpansion() Cover {
	if len(f.Cubes) == 0 {
		return One(f.N)
	}
	acc := Cover{N: f.N, Cubes: []Cube{Top()}}
	for _, c := range f.Cubes {
		if c.IsTop() {
			return Zero(f.N)
		}
		var clause []Cube
		for v := 0; v < f.N; v++ {
			bit := uint64(1) << uint(v)
			if c.Pos&bit != 0 {
				clause = append(clause, Cube{Pos: bit})
			}
			if c.Neg&bit != 0 {
				clause = append(clause, Cube{Neg: bit})
			}
		}
		acc = acc.And(Cover{N: f.N, Cubes: clause})
		if acc.IsZero() {
			return acc
		}
	}
	return acc
}

// Minterms enumerates the on-set of the cover as points over n variables.
// It panics if f.N > 24 to avoid runaway enumeration.
func (f Cover) Minterms() []uint64 {
	if f.N > 24 {
		panic("cube: Minterms limited to 24 variables")
	}
	var pts []uint64
	for p := uint64(0); p < 1<<uint(f.N); p++ {
		if f.Eval(p) {
			pts = append(pts, p)
		}
	}
	return pts
}

// CountOnes returns the size of the on-set without materializing it, by
// inclusion-exclusion-free enumeration (fast for small N).
func (f Cover) CountOnes() uint64 {
	if f.N > 30 {
		panic("cube: CountOnes limited to 30 variables")
	}
	var n uint64
	for p := uint64(0); p < 1<<uint(f.N); p++ {
		if f.Eval(p) {
			n++
		}
	}
	return n
}

// String renders the cover as a sum of products.
func (f Cover) String() string { return f.Format(nil) }

// Format renders the cover using the supplied variable names.
func (f Cover) Format(names []string) string {
	if len(f.Cubes) == 0 {
		return "0"
	}
	parts := make([]string, len(f.Cubes))
	for i, c := range f.Cubes {
		parts[i] = c.Format(names)
	}
	return strings.Join(parts, " + ")
}

// Canonical returns the cover with cubes sorted in the canonical order and
// duplicates removed. It does not change the function.
func (f Cover) Canonical() Cover {
	g := f.Clone()
	SortCubes(g.Cubes)
	out := g.Cubes[:0]
	var prev Cube
	for i, c := range g.Cubes {
		if i > 0 && c == prev {
			continue
		}
		out = append(out, c)
		prev = c
	}
	g.Cubes = out
	return g
}

// PopCountSupport returns the number of distinct variables used by f.
func (f Cover) PopCountSupport() int { return bits.OnesCount64(f.Support()) }
