package report

import (
	"strings"
	"testing"
)

func TestParseSol(t *testing.T) {
	m, n, size := ParseSol("4x6")
	if m != 4 || n != 6 || size != 24 {
		t.Fatalf("ParseSol = %d %d %d", m, n, size)
	}
	if _, _, size := ParseSol("garbage"); size != 0 {
		t.Fatal("malformed input should give zeros")
	}
	if Sol(3, 5) != "3x5" {
		t.Fatal("Sol format wrong")
	}
}

func TestTableAlignment(t *testing.T) {
	tb := NewTable("name", "size")
	tb.Add("a", "10")
	tb.Add("longer", "7")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d", len(lines))
	}
	if len(lines[0]) != len(lines[1]) || len(lines[1]) != len(lines[2]) {
		t.Fatalf("misaligned:\n%s", out)
	}
	if !strings.HasPrefix(lines[2], "longer") {
		t.Fatalf("row order wrong:\n%s", out)
	}
}

func TestGain(t *testing.T) {
	if g := Gain(200, 150); g != 25 {
		t.Fatalf("Gain = %v", g)
	}
	if Gain(0, 10) != 0 {
		t.Fatal("zero baseline must give 0")
	}
}
