package report

import (
	"strings"
	"testing"
)

func TestParseSol(t *testing.T) {
	m, n, size := ParseSol("4x6")
	if m != 4 || n != 6 || size != 24 {
		t.Fatalf("ParseSol = %d %d %d", m, n, size)
	}
	if _, _, size := ParseSol("garbage"); size != 0 {
		t.Fatal("malformed input should give zeros")
	}
	if Sol(3, 5) != "3x5" {
		t.Fatal("Sol format wrong")
	}
}

func TestTableAlignment(t *testing.T) {
	tb := NewTable("name", "size")
	tb.Add("a", "10")
	tb.Add("longer", "7")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d", len(lines))
	}
	if len(lines[0]) != len(lines[1]) || len(lines[1]) != len(lines[2]) {
		t.Fatalf("misaligned:\n%s", out)
	}
	if !strings.HasPrefix(lines[2], "longer") {
		t.Fatalf("row order wrong:\n%s", out)
	}
}

func TestGain(t *testing.T) {
	if g := Gain(200, 150); g != 25 {
		t.Fatalf("Gain = %v", g)
	}
	if Gain(0, 10) != 0 {
		t.Fatal("zero baseline must give 0")
	}
}

func TestCount(t *testing.T) {
	for _, c := range []struct {
		n    int64
		want string
	}{{941, "941"}, {3412, "3.4k"}, {2_600_000, "2.6M"}, {0, "0"}} {
		if got := Count(c.n); got != c.want {
			t.Errorf("Count(%d) = %q, want %q", c.n, got, c.want)
		}
	}
}

func TestEffort(t *testing.T) {
	s := Effort(3393, 26436, 12)
	for _, sub := range []string{"3.4k added", "26.4k if rebuilt", "7.8x", "12 CEGAR iters"} {
		if !strings.Contains(s, sub) {
			t.Errorf("Effort missing %q in %q", sub, s)
		}
	}
	// Monolithic solves have added == rebuilt and no iterations: no ratio,
	// no iteration clause.
	if s := Effort(500, 500, 0); s != "clauses 500 added" {
		t.Errorf("monolithic Effort = %q", s)
	}
}

func TestMemoLine(t *testing.T) {
	got := MemoLine("paths", 5, 2, "tables", 40, 3)
	if got != "paths 5/2 tables 40/3" {
		t.Errorf("MemoLine = %q", got)
	}
}
