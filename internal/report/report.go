// Package report holds small shared helpers for the benchmark harnesses:
// parsing and formatting the paper's "MxN" solution notation and aligned
// table rendering.
package report

import (
	"fmt"
	"strings"
)

// ParseSol parses the paper's solution notation "4x6" into rows, columns
// and size. Malformed strings yield zeros.
func ParseSol(sol string) (m, n, size int) {
	if _, err := fmt.Sscanf(sol, "%dx%d", &m, &n); err != nil {
		return 0, 0, 0
	}
	return m, n, m * n
}

// Sol formats rows×columns in the paper's notation.
func Sol(m, n int) string { return fmt.Sprintf("%dx%d", m, n) }

// Table accumulates rows of cells and renders them with aligned columns.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given header.
func NewTable(header ...string) *Table { return &Table{header: header} }

// Add appends a row; short rows are padded with empty cells.
func (t *Table) Add(cells ...string) { t.rows = append(t.rows, cells) }

// String renders the table with single-space-padded aligned columns.
func (t *Table) String() string {
	width := make([]int, len(t.header))
	for i, h := range t.header {
		width[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(width) && len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i := 0; i < len(width); i++ {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(c)
			for p := len(c); p < width[i]; p++ {
				sb.WriteByte(' ')
			}
		}
		sb.WriteByte('\n')
	}
	writeRow(t.header)
	for _, r := range t.rows {
		writeRow(r)
	}
	return sb.String()
}

// Gain returns the percentage improvement of measured over baseline
// ((baseline-measured)/baseline × 100), or 0 for a zero baseline.
func Gain(baseline, measured int) float64 {
	if baseline == 0 {
		return 0
	}
	return 100 * float64(baseline-measured) / float64(baseline)
}
