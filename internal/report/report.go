// Package report holds small shared helpers for the benchmark harnesses:
// parsing and formatting the paper's "MxN" solution notation and aligned
// table rendering.
package report

import (
	"fmt"
	"strings"
)

// ParseSol parses the paper's solution notation "4x6" into rows, columns
// and size. Malformed strings yield zeros.
func ParseSol(sol string) (m, n, size int) {
	if _, err := fmt.Sscanf(sol, "%dx%d", &m, &n); err != nil {
		return 0, 0, 0
	}
	return m, n, m * n
}

// Sol formats rows×columns in the paper's notation.
func Sol(m, n int) string { return fmt.Sprintf("%dx%d", m, n) }

// Table accumulates rows of cells and renders them with aligned columns.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given header.
func NewTable(header ...string) *Table { return &Table{header: header} }

// Add appends a row; short rows are padded with empty cells.
func (t *Table) Add(cells ...string) { t.rows = append(t.rows, cells) }

// String renders the table with single-space-padded aligned columns.
func (t *Table) String() string {
	width := make([]int, len(t.header))
	for i, h := range t.header {
		width[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(width) && len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i := 0; i < len(width); i++ {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(c)
			for p := len(c); p < width[i]; p++ {
				sb.WriteByte(' ')
			}
		}
		sb.WriteByte('\n')
	}
	writeRow(t.header)
	for _, r := range t.rows {
		writeRow(r)
	}
	return sb.String()
}

// Gain returns the percentage improvement of measured over baseline
// ((baseline-measured)/baseline × 100), or 0 for a zero baseline.
func Gain(baseline, measured int) float64 {
	if baseline == 0 {
		return 0
	}
	return 100 * float64(baseline-measured) / float64(baseline)
}

// Count renders a counter compactly: 941, 3.4k, 2.6M.
func Count(n int64) string {
	switch {
	case n >= 1_000_000:
		return fmt.Sprintf("%.1fM", float64(n)/1e6)
	case n >= 1_000:
		return fmt.Sprintf("%.1fk", float64(n)/1e3)
	default:
		return fmt.Sprintf("%d", n)
	}
}

// Effort formats the incremental solving counters for footers and logs:
// the clause volume actually handed to SAT solvers, the volume a
// rebuild-per-iteration engine would have pushed, and the CEGAR
// iteration count. A rebuilt/added ratio above 1 is the incremental
// engine's saving.
func Effort(added, rebuilt, iters int64) string {
	s := fmt.Sprintf("clauses %s added", Count(added))
	if rebuilt > added && added > 0 {
		s += fmt.Sprintf(" (%s if rebuilt, %.1fx)", Count(rebuilt), float64(rebuilt)/float64(added))
	}
	if iters > 0 {
		s += fmt.Sprintf(", %d CEGAR iters", iters)
	}
	return s
}

// Rate formats a hit rate hits/(hits+misses) as a percentage, or "-"
// when the cache was never consulted.
func Rate(hits, misses int64) string {
	total := hits + misses
	if total == 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(hits)/float64(total))
}

// MemoLine formats cache hit/miss pairs ("paths 5/2 tables 40/3 ..."),
// as hits/misses per cache; label/value pairs keep it layout-free.
func MemoLine(pairs ...any) string {
	var sb strings.Builder
	for i := 0; i+2 < len(pairs); i += 3 {
		if i > 0 {
			sb.WriteByte(' ')
		}
		fmt.Fprintf(&sb, "%v %v/%v", pairs[i], pairs[i+1], pairs[i+2])
	}
	return sb.String()
}
