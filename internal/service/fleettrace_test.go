package service

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"github.com/lattice-tools/janus/internal/core"
	"github.com/lattice-tools/janus/internal/cube"
	"github.com/lattice-tools/janus/internal/obsv"
)

// postSynthesize submits one synthesis over HTTP with extra headers and
// returns the decoded response.
func postSynthesize(t *testing.T, url string, req Request, hdr map[string]string) *Response {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	hreq, err := http.NewRequest(http.MethodPost, url+"/v1/synthesize", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		hreq.Header.Set(k, v)
	}
	hres, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	defer hres.Body.Close()
	if hres.StatusCode != http.StatusOK {
		t.Fatalf("synthesize status %d", hres.StatusCode)
	}
	var resp Response
	if err := json.NewDecoder(hres.Body).Decode(&resp); err != nil {
		t.Fatal(err)
	}
	return &resp
}

// TestInboundTraceContext: a request carrying X-Janus-Trace roots its
// job trace under the remote span — the Job record is tagged with the
// fleet trace id and process name and carries the advisory
// remote_parent — while staying a valid standalone trace (Parent 0).
func TestInboundTraceContext(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp := postSynthesize(t, ts.URL, fig1Request(), map[string]string{
		obsv.TraceHeader: "t-fleet-x-7",
	})
	if resp.Status != StatusDone || resp.JobID == "" {
		t.Fatalf("synthesis: %+v", resp)
	}
	raw, err := s.JobTrace(resp.JobID)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := obsv.ValidateTrace(bytes.NewReader(raw)); err != nil {
		t.Fatalf("remote-rooted trace invalid standalone: %v", err)
	}
	recs, err := obsv.ReadTrace(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	var job *obsv.Record
	for i := range recs {
		if recs[i].TraceID != "t-fleet-x" || recs[i].Proc != "janusd" {
			t.Fatalf("span %q trace tags = %q/%q, want t-fleet-x/janusd",
				recs[i].Span, recs[i].TraceID, recs[i].Proc)
		}
		if recs[i].Span == "Job" {
			job = &recs[i]
		}
	}
	if job == nil {
		t.Fatal("no Job span")
	}
	if job.Parent != 0 || job.RemoteParent != 7 {
		t.Fatalf("Job parent=%d remote_parent=%d, want 0/7", job.Parent, job.RemoteParent)
	}
}

// TestInboundTraceContextDisabled: with propagation off the header is
// ignored — the job trace roots locally with no fleet tags.
func TestInboundTraceContextDisabled(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, DisableTracePropagation: true})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp := postSynthesize(t, ts.URL, fig1Request(), map[string]string{
		obsv.TraceHeader: "t-fleet-x-7",
	})
	if resp.Status != StatusDone {
		t.Fatalf("synthesis: %+v", resp)
	}
	raw, err := s.JobTrace(resp.JobID)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := obsv.ReadTrace(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs {
		if rec.TraceID != "" || rec.RemoteParent != 0 {
			t.Fatalf("span %q carries fleet tags with propagation disabled: %+v", rec.Span, rec)
		}
	}
}

// TestPerTenantSLOStats: two tenants pushing jobs through the scheduler
// each get their own SLO rows (synthesize + first_mapping) in the
// /v1/stats scheduler block, with observations accounted to the right
// tenant.
func TestPerTenantSLOStats(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2})
	s.synth = func(f cube.Cover, opt core.Options) (core.Result, error) {
		return fakeResult(), nil
	}
	for i, tenant := range []string{"bulk", "bulk", "inter"} {
		ctx := ContextWithTenant(context.Background(), tenant)
		// Distinct budgets make distinct cache keys, so every request runs.
		resp, err := s.Synthesize(ctx, Request{PLA: fig1PLA, TimeoutMS: int64(60_000 + i)})
		if err != nil {
			t.Fatal(err)
		}
		if resp.Status != StatusDone {
			t.Fatalf("synthesis %d: %+v", i, resp)
		}
	}
	st := s.Stats()
	if st.Scheduler == nil {
		t.Fatal("no scheduler stats")
	}
	byName := map[string]TenantStats{}
	for _, row := range st.Scheduler.Tenants {
		byName[row.Name] = row
	}
	for tenant, want := range map[string]int64{"bulk": 2, "inter": 1} {
		row, ok := byName[tenant]
		if !ok {
			t.Fatalf("tenant %q missing from scheduler stats", tenant)
		}
		if len(row.SLOs) != 2 {
			t.Fatalf("tenant %q has %d SLO rows, want 2 (synthesize + first_mapping)", tenant, len(row.SLOs))
		}
		names := map[string]int64{}
		for _, slo := range row.SLOs {
			names[slo.Name] = slo.Total
		}
		if names["synthesize"] != want || names["first_mapping"] != want {
			t.Fatalf("tenant %q SLO totals = %v, want %d each", tenant, names, want)
		}
	}
	// The burn gauges landed in the default registry under tenant labels.
	snap := obsv.Default.Snapshot()
	if _, ok := snap.Gauges[obsv.LabeledName("janus_service_tenant_slo_synthesize_total", "tenant", "bulk")]; !ok {
		t.Fatal("tenant-labeled SLO gauge not registered")
	}
}
