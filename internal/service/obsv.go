package service

import "github.com/lattice-tools/janus/internal/obsv"

// Service metrics, in the process-wide registry next to the synthesis
// pipeline's own (janus_core_*, janus_sat_*, …) so one /metrics scrape
// shows queue health and solver effort side by side.
var (
	mRequests    = obsv.Default.Counter("janus_service_requests_total")
	mCoalesced   = obsv.Default.Counter("janus_service_coalesced_total")
	mMemHits     = obsv.Default.Counter("janus_service_cache_mem_hits")
	mDiskHits    = obsv.Default.Counter("janus_service_cache_disk_hits")
	mCacheMiss   = obsv.Default.Counter("janus_service_cache_misses")
	mBudgetHits  = obsv.Default.Counter("janus_service_cache_budget_hits_total")
	mQueueFull   = obsv.Default.Counter("janus_service_queue_full_total")
	mCanceled    = obsv.Default.Counter("janus_service_canceled_total")
	mJobsDone    = obsv.Default.Counter("janus_service_jobs_done_total")
	mPartial     = obsv.Default.Counter("janus_service_partial_total")
	mJobErrors   = obsv.Default.Counter("janus_service_job_errors_total")
	mDiskCorrupt = obsv.Default.Counter("janus_service_disk_corrupt_total")
	gQueueDepth  = obsv.Default.Gauge("janus_service_queue_depth")
	gRunning     = obsv.Default.Gauge("janus_service_running_jobs")
	gMemoLoaded  = obsv.Default.Gauge("janus_service_memo_paths_loaded")
	hRequestNS   = obsv.Default.Histogram("janus_service_request_ns")
	hQueueWaitNS = obsv.Default.Histogram("janus_service_queue_wait_ns")
	hSolveNS     = obsv.Default.Histogram("janus_service_solve_ns")
	// hFirstMappingNS distributes enqueue-to-first-verified-mapping — the
	// service-level anytime latency (queue wait included, unlike the
	// core-level janus_core_first_mapping_ns).
	hFirstMappingNS = obsv.Default.Histogram("janus_service_first_mapping_ns")

	mFlightEntries = obsv.Default.Counter("janus_service_flight_entries_total")
	mTracesPinned  = obsv.Default.Counter("janus_service_traces_pinned_total")

	// Batch synthesis: whole-batch requests, and per-output answers a
	// finished batch unpacked into the single-function cache.
	mBatchRequests = obsv.Default.Counter("janus_service_batch_requests_total")
	mBatchUnpacked = obsv.Default.Counter("janus_service_batch_unpacked_total")

	// Scheduler: DRR deficit refill rounds, and dispatches whose cover
	// shape matched the previous one (memo-affinity hits). Per-tenant
	// depth/admit/shed metrics are created lazily per tenant (tenant.go).
	mSchedRefills     = obsv.Default.Counter("janus_service_sched_refill_rounds_total")
	mDispatchAffinity = obsv.Default.Counter("janus_service_dispatch_affinity_total")

	// Peer cache fill (the front tier's reshard warm-up): lookups served
	// to peers on /v1/cache/{fnKey}, and fills this daemon performed
	// against a hinted peer on its own misses. The probe/hit/rejected
	// trio shares the peer_fill prefix so dashboards can correlate them.
	mPeerLookups      = obsv.Default.Counter("janus_service_cache_lookups_total")
	mPeerLookupHits   = obsv.Default.Counter("janus_service_cache_lookup_hits_total")
	mPeerFillProbes   = obsv.Default.Counter("janus_service_peer_fill_probes_total")
	mPeerFillHits     = obsv.Default.Counter("janus_service_peer_fill_hits_total")
	mPeerFillRejected = obsv.Default.Counter("janus_service_peer_fill_rejected_total")
)
