package service

import "testing"

// TestFnKeyGolden pins the budget-free function key to exact digests.
// The fnKey is load-bearing far beyond this process: a sharding front
// hashes it to pick a key's owning backend, the peer cache-fill
// protocol compares it across daemons, and disk caches survive
// restarts. If this test breaks, the canonical form changed — that is a
// cross-version wire/cache compatibility break, not a refactor detail:
// a mixed fleet would route the same function to different shards and
// every persisted cache entry would silently miss. Change the digests
// only with a deliberate migration story.
func TestFnKeyGolden(t *testing.T) {
	base := ".i 3\n.o 1\n110 1\n0-1 1\n.e\n"
	const baseKey = "a0e1440f0f22f501b1ab5e9c11a03ad09d04356688399f74e992c04746347501"
	cases := []struct {
		name string
		req  Request
		want string
	}{
		{"base", Request{PLA: base}, baseKey},
		// Cube order is spelling, not identity.
		{"permuted cubes", Request{PLA: ".i 3\n.o 1\n0-1 1\n110 1\n.e\n"}, baseKey},
		// A repeated cube denotes the same function.
		{"duplicate cube", Request{PLA: ".i 3\n.o 1\n110 1\n110 1\n0-1 1\n.e\n"}, baseKey},
		// Budgets shape how long we look, not what we ask — fn identity
		// must ignore them (that is what makes the key routable).
		{"budget-free", Request{PLA: base, TimeoutMS: 1234, MaxConflicts: 99}, baseKey},
		// EngineAuto is the default and contributes nothing.
		{"engine auto", Request{PLA: base, Engine: "auto"}, baseKey},
		// Answer-shaping options fork the identity.
		{"cegar", Request{PLA: base, CEGAR: true},
			"04f783a893eabf964fe7354248c15bac2b70cf77cc444715f2c4a4db0efbfd91"},
		{"portfolio", Request{PLA: base, Portfolio: true},
			"df8e13aa594141d8c19a84c1fb426d48064ee15218b1507160fed523517ea551"},
		{"engine shared", Request{PLA: base, Engine: "shared"},
			"e6d87b9cd1114d8f7bdd55b62c52704a7b9d691b708b5dae07f570adb13f0a3a"},
		{"engine fresh", Request{PLA: base, Engine: "fresh"},
			"4e81db0e7aa4083437ac48d5312f2e64937877e0cf6e6cd78221b442de0c179a"},
		{"and4 nor4", Request{PLA: ".i 4\n.o 1\n1111 1\n0000 1\n.e\n"},
			"6eac55735c6092002e2d25b33bbd81c65300e2f13888d1196e24a589ac4589c7"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := FnKeyOf(tc.req)
			if err != nil {
				t.Fatalf("FnKeyOf: %v", err)
			}
			if got != tc.want {
				t.Fatalf("fnKey drifted:\n got  %s\n want %s\n"+
					"this changes shard routing and invalidates persisted caches", got, tc.want)
			}
		})
	}
}
