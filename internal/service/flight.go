package service

import (
	"sync"
	"time"
)

// FlightEntry is one request summary in the flight recorder: enough to
// see what the request asked (function key prefix), how it was answered
// (cache tier, coalescing, outcome), and where its time went (queue wait
// vs. solve wall), keyed by the ids needed to cross-reference the access
// log and the retained job trace.
type FlightEntry struct {
	Time      time.Time `json:"time"`
	RequestID string    `json:"request_id"`
	JobID     string    `json:"job_id,omitempty"`
	// CoalescedInto names the leader job whose synthesis answered this
	// follower request; its trace is the one to read.
	CoalescedInto string `json:"coalesced_into,omitempty"`
	FnKey         string `json:"fn_key,omitempty"`
	// Outcome is a job status (done/error/canceled) or one of the
	// admission outcomes "shed" (429) and "draining" (503).
	Outcome string `json:"outcome"`
	Cached  string `json:"cached,omitempty"`
	Error   string `json:"error,omitempty"`
	// Grid is the answer's lattice shape; GridsProbed the distinct shapes
	// the search attempted (empty for cache hits — nothing was searched).
	Grid        string   `json:"grid,omitempty"`
	GridsProbed []string `json:"grids_probed,omitempty"`
	// FinalLB/FinalUB are the bounds when the search stopped, and Partial
	// marks degraded answers (verified incumbent, bounds not met) — the
	// audit trail for every answer the anytime path handed out.
	FinalLB int  `json:"final_lb,omitempty"`
	FinalUB int  `json:"final_ub,omitempty"`
	Partial bool `json:"partial,omitempty"`
	// Engine is the verdict of the per-step engine policy over the whole
	// search ("fresh", "shared", or "mixed"); PredictedDepth the policy's
	// depth score at the first dichotomic step. Empty for cache hits.
	Engine         string `json:"engine,omitempty"`
	PredictedDepth int    `json:"predicted_depth,omitempty"`
	QueueWaitNS    int64  `json:"queue_wait_ns,omitempty"`
	SolveNS        int64  `json:"solve_ns,omitempty"`
	TotalNS        int64  `json:"total_ns"`
	// TracePinned marks entries whose full span trace is retained beyond
	// the normal per-job window (slow, errored, or deadline-bounded jobs).
	TracePinned bool `json:"trace_pinned,omitempty"`
}

// Admission outcomes (the job statuses cover the rest).
const (
	outcomeShed     = "shed"
	outcomeDraining = "draining"
)

// maxPinnedTraces bounds the traces kept alive by the pin rule, on top
// of the TraceJobs recency window.
const maxPinnedTraces = 32

// flightRecorder is the in-memory black box: a fixed-size ring of recent
// FlightEntry summaries — every request gets one, including requests the
// admission path shed — plus pinned full traces for the requests worth a
// post-mortem (slow, errored, canceled). A nil recorder no-ops, so the
// disabled path costs one pointer check.
type flightRecorder struct {
	slow time.Duration // pin threshold; 0 disables the slow rule

	mu          sync.Mutex
	ring        []FlightEntry
	next        int
	n           int
	pinned      map[string][]byte
	pinnedOrder []string
}

func newFlightRecorder(size int, slow time.Duration) *flightRecorder {
	return &flightRecorder{
		slow:   slow,
		ring:   make([]FlightEntry, size),
		pinned: make(map[string][]byte),
	}
}

// record adds one request summary to the ring.
func (f *flightRecorder) record(e FlightEntry) {
	if f == nil {
		return
	}
	mFlightEntries.Inc()
	f.mu.Lock()
	f.ring[f.next] = e
	f.next = (f.next + 1) % len(f.ring)
	if f.n < len(f.ring) {
		f.n++
	}
	f.mu.Unlock()
}

// shouldPin decides whether a finished job's full trace is worth
// retaining: every non-done outcome is, every partial (degraded) answer
// is, and so is any job whose queue-plus-solve time reached the slow
// threshold.
func (f *flightRecorder) shouldPin(outcome string, partial bool, total time.Duration) bool {
	if f == nil {
		return false
	}
	if outcome != StatusDone || partial {
		return true
	}
	return f.slow > 0 && total >= f.slow
}

// pin retains a finished job's JSONL trace, evicting the oldest pin
// beyond maxPinnedTraces.
func (f *flightRecorder) pin(jobID string, jsonl []byte) {
	if f == nil || len(jsonl) == 0 {
		return
	}
	mTracesPinned.Inc()
	f.mu.Lock()
	if _, ok := f.pinned[jobID]; !ok {
		f.pinnedOrder = append(f.pinnedOrder, jobID)
		for len(f.pinnedOrder) > maxPinnedTraces {
			delete(f.pinned, f.pinnedOrder[0])
			f.pinnedOrder = f.pinnedOrder[1:]
		}
	}
	f.pinned[jobID] = jsonl
	f.mu.Unlock()
}

// pinnedTrace returns a pinned trace by job id.
func (f *flightRecorder) pinnedTrace(jobID string) ([]byte, bool) {
	if f == nil {
		return nil, false
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	b, ok := f.pinned[jobID]
	return b, ok
}

// FlightDump is the /debug/flightrecorder (and SIGQUIT) body: the ring
// oldest-first plus the ids whose full traces are pinned.
type FlightDump struct {
	SlowThresholdMS float64       `json:"slow_threshold_ms"`
	Entries         []FlightEntry `json:"entries"`
	PinnedTraces    []string      `json:"pinned_traces,omitempty"`
}

// dump snapshots the recorder.
func (f *flightRecorder) dump() FlightDump {
	if f == nil {
		return FlightDump{}
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	d := FlightDump{
		SlowThresholdMS: float64(f.slow) / float64(time.Millisecond),
		Entries:         make([]FlightEntry, 0, f.n),
		PinnedTraces:    append([]string(nil), f.pinnedOrder...),
	}
	for i := 0; i < f.n; i++ {
		d.Entries = append(d.Entries, f.ring[(f.next-f.n+i+len(f.ring))%len(f.ring)])
	}
	return d
}
