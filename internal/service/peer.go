package service

import (
	"context"
	"strings"
	"time"
)

// Peer cache fill: when a front tier reshards (a backend joins or
// leaves), keys change owners, and the new owner's caches are cold for
// functions the previous owner already solved. Rather than re-running an
// hours-long synthesis, the request can carry an X-Janus-Fill-From hint
// naming the previous owner; on a full cache miss the new owner asks
// that peer's cache over GET /v1/cache/{fnKey} and, when the peer holds
// a budget-compatible answer, adopts it — stored under the peer's exact
// (function, budget) key so the budget-reuse rules carry over unchanged
// — and serves it with Cached == "peer". A miss or an unreachable peer
// just falls through to a normal synthesis, so the hint can never make a
// request fail.
//
// The lookup endpoint applies the same budget-compatibility rules as
// the local request path (exact key, then the budgetHit rules), so a
// peer never hands out an answer the asking daemon could not have
// served itself.
//
// The hint is untrusted client input: anyone who can POST /v1/synthesize
// controls the header. A daemon that dereferenced it blindly could be
// steered into GETs against internal networks (SSRF) and — far worse —
// would adopt whatever CacheEntry the "peer" returned into both cache
// tiers, persistently poisoning answers served to every other client.
// So fills only ever go to URLs on the configured Peers allowlist
// (janusd -peers); with no allowlist the hint is inert.

// CacheEntry is the GET /v1/cache/{fnKey} wire form: one finished
// answer plus the budget identity it was computed under, so the
// receiving daemon can index it exactly as the peer did.
type CacheEntry struct {
	FnKey string `json:"fn_key"`
	// Key is the exact (function, budget) cache key the answer is stored
	// under — identical across daemons because it is content-derived.
	Key string `json:"key"`
	// MaxConflictsNorm / TimeoutNS are the normalized budget the answer
	// was computed with (maxConflictsNorm scale; effective timeout).
	MaxConflictsNorm int64 `json:"max_conflicts_norm"`
	TimeoutNS        int64 `json:"timeout_ns"`
	MatchedLB        bool  `json:"matched_lb"`
	// Status/Result mirror the cached outcome; only done answers are
	// ever returned.
	Status string      `json:"status"`
	Result *ResultJSON `json:"result,omitempty"`
}

// peerFillTimeout bounds the whole peer lookup; a slow peer must not
// meaningfully delay the fallback synthesis.
const peerFillTimeout = 3 * time.Second

// fillFromKey carries the X-Janus-Fill-From hint through the context.
type fillFromKey struct{}

// ContextWithFillFrom attaches a peer-fill hint: the base URL of the
// daemon that owned this request's shard before the last reshard.
func ContextWithFillFrom(ctx context.Context, peerURL string) context.Context {
	if peerURL == "" {
		return ctx
	}
	return context.WithValue(ctx, fillFromKey{}, peerURL)
}

// fillFrom reads the peer-fill hint, if any.
func fillFrom(ctx context.Context) string {
	s, _ := ctx.Value(fillFromKey{}).(string)
	return s
}

// CacheLookup resolves a function key against this server's caches on
// behalf of a peer: the exact key under the asking budget first, then
// the cross-budget reuse rules. Only finished, cacheable answers are
// returned — never in-flight, canceled, or partial-under-cancel states.
func (s *Server) CacheLookup(fnKey string, timeoutMS, maxConflicts int64) (*CacheEntry, bool) {
	if !validKey(fnKey) {
		return nil, false
	}
	mPeerLookups.Inc()
	p := &parsedRequest{
		fnKey: fnKey,
		req:   Request{TimeoutMS: timeoutMS, MaxConflicts: maxConflicts},
	}
	p.key = canonicalKey(fnKey, p.req)
	if out, _, ok := s.cached(p.key); ok && out.Status == StatusDone && out.Result != nil {
		mc, to := s.budgetOf(p)
		mPeerLookupHits.Inc()
		return &CacheEntry{
			FnKey: fnKey, Key: p.key,
			MaxConflictsNorm: mc, TimeoutNS: int64(to),
			MatchedLB: out.Result.MatchedLB,
			Status:    out.Status, Result: out.Result,
		}, true
	}
	if out, e, ok := s.budgetMatch(p); ok && out.Status == StatusDone && out.Result != nil {
		mPeerLookupHits.Inc()
		return &CacheEntry{
			FnKey: fnKey, Key: e.key,
			MaxConflictsNorm: e.mc, TimeoutNS: int64(e.timeout),
			MatchedLB: e.matchedLB,
			Status:    out.Status, Result: out.Result,
		}, true
	}
	return nil, false
}

// SetPeers replaces the peer-fill allowlist (normally Config.Peers at
// construction). URLs are matched exactly after trailing-slash
// normalization; an empty list disables peer fill.
func (s *Server) SetPeers(urls ...string) {
	peers := make(map[string]bool, len(urls))
	for _, u := range urls {
		if u = strings.TrimRight(u, "/"); u != "" {
			peers[u] = true
		}
	}
	s.peersMu.Lock()
	s.peers = peers
	s.peersMu.Unlock()
}

// allowedPeer reports whether a fill hint names a configured peer.
func (s *Server) allowedPeer(peerURL string) bool {
	s.peersMu.RLock()
	defer s.peersMu.RUnlock()
	return s.peers[strings.TrimRight(peerURL, "/")]
}

// peerFill asks the hinted peer's cache for a compatible answer and, on
// a hit, adopts it into the local tiers under the peer's exact key.
// Every failure mode degrades to "no fill" — the caller synthesizes.
func (s *Server) peerFill(ctx context.Context, peerURL string, p *parsedRequest) (*outcome, bool) {
	if !s.allowedPeer(peerURL) {
		// A hint outside the allowlist is either a misconfigured front or
		// an attack; either way it must not trigger an outbound request.
		mPeerFillRejected.Inc()
		s.log.Warn("peer fill hint rejected: not in -peers allowlist",
			"peer", peerURL)
		return nil, false
	}
	mPeerFillProbes.Inc()
	cctx, cancel := context.WithTimeout(ctx, peerFillTimeout)
	defer cancel()
	ent, err := NewClient(peerURL).CacheLookup(cctx, p.fnKey, p.req.TimeoutMS, p.req.MaxConflicts)
	if err != nil || ent == nil {
		return nil, false
	}
	// Trust nothing structural from the peer: the key names a cache file
	// on disk, so it must be a well-formed digest, and only a done
	// answer with a result is adoptable.
	if ent.Status != StatusDone || ent.Result == nil || !validKey(ent.Key) || ent.FnKey != p.fnKey {
		return nil, false
	}
	out := &outcome{Status: StatusDone, Result: ent.Result}
	s.mem.put(ent.Key, out)
	s.disk.put(ent.Key, out)
	s.recordBudgetRaw(p.fnKey, ent.Key, ent.MaxConflictsNorm,
		time.Duration(ent.TimeoutNS), ent.MatchedLB)
	mPeerFillHits.Inc()
	return out, true
}

// validKey accepts exactly the canonical key shape: 64 lowercase hex
// characters (a sha256 digest). Anything else — path separators
// especially — is rejected before it can reach the disk tier.
func validKey(k string) bool {
	if len(k) != 64 {
		return false
	}
	for i := 0; i < len(k); i++ {
		c := k[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}
