package service

import (
	"sync"
	"time"

	"github.com/lattice-tools/janus/internal/obsv"
)

// Per-job progress: each admitted job owns a progressState, attached to
// the synthesis context as its obsv.ProgressSink. The state keeps two
// faces of the same stream — a bounded ring of typed events for
// GET /v1/jobs/{id}/events (SSE with Last-Event-ID resume, or ?wait=
// long-poll), and a rolled-up snapshot (phase, lb/ub, best incumbent,
// engine trail) inlined into GET /v1/jobs/{id} so a plain poll already
// shows how far the search got.
//
// Events from DS/MF sub-syntheses stay in the stream (marked "sub") but
// never touch the snapshot: their bounds describe part covers, and
// folding them in would break the top-level lb/ub monotonicity the
// stream promises (lb never decreases, ub never increases).

// ProgressEventJSON is the wire form of one progress event. Seq is the
// SSE event id: per-job, 1-based, strictly increasing, so a client that
// reconnects with Last-Event-ID resumes exactly where it dropped (as
// far as the bounded ring still reaches).
type ProgressEventJSON struct {
	Seq uint64  `json:"seq"`
	TMS float64 `json:"t_ms"` // since the job was enqueued
	// Kind: "phase_start", "phase_done", "bound", "incumbent", "step",
	// or the terminal "done" (which carries the job's final status).
	Kind        string `json:"kind"`
	Phase       string `json:"phase,omitempty"`
	LB          int    `json:"lb,omitempty"`
	UB          int    `json:"ub,omitempty"`
	Method      string `json:"method,omitempty"`
	Size        int    `json:"size,omitempty"`
	Grid        string `json:"grid,omitempty"`
	Verified    bool   `json:"verified,omitempty"`
	Step        int    `json:"step,omitempty"`
	Engine      string `json:"engine,omitempty"`
	GridsProbed int    `json:"grids_probed,omitempty"`
	Sub         bool   `json:"sub,omitempty"`
	// Terminal-event fields: the job's final status and whether the
	// answer is partial (verified incumbent, bounds not met).
	Status  string `json:"status,omitempty"`
	Partial bool   `json:"partial,omitempty"`
}

// ProgressJSON is the snapshot inlined into job poll responses.
type ProgressJSON struct {
	// Phase is the synthesis phase currently running ("minimize",
	// "bounds", "ds", "search"), empty before the job starts.
	Phase string `json:"phase,omitempty"`
	// LB / UB are the current verified bounds; UB 0 means no verified
	// mapping yet.
	LB int `json:"lb"`
	UB int `json:"ub,omitempty"`
	// BestSize / BestGrid describe the best verified incumbent so far.
	BestSize int    `json:"best_size,omitempty"`
	BestGrid string `json:"best_grid,omitempty"`
	// Steps counts finished top-level dichotomic steps; GridsProbed the
	// distinct lattice shapes attempted (DS sub-searches included).
	Steps       int `json:"steps,omitempty"`
	GridsProbed int `json:"grids_probed,omitempty"`
	// EngineTrail is the deduplicated sequence of per-step engine
	// decisions ("fresh", "shared"), oldest first.
	EngineTrail []string `json:"engine_trail,omitempty"`
	// FirstMappingMS is the time from enqueue to the first verified
	// mapping (0 until one exists).
	FirstMappingMS float64 `json:"first_mapping_ms,omitempty"`
	// Events is the total number of events emitted so far — the next
	// Last-Event-ID horizon.
	Events uint64 `json:"events"`
}

// maxEngineTrail bounds the snapshot's engine trail; policy flips are
// rare (auto flips at most once per search), so this is generous.
const maxEngineTrail = 16

// progressState is one job's progress stream + snapshot. Safe for
// concurrent use: the synthesis goroutine appends, any number of HTTP
// streamers read. A nil state no-ops on every method, so the disabled
// path costs one pointer check.
type progressState struct {
	start time.Time // enqueue time; event t_ms and first-mapping base

	mu     sync.Mutex
	ring   []ProgressEventJSON
	next   int
	n      int
	seq    uint64
	notify chan struct{} // closed and replaced on every append

	// Snapshot fields, updated from top-level (non-sub) events only.
	phase        string
	lb, ub       int
	bestSize     int
	bestGrid     string
	steps        int
	gridsProbed  int
	engineTrail  []string
	firstMapping time.Duration
	terminal     bool
}

func newProgressState(size int, start time.Time) *progressState {
	return &progressState{
		start:  start,
		ring:   make([]ProgressEventJSON, size),
		notify: make(chan struct{}),
	}
}

// Progress implements obsv.ProgressSink: convert, roll into the
// snapshot, append to the ring, and wake streamers. Called inline from
// the search loop, so it only does in-memory work.
func (p *progressState) Progress(ev obsv.ProgressEvent) {
	if p == nil {
		return
	}
	e := ProgressEventJSON{
		Kind: ev.Kind.String(), Phase: ev.Phase,
		LB: ev.LB, UB: ev.UB, Method: ev.Method,
		Size: ev.Size, Grid: ev.Grid, Verified: ev.Verified,
		Step: ev.Step, Engine: ev.Engine, GridsProbed: ev.GridsProbed,
		Sub: ev.Sub,
	}
	p.mu.Lock()
	if !ev.Sub {
		p.rollLocked(ev)
	}
	p.appendLocked(e)
	p.mu.Unlock()
}

// rollLocked folds one top-level event into the snapshot, clamping the
// bounds monotone (lb never down, ub never up) so a snapshot poll can
// never observe a regression the event stream also promises not to.
func (p *progressState) rollLocked(ev obsv.ProgressEvent) {
	switch ev.Kind {
	case obsv.ProgressPhaseStart:
		p.phase = ev.Phase
	case obsv.ProgressPhaseDone:
		if p.phase == ev.Phase {
			p.phase = ""
		}
	case obsv.ProgressBound:
		if ev.LB > p.lb {
			p.lb = ev.LB
		}
		if ev.UB > 0 && (p.ub == 0 || ev.UB < p.ub) {
			p.ub = ev.UB
		}
	case obsv.ProgressIncumbent:
		if p.bestSize == 0 || ev.Size < p.bestSize {
			p.bestSize, p.bestGrid = ev.Size, ev.Grid
		}
		if p.firstMapping == 0 {
			p.firstMapping = time.Since(p.start)
		}
	case obsv.ProgressStep:
		p.steps++
		if ev.GridsProbed > p.gridsProbed {
			p.gridsProbed = ev.GridsProbed
		}
		if n := len(p.engineTrail); ev.Engine != "" && n < maxEngineTrail &&
			(n == 0 || p.engineTrail[n-1] != ev.Engine) {
			p.engineTrail = append(p.engineTrail, ev.Engine)
		}
	}
}

// appendLocked stamps seq and t_ms, writes into the ring, and wakes
// every waiter by closing and replacing the notify channel.
func (p *progressState) appendLocked(e ProgressEventJSON) {
	p.seq++
	e.Seq = p.seq
	e.TMS = float64(time.Since(p.start)) / float64(time.Millisecond)
	p.ring[p.next] = e
	p.next = (p.next + 1) % len(p.ring)
	if p.n < len(p.ring) {
		p.n++
	}
	close(p.notify)
	p.notify = make(chan struct{})
}

// finish appends the terminal event. After it, eventsSince reports
// terminal and streamers close.
func (p *progressState) finish(status string, finalLB, finalUB int, partial bool) {
	if p == nil {
		return
	}
	p.mu.Lock()
	if !p.terminal {
		p.terminal = true
		if finalLB > p.lb {
			p.lb = finalLB
		}
		if finalUB > 0 && (p.ub == 0 || finalUB < p.ub) {
			p.ub = finalUB
		}
		p.phase = ""
		p.appendLocked(ProgressEventJSON{
			Kind: "done", Status: status,
			LB: p.lb, UB: p.ub, Partial: partial,
		})
	}
	p.mu.Unlock()
}

// snapshot returns the rolled-up progress for job poll responses.
func (p *progressState) snapshot() *ProgressJSON {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return &ProgressJSON{
		Phase: p.phase, LB: p.lb, UB: p.ub,
		BestSize: p.bestSize, BestGrid: p.bestGrid,
		Steps: p.steps, GridsProbed: p.gridsProbed,
		EngineTrail:    append([]string(nil), p.engineTrail...),
		FirstMappingMS: float64(p.firstMapping) / float64(time.Millisecond),
		Events:         p.seq,
	}
}

// firstMappingAt returns the enqueue-to-first-verified-mapping latency,
// or 0 when no mapping was ever reported.
func (p *progressState) firstMappingAt() time.Duration {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.firstMapping
}

// eventsSince returns the retained events with Seq > after, oldest
// first, and whether the stream is terminal. A client that fell more
// than the ring size behind silently resumes at the oldest retained
// event — the snapshot fields of later events re-establish the bounds.
func (p *progressState) eventsSince(after uint64) ([]ProgressEventJSON, bool) {
	if p == nil {
		return nil, true
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	var evs []ProgressEventJSON
	for i := 0; i < p.n; i++ {
		e := p.ring[(p.next-p.n+i+len(p.ring))%len(p.ring)]
		if e.Seq > after {
			evs = append(evs, e)
		}
	}
	return evs, p.terminal
}

// waitCh returns a channel closed at the next append (or already-closed
// history if an append raced the caller's last read).
func (p *progressState) waitCh() <-chan struct{} {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.notify
}
