package service

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"
	"sort"
	"time"

	"github.com/lattice-tools/janus/internal/core"
	"github.com/lattice-tools/janus/internal/cube"
	"github.com/lattice-tools/janus/internal/encode"
	"github.com/lattice-tools/janus/internal/pla"
	"github.com/lattice-tools/janus/internal/sat"
)

// Request is the POST /v1/synthesize payload: a single-output target in
// PLA text plus the knobs that change what answer is acceptable. Fields
// that only tune how fast an answer arrives (worker counts) are not part
// of the request on purpose — they are server policy.
type Request struct {
	// PLA is the target in espresso PLA text (the same format cmd/janus
	// reads). Required.
	PLA string `json:"pla"`
	// Output selects which PLA output to synthesize (default 0).
	Output int `json:"output,omitempty"`
	// CEGAR selects the incremental counterexample-guided LM engine.
	CEGAR bool `json:"cegar,omitempty"`
	// Portfolio races the primal and dual orientations of every candidate
	// lattice (implies CEGAR).
	Portfolio bool `json:"portfolio,omitempty"`
	// Engine picks the LM solver strategy: "auto" (or empty, the default)
	// lets the per-step policy choose, "shared" forces the shared
	// assumption-based solver pool, "fresh" forces per-candidate solvers.
	// It is part of the answer identity only when forced: under a conflict
	// budget the engines can settle on different lattices.
	Engine string `json:"engine,omitempty"`
	// MaxConflicts bounds each LM SAT call (0 = unlimited).
	MaxConflicts int64 `json:"max_conflicts,omitempty"`
	// TimeoutMS bounds the whole request, queue wait included. Zero uses
	// the server default; values above the server maximum are clamped.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Async makes POST return 202 with a job id immediately; poll
	// GET /v1/jobs/{id} for the outcome. Async jobs are never cancelled
	// by client disconnects.
	Async bool `json:"async,omitempty"`
}

// ResultJSON is the wire form of a synthesis outcome.
type ResultJSON struct {
	M          int    `json:"m"`
	N          int    `json:"n"`
	Size       int    `json:"size"`
	LB         int    `json:"lb"`
	OUB        int    `json:"oub"`
	NUB        int    `json:"nub"`
	UBMethod   string `json:"ub_method"`
	MatchedLB  bool   `json:"matched_lb"`
	LMSolved   int    `json:"lm_solved"`
	CegarIters int64  `json:"cegar_iters,omitempty"`
	ElapsedNS  int64  `json:"elapsed_ns"`
	// FinalLB is the lower bound when the search stopped; Partial marks a
	// degraded answer: the lattice is a verified mapping of the target,
	// but the budget ran out before the search could prove nothing
	// between FinalLB and Size fits.
	FinalLB int  `json:"final_lb,omitempty"`
	Partial bool `json:"partial,omitempty"`
	// Lattice is the switch grid row by row; each cell is the literal
	// controlling that switch ("a", "b'", "0", "1") using the PLA's input
	// names.
	Lattice [][]string `json:"lattice"`
}

// Response is the wire form of a job's state. For a finished job exactly
// one of Result and Error is set.
type Response struct {
	JobID string `json:"job_id,omitempty"`
	// RequestID echoes the request's id (inbound X-Request-Id, or minted
	// by the server) on success AND error bodies, so every answer —
	// including a 429 shed — can be found in the logs and the flight
	// recorder.
	RequestID string `json:"request_id,omitempty"`
	// FnKey is the budget-free canonical function key — the identity a
	// sharding tier routes on. Echoed (and as the X-Janus-Fn-Key header)
	// so external routers and debugging tools can shard and correlate
	// without re-deriving the canonical form.
	FnKey  string `json:"fn_key,omitempty"`
	Status string `json:"status"`
	// Cached says where a done answer came from: "mem", "disk",
	// "coalesced", or "" for a fresh synthesis.
	Cached string      `json:"cached,omitempty"`
	Error  string      `json:"error,omitempty"`
	Result *ResultJSON `json:"result,omitempty"`
	// Batch is the result of a batch job (POST /v1/synthesize/batch and
	// job polls for batch jobs); exactly one of Result / Batch is set on
	// a done answer.
	Batch *BatchResultJSON `json:"batch,omitempty"`
	// Progress is the live snapshot for polled jobs (GET /v1/jobs/{id}
	// with progress enabled): current phase, bounds, best incumbent.
	Progress *ProgressJSON `json:"progress,omitempty"`
}

// Job status values.
const (
	StatusQueued   = "queued"
	StatusRunning  = "running"
	StatusDone     = "done"
	StatusCanceled = "canceled"
	StatusError    = "error"
)

// parsedRequest is a validated Request: the selected cover, its input
// names for rendering, and the canonical cache/coalescing keys. fnKey
// identifies the budget-free question (function + answer-shaping
// options); key adds the budget fields and is the exact coalescing and
// cache-store identity.
type parsedRequest struct {
	req    Request
	cover  cube.Cover
	names  []string
	engine core.EngineSelect
	fnKey  string
	key    string
}

// FnKeyOf validates a request and returns its budget-free canonical
// function key — the routing identity a sharding front tier hashes on.
// It is exactly the fn_key the daemon echoes in its responses, so a
// router and its backends can never disagree on a key's owner.
func FnKeyOf(req Request) (string, error) {
	p, err := parseRequest(req)
	if err != nil {
		return "", err
	}
	return p.fnKey, nil
}

// parseRequest validates the payload and derives the canonical key.
func parseRequest(req Request) (*parsedRequest, error) {
	if req.PLA == "" {
		return nil, fmt.Errorf("missing pla")
	}
	f, err := pla.ParseString(req.PLA)
	if err != nil {
		return nil, err
	}
	if req.Output < 0 || req.Output >= len(f.Covers) {
		return nil, fmt.Errorf("output %d out of range (PLA has %d outputs)",
			req.Output, len(f.Covers))
	}
	cover := f.Covers[req.Output]
	if cover.N > encode.MaxInputs {
		return nil, fmt.Errorf("%d inputs exceeds the engine limit of %d",
			cover.N, encode.MaxInputs)
	}
	if req.MaxConflicts < 0 || req.TimeoutMS < 0 {
		return nil, fmt.Errorf("negative budget")
	}
	engine, err := core.ParseEngineSelect(req.Engine)
	if err != nil {
		return nil, fmt.Errorf("engine: %q (want auto, shared, or fresh)", req.Engine)
	}
	fnKey := canonicalFnKey(cover, req, engine)
	return &parsedRequest{
		req:    req,
		cover:  cover,
		names:  f.InputNames,
		engine: engine,
		fnKey:  fnKey,
		key:    canonicalKey(fnKey, req),
	}, nil
}

// canonicalFnKey builds the budget-free part of a request's identity: the
// target function in canonical cube order plus the options that change
// which answer is acceptable, but none of the budget fields. Two PLA
// texts that spell the same cover (cube order, whitespace, comments,
// other outputs, repeated cubes) map to the same fnKey. Cubes are
// deduplicated after sorting: a cover with a repeated cube denotes the
// same function, so it must not hash differently — before this, the
// redundant spelling missed both coalescing and the result cache.
func canonicalFnKey(f cube.Cover, req Request, engine core.EngineSelect) string {
	cubes := append([]cube.Cube(nil), f.Cubes...)
	sort.Slice(cubes, func(i, j int) bool {
		if cubes[i].Pos != cubes[j].Pos {
			return cubes[i].Pos < cubes[j].Pos
		}
		return cubes[i].Neg < cubes[j].Neg
	})
	h := sha256.New()
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(f.N))
	h.Write(b[:])
	prev := cube.Cube{Pos: ^uint64(0), Neg: ^uint64(0)}
	for i, c := range cubes {
		if i > 0 && c == prev {
			continue
		}
		prev = c
		binary.LittleEndian.PutUint64(b[:], c.Pos)
		h.Write(b[:])
		binary.LittleEndian.PutUint64(b[:], c.Neg)
		h.Write(b[:])
	}
	var opts byte
	if req.CEGAR {
		opts |= 1
	}
	if req.Portfolio {
		opts |= 2
	}
	// A forced engine is part of the identity: under a conflict budget the
	// shared and fresh engines may settle on different (equally verified)
	// lattices. EngineAuto contributes nothing, so pre-existing cache keys
	// stay valid.
	switch engine {
	case core.EngineShared:
		opts |= 4
	case core.EngineFresh:
		opts |= 8
	}
	h.Write([]byte{opts})
	return hex.EncodeToString(h.Sum(nil))
}

// canonicalKey is the exact cache/coalescing key: the fnKey plus the
// budget fields. TimeoutMS and MaxConflicts are part of the key because
// a tighter budget may legitimately settle for a larger lattice —
// callers with different patience are not asking the same question. The
// budget index (Server.budgetHit) layers the sound cross-budget reuse
// rules on top of this exact identity.
func canonicalKey(fnKey string, req Request) string {
	h := sha256.New()
	h.Write([]byte(fnKey))
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(req.MaxConflicts))
	h.Write(b[:])
	binary.LittleEndian.PutUint64(b[:], uint64(req.TimeoutMS))
	h.Write(b[:])
	return hex.EncodeToString(h.Sum(nil))
}

// maxConflictsNorm maps the request's MaxConflicts onto a totally
// ordered budget scale: 0 means unlimited, which dominates every finite
// bound.
func maxConflictsNorm(mc int64) int64 {
	if mc <= 0 {
		return math.MaxInt64
	}
	return mc
}

// coreOptions translates the request knobs into synthesis options.
// Ctx and Workers are filled in by the worker.
func (p *parsedRequest) coreOptions() core.Options {
	var opt core.Options
	opt.Encode.CEGAR = p.req.CEGAR
	opt.Portfolio = p.req.Portfolio
	opt.EngineSelect = p.engine
	opt.Encode.Limits = sat.Limits{MaxConflicts: p.req.MaxConflicts}
	return opt
}

// renderResult converts a core result to the wire form.
func renderResult(r core.Result, names []string) *ResultJSON {
	out := &ResultJSON{
		M: r.Grid.M, N: r.Grid.N, Size: r.Size,
		LB: r.LB, OUB: r.OUB, NUB: r.NUB,
		UBMethod: r.UBMethod, MatchedLB: r.MatchedLB,
		LMSolved:   r.LMSolved,
		CegarIters: r.CegarIters,
		ElapsedNS:  int64(r.Elapsed),
		FinalLB:    r.FinalLB,
		Partial:    r.Partial,
	}
	if r.Assignment != nil {
		out.Lattice = make([][]string, r.Grid.M)
		for row := 0; row < r.Grid.M; row++ {
			cells := make([]string, r.Grid.N)
			for col := 0; col < r.Grid.N; col++ {
				cells[col] = r.Assignment.At(row, col).Format(names)
			}
			out.Lattice[row] = cells
		}
	}
	return out
}

// timeout resolves the request's effective deadline budget against the
// server's default and cap.
func (p *parsedRequest) timeout(def, max time.Duration) time.Duration {
	d := time.Duration(p.req.TimeoutMS) * time.Millisecond
	if d <= 0 {
		d = def
	}
	if max > 0 && d > max {
		d = max
	}
	return d
}
