package service

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"github.com/lattice-tools/janus/internal/core"
	"github.com/lattice-tools/janus/internal/cube"
)

// peerTestServer is a daemon with a counting synth stub, served over
// HTTP so peer fill can reach it.
func peerTestServer(t *testing.T, matchedLB bool) (*Server, *httptest.Server, *atomic.Int32) {
	t.Helper()
	s := newTestServer(t, Config{Workers: 1})
	var calls atomic.Int32
	s.synth = func(f cube.Cover, opt core.Options) (core.Result, error) {
		calls.Add(1)
		r := fakeResult()
		r.MatchedLB = matchedLB
		return r, nil
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts, &calls
}

// TestCacheLookupEndpoint: the peer cache-fill endpoint answers with
// the entry's exact key and normalized budget on a hit, 404s a clean
// miss, and applies the budget-reuse rules (a MatchedLB answer serves
// any budget).
func TestCacheLookupEndpoint(t *testing.T) {
	_, ts, _ := peerTestServer(t, true)
	c := NewClient(ts.URL)
	ctx := context.Background()

	first, err := c.Synthesize(ctx, Request{PLA: fig1PLA, TimeoutMS: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if first.FnKey == "" {
		t.Fatal("response did not echo fn_key")
	}

	// Exact-budget lookup.
	ent, err := c.CacheLookup(ctx, first.FnKey, 1000, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ent == nil || ent.Status != StatusDone || ent.Result == nil {
		t.Fatalf("lookup miss for a cached answer: %+v", ent)
	}
	if ent.FnKey != first.FnKey {
		t.Fatalf("entry fnKey %s != %s", ent.FnKey, first.FnKey)
	}
	if !validKey(ent.Key) {
		t.Fatalf("entry key not canonical hex: %q", ent.Key)
	}
	if !ent.MatchedLB {
		t.Fatal("MatchedLB lost on the wire")
	}

	// MatchedLB answers are optimal: a more generous budget still hits
	// through the budget-reuse rules (stored budget ≤ asked budget).
	ent2, err := c.CacheLookup(ctx, first.FnKey, 99_999, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ent2 == nil {
		t.Fatal("MatchedLB entry must serve a larger budget")
	}
	// A tighter conflict budget under the same timeout is dominated by
	// the stored unlimited-conflicts answer: still a sound hit.
	dom, err := c.CacheLookup(ctx, first.FnKey, 1000, 5)
	if err != nil || dom == nil {
		t.Fatalf("dominated budget must hit: ent=%v err=%v", dom, err)
	}
	// Incomparable budgets (more timeout, fewer conflicts) fit neither
	// reuse rule: clean miss.
	inc, err := c.CacheLookup(ctx, first.FnKey, 99_999, 5)
	if err != nil || inc != nil {
		t.Fatalf("incomparable budget must miss: ent=%v err=%v", inc, err)
	}

	// Unknown function: clean miss is (nil, nil), not an error.
	miss, err := c.CacheLookup(ctx, "ab12"+first.FnKey[4:], 1000, 0)
	if err != nil || miss != nil {
		t.Fatalf("clean miss: ent=%v err=%v", miss, err)
	}
}

// TestPeerFill: a daemon pointed at a warm peer via X-Janus-Fill-From
// adopts the peer's answer instead of synthesizing, serves it as
// Cached "peer", and keeps it — the next request is a local hit.
func TestPeerFill(t *testing.T) {
	_, warmTS, warmCalls := peerTestServer(t, true)
	cold, coldTS, coldCalls := peerTestServer(t, true)

	warm := NewClient(warmTS.URL)
	ctx := context.Background()
	if _, err := warm.Synthesize(ctx, Request{PLA: fig1PLA, TimeoutMS: 1000}); err != nil {
		t.Fatal(err)
	}
	if warmCalls.Load() != 1 {
		t.Fatalf("warm daemon ran %d syntheses, want 1", warmCalls.Load())
	}

	// The cold daemon, told where the previous owner lives, must fill
	// rather than solve. The peer has to be allowlisted first — fill
	// hints are untrusted input.
	cold.SetPeers(warmTS.URL)
	out, err := cold.Synthesize(
		ContextWithFillFrom(ctx, warmTS.URL),
		Request{PLA: fig1PLA, TimeoutMS: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if out.Cached != "peer" {
		t.Fatalf("cached = %q, want \"peer\"", out.Cached)
	}
	if coldCalls.Load() != 0 {
		t.Fatalf("cold daemon synthesized %d times despite a warm peer", coldCalls.Load())
	}
	if out.Result == nil || out.Result.Size != 8 {
		t.Fatalf("peer-filled result mangled: %+v", out.Result)
	}

	// Adopted means kept: the follow-up is a local memory hit with no
	// peer involved.
	again, err := cold.Synthesize(ctx, Request{PLA: fig1PLA, TimeoutMS: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if again.Cached != "mem" {
		t.Fatalf("follow-up cached = %q, want \"mem\"", again.Cached)
	}
	_ = coldTS
}

// TestPeerFillUnreachablePeer: a dead or lying peer degrades to a
// normal local synthesis, never an error.
func TestPeerFillUnreachablePeer(t *testing.T) {
	s, ts, calls := peerTestServer(t, false)
	_ = ts
	s.SetPeers("http://127.0.0.1:1")
	out, err := s.Synthesize(
		ContextWithFillFrom(context.Background(), "http://127.0.0.1:1"),
		Request{PLA: fig1PLA, TimeoutMS: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if out.Status != StatusDone || out.Cached != "" {
		t.Fatalf("status=%s cached=%q, want a fresh done answer", out.Status, out.Cached)
	}
	if calls.Load() != 1 {
		t.Fatalf("%d syntheses, want 1", calls.Load())
	}
}

// TestPeerFillAllowlist: a fill hint naming a URL outside the -peers
// allowlist must be ignored outright — no outbound request (that would
// be client-steered SSRF) and no adopted entry (cache poisoning) — and
// the request degrades to a normal local synthesis. The default
// allowlist is empty, so a daemon not told about its fleet never fills.
func TestPeerFillAllowlist(t *testing.T) {
	var attackerHits atomic.Int32
	attacker := httptest.NewServer(http.HandlerFunc(
		func(w http.ResponseWriter, r *http.Request) {
			attackerHits.Add(1)
			http.NotFound(w, r)
		}))
	defer attacker.Close()

	_, ts, calls := peerTestServer(t, false)

	// The hostile hint arrives as a plain header on the public endpoint —
	// exactly what any client can send.
	body, _ := json.Marshal(Request{PLA: fig1PLA, TimeoutMS: 1000})
	hreq, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/synthesize", bytes.NewReader(body))
	hreq.Header.Set("Content-Type", "application/json")
	hreq.Header.Set("X-Janus-Fill-From", attacker.URL)
	hresp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	var resp Response
	if err := json.NewDecoder(hresp.Body).Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if resp.Status != StatusDone || resp.Cached != "" {
		t.Fatalf("status=%s cached=%q, want a fresh local answer", resp.Status, resp.Cached)
	}
	if attackerHits.Load() != 0 {
		t.Fatalf("daemon dereferenced an unlisted fill hint %d times", attackerHits.Load())
	}
	if calls.Load() != 1 {
		t.Fatalf("%d syntheses, want 1", calls.Load())
	}
}

// TestFnKeyEcho: every synthesize answer carries the budget-free key in
// both the body and the X-Janus-Fn-Key header, and they agree with
// FnKeyOf — the invariant that lets a front tier route without asking.
func TestFnKeyEcho(t *testing.T) {
	_, ts, _ := peerTestServer(t, false)
	want, err := FnKeyOf(Request{PLA: fig1PLA})
	if err != nil {
		t.Fatal(err)
	}

	resp, err := NewClient(ts.URL).Synthesize(context.Background(), Request{PLA: fig1PLA})
	if err != nil {
		t.Fatal(err)
	}
	if resp.FnKey != want {
		t.Fatalf("body fn_key %s != FnKeyOf %s", resp.FnKey, want)
	}

	// The header form needs a raw request (the client only reads bodies).
	body, _ := json.Marshal(Request{PLA: fig1PLA})
	hresp, err := http.Post(ts.URL+"/v1/synthesize", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	if got := hresp.Header.Get("X-Janus-Fn-Key"); got != want {
		t.Fatalf("X-Janus-Fn-Key = %q, want %s", got, want)
	}
}
