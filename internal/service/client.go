package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"github.com/lattice-tools/janus/internal/obsv"
)

// Client is a minimal janusd API client (cmd/janusload, janusfront, and
// embedders). The zero HTTPClient uses a package-shared keep-alive
// client; synthesis waits are bounded server-side, so callers should
// not set short client timeouts — use WithTimeout only for control
// endpoints (health polls, cache lookups), never for Synthesize.
type Client struct {
	// BaseURL is the daemon root, e.g. "http://localhost:7151".
	BaseURL string
	// HTTPClient overrides the transport; nil uses the shared keep-alive
	// client (sharedHTTPClient).
	HTTPClient *http.Client
	// Tenant, when set, is sent as X-Janus-Tenant on every request so
	// the daemon accounts this client's jobs to that tenant's scheduling
	// share (WithTenant).
	Tenant string
}

// maxClientRespBody bounds how much of a response body the client will
// buffer — mirroring the front proxy's response cap, and for the same
// reason: an unbounded ReadAll hands the peer a memory lever. A body
// over the cap is reported as a distinct "response too large" APIError
// rather than truncated into an "unexpected end of JSON input".
const maxClientRespBody = 4 << 20

// sharedHTTPClient is the default transport for every Client in the
// process: one connection pool with generous per-host keep-alives, so a
// front tier holding long-lived SSE streams plus health polls against
// the same few backends reuses connections instead of re-dialing —
// building a fresh http.Client per call would defeat pooling entirely.
var sharedHTTPClient = &http.Client{
	Transport: &http.Transport{
		Proxy:               http.ProxyFromEnvironment,
		MaxIdleConns:        256,
		MaxIdleConnsPerHost: 64,
		IdleConnTimeout:     90 * time.Second,
	},
}

// ClientOption configures a Client at construction.
type ClientOption func(*Client)

// WithHTTPClient substitutes the whole HTTP client (transport, timeout,
// cookie policy). The caller owns its lifecycle.
func WithHTTPClient(hc *http.Client) ClientOption {
	return func(c *Client) { c.HTTPClient = hc }
}

// WithTenant stamps every request from this client with a tenant name,
// mapping its jobs onto that tenant's scheduling share.
func WithTenant(tenant string) ClientOption {
	return func(c *Client) { c.Tenant = tenant }
}

// WithTimeout bounds every request made by this client, sharing the
// default keep-alive transport. Suitable for health polls and cache
// lookups; do not apply to clients that call Synthesize or stream
// events — those waits are legitimately long and bounded server-side.
func WithTimeout(d time.Duration) ClientOption {
	return func(c *Client) {
		c.HTTPClient = &http.Client{Transport: sharedHTTPClient.Transport, Timeout: d}
	}
}

// NewClient returns a client for the daemon at baseURL.
func NewClient(baseURL string, opts ...ClientOption) *Client {
	c := &Client{BaseURL: strings.TrimRight(baseURL, "/")}
	for _, o := range opts {
		o(c)
	}
	return c
}

func (c *Client) http() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return sharedHTTPClient
}

// APIError reports a non-2xx API answer, preserving the code so
// callers can react to backpressure (429) and drain (503) distinctly.
// RequestID, when the server sent one, names this request in the
// daemon's logs and flight recorder.
type APIError struct {
	Code       int
	Message    string
	RequestID  string
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	return fmt.Sprintf("janusd: %d: %s", e.Code, e.Message)
}

func (c *Client) do(ctx context.Context, method, path string, body, into any) error {
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.Tenant != "" {
		req.Header.Set("X-Janus-Tenant", c.Tenant)
	}
	// Forward the caller's trace context so the receiving daemon roots
	// its spans under ours (peer cache fills inherit the filling
	// request's context this way).
	if tc, ok := obsv.TraceContextFromContext(ctx); ok && tc.Valid() {
		req.Header.Set(obsv.TraceHeader, tc.String())
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	// Read one byte past the cap so truncation is detectable: a body
	// exactly at the limit parses, one over it errors distinctly instead
	// of surfacing as a confusing JSON parse failure on a cut-off body.
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxClientRespBody+1))
	if err != nil {
		return err
	}
	if len(data) > maxClientRespBody {
		return &APIError{
			Code:      resp.StatusCode,
			Message:   fmt.Sprintf("response too large (over %d bytes)", maxClientRespBody),
			RequestID: resp.Header.Get("X-Request-Id"),
		}
	}
	if resp.StatusCode >= 400 {
		se := &APIError{Code: resp.StatusCode, RequestID: resp.Header.Get("X-Request-Id")}
		var r Response
		if json.Unmarshal(data, &r) == nil && r.Error != "" {
			se.Message = r.Error
			if r.RequestID != "" {
				se.RequestID = r.RequestID
			}
		} else {
			se.Message = strings.TrimSpace(string(data))
		}
		se.RetryAfter = parseRetryAfter(resp.Header.Get("Retry-After"), time.Now())
		return se
	}
	if into == nil {
		return nil
	}
	return json.Unmarshal(data, into)
}

// Metrics fetches the daemon's metrics-registry snapshot (GET /metrics,
// the JSON form). The front tier re-exports these in its fleet
// Prometheus view, tagged with the backend's id.
func (c *Client) Metrics(ctx context.Context) (*obsv.Snapshot, error) {
	var s obsv.Snapshot
	if err := c.do(ctx, http.MethodGet, "/metrics", nil, &s); err != nil {
		return nil, err
	}
	return &s, nil
}

// ParseRetryAfter is the exported form of parseRetryAfter, for callers
// (the front tier's 429 pacing) that read Retry-After off raw responses
// rather than through this client.
func ParseRetryAfter(header string, now time.Time) time.Duration {
	return parseRetryAfter(header, now)
}

// parseRetryAfter reads a Retry-After header per RFC 7231 §7.1.3: a
// non-negative integer delay in seconds, or an HTTP-date (converted to
// a delay relative to now). Anything else — empty, fractional,
// negative, duration-suffixed — yields 0, meaning "retry policy's
// choice". The previous implementation appended "s" and ran
// time.ParseDuration, which silently mis-read non-integer values (a
// proxy's "2m" became "2ms", i.e. a 2-millisecond hot retry loop) and
// rejected HTTP-dates outright.
func parseRetryAfter(header string, now time.Time) time.Duration {
	if header == "" {
		return 0
	}
	if secs, err := strconv.Atoi(header); err == nil {
		if secs < 0 {
			return 0
		}
		return time.Duration(secs) * time.Second
	}
	if at, err := http.ParseTime(header); err == nil {
		if d := at.Sub(now); d > 0 {
			return d
		}
	}
	return 0
}

// Synthesize submits a request and waits for the response (which may be
// a 202-style poll handle when the request was async or timed out; check
// Status).
func (c *Client) Synthesize(ctx context.Context, req Request) (*Response, error) {
	var resp Response
	if err := c.do(ctx, http.MethodPost, "/v1/synthesize", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// SynthesizeBatch submits a multi-function batch; the Response carries
// the packed result in Batch (or a poll handle; check Status).
func (c *Client) SynthesizeBatch(ctx context.Context, req BatchRequest) (*Response, error) {
	var resp Response
	if err := c.do(ctx, http.MethodPost, "/v1/synthesize/batch", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Job polls a job by id.
func (c *Client) Job(ctx context.Context, id string) (*Response, error) {
	var resp Response
	if err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// JobEvents long-polls a job's progress stream: events with seq > after,
// waiting up to wait for the first one. Page.Terminal reports the stream
// is over; pass Page.Next as the following call's after. (SSE is the
// richer interface for humans; this is the mechanical one janusload and
// CI scripts use.)
func (c *Client) JobEvents(ctx context.Context, id string, after uint64, wait time.Duration) (*EventsPage, error) {
	var page EventsPage
	path := fmt.Sprintf("/v1/jobs/%s/events?after=%d&wait=%d",
		id, after, wait.Milliseconds())
	if err := c.do(ctx, http.MethodGet, path, nil, &page); err != nil {
		return nil, err
	}
	return &page, nil
}

// CacheLookup asks the daemon's cache for an answer to fnKey that is
// compatible with the given budget (the peer cache-fill protocol). A
// clean miss returns (nil, nil); errors are transport or server
// failures.
func (c *Client) CacheLookup(ctx context.Context, fnKey string, timeoutMS, maxConflicts int64) (*CacheEntry, error) {
	var ent CacheEntry
	path := fmt.Sprintf("/v1/cache/%s?timeout_ms=%d&max_conflicts=%d",
		fnKey, timeoutMS, maxConflicts)
	if err := c.do(ctx, http.MethodGet, path, nil, &ent); err != nil {
		var ae *APIError
		if errors.As(err, &ae) && ae.Code == http.StatusNotFound {
			return nil, nil
		}
		return nil, err
	}
	return &ent, nil
}

// Health reads /healthz (an error with Code 503 means draining).
func (c *Client) Health(ctx context.Context) (*Stats, error) {
	var st Stats
	if err := c.do(ctx, http.MethodGet, "/healthz", nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// ServerStats reads /v1/stats: queue health plus SLO burn rates.
func (c *Client) ServerStats(ctx context.Context) (*Stats, error) {
	var st Stats
	if err := c.do(ctx, http.MethodGet, "/v1/stats", nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// JobTrace fetches a finished job's span trace as raw JSONL.
func (c *Client) JobTrace(ctx context.Context, id string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		c.BaseURL+"/v1/jobs/"+id+"/trace", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode >= 400 {
		se := &APIError{Code: resp.StatusCode, RequestID: resp.Header.Get("X-Request-Id")}
		var r Response
		if json.Unmarshal(data, &r) == nil && r.Error != "" {
			se.Message = r.Error
		} else {
			se.Message = strings.TrimSpace(string(data))
		}
		return nil, se
	}
	return data, nil
}
