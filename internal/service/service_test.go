package service

import (
	"context"
	"errors"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/lattice-tools/janus/internal/core"
	"github.com/lattice-tools/janus/internal/cube"
	"github.com/lattice-tools/janus/internal/lattice"
)

const fig1PLA = ".i 4\n.o 1\n1111 1\n0000 1\n.e\n"

func fig1Request() Request { return Request{PLA: fig1PLA} }

// fakeResult is a minimal plausible outcome for stubbed syntheses.
func fakeResult() core.Result {
	g := lattice.Grid{M: 4, N: 2}
	return core.Result{Assignment: lattice.NewAssignment(g), Grid: g, Size: 8}
}

func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return s
}

// TestCanonicalization: the canonical key must see through cube order,
// whitespace, and comments, and must distinguish different budgets.
func TestCanonicalization(t *testing.T) {
	a, err := parseRequest(Request{PLA: fig1PLA})
	if err != nil {
		t.Fatal(err)
	}
	b, err := parseRequest(Request{PLA: "# same function\n.i 4\n.o 1\n0000 1\n1111 1\n.e\n"})
	if err != nil {
		t.Fatal(err)
	}
	if a.key != b.key {
		t.Fatal("reordered cubes must share a canonical key")
	}
	c, err := parseRequest(Request{PLA: fig1PLA, TimeoutMS: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if c.key == a.key {
		t.Fatal("different budgets must not share a key")
	}
	d, err := parseRequest(Request{PLA: fig1PLA, Portfolio: true})
	if err != nil {
		t.Fatal(err)
	}
	if d.key == a.key {
		t.Fatal("different engines must not share a key")
	}
}

// TestEngineRequestField: "auto" and "" are the default and keep the
// pre-existing cache identity; a forced engine is a different question
// (budgeted answers may differ), and the two forced modes differ from
// each other; junk is rejected before it reaches the queue.
func TestEngineRequestField(t *testing.T) {
	base, err := parseRequest(Request{PLA: fig1PLA})
	if err != nil {
		t.Fatal(err)
	}
	auto, err := parseRequest(Request{PLA: fig1PLA, Engine: "auto"})
	if err != nil {
		t.Fatal(err)
	}
	if auto.key != base.key {
		t.Fatal(`engine "auto" must keep the default cache key`)
	}
	shared, err := parseRequest(Request{PLA: fig1PLA, Engine: "shared"})
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := parseRequest(Request{PLA: fig1PLA, Engine: "fresh"})
	if err != nil {
		t.Fatal(err)
	}
	if shared.key == base.key || fresh.key == base.key || shared.key == fresh.key {
		t.Fatal("forced engines must have distinct cache identities")
	}
	if shared.coreOptions().EngineSelect != core.EngineShared ||
		fresh.coreOptions().EngineSelect != core.EngineFresh {
		t.Fatal("engine field must reach core options")
	}
	if _, err := parseRequest(Request{PLA: fig1PLA, Engine: "turbo"}); err == nil {
		t.Fatal("unknown engine must be rejected")
	}
}

// TestCoalesce: N identical concurrent requests must run exactly one
// synthesis; the joiners are answered from the same job with
// Cached == "coalesced". Run under -race in CI this also checks the
// submit/finish paths for data races.
func TestCoalesce(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	var calls atomic.Int32
	gate := make(chan struct{})
	s.synth = func(f cube.Cover, opt core.Options) (core.Result, error) {
		calls.Add(1)
		<-gate
		return fakeResult(), nil
	}

	const n = 8
	var wg sync.WaitGroup
	resps := make([]*Response, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resps[i], errs[i] = s.Synthesize(context.Background(), fig1Request())
		}(i)
	}
	// Wait until every request is attached to the single in-flight job,
	// then let the synthesis finish.
	deadline := time.Now().Add(5 * time.Second)
	for {
		s.mu.Lock()
		var waiters int
		for _, j := range s.inflight {
			waiters = j.waiters
		}
		s.mu.Unlock()
		if waiters == n {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d waiters attached", waiters, n)
		}
		time.Sleep(time.Millisecond)
	}
	close(gate)
	wg.Wait()

	if c := calls.Load(); c != 1 {
		t.Fatalf("%d syntheses for %d identical requests, want 1", c, n)
	}
	coalesced := 0
	for i := range resps {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if resps[i].Status != StatusDone || resps[i].Result == nil || resps[i].Result.Size != 8 {
			t.Fatalf("response %d: %+v", i, resps[i])
		}
		if resps[i].Cached == "coalesced" {
			coalesced++
		}
	}
	if coalesced != n-1 {
		t.Fatalf("%d coalesced responses, want %d", coalesced, n-1)
	}

	// The finished outcome is now in the memory tier.
	resp, err := s.Synthesize(context.Background(), fig1Request())
	if err != nil {
		t.Fatal(err)
	}
	if resp.Cached != "mem" {
		t.Fatalf("repeat request cached=%q, want mem", resp.Cached)
	}
}

// TestCancelFreesWorker: abandoning the only waiter of a running job
// must cancel it and free the worker slot promptly for the next job.
func TestCancelFreesWorker(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	s.synth = func(f cube.Cover, opt core.Options) (core.Result, error) {
		// A cooperative engine: runs until cancelled, like a long search
		// interrupted before it found any mapping. (A cancel that DOES
		// hold a verified incumbent settles done instead — see
		// TestCancelWithIncumbent.)
		<-opt.Ctx.Done()
		return core.Result{}, nil
	}

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	resp, err := s.Synthesize(ctx, fig1Request())
	if err != nil {
		t.Fatal(err)
	}
	// The waiter left before the job finished: it gets a poll handle.
	if resp.JobID == "" {
		t.Fatalf("abandoned request must return a job id, got %+v", resp)
	}

	// The freed worker must pick up a different job promptly.
	s.synth = func(f cube.Cover, opt core.Options) (core.Result, error) {
		return fakeResult(), nil
	}
	start := time.Now()
	resp2, err := s.Synthesize(context.Background(),
		Request{PLA: ".i 2\n.o 1\n11 1\n.e\n"})
	if err != nil {
		t.Fatal(err)
	}
	if resp2.Status != StatusDone {
		t.Fatalf("follow-up job status = %q", resp2.Status)
	}
	if e := time.Since(start); e > 5*time.Second {
		t.Fatalf("worker slot not freed: follow-up took %v", e)
	}

	// The abandoned job settles as canceled and stays pollable.
	deadline := time.Now().Add(5 * time.Second)
	for {
		jr, ok := s.Job(resp.JobID)
		if !ok {
			t.Fatal("abandoned job no longer pollable")
		}
		if jr.Status == StatusCanceled {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("abandoned job status = %q, want canceled", jr.Status)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestBackpressure: with the single worker busy and the queue full, the
// next distinct request is rejected with ErrBusy instead of buffering.
func TestBackpressure(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, QueueDepth: 1})
	gate := make(chan struct{})
	defer func() {
		select {
		case <-gate:
		default:
			close(gate)
		}
	}()
	s.synth = func(f cube.Cover, opt core.Options) (core.Result, error) {
		<-gate
		return fakeResult(), nil
	}

	plas := []string{
		".i 2\n.o 1\n11 1\n.e\n",
		".i 2\n.o 1\n00 1\n.e\n",
		".i 2\n.o 1\n10 1\n.e\n",
	}
	// Occupy the worker; wait until the job actually leaves the queue so
	// the next submit holds the queue slot rather than racing the worker.
	for i, p := range plas[:2] {
		resp, err := s.Synthesize(context.Background(), Request{PLA: p, Async: true})
		if err != nil {
			t.Fatal(err)
		}
		if resp.JobID == "" {
			t.Fatalf("async submit: %+v", resp)
		}
		if i == 0 {
			deadline := time.Now().Add(5 * time.Second)
			for gRunning.Value() < 1 {
				if time.Now().After(deadline) {
					t.Fatal("no job started running")
				}
				time.Sleep(time.Millisecond)
			}
		}
	}
	if _, err := s.Synthesize(context.Background(), Request{PLA: plas[2]}); !errors.Is(err, ErrBusy) {
		t.Fatalf("full queue returned %v, want ErrBusy", err)
	}
	close(gate)
}

// TestShutdownDrains: Shutdown must finish accepted jobs before
// returning, and reject new work while draining.
func TestShutdownDrains(t *testing.T) {
	s, err := NewServer(Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	started := make(chan struct{})
	s.synth = func(f cube.Cover, opt core.Options) (core.Result, error) {
		close(started)
		time.Sleep(50 * time.Millisecond)
		return fakeResult(), nil
	}
	resp, err := s.Synthesize(context.Background(), Request{PLA: fig1PLA, Async: true})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("drain shutdown: %v", err)
	}
	jr, ok := s.Job(resp.JobID)
	if !ok || jr.Status != StatusDone {
		t.Fatalf("in-flight job after drain: %+v (ok=%v), want done", jr, ok)
	}
	// A cache hit is still served while draining; a fresh function is not.
	if _, err := s.Synthesize(context.Background(),
		Request{PLA: ".i 2\n.o 1\n01 1\n.e\n"}); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit while draining returned %v, want ErrDraining", err)
	}
}

// TestPersistentCache is the warm-restart acceptance test: a second
// server instance on the same cache directory must answer a repeated
// request from the disk tier without synthesizing, and must have loaded
// the memo path snapshot the first instance persisted.
func TestPersistentCache(t *testing.T) {
	dir := t.TempDir()

	s1 := newTestServer(t, Config{Workers: 1, CacheDir: dir})
	resp, err := s1.Synthesize(context.Background(), fig1Request())
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != StatusDone || resp.Result.Size != 8 || resp.Cached != "" {
		t.Fatalf("cold synthesis: %+v", resp)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s1.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "paths.json")); err != nil {
		t.Fatalf("memo snapshot not persisted: %v", err)
	}

	// "New process": fresh server, same directory.
	diskHitsBefore := mDiskHits.Value()
	var synths atomic.Int32
	s2 := newTestServer(t, Config{Workers: 1, CacheDir: dir})
	inner := s2.synth
	s2.synth = func(f cube.Cover, opt core.Options) (core.Result, error) {
		synths.Add(1)
		return inner(f, opt)
	}
	if s2.Stats().MemoLoaded < 1 {
		t.Fatal("second instance loaded no memo path snapshot")
	}
	resp2, err := s2.Synthesize(context.Background(), fig1Request())
	if err != nil {
		t.Fatal(err)
	}
	if resp2.Cached != "disk" || resp2.Status != StatusDone || resp2.Result.Size != 8 {
		t.Fatalf("warm request: %+v, want disk-cached 4x2", resp2)
	}
	if synths.Load() != 0 {
		t.Fatal("warm request ran a synthesis")
	}
	if mDiskHits.Value() != diskHitsBefore+1 {
		t.Fatalf("disk hit counter delta = %d, want 1", mDiskHits.Value()-diskHitsBefore)
	}
	// The disk hit was promoted to the memory tier.
	resp3, err := s2.Synthesize(context.Background(), fig1Request())
	if err != nil {
		t.Fatal(err)
	}
	if resp3.Cached != "mem" {
		t.Fatalf("promoted request cached=%q, want mem", resp3.Cached)
	}
}

// TestHTTPEndToEnd drives the full HTTP surface with the Client: a real
// synthesis of Fig. 1, a health check, the async poll loop, and a 404.
func TestHTTPEndToEnd(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := NewClient(ts.URL)
	ctx := context.Background()

	resp, err := c.Synthesize(ctx, fig1Request())
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != StatusDone || resp.Result == nil || resp.Result.Size != 8 {
		t.Fatalf("fig1 over HTTP: %+v", resp)
	}
	if len(resp.Result.Lattice) != resp.Result.M {
		t.Fatalf("lattice rows = %d, want %d", len(resp.Result.Lattice), resp.Result.M)
	}

	st, err := c.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Draining || st.Workers != 2 {
		t.Fatalf("healthz: %+v", st)
	}

	// Async flow: submit, then poll to completion.
	async, err := c.Synthesize(ctx, Request{PLA: ".i 3\n.o 1\n111 1\n000 1\n.e\n", Async: true})
	if err != nil {
		t.Fatal(err)
	}
	if async.JobID == "" {
		t.Fatalf("async submit: %+v", async)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		jr, err := c.Job(ctx, async.JobID)
		if err != nil {
			t.Fatal(err)
		}
		if jr.Status == StatusDone {
			break
		}
		if jr.Status == StatusError || jr.Status == StatusCanceled {
			t.Fatalf("async job: %+v", jr)
		}
		if time.Now().After(deadline) {
			t.Fatal("async job did not finish")
		}
		time.Sleep(5 * time.Millisecond)
	}

	if _, err := c.Job(ctx, "jnope-1"); err == nil {
		t.Fatal("unknown job id must 404")
	} else {
		var ae *APIError
		if !errors.As(err, &ae) || ae.Code != 404 {
			t.Fatalf("unknown job error = %v, want 404 APIError", err)
		}
	}

	// Malformed PLA over HTTP is a 400.
	if _, err := c.Synthesize(ctx, Request{PLA: ".i oops"}); err == nil {
		t.Fatal("malformed PLA must fail")
	} else {
		var ae *APIError
		if !errors.As(err, &ae) || ae.Code != 400 {
			t.Fatalf("malformed PLA error = %v, want 400 APIError", err)
		}
	}
}
