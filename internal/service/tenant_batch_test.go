package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/lattice-tools/janus/internal/core"
	"github.com/lattice-tools/janus/internal/cube"
	"github.com/lattice-tools/janus/internal/lattice"
)

// fakeMultiResult is a minimal plausible JANUS-MF outcome for n outputs.
func fakeMultiResult(n int) *core.MultiResult {
	mr := &core.MultiResult{
		Lattice:  &core.MultiLattice{Assignment: lattice.NewAssignment(lattice.Grid{M: 4, N: 3*n - 1})},
		LMSolved: n,
	}
	for i := 0; i < n; i++ {
		mr.Parts = append(mr.Parts, fakeResult())
	}
	return mr
}

// TestSchedulerDRRWeights: with tenants weighted 2:1 and both
// backlogged, the dispatch sequence settles into a 2:1 interleave — the
// DRR invariant the fairness acceptance criterion rests on.
func TestSchedulerDRRWeights(t *testing.T) {
	sc := newScheduler(100, TenantConfig{}, map[string]TenantConfig{
		"heavy": {Weight: 2}, "light": {Weight: 1},
	}, tenantSLOCfg{})
	for i := 0; i < 20; i++ {
		if err := sc.enqueue(&job{tenant: "heavy"}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 20; i++ {
		if err := sc.enqueue(&job{tenant: "light"}); err != nil {
			t.Fatal(err)
		}
	}
	counts := map[string]int{}
	for i := 0; i < 12; i++ {
		j := sc.pick()
		if j == nil {
			t.Fatalf("pick %d: nil with backlogged tenants", i)
		}
		counts[j.tenant]++
	}
	if counts["heavy"] != 8 || counts["light"] != 4 {
		t.Fatalf("12 contended dispatches split %v, want heavy=8 light=4", counts)
	}
}

// TestSchedulerInFlightCap: a tenant at its in-flight cap is skipped —
// its queued jobs wait — while other tenants keep dispatching, and a
// completion reopens the slot.
func TestSchedulerInFlightCap(t *testing.T) {
	sc := newScheduler(100, TenantConfig{}, map[string]TenantConfig{
		"capped": {MaxInFlight: 1},
	}, tenantSLOCfg{})
	for i := 0; i < 3; i++ {
		if err := sc.enqueue(&job{tenant: "capped"}); err != nil {
			t.Fatal(err)
		}
	}
	if err := sc.enqueue(&job{tenant: "other"}); err != nil {
		t.Fatal(err)
	}
	if j := sc.pick(); j == nil || j.tenant != "capped" {
		t.Fatalf("first pick = %+v, want capped", j)
	}
	// capped is now at its cap; the next two dispatches must be other,
	// then nothing despite capped's backlog.
	if j := sc.pick(); j == nil || j.tenant != "other" {
		t.Fatalf("second pick should be other, got %+v", j)
	}
	if j := sc.pick(); j != nil {
		t.Fatalf("third pick should stall on the in-flight cap, got %+v", j)
	}
	sc.complete("capped")
	if j := sc.pick(); j == nil || j.tenant != "capped" {
		t.Fatalf("post-completion pick should resume capped, got %+v", j)
	}
}

// TestSchedulerQueueShare: the global bound sheds with ErrBusy exactly
// as the old single queue did; a tenant hitting its own share sheds
// with ErrTenantBusy (which still matches ErrBusy for the HTTP 429
// mapping) while other tenants keep admitting.
func TestSchedulerQueueShare(t *testing.T) {
	sc := newScheduler(4, TenantConfig{}, map[string]TenantConfig{
		"bulk": {QueueShare: 2},
	}, tenantSLOCfg{})
	for i := 0; i < 2; i++ {
		if err := sc.enqueue(&job{tenant: "bulk"}); err != nil {
			t.Fatal(err)
		}
	}
	err := sc.enqueue(&job{tenant: "bulk"})
	if !errors.Is(err, ErrTenantBusy) {
		t.Fatalf("over-share admit = %v, want ErrTenantBusy", err)
	}
	if !errors.Is(err, ErrBusy) {
		t.Fatal("ErrTenantBusy must wrap ErrBusy so the 429 mapping holds")
	}
	// The other tenant still has room up to the global bound…
	for i := 0; i < 2; i++ {
		if err := sc.enqueue(&job{tenant: "inter"}); err != nil {
			t.Fatalf("other tenant admit %d: %v", i, err)
		}
	}
	// …and past it the shed is the plain global ErrBusy.
	err = sc.enqueue(&job{tenant: "inter"})
	if !errors.Is(err, ErrBusy) || errors.Is(err, ErrTenantBusy) {
		t.Fatalf("global-full admit = %v, want plain ErrBusy", err)
	}
}

// TestSchedulerTenantFolding: unseen tenant names past the tracking cap
// fold into the default tenant instead of minting unbounded queues and
// metrics — the X-Janus-Tenant header is client-controlled input.
func TestSchedulerTenantFolding(t *testing.T) {
	sc := newScheduler(1<<20, TenantConfig{}, nil, tenantSLOCfg{})
	for i := 0; i < maxTrackedTenants+16; i++ {
		j := &job{tenant: fmt.Sprintf("t%d", i)}
		if err := sc.enqueue(j); err != nil {
			t.Fatal(err)
		}
		if i >= maxTrackedTenants-1 && j.tenant != DefaultTenant {
			t.Fatalf("tenant %d not folded: accounted to %q", i, j.tenant)
		}
	}
	if len(sc.tenants) > maxTrackedTenants {
		t.Fatalf("%d tenant queues tracked, cap is %d", len(sc.tenants), maxTrackedTenants)
	}
}

// TestConcurrentTenantAdmission: many clients under distinct tenants
// admit, run, and complete concurrently without racing the scheduler
// (this test carries most of its weight under -race) and without losing
// jobs — every admitted job is eventually completed.
func TestConcurrentTenantAdmission(t *testing.T) {
	s := newTestServer(t, Config{Workers: 4, QueueDepth: 256})
	s.synth = func(f cube.Cover, opt core.Options) (core.Result, error) {
		return fakeResult(), nil
	}
	const tenants, perTenant = 6, 12
	var wg sync.WaitGroup
	var failures atomic.Int32
	for tn := 0; tn < tenants; tn++ {
		wg.Add(1)
		go func(tn int) {
			defer wg.Done()
			ctx := ContextWithTenant(context.Background(), fmt.Sprintf("tenant%d", tn))
			for i := 0; i < perTenant; i++ {
				// Distinct budgets make distinct jobs, so nothing coalesces
				// away and every tenant really exercises its own queue.
				resp, err := s.Synthesize(ctx, Request{PLA: fig1PLA, MaxConflicts: int64(tn*perTenant + i + 1)})
				if err != nil || resp.Status != StatusDone {
					failures.Add(1)
				}
			}
		}(tn)
	}
	wg.Wait()
	if n := failures.Load(); n > 0 {
		t.Fatalf("%d requests failed", n)
	}
	st := s.Stats()
	if st.Scheduler == nil {
		t.Fatal("stats missing the scheduler block")
	}
	var admitted, completed int64
	for _, ts := range st.Scheduler.Tenants {
		admitted += ts.Admitted
		completed += ts.Completed
		if ts.QueueDepth != 0 || ts.InFlight != 0 {
			t.Fatalf("tenant %s not drained: %+v", ts.Name, ts)
		}
	}
	if admitted != completed || admitted == 0 {
		t.Fatalf("admitted %d != completed %d", admitted, completed)
	}
}

// TestBatchCoalesce: two identical concurrent batches run exactly one
// SynthesizeMulti; the joiner is answered from the same job.
func TestBatchCoalesce(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2})
	var calls atomic.Int32
	gate := make(chan struct{})
	s.synthMulti = func(fns []cube.Cover, opt core.Options, reduce bool) (*core.MultiResult, error) {
		calls.Add(1)
		<-gate
		return fakeMultiResult(len(fns)), nil
	}
	req := BatchRequest{Functions: []BatchFunction{
		{PLA: fig1PLA}, {PLA: ".i 4\n.o 1\n1100 1\n0011 1\n.e\n"},
	}}
	results := make(chan *Response, 2)
	errs := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func() {
			resp, err := s.SynthesizeBatch(context.Background(), req)
			results <- resp
			errs <- err
		}()
	}
	// Both submissions must be in flight (one running, one joined)
	// before the gate opens, or they would serialize through the cache.
	deadline := time.After(5 * time.Second)
	for calls.Load() == 0 {
		select {
		case <-deadline:
			t.Fatal("synthMulti never called")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	time.Sleep(20 * time.Millisecond) // let the second request join
	close(gate)
	coalesced := 0
	for i := 0; i < 2; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
		resp := <-results
		if resp.Status != StatusDone || resp.Batch == nil {
			t.Fatalf("batch answer %d: status=%s batch=%v", i, resp.Status, resp.Batch != nil)
		}
		if resp.Batch.Outputs != 2 {
			t.Fatalf("batch answer %d: outputs=%d", i, resp.Batch.Outputs)
		}
		if resp.Cached == "coalesced" {
			coalesced++
		}
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("identical batches ran %d syntheses, want 1", got)
	}
	if coalesced != 1 {
		t.Fatalf("%d answers marked coalesced, want 1", coalesced)
	}
}

// TestBatchUnpackWarmsSingleCache: a finished batch's converged
// per-output answers must land in the single-function cache under
// exactly the key a later single request uses — the later request is a
// memory hit and never touches the synthesis engine.
func TestBatchUnpackWarmsSingleCache(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	var singleCalls atomic.Int32
	s.synth = func(f cube.Cover, opt core.Options) (core.Result, error) {
		singleCalls.Add(1)
		return fakeResult(), nil
	}
	s.synthMulti = func(fns []cube.Cover, opt core.Options, reduce bool) (*core.MultiResult, error) {
		return fakeMultiResult(len(fns)), nil
	}
	otherPLA := ".i 4\n.o 1\n1010 1\n0101 1\n.e\n"
	resp, err := s.SynthesizeBatch(context.Background(), BatchRequest{
		Functions: []BatchFunction{{PLA: fig1PLA}, {PLA: otherPLA}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != StatusDone || resp.Batch == nil || len(resp.Batch.Parts) != 2 {
		t.Fatalf("batch did not finish: %+v", resp)
	}
	for _, p := range []string{fig1PLA, otherPLA} {
		single, err := s.Synthesize(context.Background(), Request{PLA: p})
		if err != nil {
			t.Fatal(err)
		}
		if single.Cached != "mem" {
			t.Fatalf("single request after batch: cached=%q, want mem (unpack missed)", single.Cached)
		}
	}
	if n := singleCalls.Load(); n != 0 {
		t.Fatalf("single synthesis ran %d times despite the unpacked batch", n)
	}
}

// TestBatchHTTPEndToEnd: the batch endpoint speaks the same protocol as
// the single one — canonical key header, tenant accounting from the
// X-Janus-Tenant header, 400s on malformed payloads.
func TestBatchHTTPEndToEnd(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	s.synthMulti = func(fns []cube.Cover, opt core.Options, reduce bool) (*core.MultiResult, error) {
		return fakeMultiResult(len(fns)), nil
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := `{"functions":[{"pla":".i 4\n.o 1\n1111 1\n.e\n"},{"pla":".i 4\n.o 1\n0000 1\n.e\n"}]}`
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/synthesize/batch", strings.NewReader(body))
	req.Header.Set("X-Janus-Tenant", "alpha")
	hr, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("batch POST: %d", hr.StatusCode)
	}
	if k := hr.Header.Get("X-Janus-Fn-Key"); len(k) != 64 {
		t.Fatalf("batch answer key %q, want 64-hex batch key", k)
	}
	var resp Response
	if err := json.NewDecoder(hr.Body).Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if resp.Batch == nil || resp.Batch.Outputs != 2 || resp.Batch.Sol == "" {
		t.Fatalf("batch body: %+v", resp.Batch)
	}

	st := s.Stats()
	found := false
	for _, tn := range st.Scheduler.Tenants {
		if tn.Name == "alpha" && tn.Completed == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("tenant alpha not accounted: %+v", st.Scheduler.Tenants)
	}

	for _, bad := range []string{
		`{}`, // empty batch
		`{"pla":".i 1\n.o 1\n1 1\n.e\n","functions":[{"pla":".i 1\n.o 1\n1 1\n.e\n"}]}`, // both forms
		`{"functions":[{"pla":"not a pla"}]}`,
	} {
		r, err := http.Post(ts.URL+"/v1/synthesize/batch", "application/json", strings.NewReader(bad))
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode != http.StatusBadRequest {
			t.Fatalf("payload %s: status %d, want 400", bad, r.StatusCode)
		}
	}
}

// TestBatchKeyIdentity: the batch key must distinguish function order
// (packing is order-dependent) and the reduce flag, and stay disjoint
// from the single-function keyspace.
func TestBatchKeyIdentity(t *testing.T) {
	a := BatchFunction{PLA: fig1PLA}
	b := BatchFunction{PLA: ".i 4\n.o 1\n1100 1\n.e\n"}
	k1, err := BatchKeyOf(BatchRequest{Functions: []BatchFunction{a, b}})
	if err != nil {
		t.Fatal(err)
	}
	k2, err := BatchKeyOf(BatchRequest{Functions: []BatchFunction{b, a}})
	if err != nil {
		t.Fatal(err)
	}
	if k1 == k2 {
		t.Fatal("function order must change the batch key")
	}
	off := false
	k3, err := BatchKeyOf(BatchRequest{Functions: []BatchFunction{a, b}, Reduce: &off})
	if err != nil {
		t.Fatal(err)
	}
	if k3 == k1 {
		t.Fatal("reduce on/off must change the batch key")
	}
	single, err := FnKeyOf(Request{PLA: fig1PLA})
	if err != nil {
		t.Fatal(err)
	}
	k4, err := BatchKeyOf(BatchRequest{Functions: []BatchFunction{a}})
	if err != nil {
		t.Fatal(err)
	}
	if k4 == single {
		t.Fatal("a one-function batch must not share the single-function key")
	}
}

// TestCacheLookupRejectsBadBudget: malformed budget parameters on the
// peer cache-fill endpoint must 400 — before the fix they silently read
// as 0, making a peer adopt answers computed under the wrong budget.
func TestCacheLookupRejectsBadBudget(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	s.synth = func(f cube.Cover, opt core.Options) (core.Result, error) {
		return fakeResult(), nil
	}
	resp, err := s.Synthesize(context.Background(), fig1Request())
	if err != nil || resp.Status != StatusDone {
		t.Fatalf("seed synthesis: %v %v", resp, err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	get := func(query string) int {
		t.Helper()
		r, err := http.Get(ts.URL + "/v1/cache/" + resp.FnKey + query)
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		return r.StatusCode
	}
	if code := get(""); code != http.StatusOK {
		t.Fatalf("clean lookup: %d, want 200", code)
	}
	if code := get("?timeout_ms=0x10"); code != http.StatusBadRequest {
		t.Fatalf("garbage timeout_ms: %d, want 400", code)
	}
	if code := get("?max_conflicts=many"); code != http.StatusBadRequest {
		t.Fatalf("garbage max_conflicts: %d, want 400", code)
	}
	if code := get("?timeout_ms=5000&max_conflicts=100"); code != http.StatusOK {
		t.Fatalf("valid budget lookup: %d, want 200", code)
	}
}

// TestClientResponseTooLarge: a response body over the client's buffer
// cap must surface as a distinct APIError, not as a JSON parse error on
// a silently truncated body.
func TestClientResponseTooLarge(t *testing.T) {
	huge := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("X-Request-Id", "big-1")
		w.Write(make([]byte, maxClientRespBody+1)) //nolint:errcheck
	}))
	defer huge.Close()
	_, err := NewClient(huge.URL).Synthesize(context.Background(), fig1Request())
	var ae *APIError
	if !errors.As(err, &ae) {
		t.Fatalf("error %v, want APIError", err)
	}
	if !strings.Contains(ae.Message, "response too large") {
		t.Fatalf("message %q lacks the oversize marker", ae.Message)
	}
	if ae.RequestID != "big-1" {
		t.Fatalf("request id %q not preserved", ae.RequestID)
	}
}

// TestHTTPAsyncParsesOnce: the handler now parses the request once and
// threads the parsed form through; the async flag must survive that
// path (202 + job id), and the eventual poll must carry the result.
func TestHTTPAsyncParsesOnce(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	s.synth = func(f cube.Cover, opt core.Options) (core.Result, error) {
		return fakeResult(), nil
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := NewClient(ts.URL)

	resp, err := c.Synthesize(context.Background(), Request{PLA: fig1PLA, Async: true})
	if err != nil {
		t.Fatal(err)
	}
	if resp.JobID == "" {
		t.Fatalf("async submit returned no job id: %+v", resp)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		got, err := c.Job(context.Background(), resp.JobID)
		if err != nil {
			t.Fatal(err)
		}
		if got.Status == StatusDone {
			if got.Result == nil {
				t.Fatal("done poll without result")
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never finished: %s", got.Status)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
