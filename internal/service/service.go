// Package service implements janusd's synthesis service: a bounded job
// queue in front of core.Synthesize with request coalescing and a
// two-tier result cache.
//
// Synthesis calls are seconds-to-hours long, so the service treats them
// like batch jobs rather than RPCs: requests are canonicalized (the same
// function asked two ways is the same job), identical in-flight requests
// coalesce onto one synthesis, accepted jobs run on a fixed worker pool
// with per-request deadlines threaded into the SAT solver's interrupt
// channel, and a full queue pushes back with 429 instead of buffering
// unboundedly. Finished answers land in an in-memory LRU and, when a
// cache directory is configured, in an on-disk store that survives
// restarts — along with a snapshot of the process-wide path-enumeration
// memo, so a warm daemon skips both the search and the path enumeration
// it would need to redo.
package service

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"path/filepath"
	"sync"
	"time"

	"github.com/lattice-tools/janus/internal/core"
	"github.com/lattice-tools/janus/internal/cube"
	"github.com/lattice-tools/janus/internal/memo"
)

// Config sizes the service. The zero value is usable: two workers, a
// 64-deep queue, 256 cached results in memory, no disk tier.
type Config struct {
	// Workers is the number of concurrent syntheses (default 2).
	Workers int
	// QueueDepth bounds the accepted-but-not-running backlog; a full
	// queue rejects with 429 (default 64).
	QueueDepth int
	// MemEntries bounds the in-memory result LRU (default 256).
	MemEntries int
	// CacheDir, when set, roots the persistent tier: results/ holds one
	// JSON file per canonical request, paths.json the memo snapshot.
	CacheDir string
	// DiskEntries / DiskBytes bound the results/ store (defaults 4096
	// entries, 64 MiB).
	DiskEntries int
	DiskBytes   int64
	// DefaultTimeout applies to requests without timeout_ms (default 5m);
	// MaxTimeout caps every request (default 1h).
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// SynthWorkers is core.Options.Workers for each job: intra-synthesis
	// candidate parallelism, on top of the job-level pool (default 1).
	SynthWorkers int
}

func (c *Config) fill() {
	if c.Workers < 1 {
		c.Workers = 2
	}
	if c.QueueDepth < 1 {
		c.QueueDepth = 64
	}
	if c.MemEntries < 1 {
		c.MemEntries = 256
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 5 * time.Minute
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = time.Hour
	}
}

// retainJobs bounds how many finished jobs stay pollable by id.
const retainJobs = 1024

// Server is the synthesis service. Create with NewServer, serve its
// Handler, stop with Shutdown.
type Server struct {
	cfg      Config
	mem      *memCache
	disk     *diskCache // nil without CacheDir
	memoPath string     // "" without CacheDir

	// baseCtx parents every job context; baseCancel is the hard-stop
	// lever Shutdown pulls when its own context expires.
	baseCtx    context.Context
	baseCancel context.CancelFunc

	mu        sync.Mutex
	draining  bool
	queue     chan *job
	inflight  map[string]*job // queued or running, by canonical key
	jobs      map[string]*job // by id, finished jobs retained
	doneOrder []string        // finished ids, oldest first
	seq       uint64
	nonce     string

	// budgets indexes finished answers by budget-free function key, so a
	// request whose exact (function, budget) key misses can still be
	// served by an answer computed under a compatible budget (see
	// budgetHit). Guarded by budMu, not mu: lookups happen on the request
	// path before admission.
	budMu   sync.Mutex
	budgets map[string][]budgetEntry

	wg sync.WaitGroup

	// synth runs one synthesis; tests replace it to count and stall.
	synth func(f cube.Cover, opt core.Options) (core.Result, error)
}

// job is one synthesis admitted to the queue. Mutable fields (status,
// out, waiters, async) are guarded by the server mutex; done closes when
// the job reaches a terminal status.
type job struct {
	id       string
	key      string
	p        *parsedRequest
	deadline time.Time
	ctx      context.Context
	cancel   context.CancelFunc
	waiters  int
	async    bool
	status   string
	out      *outcome
	done     chan struct{}
}

// NewServer builds the service, loads the persistent tier (results and
// the memo path snapshot), and starts the worker pool.
func NewServer(cfg Config) (*Server, error) {
	cfg.fill()
	s := &Server{
		cfg:      cfg,
		mem:      newMemCache(cfg.MemEntries),
		queue:    make(chan *job, cfg.QueueDepth),
		inflight: make(map[string]*job),
		jobs:     make(map[string]*job),
		budgets:  make(map[string][]budgetEntry),
		synth:    core.Synthesize,
	}
	var nonce [4]byte
	rand.Read(nonce[:]) //nolint:errcheck // crypto/rand never fails on supported platforms
	s.nonce = hex.EncodeToString(nonce[:])
	if cfg.CacheDir != "" {
		disk, err := openDiskCache(filepath.Join(cfg.CacheDir, "results"),
			cfg.DiskEntries, cfg.DiskBytes)
		if err != nil {
			return nil, fmt.Errorf("service: opening result cache: %w", err)
		}
		s.disk = disk
		s.memoPath = filepath.Join(cfg.CacheDir, "paths.json")
		n, err := memo.LoadPathsFile(s.memoPath)
		if err != nil {
			// A bad snapshot only costs re-enumeration; never fail startup
			// over it. The atomic writer makes this path unlikely.
			n = 0
		}
		gMemoLoaded.Set(int64(n))
	}
	s.baseCtx, s.baseCancel = context.WithCancel(context.Background())
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// Errors the HTTP layer maps to status codes.
var (
	// ErrBusy: the queue is full; retry later (429).
	ErrBusy = fmt.Errorf("service: queue full")
	// ErrDraining: the server is shutting down (503).
	ErrDraining = fmt.Errorf("service: draining")
)

// Synthesize is the embedded-use entry point (the HTTP handler and the
// Client both end up here): it resolves the request against the caches,
// coalesces with an identical in-flight job or enqueues a new one, and
// waits for the outcome or ctx. A ctx that ends first abandons the job
// (which is cancelled once no waiter remains, unless async) and returns
// the job's current state so the caller can poll later.
func (s *Server) Synthesize(ctx context.Context, req Request) (*Response, error) {
	start := time.Now()
	mRequests.Inc()
	p, err := parseRequest(req)
	if err != nil {
		return nil, err
	}
	if out, where, ok := s.cached(p.key); ok {
		hRequestNS.Observe(int64(time.Since(start)))
		return respond(out, "", where), nil
	}
	if out, where, ok := s.budgetHit(p); ok {
		hRequestNS.Observe(int64(time.Since(start)))
		return respond(out, "", where), nil
	}
	j, coalesced, err := s.admit(p)
	if err != nil {
		return nil, err
	}
	if req.Async {
		s.mu.Lock()
		resp := &Response{JobID: j.id, Status: j.status}
		s.mu.Unlock()
		return resp, nil
	}
	defer func() { hRequestNS.Observe(int64(time.Since(start))) }()
	cached := ""
	if coalesced {
		cached = "coalesced"
	}
	select {
	case <-j.done:
		return respond(j.out, j.id, cached), nil
	case <-ctx.Done():
		s.abandon(j)
		s.mu.Lock()
		resp := &Response{JobID: j.id, Status: j.status}
		s.mu.Unlock()
		return resp, nil
	}
}

// cached resolves a key against the memory tier and then the disk tier,
// promoting disk hits into memory.
func (s *Server) cached(key string) (*outcome, string, bool) {
	if out, ok := s.mem.get(key); ok {
		mMemHits.Inc()
		return out, "mem", true
	}
	if out, ok := s.disk.get(key); ok {
		mDiskHits.Inc()
		s.mem.put(key, out)
		return out, "disk", true
	}
	mCacheMiss.Inc()
	return nil, "", false
}

// admit coalesces the request onto an identical in-flight job or
// enqueues a new one, all under the mutex so admission cannot race
// Shutdown's queue close.
func (s *Server) admit(p *parsedRequest) (*job, bool, error) {
	timeout := p.timeout(s.cfg.DefaultTimeout, s.cfg.MaxTimeout)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil, false, ErrDraining
	}
	if j, ok := s.inflight[p.key]; ok {
		j.waiters++
		if p.req.Async {
			j.async = true
		}
		mCoalesced.Inc()
		return j, true, nil
	}
	s.seq++
	j := &job{
		id:       fmt.Sprintf("j%s-%d", s.nonce, s.seq),
		key:      p.key,
		p:        p,
		deadline: time.Now().Add(timeout),
		waiters:  1,
		async:    p.req.Async,
		status:   StatusQueued,
		done:     make(chan struct{}),
	}
	// The job deadline covers queue wait plus synthesis and holds even
	// after every waiter is gone, so async jobs cannot run forever.
	j.ctx, j.cancel = context.WithDeadline(s.baseCtx, j.deadline)
	select {
	case s.queue <- j:
	default:
		j.cancel()
		mQueueFull.Inc()
		return nil, false, ErrBusy
	}
	gQueueDepth.Set(int64(len(s.queue)))
	s.inflight[p.key] = j
	s.jobs[j.id] = j
	return j, false, nil
}

// abandon drops one waiter; when the last synchronous waiter leaves a
// still-unfinished, non-async job, its context is cancelled so the
// worker slot (or queue slot) frees promptly instead of burning the full
// deadline on an answer nobody is waiting for.
func (s *Server) abandon(j *job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if j.waiters > 0 {
		j.waiters--
	}
	if j.waiters == 0 && !j.async && j.out == nil {
		j.cancel()
	}
}

// Job returns the state of a job by id (GET /v1/jobs/{id}).
func (s *Server) Job(id string) (*Response, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, false
	}
	if j.out != nil {
		return respond(j.out, j.id, ""), true
	}
	return &Response{JobID: j.id, Status: j.status}, true
}

// respond wraps an immutable outcome in a per-request Response.
func respond(out *outcome, id, cached string) *Response {
	return &Response{
		JobID: id, Status: out.Status, Cached: cached,
		Error: out.Error, Result: out.Result,
	}
}

// worker drains the queue until Shutdown closes it.
func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		gQueueDepth.Set(int64(len(s.queue)))
		s.run(j)
	}
}

// run executes one job: skip it when already cancelled in the queue,
// otherwise synthesize under the job context and publish the outcome.
func (s *Server) run(j *job) {
	s.mu.Lock()
	if j.ctx.Err() == context.Canceled {
		s.finishLocked(j, &outcome{Status: StatusCanceled, Error: "canceled while queued"})
		s.mu.Unlock()
		return
	}
	j.status = StatusRunning
	s.mu.Unlock()

	gRunning.Add(1)
	opt := j.p.coreOptions()
	opt.Ctx = j.ctx
	opt.Workers = s.cfg.SynthWorkers
	opt.Deadline = j.deadline
	res, err := s.synth(j.p.cover, opt)
	gRunning.Add(-1)
	ctxErr := j.ctx.Err() // read before cancel() makes it context.Canceled
	j.cancel()            // release the deadline timer

	var out *outcome
	switch {
	case err != nil:
		mJobErrors.Inc()
		out = &outcome{Status: StatusError, Error: err.Error()}
	case ctxErr == context.Canceled:
		// Abandoned mid-run: the incumbent is real but under-budget, and
		// nobody is waiting. Don't let it into the caches as the answer.
		mCanceled.Inc()
		out = &outcome{Status: StatusCanceled, Error: "canceled"}
	default:
		// Deadline expiry is not an error: the search returns its best
		// verified incumbent, which is the agreed answer for this budget
		// (timeout_ms is part of the cache key).
		mJobsDone.Inc()
		out = &outcome{Status: StatusDone, Result: renderResult(res, j.p.names)}
		s.mem.put(j.key, out)
		s.disk.put(j.key, out)
		s.recordBudget(j.p, res.MatchedLB)
	}
	s.mu.Lock()
	s.finishLocked(j, out)
	s.mu.Unlock()
}

// finishLocked publishes a terminal outcome: the key frees for new
// submissions, waiters wake, and the job stays pollable within the
// retention window.
func (s *Server) finishLocked(j *job, out *outcome) {
	j.out = out
	j.status = out.Status
	delete(s.inflight, j.key)
	s.doneOrder = append(s.doneOrder, j.id)
	for len(s.doneOrder) > retainJobs {
		delete(s.jobs, s.doneOrder[0])
		s.doneOrder = s.doneOrder[1:]
	}
	close(j.done)
}

// Stats is the /healthz body.
type Stats struct {
	Draining    bool  `json:"draining"`
	QueueDepth  int   `json:"queue_depth"`
	Workers     int   `json:"workers"`
	DiskEntries int   `json:"disk_entries"`
	MemoLoaded  int64 `json:"memo_paths_loaded"`
}

// Stats reports queue health.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	draining := s.draining
	depth := len(s.queue)
	s.mu.Unlock()
	return Stats{
		Draining: draining, QueueDepth: depth, Workers: s.cfg.Workers,
		DiskEntries: s.disk.len(), MemoLoaded: gMemoLoaded.Value(),
	}
}

// Shutdown stops admission, drains the queue (accepted jobs finish), and
// persists the memo path snapshot. If ctx ends first, in-flight
// syntheses are cancelled cooperatively and Shutdown returns once they
// unwind. Safe to call once.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil
	}
	s.draining = true
	close(s.queue)
	s.mu.Unlock()

	drained := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(drained)
	}()
	var err error
	select {
	case <-drained:
	case <-ctx.Done():
		err = ctx.Err()
		s.baseCancel() // hard stop: interrupt running solvers
		<-drained
	}
	s.baseCancel()
	if s.memoPath != "" {
		if serr := memo.SavePathsFile(s.memoPath); serr != nil && err == nil {
			err = serr
		}
	}
	return err
}
