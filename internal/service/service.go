// Package service implements janusd's synthesis service: a bounded job
// queue in front of core.Synthesize with request coalescing and a
// two-tier result cache.
//
// Synthesis calls are seconds-to-hours long, so the service treats them
// like batch jobs rather than RPCs: requests are canonicalized (the same
// function asked two ways is the same job), identical in-flight requests
// coalesce onto one synthesis, accepted jobs run on a fixed worker pool
// with per-request deadlines threaded into the SAT solver's interrupt
// channel, and a full queue pushes back with 429 instead of buffering
// unboundedly. Finished answers land in an in-memory LRU and, when a
// cache directory is configured, in an on-disk store that survives
// restarts — along with a snapshot of the process-wide path-enumeration
// memo, so a warm daemon skips both the search and the path enumeration
// it would need to redo.
package service

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"log/slog"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"github.com/lattice-tools/janus/internal/core"
	"github.com/lattice-tools/janus/internal/cube"
	"github.com/lattice-tools/janus/internal/memo"
	"github.com/lattice-tools/janus/internal/obsv"
)

// Config sizes the service. The zero value is usable: two workers, a
// 64-deep queue, 256 cached results in memory, no disk tier.
type Config struct {
	// Workers is the number of concurrent syntheses (default 2).
	Workers int
	// QueueDepth bounds the accepted-but-not-running backlog; a full
	// queue rejects with 429 (default 64).
	QueueDepth int
	// MemEntries bounds the in-memory result LRU (default 256).
	MemEntries int
	// CacheDir, when set, roots the persistent tier: results/ holds one
	// JSON file per canonical request, paths.json the memo snapshot.
	CacheDir string
	// DiskEntries / DiskBytes bound the results/ store (defaults 4096
	// entries, 64 MiB).
	DiskEntries int
	DiskBytes   int64
	// DefaultTimeout applies to requests without timeout_ms (default 5m);
	// MaxTimeout caps every request (default 1h).
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// SynthWorkers is core.Options.Workers for each job: intra-synthesis
	// candidate parallelism, on top of the job-level pool (default 1).
	SynthWorkers int

	// TraceJobs bounds how many finished jobs keep their full span trace
	// retrievable via GET /v1/jobs/{id}/trace (default 64; negative
	// disables per-job tracing, leaving only the flight recorder).
	TraceJobs int
	// TraceSpans / TraceBytes bound each job's trace buffer (defaults
	// obsv.DefaultTraceSpans / obsv.DefaultTraceBytes).
	TraceSpans int
	TraceBytes int64
	// FlightEntries sizes the flight recorder's request-summary ring
	// (default 256; negative disables the recorder).
	FlightEntries int
	// SlowTrace pins the full trace of any job at least this slow
	// (queue wait + solve) in the flight recorder, alongside errored and
	// canceled jobs (default 2s; negative disables the slow rule).
	SlowTrace time.Duration
	// SynthSLO / JobsSLO are the per-endpoint latency objectives behind
	// the burn-rate gauges (defaults 30s and 100ms); SLOTarget is the
	// good fraction both must meet (default 0.99).
	SynthSLO  time.Duration
	JobsSLO   time.Duration
	SLOTarget float64
	// ProgressEvents bounds each job's progress-event ring, the window
	// GET /v1/jobs/{id}/events can resume over (default 512; negative
	// disables per-job progress entirely, including the snapshot in job
	// polls and the anytime SLO).
	ProgressEvents int
	// FirstMappingSLO is the anytime objective: how quickly a job should
	// hold its first verified mapping, enqueue to incumbent (default
	// 10s). Jobs that finish without any mapping count against it.
	FirstMappingSLO time.Duration
	// TenantSynthSLO / TenantFirstMappingSLO are the per-tenant latency
	// objectives behind the tenant-labeled burn gauges and the SLO rows in
	// the /v1/stats scheduler block. Zero inherits SynthSLO /
	// FirstMappingSLO; negative disables per-tenant SLO tracking. The
	// tenant SLO measures job end-to-end time (queue wait + solve), not
	// HTTP handler latency, so a tenant queued behind a noisy neighbor
	// burns budget even when each individual solve is fast.
	TenantSynthSLO        time.Duration
	TenantFirstMappingSLO time.Duration
	// DisableTracePropagation, when set, makes the daemon ignore inbound
	// X-Janus-Trace headers: every job trace roots locally instead of
	// under the remote caller's span. Propagation is on by default — the
	// header is parsed under the same strict policy as request ids, so an
	// unparseable or hostile value degrades to a local root, never an
	// error.
	DisableTracePropagation bool
	// Tenants configures named tenants' scheduling shares; tenants not
	// listed here get TenantDefaults on first sight. See TenantConfig.
	Tenants map[string]TenantConfig
	// TenantDefaults applies to tenants without an explicit entry
	// (zero fields resolve to: weight 1, queue share = QueueDepth,
	// in-flight unlimited).
	TenantDefaults TenantConfig
	// BatchReduceBudget caps the LM solves one batch may spend in the
	// shared row-reduction phase (0 = default 8, negative = unlimited).
	// The cap is what keeps a batch strictly cheaper than independent
	// submissions: the per-output searches skip the dichotomic-search
	// bounds, and the reduction must not spend back more than that saves.
	BatchReduceBudget int
	// Peers allowlists the daemon base URLs this server may fill its
	// cache from. The X-Janus-Fill-From hint is untrusted client input —
	// honoring an arbitrary URL would let any client make the daemon
	// fetch attacker-controlled cache entries (SSRF plus persistent
	// cache poisoning) — so a hint naming a URL outside this list is
	// ignored. Empty disables peer fill entirely.
	Peers []string
	// Logger receives JSON access and job lifecycle logs; nil discards.
	Logger *slog.Logger
}

func (c *Config) fill() {
	if c.Workers < 1 {
		c.Workers = 2
	}
	if c.QueueDepth < 1 {
		c.QueueDepth = 64
	}
	if c.MemEntries < 1 {
		c.MemEntries = 256
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 5 * time.Minute
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = time.Hour
	}
	// Zero means default, negative means disabled (normalized to 0).
	switch {
	case c.TraceJobs == 0:
		c.TraceJobs = 64
	case c.TraceJobs < 0:
		c.TraceJobs = 0
	}
	switch {
	case c.FlightEntries == 0:
		c.FlightEntries = 256
	case c.FlightEntries < 0:
		c.FlightEntries = 0
	}
	switch {
	case c.SlowTrace == 0:
		c.SlowTrace = 2 * time.Second
	case c.SlowTrace < 0:
		c.SlowTrace = 0
	}
	switch {
	case c.ProgressEvents == 0:
		c.ProgressEvents = 512
	case c.ProgressEvents < 0:
		c.ProgressEvents = 0
	}
	if c.FirstMappingSLO <= 0 {
		c.FirstMappingSLO = 10 * time.Second
	}
	switch {
	case c.BatchReduceBudget == 0:
		c.BatchReduceBudget = 8
	case c.BatchReduceBudget < 0:
		c.BatchReduceBudget = 0 // unlimited
	}
	if c.SynthSLO <= 0 {
		c.SynthSLO = 30 * time.Second
	}
	if c.JobsSLO <= 0 {
		c.JobsSLO = 100 * time.Millisecond
	}
	if c.SLOTarget <= 0 || c.SLOTarget >= 1 {
		c.SLOTarget = 0.99
	}
	// Resolved after SynthSLO/FirstMappingSLO so zero can inherit them.
	switch {
	case c.TenantSynthSLO == 0:
		c.TenantSynthSLO = c.SynthSLO
	case c.TenantSynthSLO < 0:
		c.TenantSynthSLO = 0
	}
	switch {
	case c.TenantFirstMappingSLO == 0:
		c.TenantFirstMappingSLO = c.FirstMappingSLO
	case c.TenantFirstMappingSLO < 0:
		c.TenantFirstMappingSLO = 0
	}
	if c.Logger == nil {
		c.Logger = obsv.NopLogger()
	}
}

// retainJobs bounds how many finished jobs stay pollable by id.
const retainJobs = 1024

// Server is the synthesis service. Create with NewServer, serve its
// Handler, stop with Shutdown.
type Server struct {
	cfg      Config
	mem      *memCache
	disk     *diskCache // nil without CacheDir
	memoPath string     // "" without CacheDir

	// baseCtx parents every job context; baseCancel is the hard-stop
	// lever Shutdown pulls when its own context expires.
	baseCtx    context.Context
	baseCancel context.CancelFunc

	// flight is nil when the recorder is disabled; sloSynth/sloJobs are
	// nil-safe and only observed from the HTTP layer.
	flight      *flightRecorder
	sloSynth    *obsv.SLO
	sloJobs     *obsv.SLO
	sloFirstMap *obsv.SLO
	log         *slog.Logger
	reqSeq      atomic.Uint64

	mu       sync.Mutex
	draining bool
	// sched replaces the old single job channel: per-tenant FIFOs behind
	// a weighted deficit-round-robin dispatcher (tenant.go). cond wakes
	// workers on enqueue, job completion (in-flight caps may have
	// unblocked a tenant), and drain.
	sched      *scheduler
	cond       *sync.Cond
	inflight   map[string]*job // queued or running, by canonical key
	jobs       map[string]*job // by id, finished jobs retained
	doneOrder  []string        // finished ids, oldest first
	traceOrder []string        // finished ids still holding a trace buffer
	seq        uint64
	nonce      string

	// budgets indexes finished answers by budget-free function key, so a
	// request whose exact (function, budget) key misses can still be
	// served by an answer computed under a compatible budget (see
	// budgetHit). Guarded by budMu, not mu: lookups happen on the request
	// path before admission.
	budMu   sync.Mutex
	budgets map[string][]budgetEntry

	// peers is the normalized Config.Peers allowlist; only these URLs
	// may be consulted for peer cache fill. Guarded by peersMu so tests
	// and future dynamic-membership config can swap it.
	peersMu sync.RWMutex
	peers   map[string]bool

	wg sync.WaitGroup

	// synth runs one synthesis; tests replace it to count and stall.
	// synthMulti is the batch equivalent (core.SynthesizeMulti).
	synth      func(f cube.Cover, opt core.Options) (core.Result, error)
	synthMulti func(fns []cube.Cover, opt core.Options, reduce bool) (*core.MultiResult, error)
}

// job is one synthesis admitted to the queue. Mutable fields (status,
// out, waiters, async) are guarded by the server mutex; done closes when
// the job reaches a terminal status.
type job struct {
	id        string
	key       string
	requestID string // the admitting request's id, stamped on the trace
	// traceCtx is the admitting request's inbound trace context (zero
	// when none): the job's span tree roots under this remote parent so
	// the front tier can stitch its spans and ours into one trace.
	traceCtx obsv.TraceContext
	p         *parsedRequest
	bp        *parsedBatch // non-nil for batch jobs (then p is nil)
	tenant    string       // the tenant queue this job is accounted to
	shape     string       // cover shape for memo-affinity dispatch ("" for batches)
	enqueued  time.Time
	deadline  time.Time
	ctx       context.Context
	cancel    context.CancelFunc
	waiters   int
	async     bool
	status    string
	queueWait time.Duration
	trace     *obsv.TraceBuffer // nil until running, or with tracing off
	progress  *progressState    // nil with progress disabled
	out       *outcome
	done      chan struct{}
}

// fnKey returns the job's routing identity: the single function's key
// or the batch key.
func (j *job) fnKey() string {
	if j.bp != nil {
		return j.bp.fnKey
	}
	return j.p.fnKey
}

// NewServer builds the service, loads the persistent tier (results and
// the memo path snapshot), and starts the worker pool.
func NewServer(cfg Config) (*Server, error) {
	cfg.fill()
	s := &Server{
		cfg:        cfg,
		mem:        newMemCache(cfg.MemEntries),
		sched: newScheduler(cfg.QueueDepth, cfg.TenantDefaults, cfg.Tenants, tenantSLOCfg{
			synth: cfg.TenantSynthSLO, firstMap: cfg.TenantFirstMappingSLO, target: cfg.SLOTarget,
		}),
		inflight:   make(map[string]*job),
		jobs:       make(map[string]*job),
		budgets:    make(map[string][]budgetEntry),
		synth:      core.Synthesize,
		synthMulti: core.SynthesizeMulti,
	}
	s.cond = sync.NewCond(&s.mu)
	s.SetPeers(cfg.Peers...)
	var nonce [4]byte
	rand.Read(nonce[:]) //nolint:errcheck // crypto/rand never fails on supported platforms
	s.nonce = hex.EncodeToString(nonce[:])
	s.log = cfg.Logger
	if cfg.FlightEntries > 0 {
		s.flight = newFlightRecorder(cfg.FlightEntries, cfg.SlowTrace)
	}
	s.sloSynth = obsv.NewSLO("synthesize", cfg.SynthSLO, cfg.SLOTarget)
	s.sloJobs = obsv.NewSLO("jobs", cfg.JobsSLO, cfg.SLOTarget)
	s.sloFirstMap = obsv.NewSLO("first_mapping", cfg.FirstMappingSLO, cfg.SLOTarget)
	s.sloSynth.Register(obsv.Default, "janus_service_slo_synthesize")
	s.sloJobs.Register(obsv.Default, "janus_service_slo_jobs")
	s.sloFirstMap.Register(obsv.Default, "janus_service_slo_first_mapping")
	if cfg.CacheDir != "" {
		disk, err := openDiskCache(filepath.Join(cfg.CacheDir, "results"),
			cfg.DiskEntries, cfg.DiskBytes)
		if err != nil {
			return nil, fmt.Errorf("service: opening result cache: %w", err)
		}
		s.disk = disk
		s.memoPath = filepath.Join(cfg.CacheDir, "paths.json")
		n, err := memo.LoadPathsFile(s.memoPath)
		if err != nil {
			// A bad snapshot only costs re-enumeration; never fail startup
			// over it. The atomic writer makes this path unlikely.
			n = 0
		}
		gMemoLoaded.Set(int64(n))
	}
	s.baseCtx, s.baseCancel = context.WithCancel(context.Background())
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// Errors the HTTP layer maps to status codes.
var (
	// ErrBusy: the queue is full; retry later (429).
	ErrBusy = fmt.Errorf("service: queue full")
	// ErrDraining: the server is shutting down (503).
	ErrDraining = fmt.Errorf("service: draining")
)

// Synthesize is the embedded-use entry point (the HTTP handler and the
// Client both end up here): it resolves the request against the caches,
// coalesces with an identical in-flight job or enqueues a new one, and
// waits for the outcome or ctx. A ctx that ends first abandons the job
// (which is cancelled once no waiter remains, unless async) and returns
// the job's current state so the caller can poll later.
func (s *Server) Synthesize(ctx context.Context, req Request) (*Response, error) {
	p, err := parseRequest(req)
	if err != nil {
		return nil, err
	}
	return s.synthesizeParsed(ctx, p)
}

// synthesizeParsed is Synthesize past validation. The HTTP handler
// calls it directly with the parsedRequest it already built (it needed
// the fn key and timeout before dispatch), so a request is parsed —
// covers hashed, PLA walked — exactly once on the synthesize path.
func (s *Server) synthesizeParsed(ctx context.Context, p *parsedRequest) (*Response, error) {
	start := time.Now()
	mRequests.Inc()
	reqID := obsv.RequestIDFromContext(ctx)
	if reqID == "" {
		reqID = s.newRequestID()
		ctx = obsv.ContextWithRequestID(ctx, reqID)
	}
	if out, where, ok := s.cached(p.key); ok {
		hRequestNS.Observe(int64(time.Since(start)))
		s.flight.record(FlightEntry{
			Time: start, RequestID: reqID, FnKey: fnPrefix(p.fnKey),
			Outcome: out.Status, Cached: where, Grid: outcomeGrid(out),
			TotalNS: int64(time.Since(start)),
		})
		return withMeta(respond(out, "", where), reqID, p.fnKey), nil
	}
	if out, where, ok := s.budgetHit(p); ok {
		hRequestNS.Observe(int64(time.Since(start)))
		s.flight.record(FlightEntry{
			Time: start, RequestID: reqID, FnKey: fnPrefix(p.fnKey),
			Outcome: out.Status, Cached: where, Grid: outcomeGrid(out),
			TotalNS: int64(time.Since(start)),
		})
		return withMeta(respond(out, "", where), reqID, p.fnKey), nil
	}
	// Reshard warm-up: a front tier that just moved this key here hints
	// at the previous owner; adopting its cached answer (when budget-
	// compatible) turns what would be a re-solve stampede into one HTTP
	// round trip. Any failure falls through to a normal synthesis.
	if peer := fillFrom(ctx); peer != "" {
		if out, ok := s.peerFill(ctx, peer, p); ok {
			hRequestNS.Observe(int64(time.Since(start)))
			s.flight.record(FlightEntry{
				Time: start, RequestID: reqID, FnKey: fnPrefix(p.fnKey),
				Outcome: out.Status, Cached: "peer", Grid: outcomeGrid(out),
				TotalNS: int64(time.Since(start)),
			})
			return withMeta(respond(out, "", "peer"), reqID, p.fnKey), nil
		}
	}
	j, coalesced, err := s.admit(p, nil, reqID, tenantFromContext(ctx), s.traceContext(ctx))
	if err != nil {
		// Shed and drain refusals go in the flight recorder too: a burst
		// of 429s is exactly the kind of incident it exists to replay.
		oc := outcomeShed
		if err == ErrDraining {
			oc = outcomeDraining
		}
		s.flight.record(FlightEntry{
			Time: start, RequestID: reqID, FnKey: fnPrefix(p.fnKey),
			Outcome: oc, Error: err.Error(), TotalNS: int64(time.Since(start)),
		})
		return nil, err
	}
	if p.req.Async {
		s.mu.Lock()
		resp := &Response{JobID: j.id, Status: j.status, RequestID: reqID, FnKey: p.fnKey}
		s.mu.Unlock()
		return resp, nil
	}
	defer func() { hRequestNS.Observe(int64(time.Since(start))) }()
	cached := ""
	if coalesced {
		cached = "coalesced"
	}
	select {
	case <-j.done:
		if coalesced {
			// The leader's job entry is recorded by run(); followers get
			// their own entry pointing at the job that answered them.
			s.flight.record(FlightEntry{
				Time: start, RequestID: reqID, JobID: j.id, CoalescedInto: j.id,
				FnKey: fnPrefix(p.fnKey), Outcome: j.out.Status, Cached: cached,
				Grid: outcomeGrid(j.out), TotalNS: int64(time.Since(start)),
			})
		}
		return withMeta(respond(j.out, j.id, cached), reqID, p.fnKey), nil
	case <-ctx.Done():
		s.abandon(j)
		s.mu.Lock()
		resp := &Response{JobID: j.id, Status: j.status, RequestID: reqID, FnKey: p.fnKey}
		s.mu.Unlock()
		return resp, nil
	}
}

// SynthesizeBatch is the batch entry point (POST /v1/synthesize/batch):
// resolve the whole batch against the cache, coalesce with an identical
// in-flight batch, or enqueue one job that runs core.SynthesizeMulti
// over every function. Batches skip the budget index and peer fill —
// both are per-function mechanisms, and the per-function cache entries
// a finished batch unpacks are what feeds them.
func (s *Server) SynthesizeBatch(ctx context.Context, req BatchRequest) (*Response, error) {
	pb, err := parseBatch(req)
	if err != nil {
		return nil, err
	}
	return s.synthesizeBatchParsed(ctx, pb)
}

// synthesizeBatchParsed is SynthesizeBatch past validation (the HTTP
// handler parses once and calls this, like synthesizeParsed).
func (s *Server) synthesizeBatchParsed(ctx context.Context, pb *parsedBatch) (*Response, error) {
	start := time.Now()
	mRequests.Inc()
	mBatchRequests.Inc()
	reqID := obsv.RequestIDFromContext(ctx)
	if reqID == "" {
		reqID = s.newRequestID()
		ctx = obsv.ContextWithRequestID(ctx, reqID)
	}
	if out, where, ok := s.cached(pb.key); ok && out.Batch != nil {
		hRequestNS.Observe(int64(time.Since(start)))
		s.flight.record(FlightEntry{
			Time: start, RequestID: reqID, FnKey: fnPrefix(pb.fnKey),
			Outcome: out.Status, Cached: where, Grid: out.Batch.Sol,
			TotalNS: int64(time.Since(start)),
		})
		return withMeta(respond(out, "", where), reqID, pb.fnKey), nil
	}
	j, coalesced, err := s.admit(nil, pb, reqID, tenantFromContext(ctx), s.traceContext(ctx))
	if err != nil {
		oc := outcomeShed
		if err == ErrDraining {
			oc = outcomeDraining
		}
		s.flight.record(FlightEntry{
			Time: start, RequestID: reqID, FnKey: fnPrefix(pb.fnKey),
			Outcome: oc, Error: err.Error(), TotalNS: int64(time.Since(start)),
		})
		return nil, err
	}
	if pb.req.Async {
		s.mu.Lock()
		resp := &Response{JobID: j.id, Status: j.status, RequestID: reqID, FnKey: pb.fnKey}
		s.mu.Unlock()
		return resp, nil
	}
	defer func() { hRequestNS.Observe(int64(time.Since(start))) }()
	cached := ""
	if coalesced {
		cached = "coalesced"
	}
	select {
	case <-j.done:
		if coalesced {
			s.flight.record(FlightEntry{
				Time: start, RequestID: reqID, JobID: j.id, CoalescedInto: j.id,
				FnKey: fnPrefix(pb.fnKey), Outcome: j.out.Status, Cached: cached,
				TotalNS: int64(time.Since(start)),
			})
		}
		return withMeta(respond(j.out, j.id, cached), reqID, pb.fnKey), nil
	case <-ctx.Done():
		s.abandon(j)
		s.mu.Lock()
		resp := &Response{JobID: j.id, Status: j.status, RequestID: reqID, FnKey: pb.fnKey}
		s.mu.Unlock()
		return resp, nil
	}
}

// newRequestID mints a process-unique request id.
func (s *Server) newRequestID() string {
	return fmt.Sprintf("r%s-%d", s.nonce, s.reqSeq.Add(1))
}

// traceContext reads the inbound trace context for a request, honoring
// the propagation switch (a job admitted while propagation is off roots
// its trace locally).
func (s *Server) traceContext(ctx context.Context) obsv.TraceContext {
	if s.cfg.DisableTracePropagation {
		return obsv.TraceContext{}
	}
	tc, _ := obsv.TraceContextFromContext(ctx)
	return tc
}

// withMeta stamps the request id and function key on a response.
func withMeta(r *Response, id, fnKey string) *Response {
	r.RequestID = id
	r.FnKey = fnKey
	return r
}

// fnPrefix shortens a function key for logs and flight entries.
func fnPrefix(k string) string {
	if len(k) > 12 {
		return k[:12]
	}
	return k
}

// outcomeGrid formats a done outcome's lattice shape ("3x4").
func outcomeGrid(out *outcome) string {
	if out == nil || out.Result == nil {
		return ""
	}
	return fmt.Sprintf("%dx%d", out.Result.M, out.Result.N)
}

// cached resolves a key against the memory tier and then the disk tier,
// promoting disk hits into memory.
func (s *Server) cached(key string) (*outcome, string, bool) {
	if out, ok := s.mem.get(key); ok {
		mMemHits.Inc()
		return out, "mem", true
	}
	if out, ok := s.disk.get(key); ok {
		mDiskHits.Inc()
		s.mem.put(key, out)
		return out, "disk", true
	}
	mCacheMiss.Inc()
	return nil, "", false
}

// admit coalesces the request onto an identical in-flight job or
// enqueues a new one under the tenant's fairness rules, all under the
// mutex so admission cannot race drain. Exactly one of p / bp is
// non-nil (single vs batch job).
func (s *Server) admit(p *parsedRequest, bp *parsedBatch, reqID, tenant string, tc obsv.TraceContext) (*job, bool, error) {
	var key, shape string
	var timeout time.Duration
	var async bool
	if bp != nil {
		key = bp.key
		timeout = bp.timeout(s.cfg.DefaultTimeout, s.cfg.MaxTimeout)
		async = bp.req.Async
	} else {
		key = p.key
		timeout = p.timeout(s.cfg.DefaultTimeout, s.cfg.MaxTimeout)
		async = p.req.Async
		// The cover's inputs×products shape is the memo-affinity signal:
		// same shape means the path-enumeration memos for the probed grids
		// are likely hot from the previous dispatch.
		shape = fmt.Sprintf("%dx%d", p.cover.N, len(p.cover.Cubes))
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil, false, ErrDraining
	}
	if j, ok := s.inflight[key]; ok {
		// Coalescing is keyed by the canonical request, not the tenant:
		// two tenants asking the same question share one synthesis (the
		// answer is identical), accounted to whichever tenant asked first.
		j.waiters++
		if async {
			j.async = true
		}
		mCoalesced.Inc()
		return j, true, nil
	}
	s.seq++
	j := &job{
		id:        fmt.Sprintf("j%s-%d", s.nonce, s.seq),
		key:       key,
		requestID: reqID,
		traceCtx:  tc,
		p:         p,
		bp:        bp,
		tenant:    tenant,
		shape:     shape,
		enqueued:  time.Now(),
		deadline:  time.Now().Add(timeout),
		waiters:   1,
		async:     async,
		status:    StatusQueued,
		done:      make(chan struct{}),
	}
	if bp == nil && s.cfg.ProgressEvents > 0 {
		// Created at admission so the events stream exists (and buffers)
		// from the first queued moment, not only once a worker picks the
		// job up. Batch jobs carry no progress stream: the per-output
		// searches would interleave into one incoherent event sequence.
		j.progress = newProgressState(s.cfg.ProgressEvents, j.enqueued)
	}
	// The job deadline covers queue wait plus synthesis and holds even
	// after every waiter is gone, so async jobs cannot run forever.
	j.ctx, j.cancel = context.WithDeadline(s.baseCtx, j.deadline)
	if err := s.sched.enqueue(j); err != nil {
		j.cancel()
		if !errors.Is(err, ErrTenantBusy) {
			mQueueFull.Inc()
		}
		return nil, false, err
	}
	gQueueDepth.Set(int64(s.sched.total))
	s.inflight[key] = j
	s.jobs[j.id] = j
	s.cond.Signal()
	s.log.Info("job queued", "job_id", j.id, "request_id", reqID,
		"fn_key", fnPrefix(j.fnKey()), "tenant", j.tenant, "batch", bp != nil,
		"async", j.async, "timeout_ms", timeout.Milliseconds(),
		"queue_depth", s.sched.total)
	return j, false, nil
}

// abandon drops one waiter; when the last synchronous waiter leaves a
// still-unfinished, non-async job, its context is cancelled so the
// worker slot (or queue slot) frees promptly instead of burning the full
// deadline on an answer nobody is waiting for.
func (s *Server) abandon(j *job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if j.waiters > 0 {
		j.waiters--
	}
	if j.waiters == 0 && !j.async && j.out == nil {
		j.cancel()
	}
}

// Job returns the state of a job by id (GET /v1/jobs/{id}).
func (s *Server) Job(id string) (*Response, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, false
	}
	var resp *Response
	if j.out != nil {
		resp = respond(j.out, j.id, "")
	} else {
		resp = &Response{JobID: j.id, Status: j.status}
	}
	resp.FnKey = j.fnKey()
	// The inline snapshot is what makes a plain poll "anytime": a caller
	// that never opens the events stream still sees the bounds close in.
	resp.Progress = j.progress.snapshot()
	return resp, true
}

// JobEvents returns a job's progress stream handle for the events
// endpoint: the state (nil when progress is disabled) plus whether the
// job exists at all.
func (s *Server) JobEvents(id string) (*progressState, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, false
	}
	return j.progress, true
}

// respond wraps an immutable outcome in a per-request Response.
func respond(out *outcome, id, cached string) *Response {
	return &Response{
		JobID: id, Status: out.Status, Cached: cached,
		Error: out.Error, Result: out.Result, Batch: out.Batch,
	}
}

// worker pulls dispatches from the scheduler until the drain completes:
// it exits only once draining is set AND every queued job has been
// picked (and short-circuited as canceled, if the hard stop fired), so
// accepted jobs always reach a terminal state.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		var j *job
		for {
			j = s.sched.pick()
			if j != nil {
				break
			}
			if s.draining && s.sched.total == 0 {
				s.mu.Unlock()
				return
			}
			s.cond.Wait()
		}
		gQueueDepth.Set(int64(s.sched.total))
		s.mu.Unlock()
		if j.bp != nil {
			s.runBatch(j)
		} else {
			s.run(j)
		}
		s.mu.Lock()
		s.sched.complete(j.tenant)
		// Completion may unblock an in-flight-capped tenant, another
		// waiting worker, or the drain loop.
		s.cond.Broadcast()
		s.mu.Unlock()
	}
}

// run executes one job: skip it when already cancelled in the queue,
// otherwise synthesize under the job context — with the job's tracer,
// span, and request id carried in it — and publish the outcome, one
// flight entry per job.
func (s *Server) run(j *job) {
	var jobSpan *obsv.Span
	s.mu.Lock()
	if j.ctx.Err() == context.Canceled {
		j.progress.finish(StatusCanceled, 0, 0, false)
		s.finishLocked(j, &outcome{Status: StatusCanceled, Error: "canceled while queued"})
		s.mu.Unlock()
		s.flight.record(FlightEntry{
			Time: j.enqueued, RequestID: j.requestID, JobID: j.id,
			FnKey: fnPrefix(j.p.fnKey), Outcome: StatusCanceled,
			Error: "canceled while queued", TotalNS: int64(time.Since(j.enqueued)),
		})
		s.log.Info("job canceled while queued", "job_id", j.id, "request_id", j.requestID)
		return
	}
	j.status = StatusRunning
	j.queueWait = time.Since(j.enqueued)
	if s.cfg.TraceJobs > 0 {
		// j.trace is assigned under the mutex so JobTrace never races it.
		j.trace = obsv.NewTraceBuffer(s.cfg.TraceSpans, s.cfg.TraceBytes)
		tracer := obsv.NewTracer(j.trace)
		if j.traceCtx.Valid() {
			// An inbound X-Janus-Trace header roots this job under the
			// remote caller's span: the tracer stamps the fleet trace id and
			// process tag on every span, and Job carries the advisory
			// remote parent the front resolves when stitching.
			tracer.SetTrace(j.traceCtx.TraceID, "janusd")
		}
		jobSpan = obsv.StartRemote(tracer, j.traceCtx.Parent, "Job")
	}
	tq := s.sched.tenant(j.tenant)
	s.mu.Unlock()
	hQueueWaitNS.Observe(int64(j.queueWait))
	tq.observeQueueWait("synthesize", j.queueWait)

	jobSpan.SetStr("job_id", j.id)
	jobSpan.SetStr("request_id", j.requestID)
	jobSpan.SetStr("fn_key", fnPrefix(j.p.fnKey))
	jobSpan.SetInt("queue_wait_ns", int64(j.queueWait))
	ctx := obsv.ContextWithRequestID(j.ctx, j.requestID)
	if jobSpan != nil {
		ctx = obsv.ContextWithSpan(obsv.ContextWithTracer(ctx, jobSpan.Tracer()), jobSpan)
	}
	if j.progress != nil {
		ctx = obsv.ContextWithProgress(ctx, j.progress)
	}

	gRunning.Add(1)
	started := time.Now()
	opt := j.p.coreOptions()
	opt.Ctx = ctx
	opt.Workers = s.cfg.SynthWorkers
	opt.Deadline = j.deadline
	res, err := s.synth(j.p.cover, opt)
	solve := time.Since(started)
	gRunning.Add(-1)
	hSolveNS.Observe(int64(solve))
	ctxErr := j.ctx.Err() // read before cancel() makes it context.Canceled
	j.cancel()            // release the deadline timer

	var out *outcome
	switch {
	case err != nil:
		mJobErrors.Inc()
		out = &outcome{Status: StatusError, Error: err.Error()}
	case ctxErr == context.Canceled && res.Assignment == nil:
		// Abandoned before the bounds phase produced anything: there is
		// no answer to degrade to.
		mCanceled.Inc()
		out = &outcome{Status: StatusCanceled, Error: "canceled"}
	case ctxErr == context.Canceled:
		// Cancelled mid-run with a verified incumbent in hand: that IS an
		// answer — publish it as done (partial when the bounds had not
		// met) so pollers and coalesced followers get the mapping instead
		// of a bare "canceled". But a cancelled run used less than its
		// nominal budget, so a partial answer here must never enter the
		// caches: under the exact (function, budget) key it would claim
		// "this is what that budget buys", which a fuller run could beat.
		// A converged answer (bounds met) is exact for any budget and
		// caches normally.
		mJobsDone.Inc()
		out = &outcome{Status: StatusDone, Result: renderResult(res, j.p.names)}
		if res.Partial {
			mPartial.Inc()
		} else {
			s.mem.put(j.key, out)
			s.disk.put(j.key, out)
			s.recordBudget(j.p, res.MatchedLB)
		}
	default:
		// Deadline expiry is not an error: the search returns its best
		// verified incumbent, which is the agreed answer for this budget
		// (timeout_ms is part of the cache key, and the budget index only
		// ever serves a non-MatchedLB answer to same-or-smaller budgets).
		mJobsDone.Inc()
		if res.Partial {
			mPartial.Inc()
		}
		out = &outcome{Status: StatusDone, Result: renderResult(res, j.p.names)}
		s.mem.put(j.key, out)
		s.disk.put(j.key, out)
		s.recordBudget(j.p, res.MatchedLB)
	}
	if j.progress != nil {
		// Anytime SLO: enqueue to first verified mapping. Jobs that never
		// held one count as misses at their total latency or just past
		// the objective, whichever is worse.
		fm := j.progress.firstMappingAt()
		if fm == 0 {
			fm = j.queueWait + solve
			if fm <= s.cfg.FirstMappingSLO {
				fm = s.cfg.FirstMappingSLO + 1
			}
		} else {
			hFirstMappingNS.Observe(int64(fm))
		}
		s.sloFirstMap.Observe(fm)
		tq.observeFirstMapping(fm)
		finalLB, finalUB := 0, 0
		if out.Result != nil {
			finalLB, finalUB = out.Result.FinalLB, out.Result.Size
		}
		j.progress.finish(out.Status, finalLB, finalUB, out.Result != nil && out.Result.Partial)
	}
	jobSpan.SetStr("outcome", out.Status)
	if out.Result != nil {
		jobSpan.SetInt("size", int64(out.Result.Size))
	}
	jobSpan.End() // last span to end: survives any buffer eviction

	total := j.queueWait + solve
	tq.observeE2E("synthesize", total)
	entry := FlightEntry{
		Time: j.enqueued, RequestID: j.requestID, JobID: j.id,
		FnKey: fnPrefix(j.p.fnKey), Outcome: out.Status, Error: out.Error,
		Grid: outcomeGrid(out), GridsProbed: res.GridsProbed,
		Engine: res.Engine, PredictedDepth: res.PredictedDepth,
		QueueWaitNS: int64(j.queueWait), SolveNS: int64(solve), TotalNS: int64(total),
	}
	if out.Result != nil {
		entry.FinalLB, entry.FinalUB = out.Result.FinalLB, out.Result.Size
		entry.Partial = out.Result.Partial
	}
	if s.flight.shouldPin(out.Status, entry.Partial, total) {
		if b := j.trace.Bytes(); len(b) > 0 {
			s.flight.pin(j.id, b)
			entry.TracePinned = true
		}
	}
	s.flight.record(entry)
	s.log.Info("job finished", "job_id", j.id, "request_id", j.requestID,
		"outcome", out.Status, "grid", entry.Grid, "engine", entry.Engine,
		"partial", entry.Partial, "final_lb", entry.FinalLB,
		"queue_wait_ms", j.queueWait.Milliseconds(), "solve_ms", solve.Milliseconds(),
		"trace_pinned", entry.TracePinned)

	s.mu.Lock()
	s.finishLocked(j, out)
	s.mu.Unlock()
}

// runBatch executes one batch job: every function through one
// core.SynthesizeMulti call under the job context. A finished batch is
// cached whole under the batch key AND unpacked per function, so later
// single-function requests for anything the batch contained hit the
// cache instead of re-solving.
func (s *Server) runBatch(j *job) {
	var jobSpan *obsv.Span
	s.mu.Lock()
	if j.ctx.Err() == context.Canceled {
		s.finishLocked(j, &outcome{Status: StatusCanceled, Error: "canceled while queued"})
		s.mu.Unlock()
		s.flight.record(FlightEntry{
			Time: j.enqueued, RequestID: j.requestID, JobID: j.id,
			FnKey: fnPrefix(j.bp.fnKey), Outcome: StatusCanceled,
			Error: "canceled while queued", TotalNS: int64(time.Since(j.enqueued)),
		})
		s.log.Info("batch canceled while queued", "job_id", j.id, "request_id", j.requestID)
		return
	}
	j.status = StatusRunning
	j.queueWait = time.Since(j.enqueued)
	if s.cfg.TraceJobs > 0 {
		j.trace = obsv.NewTraceBuffer(s.cfg.TraceSpans, s.cfg.TraceBytes)
		tracer := obsv.NewTracer(j.trace)
		if j.traceCtx.Valid() {
			tracer.SetTrace(j.traceCtx.TraceID, "janusd")
		}
		jobSpan = obsv.StartRemote(tracer, j.traceCtx.Parent, "BatchJob")
	}
	tq := s.sched.tenant(j.tenant)
	s.mu.Unlock()
	hQueueWaitNS.Observe(int64(j.queueWait))
	tq.observeQueueWait("synthesize_batch", j.queueWait)

	jobSpan.SetStr("job_id", j.id)
	jobSpan.SetStr("request_id", j.requestID)
	jobSpan.SetStr("fn_key", fnPrefix(j.bp.fnKey))
	jobSpan.SetInt("outputs", int64(len(j.bp.fns)))
	jobSpan.SetInt("queue_wait_ns", int64(j.queueWait))
	ctx := obsv.ContextWithRequestID(j.ctx, j.requestID)
	if jobSpan != nil {
		ctx = obsv.ContextWithSpan(obsv.ContextWithTracer(ctx, jobSpan.Tracer()), jobSpan)
	}

	gRunning.Add(1)
	started := time.Now()
	covers := make([]cube.Cover, len(j.bp.fns))
	for i, p := range j.bp.fns {
		covers[i] = p.cover
	}
	opt := j.bp.coreOptions(s.cfg.BatchReduceBudget)
	opt.Ctx = ctx
	opt.Workers = s.cfg.SynthWorkers
	opt.Deadline = j.deadline
	mr, err := s.synthMulti(covers, opt, j.bp.reduce)
	solve := time.Since(started)
	gRunning.Add(-1)
	hSolveNS.Observe(int64(solve))
	ctxErr := j.ctx.Err() // read before cancel() makes it context.Canceled
	j.cancel()

	var out *outcome
	switch {
	case err != nil && ctxErr == context.Canceled:
		mCanceled.Inc()
		out = &outcome{Status: StatusCanceled, Error: "canceled"}
	case err != nil:
		mJobErrors.Inc()
		out = &outcome{Status: StatusError, Error: err.Error()}
	default:
		mJobsDone.Inc()
		out = &outcome{Status: StatusDone, Batch: renderBatch(mr, j.bp)}
		if ctxErr != context.Canceled {
			// Same rule as single jobs: an answer produced under less than
			// its nominal budget (cancel) must not enter the caches; a
			// deadline-bounded answer is the agreed product of this budget
			// and caches under the exact batch key.
			s.mem.put(j.key, out)
			s.disk.put(j.key, out)
			s.unpackBatch(j.bp, mr)
		}
	}
	jobSpan.SetStr("outcome", out.Status)
	if out.Batch != nil {
		jobSpan.SetInt("size", int64(out.Batch.Size))
		jobSpan.SetInt("lm_solved", int64(out.Batch.LMSolved))
	}
	jobSpan.End()

	total := j.queueWait + solve
	tq.observeE2E("synthesize_batch", total)
	entry := FlightEntry{
		Time: j.enqueued, RequestID: j.requestID, JobID: j.id,
		FnKey: fnPrefix(j.bp.fnKey), Outcome: out.Status, Error: out.Error,
		QueueWaitNS: int64(j.queueWait), SolveNS: int64(solve), TotalNS: int64(total),
	}
	if out.Batch != nil {
		entry.Grid = out.Batch.Sol
		entry.FinalUB = out.Batch.Size
		entry.Engine = out.Batch.Engine
	}
	if s.flight.shouldPin(out.Status, false, total) {
		if b := j.trace.Bytes(); len(b) > 0 {
			s.flight.pin(j.id, b)
			entry.TracePinned = true
		}
	}
	s.flight.record(entry)
	s.log.Info("batch finished", "job_id", j.id, "request_id", j.requestID,
		"outcome", out.Status, "outputs", len(j.bp.fns), "grid", entry.Grid,
		"tenant", j.tenant, "queue_wait_ms", j.queueWait.Milliseconds(),
		"solve_ms", solve.Milliseconds())

	s.mu.Lock()
	s.finishLocked(j, out)
	s.mu.Unlock()
}

// unpackBatch stores each converged per-output answer under the cache
// identity a single-function request with the same options and budget
// would use. A non-partial part's bounds met, so it is provably minimum
// in the candidate space regardless of how the search was bounded —
// exactly what a dedicated single run would have produced. Partial
// parts are skipped: the batch's shared deadline says nothing about
// what a dedicated budget would have bought that function.
func (s *Server) unpackBatch(pb *parsedBatch, mr *core.MultiResult) {
	for i, p := range pb.fns {
		r := mr.Parts[i]
		if r.Partial || r.Assignment == nil {
			continue
		}
		out := &outcome{Status: StatusDone, Result: renderResult(r, p.names)}
		s.mem.put(p.key, out)
		s.disk.put(p.key, out)
		s.recordBudget(p, r.MatchedLB)
		mBatchUnpacked.Inc()
	}
}

// finishLocked publishes a terminal outcome: the key frees for new
// submissions, waiters wake, and the job stays pollable within the
// retention window.
func (s *Server) finishLocked(j *job, out *outcome) {
	j.out = out
	j.status = out.Status
	delete(s.inflight, j.key)
	s.doneOrder = append(s.doneOrder, j.id)
	for len(s.doneOrder) > retainJobs {
		delete(s.jobs, s.doneOrder[0])
		s.doneOrder = s.doneOrder[1:]
	}
	// Traces are retained on a shorter window than job states: beyond
	// TraceJobs finished jobs only the flight recorder's pins survive.
	if j.trace != nil {
		s.traceOrder = append(s.traceOrder, j.id)
		for len(s.traceOrder) > s.cfg.TraceJobs {
			if oj, ok := s.jobs[s.traceOrder[0]]; ok {
				oj.trace = nil
			}
			s.traceOrder = s.traceOrder[1:]
		}
	}
	close(j.done)
}

// Errors JobTrace distinguishes for the HTTP layer.
var (
	// ErrUnknownJob: no job with that id (never existed or retention
	// evicted it).
	ErrUnknownJob = fmt.Errorf("service: unknown job")
	// ErrNotFinished: the job exists but has not reached a terminal
	// status; its trace is still being written.
	ErrNotFinished = fmt.Errorf("service: job not finished")
	// ErrNoTrace: the job finished but no trace is retained (tracing
	// disabled, or evicted from the TraceJobs window without a pin).
	ErrNoTrace = fmt.Errorf("service: no trace retained")
)

// JobTrace returns a finished job's span trace as JSONL (the schema
// obsv.ValidateTrace checks). Pinned traces in the flight recorder are
// consulted as a fallback, so slow or failed jobs stay inspectable after
// the normal retention window moves past them.
func (s *Server) JobTrace(id string) ([]byte, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	var buf *obsv.TraceBuffer
	var finished bool
	if ok {
		finished = j.out != nil
		buf = j.trace
	}
	s.mu.Unlock()
	if !ok {
		if b, pinned := s.flight.pinnedTrace(id); pinned {
			return b, nil
		}
		return nil, ErrUnknownJob
	}
	if !finished {
		return nil, ErrNotFinished
	}
	if buf == nil {
		if b, pinned := s.flight.pinnedTrace(id); pinned {
			return b, nil
		}
		return nil, ErrNoTrace
	}
	return buf.Bytes(), nil
}

// Flight returns the flight recorder's current contents (empty when the
// recorder is disabled).
func (s *Server) Flight() FlightDump {
	return s.flight.dump()
}

// FlightEnabled reports whether the recorder is on.
func (s *Server) FlightEnabled() bool { return s.flight != nil }

// Stats is the /healthz and /v1/stats body.
type Stats struct {
	Draining      bool  `json:"draining"`
	QueueDepth    int   `json:"queue_depth"`
	QueueCapacity int   `json:"queue_capacity"`
	Running       int64 `json:"running_jobs"`
	Workers       int   `json:"workers"`
	DiskEntries   int   `json:"disk_entries"`
	MemoLoaded    int64 `json:"memo_paths_loaded"`
	TracedJobs    int   `json:"traced_jobs"`
	// Scheduler is the fairness counter block: per-tenant queue depths,
	// shares, and admit/shed/complete counters, plus the DRR round and
	// affinity totals. Optional on the wire (older daemons omit it).
	Scheduler *SchedulerStats `json:"scheduler,omitempty"`
	// SLOs carries the per-endpoint burn-rate snapshots (omitted on
	// /healthz responses from older daemons; clients must treat it as
	// optional).
	SLOs []obsv.SLOSnapshot `json:"slos,omitempty"`
}

// Stats reports queue health and the endpoint SLO burn rates.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	draining := s.draining
	depth := s.sched.total
	traced := len(s.traceOrder)
	sched := s.sched.stats()
	s.mu.Unlock()
	return Stats{
		Draining: draining, QueueDepth: depth, QueueCapacity: s.cfg.QueueDepth,
		Running: gRunning.Value(), Workers: s.cfg.Workers,
		DiskEntries: s.disk.len(), MemoLoaded: gMemoLoaded.Value(),
		TracedJobs: traced, Scheduler: &sched,
		SLOs: []obsv.SLOSnapshot{s.sloSynth.Snapshot(), s.sloJobs.Snapshot(),
			s.sloFirstMap.Snapshot()},
	}
}

// Shutdown stops admission, drains the queue (accepted jobs finish), and
// persists the memo path snapshot. If ctx ends first, in-flight
// syntheses are cancelled cooperatively and Shutdown returns once they
// unwind. Safe to call once.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil
	}
	s.draining = true
	depth := s.sched.total
	// Wake every waiting worker: each drains remaining queued jobs and
	// exits once the scheduler is empty.
	s.cond.Broadcast()
	s.mu.Unlock()
	s.log.Info("draining", "queue_depth", depth)

	drained := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(drained)
	}()
	var err error
	select {
	case <-drained:
	case <-ctx.Done():
		err = ctx.Err()
		s.baseCancel() // hard stop: interrupt running solvers
		<-drained
	}
	s.baseCancel()
	if s.memoPath != "" {
		if serr := memo.SavePathsFile(s.memoPath); serr != nil && err == nil {
			err = serr
		}
	}
	return err
}
