package service

import "time"

// The result cache keys answers by (function, budget): a tighter budget
// may legitimately settle for a larger lattice, so answers under
// different budgets are different answers. But that exactness used to
// cut both ways — a request with a generous timeout could not reuse an
// answer the server had already proved optimal under a stingier one,
// and re-ran an hours-long synthesis to reproduce a result it already
// held. The budget index fixes that with two sound cross-budget reuse
// rules, checked only after the exact key misses:
//
//  1. The stored answer matched the theoretical lower bound
//     (MatchedLB) and was computed under a budget no larger than the
//     request's. An LB-matching answer is globally optimal; more
//     budget cannot improve it. (Smaller stored budget is required
//     only to keep rule 2 from shadowing it — any MatchedLB answer is
//     actually reusable, and rule 2 covers the rest.)
//  2. The stored answer was computed under a budget at least as large
//     as the request's, componentwise. Whatever the bigger budget
//     produced, the smaller one could not have done better.
//
// Budgets are compared componentwise over (MaxConflicts, effective
// timeout); MaxConflicts = 0 means unlimited and dominates every
// finite bound (maxConflictsNorm), and the timeout is resolved against
// the server default/cap so "0" and "300000ms" under a 5m default
// compare equal.

// budgetEntry records one finished answer under fnKey: the exact cache
// key it was stored under and the budget it was computed with.
type budgetEntry struct {
	key       string
	mc        int64         // normalized MaxConflicts
	timeout   time.Duration // effective (default/cap-resolved) timeout
	matchedLB bool
}

// maxBudgetEntries caps the per-function list; distinct budgets for one
// function are rare, so eviction (oldest first) is almost theoretical.
const maxBudgetEntries = 16

// budgetOf resolves a parsed request onto the comparable budget scale.
func (s *Server) budgetOf(p *parsedRequest) (mc int64, timeout time.Duration) {
	return maxConflictsNorm(p.req.MaxConflicts),
		p.timeout(s.cfg.DefaultTimeout, s.cfg.MaxTimeout)
}

// recordBudget indexes a finished done-outcome for cross-budget reuse.
func (s *Server) recordBudget(p *parsedRequest, matchedLB bool) {
	mc, timeout := s.budgetOf(p)
	s.recordBudgetRaw(p.fnKey, p.key, mc, timeout, matchedLB)
}

// recordBudgetRaw indexes an answer by its already-normalized budget —
// the peer-fill path uses this directly, because the budget a peer's
// answer was computed under is not this request's budget.
func (s *Server) recordBudgetRaw(fnKey, key string, mc int64, timeout time.Duration, matchedLB bool) {
	s.budMu.Lock()
	defer s.budMu.Unlock()
	list := s.budgets[fnKey]
	for i := range list {
		if list[i].key == key {
			list[i] = budgetEntry{key: key, mc: mc, timeout: timeout, matchedLB: matchedLB}
			return
		}
	}
	list = append(list, budgetEntry{key: key, mc: mc, timeout: timeout, matchedLB: matchedLB})
	if len(list) > maxBudgetEntries {
		list = list[len(list)-maxBudgetEntries:]
	}
	s.budgets[fnKey] = list
}

// budgetHit serves a request from an answer stored under a different
// budget when one of the reuse rules applies.
func (s *Server) budgetHit(p *parsedRequest) (*outcome, string, bool) {
	out, _, where, ok := s.budgetMatchWhere(p)
	return out, where, ok
}

// budgetMatch is budgetHit plus the matched index entry, for callers
// (the peer cache-lookup endpoint) that need the answer's own budget
// identity, not just its bytes.
func (s *Server) budgetMatch(p *parsedRequest) (*outcome, budgetEntry, bool) {
	out, e, _, ok := s.budgetMatchWhere(p)
	return out, e, ok
}

// budgetMatchWhere applies the reuse rules against the budget index.
// Entries whose answers have aged out of both cache tiers are pruned as
// they are discovered.
func (s *Server) budgetMatchWhere(p *parsedRequest) (*outcome, budgetEntry, string, bool) {
	reqMC, reqTO := s.budgetOf(p)
	s.budMu.Lock()
	candidates := append([]budgetEntry(nil), s.budgets[p.fnKey]...)
	s.budMu.Unlock()
	for _, e := range candidates {
		if e.key == p.key {
			continue // the exact key already missed
		}
		optimal := e.matchedLB && e.mc <= reqMC && e.timeout <= reqTO
		dominates := e.mc >= reqMC && e.timeout >= reqTO
		if !optimal && !dominates {
			continue
		}
		if out, where, ok := s.cached(e.key); ok {
			mBudgetHits.Inc()
			return out, e, where, true
		}
		s.dropBudget(p.fnKey, e.key)
	}
	return nil, budgetEntry{}, "", false
}

// dropBudget removes a stale entry whose cached answer is gone.
func (s *Server) dropBudget(fnKey, key string) {
	s.budMu.Lock()
	defer s.budMu.Unlock()
	list := s.budgets[fnKey]
	for i := range list {
		if list[i].key == key {
			s.budgets[fnKey] = append(list[:i], list[i+1:]...)
			return
		}
	}
}
