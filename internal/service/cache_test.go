package service

import (
	"context"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"github.com/lattice-tools/janus/internal/core"
	"github.com/lattice-tools/janus/internal/cube"
)

func doneOutcome(size int) *outcome {
	return &outcome{Status: StatusDone, Result: &ResultJSON{M: size, N: 1, Size: size}}
}

func TestMemCacheLRU(t *testing.T) {
	c := newMemCache(2)
	c.put("a", doneOutcome(1))
	c.put("b", doneOutcome(2))
	if _, ok := c.get("a"); !ok {
		t.Fatal("a evicted too early")
	}
	c.put("c", doneOutcome(3)) // evicts b (a was touched)
	if _, ok := c.get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	if _, ok := c.get("a"); !ok {
		t.Fatal("a lost")
	}
	if out, ok := c.get("c"); !ok || out.Result.Size != 3 {
		t.Fatal("c lost")
	}
}

func TestDiskCacheRoundtrip(t *testing.T) {
	dir := t.TempDir()
	c, err := openDiskCache(dir, 16, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	c.put("k1", doneOutcome(8))
	out, ok := c.get("k1")
	if !ok || out.Result.Size != 8 {
		t.Fatalf("roundtrip: ok=%v out=%+v", ok, out)
	}
	// Non-done outcomes are never persisted.
	c.put("k2", &outcome{Status: StatusCanceled})
	if _, ok := c.get("k2"); ok {
		t.Fatal("canceled outcome persisted")
	}

	// A second open (a "restart") sees the entry.
	c2, err := openDiskCache(dir, 16, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if out, ok := c2.get("k1"); !ok || out.Result.Size != 8 {
		t.Fatal("entry lost across reopen")
	}
	// No temp files left behind by the atomic writer.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if filepath.Ext(e.Name()) == ".tmp" {
			t.Fatalf("temp file %q left behind", e.Name())
		}
	}
}

// TestDiskCacheCorruptRecovery: a torn or hand-edited entry is detected,
// counted, deleted, and treated as a miss — and the slot is reusable.
func TestDiskCacheCorruptRecovery(t *testing.T) {
	dir := t.TempDir()
	c, err := openDiskCache(dir, 16, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	c.put("k1", doneOutcome(8))
	if err := os.WriteFile(filepath.Join(dir, "k1.json"), []byte(`{"status":"done","res`), 0o644); err != nil {
		t.Fatal(err)
	}
	before := mDiskCorrupt.Value()
	if _, ok := c.get("k1"); ok {
		t.Fatal("corrupt entry served")
	}
	if mDiskCorrupt.Value() != before+1 {
		t.Fatal("corruption not counted")
	}
	if _, err := os.Stat(filepath.Join(dir, "k1.json")); !os.IsNotExist(err) {
		t.Fatalf("corrupt file not removed: %v", err)
	}
	// Same key works again after the bad entry is purged.
	c.put("k1", doneOutcome(9))
	if out, ok := c.get("k1"); !ok || out.Result.Size != 9 {
		t.Fatal("slot unusable after corruption recovery")
	}
}

// TestDiskCacheEntryBound: the entry budget evicts the least recently
// used files, both on write and when reopening an over-full directory.
func TestDiskCacheEntryBound(t *testing.T) {
	dir := t.TempDir()
	c, err := openDiskCache(dir, 2, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	c.put("k1", doneOutcome(1))
	c.put("k2", doneOutcome(2))
	c.get("k1") // touch: k2 is now LRU
	c.put("k3", doneOutcome(3))
	if c.len() != 2 {
		t.Fatalf("len = %d, want 2", c.len())
	}
	if _, ok := c.get("k2"); ok {
		t.Fatal("k2 should have been evicted")
	}
	if _, err := os.Stat(filepath.Join(dir, "k2.json")); !os.IsNotExist(err) {
		t.Fatal("evicted entry's file not deleted")
	}

	// Reopen with a tighter bound: the open prunes down to budget.
	c2, err := openDiskCache(dir, 1, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if c2.len() != 1 {
		t.Fatalf("reopened len = %d, want 1", c2.len())
	}
}

// TestDiskCacheByteBound: the byte budget holds even when the entry
// budget has room.
func TestDiskCacheByteBound(t *testing.T) {
	dir := t.TempDir()
	one, err := openDiskCache(dir, 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Every real entry exceeds one byte, so each put evicts its
	// predecessor; only the newest survives.
	one.put("k1", doneOutcome(1))
	time.Sleep(2 * time.Millisecond) // distinct mtimes for the reopen order
	one.put("k2", doneOutcome(2))
	if one.len() != 1 {
		t.Fatalf("len = %d, want 1 under a 1-byte budget", one.len())
	}
	if _, ok := one.get("k2"); !ok {
		t.Fatal("newest entry must survive the byte budget")
	}
}

// budgetTestServer is a server whose synth stub counts calls and
// returns a MatchedLB-controllable answer.
func budgetTestServer(t *testing.T, matchedLB bool) (*Server, *atomic.Int32) {
	t.Helper()
	s := newTestServer(t, Config{Workers: 1})
	var calls atomic.Int32
	s.synth = func(f cube.Cover, opt core.Options) (core.Result, error) {
		calls.Add(1)
		r := fakeResult()
		r.MatchedLB = matchedLB
		return r, nil
	}
	return s, &calls
}

// TestBudgetReuseMatchedLB is the budget-crossing regression test: an
// answer that matched the lower bound under a small timeout is globally
// optimal, so a later request for the same function with a much larger
// timeout must be a cache hit, not a second synthesis. Before the
// budget index, the exact (function, budget) key made the second
// request a miss.
func TestBudgetReuseMatchedLB(t *testing.T) {
	s, calls := budgetTestServer(t, true)
	first, err := s.Synthesize(context.Background(), Request{PLA: fig1PLA, TimeoutMS: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if first.Cached != "" || !first.Result.MatchedLB {
		t.Fatalf("seed request: cached=%q matchedLB=%v", first.Cached, first.Result.MatchedLB)
	}
	before := mBudgetHits.Value()
	second, err := s.Synthesize(context.Background(), Request{PLA: fig1PLA, TimeoutMS: 60 * 60 * 1000})
	if err != nil {
		t.Fatal(err)
	}
	if second.Cached != "mem" {
		t.Fatalf("large-timeout request not served from cache: cached=%q", second.Cached)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("%d syntheses, want 1 (budget reuse failed)", got)
	}
	if mBudgetHits.Value() != before+1 {
		t.Fatal("budget hit not counted")
	}
}

// TestBudgetReuseDominatingStored: an answer computed under a larger
// budget is at least as good as anything a smaller budget could find,
// MatchedLB or not.
func TestBudgetReuseDominatingStored(t *testing.T) {
	s, calls := budgetTestServer(t, false)
	if _, err := s.Synthesize(context.Background(), Request{PLA: fig1PLA, TimeoutMS: 60 * 60 * 1000}); err != nil {
		t.Fatal(err)
	}
	resp, err := s.Synthesize(context.Background(), Request{PLA: fig1PLA, TimeoutMS: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Cached != "mem" || calls.Load() != 1 {
		t.Fatalf("smaller-budget request not served from the dominating answer: cached=%q calls=%d",
			resp.Cached, calls.Load())
	}
}

// TestBudgetNoUnsoundReuse: a non-optimal answer from a smaller budget
// must NOT satisfy a larger-budget request — more budget might find a
// smaller lattice.
func TestBudgetNoUnsoundReuse(t *testing.T) {
	s, calls := budgetTestServer(t, false)
	if _, err := s.Synthesize(context.Background(), Request{PLA: fig1PLA, TimeoutMS: 1000}); err != nil {
		t.Fatal(err)
	}
	resp, err := s.Synthesize(context.Background(), Request{PLA: fig1PLA, TimeoutMS: 60 * 60 * 1000})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Cached != "" || calls.Load() != 2 {
		t.Fatalf("under-budget non-optimal answer reused unsoundly: cached=%q calls=%d",
			resp.Cached, calls.Load())
	}
	// MaxConflicts crossings behave the same way: a bounded-conflicts
	// answer must not serve an unlimited request, but the reverse reuse
	// holds (0 = unlimited dominates every bound). Fresh server so the
	// timeout-crossing answers above cannot dominate these requests.
	s, calls = budgetTestServer(t, false)
	if _, err := s.Synthesize(context.Background(), Request{PLA: fig1PLA, MaxConflicts: 100}); err != nil {
		t.Fatal(err)
	}
	resp, err = s.Synthesize(context.Background(), Request{PLA: fig1PLA})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Cached != "" || calls.Load() != 2 {
		t.Fatalf("bounded-conflicts answer served an unlimited request: cached=%q calls=%d",
			resp.Cached, calls.Load())
	}
	resp, err = s.Synthesize(context.Background(), Request{PLA: fig1PLA, MaxConflicts: 100})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Cached != "mem" || calls.Load() != 2 {
		t.Fatalf("unlimited answer must serve a bounded request: cached=%q calls=%d",
			resp.Cached, calls.Load())
	}
}

// TestDuplicateCubeKey: a PLA that repeats a cube denotes the same
// function, so both spellings must share the canonical key and hit the
// same cache slot. Before dedup, the repeated cube hashed into the key
// and the redundant spelling missed the cache and dodged coalescing.
func TestDuplicateCubeKey(t *testing.T) {
	dup := ".i 4\n.o 1\n1111 1\n0000 1\n1111 1\n.e\n"
	a, err := parseRequest(Request{PLA: fig1PLA})
	if err != nil {
		t.Fatal(err)
	}
	b, err := parseRequest(Request{PLA: dup})
	if err != nil {
		t.Fatal(err)
	}
	if a.fnKey != b.fnKey || a.key != b.key {
		t.Fatal("repeated cube must not change the canonical key")
	}

	s, calls := budgetTestServer(t, false)
	if _, err := s.Synthesize(context.Background(), Request{PLA: fig1PLA}); err != nil {
		t.Fatal(err)
	}
	resp, err := s.Synthesize(context.Background(), Request{PLA: dup})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Cached != "mem" || calls.Load() != 1 {
		t.Fatalf("redundant spelling missed the cache: cached=%q calls=%d", resp.Cached, calls.Load())
	}
}
