package service

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"time"

	"github.com/lattice-tools/janus/internal/core"
	"github.com/lattice-tools/janus/internal/pla"
)

// Batch synthesis: POST /v1/synthesize/batch routes a multi-function
// workload through core.SynthesizeMulti (JANUS-MF) instead of N
// independent jobs. The win is twofold: the per-output searches run
// with the dichotomic-search bound disabled (the packing plus the
// shared row-reduction subsumes its role, and the reduction is capped
// by Config.BatchReduceBudget), so a batch spends fewer LM solves than
// the same functions submitted independently; and every converged
// per-output answer is unpacked into the single-function cache under
// exactly the key a later single request would use, so the batch
// pre-warms the whole fleet of functions it contains.
//
// A batch is one job: it occupies one worker slot, one queue slot, and
// one tenant dispatch unit, and identical concurrent batches coalesce
// through the same in-flight map as single jobs.

// maxBatchFunctions bounds one batch. A batch holds one worker for its
// whole runtime, so "more functions" trades latency for solver savings;
// past this the caller should split.
const maxBatchFunctions = 64

// maxBatchBodyBytes bounds the batch request payload: a batch carries
// up to maxBatchFunctions PLA texts, so it gets proportionally more
// room than the single-function limit.
const maxBatchBodyBytes = 4 << 20

// BatchFunction is one target inside a batch: a single-output function
// selected from a PLA text, exactly like Request.
type BatchFunction struct {
	PLA    string `json:"pla"`
	Output int    `json:"output,omitempty"`
}

// BatchRequest is the POST /v1/synthesize/batch payload. The synthesis
// knobs (engine, budgets) apply to the batch as a whole — one batch is
// one job with one deadline.
type BatchRequest struct {
	// Functions lists the targets. Exactly one of Functions / PLA must
	// be set.
	Functions []BatchFunction `json:"functions,omitempty"`
	// PLA is multi-output sugar: every output of one PLA text becomes
	// one batch function, in output order.
	PLA string `json:"pla,omitempty"`
	// Reduce runs the shared row-reduction over the packed lattice
	// (JANUS-MF's DS phase); nil means true. It is part of the batch
	// identity: reduced and unreduced batches are different answers.
	Reduce *bool `json:"reduce,omitempty"`
	// The remaining knobs mirror Request and apply to every function.
	CEGAR        bool   `json:"cegar,omitempty"`
	Portfolio    bool   `json:"portfolio,omitempty"`
	Engine       string `json:"engine,omitempty"`
	MaxConflicts int64  `json:"max_conflicts,omitempty"`
	TimeoutMS    int64  `json:"timeout_ms,omitempty"`
	Async        bool   `json:"async,omitempty"`
}

// BatchResultJSON is the wire form of a finished batch: the packed
// multi-function lattice's shape and cost, plus the per-output results
// index-aligned with the request's functions.
type BatchResultJSON struct {
	Outputs int `json:"outputs"`
	Rows    int `json:"rows"`
	Cols    int `json:"cols"`
	// Size is the packed lattice's total switch count; Sol formats the
	// shape like the paper's Table III ("3x135").
	Size int    `json:"size"`
	Sol  string `json:"sol"`
	// Reduced reports whether the shared row-reduction ran.
	Reduced bool `json:"reduced"`
	// LMSolved is the total LM solve count across every per-output
	// search and the shared reduction — the number to compare against
	// the sum of lm_solved over independent submissions.
	LMSolved  int    `json:"lm_solved"`
	Engine    string `json:"engine,omitempty"`
	ElapsedNS int64  `json:"elapsed_ns"`
	// Parts are the per-output results, each with its own standalone
	// lattice (the pre-packing answers, which is also what the batch
	// unpacks into the single-function cache).
	Parts []*ResultJSON `json:"parts"`
}

// parsedBatch is a validated BatchRequest: the per-function views (each
// exactly the parsedRequest a single submission of that function with
// the batch's options and budgets would produce — that equivalence is
// what makes cache unpacking sound) plus the batch's own identity.
type parsedBatch struct {
	req    BatchRequest
	fns    []*parsedRequest
	reduce bool
	// fnKey is the budget-free batch identity a sharding front routes
	// on; key adds the budget fields (the coalescing/cache identity).
	fnKey string
	key   string
}

// BatchKeyOf validates a batch request and returns its budget-free
// canonical key — the routing identity for a sharding front tier,
// mirroring FnKeyOf.
func BatchKeyOf(req BatchRequest) (string, error) {
	pb, err := parseBatch(req)
	if err != nil {
		return "", err
	}
	return pb.fnKey, nil
}

// parseBatch validates the payload and derives the canonical keys.
func parseBatch(req BatchRequest) (*parsedBatch, error) {
	fns := req.Functions
	if req.PLA != "" {
		if len(fns) > 0 {
			return nil, fmt.Errorf("set either pla or functions, not both")
		}
		f, err := pla.ParseString(req.PLA)
		if err != nil {
			return nil, err
		}
		for i := range f.Covers {
			fns = append(fns, BatchFunction{PLA: req.PLA, Output: i})
		}
	}
	if len(fns) == 0 {
		return nil, fmt.Errorf("empty batch")
	}
	if len(fns) > maxBatchFunctions {
		return nil, fmt.Errorf("batch of %d functions exceeds the limit of %d",
			len(fns), maxBatchFunctions)
	}
	pb := &parsedBatch{req: req, reduce: req.Reduce == nil || *req.Reduce}
	for i, fn := range fns {
		p, err := parseRequest(Request{
			PLA: fn.PLA, Output: fn.Output,
			CEGAR: req.CEGAR, Portfolio: req.Portfolio, Engine: req.Engine,
			MaxConflicts: req.MaxConflicts, TimeoutMS: req.TimeoutMS,
		})
		if err != nil {
			return nil, fmt.Errorf("function %d: %w", i, err)
		}
		pb.fns = append(pb.fns, p)
	}
	pb.fnKey = batchFnKey(pb.fns, pb.reduce)
	pb.key = canonicalKey(pb.fnKey, Request{
		MaxConflicts: req.MaxConflicts, TimeoutMS: req.TimeoutMS,
	})
	return pb, nil
}

// batchFnKey hashes the ordered per-function keys plus the reduce flag.
// Order matters on purpose: packing is order-dependent, so the same
// functions in a different order are a different (equally valid) batch.
// The "batch" prefix keeps the batch keyspace disjoint from single
// fnKeys even for a one-function batch.
func batchFnKey(fns []*parsedRequest, reduce bool) string {
	h := sha256.New()
	h.Write([]byte("batch\x00"))
	for _, p := range fns {
		h.Write([]byte(p.fnKey))
	}
	if reduce {
		h.Write([]byte{1})
	} else {
		h.Write([]byte{0})
	}
	return hex.EncodeToString(h.Sum(nil))
}

// coreOptions builds the batch's synthesis options: the shared knobs
// from any per-function view, plus the batch stance — dichotomic-search
// bounds off (packing + shared reduction subsume them) and the
// reduction capped so it can never spend more solves shrinking the
// lattice than the disabled bounds saved.
func (pb *parsedBatch) coreOptions(reduceBudget int) core.Options {
	opt := pb.fns[0].coreOptions()
	opt.DisableDS = true
	opt.MFReduceBudget = reduceBudget
	return opt
}

// timeout resolves the batch's deadline budget like a single request's.
func (pb *parsedBatch) timeout(def, max time.Duration) time.Duration {
	return pb.fns[0].timeout(def, max)
}

// renderBatch converts a core multi-result to the wire form.
func renderBatch(mr *core.MultiResult, pb *parsedBatch) *BatchResultJSON {
	out := &BatchResultJSON{
		Outputs: len(pb.fns),
		Rows:    mr.Lattice.Rows(), Cols: mr.Lattice.Cols(),
		Size: mr.Lattice.Size(), Sol: mr.Sol(),
		Reduced: pb.reduce, LMSolved: mr.LMSolved,
		Engine: mr.Engine, ElapsedNS: int64(mr.Elapsed),
	}
	for i, r := range mr.Parts {
		out.Parts = append(out.Parts, renderResult(r, pb.fns[i].names))
	}
	return out
}
