package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/lattice-tools/janus/internal/core"
	"github.com/lattice-tools/janus/internal/cube"
	"github.com/lattice-tools/janus/internal/obsv"
)

// TestJobTraceEndpoint: a real synthesis served over HTTP must leave a
// retrievable, schema-valid JSONL trace whose root Job span carries the
// request id and nests the core Synthesize span.
func TestJobTraceEndpoint(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := NewClient(ts.URL)
	ctx := context.Background()

	resp, err := c.Synthesize(ctx, Request{PLA: fig1PLA, CEGAR: true})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != StatusDone || resp.JobID == "" {
		t.Fatalf("synthesis: %+v", resp)
	}
	if resp.RequestID == "" {
		t.Fatal("response carries no request id")
	}

	raw, err := c.JobTrace(ctx, resp.JobID)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := obsv.ValidateTrace(bytes.NewReader(raw)); err != nil {
		t.Fatalf("trace fails schema validation: %v", err)
	}
	recs, err := obsv.ReadTrace(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string][]obsv.Record{}
	for _, r := range recs {
		byName[r.Span] = append(byName[r.Span], r)
	}
	jobs := byName["Job"]
	if len(jobs) != 1 {
		t.Fatalf("%d Job root spans, want 1", len(jobs))
	}
	job := jobs[0]
	if job.Parent != 0 {
		t.Fatal("Job span is not a root")
	}
	if job.Attrs["request_id"] != resp.RequestID {
		t.Fatalf("Job request_id attr = %v, want %q", job.Attrs["request_id"], resp.RequestID)
	}
	if job.Attrs["job_id"] != resp.JobID {
		t.Fatalf("Job job_id attr = %v, want %q", job.Attrs["job_id"], resp.JobID)
	}
	synths := byName["Synthesize"]
	if len(synths) != 1 || synths[0].Parent != job.ID {
		t.Fatalf("Synthesize spans %+v must nest under Job %d", synths, job.ID)
	}
	if len(byName["SatSolve"]) == 0 {
		t.Fatal("trace has no SatSolve leaf spans")
	}

	// An unknown job 404s; an in-flight one would 409 (not exercised here).
	if _, err := c.JobTrace(ctx, "jnope-1"); err == nil {
		t.Fatal("unknown job trace must fail")
	} else {
		var ae *APIError
		if !errors.As(err, &ae) || ae.Code != http.StatusNotFound {
			t.Fatalf("unknown job trace error = %v, want 404", err)
		}
	}
}

// TestTraceRetention: only the TraceJobs most recent finished jobs keep
// their buffers; older ones answer ErrNoTrace (the job itself stays
// pollable far longer).
func TestTraceRetention(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, TraceJobs: 2, SlowTrace: -1})
	s.synth = func(f cube.Cover, opt core.Options) (core.Result, error) {
		return fakeResult(), nil
	}
	var ids []string
	for i := 0; i < 4; i++ {
		pla := fmt.Sprintf(".i 4\n.o 1\n%04b 1\n.e\n", i+1)
		resp, err := s.Synthesize(context.Background(), Request{PLA: pla})
		if err != nil {
			t.Fatal(err)
		}
		if resp.JobID == "" || resp.Status != StatusDone {
			t.Fatalf("job %d: %+v", i, resp)
		}
		ids = append(ids, resp.JobID)
	}
	for _, id := range ids[:2] {
		if _, err := s.JobTrace(id); !errors.Is(err, ErrNoTrace) {
			t.Fatalf("evicted job %s trace err = %v, want ErrNoTrace", id, err)
		}
	}
	for _, id := range ids[2:] {
		raw, err := s.JobTrace(id)
		if err != nil {
			t.Fatalf("retained job %s: %v", id, err)
		}
		if _, err := obsv.ValidateTrace(bytes.NewReader(raw)); err != nil {
			t.Fatalf("retained trace invalid: %v", err)
		}
	}
	if st := s.Stats(); st.TracedJobs != 2 {
		t.Fatalf("Stats.TracedJobs = %d, want 2", st.TracedJobs)
	}
}

// TestFlightRecorder: the ring must contain the slow job (with its trace
// pinned), the shed 429, and the coalesced follower pointing at its
// leader — the incident-replay triple the recorder exists for.
func TestFlightRecorder(t *testing.T) {
	// SlowTrace 1ns: every finished job counts as slow and pins its trace.
	s := newTestServer(t, Config{Workers: 1, QueueDepth: 1, SlowTrace: time.Nanosecond})
	gate := make(chan struct{})
	s.synth = func(f cube.Cover, opt core.Options) (core.Result, error) {
		<-gate
		return fakeResult(), nil
	}

	// Leader plus one coalesced follower on the same function.
	var wg sync.WaitGroup
	resps := make([]*Response, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resps[i], _ = s.Synthesize(context.Background(), fig1Request())
		}(i)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		s.mu.Lock()
		var waiters int
		for _, j := range s.inflight {
			waiters = j.waiters
		}
		s.mu.Unlock()
		if waiters == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("follower did not coalesce")
		}
		time.Sleep(time.Millisecond)
	}
	// Worker busy on the leader; fill the queue slot, then overflow it.
	if _, err := s.Synthesize(context.Background(),
		Request{PLA: ".i 2\n.o 1\n11 1\n.e\n", Async: true}); err != nil {
		t.Fatal(err)
	}
	_, shedErr := s.Synthesize(context.Background(), Request{PLA: ".i 2\n.o 1\n00 1\n.e\n"})
	if !errors.Is(shedErr, ErrBusy) {
		t.Fatalf("overflow returned %v, want ErrBusy", shedErr)
	}
	close(gate)
	wg.Wait()

	dump := s.Flight()
	var slow, shed, coalesced *FlightEntry
	for i := range dump.Entries {
		e := &dump.Entries[i]
		switch {
		case e.Outcome == outcomeShed:
			shed = e
		case e.CoalescedInto != "":
			coalesced = e
		}
	}
	if shed == nil {
		t.Fatalf("no shed entry in %+v", dump.Entries)
	}
	if shed.RequestID == "" {
		t.Fatal("shed entry has no request id")
	}
	if coalesced == nil {
		t.Fatal("no coalesced follower entry")
	}
	// The leader's own entry: done, trace pinned by the 1ns slow rule.
	for i := range dump.Entries {
		e := &dump.Entries[i]
		if e.JobID == coalesced.CoalescedInto && e.CoalescedInto == "" {
			slow = e
		}
	}
	if slow == nil {
		t.Fatalf("no leader entry for job %q", coalesced.CoalescedInto)
	}
	if slow.Outcome != StatusDone || !slow.TracePinned {
		t.Fatalf("leader entry not a pinned done job: %+v", slow)
	}

	// The pinned trace outlives the retention window: zero TraceJobs-style
	// eviction is simulated by asking through the pin fallback directly.
	raw, ok := s.flight.pinnedTrace(slow.JobID)
	if !ok {
		t.Fatal("slow job trace not pinned")
	}
	if _, err := obsv.ValidateTrace(bytes.NewReader(raw)); err != nil {
		t.Fatalf("pinned trace invalid: %v", err)
	}
}

// TestRequestIDPropagation: an inbound X-Request-Id must be echoed on
// the response header and body and stamped into the job trace; garbage
// headers are replaced with a minted id; error bodies carry the id too.
func TestRequestIDPropagation(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	s.synth = func(f cube.Cover, opt core.Options) (core.Result, error) {
		return fakeResult(), nil
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	post := func(id, body string) (*http.Response, string) {
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/synthesize",
			strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		if id != "" {
			req.Header.Set("X-Request-Id", id)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp, string(b)
	}

	okBody := fmt.Sprintf(`{"pla": %q}`, fig1PLA)
	resp, body := post("my-req-007", okBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Request-Id"); got != "my-req-007" {
		t.Fatalf("header id = %q, want my-req-007", got)
	}
	if !strings.Contains(body, `"request_id":"my-req-007"`) {
		t.Fatalf("body missing request id: %s", body)
	}
	// The id reached the job trace through the context.
	var jobID string
	s.mu.Lock()
	for _, id := range s.traceOrder {
		jobID = id
	}
	s.mu.Unlock()
	raw, err := s.JobTrace(jobID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(raw, []byte(`"request_id":"my-req-007"`)) {
		t.Fatalf("trace missing inbound request id: %s", raw)
	}

	// A header outside the sanitizer's alphabet is discarded, not echoed.
	resp, _ = post("evil id %00", okBody)
	if got := resp.Header.Get("X-Request-Id"); got == "" || strings.Contains(got, "evil") {
		t.Fatalf("unsanitized header echoed as %q", got)
	}

	// Errors carry the id in the body so a 4xx is traceable too.
	resp, body = post("bad-pla-req", `{"pla": ".i oops"}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad PLA status = %d", resp.StatusCode)
	}
	if !strings.Contains(body, `"request_id":"bad-pla-req"`) {
		t.Fatalf("error body missing request id: %s", body)
	}
}

// TestHealthzDraining: /healthz must stay reachable during a drain and
// report 503 with draining=true and live queue numbers, so load
// balancers stop routing before the listener goes away.
func TestHealthzDraining(t *testing.T) {
	s, err := NewServer(Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	started := make(chan struct{})
	release := make(chan struct{})
	s.synth = func(f cube.Cover, opt core.Options) (core.Result, error) {
		close(started)
		<-release
		return fakeResult(), nil
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if _, err := s.Synthesize(context.Background(), Request{PLA: fig1PLA, Async: true}); err != nil {
		t.Fatal(err)
	}
	<-started

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownDone <- s.Shutdown(ctx)
	}()

	// While the job holds the drain open, /healthz must answer 503.
	c := NewClient(ts.URL)
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, err := c.Health(context.Background())
		var ae *APIError
		if errors.As(err, &ae) && ae.Code == http.StatusServiceUnavailable {
			var st Stats
			resp, gerr := http.Get(ts.URL + "/healthz")
			if gerr != nil {
				t.Fatal(gerr)
			}
			if derr := jsonDecode(resp.Body, &st); derr != nil {
				t.Fatal(derr)
			}
			resp.Body.Close()
			if !st.Draining {
				t.Fatalf("503 healthz body not draining: %+v", st)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("healthz never reported draining")
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	if err := <-shutdownDone; err != nil {
		t.Fatalf("drain shutdown: %v", err)
	}
}

func jsonDecode(r io.Reader, v any) error {
	return json.NewDecoder(r).Decode(v)
}
