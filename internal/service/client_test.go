package service

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// TestParseRetryAfter pins the RFC 7231 semantics: integer seconds or
// an HTTP-date, everything else 0. The old ParseDuration(header+"s")
// path turned a proxy's "2m" into 2 milliseconds and rejected dates.
func TestParseRetryAfter(t *testing.T) {
	now := time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)
	cases := []struct {
		header string
		want   time.Duration
	}{
		{"", 0},
		{"1", time.Second},
		{"120", 2 * time.Minute},
		{"0", 0},
		{"-5", 0},   // negative: malformed, ignore
		{"1.5", 0},  // fractional: not RFC 7231
		{"2m", 0},   // duration syntax: not RFC 7231
		{"soon", 0}, // junk
		{now.Add(30 * time.Second).Format(http.TimeFormat), 30 * time.Second},
		{now.Add(-time.Minute).Format(http.TimeFormat), 0}, // date in the past
	}
	for _, c := range cases {
		if got := parseRetryAfter(c.header, now); got != c.want {
			t.Errorf("parseRetryAfter(%q) = %v, want %v", c.header, got, c.want)
		}
	}
}

// TestClientRetryAfterHeader drives the parse through a real 429
// answer: the client must surface the server's delay on APIError and
// leave it 0 for malformed headers (so retry loops fall back to their
// own pacing rather than sleeping a mis-parsed duration).
func TestClientRetryAfterHeader(t *testing.T) {
	var header string
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if header != "" {
			w.Header().Set("Retry-After", header)
		}
		http.Error(w, `{"status":"error","error":"queue full"}`, http.StatusTooManyRequests)
	}))
	defer ts.Close()
	c := NewClient(ts.URL)

	for _, tc := range []struct {
		header string
		want   time.Duration
	}{
		{"3", 3 * time.Second},
		{"2m", 0},
		{"", 0},
	} {
		header = tc.header
		_, err := c.Synthesize(context.Background(), Request{PLA: ".i 1\n.o 1\n1 1\n.e\n"})
		var ae *APIError
		if !errors.As(err, &ae) || ae.Code != http.StatusTooManyRequests {
			t.Fatalf("header %q: err = %v, want 429 APIError", tc.header, err)
		}
		if ae.RetryAfter != tc.want {
			t.Errorf("header %q: RetryAfter = %v, want %v", tc.header, ae.RetryAfter, tc.want)
		}
	}
}

// TestClientOptions: the construction options must behave as the front
// tier depends on them — the zero client shares the process keep-alive
// transport, WithTimeout bounds requests while still sharing that
// transport, and WithHTTPClient takes the caller's client verbatim.
func TestClientOptions(t *testing.T) {
	if c := NewClient("http://x"); c.http() != sharedHTTPClient {
		t.Fatal("zero-option client must use the shared keep-alive client")
	}

	c := NewClient("http://x", WithTimeout(250*time.Millisecond))
	if c.HTTPClient == nil || c.HTTPClient.Timeout != 250*time.Millisecond {
		t.Fatalf("WithTimeout not applied: %+v", c.HTTPClient)
	}
	if c.HTTPClient.Transport != sharedHTTPClient.Transport {
		t.Fatal("WithTimeout must share the pooled transport, not build a new one")
	}

	own := &http.Client{}
	if c := NewClient("http://x", WithHTTPClient(own)); c.http() != own {
		t.Fatal("WithHTTPClient ignored")
	}

	// And the timeout actually bites: a stalling server turns into a
	// client-side deadline error, not a hang.
	stall := make(chan struct{})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-stall
	}))
	defer func() { close(stall); ts.Close() }()
	tc := NewClient(ts.URL, WithTimeout(50*time.Millisecond))
	if _, err := tc.Health(context.Background()); err == nil {
		t.Fatal("bounded client returned from a stalled server")
	}
}

// TestClientKeepAlive: consecutive requests over the shared transport
// reuse one TCP connection — the reason the front can hold health polls
// plus request traffic against few backends without dial churn.
func TestClientKeepAlive(t *testing.T) {
	remotes := make(map[string]int)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		remotes[r.RemoteAddr]++
		w.Write([]byte(`{"queue_depth":0}`)) //nolint:errcheck
	}))
	defer ts.Close()
	c := NewClient(ts.URL)
	for i := 0; i < 8; i++ {
		if _, err := c.Health(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	if len(remotes) != 1 {
		t.Fatalf("%d distinct client connections for 8 sequential requests, want 1 (keep-alive broken)", len(remotes))
	}
}
