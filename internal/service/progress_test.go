package service

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/lattice-tools/janus/internal/core"
	"github.com/lattice-tools/janus/internal/cube"
	"github.com/lattice-tools/janus/internal/obsv"
)

// fakePartial is fakeResult degraded: a verified incumbent whose bounds
// never met (the search stopped with final lb 4 < size 8).
func fakePartial() core.Result {
	r := fakeResult()
	r.FinalLB = 4
	r.Partial = true
	return r
}

// waitStatus polls a job until it reaches want (or the deadline).
func waitStatus(t *testing.T, s *Server, id, want string) *Response {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		jr, ok := s.Job(id)
		if !ok {
			t.Fatalf("job %s not pollable", id)
		}
		if jr.Status == want {
			return jr
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s status = %q, want %q", id, jr.Status, want)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestDeadlinePartialIsDone is the regression test for the anytime
// degradation contract: a synchronous request whose deadline expires
// AFTER the bounds phase produced a verified incumbent must be answered
// status "done" with partial:true and the mapping — never surface as an
// error or a bare timeout. The answer is exact for its budget (timeout_ms
// is in the cache key), so it must also be cached; and a coalesced
// follower of the same job must see the identical degraded answer.
func TestDeadlinePartialIsDone(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	var calls atomic.Int32
	s.synth = func(f cube.Cover, opt core.Options) (core.Result, error) {
		calls.Add(1)
		// A search that holds an incumbent and burns its whole budget
		// trying (and failing) to close the gap.
		<-opt.Ctx.Done()
		return fakePartial(), nil
	}

	req := Request{PLA: fig1PLA, TimeoutMS: 300}
	type answer struct {
		resp *Response
		err  error
	}
	leadc := make(chan answer, 1)
	go func() {
		r, err := s.Synthesize(context.Background(), req)
		leadc <- answer{r, err}
	}()
	deadline := time.Now().Add(5 * time.Second)
	for gRunning.Value() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("job never started running")
		}
		time.Sleep(time.Millisecond)
	}
	follower, err := s.Synthesize(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	lead := <-leadc
	if lead.err != nil {
		t.Fatal(lead.err)
	}
	for name, resp := range map[string]*Response{"leader": lead.resp, "follower": follower} {
		if resp.Status != StatusDone {
			t.Fatalf("%s status = %q (err %q), want done", name, resp.Status, resp.Error)
		}
		if resp.Result == nil || !resp.Result.Partial {
			t.Fatalf("%s: deadline-expired answer must be partial, got %+v", name, resp.Result)
		}
		if len(resp.Result.Lattice) == 0 {
			t.Fatalf("%s: partial answer lost its verified mapping", name)
		}
		if resp.Result.FinalLB != 4 {
			t.Fatalf("%s final_lb = %d, want 4", name, resp.Result.FinalLB)
		}
	}
	if follower.Cached != "coalesced" {
		t.Fatalf("follower cached = %q, want coalesced", follower.Cached)
	}
	if calls.Load() != 1 {
		t.Fatalf("coalesced pair ran %d syntheses, want 1", calls.Load())
	}

	// The partial IS the agreed answer for this budget: a repeat request
	// must come from cache, not re-search.
	resp, err := s.Synthesize(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Cached != "mem" || !resp.Result.Partial {
		t.Fatalf("repeat = cached %q partial %v, want mem/true", resp.Cached, resp.Result.Partial)
	}
	if calls.Load() != 1 {
		t.Fatal("repeat request re-ran the synthesis")
	}
}

// TestDeadlinePartialHTTP200 pins the HTTP face of the same contract:
// the POST answers 200 with status done and partial:true, not a 5xx.
func TestDeadlinePartialHTTP200(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	s.synth = func(f cube.Cover, opt core.Options) (core.Result, error) {
		<-opt.Ctx.Done()
		return fakePartial(), nil
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v1/synthesize", "application/json",
		strings.NewReader(`{"pla": ".i 4\n.o 1\n1111 1\n0000 1\n.e\n", "timeout_ms": 300}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("deadline-expired synthesis answered %d (%s), want 200", resp.StatusCode, body)
	}
	text := string(body)
	if !strings.Contains(text, `"status":"done"`) || !strings.Contains(text, `"partial":true`) {
		t.Fatalf("body = %s, want done + partial:true", text)
	}
}

// TestCancelWithIncumbentUncached: a job cancelled mid-run with a
// verified incumbent settles done+partial (the waiter that comes back
// polling gets the mapping), but the answer must NOT enter the caches —
// the cancelled run used less than its nominal budget, so caching it
// would claim that budget buys no better.
func TestCancelWithIncumbentUncached(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	var calls atomic.Int32
	s.synth = func(f cube.Cover, opt core.Options) (core.Result, error) {
		calls.Add(1)
		<-opt.Ctx.Done()
		return fakePartial(), nil
	}

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	resp, err := s.Synthesize(ctx, fig1Request())
	if err != nil {
		t.Fatal(err)
	}
	if resp.JobID == "" {
		t.Fatalf("abandoned request must return a job id, got %+v", resp)
	}
	jr := waitStatus(t, s, resp.JobID, StatusDone)
	if jr.Result == nil || !jr.Result.Partial || len(jr.Result.Lattice) == 0 {
		t.Fatalf("cancelled-with-incumbent job result = %+v, want partial mapping", jr.Result)
	}

	// Same question again: must synthesize afresh, not hit a cache.
	s.synth = func(f cube.Cover, opt core.Options) (core.Result, error) {
		calls.Add(1)
		return fakeResult(), nil
	}
	resp2, err := s.Synthesize(context.Background(), fig1Request())
	if err != nil {
		t.Fatal(err)
	}
	if resp2.Cached != "" {
		t.Fatalf("under-budget partial leaked into the %q cache", resp2.Cached)
	}
	if calls.Load() != 2 {
		t.Fatalf("synth calls = %d, want 2 (partial must not be cached)", calls.Load())
	}
}

// TestJobProgressSnapshot: the snapshot inlined into job polls rolls up
// the event stream — monotone bounds, best incumbent, step/engine trail —
// and ignores sub-synthesis events, whose bounds describe part covers.
func TestJobProgressSnapshot(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	release := make(chan struct{})
	defer func() {
		select {
		case <-release:
		default:
			close(release)
		}
	}()
	s.synth = func(f cube.Cover, opt core.Options) (core.Result, error) {
		sink := obsv.ProgressFromContext(opt.Ctx)
		if sink == nil {
			t.Error("job context carries no progress sink")
			return fakeResult(), nil
		}
		sink.Progress(obsv.ProgressEvent{Kind: obsv.ProgressPhaseStart, Phase: "bounds"})
		sink.Progress(obsv.ProgressEvent{Kind: obsv.ProgressIncumbent, Size: 12, Grid: "4x3", Verified: true})
		sink.Progress(obsv.ProgressEvent{Kind: obsv.ProgressBound, LB: 2, UB: 12, Method: "DPS"})
		// A sub-synthesis bound: tighter than anything top-level, and it
		// must NOT reach the snapshot.
		sink.Progress(obsv.ProgressEvent{Kind: obsv.ProgressBound, LB: 7, UB: 7, Method: "sat", Sub: true})
		sink.Progress(obsv.ProgressEvent{Kind: obsv.ProgressIncumbent, Size: 8, Grid: "4x2", Verified: true})
		sink.Progress(obsv.ProgressEvent{Kind: obsv.ProgressBound, LB: 4, UB: 8, Method: "sat"})
		sink.Progress(obsv.ProgressEvent{Kind: obsv.ProgressStep, Step: 1, Engine: "fresh", GridsProbed: 3})
		<-release
		r := fakeResult()
		r.FinalLB = 8
		return r, nil
	}

	resp, err := s.Synthesize(context.Background(), Request{PLA: fig1PLA, Async: true})
	if err != nil {
		t.Fatal(err)
	}
	var snap *ProgressJSON
	deadline := time.Now().Add(5 * time.Second)
	for {
		jr, ok := s.Job(resp.JobID)
		if !ok {
			t.Fatal("job not pollable")
		}
		if jr.Progress != nil && jr.Progress.Steps == 1 {
			snap = jr.Progress
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("snapshot never caught up: %+v", jr.Progress)
		}
		time.Sleep(time.Millisecond)
	}
	if snap.LB != 4 || snap.UB != 8 {
		t.Fatalf("snapshot bounds = %d/%d, want 4/8 (sub events must not roll up)", snap.LB, snap.UB)
	}
	if snap.BestSize != 8 || snap.BestGrid != "4x2" {
		t.Fatalf("best incumbent = %d %q, want 8 4x2", snap.BestSize, snap.BestGrid)
	}
	if snap.GridsProbed != 3 || len(snap.EngineTrail) != 1 || snap.EngineTrail[0] != "fresh" {
		t.Fatalf("snapshot trail = %d grids, %v", snap.GridsProbed, snap.EngineTrail)
	}
	if snap.FirstMappingMS <= 0 {
		t.Fatal("first mapping time not stamped")
	}
	if snap.Events != 7 {
		t.Fatalf("event horizon = %d, want 7", snap.Events)
	}
	close(release)
	waitStatus(t, s, resp.JobID, StatusDone)

	// The terminal event folds the final bounds in and closes the stream.
	p, ok := s.JobEvents(resp.JobID)
	if !ok || p == nil {
		t.Fatal("events stream gone after completion")
	}
	evs, terminal := p.eventsSince(0)
	if !terminal {
		t.Fatal("finished job's stream must be terminal")
	}
	last := evs[len(evs)-1]
	if last.Kind != "done" || last.Status != StatusDone || last.LB != 8 || last.UB != 8 || last.Partial {
		t.Fatalf("terminal event = %+v, want done 8/8 non-partial", last)
	}
	// Cursor resume: only events past the cursor come back.
	tail, _ := p.eventsSince(last.Seq - 1)
	if len(tail) != 1 || tail[0].Seq != last.Seq {
		t.Fatalf("resume after %d returned %d events", last.Seq-1, len(tail))
	}
	// The anytime SLO saw the job.
	for _, slo := range s.Stats().SLOs {
		if slo.Name == "first_mapping" && slo.Total < 1 {
			t.Fatal("first-mapping SLO missed the job")
		}
	}
}

// TestProgressRingEviction: a ring smaller than the stream keeps the
// newest events; a cursor that fell off the retained window resumes at
// the oldest retained event instead of erroring.
func TestProgressRingEviction(t *testing.T) {
	p := newProgressState(4, time.Now())
	for i := 1; i <= 10; i++ {
		p.Progress(obsv.ProgressEvent{Kind: obsv.ProgressBound, LB: i, UB: 20})
	}
	evs, terminal := p.eventsSince(0)
	if terminal {
		t.Fatal("stream terminal before finish")
	}
	if len(evs) != 4 || evs[0].Seq != 7 || evs[3].Seq != 10 {
		t.Fatalf("ring retained %d events starting at %d, want 4 from 7", len(evs), evs[0].Seq)
	}
	if evs[3].LB != 10 {
		t.Fatalf("newest event lb = %d, want 10", evs[3].LB)
	}
	p.finish(StatusDone, 20, 20, false)
	evs, terminal = p.eventsSince(10)
	if !terminal || len(evs) != 1 || evs[0].Kind != "done" {
		t.Fatalf("after finish: terminal=%v evs=%+v", terminal, evs)
	}
	// finish is idempotent: a second call must not append another event.
	p.finish(StatusCanceled, 0, 0, true)
	if evs, _ := p.eventsSince(10); len(evs) != 1 {
		t.Fatal("double finish appended a second terminal event")
	}
}

// TestProgressNilSafety: a nil state (progress disabled) no-ops on every
// method, so the service never branches on the config.
func TestProgressNilSafety(t *testing.T) {
	var p *progressState
	p.Progress(obsv.ProgressEvent{Kind: obsv.ProgressBound, LB: 1})
	p.finish(StatusDone, 1, 1, false)
	if p.snapshot() != nil {
		t.Fatal("nil snapshot must be nil")
	}
	if p.firstMappingAt() != 0 {
		t.Fatal("nil first mapping must be 0")
	}
	if evs, terminal := p.eventsSince(0); evs != nil || !terminal {
		t.Fatal("nil eventsSince must be empty and terminal")
	}
}

// TestEventsEndpoint: the long-poll face (?wait=) pages events with a
// resumable cursor, and the SSE face replays the ring with seq ids and
// ends after the terminal event; Last-Event-ID resumes mid-stream.
func TestEventsEndpoint(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	release := make(chan struct{})
	defer func() {
		select {
		case <-release:
		default:
			close(release)
		}
	}()
	s.synth = func(f cube.Cover, opt core.Options) (core.Result, error) {
		sink := obsv.ProgressFromContext(opt.Ctx)
		sink.Progress(obsv.ProgressEvent{Kind: obsv.ProgressIncumbent, Size: 8, Grid: "4x2", Verified: true})
		sink.Progress(obsv.ProgressEvent{Kind: obsv.ProgressBound, LB: 4, UB: 8, Method: "DPS"})
		<-release
		return fakeResult(), nil
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := NewClient(ts.URL)
	ctx := context.Background()

	resp, err := client.Synthesize(ctx, Request{PLA: fig1PLA, Async: true})
	if err != nil {
		t.Fatal(err)
	}
	page, err := client.JobEvents(ctx, resp.JobID, 0, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(page.Events) < 1 || page.Terminal {
		t.Fatalf("first page: %d events terminal=%v", len(page.Events), page.Terminal)
	}
	if page.Next != page.Events[len(page.Events)-1].Seq {
		t.Fatalf("next cursor %d does not match last seq %d", page.Next, page.Events[len(page.Events)-1].Seq)
	}
	close(release)
	// Drain to terminal; cursors must advance without replays.
	after := page.Next
	deadline := time.Now().Add(10 * time.Second)
	for {
		page, err = client.JobEvents(ctx, resp.JobID, after, 2*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range page.Events {
			if e.Seq <= after {
				t.Fatalf("event %d replayed at cursor %d", e.Seq, after)
			}
			after = e.Seq
		}
		if page.Terminal {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("stream never reached terminal")
		}
	}
	if page.Events[len(page.Events)-1].Kind != "done" {
		t.Fatalf("last event = %+v, want done", page.Events[len(page.Events)-1])
	}

	// SSE replay of the finished stream: every frame carries its seq as
	// the event id, the kinds are spelled out, and the body ends at the
	// terminal event (the request returns without hanging).
	sse, err := http.Get(ts.URL + "/v1/jobs/" + resp.JobID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer sse.Body.Close()
	if ct := sse.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type = %q", ct)
	}
	body, err := io.ReadAll(sse.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{"id: 1\n", "event: incumbent\n", "event: bound\n", "event: done\n", `"lb":4`} {
		if !strings.Contains(text, want) {
			t.Fatalf("SSE body missing %q:\n%s", want, text)
		}
	}

	// Last-Event-ID resume: everything at or before the cursor is skipped.
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/jobs/"+resp.JobID+"/events", nil)
	req.Header.Set("Last-Event-ID", "2")
	sse2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer sse2.Body.Close()
	body2, _ := io.ReadAll(sse2.Body)
	if strings.Contains(string(body2), "id: 1\n") || strings.Contains(string(body2), "id: 2\n") {
		t.Fatalf("Last-Event-ID resume replayed acknowledged events:\n%s", body2)
	}
	if !strings.Contains(string(body2), "event: done\n") {
		t.Fatalf("resumed stream lost the terminal event:\n%s", body2)
	}
}

// TestEventsEndpointErrors: unknown jobs and disabled progress both
// answer 404, with distinct messages.
func TestEventsEndpointErrors(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, ProgressEvents: -1})
	gate := make(chan struct{})
	defer close(gate)
	s.synth = func(f cube.Cover, opt core.Options) (core.Result, error) {
		<-gate
		return fakeResult(), nil
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := NewClient(ts.URL)
	ctx := context.Background()

	var ae *APIError
	if _, err := client.JobEvents(ctx, "nope", 0, 0); !errors.As(err, &ae) || ae.Code != 404 {
		t.Fatalf("unknown job: %v", err)
	}
	resp, err := client.Synthesize(ctx, Request{PLA: fig1PLA, Async: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.JobEvents(ctx, resp.JobID, 0, 0); !errors.As(err, &ae) || ae.Code != 404 {
		t.Fatalf("disabled progress: %v", err)
	}
	// With progress off, job polls simply omit the snapshot.
	jr, err := client.Job(ctx, resp.JobID)
	if err != nil {
		t.Fatal(err)
	}
	if jr.Progress != nil {
		t.Fatal("disabled progress leaked a snapshot into the poll")
	}
}
