package service

import (
	"context"
	"fmt"
	"time"

	"github.com/lattice-tools/janus/internal/obsv"
)

// Multi-tenant scheduling: the daemon serves more than one submitter,
// and a bulk submitter must not be able to starve interactive traffic
// just by being first into the queue. Jobs are accounted to a tenant
// (the X-Janus-Tenant header, "default" otherwise) and dispatched by a
// weighted deficit-round-robin scheduler: each tenant holds its own
// FIFO, dispatching costs one deficit unit, and deficits refill in
// proportion to the configured weights — so over any contended window
// tenants complete work in proportion to their weights, while an
// uncontended daemon behaves exactly like the old single queue.
//
// Admission is bounded twice: the global QueueDepth first (ErrBusy, as
// before), then the tenant's own queue share (ErrTenantBusy) — a tenant
// that fills its share is shed with 429 + Retry-After even while other
// tenants still admit, which is the isolation property the shares exist
// for.

// TenantConfig sizes one tenant's share of the daemon.
type TenantConfig struct {
	// Weight is the tenant's DRR weight: over a contended period
	// runnable tenants are granted dispatch slots in proportion to their
	// weights (default 1).
	Weight int
	// QueueShare bounds this tenant's queued-but-not-running backlog; a
	// tenant at its share is shed with 429 even while the global queue
	// still has room (default: the global QueueDepth).
	QueueShare int
	// MaxInFlight bounds this tenant's concurrently running jobs; jobs
	// over the cap stay queued rather than shed (default: unlimited,
	// i.e. only the worker pool bounds it).
	MaxInFlight int
}

// DefaultTenant is the tenant jobs without an X-Janus-Tenant header (or
// with an unusable one) are accounted to.
const DefaultTenant = "default"

// maxTrackedTenants bounds the scheduler's per-tenant state and metric
// cardinality: the X-Janus-Tenant header is client-controlled, so an
// attacker could otherwise mint unbounded tenant queues and gauges.
// Past the cap, unseen tenant names fold into the default tenant.
const maxTrackedTenants = 64

// affinityLookahead bounds how deep into a tenant's FIFO the dispatcher
// looks for a job whose grid shape matches the last dispatch (keeping
// the shared path/cover memos hot); beyond it FIFO order wins, so
// affinity can never starve a queue head.
const affinityLookahead = 8

// ErrTenantBusy: this tenant's queue share is exhausted while the
// daemon as a whole still admits. It wraps ErrBusy so the HTTP mapping
// (429 + Retry-After) is unchanged; the distinction shows up in the
// per-tenant shed counters and stats.
var ErrTenantBusy = fmt.Errorf("tenant queue share exhausted: %w", ErrBusy)

// tenantQ is one tenant's FIFO plus its DRR accounting. All fields are
// guarded by Server.mu.
type tenantQ struct {
	name string
	cfg  TenantConfig

	jobs     []*job // FIFO; shape affinity may take from within the lookahead
	deficit  int
	inFlight int

	admitted   int64
	dispatched int64
	completed  int64
	shed       int64

	gDepth  *obsv.Gauge
	mAdmits *obsv.Counter
	mSheds  *obsv.Counter

	// Per-tenant latency objectives (nil when disabled): sloSynth measures
	// job end-to-end time (queue wait + solve) against the tenant SLO,
	// sloFirstMap the anytime first-mapping objective. Both publish
	// tenant-labeled burn gauges, so one tenant burning budget is visible
	// next to the fleet-wide endpoint SLOs.
	sloSynth    *obsv.SLO
	sloFirstMap *obsv.SLO
}

// observeQueueWait feeds one dispatched job's queue wait into the
// tenant-labeled histogram. Safe outside Server.mu: histograms and SLOs
// are internally synchronized.
func (tq *tenantQ) observeQueueWait(endpoint string, d time.Duration) {
	obsv.Default.HistogramWith("janus_service_tenant_queue_wait_ns",
		"tenant", tq.name, "endpoint", endpoint).Observe(int64(d))
}

// observeE2E feeds one finished job's end-to-end latency (queue wait +
// solve) into the tenant-labeled histogram and the tenant synth SLO.
func (tq *tenantQ) observeE2E(endpoint string, d time.Duration) {
	obsv.Default.HistogramWith("janus_service_tenant_e2e_ns",
		"tenant", tq.name, "endpoint", endpoint).Observe(int64(d))
	tq.sloSynth.Observe(d)
}

// observeFirstMapping feeds the tenant's anytime objective.
func (tq *tenantQ) observeFirstMapping(d time.Duration) {
	tq.sloFirstMap.Observe(d)
}

// tenantSLOCfg carries the per-tenant latency objectives into the
// scheduler, which owns tenant lifecycle (lazy creation, fold past the
// tracking cap) and so is where per-tenant SLOs are minted. A zero
// objective disables that SLO (nil *obsv.SLO discards observations).
type tenantSLOCfg struct {
	synth    time.Duration // end-to-end (queue wait + solve) objective
	firstMap time.Duration // anytime first-mapping objective
	target   float64       // good fraction both must meet
}

// scheduler is the weighted deficit-round-robin dispatcher. It is not
// self-locking: every method runs under Server.mu.
type scheduler struct {
	defaults TenantConfig
	capTotal int
	slo      tenantSLOCfg

	tenants map[string]*tenantQ
	order   []*tenantQ // creation order; rr indexes into it
	rr      int
	total   int // queued jobs across all tenants

	lastShape    string
	rounds       int64 // deficit refill rounds
	affinity     int64 // dispatches whose shape matched the previous one
	dispatchedTV int64 // dispatched total
}

// normalizeTenantConfig resolves zero fields against the scheduler's
// global bounds (the Config.fill convention: zero means default).
func normalizeTenantConfig(cfg TenantConfig, capTotal int) TenantConfig {
	if cfg.Weight < 1 {
		cfg.Weight = 1
	}
	if cfg.QueueShare < 1 || cfg.QueueShare > capTotal {
		cfg.QueueShare = capTotal
	}
	if cfg.MaxInFlight < 1 {
		cfg.MaxInFlight = 1 << 30 // effectively unlimited; the worker pool bounds it
	}
	return cfg
}

func newScheduler(capTotal int, defaults TenantConfig, tenants map[string]TenantConfig, slo tenantSLOCfg) *scheduler {
	sc := &scheduler{
		defaults: normalizeTenantConfig(defaults, capTotal),
		capTotal: capTotal,
		slo:      slo,
		tenants:  make(map[string]*tenantQ),
	}
	// The default tenant always exists, so folding past the tracking cap
	// has somewhere to land.
	sc.addTenant(DefaultTenant, sc.defaults)
	for name, cfg := range tenants {
		name = sanitizeTenant(name)
		if _, ok := sc.tenants[name]; ok {
			sc.tenants[name].cfg = normalizeTenantConfig(cfg, capTotal)
			continue
		}
		sc.addTenant(name, normalizeTenantConfig(cfg, capTotal))
	}
	return sc
}

func (sc *scheduler) addTenant(name string, cfg TenantConfig) *tenantQ {
	tq := &tenantQ{
		name: name, cfg: cfg, deficit: cfg.Weight,
		gDepth:  obsv.Default.Gauge(obsv.LabeledName("janus_service_tenant_queue_depth", "tenant", name)),
		mAdmits: obsv.Default.Counter(obsv.LabeledName("janus_service_tenant_admits_total", "tenant", name)),
		mSheds:  obsv.Default.Counter(obsv.LabeledName("janus_service_tenant_sheds_total", "tenant", name)),
	}
	if sc.slo.synth > 0 {
		tq.sloSynth = obsv.NewSLO("synthesize", sc.slo.synth, sc.slo.target)
		tq.sloSynth.RegisterLabeled(obsv.Default, "janus_service_tenant_slo_synthesize", "tenant", name)
	}
	if sc.slo.firstMap > 0 {
		tq.sloFirstMap = obsv.NewSLO("first_mapping", sc.slo.firstMap, sc.slo.target)
		tq.sloFirstMap.RegisterLabeled(obsv.Default, "janus_service_tenant_slo_first_mapping", "tenant", name)
	}
	sc.tenants[name] = tq
	sc.order = append(sc.order, tq)
	return tq
}

// tenant resolves a name to its queue, lazily creating one with the
// default config for first-seen names, folding into the default tenant
// past the tracking cap.
func (sc *scheduler) tenant(name string) *tenantQ {
	if tq, ok := sc.tenants[name]; ok {
		return tq
	}
	if len(sc.tenants) >= maxTrackedTenants {
		return sc.tenants[DefaultTenant]
	}
	return sc.addTenant(name, sc.defaults)
}

// enqueue admits one job under the fairness rules: the global bound
// first (ErrBusy, exactly the old single-queue behavior), then the
// tenant's own share (ErrTenantBusy). On success the job's tenant field
// holds the queue it was accounted to (folded names rewrite it).
func (sc *scheduler) enqueue(j *job) error {
	if sc.total >= sc.capTotal {
		return ErrBusy
	}
	tq := sc.tenant(j.tenant)
	j.tenant = tq.name
	if len(tq.jobs) >= tq.cfg.QueueShare {
		tq.shed++
		tq.mSheds.Inc()
		return ErrTenantBusy
	}
	tq.jobs = append(tq.jobs, j)
	tq.admitted++
	tq.mAdmits.Inc()
	sc.total++
	tq.gDepth.Set(int64(len(tq.jobs)))
	return nil
}

// pick chooses the next job to dispatch, or nil when no tenant has a
// runnable job (all queues empty, or every backlogged tenant is at its
// in-flight cap).
//
// DRR invariants:
//   - a tenant is eligible when it has queued jobs, spare in-flight
//     budget, and a positive deficit;
//   - dispatching costs one deficit unit, so over a contended window
//     completed work tracks the weight ratios;
//   - when runnable tenants exist but none has deficit left, every
//     runnable tenant's deficit refills by its weight, capped at two
//     rounds' worth so an idle tenant cannot bank an unbounded burst;
//   - the cursor advances past the picked tenant, so equal weights
//     interleave instead of clumping.
func (sc *scheduler) pick() *job {
	for pass := 0; pass < 2; pass++ {
		n := len(sc.order)
		for i := 0; i < n; i++ {
			tq := sc.order[(sc.rr+i)%n]
			if len(tq.jobs) == 0 || tq.inFlight >= tq.cfg.MaxInFlight || tq.deficit < 1 {
				continue
			}
			sc.rr = (sc.rr + i + 1) % n
			tq.deficit--
			return sc.take(tq)
		}
		runnable := false
		for _, tq := range sc.order {
			if len(tq.jobs) > 0 && tq.inFlight < tq.cfg.MaxInFlight {
				runnable = true
				tq.deficit += tq.cfg.Weight
				if lim := 2 * tq.cfg.Weight; tq.deficit > lim {
					tq.deficit = lim
				}
			}
		}
		if !runnable {
			return nil
		}
		sc.rounds++
		mSchedRefills.Inc()
	}
	// Unreachable: a refill leaves some runnable tenant with deficit ≥ 1.
	return nil
}

// take removes the dispatched job from a tenant's FIFO, preferring —
// within the lookahead — a job whose grid shape matches the previous
// dispatch, so consecutive syntheses reuse hot path/cover memos.
func (sc *scheduler) take(tq *tenantQ) *job {
	idx := 0
	if sc.lastShape != "" {
		for i := 0; i < len(tq.jobs) && i < affinityLookahead; i++ {
			if tq.jobs[i].shape == sc.lastShape {
				idx = i
				break
			}
		}
	}
	j := tq.jobs[idx]
	if sc.lastShape != "" && j.shape == sc.lastShape {
		sc.affinity++
		mDispatchAffinity.Inc()
	}
	tq.jobs = append(tq.jobs[:idx], tq.jobs[idx+1:]...)
	tq.inFlight++
	tq.dispatched++
	sc.dispatchedTV++
	sc.total--
	sc.lastShape = j.shape
	tq.gDepth.Set(int64(len(tq.jobs)))
	return j
}

// complete returns a dispatched job's in-flight slot to its tenant.
func (sc *scheduler) complete(name string) {
	if tq, ok := sc.tenants[name]; ok {
		tq.inFlight--
		tq.completed++
	}
}

// TenantStats is one tenant's row in the /v1/stats scheduler block.
type TenantStats struct {
	Name        string `json:"name"`
	Weight      int    `json:"weight"`
	QueueDepth  int    `json:"queue_depth"`
	QueueShare  int    `json:"queue_share"`
	InFlight    int    `json:"in_flight"`
	MaxInFlight int    `json:"max_in_flight,omitempty"`
	Admitted    int64  `json:"admitted"`
	Dispatched  int64  `json:"dispatched"`
	Completed   int64  `json:"completed"`
	Shed        int64  `json:"shed"`
	// SLOs carries this tenant's burn-rate snapshots (absent when the
	// per-tenant objectives are disabled).
	SLOs []obsv.SLOSnapshot `json:"slos,omitempty"`
}

// SchedulerStats is the fairness counter block on /v1/stats.
type SchedulerStats struct {
	DeficitRounds int64         `json:"deficit_rounds"`
	AffinityHits  int64         `json:"affinity_hits"`
	Dispatched    int64         `json:"dispatched_total"`
	Tenants       []TenantStats `json:"tenants"`
}

func (sc *scheduler) stats() SchedulerStats {
	st := SchedulerStats{
		DeficitRounds: sc.rounds,
		AffinityHits:  sc.affinity,
		Dispatched:    sc.dispatchedTV,
	}
	for _, tq := range sc.order {
		maxIF := tq.cfg.MaxInFlight
		if maxIF >= 1<<30 {
			maxIF = 0 // unlimited reads cleaner as absent
		}
		ts := TenantStats{
			Name: tq.name, Weight: tq.cfg.Weight,
			QueueDepth: len(tq.jobs), QueueShare: tq.cfg.QueueShare,
			InFlight: tq.inFlight, MaxInFlight: maxIF,
			Admitted: tq.admitted, Dispatched: tq.dispatched,
			Completed: tq.completed, Shed: tq.shed,
		}
		if tq.sloSynth != nil {
			ts.SLOs = append(ts.SLOs, tq.sloSynth.Snapshot())
		}
		if tq.sloFirstMap != nil {
			ts.SLOs = append(ts.SLOs, tq.sloFirstMap.Snapshot())
		}
		st.Tenants = append(st.Tenants, ts)
	}
	return st
}

// tenantKey carries the resolved tenant through the context, like the
// peer-fill hint.
type tenantKey struct{}

// ContextWithTenant attaches the tenant a request should be accounted
// to. Empty leaves the context unchanged (the default tenant applies).
func ContextWithTenant(ctx context.Context, tenant string) context.Context {
	if tenant == "" {
		return ctx
	}
	return context.WithValue(ctx, tenantKey{}, tenant)
}

// tenantFromContext reads the tenant, defaulting when absent.
func tenantFromContext(ctx context.Context) string {
	t, _ := ctx.Value(tenantKey{}).(string)
	if t == "" {
		return DefaultTenant
	}
	return sanitizeTenant(t)
}

// sanitizeTenant normalizes a tenant name. The X-Janus-Tenant header is
// client input and tenant names become metric names and log fields, so
// only short lowercase [a-z0-9_-] survives; anything else folds to the
// default tenant rather than erroring — tenancy is an accounting
// concern, not a correctness one.
func sanitizeTenant(t string) string {
	if t == "" || len(t) > 32 {
		return DefaultTenant
	}
	for i := 0; i < len(t); i++ {
		c := t[i]
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9', c == '-', c == '_':
		default:
			return DefaultTenant
		}
	}
	return t
}
