package service

import (
	"container/list"
	"encoding/json"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// outcome is what the caches store: the terminal state of one synthesis.
// Outcomes are immutable once cached; responders wrap them in a fresh
// Response with per-request JobID/Cached fields.
type outcome struct {
	Status string      `json:"status"`
	Error  string      `json:"error,omitempty"`
	Result *ResultJSON `json:"result,omitempty"`
	// Batch is set instead of Result for batch jobs; batch and single
	// keys never collide (batchFnKey hashes a prefixed key list), so an
	// outcome is one or the other. The peer cache-lookup surface only
	// serves Result-bearing outcomes.
	Batch *BatchResultJSON `json:"batch,omitempty"`
}

// memCache is the hot tier: an entry-count-bounded LRU of outcomes.
type memCache struct {
	mu    sync.Mutex
	max   int
	order *list.List // front = most recently used
	items map[string]*list.Element
}

type memEntry struct {
	key string
	out *outcome
}

func newMemCache(max int) *memCache {
	if max < 1 {
		max = 1
	}
	return &memCache{max: max, order: list.New(), items: make(map[string]*list.Element)}
}

func (c *memCache) get(key string) (*outcome, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(e)
	return e.Value.(*memEntry).out, true
}

func (c *memCache) put(key string, out *outcome) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.items[key]; ok {
		c.order.MoveToFront(e)
		e.Value.(*memEntry).out = out
		return
	}
	c.items[key] = c.order.PushFront(&memEntry{key: key, out: out})
	for c.order.Len() > c.max {
		back := c.order.Back()
		c.order.Remove(back)
		delete(c.items, back.Value.(*memEntry).key)
	}
}

// diskCache is the persistent tier: one JSON file per canonical key under
// dir, bounded by entry count and total bytes. The index is rebuilt from
// the directory at open (oldest-first by mtime, evicting over-budget
// files), so a daemon restart inherits the previous run's answers.
// Writes go through a temp file plus rename, so a kill mid-write never
// leaves a torn entry; a torn or hand-edited file found later is deleted
// and treated as a miss.
type diskCache struct {
	mu         sync.Mutex
	dir        string
	maxEntries int
	maxBytes   int64
	bytes      int64
	order      *list.List // front = most recently used
	items      map[string]*list.Element
}

type diskEntry struct {
	key  string
	size int64
}

// openDiskCache loads (and prunes) the persistent result store rooted at
// dir, creating it if needed.
func openDiskCache(dir string, maxEntries int, maxBytes int64) (*diskCache, error) {
	if maxEntries < 1 {
		maxEntries = 4096
	}
	if maxBytes < 1 {
		maxBytes = 64 << 20
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	c := &diskCache{
		dir: dir, maxEntries: maxEntries, maxBytes: maxBytes,
		order: list.New(), items: make(map[string]*list.Element),
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	type onDisk struct {
		key  string
		size int64
		mod  time.Time
	}
	var found []onDisk
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || filepath.Ext(name) != ".json" {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		found = append(found, onDisk{
			key: name[:len(name)-len(".json")], size: info.Size(), mod: info.ModTime(),
		})
	}
	// Oldest first, so pushing front in order leaves the newest entries at
	// the front of the LRU and eviction drops the stalest files.
	sort.Slice(found, func(i, j int) bool { return found[i].mod.Before(found[j].mod) })
	for _, f := range found {
		c.items[f.key] = c.order.PushFront(&diskEntry{key: f.key, size: f.size})
		c.bytes += f.size
	}
	c.evictLocked()
	return c, nil
}

func (c *diskCache) path(key string) string {
	return filepath.Join(c.dir, key+".json")
}

// evictLocked removes least-recently-used files until both budgets hold,
// but always keeps the newest entry so one oversized result cannot wedge
// the cache permanently empty.
func (c *diskCache) evictLocked() {
	for c.order.Len() > 1 && (c.order.Len() > c.maxEntries || c.bytes > c.maxBytes) {
		back := c.order.Back()
		ent := back.Value.(*diskEntry)
		c.order.Remove(back)
		delete(c.items, ent.key)
		c.bytes -= ent.size
		os.Remove(c.path(ent.key))
	}
}

// dropLocked forgets (and deletes) one entry, used on corruption.
func (c *diskCache) dropLocked(key string) {
	if e, ok := c.items[key]; ok {
		c.bytes -= e.Value.(*diskEntry).size
		c.order.Remove(e)
		delete(c.items, key)
	}
	os.Remove(c.path(key))
}

func (c *diskCache) get(key string) (*outcome, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.items[key]
	if !ok {
		return nil, false
	}
	data, err := os.ReadFile(c.path(key))
	if err != nil {
		c.dropLocked(key)
		return nil, false
	}
	var out outcome
	if err := json.Unmarshal(data, &out); err != nil || out.Status != StatusDone {
		// Torn by an unclean shutdown of a non-atomic writer, or edited by
		// hand: recover by forgetting the entry rather than serving junk.
		mDiskCorrupt.Inc()
		c.dropLocked(key)
		return nil, false
	}
	c.order.MoveToFront(e)
	return &out, true
}

func (c *diskCache) put(key string, out *outcome) {
	if c == nil || out.Status != StatusDone {
		return
	}
	data, err := json.Marshal(out)
	if err != nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	tmp, err := os.CreateTemp(c.dir, "put*.tmp")
	if err != nil {
		return
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return
	}
	if err := os.Rename(tmp.Name(), c.path(key)); err != nil {
		os.Remove(tmp.Name())
		return
	}
	size := int64(len(data))
	if e, ok := c.items[key]; ok {
		c.bytes += size - e.Value.(*diskEntry).size
		e.Value.(*diskEntry).size = size
		c.order.MoveToFront(e)
	} else {
		c.items[key] = c.order.PushFront(&diskEntry{key: key, size: size})
		c.bytes += size
	}
	c.evictLocked()
}

// len reports the number of live entries (tests and /healthz).
func (c *diskCache) len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
