package service

import (
	"context"
	"encoding/json"
	"errors"
	"log/slog"
	"net/http"
	"time"

	"github.com/lattice-tools/janus/internal/obsv"
)

// maxBodyBytes bounds request payloads; PLA texts the engine can handle
// are far below this.
const maxBodyBytes = 1 << 20

// waitGrace is added to the handler's wait beyond the job deadline, so a
// budget-bounded synthesis gets to publish its incumbent before the
// waiter gives up and falls back to a poll response.
const waitGrace = 250 * time.Millisecond

// Handler returns the service's HTTP API:
//
//	POST /v1/synthesize         run (or join, or answer from cache) a synthesis
//	GET  /v1/jobs/{id}          poll a job
//	GET  /v1/jobs/{id}/trace    a finished job's span trace, as JSONL
//	GET  /v1/stats              queue health + SLO burn rates
//	GET  /healthz               queue health; 503 while draining
//	GET  /debug/flightrecorder  recent request summaries
//	/metrics, /debug/…          the obsv debug surface, for single-port setups
//
// Every response carries an X-Request-Id header (the inbound one when
// the client sent a plausible value, minted otherwise) and every handler
// emits one JSON access log line.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/synthesize", s.instrument("synthesize", s.sloSynth, slog.LevelInfo, s.handleSynthesize))
	mux.HandleFunc("GET /v1/jobs/{id}", s.instrument("jobs", s.sloJobs, slog.LevelInfo, s.handleJob))
	mux.HandleFunc("GET /v1/jobs/{id}/trace", s.instrument("trace", nil, slog.LevelInfo, s.handleJobTrace))
	mux.HandleFunc("GET /v1/stats", s.instrument("stats", nil, slog.LevelDebug, s.handleStats))
	// Health probes fire every few seconds; keep their access logs at
	// debug so the log stream stays about real work.
	mux.HandleFunc("GET /healthz", s.instrument("healthz", nil, slog.LevelDebug, s.handleHealthz))
	mux.HandleFunc("GET /debug/flightrecorder", s.instrument("flightrecorder", nil, slog.LevelDebug, s.handleFlightRecorder))
	mux.Handle("/metrics", obsv.DebugHandler(nil))
	mux.Handle("/debug/", obsv.DebugHandler(nil))
	return mux
}

// statusWriter captures the status code for access logs and SLO counting.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(c int) {
	w.code = c
	w.ResponseWriter.WriteHeader(c)
}

// instrument wraps a handler with the request-scoped plumbing: resolve
// the request id (honor a plausible inbound X-Request-Id, mint
// otherwise), echo it on the response, carry it in the request context,
// observe the endpoint SLO, and write one access log line.
func (s *Server) instrument(endpoint string, slo *obsv.SLO, lvl slog.Level, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		id := sanitizeRequestID(r.Header.Get("X-Request-Id"))
		if id == "" {
			id = s.newRequestID()
		}
		w.Header().Set("X-Request-Id", id)
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		h(sw, r.WithContext(obsv.ContextWithRequestID(r.Context(), id)))
		d := time.Since(start)
		slo.Observe(d)
		s.log.Log(r.Context(), lvl, "http",
			"endpoint", endpoint, "method", r.Method, "path", r.URL.Path,
			"status", sw.code, "request_id", id, "dur_ms", float64(d)/1e6)
	}
}

// sanitizeRequestID accepts an inbound id only when it is short and
// unambiguously printable, so hostile headers cannot smuggle log or
// header noise; anything else is discarded and a fresh id minted.
func sanitizeRequestID(id string) string {
	if len(id) == 0 || len(id) > 64 {
		return ""
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case c == '-' || c == '_' || c == '.' || c == ':':
		default:
			return ""
		}
	}
	return id
}

func (s *Server) handleSynthesize(w http.ResponseWriter, r *http.Request) {
	reqID := obsv.RequestIDFromContext(r.Context())
	var req Request
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, err.Error(), reqID)
		return
	}
	// Bound the wait to the request budget (plus grace) so an abandoned
	// connection is the only way to give up earlier than the job does.
	p, err := parseRequest(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error(), reqID)
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(),
		p.timeout(s.cfg.DefaultTimeout, s.cfg.MaxTimeout)+waitGrace)
	defer cancel()
	resp, err := s.Synthesize(ctx, req)
	if err != nil {
		switch {
		case errors.Is(err, ErrBusy):
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests, err.Error(), reqID)
		case errors.Is(err, ErrDraining):
			writeError(w, http.StatusServiceUnavailable, err.Error(), reqID)
		default:
			writeError(w, http.StatusBadRequest, err.Error(), reqID)
		}
		return
	}
	code := http.StatusOK
	if resp.Status == StatusQueued || resp.Status == StatusRunning {
		code = http.StatusAccepted // poll GET /v1/jobs/{id}
	}
	writeJSON(w, code, resp)
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	reqID := obsv.RequestIDFromContext(r.Context())
	resp, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job", reqID)
		return
	}
	resp.RequestID = reqID
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleJobTrace(w http.ResponseWriter, r *http.Request) {
	reqID := obsv.RequestIDFromContext(r.Context())
	data, err := s.JobTrace(r.PathValue("id"))
	switch {
	case errors.Is(err, ErrUnknownJob):
		writeError(w, http.StatusNotFound, err.Error(), reqID)
	case errors.Is(err, ErrNotFinished):
		writeError(w, http.StatusConflict, err.Error(), reqID)
	case errors.Is(err, ErrNoTrace):
		writeError(w, http.StatusNotFound, err.Error(), reqID)
	default:
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.Write(data) //nolint:errcheck // client gone is not actionable
	}
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

func (s *Server) handleFlightRecorder(w http.ResponseWriter, r *http.Request) {
	if !s.FlightEnabled() {
		writeError(w, http.StatusNotFound, "flight recorder disabled",
			obsv.RequestIDFromContext(r.Context()))
		return
	}
	writeJSON(w, http.StatusOK, s.Flight())
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	st := s.Stats()
	code := http.StatusOK
	if st.Draining {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, st)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v) //nolint:errcheck // client gone is not actionable
}

func writeError(w http.ResponseWriter, code int, msg, reqID string) {
	writeJSON(w, code, Response{Status: StatusError, Error: msg, RequestID: reqID})
}
