package service

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"time"

	"github.com/lattice-tools/janus/internal/obsv"
)

// maxBodyBytes bounds request payloads; PLA texts the engine can handle
// are far below this.
const maxBodyBytes = 1 << 20

// waitGrace is added to the handler's wait beyond the job deadline, so a
// budget-bounded synthesis gets to publish its incumbent before the
// waiter gives up and falls back to a poll response.
const waitGrace = 250 * time.Millisecond

// Handler returns the service's HTTP API:
//
//	POST /v1/synthesize   run (or join, or answer from cache) a synthesis
//	GET  /v1/jobs/{id}    poll a job
//	GET  /healthz         queue health; 503 while draining
//	/metrics, /debug/…    the obsv debug surface, for single-port setups
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/synthesize", s.handleSynthesize)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.Handle("/metrics", obsv.DebugHandler(nil))
	mux.Handle("/debug/", obsv.DebugHandler(nil))
	return mux
}

func (s *Server) handleSynthesize(w http.ResponseWriter, r *http.Request) {
	var req Request
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	// Bound the wait to the request budget (plus grace) so an abandoned
	// connection is the only way to give up earlier than the job does.
	p, err := parseRequest(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(),
		p.timeout(s.cfg.DefaultTimeout, s.cfg.MaxTimeout)+waitGrace)
	defer cancel()
	resp, err := s.Synthesize(ctx, req)
	if err != nil {
		switch {
		case errors.Is(err, ErrBusy):
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests, err.Error())
		case errors.Is(err, ErrDraining):
			writeError(w, http.StatusServiceUnavailable, err.Error())
		default:
			writeError(w, http.StatusBadRequest, err.Error())
		}
		return
	}
	code := http.StatusOK
	if resp.Status == StatusQueued || resp.Status == StatusRunning {
		code = http.StatusAccepted // poll GET /v1/jobs/{id}
	}
	writeJSON(w, code, resp)
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	resp, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job")
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	st := s.Stats()
	code := http.StatusOK
	if st.Draining {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, st)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v) //nolint:errcheck // client gone is not actionable
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, Response{Status: StatusError, Error: msg})
}
