package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"time"

	"github.com/lattice-tools/janus/internal/obsv"
)

// maxBodyBytes bounds request payloads; PLA texts the engine can handle
// are far below this.
const maxBodyBytes = 1 << 20

// waitGrace is added to the handler's wait beyond the job deadline, so a
// budget-bounded synthesis gets to publish its incumbent before the
// waiter gives up and falls back to a poll response.
const waitGrace = 250 * time.Millisecond

// Handler returns the service's HTTP API:
//
//	POST /v1/synthesize         run (or join, or answer from cache) a synthesis
//	GET  /v1/jobs/{id}          poll a job (includes a live progress snapshot)
//	GET  /v1/jobs/{id}/events   stream progress events (SSE; ?wait= long-polls)
//	GET  /v1/jobs/{id}/trace    a finished job's span trace, as JSONL
//	GET  /v1/stats              queue health + SLO burn rates
//	GET  /healthz               queue health; 503 while draining
//	GET  /debug/flightrecorder  recent request summaries
//	GET  /metrics/prom          the metrics registry, Prometheus text format
//	/metrics, /debug/…          the obsv debug surface, for single-port setups
//
// Every response carries an X-Request-Id header (the inbound one when
// the client sent a plausible value, minted otherwise) and every handler
// emits one JSON access log line.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/synthesize", s.instrument("synthesize", s.sloSynth, slog.LevelInfo, s.handleSynthesize))
	mux.HandleFunc("POST /v1/synthesize/batch", s.instrument("synthesize_batch", s.sloSynth, slog.LevelInfo, s.handleSynthesizeBatch))
	mux.HandleFunc("GET /v1/jobs/{id}", s.instrument("jobs", s.sloJobs, slog.LevelInfo, s.handleJob))
	// Streaming holds the connection open for the job's lifetime; keeping
	// it out of the jobs SLO (and at debug log level) stops every watch
	// from reading as a latency violation.
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.instrument("events", nil, slog.LevelDebug, s.handleJobEvents))
	mux.HandleFunc("GET /v1/jobs/{id}/trace", s.instrument("trace", nil, slog.LevelInfo, s.handleJobTrace))
	mux.HandleFunc("GET /v1/stats", s.instrument("stats", nil, slog.LevelDebug, s.handleStats))
	// Internal peer surface: a sharding front tier's reshard warm-up asks
	// the previous owner's cache here before the new owner re-solves.
	mux.HandleFunc("GET /v1/cache/{fnKey}", s.instrument("cache", nil, slog.LevelDebug, s.handleCacheLookup))
	// Health probes fire every few seconds; keep their access logs at
	// debug so the log stream stays about real work.
	mux.HandleFunc("GET /healthz", s.instrument("healthz", nil, slog.LevelDebug, s.handleHealthz))
	mux.HandleFunc("GET /debug/flightrecorder", s.instrument("flightrecorder", nil, slog.LevelDebug, s.handleFlightRecorder))
	mux.HandleFunc("GET /metrics/prom", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", obsv.PromContentType)
		obsv.WritePrometheus(w, nil) //nolint:errcheck // client gone is not actionable
	})
	mux.Handle("/metrics", obsv.DebugHandler(nil))
	mux.Handle("/debug/", obsv.DebugHandler(nil))
	return mux
}

// statusWriter captures the status code for access logs and SLO counting.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(c int) {
	w.code = c
	w.ResponseWriter.WriteHeader(c)
}

// Unwrap lets http.ResponseController reach the underlying writer's
// Flusher, which the SSE stream needs through the instrument wrapper.
func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// instrument wraps a handler with the request-scoped plumbing: resolve
// the request id (honor a plausible inbound X-Request-Id, mint
// otherwise), echo it on the response, carry it in the request context,
// observe the endpoint SLO, and write one access log line.
func (s *Server) instrument(endpoint string, slo *obsv.SLO, lvl slog.Level, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		id := obsv.SanitizeRequestID(r.Header.Get("X-Request-Id"))
		if id == "" {
			id = s.newRequestID()
		}
		w.Header().Set("X-Request-Id", id)
		ctx := obsv.ContextWithRequestID(r.Context(), id)
		// Inbound trace context (a front hop forwarding its span id). The
		// header is untrusted; the parser applies the request-id policy and
		// malformed values simply mean "no remote parent". The propagation
		// switch is honored at admission (Server.traceContext), so embedded
		// callers see identical behavior to HTTP ones.
		if tc, ok := obsv.ParseTraceContext(r.Header.Get(obsv.TraceHeader)); ok {
			ctx = obsv.ContextWithTraceContext(ctx, tc)
		}
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		h(sw, r.WithContext(ctx))
		d := time.Since(start)
		slo.Observe(d)
		s.log.Log(r.Context(), lvl, "http",
			"endpoint", endpoint, "method", r.Method, "path", r.URL.Path,
			"status", sw.code, "request_id", id, "dur_ms", float64(d)/1e6)
	}
}

func (s *Server) handleSynthesize(w http.ResponseWriter, r *http.Request) {
	reqID := obsv.RequestIDFromContext(r.Context())
	var req Request
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, err.Error(), reqID)
		return
	}
	p, err := parseRequest(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error(), reqID)
		return
	}
	w.Header().Set("X-Janus-Fn-Key", p.fnKey)
	// Bound the wait to the request budget (plus grace) so an abandoned
	// connection is the only way to give up earlier than the job does.
	ctx, cancel := context.WithTimeout(r.Context(),
		p.timeout(s.cfg.DefaultTimeout, s.cfg.MaxTimeout)+waitGrace)
	defer cancel()
	// A front tier that just resharded this key hints at the previous
	// owner; the serve path consults its cache before synthesizing.
	ctx = ContextWithFillFrom(ctx, r.Header.Get("X-Janus-Fill-From"))
	ctx = ContextWithTenant(ctx, sanitizeTenant(r.Header.Get("X-Janus-Tenant")))
	// synthesizeParsed, not Synthesize: the request was already parsed
	// above (fn key, timeout), and parsing hashes every cover — doing it
	// twice per request was pure waste.
	resp, err := s.synthesizeParsed(ctx, p)
	if err != nil {
		writeSynthesizeError(w, err, reqID)
		return
	}
	code := http.StatusOK
	if resp.Status == StatusQueued || resp.Status == StatusRunning {
		code = http.StatusAccepted // poll GET /v1/jobs/{id}
	}
	writeJSON(w, code, resp)
}

// handleSynthesizeBatch mirrors handleSynthesize for multi-function
// workloads: one batch is one job through core.SynthesizeMulti.
func (s *Server) handleSynthesizeBatch(w http.ResponseWriter, r *http.Request) {
	reqID := obsv.RequestIDFromContext(r.Context())
	var req BatchRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBatchBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, err.Error(), reqID)
		return
	}
	pb, err := parseBatch(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error(), reqID)
		return
	}
	w.Header().Set("X-Janus-Fn-Key", pb.fnKey)
	ctx, cancel := context.WithTimeout(r.Context(),
		pb.timeout(s.cfg.DefaultTimeout, s.cfg.MaxTimeout)+waitGrace)
	defer cancel()
	ctx = ContextWithTenant(ctx, sanitizeTenant(r.Header.Get("X-Janus-Tenant")))
	resp, err := s.synthesizeBatchParsed(ctx, pb)
	if err != nil {
		writeSynthesizeError(w, err, reqID)
		return
	}
	code := http.StatusOK
	if resp.Status == StatusQueued || resp.Status == StatusRunning {
		code = http.StatusAccepted
	}
	writeJSON(w, code, resp)
}

// writeSynthesizeError maps admission errors onto status codes, shared
// by the single and batch routes. ErrTenantBusy wraps ErrBusy, so a
// per-tenant shed carries the same 429 + Retry-After contract as a
// global queue-full.
func writeSynthesizeError(w http.ResponseWriter, err error, reqID string) {
	switch {
	case errors.Is(err, ErrBusy):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, err.Error(), reqID)
	case errors.Is(err, ErrDraining):
		writeError(w, http.StatusServiceUnavailable, err.Error(), reqID)
	default:
		writeError(w, http.StatusBadRequest, err.Error(), reqID)
	}
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	reqID := obsv.RequestIDFromContext(r.Context())
	resp, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job", reqID)
		return
	}
	resp.RequestID = reqID
	if resp.FnKey != "" {
		w.Header().Set("X-Janus-Fn-Key", resp.FnKey)
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleCacheLookup is the peer cache-fill surface: resolve a function
// key against this daemon's caches under the asking budget (exact key,
// then the cross-budget rules) and return the answer with its budget
// identity, or 404. Misses are cheap — two map probes — so peers can
// ask freely.
func (s *Server) handleCacheLookup(w http.ResponseWriter, r *http.Request) {
	reqID := obsv.RequestIDFromContext(r.Context())
	q := r.URL.Query()
	timeoutMS, err := parseInt64(q.Get("timeout_ms"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "timeout_ms: "+err.Error(), reqID)
		return
	}
	maxConflicts, err := parseInt64(q.Get("max_conflicts"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "max_conflicts: "+err.Error(), reqID)
		return
	}
	if timeoutMS < 0 || maxConflicts < 0 {
		writeError(w, http.StatusBadRequest, "negative budget", reqID)
		return
	}
	ent, ok := s.CacheLookup(r.PathValue("fnKey"), timeoutMS, maxConflicts)
	if !ok {
		writeError(w, http.StatusNotFound, "cache miss", reqID)
		return
	}
	writeJSON(w, http.StatusOK, ent)
}

// parseInt64 parses a decimal query value; absent reads 0 (the budget
// fields are optional), but garbage is an error the handler must 400.
// Budget values feed cache-compatibility decisions — a malformed
// timeout_ms silently read as 0 ("no budget") could hand a peer an
// answer its real budget is not entitled to.
func parseInt64(v string) (int64, error) {
	if v == "" {
		return 0, nil
	}
	n, err := strconv.ParseInt(v, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("not a decimal integer: %q", v)
	}
	return n, nil
}

// maxLongPoll caps a single ?wait= long-poll round.
const maxLongPoll = 60 * time.Second

// sseHeartbeat keeps idle SSE connections alive through proxies.
const sseHeartbeat = 15 * time.Second

// EventsPage is the ?wait= long-poll body: the events after the caller's
// cursor, the next cursor to pass back, and whether the stream is over.
type EventsPage struct {
	JobID    string              `json:"job_id"`
	Next     uint64              `json:"next"`
	Terminal bool                `json:"terminal"`
	Events   []ProgressEventJSON `json:"events"`
}

// handleJobEvents streams a job's progress. Default is SSE — one frame
// per event with the seq as the event id, so a dropped client resumes
// via the standard Last-Event-ID header; the stream ends after the
// terminal "done" event. With ?wait=<ms> it long-polls instead: block up
// to that long for events past ?after=<seq> and return them as one JSON
// page — the fallback for clients (curl in CI, janusload) that don't
// speak SSE.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	reqID := obsv.RequestIDFromContext(r.Context())
	id := r.PathValue("id")
	p, ok := s.JobEvents(id)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job", reqID)
		return
	}
	if p == nil {
		writeError(w, http.StatusNotFound, "progress disabled", reqID)
		return
	}
	if r.URL.Query().Has("wait") {
		s.longPollEvents(w, r, id, p)
		return
	}
	after := parseSeq(r.Header.Get("Last-Event-ID"))
	if v := r.URL.Query().Get("after"); v != "" {
		after = parseSeq(v)
	}
	// ResponseController sees through the instrument wrapper (and any
	// other Unwrap-ping middleware) to the connection's Flusher.
	fl := http.NewResponseController(w)
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	if err := fl.Flush(); err != nil {
		// No streaming support at all (ErrNotSupported): the long-poll
		// fallback is the answer; nothing useful can follow on this one.
		return
	}
	heartbeat := time.NewTicker(sseHeartbeat)
	defer heartbeat.Stop()
	for {
		wake := p.waitCh() // grab before reading so no append is missed
		evs, terminal := p.eventsSince(after)
		for _, e := range evs {
			data, err := json.Marshal(e)
			if err != nil {
				return
			}
			fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", e.Seq, e.Kind, data)
			after = e.Seq
		}
		if len(evs) > 0 {
			fl.Flush() //nolint:errcheck // client gone surfaces via r.Context
		}
		if terminal {
			return
		}
		select {
		case <-wake:
		case <-heartbeat.C:
			fmt.Fprint(w, ": ping\n\n")
			fl.Flush() //nolint:errcheck // client gone surfaces via r.Context
		case <-r.Context().Done():
			return
		}
	}
}

// longPollEvents is the JSON fallback: one page per request.
func (s *Server) longPollEvents(w http.ResponseWriter, r *http.Request, id string, p *progressState) {
	after := parseSeq(r.URL.Query().Get("after"))
	wait := time.Duration(parseSeq(r.URL.Query().Get("wait"))) * time.Millisecond
	if wait > maxLongPoll {
		wait = maxLongPoll
	}
	deadline := time.NewTimer(wait)
	defer deadline.Stop()
	for {
		wake := p.waitCh()
		evs, terminal := p.eventsSince(after)
		if len(evs) > 0 || terminal || wait <= 0 {
			next := after
			if n := len(evs); n > 0 {
				next = evs[n-1].Seq
			}
			writeJSON(w, http.StatusOK, EventsPage{
				JobID: id, Next: next, Terminal: terminal, Events: evs,
			})
			return
		}
		select {
		case <-wake:
		case <-deadline.C:
			writeJSON(w, http.StatusOK, EventsPage{JobID: id, Next: after})
			return
		case <-r.Context().Done():
			return
		}
	}
}

// parseSeq parses a non-negative decimal cursor; garbage reads as 0.
func parseSeq(v string) uint64 {
	n, err := strconv.ParseUint(v, 10, 64)
	if err != nil {
		return 0
	}
	return n
}

func (s *Server) handleJobTrace(w http.ResponseWriter, r *http.Request) {
	reqID := obsv.RequestIDFromContext(r.Context())
	data, err := s.JobTrace(r.PathValue("id"))
	switch {
	case errors.Is(err, ErrUnknownJob):
		writeError(w, http.StatusNotFound, err.Error(), reqID)
	case errors.Is(err, ErrNotFinished):
		writeError(w, http.StatusConflict, err.Error(), reqID)
	case errors.Is(err, ErrNoTrace):
		writeError(w, http.StatusNotFound, err.Error(), reqID)
	default:
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.Write(data) //nolint:errcheck // client gone is not actionable
	}
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

func (s *Server) handleFlightRecorder(w http.ResponseWriter, r *http.Request) {
	if !s.FlightEnabled() {
		writeError(w, http.StatusNotFound, "flight recorder disabled",
			obsv.RequestIDFromContext(r.Context()))
		return
	}
	writeJSON(w, http.StatusOK, s.Flight())
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	st := s.Stats()
	code := http.StatusOK
	if st.Draining {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, st)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v) //nolint:errcheck // client gone is not actionable
}

func writeError(w http.ResponseWriter, code int, msg, reqID string) {
	writeJSON(w, code, Response{Status: StatusError, Error: msg, RequestID: reqID})
}
