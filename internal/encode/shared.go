package encode

import (
	"fmt"
	"sync"
	"time"

	"github.com/lattice-tools/janus/internal/cube"
	"github.com/lattice-tools/janus/internal/lattice"
	"github.com/lattice-tools/janus/internal/memo"
	"github.com/lattice-tools/janus/internal/sat"
	"github.com/lattice-tools/janus/internal/truth"
)

// SharedPool keeps one assumption-based SAT engine alive per (cover,
// orientation) and shares it across every candidate grid the dichotomic
// search probes: candidates of one midpoint, and the same shapes again at
// adjacent midpoints. Each grid's skeleton enters the engine once, guarded
// by a fresh activation literal, and solving a candidate means running the
// one persistent solver under the assumption that its activation literal
// is true (and every other grid's is false). Clauses learnt while probing
// one candidate mention the activation literals explicitly, so they stay
// globally sound and keep pruning the next candidate; CEGAR
// counterexample entries are grid-independent knowledge and are stamped
// into every skeleton, so a truth-table point one candidate stumbled over
// never has to be rediscovered by another.
//
// A pool is safe for concurrent use; candidates that share an engine
// serialize on it (distinct orientations — and distinct covers, as in the
// DS sub-syntheses — still run in parallel).
type SharedPool struct {
	mu      sync.Mutex
	engines map[poolKey]*sharedEngine
}

// NewSharedPool returns an empty pool. One pool per synthesis is the
// intended scope: the engines hold solvers whose size grows with every
// grid skeleton, so the pool should live exactly as long as the search
// that amortizes them.
func NewSharedPool() *SharedPool {
	return &SharedPool{engines: make(map[poolKey]*sharedEngine)}
}

// poolKey identifies one engine: the encoded cover, the orientation, and
// the option fields that change the stamped formula.
type poolKey struct {
	cover     string
	dual      bool
	facts     bool
	degree    bool
	symmetry  bool
	fullTL    bool
	strict    bool
	longThres int
}

func keyOf(enc cube.Cover, dual bool, opt Options) poolKey {
	return poolKey{
		cover:     memo.CoverKey(enc),
		dual:      dual,
		facts:     !opt.DisableFacts,
		degree:    !opt.DisableDegree,
		symmetry:  !opt.DisableSymmetry,
		fullTL:    opt.FullTL,
		strict:    opt.StrictProducts,
		longThres: opt.longThreshold(),
	}
}

// engine returns the pool's engine for (enc, dual), creating it on first
// use. The caller must hold the returned engine's lock while solving.
func (p *SharedPool) engine(enc cube.Cover, dual bool, opt Options) *sharedEngine {
	k := keyOf(enc, dual, opt)
	p.mu.Lock()
	defer p.mu.Unlock()
	if e, ok := p.engines[k]; ok {
		return e
	}
	e := &sharedEngine{
		s:      sat.New(0),
		enc:    enc,
		encTab: memo.TableOf(enc),
		tl:     buildTL(enc, opt.FullTL),
		dual:   dual,
		opt:    opt,
		grids:  make(map[lattice.Grid]*gridSkeleton),
	}
	// Seed the shared entry set with one on- and one off-entry of the
	// encoded function, exactly like the per-candidate engine: every
	// skeleton will be stamped with them before its first solve.
	var sawOn, sawOff bool
	for t := uint64(0); t < e.encTab.Size() && (!sawOn || !sawOff); t++ {
		if v := e.encTab.Get(t); v && !sawOn {
			sawOn = true
			e.noteEntry(t)
		} else if !v && !sawOff {
			sawOff = true
			e.noteEntry(t)
		}
	}
	p.engines[k] = e
	return e
}

// sharedEngine is one persistent assumption-based solver holding the
// skeletons of every grid probed so far for one (cover, orientation).
type sharedEngine struct {
	mu     sync.Mutex
	s      *sat.Solver
	enc    cube.Cover
	encTab *truth.Table
	tl     []targetLit
	dual   bool
	opt    Options // formula-shaping fields only; Limits/Span come per call

	grids map[lattice.Grid]*gridSkeleton
	// entryOrder is the shared CEGAR knowledge: every truth-table entry
	// any candidate's refinement discovered, in discovery order. entrySet
	// mirrors it for membership tests.
	entryOrder []uint64
	entrySet   map[uint64]bool
	// lastGrid is the grid the previous solveGrid call probed; a switch
	// to a different grid is the moment the learnt-quality prune runs.
	lastGrid lattice.Grid
	haveLast bool
}

// gridSkeleton is one grid's slice of the shared formula.
type gridSkeleton struct {
	g       lattice.Grid
	act     sat.Lit        // activation literal guarding the skeleton
	mapVars [][]sat.Lit    // [cell][tlIdx]
	paths   []lattice.Path // memo-shared; read-only
	entries map[uint64]bool
	clauses int // clauses belonging to this grid, guards included
}

func (e *sharedEngine) noteEntry(t uint64) {
	if e.entrySet == nil {
		e.entrySet = make(map[uint64]bool)
	}
	if !e.entrySet[t] {
		e.entrySet[t] = true
		e.entryOrder = append(e.entryOrder, t)
	}
}

// lit allocates a fresh solver variable as a positive literal.
func (e *sharedEngine) lit() sat.Lit { return sat.MkLit(e.s.AddVar(), false) }

// stamp writes one clause straight into the shared solver — no Builder,
// no debug names — and counts it against the skeleton.
func (e *sharedEngine) stamp(sk *gridSkeleton, lits ...sat.Lit) {
	e.s.AddClause(lits...)
	sk.clauses++
}

// guarded stamps (¬act ∨ C). Only clauses that force something positive
// about the grid need the guard: every other clause of a skeleton is
// satisfied by the all-false assignment of its own variables, so it can
// stay unguarded (cheaper to propagate, and binary clauses stay binary).
func (e *sharedEngine) guarded(sk *gridSkeleton, lits ...sat.Lit) {
	cls := make([]sat.Lit, 0, len(lits)+1)
	cls = append(cls, sk.act.Not())
	cls = append(cls, lits...)
	e.stamp(sk, cls...)
}

// skeleton returns the grid's slice of the formula, stamping it on first
// use, and brings its entry set up to date with the shared knowledge —
// bounded by the transfer quality filter: at most limit of the missing
// entries transfer in, most recent first (the search frontier's
// discoveries; a negative limit transfers everything). Returns the
// skeleton, whether it was reused, the clause count of the transferred
// entries, and how many entries the filter dropped. Dropping is
// speed-only: the skeleton stays a relaxation of the full LM problem, so
// Unsat remains definitive and a dropped entry that matters is
// rediscovered by this candidate's own refinement.
func (e *sharedEngine) skeleton(g lattice.Grid, limit int) (sk *gridSkeleton, reused bool, transferred, filtered int) {
	sk, reused = e.grids[g]
	if !reused {
		sk = e.newSkeleton(g)
		e.grids[g] = sk
	}
	before := sk.clauses
	missing := make([]uint64, 0, len(e.entryOrder))
	for _, t := range e.entryOrder {
		if !sk.entries[t] {
			missing = append(missing, t)
		}
	}
	keep := missing
	if limit >= 0 && len(missing) > limit {
		keep = missing[len(missing)-limit:]
		filtered = len(missing) - limit
	}
	for _, t := range keep {
		e.stampEntry(sk, t)
	}
	return sk, reused, sk.clauses - before, filtered
}

// newSkeleton stamps the entry-independent part of one grid's encoding:
// mapping variables with a guarded at-least-one (the at-most-one pairs
// are self-satisfiable and stay unguarded), the degree / strict-product
// constraints with guarded ORs, and the unguarded symmetry break. This
// mirrors newProblem exactly, modulo the activation guard.
func (e *sharedEngine) newSkeleton(g lattice.Grid) *gridSkeleton {
	sk := &gridSkeleton{g: g, entries: make(map[uint64]bool)}
	sk.paths = memo.Paths(g, e.dual)
	sk.act = e.lit()
	cells := g.Cells()

	sk.mapVars = make([][]sat.Lit, cells)
	for cell := 0; cell < cells; cell++ {
		row := make([]sat.Lit, len(e.tl))
		for j := range row {
			row[j] = e.lit()
		}
		sk.mapVars[cell] = row
		e.guarded(sk, row...)
		for i := 0; i < len(row); i++ {
			for j := i + 1; j < len(row); j++ {
				e.stamp(sk, row[i].Not(), row[j].Not())
			}
		}
	}
	if !e.opt.DisableDegree {
		e.stampDegree(sk)
	}
	if e.opt.StrictProducts {
		e.stampStrict(sk)
	}
	if !e.opt.DisableSymmetry {
		e.stampSymmetry(sk)
	}
	return sk
}

// litChoices indexes the TL set entries a cube's literals allow.
func (e *sharedEngine) litChoices(c cube.Cube, allowOne bool) []int {
	var idx []int
	for j, tl := range e.tl {
		switch tl.Kind {
		case lattice.Const1:
			if allowOne {
				idx = append(idx, j)
			}
		case lattice.PosVar:
			if c.HasPos(tl.Var) {
				idx = append(idx, j)
			}
		case lattice.NegVar:
			if c.HasNeg(tl.Var) {
				idx = append(idx, j)
			}
		}
	}
	return idx
}

// stampRealization is addRealization with the activation guard on the
// positive OR(z): the z→mapping clauses are satisfied by all-false z.
func (e *sharedEngine) stampRealization(sk *gridSkeleton, q cube.Cube, cands []lattice.Path, allowOne bool) {
	if len(cands) == 0 {
		return
	}
	choices := e.litChoices(q, allowOne)
	or := make([]sat.Lit, 0, len(cands))
	for _, path := range cands {
		z := e.lit()
		for _, cell := range path.Cells {
			cls := make([]sat.Lit, 0, len(choices)+1)
			cls = append(cls, z.Not())
			for _, j := range choices {
				cls = append(cls, sk.mapVars[cell][j])
			}
			e.stamp(sk, cls...)
		}
		or = append(or, z)
	}
	e.guarded(sk, or...)
}

func (e *sharedEngine) stampDegree(sk *gridSkeleton) {
	maxPath := 0
	for _, path := range sk.paths {
		if path.Len() > maxPath {
			maxPath = path.Len()
		}
	}
	delta := e.enc.Degree()
	long := e.opt.longThreshold()
	for _, q := range e.enc.Cubes {
		nl := q.NumLiterals()
		if nl == delta && delta == maxPath {
			var cands []lattice.Path
			for _, path := range sk.paths {
				if path.Len() == delta {
					cands = append(cands, path)
				}
			}
			e.stampRealization(sk, q, cands, false)
		} else if nl > long {
			var cands []lattice.Path
			for _, path := range sk.paths {
				if path.Len() >= nl {
					cands = append(cands, path)
				}
			}
			e.stampRealization(sk, q, cands, true)
		}
	}
}

func (e *sharedEngine) stampStrict(sk *gridSkeleton) {
	for _, q := range e.enc.Cubes {
		choices := e.litChoices(q, true)
		or := make([]sat.Lit, 0, len(sk.paths))
		for _, path := range sk.paths {
			if path.Len() < q.NumLiterals() {
				continue
			}
			z := e.lit()
			for _, cell := range path.Cells {
				cls := make([]sat.Lit, 0, len(choices)+1)
				cls = append(cls, z.Not())
				for _, j := range choices {
					cls = append(cls, sk.mapVars[cell][j])
				}
				e.stamp(sk, cls...)
			}
			or = append(or, z)
		}
		if len(or) == 0 {
			// No path can host this product. The monolithic encoder emits
			// the empty clause here; in a shared solver that would poison
			// every other grid, so force only this grid off instead.
			e.guarded(sk)
			return
		}
		e.guarded(sk, or...)
	}
}

func (e *sharedEngine) stampSymmetry(sk *gridSkeleton) {
	g := sk.g
	choiceLE := func(a, b int) {
		for j := 1; j < len(e.tl); j++ {
			for k := 0; k < j; k++ {
				e.stamp(sk, sk.mapVars[a][j].Not(), sk.mapVars[b][k].Not())
			}
		}
	}
	c00 := g.Cell(0, 0)
	if g.N > 1 {
		choiceLE(c00, g.Cell(0, g.N-1))
	}
	if g.M > 1 {
		choiceLE(c00, g.Cell(g.M-1, 0))
	}
}

// stampEntry writes the clauses of one truth-table entry for one grid
// from the skeleton's path templates: per-cell Y variables linked to the
// mapping choice, then the off-entry per-path clauses or the on-entry
// path disjunction plus the connectivity facts. Everything here except
// the positive ORs is satisfied by the all-false assignment, so only
// those carry the activation guard — which is exactly what lets an
// entry, once stamped, keep constraining the grid across later
// activations and lets the entry knowledge transfer between candidates.
func (e *sharedEngine) stampEntry(sk *gridSkeleton, t uint64) {
	val := e.encTab.Get(t)
	cells := sk.g.Cells()
	yBase := e.s.NumVars()
	e.s.EnsureVars(yBase + cells)
	y := func(cell int) sat.Lit { return sat.MkLit(yBase+cell, false) }

	for cell := 0; cell < cells; cell++ {
		for j := range e.tl {
			if e.tl[j].Eval(t) {
				e.stamp(sk, sk.mapVars[cell][j].Not(), y(cell))
			} else {
				e.stamp(sk, sk.mapVars[cell][j].Not(), y(cell).Not())
			}
		}
	}
	if !val {
		var buf []sat.Lit
		for _, path := range sk.paths {
			buf = buf[:0]
			for _, cell := range path.Cells {
				buf = append(buf, y(int(cell)).Not())
			}
			e.stamp(sk, buf...)
		}
	} else {
		or := make([]sat.Lit, 0, len(sk.paths))
		for _, path := range sk.paths {
			a := e.lit()
			for _, cell := range path.Cells {
				e.stamp(sk, a.Not(), y(int(cell)))
			}
			or = append(or, a)
		}
		e.guarded(sk, or...)
		if !e.opt.DisableFacts {
			e.stampFacts(sk, y)
		}
	}
	sk.entries[t] = true
}

// stampFacts mirrors addFacts: both structural facts are positive ORs, so
// both take the guard; the pair implications stay unguarded.
func (e *sharedEngine) stampFacts(sk *gridSkeleton, y func(int) sat.Lit) {
	g := sk.g
	ranks, perRank := g.M, g.N
	rankCell := func(rank, i int) int { return g.Cell(rank, i) }
	if e.dual {
		ranks, perRank = g.N, g.M
		rankCell = func(rank, i int) int { return g.Cell(i, rank) }
	}
	for r := 0; r < ranks; r++ {
		cls := make([]sat.Lit, perRank)
		for i := 0; i < perRank; i++ {
			cls[i] = y(rankCell(r, i))
		}
		e.guarded(sk, cls...)
	}
	for r := 0; r+1 < ranks; r++ {
		var or []sat.Lit
		for i := 0; i < perRank; i++ {
			jLo, jHi := i, i
			if e.dual {
				jLo, jHi = i-1, i+1
			}
			for j := jLo; j <= jHi; j++ {
				if j < 0 || j >= perRank {
					continue
				}
				pair := e.lit()
				e.stamp(sk, pair.Not(), y(rankCell(r, i)))
				e.stamp(sk, pair.Not(), y(rankCell(r+1, j)))
				or = append(or, pair)
			}
		}
		e.guarded(sk, or...)
	}
}

// decode extracts the active grid's assignment from the solver model,
// with the dual constant swap of problem.decode.
func (e *sharedEngine) decode(sk *gridSkeleton) *lattice.Assignment {
	a := lattice.NewAssignment(sk.g)
	for cell := range sk.mapVars {
		for j, mv := range sk.mapVars[cell] {
			if e.s.Model(mv.Var()) {
				ent := e.tl[j]
				if e.dual {
					switch ent.Kind {
					case lattice.Const0:
						ent = targetLit{Kind: lattice.Const1}
					case lattice.Const1:
						ent = targetLit{Kind: lattice.Const0}
					}
				}
				a.Entries[cell] = ent
				break
			}
		}
	}
	return a
}

// assumptions builds the call's assumption vector: the probed grid's
// activation literal true, every other registered grid's false. The
// negative assumptions are not needed for soundness (an inactive grid's
// guarded clauses are satisfiable outright) but pin the model and the
// search away from foreign skeletons.
func (e *sharedEngine) assumptions(sk *gridSkeleton) []sat.Lit {
	as := make([]sat.Lit, 0, len(e.grids))
	as = append(as, sk.act)
	for _, other := range e.grids {
		if other != sk {
			as = append(as, other.act.Not())
		}
	}
	return as
}

// solveGrid runs the CEGAR refinement for one candidate grid on the
// shared solver. target/targetTab describe f (what the decoded
// assignment must implement); the engine encodes enc, which is f or f^D
// depending on orientation.
func (e *sharedEngine) solveGrid(target cube.Cover, targetTab *truth.Table,
	g lattice.Grid, opt Options, deadline time.Time) (res Result, err error) {
	e.mu.Lock()
	defer e.mu.Unlock()

	clausesBefore := 0
	if prev, ok := e.grids[g]; ok {
		clausesBefore = prev.clauses
	}
	// Grid switch: before stamping the new candidate, shed the learnt
	// clauses whose quality says they mostly served the previous one.
	pruned := 0
	if e.haveLast && e.lastGrid != g {
		if maxLBD, maxSize, on := opt.learntPrune(); on {
			pruned = e.s.PruneLearnts(maxLBD, maxSize)
		}
	}
	e.lastGrid, e.haveLast = g, true

	sk, reused, transferred, filtered := e.skeleton(g, opt.cexTransferLimit())
	res = Result{
		UsedDual:              e.dual,
		TransferredCEXClauses: transferred,
		TransferFiltered:      filtered,
		PrunedLearnts:         pruned,
	}
	if reused {
		res.ReusedSolvers = 1
		mSharedReused.Inc()
	}
	mSharedTransfer.Add(int64(transferred))
	mSharedFiltered.Add(int64(filtered))
	mSharedPruned.Add(int64(pruned))

	cand, setSpan := startCandidate(opt.Span, g, e.dual, "shared", e.s)
	defer func() {
		res.StampedClauses = sk.clauses - clausesBefore
		res.AddedClauses = res.StampedClauses
		mSharedStamped.Add(int64(res.StampedClauses))
		mClausesAdded.Add(int64(res.StampedClauses))
		mClausesRebld.Add(int64(res.RebuiltClauses))
		noteStatus(cand, res)
		cand.SetInt("stamped_clauses", int64(res.StampedClauses))
		cand.SetInt("transferred_cex_clauses", int64(transferred))
		cand.SetInt("transfer_filtered", int64(filtered))
		cand.SetInt("learnts_pruned", int64(pruned))
		cand.SetInt("reused", int64(res.ReusedSolvers))
		cand.End()
	}()

	for {
		select {
		case <-opt.Limits.Interrupt:
			res.Status = sat.Unknown
			return res, nil
		default:
		}
		iterSpan := cand.Child("CegarIter")
		iterSpan.SetInt("iter", int64(res.CegarIters))
		res.CegarIters++
		res.RebuiltClauses += sk.clauses
		mCegarIters.Inc()

		lims := opt.Limits
		if lims.MaxConflicts > 0 {
			// Relative to the conflicts the shared solver has already spent
			// (across every candidate), exactly like the per-candidate
			// engine's persistent-solver accounting.
			lims.MaxConflicts += e.s.Stats().Conflicts
		}
		if !deadline.IsZero() {
			remain := time.Until(deadline)
			if remain <= 0 {
				res.Status = sat.Unknown
				iterSpan.SetStr("outcome", "deadline")
				iterSpan.End()
				return res, nil
			}
			lims.Timeout = remain
		}
		solveSpan := iterSpan.Child("SatSolve")
		setSpan(solveSpan)
		st := e.s.SolveAssume(lims, e.assumptions(sk)...)
		solveSpan.End()
		res.Status = st
		res.Vars = e.s.NumVars()
		res.Clauses = sk.clauses
		res.SolverStat = e.s.Stats()
		if st != sat.Sat {
			if st == sat.Unsat {
				core := e.s.FinalCore()
				res.AssumptionCoreSize = len(core)
				hAssumeCore.Observe(int64(len(core)))
				iterSpan.SetInt("core", int64(len(core)))
			}
			iterSpan.SetStr("outcome", st.String())
			iterSpan.End()
			return res, nil // Unsat under act is definitive for this grid
		}
		decoded := e.decode(sk)
		cex, ok := findMismatch(decoded, targetTab)
		if ok {
			res.Assignment = decoded
			iterSpan.SetStr("outcome", "verified")
			iterSpan.End()
			return res, nil
		}
		entry := cex
		if e.dual {
			entry = ^cex & (e.encTab.Size() - 1)
		}
		if sk.entries[entry] {
			iterSpan.SetStr("outcome", "stuck")
			iterSpan.End()
			return res, fmt.Errorf("encode: shared CEGAR failed to make progress on %v (entry %d)", g, entry)
		}
		iterSpan.SetStr("outcome", "counterexample")
		iterSpan.SetInt("cex", int64(entry))
		e.noteEntry(entry)
		e.stampEntry(sk, entry)
		iterSpan.End()
	}
}

// solveShared is SolveLMCegar's per-attempt hook into the pool.
func (p *SharedPool) solveShared(enc, target cube.Cover, targetTab *truth.Table,
	g lattice.Grid, dual bool, opt Options, deadline time.Time) (Result, error) {
	return p.engine(enc, dual, opt).solveGrid(target, targetTab, g, opt, deadline)
}

// Warm pre-loads counterexample knowledge discovered before the pool
// existed. inputs are truth-table indexes of the target where earlier
// (fresh-engine) candidates mismatched — the Result.CEXInputs trail. A
// search that starts on fresh engines and later switches to the pool
// would otherwise open cold engines and pay to rediscover exactly those
// entries; Warm notes them up front in both orientations' terms (the
// primal engine constrains f at the input itself, the dual engine f^D
// at its bitwise complement). Stamping into grid skeletons still goes
// through the transfer quality filter, so warming — like any entry
// transfer — only tightens the relaxation and cannot change answers.
func (p *SharedPool) Warm(target, targetDual cube.Cover, opt Options, inputs []uint64) {
	if len(inputs) == 0 {
		return
	}
	orients := []struct {
		enc  cube.Cover
		dual bool
	}{{target, false}, {targetDual, true}}
	for _, o := range orients {
		// Respect the orientation restriction: an engine the search will
		// never solve on has no use for the entries.
		if (opt.Mode == PrimalOnly && o.dual) || (opt.Mode == DualOnly && !o.dual) {
			continue
		}
		e := p.engine(o.enc, o.dual, opt)
		e.mu.Lock()
		mask := e.encTab.Size() - 1
		for _, in := range inputs {
			t := in & mask
			if o.dual {
				t = ^in & mask
			}
			e.noteEntry(t)
		}
		e.mu.Unlock()
	}
}
