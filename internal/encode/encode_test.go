package encode

import (
	"math/rand"
	"testing"

	"github.com/lattice-tools/janus/internal/cube"
	"github.com/lattice-tools/janus/internal/lattice"
	"github.com/lattice-tools/janus/internal/minimize"
	"github.com/lattice-tools/janus/internal/sat"
)

func isopPair(f cube.Cover) (cube.Cover, cube.Cover) {
	return minimize.ISOPDual(f)
}

// fig1 is the paper's running example f = abcd + a'b'c'd'.
func fig1() cube.Cover {
	return cube.NewCover(4,
		cube.FromLiterals([]int{0, 1, 2, 3}, nil),
		cube.FromLiterals(nil, []int{0, 1, 2, 3}))
}

func TestStructuralCheckFig1(t *testing.T) {
	f, d := isopPair(fig1())
	// The paper: f_{8×1} (1 product) and f_{2×4} (max product len 2) both
	// fail the structural check for fig1's f.
	if StructuralCheck(f, d, lattice.Grid{M: 8, N: 1}) {
		t.Fatal("8x1 must fail the structural check")
	}
	if StructuralCheck(f, d, lattice.Grid{M: 2, N: 4}) {
		t.Fatal("2x4 must fail the structural check")
	}
	// 4x2 passes (and indeed realizes f).
	if !StructuralCheck(f, d, lattice.Grid{M: 4, N: 2}) {
		t.Fatal("4x2 must pass the structural check")
	}
}

func TestSolveLMFig1On4x2(t *testing.T) {
	f, d := isopPair(fig1())
	res, err := SolveLM(f, d, lattice.Grid{M: 4, N: 2}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != sat.Sat {
		t.Fatalf("status = %v, want SAT", res.Status)
	}
	if res.Assignment == nil || !res.Assignment.Realizes(f) {
		t.Fatal("assignment missing or wrong")
	}
}

func TestSolveLM3x3SharedLiterals(t *testing.T) {
	// A Fig. 1(c)-style function whose two degree-4 products share the cd
	// literals IS realizable on the 3×3 lattice (the shared cells carry c
	// and d): f = a'bcd + ab'cd.
	f, d := isopPair(cube.NewCover(4,
		cube.FromLiterals([]int{1, 2, 3}, []int{0}),
		cube.FromLiterals([]int{0, 2, 3}, []int{1})))
	res, err := SolveLM(f, d, lattice.Grid{M: 3, N: 3}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != sat.Sat {
		t.Fatalf("status = %v, want SAT", res.Status)
	}
}

func TestSolveLMFig1Not3x3(t *testing.T) {
	// f = abcd + a'b'c'd' is NOT realizable on 3×3: the two products share
	// no literal, so their live paths can overlap only on constant-1
	// cells, and no two of the nine 3×3 paths have ≥4 private cells each.
	// The encoding must agree.
	f, d := isopPair(fig1())
	res, err := SolveLM(f, d, lattice.Grid{M: 3, N: 3}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != sat.Unsat {
		t.Fatalf("status = %v, want UNSAT", res.Status)
	}
}

func TestSolveLMInfeasible(t *testing.T) {
	// f = abcd + a'b'c'd' cannot fit a 2×2 lattice (max path length 2).
	f, d := isopPair(fig1())
	res, err := SolveLM(f, d, lattice.Grid{M: 2, N: 2}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != sat.Unsat {
		t.Fatalf("status = %v, want UNSAT", res.Status)
	}
	if !res.Structural {
		t.Fatal("2x2 should be refuted structurally")
	}
}

func TestSolveLMUnsatBySolver(t *testing.T) {
	// f = ab + cd on 2×2: structural check passes (two products of len 2,
	// f_{2×2} has two products of len 2) but no assignment exists: the two
	// columns are the only paths, realizing ab and cd needs all four cells,
	// yet f(1,1,0,0)=1 requires column1 = ab... and f(0,0,1,1)=1 requires
	// column2 = cd; then f(1,0,1,0) would need a path a&c -> check SAT says
	// UNSAT or finds something valid. We only require: if SAT, verified.
	f, d := isopPair(cube.NewCover(4,
		cube.FromLiterals([]int{0, 1}, nil),
		cube.FromLiterals([]int{2, 3}, nil)))
	res, err := SolveLM(f, d, lattice.Grid{M: 2, N: 2}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status == sat.Sat && !res.Assignment.Realizes(f) {
		t.Fatal("SAT result must verify")
	}
}

func TestSolveLMConstants(t *testing.T) {
	g := lattice.Grid{M: 2, N: 2}
	res, err := SolveLM(cube.Zero(2), cube.One(2), g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != sat.Sat || !res.Assignment.Realizes(cube.Zero(2)) {
		t.Fatal("constant 0 mapping wrong")
	}
	res, err = SolveLM(cube.One(2), cube.Zero(2), g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != sat.Sat || !res.Assignment.Realizes(cube.One(2)) {
		t.Fatal("constant 1 mapping wrong")
	}
}

func TestSolveLMSingleLiteral(t *testing.T) {
	f, d := isopPair(cube.NewCover(1, cube.FromLiterals([]int{0}, nil)))
	res, err := SolveLM(f, d, lattice.Grid{M: 1, N: 1}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != sat.Sat {
		t.Fatalf("status = %v", res.Status)
	}
}

func TestPrimalAndDualModesSound(t *testing.T) {
	// The two formulations are each sound (SAT ⇒ verified realization) but
	// incomplete in different ways; Auto must succeed whenever either does.
	fns := []cube.Cover{
		cube.NewCover(3,
			cube.FromLiterals([]int{0, 1}, nil),
			cube.FromLiterals([]int{2}, []int{0})),
		cube.NewCover(3,
			cube.FromLiterals([]int{0}, nil),
			cube.FromLiterals(nil, []int{1, 2})),
	}
	grids := []lattice.Grid{{M: 2, N: 2}, {M: 3, N: 2}, {M: 2, N: 3}, {M: 3, N: 3}}
	for _, raw := range fns {
		f, d := isopPair(raw)
		for _, g := range grids {
			rp, err := SolveLM(f, d, g, Options{Mode: PrimalOnly})
			if err != nil {
				t.Fatalf("primal %v: %v", g, err)
			}
			rd, err := SolveLM(f, d, g, Options{Mode: DualOnly})
			if err != nil {
				t.Fatalf("dual %v: %v", g, err)
			}
			ra, err := SolveLM(f, d, g, Options{})
			if err != nil {
				t.Fatalf("auto %v: %v", g, err)
			}
			if (rp.Status == sat.Sat || rd.Status == sat.Sat) && ra.Status != sat.Sat {
				t.Fatalf("%v on %v: auto missed a solution (primal=%v dual=%v)",
					f, g, rp.Status, rd.Status)
			}
		}
	}
}

func TestDualDecodeVerifies(t *testing.T) {
	// Degree constraints are disabled because they tie realizations to the
	// specific dual ISOP products, which is exactly the incompleteness the
	// Auto fallback exists for; without them the dual formulation is exact
	// within its TL set and must find the 4×2 solution.
	f, d := isopPair(fig1())
	res, err := SolveLM(f, d, lattice.Grid{M: 4, N: 2},
		Options{Mode: DualOnly, DisableDegree: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != sat.Sat {
		t.Fatalf("status = %v", res.Status)
	}
	if !res.UsedDual {
		t.Fatal("UsedDual flag not set")
	}
	if !res.Assignment.Realizes(f) {
		t.Fatal("dual-decoded assignment must realize f")
	}
}

func TestAblationOptionsStillSound(t *testing.T) {
	f, d := isopPair(fig1())
	for _, opt := range []Options{
		{DisableFacts: true},
		{DisableDegree: true},
		{DisableFacts: true, DisableDegree: true},
	} {
		res, err := SolveLM(f, d, lattice.Grid{M: 4, N: 2}, opt)
		if err != nil {
			t.Fatal(err)
		}
		if res.Status != sat.Sat {
			t.Fatalf("opts %+v: status = %v", opt, res.Status)
		}
	}
}

func randomFunc(r *rand.Rand, n, k int) cube.Cover {
	f := cube.Zero(n)
	for i := 0; i < k; i++ {
		var c cube.Cube
		for v := 0; v < n; v++ {
			switch r.Intn(3) {
			case 0:
				c = c.WithPos(v)
			case 1:
				c = c.WithNeg(v)
			}
		}
		if c.NumLiterals() == 0 {
			continue
		}
		f.Cubes = append(f.Cubes, c)
	}
	return f
}

// TestRandomLMRoundTrip: for random small functions and grids, any SAT
// answer must carry a verified assignment (SolveLM errors otherwise), and
// bigger-lattice monotonicity must hold: if f fits m×n it fits m×(n+1).
func TestRandomLMRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	grids := []lattice.Grid{{M: 2, N: 2}, {M: 3, N: 2}, {M: 2, N: 3}, {M: 3, N: 3}}
	for trial := 0; trial < 12; trial++ {
		raw := randomFunc(rng, 3, 2)
		if raw.IsZero() {
			continue
		}
		f, d := isopPair(raw)
		if f.IsZero() || f.IsOne() {
			continue
		}
		for _, g := range grids {
			res, err := SolveLM(f, d, g, Options{})
			if err != nil {
				t.Fatalf("trial %d grid %v: %v", trial, g, err)
			}
			if res.Status == sat.Sat {
				wider := lattice.Grid{M: g.M, N: g.N + 1}
				res2, err := SolveLM(f, d, wider, Options{})
				if err != nil {
					t.Fatal(err)
				}
				if res2.Status != sat.Sat {
					t.Fatalf("monotonicity violated: %v fits %v but not %v", f, g, wider)
				}
			}
		}
	}
}

func TestComplexityReported(t *testing.T) {
	f, d := isopPair(fig1())
	res, err := SolveLM(f, d, lattice.Grid{M: 4, N: 2}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Vars == 0 || res.Clauses == 0 {
		t.Fatal("complexity counters empty")
	}
}

func TestOversizedFormulationUnknown(t *testing.T) {
	// An 8-input target on an 8×8 lattice: both formulations blow the
	// work cap (139k+ paths × 256 entries), so SolveLM must answer
	// Unknown rather than attempt to materialize the CNF.
	var pos []int
	for v := 0; v < 8; v++ {
		pos = append(pos, v)
	}
	f, d := isopPair(cube.NewCover(8,
		cube.FromLiterals(pos, nil),
		cube.FromLiterals(nil, pos)))
	res, err := SolveLM(f, d, lattice.Grid{M: 8, N: 8}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != sat.Unknown {
		t.Fatalf("status = %v, want UNKNOWN for oversized formulation", res.Status)
	}
}
