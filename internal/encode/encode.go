// Package encode formulates the lattice mapping (LM) problem as SAT,
// following Section III-A of the paper.
//
// Given a target function f (ISOP) and an m×n lattice, the encoding asks
// for an assignment of target literals and constants to the lattice's
// switch control inputs such that the lattice's top–bottom connectivity
// function equals f. Mapping variables pick one target literal per switch;
// per-truth-table-entry circuit variables carry the switch states; off
// entries contribute one clause per lattice path, on entries contribute a
// Tseitin OR over path variables plus the paper's two connectivity facts.
//
// The dual formulation — realizing f^D with the 8-connected left–right
// paths — is built symmetrically, and the problem with the smaller
// variables × clauses complexity is handed to the SAT solver. A model of
// the dual problem converts to a primal lattice implementation by swapping
// the constants 0 and 1.
package encode

import (
	"errors"
	"fmt"

	"github.com/lattice-tools/janus/internal/cnf"
	"github.com/lattice-tools/janus/internal/cube"
	"github.com/lattice-tools/janus/internal/lattice"
	"github.com/lattice-tools/janus/internal/memo"
	"github.com/lattice-tools/janus/internal/obsv"
	"github.com/lattice-tools/janus/internal/sat"
)

// Mode selects which of the two LM formulations to use.
type Mode int

const (
	// Auto picks the formulation with the smaller vars×clauses complexity
	// (the paper's rule).
	Auto Mode = iota
	// PrimalOnly always uses the top–bottom formulation.
	PrimalOnly
	// DualOnly always uses the left–right dual formulation.
	DualOnly
)

// Options tunes the LM encoding. The zero value enables everything the
// paper describes with no SAT budget.
type Options struct {
	Mode Mode
	// DisableFacts drops the two on-entry connectivity facts (ablation).
	DisableFacts bool
	// DisableDegree drops the degree-matching and long-product constraints
	// (ablation).
	DisableDegree bool
	// LongProductThreshold is the paper's empirical literal-count cutoff
	// above which a product must be realized by an equally long lattice
	// path. Zero means the default of 5.
	LongProductThreshold int
	// DisableSymmetry drops the mirror symmetry-breaking constraints
	// (ablation). Reversing the rows or the columns of a lattice preserves
	// its plate-to-plate connectivity function, so the encoding may demand
	// the corner-minimal representative of each solution orbit.
	DisableSymmetry bool
	// FullTL maps switches over every literal of every variable instead of
	// only the literals appearing in the ISOP, as the exact method of
	// Gange et al. effectively allows.
	FullTL bool
	// StrictProducts forces every target product to be realized by a path
	// whose cells carry only that product's literals (plus constant 1) —
	// the restriction the approximate method of Gange et al. imposes.
	StrictProducts bool
	// CEGAR switches SolveLM to the counterexample-guided engine, which
	// materializes truth-table entries lazily (see SolveLMCegar).
	CEGAR bool
	// Portfolio races the primal and dual CEGAR orientations of a
	// candidate concurrently and cancels the loser as soon as either
	// finds a satisfying assignment (a per-orientation refutation is not
	// definitive — the heuristic degree constraints are approximate — so
	// non-Sat verdicts wait for both sides, exactly like the sequential
	// order does). Implies the CEGAR engine. The ROADMAP calls this
	// portfolio solving; it replaces the sequential sparser-first order
	// when the sparser orientation is the slower one.
	Portfolio bool
	// Shared, when non-nil, makes the CEGAR engine solve every candidate
	// grid on one persistent assumption-based solver per (cover,
	// orientation) drawn from this pool, instead of a fresh solver per
	// candidate: skeletons are guarded by activation literals, entry
	// clauses are stamped from path templates, and counterexample entries
	// transfer between candidates (see SharedPool). Implies CEGAR; ignored
	// under Portfolio, whose two racing goroutines need independent
	// solvers.
	Shared *SharedPool
	// CEXTransferLimit caps how many already-known counterexample entries
	// the shared engine transfers into a grid skeleton per solve, most
	// recent first; older entries are dropped and rediscovered on demand.
	// The filter is speed-only: a skeleton holding fewer entries is a
	// coarser relaxation of the same LM problem, so Unsat stays definitive
	// and Sat is still verified by simulation — answers never change, only
	// how much stale clause freight a shallow candidate pays for. Zero
	// means DefaultCEXTransferLimit; negative disables the filter
	// (transfer everything). Ignored without Shared.
	CEXTransferLimit int
	// SharedLearntLBD and SharedLearntSize gate the learnt clauses a
	// shared engine keeps when it switches to a different candidate grid:
	// learnts with LBD above SharedLearntLBD or more than SharedLearntSize
	// literals are pruned (sat.Solver.PruneLearnts), shedding watch-list
	// freight that mostly mentions the previous grid's activation literal.
	// Zero means the defaults; negative keeps every learnt clause.
	// Ignored without Shared.
	SharedLearntLBD  int
	SharedLearntSize int
	// Limits bounds each SAT call.
	Limits sat.Limits
	// Span, when non-nil, is the parent trace span under which this LM
	// solve opens its Candidate(m×n,orient) spans; nil disables tracing
	// for the call at zero cost (see internal/obsv).
	Span *obsv.Span
}

func (o Options) longThreshold() int {
	if o.LongProductThreshold <= 0 {
		return 5
	}
	return o.LongProductThreshold
}

// Defaults of the shared engine's clause-quality filter. The transfer
// limit keeps roughly the CEGAR working set of one candidate (a few dozen
// entries converge on the paper's instances); the learnt gates mirror the
// "keep the good half" spirit of the solver's own reduceDB but act at
// grid-switch time, when the learnt database is most biased toward the
// previous grid.
const (
	DefaultCEXTransferLimit = 24
	DefaultSharedLearntLBD  = 6
	DefaultSharedLearntSize = 30
)

// cexTransferLimit resolves the per-solve entry-transfer cap; -1 means
// unlimited.
func (o Options) cexTransferLimit() int {
	if o.CEXTransferLimit == 0 {
		return DefaultCEXTransferLimit
	}
	if o.CEXTransferLimit < 0 {
		return -1
	}
	return o.CEXTransferLimit
}

// learntPrune resolves the grid-switch learnt gates; on is false when the
// caller asked to keep everything.
func (o Options) learntPrune() (maxLBD int32, maxSize int, on bool) {
	if o.SharedLearntLBD < 0 || o.SharedLearntSize < 0 {
		return 0, 0, false
	}
	maxLBD = int32(o.SharedLearntLBD)
	if maxLBD == 0 {
		maxLBD = DefaultSharedLearntLBD
	}
	maxSize = o.SharedLearntSize
	if maxSize == 0 {
		maxSize = DefaultSharedLearntSize
	}
	return maxLBD, maxSize, true
}

// Result reports the outcome of an LM solve.
type Result struct {
	Status     sat.Status
	Assignment *lattice.Assignment // non-nil iff Status == Sat
	UsedDual   bool                // dual formulation was chosen
	Vars       int
	Clauses    int
	SolverStat sat.Stats
	Structural bool // true when the structural check already refuted

	// CegarIters counts CEGAR refinement iterations (SAT calls); zero for
	// the monolithic engine.
	CegarIters int
	// AddedClauses counts the clauses actually handed to SAT solvers over
	// the whole solve. For the incremental CEGAR engine each clause is
	// added once to one persistent solver, so this stays close to Clauses;
	// a rebuild-per-iteration engine would re-add the whole formula every
	// round (see RebuiltClauses).
	AddedClauses int
	// RebuiltClauses is the clause volume a rebuild-per-iteration CEGAR
	// engine would have added: the sum over iterations of the formula size
	// at that iteration. AddedClauses/RebuiltClauses is the incremental
	// saving; the two are equal for single-iteration and monolithic
	// solves.
	RebuiltClauses int

	// ReusedSolvers is 1 when the shared engine answered this candidate
	// from a skeleton stamped by an earlier solve (Options.Shared only).
	ReusedSolvers int
	// StampedClauses counts the clauses stamped into the shared solver
	// during this solve: skeleton (first activation only), transferred
	// counterexample entries, and entries this solve's refinement
	// discovered. Equals AddedClauses under Options.Shared.
	StampedClauses int
	// TransferredCEXClauses is the portion of StampedClauses that encodes
	// counterexample entries discovered by *other* candidates — knowledge
	// this solve got for free.
	TransferredCEXClauses int
	// TransferFiltered counts the already-known counterexample entries the
	// quality filter declined to transfer into this solve's skeleton (the
	// drop count next to TransferredCEXClauses' kept clauses); dropped
	// entries are rediscovered by refinement if they matter.
	TransferFiltered int
	// PrunedLearnts counts the learnt clauses the shared engine pruned
	// from its solver (LBD/size gate) when this solve switched it to a
	// different candidate grid.
	PrunedLearnts int
	// CEXInputs are the inputs of the target (primal truth-table
	// indexes) where this solve's candidate mappings mismatched during
	// refinement. They are function-level knowledge, independent of grid
	// and orientation, so a caller that later opens a shared pool for the
	// same target can pre-load them (SharedPool.Warm) instead of paying
	// to rediscover them. Only the fresh per-candidate engine reports
	// them; pool-backed solves feed the pool directly.
	CEXInputs []uint64
	// AssumptionCoreSize is the size of the final-conflict assumption
	// core of the last Unsat answer (Options.Shared only; zero otherwise).
	AssumptionCoreSize int
}

// MaxInputs bounds the target function size for the truth-table-based
// encoding.
const MaxInputs = 16

// maxFormulaWork caps the estimated literal volume per formulation
// (paths × path length × truth-table entries). Wide lattices can have
// millions of (dual) paths, and materializing one clause per path per
// entry — each about a path long — would exhaust memory. A formulation
// over the cap is skipped (and the LM answer degrades to Unknown when
// both are), which the search treats like a SAT timeout.
const maxFormulaWork = 6 << 20

// formulaWork estimates the encoding effort of one formulation with a
// bounded path count; results above maxFormulaWork mean "too big".
func formulaWork(g lattice.Grid, dual bool, nInputs int) int64 {
	avgLen := int64(g.M + g.N/2)
	if dual {
		avgLen = int64(g.N + g.M/2)
	}
	if avgLen < 1 {
		avgLen = 1
	}
	pathLimit := int64(maxFormulaWork)/avgLen>>uint(nInputs) + 1
	paths := g.CountPathsLimited(pathLimit, dual)
	return paths * avgLen * (1 << uint(nInputs))
}

// ErrTooManyInputs is returned when the target has more inputs than the
// encoding supports.
var ErrTooManyInputs = errors.New("encode: target has too many inputs")

// targetLit is one element of the TL set: a literal of the target (as a
// lattice.Entry) or a constant.
type targetLit = lattice.Entry

// buildTL collects the TL set: every literal appearing in the ISOP target
// plus the constants 0 and 1 (or all 2N literals when full is set).
func buildTL(target cube.Cover, full bool) []targetLit {
	tl := []targetLit{{Kind: lattice.Const0}, {Kind: lattice.Const1}}
	pos, neg := target.LiteralSet()
	if full {
		pos = (1 << uint(target.N)) - 1
		neg = pos
	}
	for v := 0; v < target.N; v++ {
		bit := uint64(1) << uint(v)
		if pos&bit != 0 {
			tl = append(tl, targetLit{Kind: lattice.PosVar, Var: v})
		}
		if neg&bit != 0 {
			tl = append(tl, targetLit{Kind: lattice.NegVar, Var: v})
		}
	}
	return tl
}

// StructuralCheck performs the paper's quick refutation: the lattice must
// offer at least as many products as the target, a product at least as
// long as every target product, and the same must hold for the duals.
// Both tests use bounded path enumeration, so the check never
// materializes a large lattice function.
func StructuralCheck(target, targetDual cube.Cover, g lattice.Grid) bool {
	return structuralHalf(target, g, false) && structuralHalf(targetDual, g, true)
}

func structuralHalf(target cube.Cover, g lattice.Grid, dual bool) bool {
	need := int64(len(target.Cubes))
	if g.CountPathsLimited(need, dual) < need {
		return false
	}
	return g.HasPathOfLen(target.Degree(), dual)
}

// problem carries one orientation of the LM encoding.
type problem struct {
	b       *cnf.Builder
	g       lattice.Grid
	tl      []targetLit
	paths   []lattice.Path // memo-shared; read-only
	mapVars [][]sat.Lit    // [cell][tlIdx]
	dual    bool
}

// newProblem builds the entry-independent skeleton of the LM encoding:
// mapping variables with exactly-one per cell, the degree and
// strict-product constraints, and symmetry breaking. Truth-table entries
// are constrained separately via addEntry, so the CEGAR engine can grow
// the formula incrementally on one persistent solver.
func newProblem(target cube.Cover, g lattice.Grid, dual bool, opt Options) *problem {
	p := &problem{b: cnf.NewBuilder(), g: g, tl: buildTL(target, opt.FullTL), dual: dual}
	p.paths = memo.Paths(g, dual)
	cells := g.Cells()

	// Mapping variables with exactly-one per cell.
	p.mapVars = make([][]sat.Lit, cells)
	for cell := 0; cell < cells; cell++ {
		row := make([]sat.Lit, len(p.tl))
		for j := range p.tl {
			row[j] = p.b.NewVar(fmt.Sprintf("m_%d_%d", cell, j))
		}
		p.mapVars[cell] = row
		p.b.ExactlyOne(row...)
	}

	if !opt.DisableDegree {
		p.addDegreeConstraints(target, p.paths, opt)
	}
	if opt.StrictProducts {
		p.addStrictProducts(target, p.paths)
	}
	if !opt.DisableSymmetry {
		p.addSymmetryBreak()
	}
	return p
}

// addEntry constrains one truth-table point: per-entry switch-state
// variables linked to the mapping choice, then the off-entry path clauses
// (Fig. 3(a)) or the on-entry path disjunction plus connectivity facts
// (Fig. 3(b)).
func (p *problem) addEntry(t uint64, val bool, opt Options) {
	cells := p.g.Cells()
	// Per-entry switch-state variables Y[cell].
	y := make([]sat.Lit, cells)
	for cell := 0; cell < cells; cell++ {
		y[cell] = p.b.NewVar(fmt.Sprintf("y_%d_%d", cell, t))
	}
	// Link mapping choices to switch states.
	for cell := 0; cell < cells; cell++ {
		for j, tl := range p.tl {
			if tl.Eval(t) {
				p.b.AddImply(p.mapVars[cell][j], y[cell])
			} else {
				p.b.AddImply(p.mapVars[cell][j], y[cell].Not())
			}
		}
	}
	if !val {
		// Every path must contain an off switch (Fig. 3(a)).
		for _, path := range p.paths {
			clause := make([]sat.Lit, len(path.Cells))
			for i, cell := range path.Cells {
				clause[i] = y[cell].Not()
			}
			p.b.Add(clause...)
		}
		return
	}
	// On entry (Fig. 3(b)): some path fully on.
	or := make([]sat.Lit, len(p.paths))
	for pi, path := range p.paths {
		a := p.b.NewVar(fmt.Sprintf("a_%d_%d", pi, t))
		for _, cell := range path.Cells {
			p.b.AddImply(a, y[cell])
		}
		or[pi] = a
	}
	p.b.Add(or...)
	if !opt.DisableFacts {
		p.addFacts(y, t)
	}
}

// build constructs the CNF for realizing target on the grid's primal
// (dual=false) or dual (dual=true) path structure. entries selects the
// truth-table points to constrain; nil means all 2^N of them (the
// monolithic formulation).
func build(target cube.Cover, g lattice.Grid, dual bool, opt Options, entries []uint64) *problem {
	p := newProblem(target, g, dual, opt)
	tab := memo.TableOf(target)
	if entries == nil {
		entries = make([]uint64, tab.Size())
		for t := range entries {
			entries[t] = uint64(t)
		}
	}
	for _, t := range entries {
		p.addEntry(t, tab.Get(t), opt)
	}
	return p
}

// addSymmetryBreak prunes the row-mirror and column-mirror symmetries of
// the lattice. Both mirrors preserve the top–bottom (and left–right)
// connectivity function, so for any solution the orbit of four mirrored
// solutions contains one whose top-left corner choice index is minimal
// among the four corners; demanding choice(0,0) ≤ choice(0,N−1) and
// choice(0,0) ≤ choice(M−1,0) keeps exactly such representatives.
func (p *problem) addSymmetryBreak() {
	g := p.g
	c00 := g.Cell(0, 0)
	if g.N > 1 {
		p.addChoiceLE(c00, g.Cell(0, g.N-1))
	}
	if g.M > 1 {
		p.addChoiceLE(c00, g.Cell(g.M-1, 0))
	}
}

// addChoiceLE forbids choice(a) > choice(b) over the one-hot mapping
// variables: for every j > k, not (X[a][j] and X[b][k]).
func (p *problem) addChoiceLE(a, b int) {
	for j := 1; j < len(p.tl); j++ {
		for k := 0; k < j; k++ {
			p.b.Add(p.mapVars[a][j].Not(), p.mapVars[b][k].Not())
		}
	}
}

// addStrictProducts is the Gange-style approximate restriction: every
// target product must be realized by some sufficiently long path whose
// cells carry only the product's literals or constant 1.
func (p *problem) addStrictProducts(target cube.Cover, paths []lattice.Path) {
	for qi, q := range target.Cubes {
		var choices []int
		for j, tl := range p.tl {
			switch tl.Kind {
			case lattice.Const1:
				choices = append(choices, j)
			case lattice.PosVar:
				if q.HasPos(tl.Var) {
					choices = append(choices, j)
				}
			case lattice.NegVar:
				if q.HasNeg(tl.Var) {
					choices = append(choices, j)
				}
			}
		}
		var or []sat.Lit
		for pi, path := range paths {
			if path.Len() < q.NumLiterals() {
				continue
			}
			z := p.b.NewVar(fmt.Sprintf("zs_%d_%d", qi, pi))
			for _, cell := range path.Cells {
				clause := make([]sat.Lit, 0, len(choices)+1)
				clause = append(clause, z.Not())
				for _, j := range choices {
					clause = append(clause, p.mapVars[cell][j])
				}
				p.b.Add(clause...)
			}
			or = append(or, z)
		}
		if len(or) == 0 {
			// No path can host this product: force unsatisfiability.
			p.b.Add()
			return
		}
		p.b.Add(or...)
	}
}

// addFacts adds the paper's two structural facts for an on entry: (i)
// every rank (row for the primal orientation, column for the dual) holds
// an on switch; (ii) every two consecutive ranks share an on pair in
// adjacent positions (same column for 4-connectivity; row distance ≤ 1
// for 8-connectivity).
func (p *problem) addFacts(y []sat.Lit, t uint64) {
	g := p.g
	ranks, perRank := g.M, g.N
	rankCell := func(rank, i int) int { return g.Cell(rank, i) }
	if p.dual {
		ranks, perRank = g.N, g.M
		rankCell = func(rank, i int) int { return g.Cell(i, rank) }
	}
	// (i) at least one on switch per rank.
	for r := 0; r < ranks; r++ {
		clause := make([]sat.Lit, perRank)
		for i := 0; i < perRank; i++ {
			clause[i] = y[rankCell(r, i)]
		}
		p.b.Add(clause...)
	}
	// (ii) consecutive ranks share an adjacent on pair.
	for r := 0; r+1 < ranks; r++ {
		var or []sat.Lit
		for i := 0; i < perRank; i++ {
			jLo, jHi := i, i
			if p.dual { // 8-connectivity allows diagonal crossings
				jLo, jHi = i-1, i+1
			}
			for j := jLo; j <= jHi; j++ {
				if j < 0 || j >= perRank {
					continue
				}
				pair := p.b.NewVar(fmt.Sprintf("b_%d_%d_%d_%d", r, i, j, t))
				p.b.AddImply(pair, y[rankCell(r, i)])
				p.b.AddImply(pair, y[rankCell(r+1, j)])
				or = append(or, pair)
			}
		}
		p.b.Add(or...)
	}
}

// addDegreeConstraints adds the paper's third encoding step: when the
// target degree equals the lattice degree, each maximum-degree product
// must be realized by a maximum-length path whose cells map into the
// product's literals; products longer than the threshold must use an
// equally long path (cells may also map to constant 1).
func (p *problem) addDegreeConstraints(target cube.Cover, paths []lattice.Path, opt Options) {
	maxPath := 0
	for _, path := range paths {
		if path.Len() > maxPath {
			maxPath = path.Len()
		}
	}
	delta := target.Degree()
	long := opt.longThreshold()

	// Indexes into the TL set for a given cube's literals (plus const 1).
	litChoices := func(c cube.Cube, allowOne bool) []int {
		var idx []int
		for j, tl := range p.tl {
			switch tl.Kind {
			case lattice.Const1:
				if allowOne {
					idx = append(idx, j)
				}
			case lattice.PosVar:
				if c.HasPos(tl.Var) {
					idx = append(idx, j)
				}
			case lattice.NegVar:
				if c.HasNeg(tl.Var) {
					idx = append(idx, j)
				}
			}
		}
		return idx
	}

	addRealization := func(q cube.Cube, candidates []lattice.Path, allowOne bool, tag string) {
		if len(candidates) == 0 {
			return
		}
		choices := litChoices(q, allowOne)
		var or []sat.Lit
		for pi, path := range candidates {
			z := p.b.NewVar(fmt.Sprintf("%s_%d", tag, pi))
			for _, cell := range path.Cells {
				clause := make([]sat.Lit, 0, len(choices)+1)
				clause = append(clause, z.Not())
				for _, j := range choices {
					clause = append(clause, p.mapVars[cell][j])
				}
				p.b.Add(clause...)
			}
			or = append(or, z)
		}
		p.b.Add(or...)
	}

	for qi, q := range target.Cubes {
		nl := q.NumLiterals()
		if nl == delta && delta == maxPath {
			var cands []lattice.Path
			for _, path := range paths {
				if path.Len() == delta {
					cands = append(cands, path)
				}
			}
			addRealization(q, cands, false, fmt.Sprintf("zdeg_%d", qi))
		} else if nl > long {
			var cands []lattice.Path
			for _, path := range paths {
				if path.Len() >= nl {
					cands = append(cands, path)
				}
			}
			addRealization(q, cands, true, fmt.Sprintf("zlong_%d", qi))
		}
	}
}

// decode extracts the lattice assignment from a SAT model. For the dual
// formulation the constants 0 and 1 are swapped, which by the duality
// theorem turns a realization of f^D on the left–right structure into a
// realization of f on the top–bottom structure.
func (p *problem) decode(s *sat.Solver) *lattice.Assignment {
	a := lattice.NewAssignment(p.g)
	for cell := range p.mapVars {
		for j, mv := range p.mapVars[cell] {
			if s.Model(mv.Var()) {
				e := p.tl[j]
				if p.dual {
					switch e.Kind {
					case lattice.Const0:
						e = targetLit{Kind: lattice.Const1}
					case lattice.Const1:
						e = targetLit{Kind: lattice.Const0}
					}
				}
				a.Entries[cell] = e
				break
			}
		}
	}
	return a
}

// BuildCNF constructs the LM formulation the solver would run (choosing
// primal or dual per the options) without solving it, for inspection or
// DIMACS export. The second result reports whether the dual formulation
// was chosen.
func BuildCNF(target, targetDual cube.Cover, g lattice.Grid, opt Options) (*cnf.Builder, bool, error) {
	if target.N > MaxInputs {
		return nil, false, ErrTooManyInputs
	}
	pw := formulaWork(g, false, target.N)
	dw := formulaWork(g, true, target.N)
	useDual := false
	switch opt.Mode {
	case PrimalOnly:
	case DualOnly:
		useDual = true
	default:
		useDual = dw < pw
	}
	w := pw
	if useDual {
		w = dw
	}
	if w > maxFormulaWork {
		return nil, useDual, errors.New("encode: formulation too large to materialize")
	}
	if useDual {
		return build(targetDual, g, true, opt, nil).b, true, nil
	}
	return build(target, g, false, opt, nil).b, false, nil
}

// SolveLM decides whether target (with precomputed dual targetDual, both
// in ISOP form over the same variables) can be realized on the grid, and
// returns a verified lattice assignment when it can.
func SolveLM(target, targetDual cube.Cover, g lattice.Grid, opt Options) (Result, error) {
	if target.N > MaxInputs {
		return Result{}, ErrTooManyInputs
	}
	if opt.CEGAR || opt.Portfolio || opt.Shared != nil {
		sub := opt
		sub.CEGAR = false
		return SolveLMCegar(target, targetDual, g, sub)
	}
	// Trivial constants.
	if target.IsZero() || target.IsOne() {
		a := lattice.NewAssignment(g)
		kind := lattice.Const0
		if target.IsOne() {
			kind = lattice.Const1
		}
		for i := range a.Entries {
			a.Entries[i] = targetLit{Kind: kind}
		}
		return Result{Status: sat.Sat, Assignment: a}, nil
	}
	if !StructuralCheck(target, targetDual, g) {
		mStructural.Inc()
		return Result{Status: sat.Unsat, Structural: true}, nil
	}

	// Decide which formulations to attempt and in what order. The paper
	// compares the built problems' vars × clauses; we order by an
	// equivalent path-count estimate instead so that the losing
	// formulation is never materialized (wide lattices can have millions
	// of dual paths) and oversized formulations are skipped outright.
	type attempt struct {
		cover cube.Cover
		dual  bool
	}
	var attempts []attempt
	oversized := false
	switch opt.Mode {
	case PrimalOnly:
		if formulaWork(g, false, target.N) > maxFormulaWork {
			oversized = true
		} else {
			attempts = []attempt{{target, false}}
		}
	case DualOnly:
		if formulaWork(g, true, target.N) > maxFormulaWork {
			oversized = true
		} else {
			attempts = []attempt{{targetDual, true}}
		}
	default:
		pw := formulaWork(g, false, target.N)
		dw := formulaWork(g, true, target.N)
		if dw < pw {
			attempts = []attempt{{targetDual, true}, {target, false}}
		} else {
			attempts = []attempt{{target, false}, {targetDual, true}}
		}
		kept := attempts[:0]
		for _, a := range attempts {
			w := pw
			if a.dual {
				w = dw
			}
			if w > maxFormulaWork {
				oversized = true
				continue
			}
			kept = append(kept, a)
		}
		attempts = kept
	}

	var res Result
	var chosen *problem
	var s *sat.Solver
	sawUnknown := oversized
	for _, a := range attempts {
		s = nil // release the previous attempt's solver before building
		p := build(a.cover, g, a.dual, opt, nil)
		s = p.b.SolverFrom()
		p.b.ReleaseClauses() // the solver holds its own copy now
		cand, setSpan := startCandidate(opt.Span, g, a.dual, "monolithic", s)
		solveSpan := cand.Child("SatSolve")
		setSpan(solveSpan)
		st := s.Solve(opt.Limits)
		solveSpan.End()
		chosen = p
		res = Result{
			Status:         st,
			UsedDual:       p.dual,
			Vars:           p.b.NumVars(),
			Clauses:        p.b.NumClauses(),
			SolverStat:     s.Stats(),
			AddedClauses:   p.b.NumClauses(),
			RebuiltClauses: p.b.NumClauses(),
		}
		mClausesAdded.Add(int64(res.AddedClauses))
		mClausesRebld.Add(int64(res.RebuiltClauses))
		noteStatus(cand, res)
		cand.End()
		if st == sat.Sat {
			break
		}
		if st == sat.Unknown {
			sawUnknown = true
		}
	}
	if res.Status != sat.Sat {
		if sawUnknown {
			res.Status = sat.Unknown
		}
		return res, nil
	}
	// Both formulations decode to an assignment that must implement f on
	// the top–bottom structure (the dual decode swaps constants, which by
	// the duality theorem converts an f^D left–right realization into an
	// f top–bottom realization). Verify against the physical ground truth
	// (the memo-cached target table: the search verifies against the same
	// target for every candidate grid).
	a := chosen.decode(s)
	if !a.Table(target.N).Equal(memo.TableOf(target)) {
		return res, fmt.Errorf("encode: model fails verification on %v (dual=%v)", g, chosen.dual)
	}
	res.Assignment = a
	return res, nil
}
