package encode

import (
	"fmt"

	"github.com/lattice-tools/janus/internal/lattice"
	"github.com/lattice-tools/janus/internal/obsv"
	"github.com/lattice-tools/janus/internal/sat"
)

// Registry handles for the LM-solve pipeline, resolved once (metric
// updates are single atomic adds on the hot path). Naming follows the
// janus_<pkg>_<name> scheme; *_total counters are monotone.
var (
	mCandidates   = obsv.Default.Counter("janus_encode_candidates_total")
	mCandSat      = obsv.Default.Counter("janus_encode_candidates_sat_total")
	mCandUnsat    = obsv.Default.Counter("janus_encode_candidates_unsat_total")
	mCandUnknown  = obsv.Default.Counter("janus_encode_candidates_unknown_total")
	mStructural   = obsv.Default.Counter("janus_encode_structural_refutes_total")
	mCegarIters   = obsv.Default.Counter("janus_encode_cegar_iters_total")
	mCegarEntries = obsv.Default.Counter("janus_encode_cegar_entries_total")
	mClausesAdded = obsv.Default.Counter("janus_encode_clauses_added_total")
	mClausesRebld = obsv.Default.Counter("janus_encode_clauses_rebuilt_total")
	// Shared assumption-based engine (Options.Shared): candidates answered
	// on a reused skeleton, clauses stamped directly into the shared
	// solver, counterexample-entry clauses transferred between candidates,
	// and the final-conflict assumption core sizes of Unsat answers.
	mSharedReused   = obsv.Default.Counter("janus_encode_shared_reused_solvers_total")
	mSharedStamped  = obsv.Default.Counter("janus_encode_shared_stamped_clauses_total")
	mSharedTransfer = obsv.Default.Counter("janus_encode_shared_transferred_cex_clauses_total")
	// Clause-quality filter: counterexample entries the transfer cap
	// declined to stamp, and learnt clauses pruned on grid switches.
	mSharedFiltered = obsv.Default.Counter("janus_encode_shared_transfer_filtered_total")
	mSharedPruned   = obsv.Default.Counter("janus_encode_shared_learnts_pruned_total")
	hAssumeCore     = obsv.Default.Histogram("janus_encode_assumption_core_size")
	// Portfolio racing (Options.Portfolio): races run, wins by
	// orientation, and losers cancelled through the interrupt channel.
	mPortfolioRaces      = obsv.Default.Counter("janus_encode_portfolio_races_total")
	mPortfolioPrimalWins = obsv.Default.Counter("janus_encode_portfolio_primal_wins_total")
	mPortfolioDualWins   = obsv.Default.Counter("janus_encode_portfolio_dual_wins_total")
	mPortfolioCancels    = obsv.Default.Counter("janus_encode_portfolio_cancels_total")
	mSolves              = obsv.Default.Counter("janus_sat_solves_total")
	mSolveNS             = obsv.Default.Counter("janus_sat_solve_ns_total")
	mConflicts           = obsv.Default.Counter("janus_sat_conflicts_total")
	mDecisions           = obsv.Default.Counter("janus_sat_decisions_total")
	mPropagations        = obsv.Default.Counter("janus_sat_propagations_total")
	mRestarts            = obsv.Default.Counter("janus_sat_restarts_total")
	mLearnts             = obsv.Default.Counter("janus_sat_learnts_total")
	mRemoved             = obsv.Default.Counter("janus_sat_removed_total")
	mReductions          = obsv.Default.Counter("janus_sat_db_reductions_total")
	mLearntDBGauge       = obsv.Default.Gauge("janus_sat_learnt_db_size")
	hLBD                 = obsv.Default.Histogram("janus_sat_lbd")
	hConflicts           = obsv.Default.Histogram("janus_sat_conflicts_per_solve")
)

// startCandidate opens the Candidate(m×n,orient) span for one LM attempt
// and installs the per-Solve observer on the solver: every Solve call
// feeds the registry and, when tracing, the current SatSolve span. The
// returned setSpan rebinds the span the observer writes into (the CEGAR
// loop points it at each iteration's SatSolve child).
func startCandidate(parent *obsv.Span, g lattice.Grid, dual bool, engine string, s *sat.Solver) (cand *obsv.Span, setSpan func(*obsv.Span)) {
	cand = parent.Child("Candidate")
	cand.SetStr("grid", fmt.Sprintf("%dx%d", g.M, g.N))
	cand.SetStr("orient", orientName(dual))
	cand.SetStr("engine", engine)
	mCandidates.Inc()

	var cur *obsv.Span
	s.SetObserver(func(ss sat.SolveStats) {
		recordSolve(cur, ss)
	})
	return cand, func(sp *obsv.Span) { cur = sp }
}

func orientName(dual bool) string {
	if dual {
		return "dual"
	}
	return "primal"
}

// recordSolve folds one Solve call's statistics into the registry and,
// when tracing, into its SatSolve span.
func recordSolve(sp *obsv.Span, ss sat.SolveStats) {
	mSolves.Inc()
	mSolveNS.Add(ss.Dur.Nanoseconds())
	mConflicts.Add(ss.Delta.Conflicts)
	mDecisions.Add(ss.Delta.Decisions)
	mPropagations.Add(ss.Delta.Propagations)
	mRestarts.Add(ss.Delta.Restarts)
	mLearnts.Add(ss.Delta.Learnts)
	mRemoved.Add(ss.Delta.Removed)
	mReductions.Add(ss.Delta.Reductions)
	mLearntDBGauge.Set(int64(ss.LearntDB))
	hConflicts.Observe(ss.Delta.Conflicts)
	for lbd, n := range ss.LBDHist {
		hLBD.ObserveN(int64(lbd), n)
	}

	sp.SetStr("status", ss.Status.String())
	sp.SetInt("conflicts", ss.Delta.Conflicts)
	sp.SetInt("decisions", ss.Delta.Decisions)
	sp.SetInt("propagations", ss.Delta.Propagations)
	sp.SetInt("restarts", ss.Delta.Restarts)
	sp.SetInt("learnts", ss.Delta.Learnts)
	sp.SetInt("lbd_sum", ss.Delta.LBDSum)
	sp.SetInt("db_reductions", ss.Delta.Reductions)
	sp.SetInt("learnt_db", int64(ss.LearntDB))
	sp.SetInt("conflicts_total", ss.Total.Conflicts)
	sp.SetInt("propagations_total", ss.Total.Propagations)
}

// noteStatus counts one finished LM attempt by outcome and stamps the
// Candidate span with the result-level counters.
func noteStatus(cand *obsv.Span, r Result) {
	switch r.Status {
	case sat.Sat:
		mCandSat.Inc()
	case sat.Unsat:
		mCandUnsat.Inc()
	default:
		mCandUnknown.Inc()
	}
	cand.SetStr("status", r.Status.String())
	cand.SetInt("vars", int64(r.Vars))
	cand.SetInt("clauses", int64(r.Clauses))
	cand.SetInt("clauses_added", int64(r.AddedClauses))
	cand.SetInt("cegar_iters", int64(r.CegarIters))
}
