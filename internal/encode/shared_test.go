package encode

import (
	"math/rand"
	"testing"

	"github.com/lattice-tools/janus/internal/lattice"
	"github.com/lattice-tools/janus/internal/minimize"
	"github.com/lattice-tools/janus/internal/sat"
)

// TestSharedAgreesWithCegar is the shared engine's soundness check: on
// random small LM problems, solving every grid on one shared
// assumption-based solver must agree with the fresh-solver CEGAR engine
// on satisfiability, and SAT answers must verify.
func TestSharedAgreesWithCegar(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	grids := []lattice.Grid{{M: 2, N: 2}, {M: 3, N: 2}, {M: 2, N: 3}, {M: 3, N: 3}, {M: 4, N: 2}}
	for trial := 0; trial < 20; trial++ {
		raw := randomFunc(rng, 3, 3)
		f := minimize.Auto(raw)
		if f.IsZero() || f.IsOne() {
			continue
		}
		d := minimize.Auto(f.Dual())
		pool := NewSharedPool() // one pool across all grids: that is the point
		for _, g := range grids {
			ceg, err := SolveLMCegar(f, d, g, Options{})
			if err != nil {
				t.Fatalf("cegar %v: %v", g, err)
			}
			shr, err := SolveLM(f, d, g, Options{Shared: pool})
			if err != nil {
				t.Fatalf("shared %v: %v", g, err)
			}
			if (ceg.Status == sat.Sat) != (shr.Status == sat.Sat) {
				t.Fatalf("trial %d grid %v: cegar=%v shared=%v for %v",
					trial, g, ceg.Status, shr.Status, f)
			}
			if shr.Status == sat.Sat && !shr.Assignment.Realizes(f) {
				t.Fatalf("trial %d grid %v: shared answer unverified", trial, g)
			}
		}
	}
}

// TestSharedFig1 checks the paper's running example end to end on a
// shared pool, including a definitive Unsat on the infeasible 3×3.
func TestSharedFig1(t *testing.T) {
	f, d := isopPair(fig1())
	pool := NewSharedPool()
	r, err := SolveLM(f, d, lattice.Grid{M: 3, N: 3}, Options{Shared: pool})
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != sat.Unsat {
		t.Fatalf("3x3 status = %v, want UNSAT", r.Status)
	}
	r, err = SolveLM(f, d, lattice.Grid{M: 4, N: 2}, Options{Shared: pool})
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != sat.Sat || !r.Assignment.Realizes(f) {
		t.Fatalf("4x2 status = %v", r.Status)
	}
}

// TestSharedReuseCounters documents the engine's point: the second solve
// of the same shape reuses the stamped skeleton (ReusedSolvers=1, far
// fewer stamped clauses), and a second shape on the same pool gets the
// first shape's counterexample entries transferred in.
func TestSharedReuseCounters(t *testing.T) {
	f, d := isopPair(fig1())
	pool := NewSharedPool()
	g := lattice.Grid{M: 4, N: 2}

	first, err := SolveLM(f, d, g, Options{Shared: pool})
	if err != nil {
		t.Fatal(err)
	}
	if first.ReusedSolvers != 0 {
		t.Fatalf("first solve claims reuse: %+v", first)
	}
	if first.StampedClauses == 0 {
		t.Fatal("first solve stamped nothing")
	}

	second, err := SolveLM(f, d, g, Options{Shared: pool})
	if err != nil {
		t.Fatal(err)
	}
	if second.Status != sat.Sat {
		t.Fatalf("second status = %v", second.Status)
	}
	if second.ReusedSolvers != 1 {
		t.Fatal("second solve of the same shape must reuse the skeleton")
	}
	if second.StampedClauses >= first.StampedClauses {
		t.Fatalf("reused solve stamped %d clauses, first stamped %d",
			second.StampedClauses, first.StampedClauses)
	}

	// A new shape, probed after another candidate discovered entries,
	// gets those entries stamped in as transferred knowledge. Fig1's 4x2
	// CEGAR run always refines beyond the two seeds, so the transfer into
	// the next shape is nonempty.
	if first.CegarIters > 1 {
		other, err := SolveLM(f, d, lattice.Grid{M: 2, N: 4}, Options{Shared: pool})
		if err != nil {
			t.Fatal(err)
		}
		_ = other // 2x4 fails the structural check; pick one that builds
	}
	third, err := SolveLM(f, d, lattice.Grid{M: 3, N: 3}, Options{Shared: pool})
	if err != nil {
		t.Fatal(err)
	}
	if third.ReusedSolvers != 0 {
		t.Fatal("a new shape cannot be a reuse")
	}
	if first.CegarIters > 1 && third.TransferredCEXClauses == 0 {
		t.Fatalf("no counterexample transfer into the new shape: %+v", third)
	}
}

// TestSharedUnsatDoesNotPoison: a definitively Unsat grid must not make
// later grids on the same engine Unsat — the refutation is scoped to the
// activation literal, whose final core records it.
func TestSharedUnsatDoesNotPoison(t *testing.T) {
	f, d := isopPair(fig1())
	pool := NewSharedPool()
	for i := 0; i < 2; i++ { // twice: the reused path must stay sound too
		r, err := SolveLM(f, d, lattice.Grid{M: 3, N: 3}, Options{Shared: pool})
		if err != nil {
			t.Fatal(err)
		}
		if r.Status != sat.Unsat {
			t.Fatalf("round %d: 3x3 = %v, want UNSAT", i, r.Status)
		}
		if r.AssumptionCoreSize == 0 {
			t.Fatalf("round %d: Unsat under assumptions must report a core", i)
		}
		r, err = SolveLM(f, d, lattice.Grid{M: 4, N: 2}, Options{Shared: pool})
		if err != nil {
			t.Fatal(err)
		}
		if r.Status != sat.Sat || !r.Assignment.Realizes(f) {
			t.Fatalf("round %d: 4x2 = %v, want SAT", i, r.Status)
		}
	}
}

// TestSharedAblationOptions runs the shared engine under each formula
// ablation to cover the guarded/unguarded stamping variants.
func TestSharedAblationOptions(t *testing.T) {
	f, d := isopPair(fig1())
	g := lattice.Grid{M: 4, N: 2}
	for _, opt := range []Options{
		{DisableFacts: true},
		{DisableDegree: true},
		{DisableSymmetry: true},
		{FullTL: true},
		{StrictProducts: true},
	} {
		opt.Shared = NewSharedPool()
		r, err := SolveLM(f, d, g, opt)
		if err != nil {
			t.Fatalf("opts %+v: %v", opt, err)
		}
		if r.Status != sat.Sat || !r.Assignment.Realizes(f) {
			t.Fatalf("opts %+v: status = %v", opt, r.Status)
		}
	}
}

// TestSharedFilterCounters pins the clause-quality filter's bookkeeping
// and its soundness on the paper's running example. Every engine seeds
// two truth-table entries, so a transfer cap of 1 must drop at least one
// entry into the very first skeleton — and the CEGAR refinement must
// rediscover whatever mattered, keeping the answer identical to the
// unfiltered run.
func TestSharedFilterCounters(t *testing.T) {
	f, d := isopPair(fig1())
	g := lattice.Grid{M: 4, N: 2}

	capped, err := SolveLM(f, d, g, Options{Shared: NewSharedPool(), CEXTransferLimit: 1})
	if err != nil {
		t.Fatal(err)
	}
	if capped.Status != sat.Sat || !capped.Assignment.Realizes(f) {
		t.Fatalf("capped transfer broke the answer: %v", capped.Status)
	}
	if capped.TransferFiltered == 0 {
		t.Fatalf("cap 1 against 2 seeded entries filtered nothing: %+v", capped)
	}

	open, err := SolveLM(f, d, g, Options{Shared: NewSharedPool(), CEXTransferLimit: -1})
	if err != nil {
		t.Fatal(err)
	}
	if open.TransferFiltered != 0 {
		t.Fatalf("unlimited transfer reported %d filtered", open.TransferFiltered)
	}
	if open.Status != capped.Status {
		t.Fatalf("filter changed the answer: %v vs %v", capped.Status, open.Status)
	}

	// Learnt pruning triggers on grid switches: drive the engine through
	// the infeasible 3x3 (a refutation that learns clauses) and back, with
	// the prune forced aggressive, and check the counter threads through.
	pool := NewSharedPool()
	aggressive := Options{Shared: pool, SharedLearntLBD: 1, SharedLearntSize: 3}
	if _, err := SolveLM(f, d, lattice.Grid{M: 3, N: 3}, aggressive); err != nil {
		t.Fatal(err)
	}
	back, err := SolveLM(f, d, g, aggressive)
	if err != nil {
		t.Fatal(err)
	}
	if back.Status != sat.Sat || !back.Assignment.Realizes(f) {
		t.Fatalf("post-prune answer broken: %v", back.Status)
	}
	if back.PrunedLearnts == 0 {
		t.Fatalf("aggressive prune on a grid switch pruned nothing: %+v", back)
	}

	// With the filter disabled the counters must stay silent.
	offPool := NewSharedPool()
	off := Options{Shared: offPool, CEXTransferLimit: -1, SharedLearntLBD: -1}
	if _, err := SolveLM(f, d, lattice.Grid{M: 3, N: 3}, off); err != nil {
		t.Fatal(err)
	}
	quiet, err := SolveLM(f, d, g, off)
	if err != nil {
		t.Fatal(err)
	}
	if quiet.TransferFiltered != 0 || quiet.PrunedLearnts != 0 {
		t.Fatalf("disabled filter still counted: %+v", quiet)
	}
}

// TestFilterOptionResolvers pins the Options zero-value semantics: zero
// means the calibrated defaults, negative disables.
func TestFilterOptionResolvers(t *testing.T) {
	if got := (Options{}).cexTransferLimit(); got != DefaultCEXTransferLimit {
		t.Fatalf("zero cex limit resolves to %d, want %d", got, DefaultCEXTransferLimit)
	}
	if got := (Options{CEXTransferLimit: -3}).cexTransferLimit(); got != -1 {
		t.Fatalf("negative cex limit resolves to %d, want -1 (unlimited)", got)
	}
	if got := (Options{CEXTransferLimit: 7}).cexTransferLimit(); got != 7 {
		t.Fatalf("explicit cex limit resolves to %d, want 7", got)
	}
	lbd, size, on := (Options{}).learntPrune()
	if !on || lbd != DefaultSharedLearntLBD || size != DefaultSharedLearntSize {
		t.Fatalf("zero prune resolves to (%d,%d,%v)", lbd, size, on)
	}
	if _, _, on := (Options{SharedLearntLBD: -1}).learntPrune(); on {
		t.Fatal("negative LBD budget must disable the prune")
	}
	if _, _, on := (Options{SharedLearntSize: -1}).learntPrune(); on {
		t.Fatal("negative size budget must disable the prune")
	}
	lbd, size, on = (Options{SharedLearntLBD: 2, SharedLearntSize: 9}).learntPrune()
	if !on || lbd != 2 || size != 9 {
		t.Fatalf("explicit prune resolves to (%d,%d,%v)", lbd, size, on)
	}
}

// TestPoolWarm pins the cross-engine seeding path used when the auto
// policy opens a pool mid-search: Warm converts target inputs into each
// orientation's entry terms (primal at the input, dual at its
// complement), respects the Mode restriction, and a warmed pool still
// answers correctly.
func TestPoolWarm(t *testing.T) {
	f, d := isopPair(fig1())
	opt := Options{}
	inputs := []uint64{3, 9, 3} // duplicate on purpose: noteEntry dedups

	pool := NewSharedPool()
	pool.Warm(f, d, opt, inputs)

	pe := pool.engine(f, false, opt)
	mask := pe.encTab.Size() - 1
	for _, in := range []uint64{3, 9} {
		if !pe.entrySet[in&mask] {
			t.Errorf("primal engine missing warmed entry %d", in&mask)
		}
	}
	de := pool.engine(d, true, opt)
	for _, in := range []uint64{3, 9} {
		if !de.entrySet[^in&mask] {
			t.Errorf("dual engine missing warmed entry %d", ^in&mask)
		}
	}

	r, err := SolveLM(f, d, lattice.Grid{M: 4, N: 2}, Options{Shared: pool})
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != sat.Sat || !r.Assignment.Realizes(f) {
		t.Fatalf("warmed pool answer: %v", r.Status)
	}

	// Orientation restrictions keep Warm from building engines the
	// search will never solve on; empty input builds nothing at all.
	primal := NewSharedPool()
	primal.Warm(f, d, Options{Mode: PrimalOnly}, inputs)
	if n := len(primal.engines); n != 1 {
		t.Errorf("PrimalOnly warm built %d engines, want 1", n)
	}
	empty := NewSharedPool()
	empty.Warm(f, d, opt, nil)
	if n := len(empty.engines); n != 0 {
		t.Errorf("empty warm built %d engines, want 0", n)
	}
}

// TestCegarReportsCEXInputs checks the fresh engine's counterexample
// trail: refinement mismatches come back as primal truth-table indexes
// of the target (in range regardless of the orientation that found
// them), and the trail is non-empty somewhere across a seeded sweep —
// otherwise Warm would silently have nothing to feed on.
func TestCegarReportsCEXInputs(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	grids := []lattice.Grid{{M: 2, N: 2}, {M: 3, N: 2}, {M: 3, N: 3}, {M: 4, N: 2}}
	found := false
	for trial := 0; trial < 30; trial++ {
		raw := randomFunc(rng, 3, 3)
		f := minimize.Auto(raw)
		if f.IsZero() || f.IsOne() {
			continue
		}
		d := minimize.Auto(f.Dual())
		max := uint64(1) << uint(f.N)
		for _, g := range grids {
			r, err := SolveLMCegar(f, d, g, Options{})
			if err != nil {
				t.Fatal(err)
			}
			for _, in := range r.CEXInputs {
				if in >= max {
					t.Fatalf("trial %d grid %v: CEX input %d out of range for %d inputs",
						trial, g, in, f.N)
				}
			}
			if len(r.CEXInputs) > 0 {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("no trial produced counterexample inputs; the CEXInputs trail is broken")
	}
}
