package encode

import (
	"math/rand"
	"testing"

	"github.com/lattice-tools/janus/internal/lattice"
	"github.com/lattice-tools/janus/internal/minimize"
	"github.com/lattice-tools/janus/internal/sat"
)

// TestSharedAgreesWithCegar is the shared engine's soundness check: on
// random small LM problems, solving every grid on one shared
// assumption-based solver must agree with the fresh-solver CEGAR engine
// on satisfiability, and SAT answers must verify.
func TestSharedAgreesWithCegar(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	grids := []lattice.Grid{{M: 2, N: 2}, {M: 3, N: 2}, {M: 2, N: 3}, {M: 3, N: 3}, {M: 4, N: 2}}
	for trial := 0; trial < 20; trial++ {
		raw := randomFunc(rng, 3, 3)
		f := minimize.Auto(raw)
		if f.IsZero() || f.IsOne() {
			continue
		}
		d := minimize.Auto(f.Dual())
		pool := NewSharedPool() // one pool across all grids: that is the point
		for _, g := range grids {
			ceg, err := SolveLMCegar(f, d, g, Options{})
			if err != nil {
				t.Fatalf("cegar %v: %v", g, err)
			}
			shr, err := SolveLM(f, d, g, Options{Shared: pool})
			if err != nil {
				t.Fatalf("shared %v: %v", g, err)
			}
			if (ceg.Status == sat.Sat) != (shr.Status == sat.Sat) {
				t.Fatalf("trial %d grid %v: cegar=%v shared=%v for %v",
					trial, g, ceg.Status, shr.Status, f)
			}
			if shr.Status == sat.Sat && !shr.Assignment.Realizes(f) {
				t.Fatalf("trial %d grid %v: shared answer unverified", trial, g)
			}
		}
	}
}

// TestSharedFig1 checks the paper's running example end to end on a
// shared pool, including a definitive Unsat on the infeasible 3×3.
func TestSharedFig1(t *testing.T) {
	f, d := isopPair(fig1())
	pool := NewSharedPool()
	r, err := SolveLM(f, d, lattice.Grid{M: 3, N: 3}, Options{Shared: pool})
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != sat.Unsat {
		t.Fatalf("3x3 status = %v, want UNSAT", r.Status)
	}
	r, err = SolveLM(f, d, lattice.Grid{M: 4, N: 2}, Options{Shared: pool})
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != sat.Sat || !r.Assignment.Realizes(f) {
		t.Fatalf("4x2 status = %v", r.Status)
	}
}

// TestSharedReuseCounters documents the engine's point: the second solve
// of the same shape reuses the stamped skeleton (ReusedSolvers=1, far
// fewer stamped clauses), and a second shape on the same pool gets the
// first shape's counterexample entries transferred in.
func TestSharedReuseCounters(t *testing.T) {
	f, d := isopPair(fig1())
	pool := NewSharedPool()
	g := lattice.Grid{M: 4, N: 2}

	first, err := SolveLM(f, d, g, Options{Shared: pool})
	if err != nil {
		t.Fatal(err)
	}
	if first.ReusedSolvers != 0 {
		t.Fatalf("first solve claims reuse: %+v", first)
	}
	if first.StampedClauses == 0 {
		t.Fatal("first solve stamped nothing")
	}

	second, err := SolveLM(f, d, g, Options{Shared: pool})
	if err != nil {
		t.Fatal(err)
	}
	if second.Status != sat.Sat {
		t.Fatalf("second status = %v", second.Status)
	}
	if second.ReusedSolvers != 1 {
		t.Fatal("second solve of the same shape must reuse the skeleton")
	}
	if second.StampedClauses >= first.StampedClauses {
		t.Fatalf("reused solve stamped %d clauses, first stamped %d",
			second.StampedClauses, first.StampedClauses)
	}

	// A new shape, probed after another candidate discovered entries,
	// gets those entries stamped in as transferred knowledge. Fig1's 4x2
	// CEGAR run always refines beyond the two seeds, so the transfer into
	// the next shape is nonempty.
	if first.CegarIters > 1 {
		other, err := SolveLM(f, d, lattice.Grid{M: 2, N: 4}, Options{Shared: pool})
		if err != nil {
			t.Fatal(err)
		}
		_ = other // 2x4 fails the structural check; pick one that builds
	}
	third, err := SolveLM(f, d, lattice.Grid{M: 3, N: 3}, Options{Shared: pool})
	if err != nil {
		t.Fatal(err)
	}
	if third.ReusedSolvers != 0 {
		t.Fatal("a new shape cannot be a reuse")
	}
	if first.CegarIters > 1 && third.TransferredCEXClauses == 0 {
		t.Fatalf("no counterexample transfer into the new shape: %+v", third)
	}
}

// TestSharedUnsatDoesNotPoison: a definitively Unsat grid must not make
// later grids on the same engine Unsat — the refutation is scoped to the
// activation literal, whose final core records it.
func TestSharedUnsatDoesNotPoison(t *testing.T) {
	f, d := isopPair(fig1())
	pool := NewSharedPool()
	for i := 0; i < 2; i++ { // twice: the reused path must stay sound too
		r, err := SolveLM(f, d, lattice.Grid{M: 3, N: 3}, Options{Shared: pool})
		if err != nil {
			t.Fatal(err)
		}
		if r.Status != sat.Unsat {
			t.Fatalf("round %d: 3x3 = %v, want UNSAT", i, r.Status)
		}
		if r.AssumptionCoreSize == 0 {
			t.Fatalf("round %d: Unsat under assumptions must report a core", i)
		}
		r, err = SolveLM(f, d, lattice.Grid{M: 4, N: 2}, Options{Shared: pool})
		if err != nil {
			t.Fatal(err)
		}
		if r.Status != sat.Sat || !r.Assignment.Realizes(f) {
			t.Fatalf("round %d: 4x2 = %v, want SAT", i, r.Status)
		}
	}
}

// TestSharedAblationOptions runs the shared engine under each formula
// ablation to cover the guarded/unguarded stamping variants.
func TestSharedAblationOptions(t *testing.T) {
	f, d := isopPair(fig1())
	g := lattice.Grid{M: 4, N: 2}
	for _, opt := range []Options{
		{DisableFacts: true},
		{DisableDegree: true},
		{DisableSymmetry: true},
		{FullTL: true},
		{StrictProducts: true},
	} {
		opt.Shared = NewSharedPool()
		r, err := SolveLM(f, d, g, opt)
		if err != nil {
			t.Fatalf("opts %+v: %v", opt, err)
		}
		if r.Status != sat.Sat || !r.Assignment.Realizes(f) {
			t.Fatalf("opts %+v: status = %v", opt, r.Status)
		}
	}
}
