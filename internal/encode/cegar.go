package encode

import (
	"fmt"
	"time"

	"github.com/lattice-tools/janus/internal/cube"
	"github.com/lattice-tools/janus/internal/lattice"
	"github.com/lattice-tools/janus/internal/memo"
	"github.com/lattice-tools/janus/internal/sat"
	"github.com/lattice-tools/janus/internal/truth"
)

// SolveLMCegar decides the LM problem by counterexample-guided
// abstraction refinement, the lazy view of the exact method's quantified
// formulation: ∃ mapping ∀ inputs (lattice = f).
//
// Instead of constraining all 2^N truth-table entries up front, the
// abstraction starts from a small seed, a candidate mapping is decoded
// and *simulated* against the full truth table (cheap — one BFS per
// point), and any mismatching input becomes a new constrained entry. An
// UNSAT abstraction proves the full problem UNSAT because the
// abstraction is a relaxation; a verified candidate is a genuine
// solution. Each refinement adds at least one new entry, so the loop
// terminates. On the paper's instances the loop typically converges
// after a few dozen entries instead of the full 2^N.
func SolveLMCegar(target, targetDual cube.Cover, g lattice.Grid, opt Options) (Result, error) {
	if target.N > MaxInputs {
		return Result{}, ErrTooManyInputs
	}
	if target.IsZero() || target.IsOne() {
		return SolveLM(target, targetDual, g, opt)
	}
	if !StructuralCheck(target, targetDual, g) {
		mStructural.Inc()
		return Result{Status: sat.Unsat, Structural: true}, nil
	}

	// Orientation choice: per-entry work is proportional to the path
	// count, so prefer the sparser structure; skip oversized ones (the
	// CEGAR loop can afford more than the monolithic cap because it only
	// materializes the entries it needs, but the path list itself must
	// still fit).
	const maxCegarPaths = 200000
	var attempts []cegarAttempt
	pw := g.CountPathsLimited(maxCegarPaths, false)
	dw := g.CountPathsLimited(maxCegarPaths, true)
	switch opt.Mode {
	case PrimalOnly:
		if pw <= maxCegarPaths {
			attempts = []cegarAttempt{{target, false}}
		}
	case DualOnly:
		if dw <= maxCegarPaths {
			attempts = []cegarAttempt{{targetDual, true}}
		}
	default:
		if dw < pw {
			attempts = append(attempts, cegarAttempt{targetDual, true})
			if pw <= maxCegarPaths {
				attempts = append(attempts, cegarAttempt{target, false})
			}
		} else {
			attempts = append(attempts, cegarAttempt{target, false})
			if dw <= maxCegarPaths {
				attempts = append(attempts, cegarAttempt{targetDual, true})
			}
		}
		kept := attempts[:0]
		for _, a := range attempts {
			w := pw
			if a.dual {
				w = dw
			}
			if w <= maxCegarPaths {
				kept = append(kept, a)
			}
		}
		attempts = kept
	}
	if len(attempts) == 0 {
		return Result{Status: sat.Unknown}, nil
	}

	targetTab := memo.TableOf(target)
	var deadline time.Time
	if opt.Limits.Timeout > 0 {
		deadline = time.Now().Add(opt.Limits.Timeout)
	}

	if opt.Portfolio && len(attempts) == 2 {
		return racePortfolio(attempts, target, targetTab, g, opt, deadline)
	}

	var res Result
	var inputs []uint64 // CEXInputs merged across both orientation attempts
	sawUnknown := false
	for _, a := range attempts {
		var r Result
		var err error
		if opt.Shared != nil {
			// One persistent assumption-based solver per (cover,
			// orientation), shared across every candidate grid the search
			// probes (see SharedPool).
			r, err = opt.Shared.solveShared(a.cover, target, targetTab, g, a.dual, opt, deadline)
		} else {
			r, err = cegarOne(a.cover, target, targetTab, g, a.dual, opt, deadline)
		}
		if err != nil {
			return r, err
		}
		inputs = append(inputs, r.CEXInputs...)
		res = r
		if r.Status == sat.Sat {
			r.CEXInputs = inputs
			return r, nil
		}
		if r.Status == sat.Unknown {
			sawUnknown = true
		}
	}
	if sawUnknown {
		res.Status = sat.Unknown
	}
	res.CEXInputs = inputs
	return res, nil
}

// cegarAttempt is one orientation of the CEGAR engine: the cover being
// encoded (f for the primal structure, f^D for the dual) plus the flag.
type cegarAttempt struct {
	cover cube.Cover
	dual  bool
}

// cegarOne runs the refinement loop for one orientation. enc is the cover
// being encoded (f or f^D); target/targetTab always describe f, which the
// decoded assignment must implement.
//
// The loop is incremental: the mapping/exactly-one skeleton is encoded
// once into a single persistent solver, and each counterexample appends
// only the new entry's Y-variables, link implications, and path clauses
// via Builder.FlushTo. The solver keeps its learnt clauses, variable
// activities, and saved phases between refinements, so later iterations
// start from everything the search already proved about the mapping
// variables instead of from scratch.
func cegarOne(enc, target cube.Cover, targetTab *truth.Table, g lattice.Grid,
	dual bool, opt Options, deadline time.Time) (Result, error) {
	encTab := memo.TableOf(enc)

	p := newProblem(enc, g, dual, opt)
	s := sat.New(p.b.NumVars())

	res := Result{UsedDual: dual}
	cand, setSpan := startCandidate(opt.Span, g, dual, "cegar", s)
	defer func() {
		noteStatus(cand, res)
		cand.End()
	}()

	seen := map[uint64]bool{}
	addEntry := func(t uint64) {
		if !seen[t] {
			seen[t] = true
			mCegarEntries.Inc()
			p.addEntry(t, encTab.Get(t), opt)
		}
	}
	// Seed: one on-entry and one off-entry of the encoded function give
	// the abstraction immediate traction.
	var sawOn, sawOff bool
	for t := uint64(0); t < encTab.Size() && (!sawOn || !sawOff); t++ {
		if encTab.Get(t) && !sawOn {
			sawOn = true
			addEntry(t)
		}
		if !encTab.Get(t) && !sawOff {
			sawOff = true
			addEntry(t)
		}
	}

	for {
		// Cooperative cancellation between solver calls: the solver checks
		// the same channel inside its search loop, this check just keeps
		// the refinement bookkeeping from starting another round.
		select {
		case <-opt.Limits.Interrupt:
			res.Status = sat.Unknown
			return res, nil
		default:
		}
		// Hand only the new skeleton/entry clauses to the solver; the
		// accumulated formula stays attached with its learnt clauses.
		iterSpan := cand.Child("CegarIter")
		iterSpan.SetInt("iter", int64(res.CegarIters))
		added := p.b.FlushTo(s)
		res.AddedClauses += added
		res.RebuiltClauses += p.b.NumClauses()
		res.CegarIters++
		mCegarIters.Inc()
		mClausesAdded.Add(int64(added))
		mClausesRebld.Add(int64(p.b.NumClauses()))
		iterSpan.SetInt("clauses_added", int64(added))
		iterSpan.SetInt("entries", int64(len(seen)))

		lims := opt.Limits
		if lims.MaxConflicts > 0 {
			// The per-call conflict budget is relative to the conflicts the
			// persistent solver has already spent in earlier iterations.
			lims.MaxConflicts += s.Stats().Conflicts
		}
		if !deadline.IsZero() {
			remain := time.Until(deadline)
			if remain <= 0 {
				res.Status = sat.Unknown
				iterSpan.SetStr("outcome", "deadline")
				iterSpan.End()
				return res, nil
			}
			lims.Timeout = remain
		}
		solveSpan := iterSpan.Child("SatSolve")
		setSpan(solveSpan)
		st := s.Solve(lims)
		solveSpan.End()
		res.Status = st
		res.Vars = p.b.NumVars()
		res.Clauses = p.b.NumClauses()
		res.SolverStat = s.Stats()
		if st != sat.Sat {
			iterSpan.SetStr("outcome", st.String())
			iterSpan.End()
			return res, nil // Unsat is definitive (relaxation); Unknown is a budget
		}
		decoded := p.decode(s)
		// Verify the candidate against the real target by simulation.
		cex, ok := findMismatch(decoded, targetTab)
		if ok {
			res.Assignment = decoded
			iterSpan.SetStr("outcome", "verified")
			iterSpan.End()
			return res, nil
		}
		// Translate the mismatching input of f into an entry of the
		// encoded function: the dual orientation constrains f^D, whose
		// entry t corresponds to evaluating f at ¬t.
		entry := cex
		if dual {
			entry = ^cex & (encTab.Size() - 1)
		}
		if seen[entry] {
			iterSpan.SetStr("outcome", "stuck")
			iterSpan.End()
			return res, fmt.Errorf("encode: CEGAR failed to make progress on %v (entry %d)", g, entry)
		}
		iterSpan.SetStr("outcome", "counterexample")
		iterSpan.SetInt("cex", int64(entry))
		res.CEXInputs = append(res.CEXInputs, cex)
		addEntry(entry)
		iterSpan.End()
	}
}

// findMismatch simulates the assignment and returns the first input where
// it disagrees with the target table, or ok=true when it fully agrees.
func findMismatch(a *lattice.Assignment, tab *truth.Table) (uint64, bool) {
	for t := uint64(0); t < tab.Size(); t++ {
		if a.EvalConnectivity(t) != tab.Get(t) {
			return t, false
		}
	}
	return 0, true
}
