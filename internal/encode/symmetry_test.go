package encode

import (
	"math/rand"
	"testing"

	"github.com/lattice-tools/janus/internal/lattice"
	"github.com/lattice-tools/janus/internal/minimize"
	"github.com/lattice-tools/janus/internal/sat"
)

// TestSymmetryBreakPreservesSatisfiability: pruning mirrored solutions
// must never flip an LM problem's answer.
func TestSymmetryBreakPreservesSatisfiability(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	grids := []lattice.Grid{{M: 2, N: 2}, {M: 2, N: 3}, {M: 3, N: 2}, {M: 3, N: 3}}
	for trial := 0; trial < 15; trial++ {
		raw := randomFunc(rng, 3, 2)
		f := minimize.Auto(raw)
		if f.IsZero() || f.IsOne() {
			continue
		}
		d := minimize.Auto(f.Dual())
		for _, g := range grids {
			with, err := SolveLM(f, d, g, Options{})
			if err != nil {
				t.Fatal(err)
			}
			without, err := SolveLM(f, d, g, Options{DisableSymmetry: true})
			if err != nil {
				t.Fatal(err)
			}
			if (with.Status == sat.Sat) != (without.Status == sat.Sat) {
				t.Fatalf("trial %d grid %v: symmetry breaking changed the answer (%v vs %v) for %v",
					trial, g, with.Status, without.Status, f)
			}
		}
	}
}

// TestMirrorInvariance documents the property the symmetry break relies
// on: reversing rows or columns of an assignment preserves its function.
func TestMirrorInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 40; trial++ {
		g := lattice.Grid{M: 1 + rng.Intn(4), N: 1 + rng.Intn(4)}
		a := lattice.NewAssignment(g)
		for i := range a.Entries {
			switch rng.Intn(4) {
			case 0:
				a.Entries[i] = lattice.Entry{Kind: lattice.Const0}
			case 1:
				a.Entries[i] = lattice.Entry{Kind: lattice.Const1}
			case 2:
				a.Entries[i] = lattice.Entry{Kind: lattice.PosVar, Var: rng.Intn(3)}
			default:
				a.Entries[i] = lattice.Entry{Kind: lattice.NegVar, Var: rng.Intn(3)}
			}
		}
		hm := lattice.NewAssignment(g)
		vm := lattice.NewAssignment(g)
		for r := 0; r < g.M; r++ {
			for c := 0; c < g.N; c++ {
				hm.Set(r, g.N-1-c, a.At(r, c))
				vm.Set(g.M-1-r, c, a.At(r, c))
			}
		}
		for p := uint64(0); p < 8; p++ {
			want := a.EvalConnectivity(p)
			if hm.EvalConnectivity(p) != want {
				t.Fatalf("column mirror changed the function at %b", p)
			}
			if vm.EvalConnectivity(p) != want {
				t.Fatalf("row mirror changed the function at %b", p)
			}
		}
	}
}

func TestSymmetryBreakShrinksOrNeutral(t *testing.T) {
	// On a feasible instance the constrained problem must stay SAT and
	// carry the extra clauses.
	f, d := isopPair(fig1())
	with, err := SolveLM(f, d, lattice.Grid{M: 4, N: 2}, Options{Mode: PrimalOnly})
	if err != nil {
		t.Fatal(err)
	}
	without, err := SolveLM(f, d, lattice.Grid{M: 4, N: 2},
		Options{Mode: PrimalOnly, DisableSymmetry: true})
	if err != nil {
		t.Fatal(err)
	}
	if with.Status != sat.Sat || without.Status != sat.Sat {
		t.Fatal("both must be SAT")
	}
	if with.Clauses <= without.Clauses {
		t.Fatal("symmetry break should add clauses")
	}
}
