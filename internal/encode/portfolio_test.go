package encode

import (
	"math/rand"
	"testing"
	"time"

	"github.com/lattice-tools/janus/internal/lattice"
	"github.com/lattice-tools/janus/internal/minimize"
	"github.com/lattice-tools/janus/internal/sat"
)

// TestPortfolioAgreesWithSequential pins the racing engine's soundness:
// on random small LM problems the portfolio answer must match the
// sequential CEGAR answer on satisfiability, and Sat answers must be
// verified implementations of the target. Run under -race in CI, this is
// also the data-race check for the two concurrent orientations sharing
// the memo caches and the parent trace span.
func TestPortfolioAgreesWithSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	grids := []lattice.Grid{{M: 2, N: 2}, {M: 3, N: 2}, {M: 3, N: 3}, {M: 4, N: 2}}
	for trial := 0; trial < 15; trial++ {
		raw := randomFunc(rng, 3, 3)
		f := minimize.Auto(raw)
		if f.IsZero() || f.IsOne() {
			continue
		}
		d := minimize.Auto(f.Dual())
		for _, g := range grids {
			seq, err := SolveLMCegar(f, d, g, Options{})
			if err != nil {
				t.Fatal(err)
			}
			race, err := SolveLMCegar(f, d, g, Options{Portfolio: true})
			if err != nil {
				t.Fatalf("portfolio %v: %v", g, err)
			}
			if (seq.Status == sat.Sat) != (race.Status == sat.Sat) {
				t.Fatalf("trial %d grid %v: sequential=%v portfolio=%v",
					trial, g, seq.Status, race.Status)
			}
			if race.Status == sat.Sat && !race.Assignment.Realizes(f) {
				t.Fatalf("trial %d grid %v: portfolio answer unverified", trial, g)
			}
		}
	}
}

// TestPortfolioViaSolveLM checks the Options.Portfolio flag routes
// through SolveLM (implying the CEGAR engine) and solves Fig. 1.
func TestPortfolioViaSolveLM(t *testing.T) {
	f, d := isopPair(fig1())
	r, err := SolveLM(f, d, lattice.Grid{M: 4, N: 2}, Options{Portfolio: true})
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != sat.Sat || !r.Assignment.Realizes(f) {
		t.Fatalf("status = %v", r.Status)
	}
	r, err = SolveLM(f, d, lattice.Grid{M: 3, N: 3}, Options{Portfolio: true})
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != sat.Unsat {
		t.Fatalf("3x3 status = %v, want UNSAT", r.Status)
	}
}

// TestPortfolioHonorsInterrupt: a caller-supplied interrupt must stop
// both racing orientations promptly with an Unknown verdict.
func TestPortfolioHonorsInterrupt(t *testing.T) {
	f, d := isopPair(fig1())
	stop := make(chan struct{})
	close(stop)
	opt := Options{Portfolio: true}
	opt.Limits.Interrupt = stop
	start := time.Now()
	r, err := SolveLMCegar(f, d, lattice.Grid{M: 4, N: 2}, opt)
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != sat.Unknown {
		t.Fatalf("status = %v, want Unknown under pre-closed interrupt", r.Status)
	}
	if e := time.Since(start); e > 5*time.Second {
		t.Fatalf("interrupted portfolio took %v", e)
	}
}
