package encode

import (
	"math/rand"
	"testing"

	"github.com/lattice-tools/janus/internal/cube"
	"github.com/lattice-tools/janus/internal/lattice"
	"github.com/lattice-tools/janus/internal/minimize"
	"github.com/lattice-tools/janus/internal/sat"
)

// TestCegarAgreesWithMonolithic is the engine's core soundness check: on
// random small LM problems, the CEGAR engine and the monolithic encoding
// must agree on satisfiability, and SAT answers must be verified.
func TestCegarAgreesWithMonolithic(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	grids := []lattice.Grid{{M: 2, N: 2}, {M: 3, N: 2}, {M: 2, N: 3}, {M: 3, N: 3}, {M: 4, N: 2}}
	for trial := 0; trial < 20; trial++ {
		raw := randomFunc(rng, 3, 3)
		f := minimize.Auto(raw)
		if f.IsZero() || f.IsOne() {
			continue
		}
		d := minimize.Auto(f.Dual())
		for _, g := range grids {
			mono, err := SolveLM(f, d, g, Options{})
			if err != nil {
				t.Fatal(err)
			}
			ceg, err := SolveLMCegar(f, d, g, Options{})
			if err != nil {
				t.Fatalf("cegar %v: %v", g, err)
			}
			if (mono.Status == sat.Sat) != (ceg.Status == sat.Sat) {
				t.Fatalf("trial %d grid %v: mono=%v cegar=%v for %v",
					trial, g, mono.Status, ceg.Status, f)
			}
			if ceg.Status == sat.Sat && !ceg.Assignment.Realizes(f) {
				t.Fatalf("trial %d grid %v: CEGAR answer unverified", trial, g)
			}
		}
	}
}

func TestCegarFig1(t *testing.T) {
	f, d := isopPair(fig1())
	r, err := SolveLMCegar(f, d, lattice.Grid{M: 4, N: 2}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != sat.Sat || !r.Assignment.Realizes(f) {
		t.Fatalf("status = %v", r.Status)
	}
	// And the infeasible 3×3 case must come back UNSAT.
	r, err = SolveLMCegar(f, d, lattice.Grid{M: 3, N: 3}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != sat.Unsat {
		t.Fatalf("3x3 status = %v, want UNSAT", r.Status)
	}
}

func TestCegarViaOptionsFlag(t *testing.T) {
	f, d := isopPair(fig1())
	r, err := SolveLM(f, d, lattice.Grid{M: 4, N: 2}, Options{CEGAR: true})
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != sat.Sat {
		t.Fatalf("status = %v", r.Status)
	}
}

// TestCegarLazyEntryCount documents the engine's point: the number of
// constrained entries (visible through the variable count) stays far
// below the monolithic encoding's.
func TestCegarLazyEntryCount(t *testing.T) {
	// 6-input function: the monolithic encoding constrains 64 entries.
	f := minimize.Auto(randomFunc(rand.New(rand.NewSource(7)), 6, 3))
	if f.IsZero() || f.IsOne() {
		t.Skip("degenerate draw")
	}
	d := minimize.Auto(f.Dual())
	g := lattice.Grid{M: 3, N: 4}
	mono, err := SolveLM(f, d, g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ceg, err := SolveLMCegar(f, d, g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if (mono.Status == sat.Sat) != (ceg.Status == sat.Sat) {
		t.Fatalf("engines disagree: %v vs %v", mono.Status, ceg.Status)
	}
	if ceg.Vars >= mono.Vars {
		t.Fatalf("CEGAR did not stay lazy: %d vs %d vars", ceg.Vars, mono.Vars)
	}
}

func TestCegarConstants(t *testing.T) {
	r, err := SolveLMCegar(cube.Zero(2), cube.One(2), lattice.Grid{M: 2, N: 2}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != sat.Sat || !r.Assignment.Realizes(cube.Zero(2)) {
		t.Fatal("constant-0 CEGAR mapping wrong")
	}
}
