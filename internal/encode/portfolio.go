package encode

import (
	"time"

	"github.com/lattice-tools/janus/internal/cube"
	"github.com/lattice-tools/janus/internal/lattice"
	"github.com/lattice-tools/janus/internal/sat"
	"github.com/lattice-tools/janus/internal/truth"
)

// mergeInterrupt combines a caller-supplied interrupt channel with a
// race-local stop channel. With no caller channel the stop channel is
// used directly; otherwise a relay goroutine closes the merged channel
// when either fires. racePortfolio always closes every stop channel
// before returning, so the relay cannot leak.
func mergeInterrupt(caller, stop <-chan struct{}) <-chan struct{} {
	if caller == nil {
		return stop
	}
	select {
	case <-caller:
		// Already cancelled: skip the relay so the engines see it
		// synchronously instead of racing the relay goroutine's wakeup.
		return caller
	default:
	}
	out := make(chan struct{})
	go func() {
		select {
		case <-caller:
		case <-stop:
		}
		close(out)
	}()
	return out
}

// racePortfolio runs the two CEGAR orientations of one candidate grid
// concurrently and returns as soon as either finds a satisfying
// assignment, cancelling the other through the solver's interrupt
// channel. Only Sat is a winning verdict: the paper's heuristic degree
// constraints are approximate and can refute one orientation while the
// other still has a solution (fig. 1 on 4×2 is Sat primal, Unsat dual),
// which is exactly why the sequential engine also tries both
// orientations on a non-Sat answer. Non-Sat outcomes are merged with the
// sequential semantics — any Unknown degrades the verdict to Unknown,
// otherwise both refutations make it Unsat.
//
// The caller still gets honest effort accounting: the losing
// orientation's clause and iteration counters are folded into the
// returned Result, so the search statistics reflect the work both
// engines did rather than only the winner's share.
func racePortfolio(attempts []cegarAttempt, target cube.Cover, targetTab *truth.Table,
	g lattice.Grid, opt Options, deadline time.Time) (Result, error) {
	mPortfolioRaces.Inc()
	type outcome struct {
		r   Result
		err error
		idx int
	}
	stops := make([]chan struct{}, len(attempts))
	ch := make(chan outcome, len(attempts))
	for i, a := range attempts {
		stops[i] = make(chan struct{})
		sub := opt
		sub.Limits.Interrupt = mergeInterrupt(opt.Limits.Interrupt, stops[i])
		go func(i int, a cegarAttempt, sub Options) {
			r, err := cegarOne(a.cover, target, targetTab, g, a.dual, sub, deadline)
			ch <- outcome{r: r, err: err, idx: i}
		}(i, a, sub)
	}

	// Collect every outcome (the loser returns quickly once cancelled);
	// the first Sat becomes the winner and stops the rest.
	results := make([]outcome, len(attempts))
	winner := -1
	for n := 0; n < len(attempts); n++ {
		o := <-ch
		results[o.idx] = o
		if winner < 0 && o.err == nil && o.r.Status == sat.Sat {
			winner = o.idx
			for j, st := range stops {
				if j != o.idx {
					close(st)
					mPortfolioCancels.Inc()
				}
			}
		}
	}
	for i, st := range stops {
		if winner < 0 || i == winner {
			close(st) // release the mergeInterrupt relays
		}
	}

	if winner < 0 {
		// No satisfying orientation: surface the first error, else merge
		// the refutations with the sequential semantics.
		for _, o := range results {
			if o.err != nil {
				return o.r, o.err
			}
		}
		res := results[len(results)-1].r
		for _, o := range results[:len(results)-1] {
			foldEffort(&res, o.r)
			if o.r.Status == sat.Unknown {
				res.Status = sat.Unknown
			}
		}
		return res, nil
	}

	res := results[winner].r
	if res.UsedDual {
		mPortfolioDualWins.Inc()
	} else {
		mPortfolioPrimalWins.Inc()
	}
	for i, o := range results {
		if i != winner {
			foldEffort(&res, o.r)
		}
	}
	return res, nil
}

// foldEffort adds a losing orientation's work counters into the winning
// Result so search-level statistics stay truthful under racing.
func foldEffort(res *Result, loser Result) {
	res.CegarIters += loser.CegarIters
	res.AddedClauses += loser.AddedClauses
	res.RebuiltClauses += loser.RebuiltClauses
}
