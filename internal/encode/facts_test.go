package encode

import (
	"math/rand"
	"testing"

	"github.com/lattice-tools/janus/internal/cube"
	"github.com/lattice-tools/janus/internal/lattice"
	"github.com/lattice-tools/janus/internal/minimize"
	"github.com/lattice-tools/janus/internal/sat"
)

// TestFigure3OffRow checks the Fig. 3(a) behaviour end to end: an entry
// where f is 0 forbids every fully-on path, so a target that is constant
// 0 on some input cannot be realized by an all-ones mapping. We probe it
// through SolveLM: the function x0&!x0 … instead use a directly checkable
// micro-instance: f = a (1 var) on a 1×2 lattice — the off entry a=0
// forces neither switch column… simplest observable: solution exists and
// is verified for f(0)=0.
func TestFigure3OffRow(t *testing.T) {
	// f = x0 & x1: off everywhere except x0=x1=1.
	f, d := minimize.AutoDual(cube.NewCover(2, cube.FromLiterals([]int{0, 1}, nil)))
	res, err := SolveLM(f, d, lattice.Grid{M: 2, N: 1}, Options{Mode: PrimalOnly})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != sat.Sat {
		t.Fatalf("status = %v", res.Status)
	}
	// The off entries are enforced: the assignment's connectivity is 0
	// exactly on the off-set.
	a := res.Assignment
	if a.EvalConnectivity(0) || !a.EvalConnectivity(3) {
		t.Fatal("off/on rows not respected")
	}
}

// TestFigure3OnRow checks the Fig. 3(b) facts directly: for an on entry,
// every row holds an on switch and consecutive rows share an on column in
// any SAT model — observable as: the two facts are redundant, so adding
// them never changes satisfiability.
func TestFigure3OnRow(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	grids := []lattice.Grid{{M: 2, N: 2}, {M: 3, N: 2}, {M: 2, N: 3}, {M: 3, N: 3}}
	for trial := 0; trial < 15; trial++ {
		raw := randomFunc(rng, 3, 2)
		f := minimize.Auto(raw)
		if f.IsZero() || f.IsOne() {
			continue
		}
		d := minimize.Auto(f.Dual())
		for _, g := range grids {
			for _, mode := range []Mode{PrimalOnly, DualOnly} {
				with, err := SolveLM(f, d, g, Options{Mode: mode})
				if err != nil {
					t.Fatal(err)
				}
				without, err := SolveLM(f, d, g, Options{Mode: mode, DisableFacts: true})
				if err != nil {
					t.Fatal(err)
				}
				if (with.Status == sat.Sat) != (without.Status == sat.Sat) {
					t.Fatalf("facts changed satisfiability on %v mode %v: %v vs %v",
						g, mode, with.Status, without.Status)
				}
			}
		}
	}
}

// TestOnRowModelSatisfiesFacts inspects an actual solution: on every
// input where f is 1, each lattice row must hold an on switch and each
// consecutive row pair must share an on column (the physical content of
// the two facts).
func TestOnRowModelSatisfiesFacts(t *testing.T) {
	f, d := isopPair(fig1())
	res, err := SolveLM(f, d, lattice.Grid{M: 4, N: 2}, Options{})
	if err != nil || res.Status != sat.Sat {
		t.Fatalf("setup failed: %v %v", res.Status, err)
	}
	a := res.Assignment
	g := a.Grid
	for p := uint64(0); p < 16; p++ {
		if !a.EvalConnectivity(p) {
			continue
		}
		for r := 0; r < g.M; r++ {
			rowOn := false
			for c := 0; c < g.N; c++ {
				if a.At(r, c).Eval(p) {
					rowOn = true
				}
			}
			if !rowOn {
				t.Fatalf("input %b: row %d fully off yet f=1", p, r)
			}
		}
		for r := 0; r+1 < g.M; r++ {
			pairOn := false
			for c := 0; c < g.N; c++ {
				if a.At(r, c).Eval(p) && a.At(r+1, c).Eval(p) {
					pairOn = true
				}
			}
			if !pairOn {
				t.Fatalf("input %b: rows %d/%d share no on column yet f=1", p, r, r+1)
			}
		}
	}
}
