package encode

import (
	"testing"

	"github.com/lattice-tools/janus/internal/benchdata"
	"github.com/lattice-tools/janus/internal/lattice"
	"github.com/lattice-tools/janus/internal/memo"
	"github.com/lattice-tools/janus/internal/minimize"
	"github.com/lattice-tools/janus/internal/sat"
	"github.com/lattice-tools/janus/internal/truth"
)

// TestCegarIncrementalCounters checks the engine's headline property on a
// multi-counterexample instance: the clause volume actually handed to the
// persistent solver (AddedClauses) equals the final formula size, far
// below what rebuilding the solver each iteration would have re-added
// (RebuiltClauses).
func TestCegarIncrementalCounters(t *testing.T) {
	f, _ := benchdata.Lookup("dc1_02").Function()
	isop, dual := minimize.AutoDual(f)
	r, err := SolveLMCegar(isop, dual, lattice.Grid{M: 4, N: 3}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != sat.Sat {
		t.Fatalf("status = %v", r.Status)
	}
	if r.CegarIters < 5 {
		t.Fatalf("want a multi-counterexample run (>= 5 iterations), got %d", r.CegarIters)
	}
	if r.AddedClauses != r.Clauses {
		t.Fatalf("incremental engine must add each clause once: added %d, formula has %d",
			r.AddedClauses, r.Clauses)
	}
	if r.RebuiltClauses <= r.AddedClauses {
		t.Fatalf("rebuild volume (%d) must exceed incremental volume (%d) over %d iterations",
			r.RebuiltClauses, r.AddedClauses, r.CegarIters)
	}
}

// TestCegarTablesBuiltOnce asserts the memoization contract of the loop:
// one truth-table build per distinct cover for a whole multi-iteration
// CEGAR solve (target plus at most one encoded cover per orientation),
// and zero builds on a repeat solve of the same instance.
func TestCegarTablesBuiltOnce(t *testing.T) {
	memo.Reset()
	f, _ := benchdata.Lookup("dc1_02").Function()
	isop, dual := minimize.AutoDual(f)
	g := lattice.Grid{M: 4, N: 3}

	before := truth.FromCoverCalls()
	r, err := SolveLMCegar(isop, dual, g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	built := truth.FromCoverCalls() - before
	if built > 3 {
		t.Fatalf("%d truth tables built across %d CEGAR iterations, want at most 3 (target + per-orientation cover)",
			built, r.CegarIters)
	}

	before = truth.FromCoverCalls()
	if _, err := SolveLMCegar(isop, dual, g, Options{}); err != nil {
		t.Fatal(err)
	}
	if d := truth.FromCoverCalls() - before; d != 0 {
		t.Fatalf("repeat solve rebuilt %d truth tables, want 0 (memo hit)", d)
	}
	if s := memo.Snapshot(); s.TableHits == 0 || s.PathHits == 0 {
		t.Fatalf("expected table and path cache hits, got %+v", s)
	}
}

// TestCegarConflictBudgetPerCall pins the budget semantics of the
// persistent solver: MaxConflicts bounds each refinement's SAT call, not
// the cumulative conflicts of the whole loop, so a multi-iteration
// instance must still converge under a budget smaller than its total
// conflict count.
func TestCegarConflictBudgetPerCall(t *testing.T) {
	f, _ := benchdata.Lookup("dc1_02").Function()
	isop, dual := minimize.AutoDual(f)
	g := lattice.Grid{M: 4, N: 3}
	full, err := SolveLMCegar(isop, dual, g, Options{})
	if err != nil || full.Status != sat.Sat {
		t.Fatalf("unbudgeted run: %v %v", full.Status, err)
	}
	if full.SolverStat.Conflicts < 10 {
		t.Skip("instance too easy to exercise the budget")
	}
	// A per-call budget of ~half the total conflicts must still succeed;
	// a cumulative interpretation would return Unknown.
	budget := full.SolverStat.Conflicts/2 + 5
	r, err := SolveLMCegar(isop, dual, g, Options{Limits: sat.Limits{MaxConflicts: budget}})
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != sat.Sat {
		t.Fatalf("per-call budget %d: status %v, want SAT", budget, r.Status)
	}
}
