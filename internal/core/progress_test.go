package core

import (
	"context"
	"sync"
	"testing"
	"time"

	"github.com/lattice-tools/janus/internal/cube"
	"github.com/lattice-tools/janus/internal/obsv"
)

// recordingSink captures every progress event (emission may come from
// parallel search workers, hence the lock).
type recordingSink struct {
	mu  sync.Mutex
	evs []obsv.ProgressEvent
}

func (r *recordingSink) Progress(ev obsv.ProgressEvent) {
	r.mu.Lock()
	r.evs = append(r.evs, ev)
	r.mu.Unlock()
}

func (r *recordingSink) events() []obsv.ProgressEvent {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]obsv.ProgressEvent(nil), r.evs...)
}

// checkMonotone asserts the anytime contract over a top-level event
// stream: phases open before they close, the lower bound never
// decreases, the upper bound never increases, incumbents only improve
// and are always verified. Sub-synthesis events are exempt (they bound
// part covers) and skipped. Returns the top-level counts by kind.
func checkMonotone(t *testing.T, evs []obsv.ProgressEvent) map[obsv.ProgressKind]int {
	t.Helper()
	counts := map[obsv.ProgressKind]int{}
	lb, ub, best := 0, 0, 0
	var openPhase string
	for i, ev := range evs {
		if ev.Sub {
			continue
		}
		counts[ev.Kind]++
		switch ev.Kind {
		case obsv.ProgressPhaseStart:
			if openPhase != "" {
				t.Fatalf("event %d: phase %q started inside %q", i, ev.Phase, openPhase)
			}
			openPhase = ev.Phase
		case obsv.ProgressPhaseDone:
			if openPhase != ev.Phase {
				t.Fatalf("event %d: phase %q closed while %q open", i, ev.Phase, openPhase)
			}
			openPhase = ""
		case obsv.ProgressBound:
			if ev.LB < lb {
				t.Fatalf("event %d: lb regressed %d -> %d", i, lb, ev.LB)
			}
			lb = ev.LB
			if ev.UB > 0 {
				if ub > 0 && ev.UB > ub {
					t.Fatalf("event %d: ub regressed %d -> %d", i, ub, ev.UB)
				}
				ub = ev.UB
			}
		case obsv.ProgressIncumbent:
			if !ev.Verified {
				t.Fatalf("event %d: unverified incumbent %+v", i, ev)
			}
			if best > 0 && ev.Size > best {
				t.Fatalf("event %d: incumbent regressed %d -> %d", i, best, ev.Size)
			}
			best = ev.Size
		case obsv.ProgressStep:
			if best == 0 {
				t.Fatalf("event %d: dichotomic step before any incumbent", i)
			}
		}
	}
	if openPhase != "" {
		t.Fatalf("phase %q never closed", openPhase)
	}
	return counts
}

// TestProgressEmission: a converged synthesis streams ordered phases,
// monotone bounds, and verified incumbents, and lands with
// FinalLB == Size and Partial false.
func TestProgressEmission(t *testing.T) {
	f := cube.NewCover(4,
		cube.FromLiterals([]int{0, 1, 2, 3}, nil),
		cube.FromLiterals(nil, []int{0, 1, 2, 3}))
	sink := &recordingSink{}
	r, err := Synthesize(f, Options{Progress: sink})
	if err != nil {
		t.Fatal(err)
	}
	evs := sink.events()
	counts := checkMonotone(t, evs)
	if counts[obsv.ProgressPhaseStart] == 0 || counts[obsv.ProgressPhaseStart] != counts[obsv.ProgressPhaseDone] {
		t.Fatalf("phase starts/dones = %d/%d",
			counts[obsv.ProgressPhaseStart], counts[obsv.ProgressPhaseDone])
	}
	if counts[obsv.ProgressIncumbent] == 0 {
		t.Fatal("no incumbent event: the bounds phase always yields one")
	}
	if counts[obsv.ProgressBound] == 0 {
		t.Fatal("no bound events")
	}
	if r.Partial || r.FinalLB != r.Size {
		t.Fatalf("converged search reported final_lb=%d partial=%v (size %d)",
			r.FinalLB, r.Partial, r.Size)
	}
	// The phase order is the pipeline order.
	var phases []string
	for _, ev := range evs {
		if !ev.Sub && ev.Kind == obsv.ProgressPhaseStart {
			phases = append(phases, ev.Phase)
		}
	}
	order := map[string]int{"minimize": 0, "bounds": 1, "ds": 2, "search": 3}
	for i := 1; i < len(phases); i++ {
		if order[phases[i]] < order[phases[i-1]] {
			t.Fatalf("phases out of pipeline order: %v", phases)
		}
	}
}

// TestProgressFromContext: without Options.Progress the sink attached to
// the context is used — the path the service's job queue takes.
func TestProgressFromContext(t *testing.T) {
	f := cube.NewCover(4,
		cube.FromLiterals([]int{0, 1, 2, 3}, nil),
		cube.FromLiterals(nil, []int{0, 1, 2, 3}))
	sink := &recordingSink{}
	ctx := obsv.ContextWithProgress(context.Background(), sink)
	if _, err := Synthesize(f, Options{Ctx: ctx}); err != nil {
		t.Fatal(err)
	}
	if len(sink.events()) == 0 {
		t.Fatal("context-carried sink received no events")
	}
}

// TestProgressPartialOnBudget: a budget too small to converge still
// yields a verified incumbent, reports the honest final bounds
// (Partial == FinalLB < Size), and the event stream stays monotone all
// the way to the early exit.
func TestProgressPartialOnBudget(t *testing.T) {
	f := cube.NewCover(5,
		cube.FromLiterals([]int{2, 3}, nil),
		cube.FromLiterals(nil, []int{2, 3}),
		cube.FromLiterals([]int{0, 1, 4}, nil),
		cube.FromLiterals(nil, []int{0, 1, 4}))
	sink := &recordingSink{}
	r, err := Synthesize(f, Options{Budget: 50 * time.Millisecond, Progress: sink})
	if err != nil {
		t.Fatal(err)
	}
	if r.Assignment == nil || !r.Assignment.Realizes(r.ISOP) {
		t.Fatal("budgeted run must still return a verified incumbent")
	}
	if r.Partial != (r.FinalLB < r.Size) {
		t.Fatalf("partial=%v but final_lb=%d size=%d", r.Partial, r.FinalLB, r.Size)
	}
	counts := checkMonotone(t, sink.events())
	if counts[obsv.ProgressIncumbent] == 0 {
		t.Fatal("no incumbent event before the budget expired")
	}
}

// TestProgressOffCostsNothing: with no sink anywhere, Synthesize runs
// exactly as before (guard for the nil-safe fast path).
func TestProgressOffCostsNothing(t *testing.T) {
	f := cube.NewCover(4,
		cube.FromLiterals([]int{0, 1, 2, 3}, nil),
		cube.FromLiterals(nil, []int{0, 1, 2, 3}))
	r, err := Synthesize(f, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Size != 8 || r.FinalLB != 8 || r.Partial {
		t.Fatalf("progress-off synthesis changed: size=%d final_lb=%d partial=%v",
			r.Size, r.FinalLB, r.Partial)
	}
}
