package core

import (
	"testing"

	"github.com/lattice-tools/janus/internal/cube"
	"github.com/lattice-tools/janus/internal/encode"
)

func TestParseEngineSelect(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want EngineSelect
		err  bool
	}{
		{"", EngineAuto, false},
		{"auto", EngineAuto, false},
		{"shared", EngineShared, false},
		{"fresh", EngineFresh, false},
		{"Shared", EngineAuto, true},
		{"portfolio", EngineAuto, true},
	} {
		got, err := ParseEngineSelect(tc.in)
		if (err != nil) != tc.err || got != tc.want {
			t.Errorf("ParseEngineSelect(%q) = %v, %v; want %v, err=%v", tc.in, got, err, tc.want, tc.err)
		}
	}
	for _, e := range []EngineSelect{EngineAuto, EngineShared, EngineFresh} {
		back, err := ParseEngineSelect(e.String())
		if err != nil || back != e {
			t.Errorf("round trip %v via %q failed: %v, %v", e, e.String(), back, err)
		}
	}
}

func TestEngineModeResolution(t *testing.T) {
	if got := (Options{}).engineMode(); got != EngineAuto {
		t.Fatalf("zero options resolve to %v, want auto", got)
	}
	if got := (Options{SharedSolver: true}).engineMode(); got != EngineShared {
		t.Fatalf("deprecated SharedSolver resolves to %v, want shared", got)
	}
	pool := encode.NewSharedPool()
	opt := Options{}
	opt.Encode.Shared = pool
	if got := opt.engineMode(); got != EngineShared {
		t.Fatalf("caller-provided pool resolves to %v, want shared", got)
	}
	if got := (Options{EngineSelect: EngineFresh, SharedSolver: true}).engineMode(); got != EngineFresh {
		t.Fatalf("explicit enum must beat the deprecated flag: %v", got)
	}
	if got := (Options{Portfolio: true, EngineSelect: EngineShared}).engineMode(); got != EngineFresh {
		t.Fatalf("portfolio needs independent solvers, got %v", got)
	}
}

// TestPredictDepth pins the shape of the policy score: monotone in every
// feature, and on the calibration anchors it keeps mp2d_06's first step
// (gap 9, 9 products, nothing solved yet) below the default threshold
// while misex1_04's first main-search step (gap 6, 11 products, DS
// already solved LM problems) lands above it.
func TestPredictDepth(t *testing.T) {
	base := predictDepth(8, 6, 2)
	if predictDepth(16, 6, 2) <= base || predictDepth(8, 10, 2) <= base || predictDepth(8, 6, 4) <= base {
		t.Fatal("predictDepth must grow with gap, cover breadth, and solves")
	}
	if got := predictDepth(9, 9, 0); got >= DefaultEngineThreshold {
		t.Fatalf("mp2d_06 anchor scores %d, must stay below threshold %d (fresh)", got, DefaultEngineThreshold)
	}
	if got := predictDepth(6, 11, 2); got < DefaultEngineThreshold {
		t.Fatalf("misex1_04 anchor scores %d, must reach threshold %d (shared)", got, DefaultEngineThreshold)
	}
}

// TestForcedEngineResults: the forced modes must report a pure step
// trail, and both must land on the known fig1 answer.
func TestForcedEngineResults(t *testing.T) {
	f := cube.NewCover(4,
		cube.FromLiterals([]int{0, 1, 2, 3}, nil),
		cube.FromLiterals(nil, []int{0, 1, 2, 3}))
	for _, tc := range []struct {
		sel    EngineSelect
		engine string
	}{
		{EngineFresh, "fresh"},
		{EngineShared, "shared"},
	} {
		r, err := Synthesize(f, Options{EngineSelect: tc.sel})
		if err != nil {
			t.Fatal(err)
		}
		if r.Size != 8 {
			t.Fatalf("%v: fig1 size = %d, want 8", tc.sel, r.Size)
		}
		if r.Engine != tc.engine {
			t.Fatalf("%v: result engine %q, want %q", tc.sel, r.Engine, tc.engine)
		}
		if tc.sel == EngineFresh && r.SharedSteps != 0 {
			t.Fatalf("forced fresh ran %d shared steps", r.SharedSteps)
		}
		if tc.sel == EngineShared && r.FreshSteps != 0 {
			t.Fatalf("forced shared ran %d fresh steps", r.FreshSteps)
		}
		if r.FreshSteps+r.SharedSteps == 0 {
			t.Fatalf("%v: no steps recorded", tc.sel)
		}
		if r.PredictedDepth == 0 {
			t.Fatalf("%v: predicted depth missing", tc.sel)
		}
	}

	// Auto on the same function must decide every step one way or the
	// other and agree on the answer.
	r, err := Synthesize(f, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Size != 8 {
		t.Fatalf("auto: fig1 size = %d, want 8", r.Size)
	}
	if r.Engine != "fresh" && r.Engine != "shared" && r.Engine != "mixed" {
		t.Fatalf("auto: engine verdict %q", r.Engine)
	}
	if r.FreshSteps+r.SharedSteps == 0 {
		t.Fatal("auto: no steps recorded")
	}
}

// TestAutoThresholdOverride: a threshold of 1 makes every step shared, a
// huge one keeps every step fresh — the knob must actually steer the
// policy.
func TestAutoThresholdOverride(t *testing.T) {
	f := cube.NewCover(4,
		cube.FromLiterals([]int{0, 1, 2, 3}, nil),
		cube.FromLiterals(nil, []int{0, 1, 2, 3}))
	low, err := Synthesize(f, Options{EngineThreshold: 1})
	if err != nil {
		t.Fatal(err)
	}
	if low.FreshSteps != 0 || low.SharedSteps == 0 {
		t.Fatalf("threshold 1: %d shared / %d fresh steps, want all shared",
			low.SharedSteps, low.FreshSteps)
	}
	high, err := Synthesize(f, Options{EngineThreshold: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if high.SharedSteps != 0 || high.FreshSteps == 0 {
		t.Fatalf("threshold max: %d shared / %d fresh steps, want all fresh",
			high.SharedSteps, high.FreshSteps)
	}
	if low.Size != high.Size {
		t.Fatalf("engines disagree: shared %d vs fresh %d switches", low.Size, high.Size)
	}
}
