package core

import (
	"math/rand"
	"sync"
	"testing"

	"github.com/lattice-tools/janus/internal/cube"
	"github.com/lattice-tools/janus/internal/encode"
)

// randomRawCover draws a random cover over n inputs with up to k cubes
// (contradictory draws are skipped, so the cover may come out smaller).
func randomRawCover(rng *rand.Rand, n, k int) cube.Cover {
	raw := cube.Zero(n)
	for i := 0; i < k; i++ {
		var c cube.Cube
		for v := 0; v < n; v++ {
			switch rng.Intn(3) {
			case 0:
				c = c.WithPos(v)
			case 1:
				c = c.WithNeg(v)
			}
		}
		if c.NumLiterals() > 0 {
			raw.Cubes = append(raw.Cubes, c)
		}
	}
	return raw
}

// TestSharedSearchMatchesCegar is the equivalence property test: on ≥200
// random covers of up to 6 inputs, the dichotomic search over the shared
// assumption-based solver must return the same minimum lattice size as
// the per-candidate CEGAR engine, with a verified assignment. This is
// the strong form of equivalence — both engines are definitive per
// candidate (Unsat is a relaxation proof, Sat is verified by
// simulation), so the whole search trajectory must agree.
func TestSharedSearchMatchesCegar(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	trials := 200
	if testing.Short() {
		trials = 40
	}
	checked := 0
	for trial := 0; trial < trials; trial++ {
		n := 3 + rng.Intn(4) // 3..6 inputs
		raw := randomRawCover(rng, n, 2+rng.Intn(3))
		if len(raw.Cubes) == 0 {
			continue
		}
		checked++
		base, err := Synthesize(raw, Options{Encode: encode.Options{CEGAR: true}})
		if err != nil {
			t.Fatalf("trial %d (cegar): %v", trial, err)
		}
		shared, err := Synthesize(raw, Options{SharedSolver: true})
		if err != nil {
			t.Fatalf("trial %d (shared): %v", trial, err)
		}
		if base.Size != shared.Size {
			t.Fatalf("trial %d: cegar size %d (grid %v) vs shared size %d (grid %v) for %v",
				trial, base.Size, base.Grid, shared.Size, shared.Grid, raw)
		}
		if shared.Assignment == nil || !shared.Assignment.Realizes(shared.ISOP) {
			t.Fatalf("trial %d: shared answer unverified", trial)
		}
	}
	if checked < trials*9/10 {
		t.Fatalf("only %d/%d trials exercised", checked, trials)
	}
}

// TestSharedSearchWorkers exercises the shared solver under Workers>1:
// the parallel candidate path funnels concurrent goroutines into the
// per-engine mutex, which under -race is the regression test for the
// pool. The answer must match the sequential shared run.
func TestSharedSearchWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 6; trial++ {
		raw := randomRawCover(rng, 4, 3)
		if len(raw.Cubes) == 0 {
			continue
		}
		seq, err := Synthesize(raw, Options{SharedSolver: true})
		if err != nil {
			t.Fatal(err)
		}
		par, err := Synthesize(raw, Options{SharedSolver: true, Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		if seq.Size != par.Size {
			t.Fatalf("trial %d: sequential %d vs workers %d", trial, seq.Size, par.Size)
		}
		if par.Assignment == nil || !par.Assignment.Realizes(par.ISOP) {
			t.Fatalf("trial %d: parallel shared answer unverified", trial)
		}
	}

	// And two whole syntheses in parallel, each with Workers>1, each with
	// its own pool: the engines must never cross streams.
	var wg sync.WaitGroup
	var errs [2]error
	var sizes [2]int
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			f := randomRawCover(rand.New(rand.NewSource(88)), 4, 3)
			r, err := Synthesize(f, Options{SharedSolver: true, Workers: 3})
			errs[i], sizes[i] = err, r.Size
		}(i)
	}
	wg.Wait()
	for i := 0; i < 2; i++ {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
	}
	if sizes[0] != sizes[1] {
		t.Fatalf("identical inputs diverged: %d vs %d", sizes[0], sizes[1])
	}
}

// TestSharedCountersThreaded: the shared-solver counters must climb all
// the way into core.Result — reuse requires a search that revisits a
// shape, which the dichotomic descent over a multi-product function does.
func TestSharedCountersThreaded(t *testing.T) {
	f := cube.NewCover(4,
		cube.FromLiterals([]int{0, 1, 2, 3}, nil),
		cube.FromLiterals(nil, []int{0, 1, 2, 3}))
	r, err := Synthesize(f, Options{SharedSolver: true})
	if err != nil {
		t.Fatal(err)
	}
	if r.Size != 8 {
		t.Fatalf("fig1 size = %d, want 8", r.Size)
	}
	if r.StampedClauses == 0 {
		t.Fatalf("no stamped clauses recorded: %+v", r)
	}
	if r.ClausesAdded != r.StampedClauses {
		t.Fatalf("shared run: added=%d stamped=%d must agree", r.ClausesAdded, r.StampedClauses)
	}
}

// TestSharedFilteredSearchMatchesCegar pins the soundness of the clause
// quality filter: with the counterexample transfer cap and the learnt
// prune forced to their most aggressive settings, the shared-pool search
// must still return the same minimum lattice size as the per-candidate
// CEGAR engine on ≥200 random covers. The filter may only drop clauses a
// skeleton would re-derive — a skeleton holding a subset of the engine's
// counterexample entries is a coarser relaxation of the same LM problem,
// so Unsat answers stay definitive and Sat answers are still verified by
// simulation. A divergence here means the filter broke that invariant.
func TestSharedFilteredSearchMatchesCegar(t *testing.T) {
	rng := rand.New(rand.NewSource(2424))
	trials := 200
	if testing.Short() {
		trials = 40
	}
	checked := 0
	for trial := 0; trial < trials; trial++ {
		n := 3 + rng.Intn(4) // 3..6 inputs
		raw := randomRawCover(rng, n, 2+rng.Intn(3))
		if len(raw.Cubes) == 0 {
			continue
		}
		checked++
		base, err := Synthesize(raw, Options{Encode: encode.Options{CEGAR: true}})
		if err != nil {
			t.Fatalf("trial %d (cegar): %v", trial, err)
		}
		opt := Options{EngineSelect: EngineShared}
		opt.Encode.CEXTransferLimit = 1 // stamp at most one missing entry per reuse
		opt.Encode.SharedLearntLBD = 1  // prune all but the glue clauses
		opt.Encode.SharedLearntSize = 3
		filtered, err := Synthesize(raw, opt)
		if err != nil {
			t.Fatalf("trial %d (filtered shared): %v", trial, err)
		}
		if base.Size != filtered.Size {
			t.Fatalf("trial %d: cegar size %d (grid %v) vs filtered shared size %d (grid %v) for %v",
				trial, base.Size, base.Grid, filtered.Size, filtered.Grid, raw)
		}
		if filtered.Assignment == nil || !filtered.Assignment.Realizes(filtered.ISOP) {
			t.Fatalf("trial %d: filtered shared answer unverified", trial)
		}
	}
	if checked < trials*9/10 {
		t.Fatalf("only %d/%d trials exercised", checked, trials)
	}
}

// TestWarmedMixedSearchMatchesCegar forces the auto policy to flip from
// fresh to shared mid-search: the threshold is pinned just above the
// first step's depth score, so the first dichotomic step runs fresh and
// the depth growth from its solves flips later steps to a pool — which
// is then warmed from the fresh steps' counterexample trail
// (SharedPool.Warm). Results must match the fresh engine exactly, and
// the sweep must actually produce mixed-engine runs for the flip path
// to count as exercised.
func TestWarmedMixedSearchMatchesCegar(t *testing.T) {
	rng := rand.New(rand.NewSource(909))
	trials := 80
	if testing.Short() {
		trials = 20
	}
	checked, mixed := 0, 0
	for trial := 0; trial < trials; trial++ {
		n := 3 + rng.Intn(4) // 3..6 inputs
		raw := randomRawCover(rng, n, 2+rng.Intn(3))
		if len(raw.Cubes) == 0 {
			continue
		}
		checked++
		base, err := Synthesize(raw, Options{Encode: encode.Options{CEGAR: true}})
		if err != nil {
			t.Fatalf("trial %d (cegar): %v", trial, err)
		}
		// One depth unit above the first step's score: step one stays
		// fresh, and every LM solve it performs adds 4 to the score, so
		// any second step flips shared and triggers the mid-search warm.
		gap := base.NUB - base.LB
		prods := len(base.ISOP.Cubes) + len(base.DualISOP.Cubes)
		opt := Options{EngineSelect: EngineAuto,
			EngineThreshold: predictDepth(gap, prods, 0) + 1}
		auto, err := Synthesize(raw, opt)
		if err != nil {
			t.Fatalf("trial %d (mixed auto): %v", trial, err)
		}
		if base.Size != auto.Size {
			t.Fatalf("trial %d: cegar size %d (grid %v) vs mixed size %d (grid %v) for %v",
				trial, base.Size, base.Grid, auto.Size, auto.Grid, raw)
		}
		if auto.Assignment == nil || !auto.Assignment.Realizes(auto.ISOP) {
			t.Fatalf("trial %d: mixed answer unverified", trial)
		}
		if auto.Engine == "mixed" {
			mixed++
		}
	}
	if checked < trials*9/10 {
		t.Fatalf("only %d/%d trials exercised", checked, trials)
	}
	if mixed == 0 {
		t.Fatal("no trial mixed engines; the mid-search warm path was never exercised")
	}
}
