package core

import (
	"testing"
	"time"

	"github.com/lattice-tools/janus/internal/benchdata"
)

// TestProfileClpl00 exists to profile a single mid-size synthesis run:
//
//	go test -run TestProfileClpl00 -cpuprofile cpu.out ./internal/core
func TestProfileClpl00(t *testing.T) {
	if testing.Short() {
		t.Skip("profiling helper")
	}
	f, _ := benchdata.Lookup("clpl_00").Function()
	r, err := Synthesize(f, Options{Budget: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("clpl_00: %v size=%d lb=%d nub=%d lm=%d elapsed=%v",
		r.Grid, r.Size, r.LB, r.NUB, r.LMSolved, r.Elapsed)
}

// TestProfileClpl00Cegar mirrors TestProfileClpl00 with the CEGAR engine.
func TestProfileClpl00Cegar(t *testing.T) {
	if testing.Short() {
		t.Skip("profiling helper")
	}
	f, _ := benchdata.Lookup("clpl_00").Function()
	opt := Options{Budget: 30 * time.Second}
	opt.Encode.CEGAR = true
	r, err := Synthesize(f, opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("clpl_00 cegar: %v size=%d lb=%d nub=%d lm=%d elapsed=%v",
		r.Grid, r.Size, r.LB, r.NUB, r.LMSolved, r.Elapsed)
}
