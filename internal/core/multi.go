package core

import (
	"errors"
	"fmt"
	"time"

	"github.com/lattice-tools/janus/internal/cube"
	"github.com/lattice-tools/janus/internal/lattice"
	"github.com/lattice-tools/janus/internal/minimize"
	"github.com/lattice-tools/janus/internal/obsv"
	"github.com/lattice-tools/janus/internal/truth"
)

// Region locates one output function inside a multi-function lattice.
type Region struct {
	// Col is the first column of the region; Cols its width.
	Col, Cols int
	// Rows is the height the sub-solution occupied before padding.
	Rows int
}

// MultiLattice is a single lattice realizing several functions, one per
// column region, regions separated by constant-0 isolation columns
// (Section III-C).
type MultiLattice struct {
	Assignment *lattice.Assignment
	Regions    []Region
	Targets    []cube.Cover
}

// Rows returns the lattice height.
func (ml *MultiLattice) Rows() int { return ml.Assignment.Grid.M }

// Cols returns the lattice width.
func (ml *MultiLattice) Cols() int { return ml.Assignment.Grid.N }

// Size returns the total switch count, the paper's Table III metric.
func (ml *MultiLattice) Size() int { return ml.Assignment.Size() }

// regionAssignment extracts one region (full height) as a standalone
// lattice.
func (ml *MultiLattice) regionAssignment(i int) *lattice.Assignment {
	r := ml.Regions[i]
	g := lattice.Grid{M: ml.Rows(), N: r.Cols}
	a := lattice.NewAssignment(g)
	for row := 0; row < g.M; row++ {
		for c := 0; c < r.Cols; c++ {
			a.Set(row, c, ml.Assignment.At(row, r.Col+c))
		}
	}
	return a
}

// Verify checks that every region implements its target function.
func (ml *MultiLattice) Verify() error {
	for i, f := range ml.Targets {
		if !ml.regionAssignment(i).Realizes(f) {
			return fmt.Errorf("core: region %d does not realize its target", i)
		}
	}
	return nil
}

// MultiResult is the outcome of a multi-function synthesis.
type MultiResult struct {
	Lattice  *MultiLattice
	Parts    []Result
	LMSolved int
	// ClausesAdded / ClausesRebuilt / CegarIters aggregate the
	// incremental-solving counters over every LM call, as in Result;
	// SharedReused / StampedClauses / TransferredCEX do the same for the
	// shared-solver counters (Options.SharedSolver).
	ClausesAdded   int64
	ClausesRebuilt int64
	CegarIters     int64
	SharedReused   int64
	StampedClauses int64
	TransferredCEX int64
	// Engine policy aggregates over every per-output search and the
	// row-reduction phase: step counts per engine kind, and the clause
	// quality filter's drop/prune totals (see Result).
	Engine                  string
	SharedSteps, FreshSteps int
	CEXFiltered             int64
	LearntsPruned           int64
	Elapsed                 time.Duration
}

// Sol formats the lattice shape like the paper's Table III ("3x135").
func (mr *MultiResult) Sol() string {
	return fmt.Sprintf("%dx%d", mr.Lattice.Rows(), mr.Lattice.Cols())
}

// SynthesizeMulti runs JANUS-MF: JANUS per output, pack into one lattice,
// then the row-reduction exploration of the DS method. With reduce=false
// it stops after packing — the paper's "straight-forward method".
func SynthesizeMulti(fns []cube.Cover, opt Options, reduce bool) (*MultiResult, error) {
	start := time.Now()
	if len(fns) == 0 {
		return nil, errors.New("core: no functions given")
	}
	if opt.Tracer == nil {
		// Ctx-carried tracing, as in Synthesize.
		opt.Tracer = obsv.TracerFromContext(opt.Ctx)
		if opt.TraceParent == nil {
			opt.TraceParent = obsv.SpanFromContext(opt.Ctx)
		}
	}
	root := obsv.Start(opt.Tracer, opt.TraceParent, "SynthesizeMF")
	defer root.End()
	root.SetInt("outputs", int64(len(fns)))
	if id := obsv.RequestIDFromContext(opt.Ctx); id != "" {
		root.SetStr("request_id", id)
	}
	opt.TraceParent = root // per-output Synthesize roots nest under MF

	mr := &MultiResult{}
	var st lmStats
	parts := make([]*part, 0, len(fns))
	targets := make([]cube.Cover, 0, len(fns))
	for _, f := range fns {
		r, err := Synthesize(f, opt)
		if err != nil {
			return nil, err
		}
		if r.Assignment == nil {
			// Canceled (or deadline-expired) before this output's bounds
			// phase produced a mapping: there is nothing to pack.
			return nil, errors.New("core: canceled before a mapping was found")
		}
		mr.Parts = append(mr.Parts, r)
		st.noteResult(r)
		parts = append(parts, &part{isop: r.ISOP, dual: r.DualISOP, sol: r.Assignment})
		targets = append(targets, r.ISOP)
	}
	if reduce {
		sub := subOptions(opt)
		reduceSpan := root.Child("ReduceRows")
		sub.Encode.Span = reduceSpan // fixedRowSearch/trimCols LM calls
		if sub.Budget > 0 && sub.Deadline.IsZero() {
			// The row-reduction phase gets its own budget window.
			sub.Deadline = time.Now().Add(sub.Budget)
		}
		parts = reduceMultiRows(parts, sub, &st)
		reduceSpan.End()
	}
	mr.LMSolved = st.solved
	mr.ClausesAdded = st.added
	mr.ClausesRebuilt = st.rebuilt
	mr.CegarIters = st.iters
	mr.SharedReused = st.reused
	mr.StampedClauses = st.stamped
	mr.TransferredCEX = st.transferred
	mr.Engine = st.engineVerdict()
	mr.SharedSteps = st.sharedSteps
	mr.FreshSteps = st.freshSteps
	mr.CEXFiltered = st.filtered
	mr.LearntsPruned = st.pruned
	ml := packMulti(parts, targets)
	if err := ml.Verify(); err != nil {
		return nil, err
	}
	mr.Lattice = ml
	mr.Elapsed = time.Since(start)
	return mr, nil
}

// packMulti packs part solutions into a MultiLattice with region metadata.
func packMulti(parts []*part, targets []cube.Cover) *MultiLattice {
	a := packParts(parts)
	ml := &MultiLattice{Assignment: a, Targets: targets}
	col := 0
	for i, p := range parts {
		if i > 0 {
			col++
		}
		ml.Regions = append(ml.Regions, Region{Col: col, Cols: p.sol.Grid.N, Rows: p.sol.Grid.M})
		col += p.sol.Grid.N
	}
	return ml
}

// reduceMultiRows lowers the overall row count as in reduceRows but
// returns the updated parts (so region metadata can be rebuilt). With
// Options.MFReduceBudget > 0 the exploration stops once that many LM
// solves have been spent on it — the reduction is opportunistic, so the
// best packing found within the budget is kept.
func reduceMultiRows(parts []*part, opt Options, st *lmStats) []*part {
	cur := parts
	bcRows, bcCols := packedSize(cur)
	bc := bcRows * bcCols
	bestParts := cur
	startSolved := st.solved
	overBudget := func() bool {
		return opt.MFReduceBudget > 0 && st.solved-startSolved >= opt.MFReduceBudget
	}

	for br := bcRows; br > 3; br-- {
		next := make([]*part, len(cur))
		ok := true
		for i, p := range cur {
			if overBudget() {
				ok = false
				break
			}
			np := &part{isop: p.isop, dual: p.dual, sol: p.sol}
			m, n := p.sol.Grid.M, p.sol.Grid.N
			switch {
			case m >= br:
				sol := fixedRowSearch(np, br-1, n, n+bc, opt, st)
				if sol == nil {
					ok = false
				} else {
					np.sol = sol
				}
			case m > 1 && m < br-1 && n > 1:
				if sol := trimCols(np, br-1, n-1, opt, st); sol != nil {
					np.sol = sol
				}
			}
			if !ok {
				break
			}
			next[i] = np
		}
		if !ok {
			break
		}
		nr, nc := packedSize(next)
		if nr*nc < bc {
			bc = nr * nc
			bestParts = next
		}
		cur = next
	}
	return bestParts
}

// TruthTables evaluates every region of the lattice, useful for callers
// that want to inspect the implemented functions directly.
func (ml *MultiLattice) TruthTables() []*truth.Table {
	ts := make([]*truth.Table, len(ml.Targets))
	for i, f := range ml.Targets {
		ts[i] = ml.regionAssignment(i).Table(f.N)
	}
	return ts
}

// MinimizeOutputs is a convenience that Auto-minimizes a slice of raw
// covers, as espresso would be applied per output before JANUS-MF.
func MinimizeOutputs(fns []cube.Cover) []cube.Cover {
	out := make([]cube.Cover, len(fns))
	for i, f := range fns {
		out[i] = minimize.Auto(f)
	}
	return out
}
