package core

import (
	"fmt"
	"math/bits"
)

// EngineSelect picks the LM solver strategy for the dichotomic search.
// The zero value is EngineAuto, which makes the per-step policy the
// default: fresh per-candidate solvers below the depth threshold, the
// shared assumption-based pool above it. The two forced modes pin every
// step to one strategy — EngineShared subsumes the old SharedSolver flag,
// EngineFresh the pre-pool behavior.
type EngineSelect int

const (
	// EngineAuto predicts each step's remaining search depth and picks
	// fresh or shared engines accordingly (the default).
	EngineAuto EngineSelect = iota
	// EngineShared forces the shared assumption-based solver pool for
	// every dichotomic step.
	EngineShared
	// EngineFresh forces fresh per-candidate solvers for every step.
	EngineFresh
)

// String names the mode the way the -engine flag spells it.
func (e EngineSelect) String() string {
	switch e {
	case EngineShared:
		return "shared"
	case EngineFresh:
		return "fresh"
	default:
		return "auto"
	}
}

// ParseEngineSelect reads a -engine flag value.
func ParseEngineSelect(s string) (EngineSelect, error) {
	switch s {
	case "", "auto":
		return EngineAuto, nil
	case "shared":
		return EngineShared, nil
	case "fresh":
		return EngineFresh, nil
	}
	return EngineAuto, fmt.Errorf("core: unknown engine %q (want auto, shared, or fresh)", s)
}

// DefaultEngineThreshold is the depth score at which EngineAuto switches
// from fresh to shared engines, calibrated on the BenchmarkSharedSearch
// instances: mp2d_06's shallow search (score ~20 at its first step) stays
// fresh and keeps the low-overhead engines, misex1_04's DS-preceded
// search (score ~30) goes shared and keeps the ~2x transfer win. See
// DESIGN.md "Engine selection".
const DefaultEngineThreshold = 24

func (o Options) engineThreshold() int {
	if o.EngineThreshold <= 0 {
		return DefaultEngineThreshold
	}
	return o.EngineThreshold
}

// engineMode resolves the effective selection mode: the explicit enum
// wins; the deprecated SharedSolver flag and a caller-provided pool both
// mean EngineShared; Portfolio forces fresh engines because its racing
// orientations need independent solvers.
func (o Options) engineMode() EngineSelect {
	if o.Portfolio {
		return EngineFresh
	}
	if o.EngineSelect != EngineAuto {
		return o.EngineSelect
	}
	if o.SharedSolver || o.Encode.Shared != nil {
		return EngineShared
	}
	return EngineAuto
}

// predictDepth scores how much LM-solve work the search still expects
// before one dichotomic step: the remaining halving steps of the bounds
// gap, weighted by the cover's breadth (its ISOP plus dual product
// count — wider covers mean heavier per-candidate formulas that amortize
// a shared skeleton), plus the LM problems already solved for this
// target (DS sub-searches and earlier steps — observed evidence that the
// instance keeps reaching the SAT solver rather than being refuted
// structurally). Scores at or above the threshold choose the shared
// pool.
func predictDepth(gap, products, solved int) int {
	steps := bits.Len(uint(gap))
	return steps*(products+1)/2 + 4*solved
}

// engineName labels one step's decision for spans and results.
func engineName(shared bool) string {
	if shared {
		return "shared"
	}
	return "fresh"
}
