// Package core implements JANUS, the paper's approximate lattice synthesis
// algorithm (Section III), plus JANUS-MF for realizing multiple functions
// on a single lattice (Section III-C).
//
// Synthesize minimizes the target into ISOP form, computes the structural
// lower bound and the best of the DP/PS/DPS/IPS/IDPS/DS upper bounds, and
// then explores lattice sizes with a dichotomic search, deciding one
// lattice mapping (LM) SAT problem per candidate lattice.
package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/lattice-tools/janus/internal/bounds"
	"github.com/lattice-tools/janus/internal/cube"
	"github.com/lattice-tools/janus/internal/encode"
	"github.com/lattice-tools/janus/internal/lattice"
	"github.com/lattice-tools/janus/internal/minimize"
	"github.com/lattice-tools/janus/internal/obsv"
	"github.com/lattice-tools/janus/internal/sat"
)

// Options configures a synthesis run. The zero value follows the paper:
// improved bounds and the divide-and-synthesize method enabled, no SAT
// budget, candidate lattices capped at 64 switches (the path-mask limit).
type Options struct {
	// Encode tunes the LM SAT formulation (formulation choice, facts,
	// degree constraints, per-call SAT limits).
	Encode encode.Options
	// DisableImprovedBounds restricts the initial upper bound to the
	// DP/PS/DPS trio (the paper's "oub"; ablation).
	DisableImprovedBounds bool
	// DisableDS turns the divide-and-synthesize upper bound off.
	DisableDS bool
	// SkipMinimize treats the input cover as already being in ISOP form.
	SkipMinimize bool
	// MaxCells skips lattice candidates with more switches than this.
	// Zero means the implementation limit of 64.
	MaxCells int
	// DSMinProducts is the smallest product count for which DS runs
	// (default 4).
	DSMinProducts int
	// MFReduceBudget caps the LM solves SynthesizeMulti's shared
	// row-reduction phase may spend (0 = unlimited). The reduction is
	// opportunistic: when the budget runs out the best packing found so
	// far is kept. The service batch path sets this so a batch never
	// spends more solves shrinking the shared lattice than it saved by
	// skipping the per-output DS bounds.
	MFReduceBudget int
	// Workers solves the candidate lattices of each search midpoint
	// concurrently (the paper's machine ran 28 cores). Values below 2 keep
	// the search sequential. The result is deterministic: among the
	// satisfiable candidates of a midpoint, the smallest area wins with
	// ties broken by candidate order.
	Workers int
	// Budget bounds the whole synthesis by wall clock (the paper's
	// analogue is the 6-hour CPU limit per instance). When it expires the
	// search stops and the best verified incumbent is returned. Zero
	// means unlimited.
	Budget time.Duration
	// Ctx cancels the synthesis cooperatively: when it is done, the
	// search stops between LM solves and the cancellation is threaded
	// into the SAT solver's interrupt channel so running solves abort
	// within a bounded number of search steps. Like an expired Budget,
	// cancellation is not an error — the best verified incumbent found so
	// far is returned. Nil means no cancellation (context.Background
	// semantics without the import on every call site).
	Ctx context.Context
	// Portfolio races the primal and dual CEGAR orientations of every
	// candidate lattice concurrently, taking the first definitive answer
	// and cancelling the loser (the ROADMAP's portfolio solving item).
	// Implies the CEGAR engine for LM solves.
	Portfolio bool
	// EngineSelect picks the LM solver strategy per dichotomic step. The
	// default, EngineAuto, predicts each step's remaining search depth
	// from the bounds gap, the cover breadth, and the LM problems solved
	// so far, and chooses fresh per-candidate engines below
	// EngineThreshold and the shared assumption-based pool at or above
	// it. EngineShared and EngineFresh pin every step. Ignored under
	// Portfolio, whose racing orientations need independent solvers.
	EngineSelect EngineSelect
	// EngineThreshold tunes the auto policy's fresh/shared crossover
	// (zero means DefaultEngineThreshold).
	EngineThreshold int
	// SharedSolver keeps one assumption-based SAT solver alive per
	// (cover, orientation) for the whole search and shares it across
	// every candidate grid — of one dichotomic midpoint and of adjacent
	// midpoints where the shapes recur: skeletons are guarded by
	// activation literals, entry clauses are stamped from path templates,
	// and CEGAR counterexample entries transfer between candidates
	// (see encode.SharedPool). Implies the CEGAR engine; ignored under
	// Portfolio, whose racing orientations need independent solvers.
	//
	// Deprecated: SharedSolver is the pre-policy spelling of
	// EngineSelect = EngineShared and is kept for compatibility; the auto
	// policy subsumes it as the default.
	SharedSolver bool
	// Deadline is the absolute form of Budget; set automatically, and
	// inherited by DS/MF sub-syntheses so nested searches share the same
	// wall-clock budget.
	Deadline time.Time
	// Tracer, when non-nil, receives the synthesis' hierarchical span
	// trace (Synthesize → DichotomicStep → Candidate → CegarIter →
	// SatSolve) as JSONL; nil disables tracing at zero cost. When nil,
	// the tracer (and parent span) attached to Ctx via
	// obsv.ContextWithTracer/ContextWithSpan is used instead — the
	// carrier the service layer uses so per-job tracing crosses the
	// queue without widening this struct at every hop; a request id on
	// Ctx is stamped onto the root span as the request_id attribute.
	Tracer *obsv.Tracer
	// TraceParent nests this synthesis' root span under an existing
	// span. Set automatically for DS and MF sub-syntheses; leave nil for
	// top-level runs.
	TraceParent *obsv.Span
	// Progress, when non-nil, receives the synthesis' anytime progress
	// events (phase brackets, verified bound moves, incumbent
	// improvements, dichotomic steps — see obsv.ProgressEvent); nil keeps
	// progress free. When nil, the sink attached to Ctx via
	// obsv.ContextWithProgress is used instead — the carrier the service
	// layer uses so per-job progress crosses the queue like the tracer
	// does. DS and MF sub-syntheses inherit the sink and mark their
	// events Sub, since their bounds describe part covers.
	Progress obsv.ProgressSink
	// sub marks DS/MF sub-syntheses (set by subOptions): their progress
	// events carry the Sub flag and they do not feed the top-level
	// first-mapping histogram.
	sub bool
}

func (o Options) expired() bool {
	if o.Ctx != nil && o.Ctx.Err() != nil {
		return true
	}
	return !o.Deadline.IsZero() && time.Now().After(o.Deadline)
}

func (o Options) maxCells() int {
	if o.MaxCells <= 0 || o.MaxCells > 64 {
		return 64
	}
	return o.MaxCells
}

func (o Options) dsMinProducts() int {
	if o.DSMinProducts <= 0 {
		return 4
	}
	return o.DSMinProducts
}

// Result is the outcome of a synthesis run.
type Result struct {
	// Assignment is the best verified lattice implementation found.
	Assignment *lattice.Assignment
	// Grid is the lattice shape of Assignment.
	Grid lattice.Grid
	// Size is Grid.M × Grid.N.
	Size int
	// LB is the structural lower bound; OUB the best of DP/PS/DPS; NUB the
	// initial upper bound actually used (min over enabled methods).
	LB, OUB, NUB int
	// UBMethod names the construction that produced NUB.
	UBMethod string
	// MatchedLB is true when Size == LB (solution provably minimum up to
	// the soundness of the structural bound).
	MatchedLB bool
	// LMSolved counts LM SAT problems decided during the search.
	LMSolved int
	// ClausesAdded totals the CNF clauses actually handed to SAT solvers
	// across every LM solve of the search (including DS sub-syntheses).
	ClausesAdded int64
	// ClausesRebuilt is the clause volume a rebuild-per-iteration CEGAR
	// engine would have pushed; the gap to ClausesAdded is the saving of
	// the incremental engine (the two are equal for monolithic solves).
	ClausesRebuilt int64
	// CegarIters totals CEGAR refinement iterations across LM solves.
	CegarIters int64
	// SharedReused counts LM solves answered on an already-stamped grid
	// skeleton of the shared solver (Options.SharedSolver only).
	SharedReused int64
	// StampedClauses totals the clauses stamped directly into shared
	// solvers; the gap to ClausesAdded under a fresh-solver run is the
	// construction the sharing avoided.
	StampedClauses int64
	// TransferredCEX totals the counterexample-entry clauses candidates
	// inherited from entries other candidates discovered.
	TransferredCEX int64
	// Engine is the engine policy's overall verdict for the search:
	// "fresh", "shared", "mixed" (steps of both kinds, DS/MF
	// sub-syntheses included), or "" when no dichotomic step ran.
	Engine string
	// PredictedDepth is the policy's depth score at this synthesis' first
	// dichotomic step (zero when the bounds met before any step).
	PredictedDepth int
	// SharedSteps and FreshSteps count the dichotomic steps each engine
	// kind ran, sub-syntheses included.
	SharedSteps, FreshSteps int
	// CEXFiltered totals the counterexample entries the shared engines'
	// transfer quality filter declined to stamp; LearntsPruned the learnt
	// clauses they shed on grid switches. Both are speed-only knobs —
	// see encode.Options.CEXTransferLimit.
	CEXFiltered   int64
	LearntsPruned int64
	// GridsProbed lists the distinct lattice shapes ("MxN") whose LM
	// problem the search attempted, in first-probe order, DS/MF
	// sub-syntheses included. The flight recorder and job traces use it
	// to explain where a request's time went.
	GridsProbed []string
	// FinalLB is the lower bound when the search stopped: equal to Size
	// when the dichotomic search converged (no smaller candidate exists),
	// lower when a budget or cancellation stopped it early — the
	// remaining gap is the unexplored sizes.
	FinalLB int
	// Partial reports that the search stopped on budget expiry or
	// cancellation before the bounds met. Assignment is still a verified
	// mapping of the target; Partial only means a smaller lattice might
	// exist between FinalLB and Size.
	Partial bool
	// Elapsed is the wall-clock synthesis time.
	Elapsed time.Duration
	// ISOP and DualISOP are the minimized forms the search operated on.
	ISOP, DualISOP cube.Cover
}

// ErrUnsupported is returned for targets outside the engine's limits.
var ErrUnsupported = errors.New("core: unsupported target")

// Synthesize runs JANUS on a single-output function.
func Synthesize(f cube.Cover, opt Options) (Result, error) {
	start := time.Now()
	if f.N > encode.MaxInputs {
		return Result{}, fmt.Errorf("%w: %d inputs", ErrUnsupported, f.N)
	}
	if opt.Budget > 0 && opt.Deadline.IsZero() {
		opt.Deadline = start.Add(opt.Budget)
	}
	if opt.Ctx != nil && opt.Encode.Limits.Interrupt == nil {
		// Thread the context into every SAT call so cancellation reaches
		// solves already in flight, not just the gaps between them.
		opt.Encode.Limits.Interrupt = opt.Ctx.Done()
	}
	if opt.Portfolio {
		opt.Encode.Portfolio = true
	}
	// Engine policy: resolve the selection mode once; EngineShared gets
	// its pool up front so DS and MF sub-syntheses inherit it through
	// opt.Encode (keyed by cover, so their part-covers never collide).
	// EngineAuto creates a pool lazily at the first step the depth
	// predictor sends to the shared engine; sub-syntheses then decide for
	// their own searches. One pool per synthesis either way: the engines
	// grow with every skeleton, so they should live exactly as long as
	// the search amortizing them.
	engineMode := opt.engineMode()
	switch engineMode {
	case EngineShared:
		if opt.Encode.Shared == nil {
			opt.Encode.Shared = encode.NewSharedPool()
		}
	default:
		opt.Encode.Shared = nil
	}
	if opt.Tracer == nil {
		// Ctx-carried tracing: the service attaches a per-job tracer and
		// its Job root span to the context it hands us.
		opt.Tracer = obsv.TracerFromContext(opt.Ctx)
		if opt.TraceParent == nil {
			opt.TraceParent = obsv.SpanFromContext(opt.Ctx)
		}
	}
	if opt.Progress == nil {
		// Ctx-carried progress, same carrier discipline as the tracer.
		opt.Progress = obsv.ProgressFromContext(opt.Ctx)
	}
	prog := &progTrail{sink: opt.Progress, sub: opt.sub, start: start}
	root := obsv.Start(opt.Tracer, opt.TraceParent, "Synthesize")
	defer root.End()
	root.SetInt("inputs", int64(f.N))
	if id := obsv.RequestIDFromContext(opt.Ctx); id != "" {
		root.SetStr("request_id", id)
	}
	mSyntheses.Inc()

	var isop, dual cube.Cover
	{
		minSpan, done := phase(prog, root, "Minimize", "minimize", mPhaseMinimNS)
		if opt.SkipMinimize {
			isop = f
			dual = minimize.Auto(f.Dual())
		} else {
			isop, dual = minimize.AutoDual(f)
		}
		minSpan.SetInt("products", int64(len(isop.Cubes)))
		done()
	}

	res := Result{ISOP: isop, DualISOP: dual}

	// Constants: a single switch suffices.
	if isop.IsZero() || isop.IsOne() {
		g := lattice.Grid{M: 1, N: 1}
		a := lattice.NewAssignment(g)
		if isop.IsOne() {
			a.Entries[0] = lattice.Entry{Kind: lattice.Const1}
		}
		res.Assignment, res.Grid, res.Size = a, g, 1
		res.LB, res.OUB, res.NUB = 1, 1, 1
		res.UBMethod = "const"
		res.MatchedLB = true
		res.FinalLB = 1
		prog.incumbent(a, "const")
		prog.bound(1, 1, "const")
		res.Elapsed = time.Since(start)
		return res, nil
	}

	// Initial upper bounds.
	boundsSpan, boundsDone := phase(prog, root, "Bounds", "bounds", mPhaseBoundNS)
	plain := bounds.All(isop, dual, false)
	improved := plain
	if !opt.DisableImprovedBounds {
		improved = bounds.All(isop, dual, true)
	}
	if len(plain) == 0 || len(improved) == 0 {
		boundsDone()
		return Result{}, fmt.Errorf("%w: no verified upper bound", ErrUnsupported)
	}
	res.OUB = plain[0].Size()
	best := improved[0]
	incumbent := best.Assignment
	res.UBMethod = best.Name
	boundsSpan.SetInt("oub", int64(res.OUB))
	boundsSpan.SetInt("ub", int64(incumbent.Size()))
	prog.incumbent(incumbent, best.Name)
	prog.bound(0, incumbent.Size(), best.Name)
	boundsDone()

	var st lmStats
	if !opt.DisableDS && !opt.DisableImprovedBounds &&
		len(isop.Cubes) >= opt.dsMinProducts() && !opt.expired() {
		// DS spends SAT effort on an upper bound only; under a wall-clock
		// budget it gets at most a third so the dichotomic search keeps
		// the lion's share.
		dsSpan, dsDone := phase(prog, root, "DSBound", "ds", mPhaseDSNS)
		dsOpt := opt
		dsOpt.TraceParent = dsSpan
		dsOpt.Encode.Span = dsSpan // reduceRows' direct LM calls
		if opt.Budget > 0 {
			if dsCap := start.Add(opt.Budget / 3); dsCap.Before(dsOpt.Deadline) {
				dsOpt.Deadline = dsCap
			}
		}
		if ds := dsBound(isop, dual, dsOpt, &st); ds != nil && ds.Size() < incumbent.Size() {
			incumbent = ds
			res.UBMethod = "DS"
			prog.incumbent(incumbent, "DS")
			prog.bound(0, incumbent.Size(), "DS")
		}
		dsSpan.SetInt("ub", int64(incumbent.Size()))
		dsDone()
	}
	res.NUB = incumbent.Size()

	// Lower bound (Section III-B).
	lb := bounds.LowerBound(isop, dual, incumbent.Size())
	res.LB = lb
	prog.bound(lb, incumbent.Size(), "lb")

	// Dichotomic search (Section III, steps 2-6). Candidates for midpoint
	// mp are the maximal grids of area ≤ mp: realizability is monotone in
	// both dimensions (a row or column can always be duplicated), so if
	// anything of area ≤ mp fits, a maximal grid fits. The upper bound
	// updates to the area actually found, which may be below mp.
	ub := incumbent.Size()
	pool := opt.Encode.Shared // non-nil iff engineMode == EngineShared
	srchSpan, srchDone := phase(prog, root, "Search", "search", mPhaseSrchNS)
	for lb < ub && !opt.expired() {
		mp := (lb + ub) / 2
		mMidpoints.Inc()
		step := srchSpan.Child("DichotomicStep")
		step.SetInt("lb", int64(lb))
		step.SetInt("ub", int64(ub))
		step.SetInt("mp", int64(mp))
		cands := candidates(mp, lb, opt.maxCells())
		step.SetInt("candidates", int64(len(cands)))
		// Engine policy: forced modes pin the step; auto predicts the
		// remaining depth and, once a step has gone shared, stays there —
		// the pool's skeletons and entries only gain value.
		depth := predictDepth(ub-lb, len(isop.Cubes)+len(dual.Cubes), st.solved)
		useShared := engineMode == EngineShared
		if engineMode == EngineAuto {
			useShared = pool != nil || depth >= opt.engineThreshold()
		}
		stepOpt := opt
		if useShared {
			if pool == nil {
				// A pool opened mid-search starts cold while earlier fresh
				// steps already paid for counterexamples; seed it with them
				// so the flip doesn't re-derive known entries.
				pool = encode.NewSharedPool()
				pool.Warm(isop, dual, opt.Encode, st.cexInputs)
			}
			stepOpt.Encode.Shared = pool
		} else {
			stepOpt.Encode.Shared = nil
		}
		st.decide(useShared, depth)
		step.SetStr("engine", engineName(useShared))
		step.SetInt("predicted_depth", int64(depth))
		best, err := solveCandidates(isop, dual, cands, stepOpt, step, &st)
		if err != nil {
			step.SetStr("outcome", "error")
			step.End()
			srchDone()
			return res, err
		}
		if best != nil {
			incumbent = best
			ub = best.Size()
			step.SetStr("outcome", "sat")
			step.SetInt("size", int64(ub))
			prog.incumbent(incumbent, "sat")
			prog.bound(lb, ub, "sat")
		} else {
			lb = mp + 1
			step.SetStr("outcome", "unsat")
			prog.bound(lb, ub, "unsat")
		}
		prog.step(engineName(useShared), len(st.grids))
		step.End()
	}
	srchDone()
	res.FinalLB = lb
	res.Partial = lb < ub

	res.LMSolved = st.solved
	res.ClausesAdded = st.added
	res.ClausesRebuilt = st.rebuilt
	res.CegarIters = st.iters
	res.SharedReused = st.reused
	res.StampedClauses = st.stamped
	res.TransferredCEX = st.transferred
	res.GridsProbed = st.grids
	res.Engine = st.engineVerdict()
	res.PredictedDepth = st.firstDepth
	res.SharedSteps = st.sharedSteps
	res.FreshSteps = st.freshSteps
	res.CEXFiltered = st.filtered
	res.LearntsPruned = st.pruned
	res.Assignment = incumbent
	res.Grid = incumbent.Grid
	res.Size = incumbent.Size()
	res.MatchedLB = res.Size == res.LB
	res.Elapsed = time.Since(start)
	root.SetStr("grid", res.Grid.String())
	root.SetInt("size", int64(res.Size))
	root.SetInt("lm_solved", int64(res.LMSolved))
	root.SetInt("final_lb", int64(res.FinalLB))
	if res.Partial {
		root.SetBool("partial", true)
	}
	if res.Engine != "" {
		root.SetStr("engine", res.Engine)
		root.SetInt("predicted_depth", int64(res.PredictedDepth))
	}
	return res, nil
}

// lmStats accumulates per-LM-solve effort counters across the search:
// decided problems, clause volumes, and CEGAR iterations. It is threaded
// by pointer through the search helpers (single-goroutine each; the
// parallel candidate path aggregates after its WaitGroup).
type lmStats struct {
	solved      int
	added       int64
	rebuilt     int64
	iters       int64
	reused      int64
	stamped     int64
	transferred int64
	filtered    int64
	pruned      int64
	grids       []string
	gridSeen    map[string]bool
	// Engine policy trail: per-step decisions (sub-syntheses folded in
	// via noteResult) and the depth score of this synthesis' own first
	// step (depthSet guards it against DS sub-results arriving first).
	sharedSteps, freshSteps int
	firstDepth              int
	depthSet                bool
	// cexInputs is the deduplicated trail of target inputs where fresh
	// main-loop candidates mismatched (encode.Result.CEXInputs). If the
	// auto policy later opens a shared pool, these warm it so the pool
	// doesn't rediscover what fresh steps already proved. Only main-loop
	// solves feed it: DS sub-syntheses work on different sub-covers,
	// whose counterexamples say nothing about this target.
	cexInputs []uint64
	cexSeen   map[uint64]bool
}

// noteCEX folds fresh-engine counterexample inputs in, deduplicated.
func (st *lmStats) noteCEX(inputs []uint64) {
	for _, in := range inputs {
		if st.cexSeen[in] {
			continue
		}
		if st.cexSeen == nil {
			st.cexSeen = make(map[uint64]bool)
		}
		st.cexSeen[in] = true
		st.cexInputs = append(st.cexInputs, in)
	}
}

// decide records one dichotomic step's engine choice.
func (st *lmStats) decide(shared bool, depth int) {
	if !st.depthSet {
		st.firstDepth = depth
		st.depthSet = true
	}
	if shared {
		st.sharedSteps++
	} else {
		st.freshSteps++
	}
}

// engineVerdict summarizes the recorded decisions.
func (st *lmStats) engineVerdict() string {
	switch {
	case st.sharedSteps > 0 && st.freshSteps > 0:
		return "mixed"
	case st.sharedSteps > 0:
		return "shared"
	case st.freshSteps > 0:
		return "fresh"
	}
	return ""
}

// probe records one attempted lattice shape, deduplicated.
func (st *lmStats) probe(g lattice.Grid) {
	key := g.String()
	if st.gridSeen[key] {
		return
	}
	if st.gridSeen == nil {
		st.gridSeen = make(map[string]bool)
	}
	st.gridSeen[key] = true
	st.grids = append(st.grids, key)
}

// note folds one LM solve's counters in.
func (st *lmStats) note(r encode.Result) {
	if !r.Structural {
		st.solved++
		mLMSolved.Inc()
	}
	st.added += int64(r.AddedClauses)
	st.rebuilt += int64(r.RebuiltClauses)
	st.iters += int64(r.CegarIters)
	st.reused += int64(r.ReusedSolvers)
	st.stamped += int64(r.StampedClauses)
	st.transferred += int64(r.TransferredCEXClauses)
	st.filtered += int64(r.TransferFiltered)
	st.pruned += int64(r.PrunedLearnts)
}

// noteResult folds a sub-synthesis' aggregated counters in.
func (st *lmStats) noteResult(r Result) {
	st.solved += r.LMSolved
	st.added += r.ClausesAdded
	st.rebuilt += r.ClausesRebuilt
	st.iters += r.CegarIters
	st.reused += r.SharedReused
	st.stamped += r.StampedClauses
	st.transferred += r.TransferredCEX
	st.filtered += r.CEXFiltered
	st.pruned += r.LearntsPruned
	st.sharedSteps += r.SharedSteps
	st.freshSteps += r.FreshSteps
	for _, g := range r.GridsProbed {
		if !st.gridSeen[g] {
			if st.gridSeen == nil {
				st.gridSeen = make(map[string]bool)
			}
			st.gridSeen[g] = true
			st.grids = append(st.grids, g)
		}
	}
}

// solveCandidates decides the LM problem for each candidate, sequentially
// or with opt.Workers goroutines, and returns the best (smallest-area,
// then earliest) satisfiable assignment, folding solve effort into st.
// Candidate spans attach under the step span (nil when tracing is off).
func solveCandidates(isop, dual cube.Cover, cands []lattice.Grid, opt Options, step *obsv.Span, st *lmStats) (*lattice.Assignment, error) {
	eopt := opt.Encode
	eopt.Span = step
	if opt.Workers < 2 || len(cands) < 2 {
		for _, g := range cands {
			if opt.expired() {
				break
			}
			st.probe(g)
			r, err := encode.SolveLM(isop, dual, g, eopt)
			if err != nil {
				return nil, err
			}
			st.note(r)
			st.noteCEX(r.CEXInputs)
			if r.Status == sat.Sat {
				return r.Assignment, nil
			}
		}
		return nil, nil
	}

	results := make([]encode.Result, len(cands))
	errs := make([]error, len(cands))
	sem := make(chan struct{}, opt.Workers)
	var wg sync.WaitGroup
	for i, g := range cands {
		wg.Add(1)
		go func(i int, g lattice.Grid) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			results[i], errs[i] = encode.SolveLM(isop, dual, g, eopt)
		}(i, g)
	}
	wg.Wait()

	var best *lattice.Assignment
	for i, r := range results {
		if errs[i] != nil {
			return nil, errs[i]
		}
		st.probe(cands[i])
		st.note(r)
		st.noteCEX(r.CEXInputs)
		if r.Status == sat.Sat {
			if best == nil || r.Assignment.Size() < best.Size() {
				best = r.Assignment
			}
		}
	}
	return best, nil
}

// candidates returns the maximal lattice shapes of area at most size: one
// grid (m, size/m) per row count m, skipping grids whose area falls below
// the lower bound or above the cell limit, deduplicated and ordered
// nearest-to-square first (deterministic).
func candidates(size, lb, maxCells int) []lattice.Grid {
	if size > maxCells {
		size = maxCells
	}
	seen := make(map[lattice.Grid]bool)
	var gs []lattice.Grid
	for m := 1; m <= size; m++ {
		n := size / m
		if n < 1 {
			break
		}
		g := lattice.Grid{M: m, N: n}
		if g.Cells() < lb || seen[g] {
			continue
		}
		seen[g] = true
		gs = append(gs, g)
	}
	sort.Slice(gs, func(i, j int) bool {
		di := gs[i].M - gs[i].N
		if di < 0 {
			di = -di
		}
		dj := gs[j].M - gs[j].N
		if dj < 0 {
			dj = -dj
		}
		if di != dj {
			return di < dj
		}
		return gs[i].M > gs[j].M // prefer taller first among equals
	})
	return gs
}

// subOptions strips the recursive features for DS/MF sub-syntheses.
func subOptions(opt Options) Options {
	sub := opt
	sub.DisableDS = true
	sub.SkipMinimize = true
	sub.sub = true
	return sub
}

// dsBound implements the divide-and-synthesize upper bound (Section
// III-B): split the products into two balanced halves, synthesize each
// with JANUS, pack the two solutions side by side with one isolation
// column, and then iterate the row-reduction exploration.
func dsBound(isop, dual cube.Cover, opt Options, st *lmStats) *lattice.Assignment {
	g, h := partitionProducts(isop)
	if len(g.Cubes) == 0 || len(h.Cubes) == 0 {
		return nil
	}
	sub := subOptions(opt)
	parts := make([]*part, 2)
	for i, cov := range []cube.Cover{g, h} {
		covDual := minimize.Auto(cov.Dual())
		r, err := Synthesize(cov, sub)
		if err != nil || r.Assignment == nil {
			return nil
		}
		st.noteResult(r)
		parts[i] = &part{isop: cov, dual: covDual, sol: r.Assignment}
	}
	packed := packParts(parts)
	if packed == nil || !packed.Realizes(isop) {
		return nil
	}
	reduced := reduceRows(parts, sub, st)
	if reduced != nil && reduced.Size() < packed.Size() && reduced.Realizes(isop) {
		return reduced
	}
	return packed
}

// partitionProducts splits the ISOP products into two sub-covers with
// balanced product counts and literal counts (greedy largest-first).
func partitionProducts(isop cube.Cover) (g, h cube.Cover) {
	cubes := make([]cube.Cube, len(isop.Cubes))
	copy(cubes, isop.Cubes)
	sort.Slice(cubes, func(i, j int) bool {
		return cubes[j].NumLiterals() < cubes[i].NumLiterals()
	})
	g = cube.Zero(isop.N)
	h = cube.Zero(isop.N)
	gl, hl := 0, 0
	for _, c := range cubes {
		// Keep product counts within one of each other; break ties toward
		// the lighter literal load.
		switch {
		case len(g.Cubes) > len(h.Cubes):
			h.Cubes = append(h.Cubes, c)
			hl += c.NumLiterals()
		case len(h.Cubes) > len(g.Cubes):
			g.Cubes = append(g.Cubes, c)
			gl += c.NumLiterals()
		case gl <= hl:
			g.Cubes = append(g.Cubes, c)
			gl += c.NumLiterals()
		default:
			h.Cubes = append(h.Cubes, c)
			hl += c.NumLiterals()
		}
	}
	return g, h
}

// part is one sub-function with its current lattice solution.
type part struct {
	isop, dual cube.Cover
	sol        *lattice.Assignment
}

// packParts joins part solutions horizontally: one constant-0 isolation
// column between neighbours, shorter parts padded at the bottom with
// constant 1 (which preserves each region's function because the regions
// are flanked by the zero columns or the lattice boundary).
func packParts(parts []*part) *lattice.Assignment {
	if len(parts) == 0 {
		return nil
	}
	rows, cols := 0, 0
	for i, p := range parts {
		if p.sol.Grid.M > rows {
			rows = p.sol.Grid.M
		}
		cols += p.sol.Grid.N
		if i > 0 {
			cols++
		}
	}
	a := lattice.NewAssignment(lattice.Grid{M: rows, N: cols})
	c0 := 0
	for i, p := range parts {
		if i > 0 {
			c0++ // isolation column stays Const0
		}
		for r := 0; r < rows; r++ {
			for c := 0; c < p.sol.Grid.N; c++ {
				if r < p.sol.Grid.M {
					a.Set(r, c0+c, p.sol.At(r, c))
				} else {
					a.Set(r, c0+c, lattice.Entry{Kind: lattice.Const1})
				}
			}
		}
		c0 += p.sol.Grid.N
	}
	return a
}

// packedSize returns the size of the lattice packParts would build.
func packedSize(parts []*part) (rows, cols int) {
	for i, p := range parts {
		if p.sol.Grid.M > rows {
			rows = p.sol.Grid.M
		}
		cols += p.sol.Grid.N
		if i > 0 {
			cols++
		}
	}
	return rows, cols
}

// fixedRowSearch looks for the smallest column count in [lo, hi] such
// that the target fits a rows×k lattice; scanDown controls the paper's
// two scanning directions. It returns nil when nothing in range fits.
func fixedRowSearch(p *part, rows, lo, hi int, opt Options, st *lmStats) *lattice.Assignment {
	if lo < 1 {
		lo = 1
	}
	var best *lattice.Assignment
	for k := lo; k <= hi; k++ {
		if rows*k > opt.maxCells() || opt.expired() {
			break
		}
		st.probe(lattice.Grid{M: rows, N: k})
		r, err := encode.SolveLM(p.isop, p.dual, lattice.Grid{M: rows, N: k}, opt.Encode)
		if err != nil {
			return best
		}
		st.note(r)
		if r.Status == sat.Sat {
			best = r.Assignment
			break
		}
	}
	return best
}

// reduceRows implements step 3 of the DS method (shared with JANUS-MF
// part 2): repeatedly try to lower the overall row count br by one,
// re-synthesizing tall parts on (br−1)×k lattices (growing k) and letting
// shorter parts shrink their widths at the new height, accepting the new
// packing when it reduces the total size. Returns the best packing found,
// or nil when no improvement was possible.
func reduceRows(parts []*part, opt Options, st *lmStats) *lattice.Assignment {
	cur := make([]*part, len(parts))
	copy(cur, parts)
	bcRows, bcCols := packedSize(cur)
	bc := bcRows * bcCols
	var best *lattice.Assignment

	for br := bcRows; br > 3; br-- {
		next := make([]*part, len(cur))
		ok := true
		totalCols := len(cur) - 1
		for i, p := range cur {
			np := &part{isop: p.isop, dual: p.dual, sol: p.sol}
			m, n := p.sol.Grid.M, p.sol.Grid.N
			switch {
			case m >= br:
				// Must fit into br-1 rows; grow columns while the total
				// stays below the incumbent cost.
				budgetCols := bc/(br-1) - (totalCols + colsExcept(cur, i))
				if budgetCols < n {
					budgetCols = n
				}
				sol := fixedRowSearch(np, br-1, n, budgetCols, opt, st)
				if sol == nil {
					ok = false
				} else {
					np.sol = sol
				}
			case m > 1 && m < br-1 && n > 1:
				// Extra height available: try to shrink the width.
				if sol := trimCols(np, br-1, n-1, opt, st); sol != nil {
					np.sol = sol
				}
			}
			if !ok {
				break
			}
			next[i] = np
		}
		if !ok {
			break
		}
		nr, nc := packedSize(next)
		if nr*nc < bc {
			cur = next
			bc = nr * nc
			best = packParts(cur)
		} else {
			cur = next // keep trying shorter stacks anyway
		}
	}
	return best
}

func colsExcept(parts []*part, skip int) int {
	t := 0
	for i, p := range parts {
		if i != skip {
			t += p.sol.Grid.N
		}
	}
	return t
}

// trimCols finds the narrowest rows×k lattice with k ≤ hi that still
// realizes the part, scanning downward as the paper describes.
func trimCols(p *part, rows, hi int, opt Options, st *lmStats) *lattice.Assignment {
	var best *lattice.Assignment
	for k := hi; k >= 1; k-- {
		if rows*k > opt.maxCells() {
			continue
		}
		if opt.expired() {
			break
		}
		st.probe(lattice.Grid{M: rows, N: k})
		r, err := encode.SolveLM(p.isop, p.dual, lattice.Grid{M: rows, N: k}, opt.Encode)
		if err != nil {
			return best
		}
		st.note(r)
		if r.Status != sat.Sat {
			break
		}
		best = r.Assignment
	}
	return best
}
