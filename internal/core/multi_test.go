package core

import (
	"testing"

	"github.com/lattice-tools/janus/internal/cube"
)

func threeOutputs() []cube.Cover {
	// A small multi-output block: three related functions on 4 inputs.
	return []cube.Cover{
		cube.NewCover(4,
			cube.FromLiterals([]int{0, 1}, nil),
			cube.FromLiterals([]int{2, 3}, nil)),
		cube.NewCover(4,
			cube.FromLiterals([]int{0}, []int{3}),
			cube.FromLiterals([]int{2}, []int{1})),
		cube.NewCover(4,
			cube.FromLiterals([]int{1, 2, 3}, nil),
			cube.FromLiterals(nil, []int{0, 1})),
	}
}

func TestStraightForwardMulti(t *testing.T) {
	fns := threeOutputs()
	mr, err := SynthesizeMulti(fns, Options{}, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := mr.Lattice.Verify(); err != nil {
		t.Fatal(err)
	}
	if len(mr.Lattice.Regions) != 3 {
		t.Fatalf("regions = %d", len(mr.Lattice.Regions))
	}
	// Width = sum of part widths + separators.
	want := 0
	for i, p := range mr.Parts {
		want += p.Grid.N
		if i > 0 {
			want++
		}
	}
	if mr.Lattice.Cols() != want {
		t.Fatalf("cols = %d, want %d", mr.Lattice.Cols(), want)
	}
}

func TestJanusMFNotWorse(t *testing.T) {
	fns := threeOutputs()
	sf, err := SynthesizeMulti(fns, Options{}, false)
	if err != nil {
		t.Fatal(err)
	}
	mf, err := SynthesizeMulti(fns, Options{}, true)
	if err != nil {
		t.Fatal(err)
	}
	if mf.Lattice.Size() > sf.Lattice.Size() {
		t.Fatalf("JANUS-MF (%d) worse than straight-forward (%d)",
			mf.Lattice.Size(), sf.Lattice.Size())
	}
	if err := mf.Lattice.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestMultiTruthTables(t *testing.T) {
	fns := threeOutputs()
	mr, err := SynthesizeMulti(fns, Options{}, false)
	if err != nil {
		t.Fatal(err)
	}
	ts := mr.Lattice.TruthTables()
	if len(ts) != 3 {
		t.Fatal("missing tables")
	}
	for i, f := range mr.Lattice.Targets {
		if !ts[i].EquivCover(f) {
			t.Fatalf("region %d table mismatch", i)
		}
	}
}

func TestMultiSingleFunction(t *testing.T) {
	f := cube.NewCover(3, cube.FromLiterals([]int{0, 1, 2}, nil))
	mr, err := SynthesizeMulti([]cube.Cover{f}, Options{}, true)
	if err != nil {
		t.Fatal(err)
	}
	if mr.Lattice.Size() != mr.Parts[0].Size {
		t.Fatalf("single-function multi lattice should match the part: %d vs %d",
			mr.Lattice.Size(), mr.Parts[0].Size)
	}
}

func TestMultiEmptyInput(t *testing.T) {
	if _, err := SynthesizeMulti(nil, Options{}, false); err == nil {
		t.Fatal("empty input must error")
	}
}

func TestMinimizeOutputs(t *testing.T) {
	raw := []cube.Cover{
		cube.NewCover(2,
			cube.FromLiterals([]int{0, 1}, nil),
			cube.FromLiterals([]int{0}, []int{1})),
	}
	min := MinimizeOutputs(raw)
	if len(min[0].Cubes) != 1 {
		t.Fatalf("minimization failed: %v", min[0])
	}
}

// TestMultiReduceBudget: MFReduceBudget caps the LM solves the shared
// row-reduction phase may spend. The budgeted run must verify, must not
// spend more reduce-phase solves than the cap allows per row step, and
// a batch-stance run (DS off + small budget) must stay within the
// unbudgeted run's solve count — the property the batch endpoint's
// "fewer solves than independent submissions" win rests on.
func TestMultiReduceBudget(t *testing.T) {
	fns := threeOutputs()
	free, err := SynthesizeMulti(fns, Options{DisableDS: true}, true)
	if err != nil {
		t.Fatal(err)
	}
	capped, err := SynthesizeMulti(fns, Options{DisableDS: true, MFReduceBudget: 1}, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := capped.Lattice.Verify(); err != nil {
		t.Fatal(err)
	}
	if capped.LMSolved > free.LMSolved {
		t.Fatalf("budgeted run solved %d > unbudgeted %d", capped.LMSolved, free.LMSolved)
	}
	// The per-output searches are identical; the cap bites only in the
	// reduction, which may spend at most one solve per attempted row
	// step before the overBudget check stops it.
	perOutput := 0
	for _, p := range capped.Parts {
		perOutput += p.LMSolved
	}
	if reduceSpent := capped.LMSolved - perOutput; reduceSpent > len(fns) {
		t.Fatalf("reduce phase spent %d solves under a budget of 1", reduceSpent)
	}
}
