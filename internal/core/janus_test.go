package core

import (
	"math/rand"
	"testing"
	"time"

	"github.com/lattice-tools/janus/internal/cube"
	"github.com/lattice-tools/janus/internal/sat"
)

func TestSynthesizeFig1(t *testing.T) {
	// f = abcd + a'b'c'd': the paper reports the minimum size 4×2 = 8.
	f := cube.NewCover(4,
		cube.FromLiterals([]int{0, 1, 2, 3}, nil),
		cube.FromLiterals(nil, []int{0, 1, 2, 3}))
	r, err := Synthesize(f, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Size != 8 {
		t.Fatalf("size = %d (%v), want 8", r.Size, r.Grid)
	}
	if !r.Assignment.Realizes(r.ISOP) {
		t.Fatal("result does not realize target")
	}
	if r.LB > r.Size || r.Size > r.NUB {
		t.Fatalf("bound sandwich violated: lb=%d size=%d nub=%d", r.LB, r.Size, r.NUB)
	}
}

func TestSynthesizeFig4(t *testing.T) {
	// f = cd + c'd' + abe + a'b'e': the paper's minimum is 3×4 = 12.
	f := cube.NewCover(5,
		cube.FromLiterals([]int{2, 3}, nil),
		cube.FromLiterals(nil, []int{2, 3}),
		cube.FromLiterals([]int{0, 1, 4}, nil),
		cube.FromLiterals(nil, []int{0, 1, 4}))
	r, err := Synthesize(f, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Size != 12 {
		t.Fatalf("size = %d (%v), want 12 (paper's 3×4 minimum)", r.Size, r.Grid)
	}
	if r.LB != 12 {
		t.Fatalf("lb = %d, want 12", r.LB)
	}
	if !r.MatchedLB {
		t.Fatal("solution at the lower bound must be flagged MatchedLB")
	}
	if r.NUB > 15 {
		t.Fatalf("nub = %d, want ≤ 15 (paper's initial upper bound)", r.NUB)
	}
}

func TestSynthesizeConstants(t *testing.T) {
	for _, f := range []cube.Cover{cube.Zero(3), cube.One(3)} {
		r, err := Synthesize(f, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if r.Size != 1 {
			t.Fatalf("constant should fit one switch, got %d", r.Size)
		}
		if !r.Assignment.Realizes(r.ISOP) {
			t.Fatal("constant mapping wrong")
		}
	}
}

func TestSynthesizeSingleLiteral(t *testing.T) {
	f := cube.NewCover(2, cube.FromLiterals(nil, []int{1}))
	r, err := Synthesize(f, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Size != 1 {
		t.Fatalf("size = %d, want 1", r.Size)
	}
}

func TestSynthesizeMajority(t *testing.T) {
	// MAJ3 = ab + ac + bc. A known small lattice exists (Altun & Riedel use
	// MAJ as a running example); just require verification and tight bounds.
	f := cube.NewCover(3,
		cube.FromLiterals([]int{0, 1}, nil),
		cube.FromLiterals([]int{0, 2}, nil),
		cube.FromLiterals([]int{1, 2}, nil))
	r, err := Synthesize(f, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Assignment.Realizes(r.ISOP) {
		t.Fatal("MAJ3 result wrong")
	}
	if r.Size > 6 {
		t.Fatalf("MAJ3 size = %d, expected ≤ 6 (2×3 known)", r.Size)
	}
}

func TestCandidates(t *testing.T) {
	gs := candidates(12, 1, 64)
	if len(gs) == 0 {
		t.Fatal("no candidates")
	}
	// Nearest-to-square first, and every candidate maximal within area 12.
	if gs[0].M*gs[0].N != 12 || (gs[0].M != 4 && gs[0].M != 3) {
		t.Fatalf("first candidate should be 3x4 or 4x3, got %v", gs[0])
	}
	for _, g := range gs {
		if g.Cells() > 12 {
			t.Fatalf("candidate %v exceeds area 12", g)
		}
		if g.M*(g.N+1) <= 12 {
			t.Fatalf("candidate %v is not column-maximal", g)
		}
	}
	// The lower bound filters small areas.
	for _, g := range candidates(12, 10, 64) {
		if g.Cells() < 10 {
			t.Fatalf("candidate %v below lb", g)
		}
	}
	// Oversize requests clamp to the cell limit.
	for _, g := range candidates(100, 1, 64) {
		if g.Cells() > 64 {
			t.Fatalf("candidate %v exceeds cell cap", g)
		}
	}
}

func TestPartitionProducts(t *testing.T) {
	f := cube.NewCover(6,
		cube.FromLiterals([]int{0, 1, 2}, nil),
		cube.FromLiterals([]int{3}, nil),
		cube.FromLiterals([]int{4, 5}, nil),
		cube.FromLiterals(nil, []int{0, 3}))
	g, h := partitionProducts(f)
	if len(g.Cubes)+len(h.Cubes) != 4 {
		t.Fatal("products lost in partition")
	}
	if d := len(g.Cubes) - len(h.Cubes); d < -1 || d > 1 {
		t.Fatalf("unbalanced partition: %d vs %d", len(g.Cubes), len(h.Cubes))
	}
	if !g.Or(h).Equiv(f) {
		t.Fatal("partition changed the function")
	}
}

func TestPackParts(t *testing.T) {
	// Pack two single-column parts (a·b and c) and check the function.
	f1 := cube.NewCover(3, cube.FromLiterals([]int{0, 1}, nil))
	f2 := cube.NewCover(3, cube.FromLiterals([]int{2}, nil))
	r1, err := Synthesize(f1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Synthesize(f2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	packed := packParts([]*part{
		{isop: r1.ISOP, dual: r1.DualISOP, sol: r1.Assignment},
		{isop: r2.ISOP, dual: r2.DualISOP, sol: r2.Assignment},
	})
	if !packed.Realizes(f1.Or(f2)) {
		t.Fatalf("packed lattice wrong:\n%s", packed)
	}
}

func TestSynthesizeRandomVerified(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 10; trial++ {
		f := cube.Zero(4)
		for i, k := 0, 2+rng.Intn(2); i < k; i++ {
			var c cube.Cube
			for v := 0; v < 4; v++ {
				switch rng.Intn(3) {
				case 0:
					c = c.WithPos(v)
				case 1:
					c = c.WithNeg(v)
				}
			}
			if c.NumLiterals() > 0 {
				f.Cubes = append(f.Cubes, c)
			}
		}
		if f.IsZero() {
			continue
		}
		r, err := Synthesize(f, Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !r.Assignment.Realizes(r.ISOP) {
			t.Fatalf("trial %d: unverified result", trial)
		}
		if r.Size < r.LB || r.Size > r.NUB {
			t.Fatalf("trial %d: size %d outside [%d, %d]", trial, r.Size, r.LB, r.NUB)
		}
		if !r.ISOP.Equiv(f) {
			t.Fatalf("trial %d: ISOP drifted from input", trial)
		}
	}
}

func TestSynthesizeWithSATBudget(t *testing.T) {
	// A tiny conflict budget must still return a verified (bound) result.
	f := cube.NewCover(5,
		cube.FromLiterals([]int{2, 3}, nil),
		cube.FromLiterals(nil, []int{2, 3}),
		cube.FromLiterals([]int{0, 1, 4}, nil),
		cube.FromLiterals(nil, []int{0, 1, 4}))
	opt := Options{}
	opt.Encode.Limits = sat.Limits{MaxConflicts: 1}
	r, err := Synthesize(f, opt)
	if err != nil {
		t.Fatal(err)
	}
	if r.Assignment == nil || !r.Assignment.Realizes(r.ISOP) {
		t.Fatal("budgeted run must still return the bound construction")
	}
	if r.Size > r.NUB {
		t.Fatal("budgeted result exceeds initial upper bound")
	}
}

func TestSynthesizeElapsedAndCounters(t *testing.T) {
	f := cube.NewCover(3, cube.FromLiterals([]int{0, 1}, nil), cube.FromLiterals([]int{2}, nil))
	r, err := Synthesize(f, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Elapsed <= 0 || r.Elapsed > time.Minute {
		t.Fatalf("elapsed looks wrong: %v", r.Elapsed)
	}
}

func TestParallelSearchDeterministic(t *testing.T) {
	f := cube.NewCover(5,
		cube.FromLiterals([]int{2, 3}, nil),
		cube.FromLiterals(nil, []int{2, 3}),
		cube.FromLiterals([]int{0, 1, 4}, nil),
		cube.FromLiterals(nil, []int{0, 1, 4}))
	seq, err := Synthesize(f, Options{})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Synthesize(f, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if seq.Size != par.Size {
		t.Fatalf("parallel search changed the result: %d vs %d", par.Size, seq.Size)
	}
	if !par.Assignment.Realizes(par.ISOP) {
		t.Fatal("parallel result unverified")
	}
}

func TestAblationNoImprovedBounds(t *testing.T) {
	f := cube.NewCover(5,
		cube.FromLiterals([]int{2, 3}, nil),
		cube.FromLiterals(nil, []int{2, 3}),
		cube.FromLiterals([]int{0, 1, 4}, nil),
		cube.FromLiterals(nil, []int{0, 1, 4}))
	plain, err := Synthesize(f, Options{DisableImprovedBounds: true, DisableDS: true})
	if err != nil {
		t.Fatal(err)
	}
	improved, err := Synthesize(f, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if plain.NUB < improved.NUB {
		t.Fatalf("improved bounds should not be worse: oub-run nub=%d improved nub=%d",
			plain.NUB, improved.NUB)
	}
	// Both searches still land on the same minimum for this easy instance.
	if plain.Size != improved.Size {
		t.Fatalf("searches disagree: %d vs %d", plain.Size, improved.Size)
	}
}

func TestBudgetRespected(t *testing.T) {
	// A hard-ish instance with a tiny wall-clock budget must return fast
	// with a verified (bound-level) result.
	f := cube.NewCover(5,
		cube.FromLiterals([]int{2, 3}, nil),
		cube.FromLiterals(nil, []int{2, 3}),
		cube.FromLiterals([]int{0, 1, 4}, nil),
		cube.FromLiterals(nil, []int{0, 1, 4}))
	start := time.Now()
	r, err := Synthesize(f, Options{Budget: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 20*time.Second {
		t.Fatalf("budget ignored: %v", elapsed)
	}
	if r.Assignment == nil || !r.Assignment.Realizes(r.ISOP) {
		t.Fatal("budgeted run must still return a verified incumbent")
	}
}

func TestCegarThroughCore(t *testing.T) {
	f := cube.NewCover(4,
		cube.FromLiterals([]int{0, 1, 2, 3}, nil),
		cube.FromLiterals(nil, []int{0, 1, 2, 3}))
	opt := Options{}
	opt.Encode.CEGAR = true
	r, err := Synthesize(f, opt)
	if err != nil {
		t.Fatal(err)
	}
	if r.Size != 8 {
		t.Fatalf("CEGAR-backed synthesis size = %d, want 8", r.Size)
	}
}
