package core

import (
	"math/rand"
	"testing"

	"github.com/lattice-tools/janus/internal/lattice"
	"github.com/lattice-tools/janus/internal/minimize"
	"github.com/lattice-tools/janus/internal/truth"

	"github.com/lattice-tools/janus/internal/cube"
)

// oracleMinSize exhaustively searches every assignment of the target's
// literals (plus constants) over every lattice of increasing size and
// returns the true minimum switch count. Only feasible for tiny
// functions and lattices; serves as the ground-truth optimality oracle.
func oracleMinSize(t *testing.T, f cube.Cover, maxSize int) int {
	tab := truth.FromCover(f)
	// TL set: literals of f plus constants (the same alphabet JANUS uses).
	var tl []lattice.Entry
	tl = append(tl, lattice.Entry{Kind: lattice.Const0}, lattice.Entry{Kind: lattice.Const1})
	pos, neg := f.LiteralSet()
	for v := 0; v < f.N; v++ {
		if pos&(1<<uint(v)) != 0 {
			tl = append(tl, lattice.Entry{Kind: lattice.PosVar, Var: v})
		}
		if neg&(1<<uint(v)) != 0 {
			tl = append(tl, lattice.Entry{Kind: lattice.NegVar, Var: v})
		}
	}
	for size := 1; size <= maxSize; size++ {
		for m := 1; m <= size; m++ {
			if size%m != 0 {
				continue
			}
			g := lattice.Grid{M: m, N: size / m}
			if oracleFits(g, tl, tab) {
				return size
			}
		}
	}
	t.Fatalf("oracle found no lattice up to size %d for %v", maxSize, f)
	return -1
}

func oracleFits(g lattice.Grid, tl []lattice.Entry, tab *truth.Table) bool {
	a := lattice.NewAssignment(g)
	cells := g.Cells()
	var rec func(cell int) bool
	rec = func(cell int) bool {
		if cell == cells {
			return a.Table(tab.N).Equal(tab)
		}
		for _, e := range tl {
			a.Entries[cell] = e
			if rec(cell + 1) {
				return true
			}
		}
		return false
	}
	return rec(0)
}

// TestJanusMatchesOracleTiny: on exhaustive-search-sized functions JANUS
// must find the true minimum lattice (its approximations never bite at
// this scale thanks to the Auto formulation fallback).
func TestJanusMatchesOracleTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("oracle sweep in short mode")
	}
	rng := rand.New(rand.NewSource(101))
	checked := 0
	for trial := 0; trial < 30 && checked < 8; trial++ {
		raw := cube.Zero(3)
		for i := 0; i < 2; i++ {
			var c cube.Cube
			for v := 0; v < 3; v++ {
				switch rng.Intn(3) {
				case 0:
					c = c.WithPos(v)
				case 1:
					c = c.WithNeg(v)
				}
			}
			if c.NumLiterals() > 0 {
				raw.Cubes = append(raw.Cubes, c)
			}
		}
		f := minimize.Auto(raw)
		if f.IsZero() || f.IsOne() || f.NumLiterals() > 5 {
			continue // keep the oracle enumeration small
		}
		checked++
		want := oracleMinSize(t, f, 6)
		r, err := Synthesize(f, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if r.Size != want {
			t.Fatalf("JANUS %d vs oracle %d for %v (grid %v)", r.Size, want, f, r.Grid)
		}
	}
	if checked == 0 {
		t.Fatal("no functions exercised")
	}
}
