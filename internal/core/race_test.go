package core

import (
	"sync"
	"testing"

	"github.com/lattice-tools/janus/internal/benchdata"
	"github.com/lattice-tools/janus/internal/encode"
	"github.com/lattice-tools/janus/internal/memo"
)

// TestSynthesizeConcurrentMemo runs two full Table II syntheses in
// parallel, each itself fanning out over Workers goroutines, so the
// process-wide memo caches see genuinely concurrent access from both
// pipelines. Run under -race this is the regression test for the shared
// path/table/cover caches; in either mode it asserts the caches are
// actually exercised (hits observed) and the incremental counters are
// threaded all the way up to core.Result.
func TestSynthesizeConcurrentMemo(t *testing.T) {
	memo.Reset()
	// Both instances need real LM solves (bounds alone don't close them),
	// so the CEGAR engine and the shared caches are genuinely exercised.
	names := []string{"misex1_04", "mp2d_06"}
	opt := Options{Workers: 4, Encode: encode.Options{CEGAR: true}}

	var wg sync.WaitGroup
	results := make([]Result, len(names))
	errs := make([]error, len(names))
	for i, name := range names {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			f, ok := benchdata.Lookup(name).Function()
			if !ok {
				return
			}
			results[i], errs[i] = Synthesize(f, opt)
		}(i, name)
	}
	wg.Wait()

	for i, name := range names {
		if errs[i] != nil {
			t.Fatalf("%s: %v", name, errs[i])
		}
		r := results[i]
		if r.Assignment == nil {
			t.Fatalf("%s: no solution", name)
		}
		if !r.Assignment.Realizes(r.ISOP) {
			t.Fatalf("%s: unverified solution", name)
		}
		if r.ClausesAdded <= 0 || r.ClausesRebuilt < r.ClausesAdded {
			t.Fatalf("%s: counters not threaded: added=%d rebuilt=%d",
				name, r.ClausesAdded, r.ClausesRebuilt)
		}
	}

	s := memo.Snapshot()
	if s.Hits() == 0 {
		t.Fatalf("concurrent synthesis produced no memo hits: %+v", s)
	}
	if s.PathHits == 0 {
		t.Fatalf("expected shared path-enumeration hits, got %+v", s)
	}
}
