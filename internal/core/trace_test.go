package core

import (
	"bytes"
	"context"
	"testing"

	"github.com/lattice-tools/janus/internal/cube"
	"github.com/lattice-tools/janus/internal/obsv"
)

// fig1 is the paper's running example f = abcd + a'b'c'd' (minimum 4×2).
func fig1() cube.Cover {
	return cube.NewCover(4,
		cube.FromLiterals([]int{0, 1, 2, 3}, nil),
		cube.FromLiterals(nil, []int{0, 1, 2, 3}))
}

// TestTraceCegarHierarchy pins the span taxonomy: one traced Synthesize
// with the CEGAR engine must emit the documented hierarchy
// Synthesize → Search → DichotomicStep → Candidate → CegarIter → SatSolve
// with the phase spans under the root, and the solver attributes on the
// SatSolve spans must be populated.
func TestTraceCegarHierarchy(t *testing.T) {
	var buf bytes.Buffer
	opt := Options{Tracer: obsv.NewTracer(&buf)}
	opt.Encode.CEGAR = true
	if _, err := Synthesize(fig1(), opt); err != nil {
		t.Fatal(err)
	}

	recs, err := obsv.ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := obsv.ValidateRecords(recs); err != nil {
		t.Fatal(err)
	}

	byID := map[uint64]obsv.Record{}
	count := map[string]int{}
	for _, r := range recs {
		byID[r.ID] = r
		count[r.Span]++
	}
	for _, want := range []string{
		"Synthesize", "Minimize", "Bounds", "Search",
		"DichotomicStep", "Candidate", "CegarIter", "SatSolve",
	} {
		if count[want] == 0 {
			t.Errorf("trace has no %s span (got %v)", want, count)
		}
	}
	if count["Synthesize"] != 1 {
		t.Fatalf("want exactly one Synthesize root, got %d", count["Synthesize"])
	}

	parentName := func(r obsv.Record) string {
		p, ok := byID[r.Parent]
		if !ok {
			return ""
		}
		return p.Span
	}
	wantParent := map[string]string{
		"Minimize":       "Synthesize",
		"Bounds":         "Synthesize",
		"DSBound":        "Synthesize",
		"Search":         "Synthesize",
		"DichotomicStep": "Search",
		"CegarIter":      "Candidate",
		"SatSolve":       "CegarIter",
	}
	sawConflicts := false
	for _, r := range recs {
		if want, ok := wantParent[r.Span]; ok && parentName(r) != want {
			t.Errorf("%s span nests under %q, want %q", r.Span, parentName(r), want)
		}
		if r.Span == "Synthesize" && r.Parent != 0 {
			t.Error("Synthesize span is not a root")
		}
		if r.Span == "Candidate" {
			// Candidates hang off the search step here (DS can also parent
			// them in other configurations, but fig1 has too few products).
			if got := parentName(r); got != "DichotomicStep" {
				t.Errorf("Candidate nests under %q, want DichotomicStep", got)
			}
			if r.Attrs["grid"] == nil || r.Attrs["orient"] == nil || r.Attrs["status"] == nil {
				t.Errorf("Candidate span missing grid/orient/status attrs: %v", r.Attrs)
			}
		}
		if r.Span == "SatSolve" {
			if c, ok := r.Attrs["propagations"].(float64); ok && c > 0 {
				sawConflicts = true
			}
		}
	}
	if !sawConflicts {
		t.Error("no SatSolve span reported solver work")
	}
}

// TestTraceMetricsMonotoneCegar checks that the successive SatSolve spans
// of one CEGAR candidate report monotone lifetime solver totals, and that
// the registry's CEGAR counters advance across a synthesis.
func TestTraceMetricsMonotoneCegar(t *testing.T) {
	before := obsv.Default.Snapshot()

	var buf bytes.Buffer
	opt := Options{Tracer: obsv.NewTracer(&buf)}
	opt.Encode.CEGAR = true
	if _, err := Synthesize(fig1(), opt); err != nil {
		t.Fatal(err)
	}
	after := obsv.Default.Snapshot()

	for _, name := range []string{
		"janus_core_syntheses_total",
		"janus_core_dichotomic_steps_total",
		"janus_encode_candidates_total",
		"janus_encode_cegar_iters_total",
		"janus_encode_clauses_added_total",
		"janus_sat_solves_total",
		"janus_sat_propagations_total",
	} {
		if after.Get(name) <= before.Get(name) {
			t.Errorf("%s did not advance: %d -> %d", name, before.Get(name), after.Get(name))
		}
	}
	for name, v := range after.Counters {
		if v < before.Counters[name] {
			t.Errorf("counter %s went backwards: %d -> %d", name, before.Counters[name], v)
		}
	}

	recs, err := obsv.ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Per-candidate lifetime totals (conflicts_total/propagations_total on
	// SatSolve spans) must be non-decreasing in span-id order, since ids
	// grow with start time and each candidate owns one persistent solver.
	byID := map[uint64]obsv.Record{}
	for _, r := range recs {
		byID[r.ID] = r
	}
	candOf := func(r obsv.Record) uint64 {
		for p := r.Parent; p != 0; p = byID[p].Parent {
			if byID[p].Span == "Candidate" {
				return p
			}
		}
		return 0
	}
	last := map[uint64]float64{}
	solves := 0
	for _, r := range recs { // emission order = End order; ids order starts
		if r.Span != "SatSolve" {
			continue
		}
		cand := candOf(r)
		if cand == 0 {
			t.Fatalf("SatSolve span %d has no Candidate ancestor", r.ID)
		}
		total, _ := r.Attrs["propagations_total"].(float64)
		if total < last[cand] {
			t.Errorf("candidate %d propagations_total went backwards: %v -> %v",
				cand, last[cand], total)
		}
		last[cand] = total
		solves++
	}
	if solves == 0 {
		t.Fatal("trace has no SatSolve spans")
	}
}

// TestTraceConcurrentWorkers runs a traced synthesis with parallel
// candidate workers; the trace must still be schema-valid (unique ids,
// resolvable parents) even though spans end concurrently. Run under -race
// this also exercises the tracer's emit path for data races.
func TestTraceConcurrentWorkers(t *testing.T) {
	var buf bytes.Buffer
	opt := Options{Tracer: obsv.NewTracer(&buf), Workers: 4}
	opt.Encode.CEGAR = true
	if _, err := Synthesize(fig1(), opt); err != nil {
		t.Fatal(err)
	}
	recs, err := obsv.ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := obsv.ValidateRecords(recs); err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, r := range recs {
		if r.Span == "Candidate" {
			n++
		}
	}
	if n < 2 {
		t.Fatalf("expected multiple Candidate spans from the parallel search, got %d", n)
	}
}

// TestTraceCtxCarried: a tracer, parent span, and request id attached to
// Options.Ctx must drive the same span tree as Options.Tracer, nested
// under the ctx span, with the request id stamped on the Synthesize root
// — the carrier the service layer uses for per-job traces.
func TestTraceCtxCarried(t *testing.T) {
	buf := obsv.NewTraceBuffer(0, 0)
	tracer := obsv.NewTracer(buf)
	job := obsv.Start(tracer, nil, "Job")
	ctx := obsv.ContextWithRequestID(
		obsv.ContextWithSpan(
			obsv.ContextWithTracer(context.Background(), tracer), job), "r-ctx-1")

	opt := Options{Ctx: ctx}
	opt.Encode.CEGAR = true
	res, err := Synthesize(fig1(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Size != 8 {
		t.Fatalf("size = %d, want 8", res.Size)
	}
	if len(res.GridsProbed) == 0 {
		t.Fatal("no grids probed recorded")
	}
	job.End()

	recs, err := obsv.ReadTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if err := obsv.ValidateRecords(recs); err != nil {
		t.Fatal(err)
	}
	var jobID uint64
	for _, r := range recs {
		if r.Span == "Job" {
			jobID = r.ID
		}
	}
	if jobID == 0 {
		t.Fatal("no Job root span")
	}
	found := false
	for _, r := range recs {
		if r.Span != "Synthesize" {
			continue
		}
		found = true
		if r.Parent != jobID {
			t.Fatalf("Synthesize parent = %d, want the Job span %d", r.Parent, jobID)
		}
		if r.Attrs["request_id"] != "r-ctx-1" {
			t.Fatalf("request_id attr = %v, want r-ctx-1", r.Attrs["request_id"])
		}
	}
	if !found {
		t.Fatal("no Synthesize span under the ctx-carried tracer")
	}
}
