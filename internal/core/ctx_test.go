package core

import (
	"context"
	"testing"
	"time"

	"github.com/lattice-tools/janus/internal/cube"
)

func fig1Cover() cube.Cover {
	return cube.NewCover(4,
		cube.FromLiterals([]int{0, 1, 2, 3}, nil),
		cube.FromLiterals(nil, []int{0, 1, 2, 3}))
}

// TestSynthesizeCtxCanceled: a pre-cancelled context must stop the
// search immediately — like an expired Budget, the best bound-derived
// incumbent comes back without an error — and it must do so promptly.
func TestSynthesizeCtxCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	r, err := Synthesize(fig1Cover(), Options{Ctx: ctx})
	if err != nil {
		t.Fatal(err)
	}
	if e := time.Since(start); e > 5*time.Second {
		t.Fatalf("cancelled synthesis took %v", e)
	}
	// The dichotomic search never ran, so the incumbent is the initial
	// upper bound construction, still a verified implementation.
	if r.Assignment == nil || !r.Assignment.Realizes(r.ISOP) {
		t.Fatal("cancelled synthesis must still return the verified incumbent")
	}
	if r.LMSolved != 0 {
		t.Fatalf("LMSolved = %d, want 0 under a pre-cancelled context", r.LMSolved)
	}
}

// TestSynthesizeCtxMidway cancels while the synthesis runs; the call
// must return well before the work would otherwise take, with whatever
// incumbent was verified by then.
func TestSynthesizeCtxMidway(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	r, err := Synthesize(fig1Cover(), Options{Ctx: ctx})
	if err != nil {
		t.Fatal(err)
	}
	if r.Assignment == nil || !r.Assignment.Realizes(r.ISOP) {
		t.Fatal("mid-run cancellation must still return a verified incumbent")
	}
}

// TestSynthesizePortfolio: the racing engine must reproduce the known
// Fig. 1 minimum through the full dichotomic search.
func TestSynthesizePortfolio(t *testing.T) {
	r, err := Synthesize(fig1Cover(), Options{Portfolio: true})
	if err != nil {
		t.Fatal(err)
	}
	if r.Size != 8 {
		t.Fatalf("portfolio size = %d (%v), want 8", r.Size, r.Grid)
	}
	if !r.Assignment.Realizes(r.ISOP) {
		t.Fatal("portfolio result does not realize target")
	}
}
