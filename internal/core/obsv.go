package core

import (
	"time"

	"github.com/lattice-tools/janus/internal/obsv"
)

// Registry handles for the search-level pipeline (janus_core_*). The
// phase counters accumulate wall-clock nanoseconds per synthesis phase;
// cmd/tableii's footer reads them back for its per-phase breakdown.
var (
	mSyntheses    = obsv.Default.Counter("janus_core_syntheses_total")
	mLMSolved     = obsv.Default.Counter("janus_core_lm_solved_total")
	mMidpoints    = obsv.Default.Counter("janus_core_dichotomic_steps_total")
	mPhaseMinimNS = obsv.Default.Counter("janus_core_phase_minimize_ns_total")
	mPhaseBoundNS = obsv.Default.Counter("janus_core_phase_bounds_ns_total")
	mPhaseDSNS    = obsv.Default.Counter("janus_core_phase_ds_ns_total")
	mPhaseSrchNS  = obsv.Default.Counter("janus_core_phase_search_ns_total")
)

// phase times one synthesis phase into both a trace span and its
// registry counter: sp, done := phase(parent, "Bounds", mPhaseBoundNS);
// ... ; done(). The span is nil (free) when tracing is off; the counter
// always runs because the cmd footers report phase wall-clock even
// without a trace file.
func phase(parent *obsv.Span, name string, ns *obsv.Counter) (*obsv.Span, func()) {
	sp := parent.Child(name)
	start := time.Now()
	return sp, func() {
		ns.Add(time.Since(start).Nanoseconds())
		sp.End()
	}
}
