package core

import (
	"time"

	"github.com/lattice-tools/janus/internal/lattice"
	"github.com/lattice-tools/janus/internal/obsv"
)

// Registry handles for the search-level pipeline (janus_core_*). The
// phase counters accumulate wall-clock nanoseconds per synthesis phase;
// cmd/tableii's footer reads them back for its per-phase breakdown.
// janus_core_bound_updates_total counts verified bound moves (the anytime
// heartbeat) and janus_core_first_mapping_ns distributes the time from
// Synthesize entry to the first verified mapping of top-level runs — the
// latency a caller would see if it settled for "best so far" immediately.
var (
	mSyntheses      = obsv.Default.Counter("janus_core_syntheses_total")
	mLMSolved       = obsv.Default.Counter("janus_core_lm_solved_total")
	mMidpoints      = obsv.Default.Counter("janus_core_dichotomic_steps_total")
	mBoundUpdates   = obsv.Default.Counter("janus_core_bound_updates_total")
	mPhaseMinimNS   = obsv.Default.Counter("janus_core_phase_minimize_ns_total")
	mPhaseBoundNS   = obsv.Default.Counter("janus_core_phase_bounds_ns_total")
	mPhaseDSNS      = obsv.Default.Counter("janus_core_phase_ds_ns_total")
	mPhaseSrchNS    = obsv.Default.Counter("janus_core_phase_search_ns_total")
	hFirstMappingNS = obsv.Default.Histogram("janus_core_first_mapping_ns")
)

// phase times one synthesis phase into a trace span, its registry
// counter, and the progress stream: sp, done := phase(prog, parent,
// "Bounds", "bounds", mPhaseBoundNS); ... ; done(). The span is nil
// (free) when tracing is off and the progress events are skipped when no
// sink is attached; the counter always runs because the cmd footers
// report phase wall-clock even without a trace file.
func phase(prog *progTrail, parent *obsv.Span, name, pname string, ns *obsv.Counter) (*obsv.Span, func()) {
	sp := parent.Child(name)
	prog.phaseStart(pname)
	start := time.Now()
	return sp, func() {
		ns.Add(time.Since(start).Nanoseconds())
		sp.End()
		prog.phaseDone(pname)
	}
}

// progTrail threads one synthesis' progress sink together with the
// bookkeeping the emission points share: the dichotomic step counter,
// the first-mapping clock, and whether this synthesis is a DS/MF
// sub-search (whose bounds describe part covers, not the caller's
// target). The registry counters and the first-mapping histogram run
// regardless of the sink, exactly like the phase counters; only event
// construction is gated on it, so a run without a sink pays a nil check
// per emission point and allocates nothing.
type progTrail struct {
	sink         obsv.ProgressSink
	sub          bool
	start        time.Time
	steps        int
	firstMapping bool
}

func (p *progTrail) phaseStart(name string) {
	if p == nil || p.sink == nil {
		return
	}
	p.sink.Progress(obsv.ProgressEvent{Kind: obsv.ProgressPhaseStart, Phase: name, Sub: p.sub})
}

func (p *progTrail) phaseDone(name string) {
	if p == nil || p.sink == nil {
		return
	}
	p.sink.Progress(obsv.ProgressEvent{Kind: obsv.ProgressPhaseDone, Phase: name, Sub: p.sub})
}

// bound reports a verified bound move. lb 0 means "not computed yet".
func (p *progTrail) bound(lb, ub int, method string) {
	if p == nil {
		return
	}
	mBoundUpdates.Inc()
	if p.sink == nil {
		return
	}
	p.sink.Progress(obsv.ProgressEvent{
		Kind: obsv.ProgressBound, LB: lb, UB: ub, Method: method, Sub: p.sub,
	})
}

// incumbent reports a new best verified mapping; the first one of a
// top-level synthesis stamps the time-to-first-verified-mapping
// histogram.
func (p *progTrail) incumbent(a *lattice.Assignment, method string) {
	if p == nil || a == nil {
		return
	}
	if !p.firstMapping {
		p.firstMapping = true
		if !p.sub {
			hFirstMappingNS.Observe(time.Since(p.start).Nanoseconds())
		}
	}
	if p.sink == nil {
		return
	}
	p.sink.Progress(obsv.ProgressEvent{
		Kind: obsv.ProgressIncumbent, Size: a.Size(), Grid: a.Grid.String(),
		Method: method, Verified: true, Sub: p.sub,
	})
}

// step reports one finished dichotomic step.
func (p *progTrail) step(engine string, gridsProbed int) {
	if p == nil {
		return
	}
	p.steps++
	if p.sink == nil {
		return
	}
	p.sink.Progress(obsv.ProgressEvent{
		Kind: obsv.ProgressStep, Step: p.steps, Engine: engine,
		GridsProbed: gridsProbed, Sub: p.sub,
	})
}
