package core

import (
	"math/rand"
	"testing"

	"github.com/lattice-tools/janus/internal/cube"
	"github.com/lattice-tools/janus/internal/minimize"
)

// TestDSBoundVerified: the divide-and-synthesize construction must always
// produce a verified realization when it produces anything.
func TestDSBoundVerified(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 8; trial++ {
		f := cube.Zero(4)
		for i := 0; i < 4; i++ {
			var c cube.Cube
			for v := 0; v < 4; v++ {
				switch rng.Intn(3) {
				case 0:
					c = c.WithPos(v)
				case 1:
					c = c.WithNeg(v)
				}
			}
			if c.NumLiterals() > 0 {
				f.Cubes = append(f.Cubes, c)
			}
		}
		isop := minimize.Auto(f)
		if len(isop.Cubes) < 4 {
			continue
		}
		dual := minimize.Auto(isop.Dual())
		var lm lmStats
		ds := dsBound(isop, dual, Options{}, &lm)
		if ds == nil {
			continue // partition degenerated; allowed
		}
		if !ds.Realizes(isop) {
			t.Fatalf("trial %d: DS bound not verified", trial)
		}
	}
}

// TestDSImprovesFig4: on the paper's Fig. 4 function DS must find a
// packing no larger than PS would (the paper reports DS = 3×5 = 15).
func TestDSImprovesFig4(t *testing.T) {
	f := cube.NewCover(5,
		cube.FromLiterals([]int{2, 3}, nil),
		cube.FromLiterals(nil, []int{2, 3}),
		cube.FromLiterals([]int{0, 1, 4}, nil),
		cube.FromLiterals(nil, []int{0, 1, 4}))
	isop, dual := minimize.AutoDual(f)
	var lm lmStats
	ds := dsBound(isop, dual, Options{}, &lm)
	if ds == nil {
		t.Fatal("DS produced nothing for fig4")
	}
	if ds.Size() > 15 {
		t.Fatalf("DS size = %d (%v), paper reports 15", ds.Size(), ds.Grid)
	}
	if !ds.Realizes(isop) {
		t.Fatal("DS bound not verified")
	}
}

func TestPackPartsThreeWay(t *testing.T) {
	var parts []*part
	var want cube.Cover
	for i, raw := range []cube.Cover{
		cube.NewCover(5, cube.FromLiterals([]int{0, 1}, nil)),
		cube.NewCover(5, cube.FromLiterals([]int{2}, []int{3})),
		cube.NewCover(5, cube.FromLiterals(nil, []int{4, 0})),
	} {
		r, err := Synthesize(raw, Options{})
		if err != nil {
			t.Fatal(err)
		}
		parts = append(parts, &part{isop: r.ISOP, dual: r.DualISOP, sol: r.Assignment})
		if i == 0 {
			want = r.ISOP
		} else {
			want = want.Or(r.ISOP)
		}
	}
	packed := packParts(parts)
	if !packed.Realizes(want) {
		t.Fatalf("3-way packing wrong:\n%s", packed)
	}
	rows, cols := packedSize(parts)
	if packed.Grid.M != rows || packed.Grid.N != cols {
		t.Fatal("packedSize disagrees with packParts")
	}
}

func TestFixedRowSearch(t *testing.T) {
	f := cube.NewCover(3, cube.FromLiterals([]int{0, 1, 2}, nil)) // abc
	isop, dual := minimize.AutoDual(f)
	p := &part{isop: isop, dual: dual}
	var lm lmStats
	// abc needs 3 switches in a column; at 3 rows the minimum k is 1.
	sol := fixedRowSearch(p, 3, 1, 4, Options{}, &lm)
	if sol == nil || sol.Grid.N != 1 {
		t.Fatalf("fixedRowSearch = %v", sol)
	}
	// At 2 rows no width in range works (needs a path of length 3 but
	// every 2×k path has 2 cells... except bent ones; the search may find
	// a wider solution; just require any result to verify).
	if sol2 := fixedRowSearch(p, 2, 1, 3, Options{}, &lm); sol2 != nil {
		if !sol2.Realizes(isop) {
			t.Fatal("unverified fixed-row result")
		}
	}
}

func TestTrimCols(t *testing.T) {
	f := cube.NewCover(3, cube.FromLiterals([]int{0}, nil)) // single literal a
	isop, dual := minimize.AutoDual(f)
	r, err := Synthesize(f, Options{})
	if err != nil {
		t.Fatal(err)
	}
	p := &part{isop: isop, dual: dual, sol: r.Assignment}
	var lm lmStats
	// a fits a 2×1 lattice (column of a's); trimming from width 3 at 2
	// rows must reach width 1.
	sol := trimCols(p, 2, 3, Options{}, &lm)
	if sol == nil || sol.Grid.N != 1 {
		t.Fatalf("trimCols = %+v", sol)
	}
}
