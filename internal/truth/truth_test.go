package truth

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/lattice-tools/janus/internal/cube"
)

func TestFromCoverMatchesEval(t *testing.T) {
	f := cube.NewCover(3,
		cube.FromLiterals([]int{0, 1}, nil),
		cube.FromLiterals(nil, []int{2}))
	tab := FromCover(f)
	for p := uint64(0); p < 8; p++ {
		if tab.Get(p) != f.Eval(p) {
			t.Fatalf("mismatch at %b", p)
		}
	}
}

func TestConstantTables(t *testing.T) {
	z := FromCover(cube.Zero(4))
	o := FromCover(cube.One(4))
	if !z.IsZero() || z.IsOne() {
		t.Fatal("zero table misclassified")
	}
	if !o.IsOne() || o.IsZero() {
		t.Fatal("one table misclassified")
	}
	if z.CountOnes() != 0 || o.CountOnes() != 16 {
		t.Fatal("CountOnes wrong")
	}
}

func TestComplementAndDual(t *testing.T) {
	f := cube.NewCover(3, cube.FromLiterals([]int{0}, []int{1}))
	tab := FromCover(f)
	comp := tab.Complement()
	for p := uint64(0); p < 8; p++ {
		if comp.Get(p) == tab.Get(p) {
			t.Fatalf("complement wrong at %b", p)
		}
	}
	dual := tab.Dual()
	for p := uint64(0); p < 8; p++ {
		if dual.Get(p) != !tab.Get(^p&7) {
			t.Fatalf("dual wrong at %b", p)
		}
	}
}

func TestMintermsMaxterms(t *testing.T) {
	f := cube.NewCover(2, cube.FromLiterals([]int{0, 1}, nil))
	tab := FromCover(f)
	if m := tab.Minterms(); len(m) != 1 || m[0] != 3 {
		t.Fatalf("Minterms = %v", m)
	}
	if m := tab.Maxterms(); len(m) != 3 {
		t.Fatalf("Maxterms = %v", m)
	}
}

func TestSmallN(t *testing.T) {
	// N < 6 exercises the partial-word masking paths.
	tab := New(2)
	tab.Set(0, true)
	tab.Set(3, true)
	if tab.CountOnes() != 2 {
		t.Fatalf("CountOnes = %d", tab.CountOnes())
	}
	u := New(2)
	u.Set(0, true)
	u.Set(3, true)
	if !tab.Equal(u) {
		t.Fatal("Equal failed on identical tables")
	}
	u.Set(1, true)
	if tab.Equal(u) {
		t.Fatal("Equal failed to distinguish")
	}
}

func TestLargeN(t *testing.T) {
	// 10 variables spans multiple words.
	f := cube.NewCover(10, cube.FromLiterals([]int{9}, nil))
	tab := FromCover(f)
	if tab.CountOnes() != 512 {
		t.Fatalf("CountOnes = %d, want 512", tab.CountOnes())
	}
	if !tab.EquivCover(f) {
		t.Fatal("EquivCover failed")
	}
}

func TestString(t *testing.T) {
	f := cube.NewCover(2, cube.FromLiterals([]int{0}, nil))
	if got := FromCover(f).String(); got != "0101" {
		t.Fatalf("String = %q", got)
	}
}

func randomCover(r *rand.Rand, n, k int) cube.Cover {
	f := cube.Zero(n)
	for i, m := 0, 1+r.Intn(k); i < m; i++ {
		var c cube.Cube
		for v := 0; v < n; v++ {
			switch r.Intn(3) {
			case 0:
				c = c.WithPos(v)
			case 1:
				c = c.WithNeg(v)
			}
		}
		f.Cubes = append(f.Cubes, c)
	}
	return f
}

// Property: table construction agrees with direct cover evaluation.
func TestPropFromCoverPointwise(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		f := randomCover(r, 7, 6)
		tab := FromCover(f)
		for p := uint64(0); p < 128; p++ {
			if tab.Get(p) != f.Eval(p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// Property: dual of dual is the identity on tables.
func TestPropDualInvolution(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		f := randomCover(r, 6, 5)
		tab := FromCover(f)
		return tab.Dual().Dual().Equal(tab)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// Property: table dual matches cover dual.
func TestPropDualMatchesCoverDual(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		f := randomCover(r, 5, 5)
		return FromCover(f.Dual()).Equal(FromCover(f).Dual())
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
