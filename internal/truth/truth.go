// Package truth provides dense bitset truth tables for single-output
// Boolean functions with up to 20 inputs. Truth tables are the ground-truth
// oracle used throughout the repository: lattice mappings, minimizer
// outputs, and bound constructions are all verified against them.
package truth

import (
	"fmt"
	"math/bits"
	"sync/atomic"

	"github.com/lattice-tools/janus/internal/cube"
)

// MaxVars bounds the table size to 2^20 bits (128 KiB).
const MaxVars = 20

// Table is the truth table of a Boolean function of N variables. Bit p of
// the table (p interpreted with bit v = value of x_v) is the function value
// at point p.
type Table struct {
	N    int
	bits []uint64
}

// New returns the constant-0 table over n variables.
func New(n int) *Table {
	if n < 0 || n > MaxVars {
		panic(fmt.Sprintf("truth: unsupported variable count %d", n))
	}
	words := 1
	if n > 6 {
		words = 1 << uint(n-6)
	}
	return &Table{N: n, bits: make([]uint64, words)}
}

// fromCoverCalls counts FromCover invocations process-wide. Building a
// table is exponential in N, so callers are expected to cache (see
// internal/memo); the counter lets tests assert that tables really are
// built once per distinct cover.
var fromCoverCalls atomic.Int64

// FromCoverCalls returns the number of FromCover evaluations so far.
func FromCoverCalls() int64 { return fromCoverCalls.Load() }

// FromCover evaluates an SOP cover into a truth table over cover.N vars.
func FromCover(f cube.Cover) *Table {
	fromCoverCalls.Add(1)
	t := New(f.N)
	for _, c := range f.Cubes {
		t.orCube(c)
	}
	return t
}

// orCube sets every point of the cube.
func (t *Table) orCube(c cube.Cube) {
	size := uint64(1) << uint(t.N)
	free := ^(c.Pos | c.Neg) & (size - 1)
	// Iterate over subsets of the free variables, offset by the fixed part.
	if c.IsContradiction() {
		return
	}
	base := c.Pos & (size - 1)
	sub := uint64(0)
	for {
		t.Set(base|sub, true)
		if sub == free {
			break
		}
		sub = (sub - free) & free
	}
}

// Get returns the function value at point p.
func (t *Table) Get(p uint64) bool {
	return t.bits[p>>6]&(1<<(p&63)) != 0
}

// Set assigns the function value at point p.
func (t *Table) Set(p uint64, v bool) {
	if v {
		t.bits[p>>6] |= 1 << (p & 63)
	} else {
		t.bits[p>>6] &^= 1 << (p & 63)
	}
}

// Size returns the number of points, 2^N.
func (t *Table) Size() uint64 { return 1 << uint(t.N) }

// CountOnes returns the on-set size.
func (t *Table) CountOnes() int {
	n := 0
	for i, w := range t.bits {
		if t.N < 6 && i == 0 {
			w &= (1 << (1 << uint(t.N))) - 1
		}
		n += bits.OnesCount64(w)
	}
	return n
}

// Equal reports whether two tables denote the same function.
func (t *Table) Equal(u *Table) bool {
	if t.N != u.N {
		return false
	}
	if t.N < 6 {
		mask := uint64(1)<<(1<<uint(t.N)) - 1
		return t.bits[0]&mask == u.bits[0]&mask
	}
	for i := range t.bits {
		if t.bits[i] != u.bits[i] {
			return false
		}
	}
	return true
}

// Clone returns a deep copy.
func (t *Table) Clone() *Table {
	u := New(t.N)
	copy(u.bits, t.bits)
	return u
}

// Complement returns the pointwise complement.
func (t *Table) Complement() *Table {
	u := t.Clone()
	for i := range u.bits {
		u.bits[i] = ^u.bits[i]
	}
	return u
}

// Dual returns the dual function table: d(p) = ¬t(¬p).
func (t *Table) Dual() *Table {
	u := New(t.N)
	mask := t.Size() - 1
	for p := uint64(0); p < t.Size(); p++ {
		u.Set(p, !t.Get(^p&mask))
	}
	return u
}

// IsZero reports whether the function is constant 0.
func (t *Table) IsZero() bool { return t.CountOnes() == 0 }

// IsOne reports whether the function is constant 1.
func (t *Table) IsOne() bool { return t.CountOnes() == int(t.Size()) }

// Minterms returns the on-set points in increasing order.
func (t *Table) Minterms() []uint64 {
	var pts []uint64
	for p := uint64(0); p < t.Size(); p++ {
		if t.Get(p) {
			pts = append(pts, p)
		}
	}
	return pts
}

// Maxterms returns the off-set points in increasing order.
func (t *Table) Maxterms() []uint64 {
	var pts []uint64
	for p := uint64(0); p < t.Size(); p++ {
		if !t.Get(p) {
			pts = append(pts, p)
		}
	}
	return pts
}

// EquivCover reports whether the cover denotes the same function as t.
func (t *Table) EquivCover(f cube.Cover) bool {
	if f.N != t.N {
		return false
	}
	return t.Equal(FromCover(f))
}

// String renders the table as a 2^N-character 0/1 string, point 0 first.
func (t *Table) String() string {
	b := make([]byte, t.Size())
	for p := uint64(0); p < t.Size(); p++ {
		if t.Get(p) {
			b[p] = '1'
		} else {
			b[p] = '0'
		}
	}
	return string(b)
}
