package baselines

import (
	"testing"

	"github.com/lattice-tools/janus/internal/core"
	"github.com/lattice-tools/janus/internal/cube"
)

func fig4() cube.Cover {
	return cube.NewCover(5,
		cube.FromLiterals([]int{2, 3}, nil),
		cube.FromLiterals(nil, []int{2, 3}),
		cube.FromLiterals([]int{0, 1, 4}, nil),
		cube.FromLiterals(nil, []int{0, 1, 4}))
}

func fig1() cube.Cover {
	return cube.NewCover(4,
		cube.FromLiterals([]int{0, 1, 2, 3}, nil),
		cube.FromLiterals(nil, []int{0, 1, 2, 3}))
}

func TestExactGangeFig1(t *testing.T) {
	r, err := ExactGange(fig1(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Size != 8 {
		t.Fatalf("exact size = %d, want 8", r.Size)
	}
	if r.Assignment == nil {
		t.Fatal("missing assignment")
	}
}

func TestExactGangeFig4(t *testing.T) {
	r, err := ExactGange(fig4(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Size != 12 {
		t.Fatalf("exact size = %d, want 12", r.Size)
	}
}

func TestApproxGangeSoundButMaybeWeaker(t *testing.T) {
	for _, f := range []cube.Cover{fig1(), fig4()} {
		r, err := ApproxGange(f, Options{})
		if err != nil {
			t.Fatal(err)
		}
		ex, err := ExactGange(f, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if r.Size < ex.Size {
			t.Fatalf("approximate (%d) beat exact (%d)", r.Size, ex.Size)
		}
		if r.Assignment == nil {
			t.Fatal("approximate produced no assignment")
		}
	}
}

func TestHeuristicReturnsVerifiedResult(t *testing.T) {
	for _, f := range []cube.Cover{fig1(), fig4()} {
		r, err := Heuristic(f, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if r.Assignment == nil {
			t.Fatal("no result")
		}
		if r.Size < r.LB {
			t.Fatalf("size %d below lb %d", r.Size, r.LB)
		}
	}
}

// TestJanusNotWorseThanBaselines mirrors the paper's headline: on these
// instances JANUS's result is at most the baselines' (Table II shows JANUS
// has the smallest average lattice size).
func TestJanusNotWorseThanBaselines(t *testing.T) {
	fns := []cube.Cover{
		fig1(), fig4(),
		cube.NewCover(3,
			cube.FromLiterals([]int{0, 1}, nil),
			cube.FromLiterals([]int{0, 2}, nil),
			cube.FromLiterals([]int{1, 2}, nil)),
	}
	for i, f := range fns {
		jr, err := core.Synthesize(f, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		for name, run := range map[string]func(cube.Cover, Options) (Result, error){
			"exact":  ExactGange,
			"approx": ApproxGange,
			"heur":   Heuristic,
		} {
			br, err := run(f, Options{})
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if jr.Size > br.Size {
				t.Fatalf("fn %d: JANUS (%d) worse than %s (%d)", i, jr.Size, name, br.Size)
			}
		}
	}
}
