package baselines

import (
	"math/rand"
	"testing"

	"github.com/lattice-tools/janus/internal/cube"
	"github.com/lattice-tools/janus/internal/lattice"
	"github.com/lattice-tools/janus/internal/minimize"
)

func TestComposeSemantics(t *testing.T) {
	// f0 = bc (for a'=1 side), f1 = b'c' -> f = a'bc + ab'c'.
	f0 := cube.NewCover(3, cube.FromLiterals([]int{1, 2}, nil))
	f1 := cube.NewCover(3, cube.FromLiterals(nil, []int{1, 2}))
	r0, err := ExactGange(f0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	r1, err := ExactGange(f1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	composed := compose(0, r0.Assignment, r1.Assignment)
	want := cube.NewCover(3,
		cube.FromLiterals([]int{1, 2}, []int{0}),
		cube.FromLiterals([]int{0}, []int{1, 2}))
	if composed == nil || !composed.Realizes(want) {
		t.Fatalf("composition wrong:\n%s", composed)
	}
}

func TestComposeLiteralRow(t *testing.T) {
	// A literal row ANDs the block: block = single cell b; composed left
	// half computes a'·b.
	blk := lattice.NewAssignment(lattice.Grid{M: 1, N: 1})
	blk.Set(0, 0, lattice.Entry{Kind: lattice.PosVar, Var: 1})
	out := compose(0, blk, blk)
	// Left region (col 0) realizes a'b, right region (col 2) realizes ab.
	f := cube.NewCover(2,
		cube.FromLiterals([]int{1}, []int{0}),
		cube.FromLiterals([]int{0, 1}, nil))
	if !out.Realizes(f) {
		t.Fatalf("literal-row composition wrong:\n%s", out)
	}
}

func TestDecomposeVerifiedAndNoWorse(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 6; trial++ {
		f := cube.Zero(4)
		for i := 0; i < 3; i++ {
			var c cube.Cube
			for v := 0; v < 4; v++ {
				switch rng.Intn(3) {
				case 0:
					c = c.WithPos(v)
				case 1:
					c = c.WithNeg(v)
				}
			}
			if c.NumLiterals() > 0 {
				f.Cubes = append(f.Cubes, c)
			}
		}
		isop := minimize.Auto(f)
		if isop.IsZero() || isop.IsOne() {
			continue
		}
		r, err := Decompose(f, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if r.Assignment == nil || !r.Assignment.Realizes(isop) {
			t.Fatalf("trial %d: unverified decomposition result", trial)
		}
		direct, err := ExactGange(f, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if r.Size > direct.Size {
			t.Fatalf("trial %d: Decompose (%d) worse than its own direct fallback (%d)",
				trial, r.Size, direct.Size)
		}
	}
}

func TestDecomposeConstants(t *testing.T) {
	r, err := Decompose(cube.One(2), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Assignment == nil {
		t.Fatal("constant decomposition failed")
	}
}
