package baselines

import (
	"time"

	"github.com/lattice-tools/janus/internal/cube"
	"github.com/lattice-tools/janus/internal/lattice"
	"github.com/lattice-tools/janus/internal/minimize"
)

// Decompose models the decomposition-based synthesis of Bernasconi et
// al. [9]: split the target on a Shannon variable, synthesize the two
// cofactors with the exact method, and compose the sub-lattices. The
// composition follows the lattice algebra used throughout this
// repository:
//
//	f = x'·f0 + x·f1
//
// is realized by prefixing each cofactor's lattice with a full row of
// the corresponding literal (a literal row ANDs the block's function)
// and packing the two blocks side by side behind a constant-0 isolation
// column. The splitting variable minimizing the composed size estimate
// is chosen; when no split beats synthesizing f directly, the direct
// result is returned — mirroring the paper's observation that the
// decomposition methods trail the direct ones on average.
func Decompose(f cube.Cover, opt Options) (Result, error) {
	start := time.Now()
	isop := minimize.Auto(f)
	if isop.IsZero() || isop.IsOne() || isop.PopCountSupport() < 2 {
		return ExactGange(f, opt)
	}

	direct, err := ExactGange(f, opt)
	if err != nil {
		return Result{}, err
	}

	bestVar, bestEst := -1, direct.Size
	support := isop.Support()
	for v := 0; v < isop.N; v++ {
		if support&(1<<uint(v)) == 0 {
			continue
		}
		f0 := minimize.Auto(isop.Cofactor(v, false))
		f1 := minimize.Auto(isop.Cofactor(v, true))
		if f0.IsZero() || f1.IsZero() || f0.IsOne() || f1.IsOne() {
			continue // degenerate split; the direct route already covers it
		}
		// Cheap size estimate from the PS bound of each cofactor.
		est := estimateCompose(f0, f1)
		if est < bestEst {
			bestEst, bestVar = est, v
		}
	}
	if bestVar < 0 {
		direct.Elapsed = time.Since(start)
		return direct, nil
	}

	f0 := minimize.Auto(isop.Cofactor(bestVar, false))
	f1 := minimize.Auto(isop.Cofactor(bestVar, true))
	r0, err := ExactGange(f0, opt)
	if err != nil {
		return Result{}, err
	}
	r1, err := ExactGange(f1, opt)
	if err != nil {
		return Result{}, err
	}
	composed := compose(bestVar, r0.Assignment, r1.Assignment)
	res := Result{
		LB:       direct.LB,
		UB:       direct.UB,
		LMSolved: direct.LMSolved + r0.LMSolved + r1.LMSolved,
		Decided:  direct.Decided && r0.Decided && r1.Decided,
	}
	if composed != nil && composed.Realizes(isop) && composed.Size() < direct.Size {
		res.Assignment = composed
	} else {
		res.Assignment = direct.Assignment
	}
	res.Grid = res.Assignment.Grid
	res.Size = res.Assignment.Size()
	res.Elapsed = time.Since(start)
	return res, nil
}

// estimateCompose estimates the composed lattice size from the cofactor
// profiles: height max(δ0, δ1)+1, width #products0 separated + #products1.
func estimateCompose(f0, f1 cube.Cover) int {
	h := f0.Degree()
	if d := f1.Degree(); d > h {
		h = d
	}
	return (h + 1) * (2*len(f0.Cubes) - 1 + 1 + 2*len(f1.Cubes) - 1)
}

// compose builds the lattice for x'·A + x·B: literal rows on top of each
// block, blocks packed behind a constant-0 column, shorter block padded
// with constant 1 below.
func compose(v int, a, b *lattice.Assignment) *lattice.Assignment {
	if a == nil || b == nil {
		return nil
	}
	rows := a.Grid.M
	if b.Grid.M > rows {
		rows = b.Grid.M
	}
	rows++ // the literal row
	cols := a.Grid.N + 1 + b.Grid.N
	out := lattice.NewAssignment(lattice.Grid{M: rows, N: cols})
	place := func(blk *lattice.Assignment, col0 int, lit lattice.Entry) {
		for c := 0; c < blk.Grid.N; c++ {
			out.Set(0, col0+c, lit)
		}
		for r := 0; r < rows-1; r++ {
			for c := 0; c < blk.Grid.N; c++ {
				if r < blk.Grid.M {
					out.Set(r+1, col0+c, blk.At(r, c))
				} else {
					out.Set(r+1, col0+c, lattice.Entry{Kind: lattice.Const1})
				}
			}
		}
	}
	place(a, 0, lattice.Entry{Kind: lattice.NegVar, Var: v})
	place(b, a.Grid.N+1, lattice.Entry{Kind: lattice.PosVar, Var: v})
	return out
}
