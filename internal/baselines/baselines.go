// Package baselines implements the comparison algorithms of the paper's
// Table II: the exact and approximate lattice synthesis methods of Gange,
// Søndergaard & Stuckey (TODAES 2014) and the promising-candidate
// heuristic of Morgül & Altun (Integration). All three reuse this
// repository's substrates (ISOP minimizer, path enumeration, LM SAT
// encoding) but differ from JANUS exactly where the papers differ: the
// bounds they start from, the candidate sets they explore, and the
// restrictions they impose on the LM formulation.
package baselines

import (
	"time"

	"github.com/lattice-tools/janus/internal/bounds"
	"github.com/lattice-tools/janus/internal/cube"
	"github.com/lattice-tools/janus/internal/encode"
	"github.com/lattice-tools/janus/internal/lattice"
	"github.com/lattice-tools/janus/internal/minimize"
	"github.com/lattice-tools/janus/internal/sat"
)

// Result mirrors core.Result for the baseline algorithms.
type Result struct {
	Assignment *lattice.Assignment
	Grid       lattice.Grid
	Size       int
	LB, UB     int
	LMSolved   int
	Elapsed    time.Duration
	// Decided is false when a SAT budget expired somewhere, so the answer
	// may be above the method's true result (mirrors the paper's 6-hour
	// timeout rows).
	Decided bool
}

// Options configures a baseline run.
type Options struct {
	// Limits bounds each SAT call.
	Limits sat.Limits
	// MaxCells skips lattices above the implementation limit.
	MaxCells int
}

func (o Options) maxCells() int {
	if o.MaxCells <= 0 || o.MaxCells > 64 {
		return 64
	}
	return o.MaxCells
}

// prepare minimizes the target and computes the classical bounds used by
// the 2014 methods: lower bound from the structural walk, upper bound from
// the DP/PS/DPS constructions only (no improved bounds).
func prepare(f cube.Cover) (isop, dual cube.Cover, lb int, inc *lattice.Assignment) {
	isop, dual = minimize.AutoDual(f)
	bs := bounds.All(isop, dual, false)
	if len(bs) == 0 {
		return isop, dual, 1, nil
	}
	inc = bs[0].Assignment
	lb = bounds.LowerBound(isop, dual, inc.Size())
	return isop, dual, lb, inc
}

// search runs the dichotomic search shared by the baselines with the given
// LM options.
func search(isop, dual cube.Cover, lb int, inc *lattice.Assignment,
	lmOpt encode.Options, opt Options) Result {
	start := time.Now()
	res := Result{LB: lb, Decided: true}
	if inc == nil {
		return res
	}
	res.UB = inc.Size()
	ub := inc.Size()
	for lb < ub {
		mp := (lb + ub) / 2
		found := false
		for _, g := range maximalGrids(mp, lb, opt.maxCells()) {
			r, err := encode.SolveLM(isop, dual, g, lmOpt)
			if err != nil {
				break
			}
			if !r.Structural {
				res.LMSolved++
			}
			if r.Status == sat.Unknown {
				res.Decided = false
			}
			if r.Status == sat.Sat {
				inc = r.Assignment
				ub = g.Cells()
				found = true
				break
			}
		}
		if !found {
			lb = mp + 1
		}
	}
	res.Assignment = inc
	res.Grid = inc.Grid
	res.Size = inc.Size()
	res.Elapsed = time.Since(start)
	return res
}

func maximalGrids(size, lb, maxCells int) []lattice.Grid {
	if size > maxCells {
		size = maxCells
	}
	seen := map[lattice.Grid]bool{}
	var gs []lattice.Grid
	for m := 1; m <= size; m++ {
		n := size / m
		if n < 1 {
			break
		}
		g := lattice.Grid{M: m, N: n}
		if g.Cells() < lb || seen[g] {
			continue
		}
		seen[g] = true
		gs = append(gs, g)
	}
	// Near-square first, matching the candidate order of the core search.
	for i := 1; i < len(gs); i++ {
		for j := i; j > 0; j-- {
			di := abs(gs[j].M - gs[j].N)
			dj := abs(gs[j-1].M - gs[j-1].N)
			if di < dj {
				gs[j], gs[j-1] = gs[j-1], gs[j]
			}
		}
	}
	return gs
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// ExactGange models the exact method of [6]: a dichotomic search between
// the classical bounds where the LM problem allows any literal on any
// switch (FullTL) and imposes none of JANUS's approximate constraints.
func ExactGange(f cube.Cover, opt Options) (Result, error) {
	isop, dual, lb, inc := prepare(f)
	lmOpt := encode.Options{
		FullTL:        true,
		DisableDegree: true,
		Limits:        opt.Limits,
	}
	r := search(isop, dual, lb, inc, lmOpt, opt)
	return r, nil
}

// ApproxGange models the approximate method of [6]: the same search but
// with the restrictive per-product realization rule, which shrinks the SAT
// problems yet can exclude valid mappings (the paper's ex5_15/ex5_17/ex5_23
// failure mode).
func ApproxGange(f cube.Cover, opt Options) (Result, error) {
	isop, dual, lb, inc := prepare(f)
	lmOpt := encode.Options{
		StrictProducts: true,
		DisableDegree:  true,
		Limits:         opt.Limits,
	}
	r := search(isop, dual, lb, inc, lmOpt, opt)
	return r, nil
}

// Heuristic models the method of [11]: instead of a full dichotomic
// search it probes a fixed set of promising lattice shapes derived from
// the function's profile — heights around the degree δ and around the
// dual degree γ — taking the first (smallest) shape that fits. Because it
// does not consider all candidates its result may be far from optimal.
func Heuristic(f cube.Cover, opt Options) (Result, error) {
	start := time.Now()
	isop, dual, lb, inc := prepare(f)
	res := Result{LB: lb, Decided: true}
	if inc == nil {
		return res, nil
	}
	res.UB = inc.Size()
	lmOpt := encode.Options{DisableDegree: true, Limits: opt.Limits}

	delta := isop.Degree()
	gamma := dual.Degree()
	var shapes []lattice.Grid
	for _, m := range []int{delta - 1, delta, delta + 1, gamma - 1, gamma, gamma + 1} {
		if m < 2 {
			continue
		}
		for n := 2; m*n <= inc.Size() && n <= 16; n++ {
			if m*n >= lb {
				shapes = append(shapes, lattice.Grid{M: m, N: n})
			}
		}
	}
	// Smallest candidates first; the first hit wins.
	for i := 1; i < len(shapes); i++ {
		for j := i; j > 0 && shapes[j].Cells() < shapes[j-1].Cells(); j-- {
			shapes[j], shapes[j-1] = shapes[j-1], shapes[j]
		}
	}
	for _, g := range shapes {
		if g.Cells() > opt.maxCells() {
			continue
		}
		r, err := encode.SolveLM(isop, dual, g, lmOpt)
		if err != nil {
			continue
		}
		if !r.Structural {
			res.LMSolved++
		}
		if r.Status == sat.Unknown {
			res.Decided = false
		}
		if r.Status == sat.Sat {
			inc = r.Assignment
			break
		}
	}
	res.Assignment = inc
	res.Grid = inc.Grid
	res.Size = inc.Size()
	res.Elapsed = time.Since(start)
	return res, nil
}
