package front

import (
	"fmt"
	"testing"
)

func mkBackends(n int) []Backend {
	out := make([]Backend, n)
	for i := range out {
		id := fmt.Sprintf("host%d:7151", i)
		out[i] = Backend{ID: id, URL: "http://" + id}
	}
	return out
}

func mkKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		// fnKeys are sha256 hex in production; any string works for the
		// hash, and a cheap deterministic spread keeps the test stable.
		keys[i] = fmt.Sprintf("fnkey-%06d", i)
	}
	return keys
}

func allAlive(bs []Backend) map[string]bool {
	m := make(map[string]bool, len(bs))
	for _, b := range bs {
		m[b.ID] = true
	}
	return m
}

// TestRendezvousBalance checks the owner distribution over many keys is
// near-uniform for several fleet sizes: a chi-square-style bound on the
// per-backend deviation from the expected share.
func TestRendezvousBalance(t *testing.T) {
	keys := mkKeys(20000)
	for _, n := range []int{3, 5, 8} {
		t.Run(fmt.Sprintf("backends=%d", n), func(t *testing.T) {
			bs := mkBackends(n)
			live := allAlive(bs)
			counts := make(map[string]int, n)
			for _, k := range keys {
				r := rankOver(bs, live, k)
				counts[r[0].ID]++
			}
			exp := float64(len(keys)) / float64(n)
			var chi2 float64
			for _, b := range bs {
				c := counts[b.ID]
				d := float64(c) - exp
				chi2 += d * d / exp
				// No backend may own a grossly skewed share (±15% of the
				// expected load at 20k keys is far beyond random noise).
				if float64(c) < exp*0.85 || float64(c) > exp*1.15 {
					t.Errorf("backend %s owns %d keys, expected ~%.0f", b.ID, c, exp)
				}
			}
			// Chi-square with n-1 degrees of freedom: even the p=0.001
			// critical value for 7 dof is ~24.3; a hash-quality failure
			// shows up orders of magnitude above this.
			if chi2 > 30 {
				t.Errorf("chi-square %.1f too high for %d backends — ownership not uniform", chi2, n)
			}
		})
	}
}

// TestRendezvousMinimalDisruption checks the consistent-hash property
// the tier exists for: removing a backend moves ONLY its keys (every
// survivor keeps what it owned), and adding one moves only ~1/N of the
// space to the newcomer.
func TestRendezvousMinimalDisruption(t *testing.T) {
	keys := mkKeys(10000)
	bs := mkBackends(5)
	live := allAlive(bs)
	before := make(map[string]string, len(keys))
	for _, k := range keys {
		before[k] = rankOver(bs, live, k)[0].ID
	}

	t.Run("leave", func(t *testing.T) {
		gone := bs[2].ID
		live2 := allAlive(bs)
		live2[gone] = false
		moved := 0
		for _, k := range keys {
			now := rankOver(bs, live2, k)[0].ID
			if before[k] != now {
				moved++
				if before[k] != gone {
					t.Fatalf("key %s moved %s -> %s though %s left", k, before[k], now, gone)
				}
			}
		}
		exp := float64(len(keys)) / 5
		if f := float64(moved); f < exp*0.8 || f > exp*1.2 {
			t.Errorf("%d keys moved on leave, expected ~%.0f (1/N of the space)", moved, exp)
		}
	})

	t.Run("join", func(t *testing.T) {
		joined := mkBackends(6) // host5 is new
		live6 := allAlive(joined)
		newcomer := joined[5].ID
		moved := 0
		for _, k := range keys {
			now := rankOver(joined, live6, k)[0].ID
			if before[k] != now {
				moved++
				if now != newcomer {
					t.Fatalf("key %s moved %s -> %s though only %s joined", k, before[k], now, newcomer)
				}
			}
		}
		exp := float64(len(keys)) / 6
		if f := float64(moved); f < exp*0.8 || f > exp*1.2 {
			t.Errorf("%d keys moved on join, expected ~%.0f (1/(N+1) of the space)", moved, exp)
		}
	})
}

// TestRankDeterministic checks the full failover order is a pure
// function of (membership, key): identical across calls and independent
// of member declaration order.
func TestRankDeterministic(t *testing.T) {
	bs := mkBackends(5)
	live := allAlive(bs)
	for _, k := range mkKeys(50) {
		r1 := rankOver(bs, live, k)
		if len(r1) != 5 {
			t.Fatalf("rank dropped members: %d", len(r1))
		}
		// Reversed declaration order must not change the ranking.
		rev := make([]Backend, len(bs))
		for i, b := range bs {
			rev[len(bs)-1-i] = b
		}
		r2 := rankOver(rev, live, k)
		for i := range r1 {
			if r1[i].ID != r2[i].ID {
				t.Fatalf("rank depends on declaration order at %d: %s vs %s",
					i, r1[i].ID, r2[i].ID)
			}
		}
		// And the order must follow the scores strictly.
		for i := 1; i < len(r1); i++ {
			a, b := rendezvousScore(r1[i-1].ID, k), rendezvousScore(r1[i].ID, k)
			if a < b {
				t.Fatalf("rank not in descending score order at %d", i)
			}
		}
	}
}

// TestShardMapEpochAndPrev checks membership bookkeeping: epoch bumps
// only on real changes, and prevOwner names the pre-change owner of a
// rerouted key (the peer a cache fill should come from).
func TestShardMapEpochAndPrev(t *testing.T) {
	bs := mkBackends(3)
	m := newShardMap(bs)
	epoch0, live := m.snapshot()
	if epoch0 != 0 || len(live) != 3 {
		t.Fatalf("fresh map: epoch=%d live=%v", epoch0, live)
	}

	// Find a key owned by bs[0].
	var key string
	for _, k := range mkKeys(200) {
		if m.rank(k)[0].ID == bs[0].ID {
			key = k
			break
		}
	}
	if key == "" {
		t.Fatal("no key owned by backend 0 in sample")
	}

	if m.setAlive(bs[0].ID, true) {
		t.Fatal("no-op setAlive reported a change")
	}
	if !m.setAlive(bs[0].ID, false) {
		t.Fatal("ejection not reported as a change")
	}
	epoch1, _ := m.snapshot()
	if epoch1 != epoch0+1 {
		t.Fatalf("epoch %d after one change, want %d", epoch1, epoch0+1)
	}
	// The key now routes elsewhere, and prevOwner still names bs[0] —
	// exactly the fill-from peer... but bs[0] is dead, so the router
	// checks liveness before hinting. After bs[0] recovers, the rotation
	// means prevOwner reflects the set without it.
	if owner := m.rank(key)[0].ID; owner == bs[0].ID {
		t.Fatalf("ejected backend still owns %s", key)
	}
	prev, ok := m.prevOwner(key)
	if !ok || prev.ID != bs[0].ID {
		t.Fatalf("prevOwner = %v,%v want %s", prev, ok, bs[0].ID)
	}

	if !m.setAlive(bs[0].ID, true) {
		t.Fatal("re-admission not reported as a change")
	}
	if owner := m.rank(key)[0].ID; owner != bs[0].ID {
		t.Fatalf("re-admitted backend does not own its key again: %s", owner)
	}
	prev, ok = m.prevOwner(key)
	if !ok || prev.ID == bs[0].ID {
		t.Fatalf("prevOwner after recovery should be the interim owner, got %s", prev.ID)
	}
}

// TestShardMapPrevOwnerHistory is the rolling-restart case: a backend
// flaps (its keys detour through an interim owner, who warms them), and
// then an UNRELATED backend flaps before the key is next requested. A
// single-change memory would forget the interim owner — the fill hint
// degrades to a wasted probe plus a full re-solve — so prevOwner walks
// the bounded alive-set history to the most recent distinct owner.
func TestShardMapPrevOwnerHistory(t *testing.T) {
	bs := mkBackends(3)
	m := newShardMap(bs)

	var key string
	for _, k := range mkKeys(200) {
		if m.rank(k)[0].ID == bs[0].ID {
			key = k
			break
		}
	}
	if key == "" {
		t.Fatal("no key owned by backend 0 in sample")
	}

	// Flap the owner; whoever held the key meanwhile is the warm peer.
	m.setAlive(bs[0].ID, false)
	interim := m.rank(key)[0]
	m.setAlive(bs[0].ID, true)

	// The unrelated flip must involve neither the owner nor the interim
	// peer, so the key's ownership never changes during it.
	var other Backend
	for _, b := range bs {
		if b.ID != bs[0].ID && b.ID != interim.ID {
			other = b
		}
	}
	m.setAlive(other.ID, false)
	m.setAlive(other.ID, true)

	prev, ok := m.prevOwner(key)
	if !ok || prev.ID != interim.ID {
		t.Fatalf("prevOwner = %s,%v after overlapping changes, want interim owner %s",
			prev.ID, ok, interim.ID)
	}

	// And when the whole history agrees with the present, the returned
	// owner is the current one — which the router's prev != target check
	// turns into "no hint".
	fresh := newShardMap(bs)
	p2, ok := fresh.prevOwner(key)
	if !ok || p2.ID != bs[0].ID {
		t.Fatalf("quiescent prevOwner = %s,%v, want current owner %s", p2.ID, ok, bs[0].ID)
	}
}
