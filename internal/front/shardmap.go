// Package front implements janusfront, the consistent-hash sharding
// tier in front of N janusd backends.
//
// The canonical request key is already split into a budget-free
// function key (fnKey) plus budget fields, so the front routes every
// synthesis for the same function — any budget, any spelling — to the
// same backend. That shard affinity is what buys the per-node machinery
// its leverage at fleet scale: identical in-flight requests coalesce
// because they meet on one daemon, the result cache and the budget
// index see every budget variant of a function, and the path-memo
// warms per shard instead of per fleet.
//
// Membership is health-aware: a poller watches each backend's /healthz
// (which reports drain state and queue depth), ejects a backend after
// consecutive failures, and re-admits it on recovery. Routing uses
// rendezvous (highest-random-weight) hashing, so a membership change
// moves only the keys the changed backend owned (~1/N of the space) and
// every key has a deterministic fallback order. When a key's owner
// changes, the front hints the new owner at the previous one
// (X-Janus-Fill-From), and the new owner fills its cache from the
// peer's instead of re-solving — resharding must not stampede the
// solvers.
package front

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
	"sync"
)

// Backend is one routable janusd.
type Backend struct {
	// ID is the stable shard identity the rendezvous hash weighs. It is
	// derived from the backend URL (host:port), NOT the flag position,
	// so restarting the front with a reordered -backends list does not
	// remap the key space.
	ID string
	// URL is the daemon root, e.g. "http://10.0.0.7:7151".
	URL string
}

// prevAliveSets bounds the membership history kept for prevOwner. One
// previous alive-set would only cover a single membership change:
// during overlapping changes (a rolling restart flipping two backends
// across consecutive epochs) the one-back owner of a key can be a
// backend that never held it, wasting the warm-up probe. A few epochs
// of history let prevOwner walk back to the most recent *distinct*
// owner instead.
const prevAliveSets = 8

// shardMap is the health-aware rendezvous hash over the configured
// backends. It keeps the last few alive-sets across membership changes,
// so the router can name the previous owner of a key — the peer a
// resharded key's new owner should fill from.
type shardMap struct {
	mu      sync.Mutex
	members []Backend
	alive   map[string]bool   // by Backend.ID
	prevs   []map[string]bool // alive-sets before recent changes, newest first
	epoch   uint64            // bumped on every membership change
}

func newShardMap(members []Backend) *shardMap {
	m := &shardMap{
		members: append([]Backend(nil), members...),
		alive:   make(map[string]bool, len(members)),
	}
	// Start optimistic: every configured backend is routable until the
	// health poller says otherwise, so a cold front does not 503 its
	// first requests while the first poll round is in flight.
	for _, b := range members {
		m.alive[b.ID] = true
	}
	m.prevs = []map[string]bool{copyAlive(m.alive)}
	return m
}

func copyAlive(set map[string]bool) map[string]bool {
	out := make(map[string]bool, len(set))
	for k, v := range set {
		out[k] = v
	}
	return out
}

// setAlive updates one backend's membership, returning whether the map
// changed (and, if so, bumping the epoch and pushing the outgoing
// alive-set onto the bounded history).
func (m *shardMap) setAlive(id string, ok bool) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.alive[id] == ok {
		return false
	}
	m.prevs = append([]map[string]bool{copyAlive(m.alive)}, m.prevs...)
	if len(m.prevs) > prevAliveSets {
		m.prevs = m.prevs[:prevAliveSets]
	}
	m.alive[id] = ok
	m.epoch++
	return true
}

// snapshot returns the current epoch and per-backend liveness.
func (m *shardMap) snapshot() (uint64, map[string]bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]bool, len(m.alive))
	for k, v := range m.alive {
		out[k] = v
	}
	return m.epoch, out
}

// rank returns the healthy backends for key, owner first, in
// deterministic descending rendezvous weight — the failover order.
func (m *shardMap) rank(key string) []Backend {
	m.mu.Lock()
	defer m.mu.Unlock()
	return rankOver(m.members, m.alive, key)
}

// prevOwner returns the most recent previous owner of key that differs
// from its current owner, walking the bounded alive-set history newest
// first — the peer whose cache is plausibly warm after a reshard. When
// every remembered epoch agrees with the present (no reshard for this
// key within the history window), the current owner is returned and the
// caller's prev != target check suppresses the hint.
func (m *shardMap) prevOwner(key string) (Backend, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	var cur string
	if r := rankOver(m.members, m.alive, key); len(r) > 0 {
		cur = r[0].ID
	}
	var newest Backend
	found := false
	for _, set := range m.prevs {
		r := rankOver(m.members, set, key)
		if len(r) == 0 {
			continue
		}
		if !found {
			newest, found = r[0], true
		}
		if r[0].ID != cur {
			return r[0], true
		}
	}
	return newest, found
}

// rankOver orders the live members of set by rendezvous weight for key,
// highest first; ties (astronomically unlikely with 64-bit scores)
// break by ID so the order stays total and deterministic.
func rankOver(members []Backend, live map[string]bool, key string) []Backend {
	type scored struct {
		b Backend
		w uint64
	}
	sc := make([]scored, 0, len(members))
	for _, b := range members {
		if !live[b.ID] {
			continue
		}
		sc = append(sc, scored{b, rendezvousScore(b.ID, key)})
	}
	sort.Slice(sc, func(i, j int) bool {
		if sc[i].w != sc[j].w {
			return sc[i].w > sc[j].w
		}
		return sc[i].b.ID < sc[j].b.ID
	})
	out := make([]Backend, len(sc))
	for i, s := range sc {
		out[i] = s.b
	}
	return out
}

// rendezvousScore is the highest-random-weight score of (backend, key):
// the first 8 bytes of sha256(id || 0x00 || key). sha256 keeps the
// weights uniform for any ID/key shape (fnKeys are themselves sha256
// hex, but IDs are host:port strings), and the scorer must never change
// — every deployed front and every cached shard assignment depends on
// this exact function.
func rendezvousScore(id, key string) uint64 {
	h := sha256.New()
	h.Write([]byte(id))
	h.Write([]byte{0})
	h.Write([]byte(key))
	var d [sha256.Size]byte
	return binary.BigEndian.Uint64(h.Sum(d[:0])[:8])
}
