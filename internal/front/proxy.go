package front

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"

	"github.com/lattice-tools/janus/internal/obsv"
	"github.com/lattice-tools/janus/internal/service"
)

// maxProxyReqBody bounds inbound request payloads (the same bound
// janusd itself applies); maxProxyRespBody bounds buffered backend
// responses, which carry rendered lattices and so get a looser limit.
// A response over its bound is a proxy error — relaying a silently
// truncated body with the backend's 2xx status would hand the client
// corrupt JSON.
const (
	maxProxyReqBody      = 1 << 20
	maxProxyBatchReqBody = 4 << 20 // batches carry up to 64 PLA texts
	maxProxyRespBody     = 4 << 20
)

// jobIDSep joins the owning shard's ID and the backend-local job id in
// client-visible job ids ("localhost:7151~jab12cd-4"), so every poll,
// event stream, or trace fetch routes straight to the owning backend
// with no routing table — the id IS the route. '~' is URL-unreserved
// and appears in neither host:port IDs nor janusd job ids.
const jobIDSep = "~"

// proxyHTTP is the long-request client: no timeout (synthesis waits
// and SSE streams are bounded server-side / by the client connection),
// generous keep-alives toward the same few backends.
var proxyHTTP = &http.Client{
	Transport: &http.Transport{
		Proxy:               http.ProxyFromEnvironment,
		MaxIdleConns:        256,
		MaxIdleConnsPerHost: 64,
		IdleConnTimeout:     90 * time.Second,
	},
}

// errBodyTooLarge marks a backend response over maxProxyRespBody.
var errBodyTooLarge = fmt.Errorf("front: backend response exceeds %d bytes", maxProxyRespBody)

// readProxyBody buffers a backend response body, failing loudly when it
// exceeds the bound instead of truncating it.
func readProxyBody(body io.Reader) ([]byte, error) {
	data, err := io.ReadAll(io.LimitReader(body, maxProxyRespBody+1))
	if err != nil {
		return nil, err
	}
	if len(data) > maxProxyRespBody {
		return nil, errBodyTooLarge
	}
	return data, nil
}

// isDialError reports whether a round-trip error happened while
// establishing the connection — before any bytes could have reached the
// backend — which is the only failure mode where failing over to
// another backend cannot duplicate work already started.
func isDialError(err error) bool {
	var op *net.OpError
	return errors.As(err, &op) && op.Op == "dial"
}

// Handler returns the front tier's HTTP API — the same surface janusd
// serves, routed by function key:
//
//	POST /v1/synthesize         route to the key's owner (failover down the rank)
//	GET  /v1/jobs/{id}          routed by the shard embedded in the job id
//	GET  /v1/jobs/{id}/events   SSE/long-poll passthrough to the owning shard
//	GET  /v1/jobs/{id}/trace    backend trace stitched under the front's own spans
//	GET  /v1/stats              merged backend stats + the front's own block
//	GET  /metrics/prom          fleet Prometheus view (front + backends, backend-labeled)
//	GET  /healthz               front health (503 when no backend is routable)
//	/metrics, /debug/…          the obsv debug surface
func (f *Front) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/synthesize", f.instrument("synthesize", slog.LevelInfo, f.handleSynthesize))
	mux.HandleFunc("POST /v1/synthesize/batch", f.instrument("synthesize_batch", slog.LevelInfo, f.handleSynthesizeBatch))
	mux.HandleFunc("GET /v1/jobs/{id}", f.instrument("jobs", slog.LevelInfo, f.handleJob))
	mux.HandleFunc("GET /v1/jobs/{id}/events", f.instrument("events", slog.LevelDebug, f.handleJobEvents))
	mux.HandleFunc("GET /v1/jobs/{id}/trace", f.instrument("trace", slog.LevelInfo, f.handleJobTrace))
	mux.HandleFunc("GET /v1/stats", f.instrument("stats", slog.LevelDebug, f.handleStats))
	mux.HandleFunc("GET /metrics/prom", f.instrument("metrics_prom", slog.LevelDebug, f.handleMetricsProm))
	mux.HandleFunc("GET /healthz", f.instrument("healthz", slog.LevelDebug, f.handleHealthz))
	mux.Handle("/metrics", obsv.DebugHandler(nil))
	mux.Handle("/debug/", obsv.DebugHandler(nil))
	return mux
}

// statusWriter captures the status code for access logs; Unwrap lets
// http.ResponseController reach the connection's Flusher for SSE.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(c int) {
	w.code = c
	w.ResponseWriter.WriteHeader(c)
}

func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// instrument resolves the request id (honoring a plausible inbound
// X-Request-Id, minting otherwise — the same id is forwarded to the
// backend, so one id names the request across the whole tier) and
// writes one access log line.
func (f *Front) instrument(endpoint string, lvl slog.Level, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		id := obsv.SanitizeRequestID(r.Header.Get("X-Request-Id"))
		if id == "" {
			id = f.newRequestID()
		}
		w.Header().Set("X-Request-Id", id)
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		h(sw, r.WithContext(obsv.ContextWithRequestID(r.Context(), id)))
		d := time.Since(start)
		hProxyNS.Observe(int64(d))
		f.log.Log(r.Context(), lvl, "http",
			"endpoint", endpoint, "method", r.Method, "path", r.URL.Path,
			"status", sw.code, "request_id", id, "dur_ms", float64(d)/1e6)
	}
}


// handleSynthesize routes a synthesis to its function key's owner, with
// deterministic failover down the rendezvous rank and Retry-After-paced
// retries on backpressure. When the key's owner changed since the last
// membership change, the forward carries an X-Janus-Fill-From hint
// naming the previous owner so the new one can fill its cache instead
// of re-solving.
func (f *Front) handleSynthesize(w http.ResponseWriter, r *http.Request) {
	reqID := obsv.RequestIDFromContext(r.Context())
	f.nRouted.Add(1)
	mRequests.Inc()
	var req service.Request
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxProxyReqBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, err.Error(), reqID)
		return
	}
	fnKey, err := service.FnKeyOf(req)
	if err != nil {
		// The backend would reject it identically; failing here keeps bad
		// payloads off the network and gives the same 400 shape.
		writeError(w, http.StatusBadRequest, err.Error(), reqID)
		return
	}
	body, err := json.Marshal(req)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error(), reqID)
		return
	}
	f.routeSynthesize(w, r, "/v1/synthesize", fnKey, body, req.Async, true, reqID)
}

// handleSynthesizeBatch routes a multi-function batch by its canonical
// batch key — the same rendezvous hash over the same keyspace as single
// requests (batch keys are domain-prefixed, so they never collide with
// single-function keys), giving an identical batch a sticky owner whose
// coalescing and cache apply. Batches skip the peer-fill hint: the
// backend's batch path does not consult peers, and the per-function
// entries a finished batch unpacks feed the single-function fill
// machinery instead.
func (f *Front) handleSynthesizeBatch(w http.ResponseWriter, r *http.Request) {
	reqID := obsv.RequestIDFromContext(r.Context())
	f.nRouted.Add(1)
	mRequests.Inc()
	var req service.BatchRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxProxyBatchReqBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, err.Error(), reqID)
		return
	}
	batchKey, err := service.BatchKeyOf(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error(), reqID)
		return
	}
	body, err := json.Marshal(req)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error(), reqID)
		return
	}
	f.routeSynthesize(w, r, "/v1/synthesize/batch", batchKey, body, req.Async, false, reqID)
}

// routeSynthesize is the shared forwarding tail of both synthesize
// routes: rank the key's owners, walk the rank with failover, and relay
// the first answer. wantFill enables the reshard cache-fill hint (single
// requests only).
//
// The walk is recorded as the front's half of the fleet trace: a Route
// root span (owner, fn_key, tenant) with one Attempt child per backend
// tried, each carrying the X-Janus-Trace context the backend roots its
// Job span under. The request id doubles as the trace id — it already
// obeys the trace-id charset and names the request end to end. The
// finished tree is retained keyed by the client-visible job id, so
// GET /v1/jobs/{id}/trace can stitch it onto the backend's stream.
func (f *Front) routeSynthesize(w http.ResponseWriter, r *http.Request, path, key string, body []byte, async, wantFill bool, reqID string) {
	w.Header().Set("X-Janus-Fn-Key", key)
	tenant := r.Header.Get("X-Janus-Tenant")

	var fbuf *obsv.TraceBuffer
	var route *obsv.Span // nil-safe when tracing is disabled
	if f.traces != nil {
		fbuf = obsv.NewTraceBuffer(0, 0)
		tracer := obsv.NewTracer(fbuf)
		tracer.SetTrace(reqID, "front")
		route = obsv.Start(tracer, nil, "Route")
		route.SetStr("fn_key", fnPrefix(key))
		if tenant != "" {
			route.SetStr("tenant", tenant)
		}
	}

	rank := f.shards.rank(key)
	if len(rank) == 0 {
		f.nNoBackend.Add(1)
		mNoBackend.Inc()
		writeError(w, http.StatusServiceUnavailable, "front: no healthy backends", reqID)
		return
	}
	route.SetStr("owner", rank[0].ID)
	route.SetInt("rank", int64(len(rank)))
	prev, hasPrev := f.shards.prevOwner(key)
	_, live := f.shards.snapshot()

	jobID, outcome := "", "error"
	var lastErr error
	for attempt, b := range rank {
		if attempt > 0 {
			f.nFailovers.Add(1)
			mFailovers.Inc()
			f.log.Warn("failover", "fn_key", fnPrefix(key), "request_id", reqID,
				"to", b.ID, "attempt", attempt, "err", errString(lastErr))
		}
		// Hint at the previous owner when it is a different, live backend
		// — exactly the reshard case where the target's cache is cold but
		// a peer's is warm.
		fill := ""
		if wantFill && hasPrev && prev.ID != b.ID && live[prev.ID] {
			fill = prev.URL
		}
		asp := route.Child("Attempt")
		asp.SetStr("backend", b.ID)
		if fill != "" {
			asp.SetStr("fill_from", fill)
		}
		done, id, err := f.forwardSynthesize(r.Context(), w, b, path, body, reqID, fill, tenant, async, asp)
		if err != nil {
			asp.SetStr("error", errString(err))
		}
		asp.End()
		if done {
			jobID, outcome = id, "relayed"
			break
		}
		lastErr = err
	}
	if outcome != "relayed" {
		mProxyErrors.Inc()
		writeError(w, http.StatusBadGateway,
			fmt.Sprintf("front: all backends failed: %v", lastErr), reqID)
	}
	route.SetStr("outcome", outcome)
	route.End()
	if jobID != "" && fbuf != nil {
		// Keyed by the shard-qualified id the client polls with, so the
		// trace endpoint finds the front half without a routing table.
		f.traces.put(jobID, fbuf.Bytes())
	}
}

// forwardSynthesize tries one backend, pacing bounded 429 retries by
// its Retry-After. It reports done=true when a response (success OR a
// passthrough error like 400/429) was written; false asks the caller to
// fail over to the next backend in rank.
//
// Failover is unconditional only while the connection is being
// established — the backend saw nothing, so a re-send is free. Once the
// request may have been delivered, re-sending an async synthesize would
// start a second long-running job whose id the client never learns, so
// post-send errors on async requests answer 502 and leave the retry
// decision to the client. Sync requests still fail over: the abandoned
// attempt may solve on in the background (its result lands in that
// backend's cache, so the work is not wasted), and the client gets
// exactly one answer.
func (f *Front) forwardSynthesize(ctx context.Context, w http.ResponseWriter, b Backend, path string, body []byte, reqID, fill, tenant string, async bool, asp *obsv.Span) (bool, string, error) {
	var lastErr error
	for try := 0; ; try++ {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost,
			b.URL+path, bytes.NewReader(body))
		if err != nil {
			return false, "", err
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("X-Request-Id", reqID)
		if !f.cfg.DisableTracePropagation {
			// The backend roots its Job span under this attempt, so a
			// stitched trace shows exactly which forward did the work.
			if tc := (obsv.TraceContext{TraceID: reqID, Parent: asp.ID()}); tc.Valid() {
				req.Header.Set(obsv.TraceHeader, tc.String())
			}
		}
		if tenant != "" {
			// The front is tenant-transparent: the scheduling share is a
			// backend decision, the front just relays the claim.
			req.Header.Set("X-Janus-Tenant", tenant)
		}
		if fill != "" {
			req.Header.Set("X-Janus-Fill-From", fill)
			f.nFillHints.Add(1)
			mFillHints.Inc()
			fill = "" // one hint per request is enough; retries skip it
		}
		resp, err := proxyHTTP.Do(req)
		if err != nil {
			if isDialError(err) || !async {
				return false, "", err
			}
			mProxyErrors.Inc()
			writeError(w, http.StatusBadGateway,
				fmt.Sprintf("front: %s failed after accepting the request: %v", b.ID, err), reqID)
			return true, "", err
		}
		data, err := readProxyBody(resp.Body)
		resp.Body.Close()
		if err != nil {
			if errors.Is(err, errBodyTooLarge) {
				// Every backend would produce the same over-size answer for
				// this function; failing over just re-solves it for nothing.
				mProxyErrors.Inc()
				writeError(w, http.StatusBadGateway, err.Error(), reqID)
				return true, "", err
			}
			if !async {
				return false, "", err
			}
			mProxyErrors.Inc()
			writeError(w, http.StatusBadGateway,
				fmt.Sprintf("front: %s failed after accepting the request: %v", b.ID, err), reqID)
			return true, "", err
		}
		switch {
		case resp.StatusCode == http.StatusTooManyRequests && try < f.cfg.Retry429:
			f.nRetries.Add(1)
			mRetries429.Inc()
			wait := service.ParseRetryAfter(resp.Header.Get("Retry-After"), time.Now())
			if wait <= 0 {
				wait = 200 * time.Millisecond
			}
			if wait > f.cfg.RetryAfterCap {
				wait = f.cfg.RetryAfterCap
			}
			rsp := asp.Child("Retry429")
			rsp.SetInt("wait_ms", wait.Milliseconds())
			select {
			case <-time.After(wait):
				rsp.End()
				continue
			case <-ctx.Done():
				rsp.End()
				return false, "", ctx.Err()
			}
		case resp.StatusCode >= 500:
			// The backend is there but unwell (draining 503, internal
			// error): deterministic fallback takes over.
			lastErr = fmt.Errorf("%s: %s", b.ID, strings.TrimSpace(firstLine(data)))
			return false, "", lastErr
		default:
			// 2xx, 400s, or an exhausted 429: the client's answer. Rewrite
			// the job id so follow-ups route by shard.
			return true, f.writeProxied(w, resp, data, b), nil
		}
	}
}

// writeProxied relays a backend response, rewriting job ids to embed
// the owning shard; the rewritten id (or "") is returned so the caller
// can key the request's front trace by it. Unparseable bodies relay
// byte-for-byte.
func (f *Front) writeProxied(w http.ResponseWriter, resp *http.Response, data []byte, b Backend) string {
	copyHeader(w, resp, "Retry-After")
	copyHeader(w, resp, "X-Janus-Fn-Key")
	var jr service.Response
	if json.Unmarshal(data, &jr) == nil {
		if jr.JobID != "" {
			jr.JobID = b.ID + jobIDSep + jr.JobID
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(resp.StatusCode)
		json.NewEncoder(w).Encode(jr) //nolint:errcheck // client gone is not actionable
		return jr.JobID
	}
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	w.WriteHeader(resp.StatusCode)
	w.Write(data) //nolint:errcheck // client gone is not actionable
	return ""
}

// splitJobID resolves a front job id to its owning backend and the
// backend-local id.
func (f *Front) splitJobID(id string) (*backendState, string, bool) {
	i := strings.LastIndex(id, jobIDSep)
	if i <= 0 || i == len(id)-1 {
		return nil, "", false
	}
	st, ok := f.byID[id[:i]]
	return st, id[i+1:], ok
}

// handleJob proxies a poll to the shard embedded in the job id. The
// backend is tried even when marked unhealthy: job state lives only
// there, and a probe-lagged recovery should not 404 a real job.
func (f *Front) handleJob(w http.ResponseWriter, r *http.Request) {
	reqID := obsv.RequestIDFromContext(r.Context())
	st, local, ok := f.splitJobID(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "front: unknown shard in job id", reqID)
		return
	}
	f.proxyGet(w, r, st.backend, "/v1/jobs/"+local, reqID, true)
}

// handleJobTrace serves a job's fleet trace: the backend's JSONL stream
// stitched under the front's own Route/Attempt spans when the front
// still holds them (one trace id, the backend Job re-rooted under the
// attempt that carried it — obsv.StitchTraces). Without a front half —
// tracing disabled, or the ring evicted it — the backend trace passes
// through unchanged, exactly the old behavior.
func (f *Front) handleJobTrace(w http.ResponseWriter, r *http.Request) {
	reqID := obsv.RequestIDFromContext(r.Context())
	full := r.PathValue("id")
	st, local, ok := f.splitJobID(full)
	if !ok {
		writeError(w, http.StatusNotFound, "front: unknown shard in job id", reqID)
		return
	}
	fb, hasFront := f.traces.get(full)
	if !hasFront {
		f.proxyGet(w, r, st.backend, "/v1/jobs/"+local+"/trace", reqID, false)
		return
	}
	b := st.backend
	req, err := http.NewRequestWithContext(r.Context(), http.MethodGet,
		b.URL+"/v1/jobs/"+local+"/trace", nil)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error(), reqID)
		return
	}
	req.Header.Set("X-Request-Id", reqID)
	resp, err := proxyHTTP.Do(req)
	if err != nil {
		mProxyErrors.Inc()
		writeError(w, http.StatusBadGateway, fmt.Sprintf("front: %s unreachable: %v", b.ID, err), reqID)
		return
	}
	defer resp.Body.Close()
	data, err := readProxyBody(resp.Body)
	if err != nil {
		mProxyErrors.Inc()
		writeError(w, http.StatusBadGateway, err.Error(), reqID)
		return
	}
	if resp.StatusCode != http.StatusOK {
		// The backend has no trace (404/409/410): relay its verdict — a
		// front-only half would claim a fleet trace that lost its work.
		if ct := resp.Header.Get("Content-Type"); ct != "" {
			w.Header().Set("Content-Type", ct)
		}
		w.WriteHeader(resp.StatusCode)
		w.Write(data) //nolint:errcheck // client gone is not actionable
		return
	}
	stitched, err := obsv.StitchTraces(fb, data)
	if err != nil {
		// A malformed backend stream still reaches the client raw; the
		// stitch is best-effort decoration.
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.WriteHeader(http.StatusOK)
		w.Write(data) //nolint:errcheck // client gone is not actionable
		return
	}
	mTracesStitched.Inc()
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	w.Write(stitched) //nolint:errcheck // client gone is not actionable
}

// proxyGet relays one GET; rewrite re-embeds the shard in job ids.
func (f *Front) proxyGet(w http.ResponseWriter, r *http.Request, b Backend, path, reqID string, rewrite bool) {
	req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, b.URL+path, nil)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error(), reqID)
		return
	}
	req.Header.Set("X-Request-Id", reqID)
	resp, err := proxyHTTP.Do(req)
	if err != nil {
		mProxyErrors.Inc()
		writeError(w, http.StatusBadGateway, fmt.Sprintf("front: %s unreachable: %v", b.ID, err), reqID)
		return
	}
	defer resp.Body.Close()
	data, err := readProxyBody(resp.Body)
	if err != nil {
		mProxyErrors.Inc()
		writeError(w, http.StatusBadGateway, err.Error(), reqID)
		return
	}
	if rewrite {
		f.writeProxied(w, resp, data, b)
		return
	}
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	w.WriteHeader(resp.StatusCode)
	w.Write(data) //nolint:errcheck // client gone is not actionable
}

// handleJobEvents proxies a job's progress stream. The ?wait= long-poll
// form buffers one JSON page (rewriting the job id); the SSE form
// streams chunk by chunk with an explicit flush per read so events
// cross the proxy as they happen, honoring Last-Event-ID for resume.
func (f *Front) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	reqID := obsv.RequestIDFromContext(r.Context())
	st, local, ok := f.splitJobID(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "front: unknown shard in job id", reqID)
		return
	}
	b := st.backend
	url := b.URL + "/v1/jobs/" + local + "/events"
	if q := r.URL.RawQuery; q != "" {
		url += "?" + q
	}
	req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, url, nil)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error(), reqID)
		return
	}
	req.Header.Set("X-Request-Id", reqID)
	if lei := r.Header.Get("Last-Event-ID"); lei != "" {
		req.Header.Set("Last-Event-ID", lei)
	}
	resp, err := proxyHTTP.Do(req)
	if err != nil {
		mProxyErrors.Inc()
		writeError(w, http.StatusBadGateway, fmt.Sprintf("front: %s unreachable: %v", b.ID, err), reqID)
		return
	}
	defer resp.Body.Close()

	if r.URL.Query().Has("wait") {
		// Long-poll: one buffered JSON page.
		data, err := readProxyBody(resp.Body)
		if err != nil {
			mProxyErrors.Inc()
			writeError(w, http.StatusBadGateway, err.Error(), reqID)
			return
		}
		var page service.EventsPage
		if resp.StatusCode == http.StatusOK && json.Unmarshal(data, &page) == nil {
			page.JobID = b.ID + jobIDSep + page.JobID
			writeJSON(w, http.StatusOK, page)
			return
		}
		if ct := resp.Header.Get("Content-Type"); ct != "" {
			w.Header().Set("Content-Type", ct)
		}
		w.WriteHeader(resp.StatusCode)
		w.Write(data) //nolint:errcheck // client gone is not actionable
		return
	}

	// SSE: stream through, flushing every read so a proxied watcher sees
	// events with the same latency as a direct one.
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(resp.StatusCode)
	fl := http.NewResponseController(w)
	fl.Flush() //nolint:errcheck // no streaming support surfaces on the copy below
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return
			}
			fl.Flush() //nolint:errcheck // client gone surfaces via r.Context
		}
		if err != nil {
			return
		}
	}
}

// Stats is the front's /v1/stats body: its own routing state, one row
// per backend, and fleet totals.
type Stats struct {
	Front    FrontInfo       `json:"front"`
	Backends []BackendStatus `json:"backends"`
	Totals   Totals          `json:"totals"`
}

// FrontInfo is the front tier's own state and counters.
type FrontInfo struct {
	Epoch           uint64 `json:"epoch"`
	Backends        int    `json:"backends"`
	HealthyBackends int    `json:"healthy_backends"`
	Routed          int64  `json:"routed_total"`
	Failovers       int64  `json:"failovers_total"`
	Retries429      int64  `json:"retries_429_total"`
	FillHints       int64  `json:"fill_hints_total"`
	NoBackend       int64  `json:"no_backend_total"`
	TracedJobs      int    `json:"traced_jobs"`
	TracesStitched  int64  `json:"traces_stitched_total"`
	// StatsLaggards names the backends that missed their per-backend
	// deadline (StatsTimeout) in this stats fan-out: their rows carry the
	// poller's cached view instead of live numbers, and the totals
	// exclude them. Only set on the /v1/stats live merge.
	StatsLaggards []string `json:"stats_laggards,omitempty"`
}

// BackendStatus is one backend's view from the front.
type BackendStatus struct {
	ID              string `json:"id"`
	URL             string `json:"url"`
	Healthy         bool   `json:"healthy"`
	Draining        bool   `json:"draining,omitempty"`
	ConsecFailures  int    `json:"consecutive_failures,omitempty"`
	MembershipFlips int    `json:"membership_flips,omitempty"`
	QueueDepth      int    `json:"queue_depth"`
	QueueCapacity   int    `json:"queue_capacity,omitempty"`
	Error           string `json:"error,omitempty"`
	// StatsMS is how long this backend's share of the live stats fan-out
	// took (only on the stats endpoint; the laggard diagnosis in numbers).
	StatsMS float64 `json:"stats_ms,omitempty"`
	// Stats is the backend's own /v1/stats body (only on the stats
	// endpoint's live fan-out; nil when the backend was unreachable).
	Stats *service.Stats `json:"stats,omitempty"`
}

// Totals sums the reachable backends' queue capacity and load. Tenants
// merges the per-backend scheduler rows by tenant name — counters and
// depths sum; weight and share are per-backend configuration, so the
// first reachable backend's values stand for the fleet (deployments are
// expected to configure tenancy uniformly).
type Totals struct {
	QueueDepth    int                   `json:"queue_depth"`
	QueueCapacity int                   `json:"queue_capacity"`
	Running       int64                 `json:"running_jobs"`
	Workers       int                   `json:"workers"`
	DiskEntries   int                   `json:"disk_entries"`
	Tenants       []service.TenantStats `json:"tenants,omitempty"`
}

// statsSnapshot builds the front-and-membership view from the poller's
// cached state (no network).
func (f *Front) statsSnapshot() Stats {
	epoch, live := f.shards.snapshot()
	out := Stats{}
	healthy := 0
	for _, st := range f.states {
		st.mu.Lock()
		bs := BackendStatus{
			ID: st.backend.ID, URL: st.backend.URL,
			Healthy: live[st.backend.ID], Draining: st.draining,
			ConsecFailures: st.fails, MembershipFlips: st.flips,
			QueueDepth: st.queueDepth, QueueCapacity: st.queueCap,
			Error: st.lastErr,
		}
		st.mu.Unlock()
		if bs.Healthy {
			healthy++
		}
		out.Backends = append(out.Backends, bs)
	}
	traced := 0
	if f.traces != nil {
		f.traces.mu.Lock()
		traced = len(f.traces.order)
		f.traces.mu.Unlock()
	}
	out.Front = FrontInfo{
		Epoch: epoch, Backends: len(f.states), HealthyBackends: healthy,
		Routed: f.nRouted.Load(), Failovers: f.nFailovers.Load(),
		Retries429: f.nRetries.Load(), FillHints: f.nFillHints.Load(),
		NoBackend: f.nNoBackend.Load(),
		TracedJobs: traced, TracesStitched: mTracesStitched.Value(),
	}
	return out
}

// handleStats merges a live fan-out of every backend's /v1/stats into
// the front's own snapshot. Each backend gets its own deadline
// (StatsTimeout), so one stalled member delays the merge by at most
// that much; members that miss it are named in front.stats_laggards and
// keep the poller's cached row.
func (f *Front) handleStats(w http.ResponseWriter, r *http.Request) {
	out := f.statsSnapshot()
	var wg sync.WaitGroup
	stats := make([]*service.Stats, len(f.states))
	durs := make([]time.Duration, len(f.states))
	for i, st := range f.states {
		wg.Add(1)
		go func(i int, st *backendState) {
			defer wg.Done()
			bctx, cancel := context.WithTimeout(r.Context(), f.cfg.StatsTimeout)
			defer cancel()
			t0 := time.Now()
			s, err := st.client.ServerStats(bctx)
			durs[i] = time.Since(t0)
			if err == nil {
				stats[i] = s
			}
		}(i, st)
	}
	wg.Wait()
	for i, s := range stats {
		out.Backends[i].StatsMS = float64(durs[i]) / 1e6
		if s == nil {
			out.Front.StatsLaggards = append(out.Front.StatsLaggards, f.states[i].backend.ID)
			mStatsLaggards.Inc()
		}
	}
	byTenant := map[string]*service.TenantStats{}
	var tenantOrder []string
	for i, s := range stats {
		if s == nil {
			continue
		}
		out.Backends[i].Stats = s
		out.Backends[i].QueueDepth = s.QueueDepth
		out.Backends[i].QueueCapacity = s.QueueCapacity
		out.Totals.QueueDepth += s.QueueDepth
		out.Totals.QueueCapacity += s.QueueCapacity
		out.Totals.Running += s.Running
		out.Totals.Workers += s.Workers
		out.Totals.DiskEntries += s.DiskEntries
		if s.Scheduler == nil {
			continue
		}
		for _, ts := range s.Scheduler.Tenants {
			agg, ok := byTenant[ts.Name]
			if !ok {
				// Weight/share/caps are per-backend configuration; the first
				// reachable backend's values stand for the (uniform) fleet.
				cp := ts
				byTenant[ts.Name] = &cp
				tenantOrder = append(tenantOrder, ts.Name)
				continue
			}
			agg.QueueDepth += ts.QueueDepth
			agg.InFlight += ts.InFlight
			agg.Admitted += ts.Admitted
			agg.Dispatched += ts.Dispatched
			agg.Completed += ts.Completed
			agg.Shed += ts.Shed
		}
	}
	for _, name := range tenantOrder {
		out.Totals.Tenants = append(out.Totals.Tenants, *byTenant[name])
	}
	writeJSON(w, http.StatusOK, out)
}

// handleMetricsProm serves the fleet Prometheus view: the front's own
// registry next to every reachable backend's snapshot tagged
// backend="id", merged into one exposition (one # TYPE line per family
// — obsv.WriteFleetProm). The fan-out mirrors handleStats: per-backend
// deadline, unreachable members simply contribute no series this
// scrape (Prometheus treats the gap as staleness, which is the truth).
func (f *Front) handleMetricsProm(w http.ResponseWriter, r *http.Request) {
	var wg sync.WaitGroup
	backendSnaps := make([]*obsv.Snapshot, len(f.states))
	for i, st := range f.states {
		wg.Add(1)
		go func(i int, st *backendState) {
			defer wg.Done()
			bctx, cancel := context.WithTimeout(r.Context(), f.cfg.StatsTimeout)
			defer cancel()
			s, err := st.client.Metrics(bctx)
			if err == nil {
				backendSnaps[i] = s
			}
		}(i, st)
	}
	wg.Wait()
	snaps := []obsv.LabeledSnapshot{{Snapshot: obsv.Default.Snapshot()}}
	for i, s := range backendSnaps {
		if s == nil {
			continue
		}
		snaps = append(snaps, obsv.LabeledSnapshot{
			Snapshot: *s,
			Labels:   []string{"backend", f.states[i].backend.ID},
		})
	}
	w.Header().Set("Content-Type", obsv.PromContentType)
	obsv.WriteFleetProm(w, snaps) //nolint:errcheck // client gone is not actionable
}

// handleHealthz answers from the poller's cached state: 200 while at
// least one backend is routable, 503 otherwise — a front with no
// backends must look down to ITS load balancer.
func (f *Front) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	out := f.statsSnapshot()
	code := http.StatusOK
	if out.Front.HealthyBackends == 0 {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, out)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v) //nolint:errcheck // client gone is not actionable
}

func writeError(w http.ResponseWriter, code int, msg, reqID string) {
	writeJSON(w, code, service.Response{Status: service.StatusError, Error: msg, RequestID: reqID})
}

// copyHeader relays one named header from a backend response when set.
func copyHeader(w http.ResponseWriter, resp *http.Response, name string) {
	if v := resp.Header.Get(name); v != "" {
		w.Header().Set(name, v)
	}
}

// fnPrefix shortens a function key for logs.
func fnPrefix(k string) string {
	if len(k) > 12 {
		return k[:12]
	}
	return k
}

func errString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

func firstLine(data []byte) string {
	s := string(data)
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		s = s[:i]
	}
	if len(s) > 200 {
		s = s[:200]
	}
	return s
}
