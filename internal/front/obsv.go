package front

import "github.com/lattice-tools/janus/internal/obsv"

// Front-tier metrics, in the process-wide registry under janus_front_*
// so one /metrics scrape on the front shows routing health next to the
// client-visible latency histogram.
var (
	mRequests          = obsv.Default.Counter("janus_front_requests_total")
	mFailovers         = obsv.Default.Counter("janus_front_failovers_total")
	mRetries429        = obsv.Default.Counter("janus_front_retries_429_total")
	mFillHints         = obsv.Default.Counter("janus_front_fill_hints_total")
	mNoBackend         = obsv.Default.Counter("janus_front_no_backend_total")
	mProxyErrors       = obsv.Default.Counter("janus_front_proxy_errors_total")
	mTracesStitched    = obsv.Default.Counter("janus_front_traces_stitched_total")
	mStatsLaggards     = obsv.Default.Counter("janus_front_stats_laggards_total")
	mMembershipChanges = obsv.Default.Counter("janus_front_membership_changes_total")
	gBackendsTotal     = obsv.Default.Gauge("janus_front_backends_total")
	gBackendsHealthy   = obsv.Default.Gauge("janus_front_backends_healthy")
	hProxyNS           = obsv.Default.Histogram("janus_front_proxy_ns")
)
