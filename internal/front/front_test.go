package front

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/lattice-tools/janus/internal/service"
)

// testBackend is one real janusd (service + HTTP) for front tests.
type testBackend struct {
	srv *service.Server
	ts  *httptest.Server
}

func startBackend(t *testing.T, cacheDir string) *testBackend {
	t.Helper()
	srv, err := service.NewServer(service.Config{Workers: 2, CacheDir: cacheDir})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	return &testBackend{srv: srv, ts: ts}
}

// startFront builds a front over the given backends with a poll
// interval long enough that tests control membership explicitly (the
// immediate first round still runs).
func startFront(t *testing.T, backends ...*testBackend) (*Front, *service.Client) {
	t.Helper()
	urls := make([]string, len(backends))
	for i, b := range backends {
		urls[i] = b.ts.URL
	}
	// Peer cache fill only follows hints into the configured allowlist,
	// so each backend gets the fleet list — as -peers would in prod.
	for _, b := range backends {
		b.srv.SetPeers(urls...)
	}
	f, err := New(Config{Backends: urls, HealthInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(f.Close)
	fts := httptest.NewServer(f.Handler())
	t.Cleanup(fts.Close)
	return f, service.NewClient(fts.URL)
}

// pla returns a small distinct single-output function per index.
func pla(i int) string {
	return fmt.Sprintf(".i 4\n.o 1\n%04b 1\n.e\n", i&15)
}

// ownerOf resolves which configured backend currently owns a request.
func ownerOf(t *testing.T, f *Front, req service.Request) string {
	t.Helper()
	key, err := service.FnKeyOf(req)
	if err != nil {
		t.Fatal(err)
	}
	r := f.shards.rank(key)
	if len(r) == 0 {
		t.Fatal("empty rank")
	}
	return r[0].ID
}

// TestFrontAffinity: the same function routed twice through the front
// lands on the same backend — the second answer is a cache hit — and
// every answer carries its fn_key.
func TestFrontAffinity(t *testing.T) {
	b1 := startBackend(t, "")
	b2 := startBackend(t, "")
	_, c := startFront(t, b1, b2)

	ctx := context.Background()
	for i := 0; i < 4; i++ {
		req := service.Request{PLA: pla(i), TimeoutMS: 60_000}
		first, err := c.Synthesize(ctx, req)
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if first.Status != service.StatusDone {
			t.Fatalf("request %d: status %s", i, first.Status)
		}
		if first.FnKey == "" {
			t.Fatalf("request %d: no fn_key in body", i)
		}
		second, err := c.Synthesize(ctx, req)
		if err != nil {
			t.Fatalf("repeat %d: %v", i, err)
		}
		if second.Cached == "" {
			t.Fatalf("repeat %d missed the cache — shard affinity broken (cached=%q)",
				i, second.Cached)
		}
	}
}

// TestFrontFailover: with one backend gone (before the poller notices),
// requests owned by it fail over to the survivor with zero client
// errors.
func TestFrontFailover(t *testing.T) {
	b1 := startBackend(t, "")
	b2 := startBackend(t, "")
	f, c := startFront(t, b1, b2)

	// Find a request owned by b2, then kill b2's listener.
	deadID, _ := BackendID(b2.ts.URL)
	var req service.Request
	found := false
	for i := 0; i < 64; i++ {
		req = service.Request{PLA: pla(i), TimeoutMS: 60_000}
		if ownerOf(t, f, req) == deadID {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no sampled function owned by backend 2")
	}
	b2.ts.Close()

	resp, err := c.Synthesize(context.Background(), req)
	if err != nil {
		t.Fatalf("failover request failed: %v", err)
	}
	if resp.Status != service.StatusDone {
		t.Fatalf("failover status %s", resp.Status)
	}
	if f.nFailovers.Load() == 0 {
		t.Fatal("failover not counted")
	}
}

// TestFrontPeerFill is the reshard scenario end to end: a key's owner
// flaps, ownership moves home again, and the (cold) owner fills from
// the interim owner's cache instead of re-synthesizing.
func TestFrontPeerFill(t *testing.T) {
	b1 := startBackend(t, "")
	b2 := startBackend(t, "")
	f, c := startFront(t, b1, b2)

	id1, _ := BackendID(b1.ts.URL)
	id2, _ := BackendID(b2.ts.URL)

	// A request owned by b1 under the full map.
	var req service.Request
	found := false
	for i := 0; i < 64; i++ {
		req = service.Request{PLA: pla(i), TimeoutMS: 60_000}
		if ownerOf(t, f, req) == id1 {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no sampled function owned by backend 1")
	}

	// Warm the NON-owner's cache directly (this is the state a real
	// outage leaves behind: while b1 was down, b2 owned and solved it).
	if _, err := service.NewClient(b2.ts.URL).Synthesize(context.Background(), req); err != nil {
		t.Fatal(err)
	}

	// Flap b1: eject and re-admit. After the second membership change the
	// previous alive-set has b1 dead, so the key's previous owner is b2.
	if !f.shards.setAlive(id1, false) || !f.shards.setAlive(id1, true) {
		t.Fatal("membership flap not registered")
	}
	if got := ownerOf(t, f, req); got != id1 {
		t.Fatalf("key did not move home: owner %s", got)
	}

	resp, err := c.Synthesize(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Cached != "peer" {
		t.Fatalf("cached = %q, want \"peer\" (fill hint not honored)", resp.Cached)
	}
	if f.nFillHints.Load() == 0 {
		t.Fatal("fill hint not counted")
	}
	_ = id2
}

// TestFrontOversizeResponse: a backend response over the proxy's
// buffer bound must surface as a 502, never as a silently truncated
// body relayed under the backend's 2xx status.
func TestFrontOversizeResponse(t *testing.T) {
	huge := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/synthesize" {
			w.WriteHeader(http.StatusOK)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		chunk := bytes.Repeat([]byte{'x'}, 64<<10)
		for written := 0; written <= maxProxyRespBody; written += len(chunk) {
			if _, err := w.Write(chunk); err != nil {
				return
			}
		}
	}))
	defer huge.Close()

	f, err := New(Config{Backends: []string{huge.URL}, HealthInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(f.Close)
	fts := httptest.NewServer(f.Handler())
	t.Cleanup(fts.Close)

	_, err = service.NewClient(fts.URL).Synthesize(context.Background(),
		service.Request{PLA: pla(1), TimeoutMS: 60_000})
	var apiErr *service.APIError
	if !errors.As(err, &apiErr) || apiErr.Code != http.StatusBadGateway {
		t.Fatalf("oversize backend body: err = %v, want a 502", err)
	}
}

// TestFrontPostSendFailurePolicy: once a request may have reached a
// backend, an async forward must NOT fail over (the re-send would start
// a duplicate long-running job whose id the client never learns) — it
// answers 502. A sync forward still fails over: the client gets exactly
// one answer either way.
func TestFrontPostSendFailurePolicy(t *testing.T) {
	// A backend that accepts the request and then kills the connection —
	// the "delivered but no response" failure mode, as opposed to a
	// dial-level connection refusal.
	broken := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/synthesize" {
			w.WriteHeader(http.StatusOK)
			return
		}
		conn, _, err := w.(http.Hijacker).Hijack()
		if err == nil {
			conn.Close()
		}
	}))
	defer broken.Close()
	good := startBackend(t, "")

	f, err := New(Config{Backends: []string{broken.URL, good.ts.URL}, HealthInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(f.Close)
	fts := httptest.NewServer(f.Handler())
	t.Cleanup(fts.Close)
	c := service.NewClient(fts.URL)

	brokenID, _ := BackendID(broken.URL)
	var req service.Request
	found := false
	for i := 0; i < 64; i++ {
		req = service.Request{PLA: pla(i), TimeoutMS: 60_000}
		if ownerOf(t, f, req) == brokenID {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no sampled function owned by the broken backend")
	}

	async := req
	async.Async = true
	_, err = c.Synthesize(context.Background(), async)
	var apiErr *service.APIError
	if !errors.As(err, &apiErr) || apiErr.Code != http.StatusBadGateway {
		t.Fatalf("async post-send failure: err = %v, want a 502", err)
	}
	if n := f.nFailovers.Load(); n != 0 {
		t.Fatalf("async post-send failure failed over %d times; duplicate job risk", n)
	}

	resp, err := c.Synthesize(context.Background(), req)
	if err != nil {
		t.Fatalf("sync request must fail over to the survivor: %v", err)
	}
	if resp.Status != service.StatusDone {
		t.Fatalf("failover answer status = %s, want done", resp.Status)
	}
	if f.nFailovers.Load() == 0 {
		t.Fatal("sync failover not counted")
	}
}

// TestFrontJobRouting: async job ids embed the owning shard, and polls,
// long-polls, and SSE streams through the front reach it.
func TestFrontJobRouting(t *testing.T) {
	b1 := startBackend(t, "")
	b2 := startBackend(t, "")
	_, c := startFront(t, b1, b2)
	ctx := context.Background()

	req := service.Request{PLA: pla(7), TimeoutMS: 60_000, Async: true}
	resp, err := c.Synthesize(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(resp.JobID, jobIDSep) {
		t.Fatalf("front job id %q does not embed a shard", resp.JobID)
	}

	deadline := time.Now().Add(30 * time.Second)
	for {
		got, err := c.Job(ctx, resp.JobID)
		if err != nil {
			t.Fatalf("poll through front: %v", err)
		}
		if got.Status == service.StatusDone {
			if got.JobID != resp.JobID {
				t.Fatalf("poll answer job id %q != submitted %q", got.JobID, resp.JobID)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never finished: %s", got.Status)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Long-poll events page: job id rewritten, stream terminal.
	page, err := c.JobEvents(ctx, resp.JobID, 0, 2*time.Second)
	if err != nil {
		t.Fatalf("events long-poll through front: %v", err)
	}
	if page.JobID != resp.JobID {
		t.Fatalf("events page job id %q != %q", page.JobID, resp.JobID)
	}
	if !page.Terminal {
		t.Fatal("finished job's events page not terminal")
	}

	// SSE form streams to completion through the proxy.
	hr, err := http.Get(c.BaseURL + "/v1/jobs/" + resp.JobID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	raw, err := io.ReadAll(hr.Body)
	if err != nil {
		t.Fatalf("SSE read through front: %v", err)
	}
	if !strings.Contains(string(raw), "event: done") {
		t.Fatalf("SSE stream missing terminal event:\n%s", raw)
	}

	// Unknown shard prefix is a clean 404, not a proxy error.
	if _, err := c.Job(ctx, "nosuch:1~jdeadbeef-1"); err == nil {
		t.Fatal("unknown shard must 404")
	}
}

// TestFrontStatsAndHealth: the merged stats carry the front block and
// one row per backend; /healthz degrades to 503 only when no backend is
// routable.
func TestFrontStatsAndHealth(t *testing.T) {
	b1 := startBackend(t, "")
	b2 := startBackend(t, "")
	f, c := startFront(t, b1, b2)

	var st Stats
	if err := getJSON(c.BaseURL+"/v1/stats", &st); err != nil {
		t.Fatal(err)
	}
	if st.Front.Backends != 2 || st.Front.HealthyBackends != 2 {
		t.Fatalf("front block: %+v", st.Front)
	}
	if len(st.Backends) != 2 || st.Backends[0].Stats == nil || st.Backends[1].Stats == nil {
		t.Fatalf("backend fan-out incomplete: %+v", st.Backends)
	}
	if st.Totals.Workers != st.Backends[0].Stats.Workers+st.Backends[1].Stats.Workers {
		t.Fatalf("totals not summed: %+v", st.Totals)
	}

	hr, err := http.Get(c.BaseURL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("healthz %d with live backends", hr.StatusCode)
	}

	// No routable backends -> the front itself reports down.
	id1, _ := BackendID(b1.ts.URL)
	id2, _ := BackendID(b2.ts.URL)
	f.shards.setAlive(id1, false)
	f.shards.setAlive(id2, false)
	hr, err = http.Get(c.BaseURL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if hr.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz %d with no routable backends, want 503", hr.StatusCode)
	}
}

// TestFrontHealthPoller: a dead backend is ejected after FailAfter
// probe rounds and re-admitted when it returns.
func TestFrontHealthPoller(t *testing.T) {
	b1 := startBackend(t, "")
	b2 := startBackend(t, "")
	urls := []string{b1.ts.URL, b2.ts.URL}
	f, err := New(Config{Backends: urls, HealthInterval: 20 * time.Millisecond, FailAfter: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	id2, _ := BackendID(b2.ts.URL)
	b2.ts.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, live := f.shards.snapshot()
		if !live[id2] {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("dead backend never ejected")
		}
		time.Sleep(10 * time.Millisecond)
	}
	_, live := f.shards.snapshot()
	id1, _ := BackendID(b1.ts.URL)
	if !live[id1] {
		t.Fatal("healthy backend ejected alongside the dead one")
	}
}

// TestBackendID: stable identity derivation and rejection of junk.
func TestBackendID(t *testing.T) {
	id, err := BackendID("http://host7:7151")
	if err != nil || id != "host7:7151" {
		t.Fatalf("id=%q err=%v", id, err)
	}
	if id2, _ := BackendID("http://host7:7151/"); id2 != id {
		t.Fatalf("trailing slash changed identity: %q", id2)
	}
	for _, bad := range []string{"", "host:7151", "ftp://x:1", "http://"} {
		if _, err := BackendID(bad); err == nil {
			t.Fatalf("BackendID(%q) accepted", bad)
		}
	}
}

func getJSON(url string, into any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(into)
}

// TestFrontBatchRouting: a batch routes by its canonical batch key —
// the same batch twice lands on the same backend (the repeat is a cache
// hit), the job-id machinery works for async batches, and the tenant
// header reaches the backend's scheduler accounting.
func TestFrontBatchRouting(t *testing.T) {
	b1 := startBackend(t, "")
	b2 := startBackend(t, "")
	_, c := startFront(t, b1, b2)
	c.Tenant = "team-a"

	ctx := context.Background()
	req := service.BatchRequest{
		Functions: []service.BatchFunction{
			{PLA: pla(1)}, {PLA: pla(2)}, {PLA: pla(3)},
		},
		TimeoutMS: 60_000,
	}
	first, err := c.SynthesizeBatch(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if first.Status != service.StatusDone || first.Batch == nil {
		t.Fatalf("batch answer: status=%s batch=%v err=%q", first.Status, first.Batch != nil, first.Error)
	}
	if first.Batch.Outputs != 3 {
		t.Fatalf("batch outputs = %d, want 3", first.Batch.Outputs)
	}
	if len(first.FnKey) != 64 {
		t.Fatalf("batch fn_key %q, want 64-hex batch key", first.FnKey)
	}
	second, err := c.SynthesizeBatch(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if second.Cached == "" {
		t.Fatalf("repeated batch missed the cache — batch-key affinity broken (cached=%q)", second.Cached)
	}

	// The per-output answers were unpacked on whichever backend owns the
	// batch, so the same single functions through the front hit a cache
	// (their single-function keys may rank onto the other backend, in
	// which case the fill hint machinery is allowed to miss — accept any
	// done answer, but at least one of the three must be served cached
	// when its shard agrees with the batch owner's).
	for i := 1; i <= 3; i++ {
		resp, err := c.Synthesize(ctx, service.Request{PLA: pla(i), TimeoutMS: 60_000})
		if err != nil {
			t.Fatalf("single %d after batch: %v", i, err)
		}
		if resp.Status != service.StatusDone {
			t.Fatalf("single %d: status %s", i, resp.Status)
		}
	}

	// Tenant accounting crossed the proxy: the merged stats carry a
	// team-a row with completed work.
	var st Stats
	if err := getJSON(c.BaseURL+"/v1/stats", &st); err != nil {
		t.Fatal(err)
	}
	var teamA *service.TenantStats
	for i := range st.Totals.Tenants {
		if st.Totals.Tenants[i].Name == "team-a" {
			teamA = &st.Totals.Tenants[i]
		}
	}
	if teamA == nil || teamA.Completed == 0 {
		t.Fatalf("tenant team-a missing from merged stats: %+v", st.Totals.Tenants)
	}
}
