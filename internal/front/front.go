package front

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"log/slog"
	"net/url"
	"sync"
	"sync/atomic"
	"time"

	"github.com/lattice-tools/janus/internal/obsv"
	"github.com/lattice-tools/janus/internal/service"
)

// Config sizes the front tier. Backends is required; everything else
// has usable defaults.
type Config struct {
	// Backends are the janusd base URLs this front shards across.
	Backends []string
	// HealthInterval is the /healthz poll period (default 1s).
	HealthInterval time.Duration
	// HealthTimeout bounds one health probe (default 2s).
	HealthTimeout time.Duration
	// FailAfter ejects a backend after this many consecutive failed
	// probes (default 2); one good probe re-admits it.
	FailAfter int
	// Retry429 bounds how many times a backpressured (429) forward is
	// retried against the same backend, paced by its Retry-After
	// (default 2). Spilling a 429 to another shard would defeat the
	// backpressure, so after the retries the 429 passes through.
	Retry429 int
	// RetryAfterCap caps how long one Retry-After pause may sleep
	// (default 2s) so a hostile or confused header cannot park the
	// proxy goroutine.
	RetryAfterCap time.Duration
	// StatsTimeout bounds each backend's share of a merged /v1/stats or
	// /metrics/prom fan-out — the deadline is per backend, so one stalled
	// member delays the merge by at most this much and is reported as a
	// laggard instead of sinking the whole response (default 2s).
	StatsTimeout time.Duration
	// TraceJobs bounds how many routed jobs keep the front's own span
	// trace — the Route/Attempt tree GET /v1/jobs/{id}/trace stitches
	// onto the backend's stream (default 256; negative disables fleet
	// tracing entirely, reverting the trace endpoint to a passthrough).
	TraceJobs int
	// DisableTracePropagation stops minting X-Janus-Trace toward the
	// backends while keeping the front's own span recording; backend
	// traces then root locally and the trace endpoint serves the two
	// streams unstitched (backend passthrough).
	DisableTracePropagation bool
	// Logger receives JSON access and lifecycle logs; nil discards.
	Logger *slog.Logger
}

func (c *Config) fill() error {
	if len(c.Backends) == 0 {
		return fmt.Errorf("front: no backends configured")
	}
	if c.HealthInterval <= 0 {
		c.HealthInterval = time.Second
	}
	if c.HealthTimeout <= 0 {
		c.HealthTimeout = 2 * time.Second
	}
	if c.FailAfter < 1 {
		c.FailAfter = 2
	}
	if c.Retry429 < 0 {
		c.Retry429 = 0
	} else if c.Retry429 == 0 {
		c.Retry429 = 2
	}
	if c.RetryAfterCap <= 0 {
		c.RetryAfterCap = 2 * time.Second
	}
	if c.StatsTimeout <= 0 {
		c.StatsTimeout = 2 * time.Second
	}
	switch {
	case c.TraceJobs == 0:
		c.TraceJobs = 256
	case c.TraceJobs < 0:
		c.TraceJobs = 0
	}
	if c.Logger == nil {
		c.Logger = obsv.NopLogger()
	}
	return nil
}

// backendState is one backend's health bookkeeping, owned by the
// poller; the serving path reads it only through the shard map and the
// stats snapshot.
type backendState struct {
	backend Backend
	client  *service.Client // short-timeout client for probes

	mu         sync.Mutex
	healthy    bool
	fails      int  // consecutive probe failures
	flips      int  // membership transitions (for stats)
	queueDepth int  // from the last good probe
	queueCap   int  //
	draining   bool //
	lastErr    string
}

// Front is the sharding proxy. Create with New, serve Handler, stop
// with Close.
type Front struct {
	cfg    Config
	shards *shardMap
	states []*backendState // same order as cfg.Backends
	byID   map[string]*backendState
	log    *slog.Logger

	nonce  string
	reqSeq atomic.Uint64

	// traces retains the front's own span tree per routed job, keyed by
	// the client-visible (shard-qualified) job id; nil when disabled.
	traces *traceStore

	pollCancel context.CancelFunc
	pollDone   chan struct{}

	// Counters mirrored into the obsv registry; kept as fields too so
	// the stats endpoint reports this front instance, not the process.
	nRouted    atomic.Int64
	nFailovers atomic.Int64
	nRetries   atomic.Int64
	nFillHints atomic.Int64
	nNoBackend atomic.Int64
}

// BackendID derives the stable shard identity from a backend URL: its
// host:port, which survives front restarts and -backends reordering.
func BackendID(raw string) (string, error) {
	u, err := url.Parse(raw)
	if err != nil {
		return "", fmt.Errorf("front: backend %q: %w", raw, err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return "", fmt.Errorf("front: backend %q: need http(s) URL", raw)
	}
	if u.Host == "" {
		return "", fmt.Errorf("front: backend %q: no host", raw)
	}
	return u.Host, nil
}

// New builds the front tier and starts its health poller.
func New(cfg Config) (*Front, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	f := &Front{
		cfg:    cfg,
		byID:   make(map[string]*backendState, len(cfg.Backends)),
		log:    cfg.Logger,
		traces: newTraceStore(cfg.TraceJobs),
	}
	var members []Backend
	for _, raw := range cfg.Backends {
		id, err := BackendID(raw)
		if err != nil {
			return nil, err
		}
		if _, dup := f.byID[id]; dup {
			return nil, fmt.Errorf("front: duplicate backend %q", id)
		}
		b := Backend{ID: id, URL: raw}
		st := &backendState{
			backend: b,
			healthy: true,
			client:  service.NewClient(raw, service.WithTimeout(cfg.HealthTimeout)),
		}
		members = append(members, b)
		f.states = append(f.states, st)
		f.byID[id] = st
	}
	f.shards = newShardMap(members)
	gBackendsTotal.Set(int64(len(members)))
	gBackendsHealthy.Set(int64(len(members)))

	var nonce [4]byte
	rand.Read(nonce[:]) //nolint:errcheck // crypto/rand never fails on supported platforms
	f.nonce = hex.EncodeToString(nonce[:])

	ctx, cancel := context.WithCancel(context.Background())
	f.pollCancel = cancel
	f.pollDone = make(chan struct{})
	go f.pollLoop(ctx)
	return f, nil
}

// Close stops the health poller. The handler keeps working (against the
// last-known membership); callers normally close the listener first.
func (f *Front) Close() {
	f.pollCancel()
	<-f.pollDone
}

// pollLoop probes every backend each interval, concurrently, and feeds
// verdicts into the shard map. The first round runs immediately so a
// front started against a dead backend converges within one probe
// timeout, not one interval.
func (f *Front) pollLoop(ctx context.Context) {
	defer close(f.pollDone)
	tick := time.NewTicker(f.cfg.HealthInterval)
	defer tick.Stop()
	for {
		var wg sync.WaitGroup
		for _, st := range f.states {
			wg.Add(1)
			go func(st *backendState) {
				defer wg.Done()
				f.probe(ctx, st)
			}(st)
		}
		wg.Wait()
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
		}
	}
}

// probe runs one health check and applies the eject/re-admit policy: a
// draining backend counts as failed (it is leaving; stop routing to it
// before its socket goes), FailAfter consecutive failures eject, one
// success re-admits.
func (f *Front) probe(ctx context.Context, st *backendState) {
	stats, err := st.client.Health(ctx)
	good := err == nil && !stats.Draining

	st.mu.Lock()
	if err != nil {
		st.lastErr = err.Error()
		// A drain answers 503; surfacing "draining" beats a bare status
		// code in front stats.
		var ae *service.APIError
		if errors.As(err, &ae) && ae.Code == 503 {
			st.draining = true
		}
	} else {
		st.lastErr = ""
		st.draining = stats.Draining
		st.queueDepth = stats.QueueDepth
		st.queueCap = stats.QueueCapacity
	}
	if good {
		st.fails = 0
	} else {
		st.fails++
	}
	wasHealthy := st.healthy
	switch {
	case good && !st.healthy:
		st.healthy = true
		st.flips++
	case !good && st.healthy && st.fails >= f.cfg.FailAfter:
		st.healthy = false
		st.flips++
	}
	nowHealthy := st.healthy
	st.mu.Unlock()

	if wasHealthy != nowHealthy {
		if f.shards.setAlive(st.backend.ID, nowHealthy) {
			epoch, live := f.shards.snapshot()
			healthy := 0
			for _, ok := range live {
				if ok {
					healthy++
				}
			}
			gBackendsHealthy.Set(int64(healthy))
			mMembershipChanges.Inc()
			f.log.Info("shard map changed", "backend", st.backend.ID,
				"healthy", nowHealthy, "epoch", epoch, "healthy_backends", healthy)
		}
	}
}

// newRequestID mints a front-unique request id (honored by the
// backends, so one id names the request end to end — and doubles as the
// fleet trace id, see routeSynthesize).
func (f *Front) newRequestID() string {
	return fmt.Sprintf("f%s-%d", f.nonce, f.reqSeq.Add(1))
}

// traceStore is a bounded ring of per-job front traces, keyed by the
// client-visible job id. Oldest entries evict first; a nil store
// discards puts and misses gets, so disabled tracing costs one nil
// check.
type traceStore struct {
	mu    sync.Mutex
	cap   int
	m     map[string][]byte
	order []string
}

func newTraceStore(cap int) *traceStore {
	if cap <= 0 {
		return nil
	}
	return &traceStore{cap: cap, m: make(map[string][]byte, cap)}
}

func (ts *traceStore) put(id string, b []byte) {
	if ts == nil || id == "" || len(b) == 0 {
		return
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	if _, ok := ts.m[id]; !ok {
		ts.order = append(ts.order, id)
		for len(ts.order) > ts.cap {
			delete(ts.m, ts.order[0])
			ts.order = ts.order[1:]
		}
	}
	ts.m[id] = b
}

func (ts *traceStore) get(id string) ([]byte, bool) {
	if ts == nil {
		return nil, false
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	b, ok := ts.m[id]
	return b, ok
}
