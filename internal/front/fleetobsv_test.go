package front

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/lattice-tools/janus/internal/obsv"
	"github.com/lattice-tools/janus/internal/service"
)

// TestFrontStitchedTrace: a job routed through the front serves ONE
// trace from GET /v1/jobs/{id}/trace — the front's Route/Attempt spans
// and the backend's Job tree under a single trace id, with the Job span
// re-parented under the Attempt that carried it, and the whole stream
// still passing the trace validator.
func TestFrontStitchedTrace(t *testing.T) {
	b1 := startBackend(t, "")
	b2 := startBackend(t, "")
	_, c := startFront(t, b1, b2)

	ctx := context.Background()
	resp, err := c.Synthesize(ctx, service.Request{PLA: pla(3), TimeoutMS: 60_000})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != service.StatusDone || resp.JobID == "" {
		t.Fatalf("synthesis: %+v", resp)
	}
	raw, err := c.JobTrace(ctx, resp.JobID)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := obsv.ValidateTrace(bytes.NewReader(raw)); err != nil {
		t.Fatalf("stitched trace invalid: %v\n%s", err, raw)
	}
	recs, err := obsv.ReadTrace(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]obsv.Record{}
	traceIDs := map[string]bool{}
	for _, rec := range recs {
		byName[rec.Span] = rec
		traceIDs[rec.TraceID] = true
	}
	if len(traceIDs) != 1 || traceIDs[""] {
		t.Fatalf("stitched stream carries trace ids %v, want one non-empty id", traceIDs)
	}
	route, ok := byName["Route"]
	if !ok || route.Proc != "front" || route.Parent != 0 {
		t.Fatalf("Route span missing or malformed: %+v", route)
	}
	attempt, ok := byName["Attempt"]
	if !ok || attempt.Parent != route.ID {
		t.Fatalf("Attempt span missing or not under Route: %+v", attempt)
	}
	job, ok := byName["Job"]
	if !ok || job.Proc != "janusd" {
		t.Fatalf("backend Job span missing from stitched stream: %+v", job)
	}
	if job.Parent != attempt.ID {
		t.Fatalf("Job parent = %d, want the Attempt span %d", job.Parent, attempt.ID)
	}
}

// TestFrontTraceDisabled: with TraceJobs negative the front keeps no
// span trees and the trace endpoint reverts to a backend passthrough —
// the backend's locally-rooted trace, no front spans.
func TestFrontTraceDisabled(t *testing.T) {
	b1 := startBackend(t, "")
	f, err := New(Config{
		Backends:       []string{b1.ts.URL},
		HealthInterval: time.Hour, // poller idles; first round still runs
		TraceJobs:      -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(f.Close)
	fts := httptest.NewServer(f.Handler())
	t.Cleanup(fts.Close)
	c := service.NewClient(fts.URL)

	ctx := context.Background()
	resp, err := c.Synthesize(ctx, service.Request{PLA: pla(5), TimeoutMS: 60_000})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := c.JobTrace(ctx, resp.JobID)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(raw, []byte(`"Route"`)) {
		t.Fatalf("front spans present with tracing disabled:\n%s", raw)
	}
	if !bytes.Contains(raw, []byte(`"Job"`)) {
		t.Fatalf("backend trace lost in passthrough:\n%s", raw)
	}
}

// TestFrontFleetProm: /metrics/prom on the front is one strict
// exposition — the front's own series unlabeled, every backend's series
// tagged backend="id", and exactly one # TYPE line per family even
// though every backend exports the same families.
func TestFrontFleetProm(t *testing.T) {
	b1 := startBackend(t, "")
	b2 := startBackend(t, "")
	f, c := startFront(t, b1, b2)

	// Push one request through so both front and backend counters move.
	if _, err := c.Synthesize(context.Background(), service.Request{PLA: pla(1), TimeoutMS: 60_000}); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(c.BaseURL + "/metrics/prom")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != obsv.PromContentType {
		t.Fatalf("content type %q, want %q", ct, obsv.PromContentType)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := string(body)
	if !strings.Contains(out, "janus_front_requests_total") {
		t.Fatalf("front's own series missing:\n%s", out)
	}
	for _, st := range f.states {
		want := `backend="` + st.backend.ID + `"`
		if !strings.Contains(out, want) {
			t.Fatalf("no series labeled %s:\n%s", want, out)
		}
	}
	// Strict parsers reject duplicate TYPE lines; assert uniqueness and
	// that every line is either a TYPE comment or "name[{labels}] value".
	seen := map[string]bool{}
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			if seen[line] {
				t.Fatalf("duplicate %q in fleet exposition", line)
			}
			seen[line] = true
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp <= 0 {
			t.Fatalf("unparseable exposition line %q", line)
		}
	}
}

// TestFrontStatsLaggards: a backend that cannot answer the live stats
// fan-out is named in front.stats_laggards, while the healthy member
// still reports live numbers with its fan-out duration.
func TestFrontStatsLaggards(t *testing.T) {
	b1 := startBackend(t, "")
	b2 := startBackend(t, "")
	_, c := startFront(t, b1, b2)
	deadID := BackendIDMust(t, b2.ts.URL)
	b2.ts.Close() // connection refused → fast per-backend failure

	resp, err := http.Get(c.BaseURL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if len(st.Front.StatsLaggards) != 1 || st.Front.StatsLaggards[0] != deadID {
		t.Fatalf("stats_laggards = %v, want [%s]", st.Front.StatsLaggards, deadID)
	}
	for _, bs := range st.Backends {
		if bs.ID == deadID {
			if bs.Stats != nil {
				t.Fatalf("laggard %s carries live stats", bs.ID)
			}
			continue
		}
		if bs.Stats == nil || bs.StatsMS <= 0 {
			t.Fatalf("healthy backend %s missing live stats (stats_ms=%v)", bs.ID, bs.StatsMS)
		}
	}
}

// BackendIDMust wraps BackendID for tests.
func BackendIDMust(t *testing.T, raw string) string {
	t.Helper()
	id, err := BackendID(raw)
	if err != nil {
		t.Fatal(err)
	}
	return id
}

// TestTraceStoreEviction: the ring keeps the newest cap entries,
// overwrites in place without consuming a slot, and the nil store
// (tracing disabled) swallows puts and misses gets.
func TestTraceStoreEviction(t *testing.T) {
	ts := newTraceStore(2)
	ts.put("a", []byte("1"))
	ts.put("b", []byte("2"))
	ts.put("b", []byte("2b")) // overwrite: no eviction
	if _, ok := ts.get("a"); !ok {
		t.Fatal("overwrite evicted an unrelated entry")
	}
	ts.put("c", []byte("3")) // evicts a, the oldest
	if _, ok := ts.get("a"); ok {
		t.Fatal("oldest entry survived past cap")
	}
	if b, ok := ts.get("b"); !ok || string(b) != "2b" {
		t.Fatalf("entry b = %q/%v, want the overwritten bytes", b, ok)
	}
	if _, ok := ts.get("c"); !ok {
		t.Fatal("newest entry missing")
	}

	var nilStore *traceStore = newTraceStore(0)
	nilStore.put("x", []byte("y"))
	if _, ok := nilStore.get("x"); ok {
		t.Fatal("nil store returned a hit")
	}
}
