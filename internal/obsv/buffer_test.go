package obsv

import (
	"bytes"
	"strings"
	"testing"
)

// TestTraceBufferCapturesValidTrace: a span tree emitted through a
// roomy buffer must read back as a schema-valid JSONL trace.
func TestTraceBufferCapturesValidTrace(t *testing.T) {
	buf := NewTraceBuffer(128, 1<<20)
	tr := NewTracer(buf)
	root := Start(tr, nil, "Job")
	root.SetStr("request_id", "r-test")
	for i := 0; i < 3; i++ {
		c := root.Child("Candidate")
		c.Child("SatSolve").End()
		c.End()
	}
	root.End()

	if buf.Spans() != 7 {
		t.Fatalf("spans = %d, want 7", buf.Spans())
	}
	if buf.Dropped() != 0 {
		t.Fatalf("dropped = %d, want 0", buf.Dropped())
	}
	n, err := ValidateTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("trace invalid: %v", err)
	}
	if n != 7 {
		t.Fatalf("validated %d spans, want 7", n)
	}
	if !strings.Contains(string(buf.Bytes()), `"request_id":"r-test"`) {
		t.Fatal("request id attribute missing from trace")
	}
}

// TestTraceBufferBoundedGrowth: eviction must bound the buffer by span
// count, drop the OLDEST lines, and leave a trace that still passes the
// schema check (parents end after children, so every suffix resolves).
func TestTraceBufferBoundedGrowth(t *testing.T) {
	const max = 16
	buf := NewTraceBuffer(max, 1<<20)
	tr := NewTracer(buf)
	root := Start(tr, nil, "Job")
	for i := 0; i < 100; i++ {
		root.Child("CegarIter").End()
	}
	root.End()

	if got := buf.Spans(); got != max {
		t.Fatalf("spans = %d, want %d", got, max)
	}
	if want := int64(101 - max); buf.Dropped() != want {
		t.Fatalf("dropped = %d, want %d", buf.Dropped(), want)
	}
	if _, err := ValidateTrace(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("evicted trace invalid: %v", err)
	}
	// The root ends last, so it must have survived eviction.
	if !strings.Contains(string(buf.Bytes()), `"span":"Job"`) {
		t.Fatal("root span evicted")
	}
}

// TestTraceBufferByteBound: the byte bound evicts too, but never the
// final line.
func TestTraceBufferByteBound(t *testing.T) {
	buf := NewTraceBuffer(1<<20, 600)
	tr := NewTracer(buf)
	root := Start(tr, nil, "Job")
	for i := 0; i < 50; i++ {
		root.Child("CegarIter").End()
	}
	root.End()

	if buf.Dropped() == 0 {
		t.Fatal("byte bound never evicted")
	}
	if got := len(buf.Bytes()); got > 600+200 { // one line of slack
		t.Fatalf("buffer holds %d bytes, want ≈600", got)
	}
	if _, err := ValidateTrace(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("evicted trace invalid: %v", err)
	}
}

// TestTraceBufferConcurrentWrites: parallel span emission into one
// buffer must be race-free and keep the line structure intact (runs
// under -race in CI).
func TestTraceBufferConcurrentWrites(t *testing.T) {
	buf := NewTraceBuffer(64, 1<<20)
	tr := NewTracer(buf)
	root := Start(tr, nil, "Job")
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 50; i++ {
				root.Child("SatSolve").End()
			}
		}()
	}
	for g := 0; g < 4; g++ {
		<-done
	}
	root.End()
	if _, err := ValidateTrace(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("concurrent trace invalid: %v", err)
	}
}

// TestTraceBufferNil: nil-receiver reads are safe no-ops.
func TestTraceBufferNil(t *testing.T) {
	var buf *TraceBuffer
	if buf.Spans() != 0 || buf.Dropped() != 0 || buf.Bytes() != nil {
		t.Fatal("nil TraceBuffer must read as empty")
	}
}
