package obsv

import (
	"encoding/json"
	"io"
	"net/http"
	"sync"
	"testing"
)

func TestRegistryBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("janus_test_ops_total")
	c.Inc()
	c.Add(4)
	c.Add(-3) // ignored: counters are monotone
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("janus_test_ops_total") != c {
		t.Fatal("Counter must return the same handle per name")
	}
	g := r.Gauge("janus_test_depth")
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}
	r.RegisterFunc("janus_test_fn", func() int64 { return 99 })

	h := r.Histogram("janus_test_lbd")
	h.Observe(1)
	h.Observe(3)
	h.ObserveN(1000, 2)
	h.ObserveN(5, 0) // no-op

	s := r.Snapshot()
	if s.Get("janus_test_ops_total") != 5 || s.Get("janus_test_depth") != 5 || s.Get("janus_test_fn") != 99 {
		t.Fatalf("snapshot lookups wrong: %+v", s)
	}
	hs := s.Histograms["janus_test_lbd"]
	if hs.Count != 4 || hs.Sum != 1+3+2000 {
		t.Fatalf("histogram snapshot = %+v", hs)
	}
	var total int64
	for _, b := range hs.Buckets {
		total += b
	}
	if total != hs.Count {
		t.Fatalf("bucket sum %d != count %d", total, hs.Count)
	}
	if len(s.Names()) != 4 {
		t.Fatalf("Names = %v", s.Names())
	}
}

func TestHistogramBuckets(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{{0, 0}, {1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4}, {1 << 30, histBuckets - 1}}
	for _, c := range cases {
		if got := bucketOf(c.v); got != c.want {
			t.Errorf("bucketOf(%d) = %d, want %d", c.v, got, c.want)
		}
	}
}

// TestSnapshotMonotoneConcurrent hammers one registry from many
// goroutines while a reader takes snapshots, asserting counter values
// never decrease between successive snapshots (run with -race).
func TestSnapshotMonotoneConcurrent(t *testing.T) {
	r := NewRegistry()
	const workers = 8
	done := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("janus_test_conflicts_total")
			h := r.Histogram("janus_test_lbd")
			for {
				select {
				case <-done:
					return
				default:
					c.Inc()
					h.Observe(3)
					r.Gauge("janus_test_live").Add(1)
				}
			}
		}()
	}
	var prev int64 = -1
	for i := 0; i < 200; i++ {
		s := r.Snapshot()
		v := s.Get("janus_test_conflicts_total")
		if v < prev {
			t.Fatalf("snapshot %d: counter went backwards %d -> %d", i, prev, v)
		}
		prev = v
	}
	close(done)
	wg.Wait()
}

func TestNilMetricsNoOp(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(5)
	var g *Gauge
	g.Set(1)
	g.Add(1)
	var h *Histogram
	h.Observe(1)
	h.ObserveN(2, 3)
	if c.Value() != 0 || g.Value() != 0 {
		t.Fatal("nil metrics must read as zero")
	}
}

func TestServeDebug(t *testing.T) {
	r := NewRegistry()
	r.Counter("janus_test_hits_total").Add(3)
	ln, err := ServeDebug("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	get := func(path string) []byte {
		resp, err := http.Get("http://" + ln.Addr().String() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}

	var snap Snapshot
	if err := json.Unmarshal(get("/metrics"), &snap); err != nil {
		t.Fatalf("/metrics: %v", err)
	}
	if snap.Get("janus_test_hits_total") != 3 {
		t.Fatalf("/metrics snapshot = %+v", snap)
	}
	var vars map[string]json.RawMessage
	if err := json.Unmarshal(get("/debug/vars"), &vars); err != nil {
		t.Fatalf("/debug/vars: %v", err)
	}
	if _, ok := vars["janus_metrics"]; !ok {
		t.Fatal("/debug/vars missing janus_metrics")
	}
	if len(get("/debug/pprof/cmdline")) == 0 {
		t.Fatal("/debug/pprof/cmdline empty")
	}
}

// TestHistogramSnapshotConcurrent hammers one histogram from many
// goroutines while a reader snapshots the registry, asserting every
// snapshot's count is monotone and the final snapshot is exact: count,
// sum, and buckets all agree with the observations made (run with -race).
func TestHistogramSnapshotConcurrent(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("janus_test_ns")
	const workers, perWorker = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				h.Observe(int64(i%1000) << (w % 10))
			}
		}(w)
	}
	var prev int64 = -1
	for i := 0; i < 200; i++ {
		hs := r.Snapshot().Histograms["janus_test_ns"]
		if hs.Count < prev {
			t.Fatalf("snapshot %d: count went backwards %d -> %d", i, prev, hs.Count)
		}
		prev = hs.Count
	}
	wg.Wait()
	hs := r.Snapshot().Histograms["janus_test_ns"]
	if hs.Count != workers*perWorker {
		t.Fatalf("final count = %d, want %d", hs.Count, workers*perWorker)
	}
	var bsum int64
	for _, b := range hs.Buckets {
		bsum += b
	}
	if bsum != hs.Count {
		t.Fatalf("bucket sum %d != count %d", bsum, hs.Count)
	}
}
