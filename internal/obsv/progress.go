package obsv

import (
	"context"
	"fmt"
	"io"
	"sync"
	"time"
)

// Progress events are the anytime face of a synthesis: the bound chain
// (DP/PS/DPS/IPS/IDPS/DS) hands the search a verified mapping long before
// the dichotomic search converges, and every step after that either
// tightens a bound or improves the incumbent. A ProgressSink receives
// those moments as they happen, so a caller (a CLI -progress flag, the
// janusd job state, a streaming API) can show a live lb/ub ribbon and
// always knows the best answer it would get if it stopped waiting now.
//
// Like the tracer, the sink is nil-safe and allocation-free when off:
// ProgressEvent is a plain value struct, emission sites check the sink
// for nil before building one, and the context carriage below mirrors
// ContextWithTracer so the service layer can thread a sink through the
// job queue without widening option structs at every hop.

// ProgressKind enumerates the progress event types.
type ProgressKind uint8

const (
	// ProgressPhaseStart / ProgressPhaseDone bracket one pipeline phase
	// (minimize, bounds, ds, search).
	ProgressPhaseStart ProgressKind = iota + 1
	ProgressPhaseDone
	// ProgressBound reports a verified bound move: LB never decreases, UB
	// never increases over a synthesis.
	ProgressBound
	// ProgressIncumbent reports a new best verified mapping.
	ProgressIncumbent
	// ProgressStep reports one finished dichotomic step.
	ProgressStep
)

// String names the kind the way the event stream spells it.
func (k ProgressKind) String() string {
	switch k {
	case ProgressPhaseStart:
		return "phase_start"
	case ProgressPhaseDone:
		return "phase_done"
	case ProgressBound:
		return "bound"
	case ProgressIncumbent:
		return "incumbent"
	case ProgressStep:
		return "step"
	}
	return "unknown"
}

// ProgressEvent is one progress notification. Only the fields of the
// event's Kind are meaningful; the rest stay zero.
type ProgressEvent struct {
	Kind ProgressKind
	// Phase names the pipeline phase (PhaseStart/PhaseDone): "minimize",
	// "bounds", "ds", "search".
	Phase string
	// LB and UB are the current verified bounds on the lattice size
	// (ProgressBound). UB 0 means no verified mapping exists yet (only
	// before the bounds phase finishes); LB 0 means the lower bound has
	// not been computed yet.
	LB, UB int
	// Method names what moved a bound or produced an incumbent: a bound
	// construction ("DPS", "DS"), "lb" for the structural lower bound,
	// "sat"/"unsat" for dichotomic outcomes.
	Method string
	// Size and Grid describe a new best verified mapping
	// (ProgressIncumbent); Verified records that the mapping was checked
	// against the target (every emitted incumbent is).
	Size     int
	Grid     string
	Verified bool
	// Step numbers the finished dichotomic step within its synthesis
	// (ProgressStep, 1-based); Engine is the step's engine decision;
	// GridsProbed the cumulative distinct lattice shapes attempted.
	Step        int
	Engine      string
	GridsProbed int
	// Sub marks events from DS/MF sub-syntheses, which work on part
	// covers: their bounds say nothing about the top-level target, but
	// their probes and steps are real effort worth showing.
	Sub bool
}

// ProgressSink receives progress events. Implementations are called
// inline from the search loop (possibly from multiple goroutines when
// Workers > 1) and must be cheap and non-blocking; hand off to a channel
// or buffer instead of doing I/O when latency matters.
type ProgressSink interface {
	Progress(ProgressEvent)
}

// Context carriage, mirroring ContextWithTracer: the service layer
// attaches the per-job sink to the context it hands core.Synthesize.

type ctxProgressKey struct{}

// ContextWithProgress returns a context carrying the sink. A nil sink is
// allowed and means "progress off" downstream.
func ContextWithProgress(ctx context.Context, s ProgressSink) context.Context {
	return context.WithValue(ctx, ctxProgressKey{}, s)
}

// ProgressFromContext returns the sink attached to ctx, or nil.
func ProgressFromContext(ctx context.Context) ProgressSink {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(ctxProgressKey{}).(ProgressSink)
	return s
}

// ProgressWriter is a ProgressSink printing one line per event — the
// cmd-level -progress output. Lines are prefixed with the wall-clock
// offset since the writer was created, so a watcher sees where the time
// goes:
//
//	[  0.01s] phase bounds done
//	[  0.01s] bound lb=0 ub=12 (DPS)
//	[  0.45s] incumbent 3x3=9 verified
//	[  0.45s] step 2 engine=fresh grids=5
//
// Safe for concurrent use; a nil writer discards events.
type ProgressWriter struct {
	mu    sync.Mutex
	w     io.Writer
	start time.Time
}

// NewProgressWriter returns a writer-backed sink; events are rendered
// relative to now.
func NewProgressWriter(w io.Writer) *ProgressWriter {
	return &ProgressWriter{w: w, start: time.Now()}
}

// Progress renders one event.
func (pw *ProgressWriter) Progress(ev ProgressEvent) {
	if pw == nil || pw.w == nil {
		return
	}
	var line string
	switch ev.Kind {
	case ProgressPhaseStart:
		line = fmt.Sprintf("phase %s", ev.Phase)
	case ProgressPhaseDone:
		line = fmt.Sprintf("phase %s done", ev.Phase)
	case ProgressBound:
		line = fmt.Sprintf("bound lb=%d ub=%d (%s)", ev.LB, ev.UB, ev.Method)
	case ProgressIncumbent:
		line = fmt.Sprintf("incumbent %s=%d", ev.Grid, ev.Size)
		if ev.Verified {
			line += " verified"
		}
	case ProgressStep:
		line = fmt.Sprintf("step %d engine=%s grids=%d", ev.Step, ev.Engine, ev.GridsProbed)
	default:
		return
	}
	if ev.Sub {
		line = "sub " + line
	}
	pw.mu.Lock()
	defer pw.mu.Unlock()
	fmt.Fprintf(pw.w, "[%7.2fs] %s\n", time.Since(pw.start).Seconds(), line)
}
