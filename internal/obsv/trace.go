// Package obsv is the observability substrate of the synthesis pipeline:
// a hierarchical span tracer emitting JSONL, a process-wide metrics
// registry of atomic counters/gauges/histograms, and a debug HTTP
// endpoint serving the registry snapshot next to net/http/pprof.
//
// Everything is stdlib-only and nil-safe: a nil *Tracer produces nil
// *Spans, and every Span/metric method no-ops on a nil receiver, so
// instrumented hot paths pay one pointer check when observability is off.
// The span taxonomy of the synthesis pipeline is
//
//	Synthesize → DichotomicStep → Candidate(m×n,orient) → CegarIter → SatSolve
//
// with Minimize/Bounds/DSBound phase spans under Synthesize. Metric names
// follow the scheme janus_<pkg>_<name>, suffixed _total for monotone
// counters and _ns_total for accumulated durations (see DESIGN.md).
package obsv

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Tracer emits completed spans as JSON Lines, one object per span, in
// span-end order (children precede their parents). It is safe for
// concurrent use by multiple goroutines; a nil Tracer discards everything.
type Tracer struct {
	mu      sync.Mutex
	w       io.Writer
	err     error
	traceID string
	proc    string
	nextID  atomic.Uint64
}

// NewTracer returns a tracer writing JSONL records to w.
func NewTracer(w io.Writer) *Tracer {
	return &Tracer{w: w}
}

// SetTrace tags every span this tracer emits with a fleet-wide trace id
// and a process ("hop") label. The tag is what lets two processes' JSONL
// streams be stitched into one trace: the front mints the trace id, the
// backend adopts it from the X-Janus-Trace header, and tracesum groups
// per hop. Untagged tracers emit exactly the pre-fleet schema (the
// fields are omitempty). Nil-safe.
func (t *Tracer) SetTrace(traceID, proc string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.traceID, t.proc = traceID, proc
	t.mu.Unlock()
}

// Err returns the first write or encoding error the tracer hit, if any.
func (t *Tracer) Err() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// Record is the JSONL schema of one completed span. Parent is 0 for root
// spans; IDs are unique per tracer and start at 1.
//
// TraceID, Proc, and RemoteParent are the multi-process extension: a
// tracer tagged via SetTrace stamps every record with the fleet-wide
// trace id and its hop name, and a root span opened with StartRemote
// carries the span id of its parent in ANOTHER process's stream.
// RemoteParent is advisory until stitching: within one process's stream
// the span is still a root (Parent 0), so a standalone backend trace
// stays schema-valid; StitchRecords resolves it into a real parent edge.
type Record struct {
	Span         string         `json:"span"`
	ID           uint64         `json:"id"`
	Parent       uint64         `json:"parent,omitempty"`
	TraceID      string         `json:"trace_id,omitempty"`
	Proc         string         `json:"proc,omitempty"`
	RemoteParent uint64         `json:"remote_parent,omitempty"`
	Start        time.Time      `json:"start"`
	End          time.Time      `json:"end"`
	DurNS        int64          `json:"dur_ns"`
	Attrs        map[string]any `json:"attrs,omitempty"`
}

// Span is one timed, attributed node of the trace tree. All methods are
// nil-safe no-ops, so call sites need no enablement checks.
type Span struct {
	t      *Tracer
	id     uint64
	parent uint64
	remote uint64
	name   string
	start  time.Time

	mu    sync.Mutex
	attrs map[string]any
	ended bool
}

// Start opens a span named name under parent. Either t or parent may be
// nil: a nil parent makes a root span, and when t is nil the parent's
// tracer is used. With both nil the span is nil and tracing is off.
func Start(t *Tracer, parent *Span, name string) *Span {
	if t == nil {
		if parent == nil {
			return nil
		}
		t = parent.t
	}
	sp := &Span{t: t, id: t.nextID.Add(1), name: name, start: time.Now()}
	if parent != nil {
		sp.parent = parent.id
	}
	return sp
}

// StartRemote opens a root span whose parent lives in another process's
// trace stream: remoteParent is a span id minted by that process's
// tracer (carried here in an X-Janus-Trace header). The span is a local
// root — Parent stays 0 so the stream validates standalone — and the
// remote edge is recorded for StitchRecords to resolve. A zero
// remoteParent is exactly Start(t, nil, name).
func StartRemote(t *Tracer, remoteParent uint64, name string) *Span {
	sp := Start(t, nil, name)
	if sp != nil {
		sp.remote = remoteParent
	}
	return sp
}

// ID returns the span's tracer-local id (0 on a nil span) — the value a
// process puts in an outbound X-Janus-Trace header so the next hop can
// root under it.
func (sp *Span) ID() uint64 {
	if sp == nil {
		return 0
	}
	return sp.id
}

// Tracer returns the span's tracer (nil on a nil span), for callers that
// hold a span and need the tracer itself, e.g. to carry in a context.
func (sp *Span) Tracer() *Tracer {
	if sp == nil {
		return nil
	}
	return sp.t
}

// Child opens a sub-span; on a nil receiver it returns nil.
func (sp *Span) Child(name string) *Span {
	if sp == nil {
		return nil
	}
	return Start(sp.t, sp, name)
}

// SetInt records an integer attribute.
func (sp *Span) SetInt(key string, v int64) {
	if sp == nil {
		return
	}
	sp.set(key, v)
}

// AddInt accumulates into an integer attribute (missing counts as 0).
func (sp *Span) AddInt(key string, v int64) {
	if sp == nil {
		return
	}
	sp.mu.Lock()
	defer sp.mu.Unlock()
	if sp.attrs == nil {
		sp.attrs = make(map[string]any)
	}
	if old, ok := sp.attrs[key].(int64); ok {
		v += old
	}
	sp.attrs[key] = v
}

// SetStr records a string attribute.
func (sp *Span) SetStr(key, v string) {
	if sp == nil {
		return
	}
	sp.set(key, v)
}

// SetBool records a boolean attribute.
func (sp *Span) SetBool(key string, v bool) {
	if sp == nil {
		return
	}
	sp.set(key, v)
}

func (sp *Span) set(key string, v any) {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	if sp.attrs == nil {
		sp.attrs = make(map[string]any)
	}
	sp.attrs[key] = v
}

// End closes the span and emits its record. Ending twice emits once.
func (sp *Span) End() {
	if sp == nil {
		return
	}
	sp.mu.Lock()
	if sp.ended {
		sp.mu.Unlock()
		return
	}
	sp.ended = true
	// Round(0) strips the monotonic reading so the duration matches the
	// serialized wall-clock timestamps exactly (ValidateTrace checks it).
	start, end := sp.start.Round(0), time.Now().Round(0)
	rec := Record{
		Span:         sp.name,
		ID:           sp.id,
		Parent:       sp.parent,
		RemoteParent: sp.remote,
		Start:        start,
		End:          end,
		DurNS:        end.Sub(start).Nanoseconds(),
		Attrs:        sp.attrs,
	}
	sp.mu.Unlock()
	sp.t.emit(rec)
}

func (t *Tracer) emit(rec Record) {
	t.mu.Lock()
	rec.TraceID, rec.Proc = t.traceID, t.proc
	t.mu.Unlock()
	b, err := json.Marshal(rec)
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return
	}
	if err != nil {
		t.err = fmt.Errorf("obsv: marshal span %q: %w", rec.Span, err)
		return
	}
	b = append(b, '\n')
	if _, err := t.w.Write(b); err != nil {
		t.err = fmt.Errorf("obsv: write span %q: %w", rec.Span, err)
	}
}
