package obsv

import (
	"sync"
	"time"
)

// SLO buckets: ten-second resolution over a one-hour horizon, plus one
// bucket so the oldest full bucket of the 1h window is never the one
// currently being written.
const (
	sloBucketSec = 10
	sloBuckets   = 361
)

// SLO tracks one endpoint's latency objective: the fraction of requests
// answered within Objective must stay at or above Target. Observations
// land in lifetime good/total counters plus a ring of ten-second buckets,
// from which multi-window burn rates are computed — the standard paging
// signal: burn rate 1.0 means the error budget (1−target) is being spent
// exactly as fast as it accrues; rates well above 1 on both a short and a
// long window mean the objective is actively being burned through, not
// just seeing a blip. A nil *SLO discards observations and snapshots to
// zero, so a disabled SLO costs one pointer check.
type SLO struct {
	name      string
	objective time.Duration
	target    float64

	mu          sync.Mutex
	good, total int64
	buckets     [sloBuckets]sloBucket
}

type sloBucket struct {
	epoch       int64
	good, total int64
}

// NewSLO defines an objective: name labels the endpoint, objective is the
// latency threshold a good request meets, target the required good
// fraction (defaulted to 0.99 when out of (0,1)).
func NewSLO(name string, objective time.Duration, target float64) *SLO {
	if target <= 0 || target >= 1 {
		target = 0.99
	}
	return &SLO{name: name, objective: objective, target: target}
}

// Observe records one request latency.
func (s *SLO) Observe(d time.Duration) { s.ObserveAt(time.Now(), d) }

// ObserveAt is Observe with an explicit clock (tests).
func (s *SLO) ObserveAt(now time.Time, d time.Duration) {
	if s == nil {
		return
	}
	epoch := now.Unix() / sloBucketSec
	b := &s.buckets[int(epoch%sloBuckets+sloBuckets)%sloBuckets]
	s.mu.Lock()
	if b.epoch != epoch {
		b.epoch, b.good, b.total = epoch, 0, 0
	}
	b.total++
	s.total++
	if d <= s.objective {
		b.good++
		s.good++
	}
	s.mu.Unlock()
}

// windowLocked sums the buckets of the last n*10s ending at nowEpoch.
func (s *SLO) windowLocked(nowEpoch int64, n int) (good, total int64) {
	for i := 0; i < n; i++ {
		e := nowEpoch - int64(i)
		if e < 0 {
			break
		}
		b := &s.buckets[int(e%sloBuckets+sloBuckets)%sloBuckets]
		if b.epoch == e {
			good += b.good
			total += b.total
		}
	}
	return good, total
}

// burnRate converts a window's good/total into budget-burn speed.
func (s *SLO) burnRate(good, total int64) float64 {
	if total == 0 {
		return 0
	}
	bad := float64(total-good) / float64(total)
	return bad / (1 - s.target)
}

// SLOSnapshot is the JSON form of an SLO's state (/v1/stats).
type SLOSnapshot struct {
	Name        string  `json:"name"`
	ObjectiveMS float64 `json:"objective_ms"`
	Target      float64 `json:"target"`
	Good        int64   `json:"good"`
	Total       int64   `json:"total"`
	// BurnRate5m and BurnRate1h are the error-budget burn speeds over the
	// last five minutes and hour; 1.0 spends the budget exactly at the
	// sustainable rate, larger is faster.
	BurnRate5m float64 `json:"burn_rate_5m"`
	BurnRate1h float64 `json:"burn_rate_1h"`
}

// Snapshot reads the SLO's current state.
func (s *SLO) Snapshot() SLOSnapshot { return s.SnapshotAt(time.Now()) }

// SnapshotAt is Snapshot with an explicit clock (tests).
func (s *SLO) SnapshotAt(now time.Time) SLOSnapshot {
	if s == nil {
		return SLOSnapshot{}
	}
	epoch := now.Unix() / sloBucketSec
	s.mu.Lock()
	defer s.mu.Unlock()
	g5, t5 := s.windowLocked(epoch, 5*60/sloBucketSec)
	g1h, t1h := s.windowLocked(epoch, 3600/sloBucketSec)
	return SLOSnapshot{
		Name:        s.name,
		ObjectiveMS: float64(s.objective) / float64(time.Millisecond),
		Target:      s.target,
		Good:        s.good,
		Total:       s.total,
		BurnRate5m:  s.burnRate(g5, t5),
		BurnRate1h:  s.burnRate(g1h, t1h),
	}
}

// Register publishes the SLO into a registry as function-backed gauges
// under prefix: _good_total, _total, and the burn rates in milli-units
// (the registry is integer-valued), e.g. prefix_burn_5m_milli == 1000
// at burn rate 1.0.
func (s *SLO) Register(r *Registry, prefix string) {
	s.RegisterLabeled(r, prefix)
}

// RegisterLabeled is Register with label pairs attached to every series
// (the suffix lands before the label block, so prometheus sees e.g.
// prefix_burn_5m_milli{tenant="bulk"}). This is how the per-tenant SLOs
// publish without minting a metric family per tenant.
func (s *SLO) RegisterLabeled(r *Registry, prefix string, kv ...string) {
	if s == nil || r == nil {
		return
	}
	r.RegisterFunc(LabeledName(prefix+"_good_total", kv...), func() int64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.good
	})
	r.RegisterFunc(LabeledName(prefix+"_total", kv...), func() int64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.total
	})
	r.RegisterFunc(LabeledName(prefix+"_burn_5m_milli", kv...), func() int64 {
		return int64(s.Snapshot().BurnRate5m * 1000)
	})
	r.RegisterFunc(LabeledName(prefix+"_burn_1h_milli", kv...), func() int64 {
		return int64(s.Snapshot().BurnRate1h * 1000)
	})
}
