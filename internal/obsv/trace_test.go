package obsv

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

// collect parses the tracer's output and indexes the records by id.
func collect(t *testing.T, buf *bytes.Buffer) (recs []Record, byID map[uint64]Record) {
	t.Helper()
	recs, err := ReadTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadTrace: %v", err)
	}
	byID = make(map[uint64]Record, len(recs))
	for _, r := range recs {
		byID[r.ID] = r
	}
	return recs, byID
}

func TestSpanNestingAndAttrs(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)

	root := Start(tr, nil, "Synthesize")
	root.SetInt("inputs", 4)
	step := root.Child("DichotomicStep")
	step.SetInt("mp", 8)
	cand := step.Child("Candidate")
	cand.SetStr("grid", "4x2")
	cand.SetBool("dual", true)
	cand.AddInt("clauses", 10)
	cand.AddInt("clauses", 5)
	cand.End()
	step.End()
	root.End()

	if err := tr.Err(); err != nil {
		t.Fatal(err)
	}
	recs, byID := collect(t, &buf)
	if len(recs) != 3 {
		t.Fatalf("got %d records, want 3", len(recs))
	}
	if err := ValidateRecords(recs); err != nil {
		t.Fatalf("ValidateRecords: %v", err)
	}
	// End order is children-first.
	if recs[0].Span != "Candidate" || recs[1].Span != "DichotomicStep" || recs[2].Span != "Synthesize" {
		t.Fatalf("unexpected emit order: %s %s %s", recs[0].Span, recs[1].Span, recs[2].Span)
	}
	c := recs[0]
	if got := byID[c.Parent].Span; got != "DichotomicStep" {
		t.Fatalf("Candidate parent = %q, want DichotomicStep", got)
	}
	if got := byID[byID[c.Parent].Parent].Span; got != "Synthesize" {
		t.Fatalf("grandparent = %q, want Synthesize", got)
	}
	if v, _ := c.Attrs["clauses"].(float64); v != 15 {
		t.Fatalf("clauses attr = %v, want 15", c.Attrs["clauses"])
	}
	if v, _ := c.Attrs["grid"].(string); v != "4x2" {
		t.Fatalf("grid attr = %v", c.Attrs["grid"])
	}
	if v, _ := c.Attrs["dual"].(bool); !v {
		t.Fatalf("dual attr = %v", c.Attrs["dual"])
	}
}

// TestSpanConcurrent drives one tracer from many goroutines (the
// Workers>1 shape: one shared parent, per-goroutine subtrees). Run with
// -race this is the data-race regression test for Tracer and Span.
func TestSpanConcurrent(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	root := Start(tr, nil, "Synthesize")

	const workers, perWorker = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				cand := root.Child("Candidate")
				cand.SetInt("worker", int64(w))
				solve := cand.Child("SatSolve")
				solve.AddInt("conflicts", int64(i))
				solve.End()
				cand.End()
			}
		}(w)
	}
	wg.Wait()
	root.End()

	if err := tr.Err(); err != nil {
		t.Fatal(err)
	}
	recs, byID := collect(t, &buf)
	want := 1 + 2*workers*perWorker
	if len(recs) != want {
		t.Fatalf("got %d records, want %d", len(recs), want)
	}
	if err := ValidateRecords(recs); err != nil {
		t.Fatalf("ValidateRecords: %v", err)
	}
	for _, r := range recs {
		switch r.Span {
		case "Candidate":
			if byID[r.Parent].Span != "Synthesize" {
				t.Fatalf("Candidate parent = %q", byID[r.Parent].Span)
			}
		case "SatSolve":
			if byID[r.Parent].Span != "Candidate" {
				t.Fatalf("SatSolve parent = %q", byID[r.Parent].Span)
			}
		}
	}
}

// TestNilTracerZeroCost pins the off-switch: nil tracers yield nil spans
// and every operation on them is a safe no-op.
func TestNilTracerZeroCost(t *testing.T) {
	sp := Start(nil, nil, "Synthesize")
	if sp != nil {
		t.Fatal("nil tracer must produce a nil span")
	}
	child := sp.Child("x")
	if child != nil {
		t.Fatal("nil span must produce nil children")
	}
	sp.SetInt("a", 1)
	sp.AddInt("a", 1)
	sp.SetStr("b", "v")
	sp.SetBool("c", true)
	sp.End()
	var tr *Tracer
	if err := tr.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateTraceRejects(t *testing.T) {
	cases := map[string]string{
		"empty":            "",
		"not json":         "nope\n",
		"missing name":     `{"id":1,"start":"2026-01-01T00:00:00Z","end":"2026-01-01T00:00:00Z","dur_ns":0}` + "\n",
		"zero id":          `{"span":"S","id":0,"start":"2026-01-01T00:00:00Z","end":"2026-01-01T00:00:00Z","dur_ns":0}` + "\n",
		"missing parent":   `{"span":"S","id":1,"parent":9,"start":"2026-01-01T00:00:00Z","end":"2026-01-01T00:00:00Z","dur_ns":0}` + "\n",
		"bad duration":     `{"span":"S","id":1,"start":"2026-01-01T00:00:00Z","end":"2026-01-01T00:00:01Z","dur_ns":7}` + "\n",
		"end before start": `{"span":"S","id":1,"start":"2026-01-01T00:00:01Z","end":"2026-01-01T00:00:00Z","dur_ns":-1000000000}` + "\n",
		"duplicate id": `{"span":"S","id":1,"start":"2026-01-01T00:00:00Z","end":"2026-01-01T00:00:00Z","dur_ns":0}` + "\n" +
			`{"span":"T","id":1,"start":"2026-01-01T00:00:00Z","end":"2026-01-01T00:00:00Z","dur_ns":0}` + "\n",
	}
	for name, in := range cases {
		if _, err := ValidateTrace(strings.NewReader(in)); err == nil {
			t.Errorf("%s: validation unexpectedly passed", name)
		}
	}
}

func TestTraceRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	sp := Start(tr, nil, "SatSolve")
	sp.SetInt("conflicts", 42)
	sp.End()
	n, err := ValidateTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("round-trip validation: %v", err)
	}
	if n != 1 {
		t.Fatalf("span count = %d, want 1", n)
	}
	var raw map[string]any
	if err := json.Unmarshal(buf.Bytes(), &raw); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"span", "id", "start", "end", "dur_ns", "attrs"} {
		if _, ok := raw[key]; !ok {
			t.Fatalf("record missing %q: %v", key, raw)
		}
	}
}
