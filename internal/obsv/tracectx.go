package obsv

import (
	"context"
	"strconv"
	"strings"
)

// Cross-process trace context. The front mints a trace id per request
// and forwards it — together with the span id the next hop should root
// under — in one header:
//
//	X-Janus-Trace: <trace_id>-<parent_span_id>
//
// trace_id obeys exactly the request-id policy (SanitizeRequestID), and
// parent_span_id is the decimal tracer-local id of the forwarding span.
// Because '-' is a legal trace-id character the header splits at the
// LAST '-'; the parent id is all-digits so the split is unambiguous.
// The receiving daemon tags its per-job tracer with the trace id and
// opens its root span via StartRemote, and the front later stitches the
// two streams with StitchRecords. The header is untrusted client input
// on every hop: parse failures mean "no inbound context", never an
// error, and nothing from a rejected header is echoed anywhere.

// TraceHeader is the trace-context header name.
const TraceHeader = "X-Janus-Trace"

// SanitizeRequestID is the fleet-wide policy for client-supplied
// correlation ids (X-Request-Id, and the trace_id half of
// X-Janus-Trace): up to 64 bytes of [A-Za-z0-9._:-], accepted verbatim
// or rejected whole — it returns "" for anything else and the caller
// mints its own id. Shared here so the front and the service cannot
// drift apart on what survives a hop.
func SanitizeRequestID(id string) string {
	if len(id) == 0 || len(id) > 64 {
		return ""
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case c == '-' || c == '_' || c == '.' || c == ':':
		default:
			return ""
		}
	}
	return id
}

// TraceContext is one hop's view of a fleet-wide trace: the trace id and
// the remote span id to root under.
type TraceContext struct {
	TraceID string
	Parent  uint64
}

// Valid reports whether the context carries both halves.
func (tc TraceContext) Valid() bool {
	return tc.TraceID != "" && tc.Parent != 0
}

// String renders the X-Janus-Trace header value.
func (tc TraceContext) String() string {
	return tc.TraceID + "-" + strconv.FormatUint(tc.Parent, 10)
}

// ParseTraceContext parses an X-Janus-Trace header value. It returns
// ok=false — and a zero context — for anything malformed: no separator,
// a trace id the request-id policy rejects, or a parent id that is not
// a positive decimal uint64.
func ParseTraceContext(s string) (TraceContext, bool) {
	i := strings.LastIndexByte(s, '-')
	if i <= 0 || i == len(s)-1 {
		return TraceContext{}, false
	}
	id := SanitizeRequestID(s[:i])
	if id == "" {
		return TraceContext{}, false
	}
	parent, err := strconv.ParseUint(s[i+1:], 10, 64)
	if err != nil || parent == 0 {
		return TraceContext{}, false
	}
	return TraceContext{TraceID: id, Parent: parent}, true
}

type ctxTraceContextKey struct{}

// ContextWithTraceContext attaches an inbound trace context. Invalid
// contexts are not attached, so readers see ok=false.
func ContextWithTraceContext(ctx context.Context, tc TraceContext) context.Context {
	if !tc.Valid() {
		return ctx
	}
	return context.WithValue(ctx, ctxTraceContextKey{}, tc)
}

// TraceContextFromContext returns the trace context attached to ctx.
func TraceContextFromContext(ctx context.Context) (TraceContext, bool) {
	if ctx == nil {
		return TraceContext{}, false
	}
	tc, ok := ctx.Value(ctxTraceContextKey{}).(TraceContext)
	return tc, ok
}
