package obsv

import (
	"encoding/json"
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
)

// ServeDebug starts a background HTTP server on addr exposing
//
//	/metrics       JSON snapshot of the registry
//	/metrics/prom  the same registry in Prometheus text format
//	/debug/vars    expvar (includes the Default registry as janus_metrics)
//	/debug/pprof/  the standard pprof profiles
//
// It returns the bound listener (addr may be ":0") so callers can report
// or close it; the server runs until the listener is closed. This is the
// long-sweep escape hatch: cmd/tableii -debug-addr lets a multi-hour
// Table II run be profiled and watched without stopping it.
func ServeDebug(addr string, reg *Registry) (net.Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: DebugHandler(reg)}
	go srv.Serve(ln) //nolint:errcheck // ends when the listener closes
	return ln, nil
}

// DebugHandler returns the mux ServeDebug installs, for embedding into an
// application's own server.
func DebugHandler(reg *Registry) http.Handler {
	if reg == nil {
		reg = Default
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(reg.Snapshot()) //nolint:errcheck // best-effort debug output
	})
	mux.HandleFunc("/metrics/prom", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", PromContentType)
		WritePrometheus(w, reg) //nolint:errcheck // best-effort debug output
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
