package obsv

import (
	"expvar"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotone atomic counter. A nil Counter discards updates.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by d (negative deltas are ignored so
// snapshots stay monotone).
func (c *Counter) Add(d int64) {
	if c == nil || d <= 0 {
		return
	}
	c.v.Add(d)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value reads the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value. A nil Gauge discards updates.
type Gauge struct{ v atomic.Int64 }

// Set stores the gauge value.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add shifts the gauge by d (either sign).
func (g *Gauge) Add(d int64) {
	if g == nil {
		return
	}
	g.v.Add(d)
}

// Value reads the gauge.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets is the fixed bucket count of Histogram: bucket i counts
// observations v with 2^(i-1) < v ≤ 2^i (bucket 0 is v ≤ 1), and the last
// bucket is the +Inf overflow.
const histBuckets = 20

// Histogram accumulates an exponential-bucket distribution of int64
// observations, lock-free. A nil Histogram discards observations.
type Histogram struct {
	count  atomic.Int64
	sum    atomic.Int64
	bucket [histBuckets]atomic.Int64
}

// bucketOf maps an observation to its bucket index.
func bucketOf(v int64) int {
	i := 0
	for b := int64(1); i < histBuckets-1 && v > b; i++ {
		b <<= 1
	}
	return i
}

// Observe records one observation.
func (h *Histogram) Observe(v int64) { h.ObserveN(v, 1) }

// ObserveN records n equal observations at once (n ≤ 0 is a no-op),
// letting callers fold pre-bucketed distributions in cheaply.
func (h *Histogram) ObserveN(v, n int64) {
	if h == nil || n <= 0 {
		return
	}
	h.count.Add(n)
	h.sum.Add(v * n)
	h.bucket[bucketOf(v)].Add(n)
}

// HistogramSnapshot is the exported state of a Histogram. Buckets[i]
// counts observations ≤ 2^i (the last bucket catches everything above).
type HistogramSnapshot struct {
	Count   int64   `json:"count"`
	Sum     int64   `json:"sum"`
	Buckets []int64 `json:"buckets"`
}

// Registry is a name-keyed collection of metrics. Lookup by name takes a
// read lock; the returned metric handles update lock-free, so hot paths
// should resolve their metrics once (package-level vars) and hold them.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	funcs    map[string]func() int64
	// variants counts distinct labeled children per base histogram name,
	// enforcing the HistogramWith cardinality bound.
	variants map[string]int
}

// Default is the process-wide registry the pipeline's packages register
// into, under the naming scheme janus_<pkg>_<name>.
var Default = NewRegistry()

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		funcs:    make(map[string]func() int64),
		variants: make(map[string]int),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// maxLabelVariants bounds the distinct label sets one base metric name
// may grow via HistogramWith: two endpoints × the scheduler's 64
// tracked tenants. Past it, new label sets fold into values of "other"
// so a hostile or misconfigured label source cannot grow the registry
// (and every scrape) without bound.
const maxLabelVariants = 128

// LabeledName renders a metric name with prometheus-style labels
// attached: name{k1="v1",k2="v2"}. kv alternates keys and values; label
// values are escaped per the text exposition format, keys have invalid
// runes folded to '_'. The labeled string is the registry key — the
// JSON snapshot shows it verbatim, and WritePrometheus splits it back
// apart to splice in extra labels (le, backend).
func LabeledName(name string, kv ...string) string {
	if len(kv) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i := 0; i+1 < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(sanitizeLabelKey(kv[i]))
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(kv[i+1]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// HistogramWith returns the histogram for name with the given label
// pairs (alternating key, value), creating it on first use. Distinct
// label sets per base name are capped at maxLabelVariants; once full,
// new sets fold into a single overflow child whose values are all
// "other", so observations are never dropped — only their label detail.
func (r *Registry) HistogramWith(name string, kv ...string) *Histogram {
	labeled := LabeledName(name, kv...)
	r.mu.RLock()
	h := r.hists[labeled]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[labeled]; h != nil {
		return h
	}
	if r.variants[name] >= maxLabelVariants {
		folded := make([]string, len(kv))
		for i := range kv {
			if i%2 == 0 {
				folded[i] = kv[i]
			} else {
				folded[i] = "other"
			}
		}
		labeled = LabeledName(name, folded...)
		if h = r.hists[labeled]; h != nil {
			return h
		}
	}
	h = &Histogram{}
	r.hists[labeled] = h
	r.variants[name]++
	return h
}

// RegisterFunc registers a read-only gauge backed by fn; snapshots call
// it. Registering a name twice keeps the latest function.
func (r *Registry) RegisterFunc(name string, fn func() int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.funcs[name] = fn
}

// Snapshot is a point-in-time copy of a registry's metrics, JSON-ready
// (this is what /metrics and expvar serve). Function-backed gauges land
// in Gauges next to the explicit ones.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Get reads one metric from the snapshot by name, counters first.
func (s Snapshot) Get(name string) int64 {
	if v, ok := s.Counters[name]; ok {
		return v
	}
	return s.Gauges[name]
}

// Names returns every metric name in the snapshot, sorted.
func (s Snapshot) Names() []string {
	names := make([]string, 0, len(s.Counters)+len(s.Gauges)+len(s.Histograms))
	for n := range s.Counters {
		names = append(names, n)
	}
	for n := range s.Gauges {
		names = append(names, n)
	}
	for n := range s.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Snapshot captures the current value of every registered metric.
// Counter values are monotone across successive snapshots.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]int64, len(r.gauges)+len(r.funcs)),
		Histograms: make(map[string]HistogramSnapshot, len(r.hists)),
	}
	for n, c := range r.counters {
		s.Counters[n] = c.Value()
	}
	for n, g := range r.gauges {
		s.Gauges[n] = g.Value()
	}
	for n, fn := range r.funcs {
		s.Gauges[n] = fn()
	}
	for n, h := range r.hists {
		hs := HistogramSnapshot{
			Count:   h.count.Load(),
			Sum:     h.sum.Load(),
			Buckets: make([]int64, histBuckets),
		}
		for i := range hs.Buckets {
			hs.Buckets[i] = h.bucket[i].Load()
		}
		s.Histograms[n] = hs
	}
	return s
}

// The Default registry is published to expvar under "janus_metrics", so
// any /debug/vars endpoint (ours or the application's own) includes it.
func init() {
	expvar.Publish("janus_metrics", expvar.Func(func() any {
		return Default.Snapshot()
	}))
}
