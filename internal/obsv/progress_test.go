package obsv

import (
	"context"
	"strings"
	"sync"
	"testing"
)

// TestProgressKindStrings: the kind names are the event stream's wire
// vocabulary; renames break SSE consumers.
func TestProgressKindStrings(t *testing.T) {
	want := map[ProgressKind]string{
		ProgressPhaseStart: "phase_start",
		ProgressPhaseDone:  "phase_done",
		ProgressBound:      "bound",
		ProgressIncumbent:  "incumbent",
		ProgressStep:       "step",
		ProgressKind(0):    "unknown",
		ProgressKind(99):   "unknown",
	}
	for k, s := range want {
		if k.String() != s {
			t.Fatalf("kind %d = %q, want %q", k, k.String(), s)
		}
	}
}

// TestProgressContext: the sink rides the context like the tracer does,
// and both a nil context and a sink-free context read back nil.
func TestProgressContext(t *testing.T) {
	if ProgressFromContext(nil) != nil { //nolint:staticcheck // nil ctx is the point
		t.Fatal("nil context must carry no sink")
	}
	if ProgressFromContext(context.Background()) != nil {
		t.Fatal("fresh context must carry no sink")
	}
	pw := NewProgressWriter(&strings.Builder{})
	ctx := ContextWithProgress(context.Background(), pw)
	if got := ProgressFromContext(ctx); got != ProgressSink(pw) {
		t.Fatalf("round-trip lost the sink: %v", got)
	}
}

// TestProgressWriterRendering: one line per event, offset-stamped, with
// the sub prefix and verified suffix where they apply.
func TestProgressWriterRendering(t *testing.T) {
	var buf strings.Builder
	pw := NewProgressWriter(&buf)
	pw.Progress(ProgressEvent{Kind: ProgressPhaseStart, Phase: "bounds"})
	pw.Progress(ProgressEvent{Kind: ProgressBound, LB: 4, UB: 12, Method: "DPS"})
	pw.Progress(ProgressEvent{Kind: ProgressIncumbent, Size: 9, Grid: "3x3", Verified: true})
	pw.Progress(ProgressEvent{Kind: ProgressStep, Step: 2, Engine: "fresh", GridsProbed: 5})
	pw.Progress(ProgressEvent{Kind: ProgressBound, LB: 2, UB: 6, Method: "sat", Sub: true})
	pw.Progress(ProgressEvent{Kind: ProgressPhaseDone, Phase: "bounds"})
	pw.Progress(ProgressEvent{Kind: ProgressKind(42)}) // unknown kinds are dropped

	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	want := []string{
		"phase bounds",
		"bound lb=4 ub=12 (DPS)",
		"incumbent 3x3=9 verified",
		"step 2 engine=fresh grids=5",
		"sub bound lb=2 ub=6 (sat)",
		"phase bounds done",
	}
	if len(lines) != len(want) {
		t.Fatalf("%d lines, want %d:\n%s", len(lines), len(want), buf.String())
	}
	for i, w := range want {
		if !strings.HasPrefix(lines[i], "[") || !strings.Contains(lines[i], "s] "+w) {
			t.Fatalf("line %d = %q, want offset + %q", i, lines[i], w)
		}
	}
}

// TestProgressWriterNil: nil writers and sinks discard events without
// panicking — the allocation-free-when-off contract's last line.
func TestProgressWriterNil(t *testing.T) {
	var pw *ProgressWriter
	pw.Progress(ProgressEvent{Kind: ProgressBound})
	(&ProgressWriter{}).Progress(ProgressEvent{Kind: ProgressBound})
}

// TestProgressWriterConcurrent: emission sites run from parallel search
// workers; the writer must serialize lines (runs under -race in CI).
func TestProgressWriterConcurrent(t *testing.T) {
	// strings.Builder is not itself goroutine-safe: the writer's own
	// mutex is what must serialize these (checked under -race in CI).
	var buf strings.Builder
	pw := NewProgressWriter(&buf)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				pw.Progress(ProgressEvent{Kind: ProgressStep, Step: i, Engine: "fresh"})
			}
		}()
	}
	wg.Wait()
	if n := strings.Count(buf.String(), "\n"); n != 400 {
		t.Fatalf("%d lines, want 400", n)
	}
}
