package obsv

import (
	"bytes"
	"io"
	"sync"
)

// TraceBuffer default bounds: enough for the full span tree of a typical
// service job (a few hundred spans) with headroom, while keeping the
// worst case per retained job around a megabyte.
const (
	DefaultTraceSpans = 4096
	DefaultTraceBytes = 1 << 20
)

// TraceBuffer is a bounded in-memory JSONL sink for a Tracer: the
// service gives each job its own tracer writing here, keeps the buffer
// on the finished job, and serves it back via GET /v1/jobs/{id}/trace.
//
// Each Write call is one span line (the Tracer emits exactly one line
// per call, under its own mutex). When a bound is exceeded the OLDEST
// lines are evicted, which keeps the remaining trace schema-valid:
// spans are emitted in end order and a parent always ends after its
// children, so every suffix of the line stream resolves all parent
// references, and the job's root span — last to end — survives any
// eviction. Dropped reports how many lines were evicted, so readers can
// tell a truncated trace from a complete one.
type TraceBuffer struct {
	mu       sync.Mutex
	lines    [][]byte
	bytes    int64
	maxSpans int
	maxBytes int64
	dropped  int64
}

// NewTraceBuffer returns a buffer bounded by maxSpans lines and maxBytes
// total bytes; zero or negative values take the defaults.
func NewTraceBuffer(maxSpans int, maxBytes int64) *TraceBuffer {
	if maxSpans <= 0 {
		maxSpans = DefaultTraceSpans
	}
	if maxBytes <= 0 {
		maxBytes = DefaultTraceBytes
	}
	return &TraceBuffer{maxSpans: maxSpans, maxBytes: maxBytes}
}

// Write stores one span line, evicting the oldest lines when a bound is
// exceeded. It never fails; implements io.Writer for NewTracer.
func (b *TraceBuffer) Write(p []byte) (int, error) {
	line := append([]byte(nil), p...)
	b.mu.Lock()
	defer b.mu.Unlock()
	b.lines = append(b.lines, line)
	b.bytes += int64(len(line))
	for len(b.lines) > b.maxSpans || (b.bytes > b.maxBytes && len(b.lines) > 1) {
		b.bytes -= int64(len(b.lines[0]))
		b.lines[0] = nil
		b.lines = b.lines[1:]
		b.dropped++
	}
	return len(p), nil
}

// Spans returns the number of retained span lines.
func (b *TraceBuffer) Spans() int {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.lines)
}

// Dropped returns how many span lines eviction discarded.
func (b *TraceBuffer) Dropped() int64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.dropped
}

// Bytes returns the retained JSONL as one byte slice (a copy).
func (b *TraceBuffer) Bytes() []byte {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	var buf bytes.Buffer
	buf.Grow(int(b.bytes))
	for _, l := range b.lines {
		buf.Write(l)
	}
	return buf.Bytes()
}

// WriteTo streams the retained JSONL to w.
func (b *TraceBuffer) WriteTo(w io.Writer) (int64, error) {
	data := b.Bytes()
	n, err := w.Write(data)
	return int64(n), err
}
