package obsv

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text exposition (version 0.0.4), stdlib-only. The registry
// stays integer-valued and exponential-bucketed; this file only renders:
//
//   - counters and function gauges as single series,
//   - histograms as cumulative _bucket/_sum/_count families, with le
//     bounds 2^0, 2^1, … matching bucketOf (bucket i counts v ≤ 2^i,
//     the last bucket is +Inf),
//   - labeled registry names (see LabeledName) split back into base name
//     + label block so extra labels (le, backend) splice in cleanly.
//
// Metric names have invalid runes folded to '_' at render time; label
// values are escaped per the format (\\, \", \n). Series order is
// deterministic (sorted) so goldens and diffs are stable.

// PromContentType is the Content-Type of the text exposition format.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus renders the registry's current snapshot in the
// Prometheus text exposition format.
func WritePrometheus(w io.Writer, r *Registry) error {
	if r == nil {
		r = Default
	}
	return WriteSnapshotProm(w, r.Snapshot())
}

// WriteSnapshotProm renders an already-taken snapshot. extraKV is an
// alternating key/value list of labels added to every series — the
// front uses it to tag each backend's re-exported snapshot with
// backend="host:port" in its fleet view.
func WriteSnapshotProm(w io.Writer, s Snapshot, extraKV ...string) error {
	var b strings.Builder
	writePromFamilies(&b, s.Counters, "counter", extraKV)
	writePromFamilies(&b, s.Gauges, "gauge", extraKV)
	writePromHistograms(&b, s.Histograms, extraKV)
	_, err := io.WriteString(w, b.String())
	return err
}

// LabeledSnapshot pairs a registry snapshot with labels stamped on
// every series it contributes to a fleet render.
type LabeledSnapshot struct {
	Snapshot Snapshot
	// Labels alternates key, value (e.g. "backend", "host:7151").
	Labels []string
}

// WriteFleetProm renders several snapshots as ONE exposition: series
// from every source are merged per family before rendering, so each
// family gets exactly one # TYPE line even when the same metric exists
// on every backend. This is what the front's /metrics/prom serves — its
// own registry unlabeled next to each member's snapshot tagged
// backend="id". Same-key collisions sum for counters and last-write for
// gauges/histograms; distinct Labels per source avoid them entirely.
func WriteFleetProm(w io.Writer, snaps []LabeledSnapshot) error {
	counters := map[string]int64{}
	gauges := map[string]int64{}
	hists := map[string]HistogramSnapshot{}
	for _, ls := range snaps {
		for n, v := range ls.Snapshot.Counters {
			counters[mergeLabels(n, ls.Labels)] += v
		}
		for n, v := range ls.Snapshot.Gauges {
			gauges[mergeLabels(n, ls.Labels)] = v
		}
		for n, h := range ls.Snapshot.Histograms {
			hists[mergeLabels(n, ls.Labels)] = h
		}
	}
	var b strings.Builder
	writePromFamilies(&b, counters, "counter", nil)
	writePromFamilies(&b, gauges, "gauge", nil)
	writePromHistograms(&b, hists, nil)
	_, err := io.WriteString(w, b.String())
	return err
}

// mergeLabels folds extra label pairs into a registry key's label
// block, producing a key splitLabeledName round-trips.
func mergeLabels(name string, kv []string) string {
	if len(kv) == 0 {
		return name
	}
	base, inner := splitLabeledName(name)
	return base + joinLabels(inner, kv, "")
}

// splitLabeledName separates a registry key built by LabeledName into
// its base name and the inner label list (without braces).
func splitLabeledName(name string) (base, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 && strings.HasSuffix(name, "}") {
		return name[:i], name[i+1 : len(name)-1]
	}
	return name, ""
}

// sanitizeMetricName folds runes outside [a-zA-Z0-9_:] to '_' and
// guards against a leading digit.
func sanitizeMetricName(name string) string {
	if name == "" {
		return "_"
	}
	var b []byte
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(c >= '0' && c <= '9' && i > 0)
		if ok {
			if b != nil {
				b = append(b, c)
			}
			continue
		}
		if b == nil {
			b = append([]byte{}, name[:i]...)
		}
		b = append(b, '_')
	}
	if b == nil {
		return name
	}
	return string(b)
}

// sanitizeLabelKey folds runes outside [a-zA-Z0-9_] to '_' (label names
// allow no colon) and guards against a leading digit.
func sanitizeLabelKey(k string) string {
	k = sanitizeMetricName(k)
	return strings.ReplaceAll(k, ":", "_")
}

// escapeLabelValue escapes a label value per the text format.
func escapeLabelValue(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// joinLabels merges an inner label list (already in k="v" form), extra
// key/value pairs, and an optional le bound into one {…} block, or ""
// when every part is empty.
func joinLabels(inner string, extraKV []string, le string) string {
	parts := make([]string, 0, 3)
	if inner != "" {
		parts = append(parts, inner)
	}
	for i := 0; i+1 < len(extraKV); i += 2 {
		parts = append(parts,
			sanitizeLabelKey(extraKV[i])+`="`+escapeLabelValue(extraKV[i+1])+`"`)
	}
	if le != "" {
		parts = append(parts, `le="`+le+`"`)
	}
	if len(parts) == 0 {
		return ""
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// promSortedNames returns map keys sorted by (sanitized base, full
// name), so labeled variants of one family render contiguously.
func promSortedNames[V any](m map[string]V) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool {
		bi, _ := splitLabeledName(names[i])
		bj, _ := splitLabeledName(names[j])
		if bi != bj {
			return sanitizeMetricName(bi) < sanitizeMetricName(bj)
		}
		return names[i] < names[j]
	})
	return names
}

func writePromFamilies(b *strings.Builder, m map[string]int64, typ string, extraKV []string) {
	lastBase := ""
	for _, name := range promSortedNames(m) {
		base, inner := splitLabeledName(name)
		base = sanitizeMetricName(base)
		if base != lastBase {
			fmt.Fprintf(b, "# TYPE %s %s\n", base, typ)
			lastBase = base
		}
		b.WriteString(base)
		b.WriteString(joinLabels(inner, extraKV, ""))
		b.WriteByte(' ')
		b.WriteString(strconv.FormatInt(m[name], 10))
		b.WriteByte('\n')
	}
}

func writePromHistograms(b *strings.Builder, m map[string]HistogramSnapshot, extraKV []string) {
	lastBase := ""
	for _, name := range promSortedNames(m) {
		base, inner := splitLabeledName(name)
		base = sanitizeMetricName(base)
		if base != lastBase {
			fmt.Fprintf(b, "# TYPE %s histogram\n", base)
			lastBase = base
		}
		h := m[name]
		var cum int64
		for i, n := range h.Buckets {
			cum += n
			le := "+Inf"
			if i < len(h.Buckets)-1 {
				le = strconv.FormatInt(1<<uint(i), 10)
			}
			b.WriteString(base)
			b.WriteString("_bucket")
			b.WriteString(joinLabels(inner, extraKV, le))
			b.WriteByte(' ')
			b.WriteString(strconv.FormatInt(cum, 10))
			b.WriteByte('\n')
		}
		b.WriteString(base)
		b.WriteString("_sum")
		b.WriteString(joinLabels(inner, extraKV, ""))
		b.WriteByte(' ')
		b.WriteString(strconv.FormatInt(h.Sum, 10))
		b.WriteByte('\n')
		b.WriteString(base)
		b.WriteString("_count")
		b.WriteString(joinLabels(inner, extraKV, ""))
		b.WriteByte(' ')
		b.WriteString(strconv.FormatInt(h.Count, 10))
		b.WriteByte('\n')
	}
}
