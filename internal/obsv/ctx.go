package obsv

import "context"

// Context carriage for request-scoped observability. The service layer
// attaches a per-job tracer, the job's root span, and the request id to
// the context it hands core.Synthesize; the synthesis layers read them
// back here instead of growing option structs at every level. All
// accessors tolerate a nil context (core.Options.Ctx may be nil) and
// return the zero value when nothing was attached, so call sites need no
// enablement checks — exactly like the nil-safe Span methods.

type ctxKey int

const (
	ctxTracerKey ctxKey = iota
	ctxSpanKey
	ctxRequestIDKey
)

// ContextWithTracer returns a context carrying t. A nil t is allowed and
// simply means "tracing off" downstream.
func ContextWithTracer(ctx context.Context, t *Tracer) context.Context {
	return context.WithValue(ctx, ctxTracerKey, t)
}

// TracerFromContext returns the tracer attached to ctx, or nil.
func TracerFromContext(ctx context.Context) *Tracer {
	if ctx == nil {
		return nil
	}
	t, _ := ctx.Value(ctxTracerKey).(*Tracer)
	return t
}

// ContextWithSpan returns a context carrying sp as the current span, the
// parent under which a downstream synthesis roots its trace.
func ContextWithSpan(ctx context.Context, sp *Span) context.Context {
	return context.WithValue(ctx, ctxSpanKey, sp)
}

// SpanFromContext returns the current span attached to ctx, or nil.
func SpanFromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	sp, _ := ctx.Value(ctxSpanKey).(*Span)
	return sp
}

// ContextWithRequestID returns a context carrying the request id.
func ContextWithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, ctxRequestIDKey, id)
}

// RequestIDFromContext returns the request id attached to ctx, or "".
func RequestIDFromContext(ctx context.Context) string {
	if ctx == nil {
		return ""
	}
	id, _ := ctx.Value(ctxRequestIDKey).(string)
	return id
}
