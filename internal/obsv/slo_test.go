package obsv

import (
	"math"
	"sync"
	"testing"
	"time"
)

// TestSLOBurnRates: at a 99% target, a window with 10% bad requests
// burns budget at 10x the sustainable rate; an all-good window burns 0.
func TestSLOBurnRates(t *testing.T) {
	s := NewSLO("synthesize", 100*time.Millisecond, 0.99)
	now := time.Unix(1_000_000, 0)
	for i := 0; i < 90; i++ {
		s.ObserveAt(now, 10*time.Millisecond)
	}
	for i := 0; i < 10; i++ {
		s.ObserveAt(now, time.Second)
	}
	snap := s.SnapshotAt(now)
	if snap.Good != 90 || snap.Total != 100 {
		t.Fatalf("good/total = %d/%d, want 90/100", snap.Good, snap.Total)
	}
	if math.Abs(snap.BurnRate5m-10) > 1e-9 {
		t.Fatalf("burn_5m = %v, want 10", snap.BurnRate5m)
	}
	if math.Abs(snap.BurnRate1h-10) > 1e-9 {
		t.Fatalf("burn_1h = %v, want 10", snap.BurnRate1h)
	}
}

// TestSLOWindowExpiry: bad observations older than a window stop
// contributing to that window's burn rate but stay in the 1h window and
// the lifetime counters.
func TestSLOWindowExpiry(t *testing.T) {
	s := NewSLO("synthesize", 100*time.Millisecond, 0.99)
	t0 := time.Unix(2_000_000, 0)
	s.ObserveAt(t0, time.Second) // bad
	s.ObserveAt(t0, 10*time.Millisecond)

	// Ten minutes later: outside 5m, inside 1h.
	t1 := t0.Add(10 * time.Minute)
	for i := 0; i < 8; i++ {
		s.ObserveAt(t1, 10*time.Millisecond)
	}
	snap := s.SnapshotAt(t1)
	if snap.BurnRate5m != 0 {
		t.Fatalf("burn_5m = %v, want 0 (bad request aged out)", snap.BurnRate5m)
	}
	if snap.BurnRate1h == 0 {
		t.Fatal("burn_1h lost the bad request inside its window")
	}
	if snap.Good != 9 || snap.Total != 10 {
		t.Fatalf("lifetime good/total = %d/%d, want 9/10", snap.Good, snap.Total)
	}

	// Two hours later every window is clean.
	t2 := t0.Add(2 * time.Hour)
	snap = s.SnapshotAt(t2)
	if snap.BurnRate5m != 0 || snap.BurnRate1h != 0 {
		t.Fatalf("burn after 2h = %v/%v, want 0/0", snap.BurnRate5m, snap.BurnRate1h)
	}
}

// TestSLORegister: the registry surfaces the SLO as function-backed
// gauges, burn rates in milli-units.
func TestSLORegister(t *testing.T) {
	r := NewRegistry()
	s := NewSLO("ep", 50*time.Millisecond, 0.9)
	s.Register(r, "janus_service_slo_ep")
	now := time.Now()
	s.ObserveAt(now, 10*time.Millisecond)
	s.ObserveAt(now, time.Second)
	snap := r.Snapshot()
	if snap.Gauges["janus_service_slo_ep_total"] != 2 ||
		snap.Gauges["janus_service_slo_ep_good_total"] != 1 {
		t.Fatalf("registry gauges: %+v", snap.Gauges)
	}
	// 50% bad over a 10% budget = burn 5.0 = 5000 milli.
	if got := snap.Gauges["janus_service_slo_ep_burn_5m_milli"]; got != 5000 {
		t.Fatalf("burn gauge = %d, want 5000", got)
	}
}

// TestSLOBucketRingWraparound: the ring is 361 buckets of 10s, so two
// observations 3610s apart land in the SAME slot under different epochs.
// The stale epoch must neither pollute the new windows nor survive the
// slot's reuse — the failure mode a modulo ring invites.
func TestSLOBucketRingWraparound(t *testing.T) {
	s := NewSLO("ep", 100*time.Millisecond, 0.99)
	t0 := time.Unix(3_000_000, 0)
	// An all-bad burst at t0: burn rate 100x at a 1% budget.
	for i := 0; i < 5; i++ {
		s.ObserveAt(t0, time.Second)
	}
	if snap := s.SnapshotAt(t0); math.Abs(snap.BurnRate5m-100) > 1e-9 {
		t.Fatalf("burn at t0 = %v, want 100", snap.BurnRate5m)
	}

	// Exactly one ring revolution later the burst's slot is current
	// again. Before any new observation, both windows must read clean:
	// the bucket's epoch says t0, not t1, so it no longer counts.
	t1 := t0.Add(sloBuckets * sloBucketSec * time.Second)
	snap := s.SnapshotAt(t1)
	if snap.BurnRate5m != 0 || snap.BurnRate1h != 0 {
		t.Fatalf("stale epoch leaked through ring reuse: 5m=%v 1h=%v",
			snap.BurnRate5m, snap.BurnRate1h)
	}

	// Writing into the reused slot must reset it, not inherit the old
	// bad counts: one good observation reads as burn 0, total 1.
	s.ObserveAt(t1, 10*time.Millisecond)
	snap = s.SnapshotAt(t1)
	if snap.BurnRate5m != 0 || snap.BurnRate1h != 0 {
		t.Fatalf("reused slot inherited stale counts: 5m=%v 1h=%v",
			snap.BurnRate5m, snap.BurnRate1h)
	}
	if snap.Good != 1 || snap.Total != 6 {
		t.Fatalf("lifetime good/total = %d/%d, want 1/6", snap.Good, snap.Total)
	}

	// A steady mixed load spanning the wrap: one bad per minute for two
	// hours (every observation reuses slots from two revolutions back by
	// the end). The 1h window must hold exactly the last hour's 60 bad
	// observations — no double counting, no loss.
	s2 := NewSLO("ep2", 100*time.Millisecond, 0.9)
	base := time.Unix(4_000_000, 0)
	for min := 0; min < 120; min++ {
		at := base.Add(time.Duration(min) * time.Minute)
		s2.ObserveAt(at, time.Second)         // bad
		s2.ObserveAt(at, 10*time.Millisecond) // good
	}
	end := base.Add(119 * time.Minute)
	snap = s2.SnapshotAt(end)
	// 1h window = minutes 60..119: 60 bad of 120 observations → 50% bad
	// over a 10% budget → burn 5.
	if math.Abs(snap.BurnRate1h-5) > 1e-9 {
		t.Fatalf("burn_1h across wrap = %v, want 5", snap.BurnRate1h)
	}
	if math.Abs(snap.BurnRate5m-5) > 1e-9 {
		t.Fatalf("burn_5m across wrap = %v, want 5", snap.BurnRate5m)
	}
}

// TestSLONil: a nil SLO observes and snapshots as a no-op.
func TestSLONil(t *testing.T) {
	var s *SLO
	s.Observe(time.Second)
	if snap := s.Snapshot(); snap.Total != 0 {
		t.Fatalf("nil SLO snapshot: %+v", snap)
	}
}

// TestSLOConcurrentSnapshot: parallel observers and snapshotters must be
// race-free (runs under -race in CI).
func TestSLOConcurrentSnapshot(t *testing.T) {
	s := NewSLO("ep", 50*time.Millisecond, 0.99)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				s.Observe(time.Duration(i) * time.Millisecond)
			}
		}()
	}
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				s.Snapshot()
			}
		}()
	}
	wg.Wait()
	if snap := s.Snapshot(); snap.Total != 2000 {
		t.Fatalf("total = %d, want 2000", snap.Total)
	}
}
