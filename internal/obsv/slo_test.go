package obsv

import (
	"math"
	"sync"
	"testing"
	"time"
)

// TestSLOBurnRates: at a 99% target, a window with 10% bad requests
// burns budget at 10x the sustainable rate; an all-good window burns 0.
func TestSLOBurnRates(t *testing.T) {
	s := NewSLO("synthesize", 100*time.Millisecond, 0.99)
	now := time.Unix(1_000_000, 0)
	for i := 0; i < 90; i++ {
		s.ObserveAt(now, 10*time.Millisecond)
	}
	for i := 0; i < 10; i++ {
		s.ObserveAt(now, time.Second)
	}
	snap := s.SnapshotAt(now)
	if snap.Good != 90 || snap.Total != 100 {
		t.Fatalf("good/total = %d/%d, want 90/100", snap.Good, snap.Total)
	}
	if math.Abs(snap.BurnRate5m-10) > 1e-9 {
		t.Fatalf("burn_5m = %v, want 10", snap.BurnRate5m)
	}
	if math.Abs(snap.BurnRate1h-10) > 1e-9 {
		t.Fatalf("burn_1h = %v, want 10", snap.BurnRate1h)
	}
}

// TestSLOWindowExpiry: bad observations older than a window stop
// contributing to that window's burn rate but stay in the 1h window and
// the lifetime counters.
func TestSLOWindowExpiry(t *testing.T) {
	s := NewSLO("synthesize", 100*time.Millisecond, 0.99)
	t0 := time.Unix(2_000_000, 0)
	s.ObserveAt(t0, time.Second) // bad
	s.ObserveAt(t0, 10*time.Millisecond)

	// Ten minutes later: outside 5m, inside 1h.
	t1 := t0.Add(10 * time.Minute)
	for i := 0; i < 8; i++ {
		s.ObserveAt(t1, 10*time.Millisecond)
	}
	snap := s.SnapshotAt(t1)
	if snap.BurnRate5m != 0 {
		t.Fatalf("burn_5m = %v, want 0 (bad request aged out)", snap.BurnRate5m)
	}
	if snap.BurnRate1h == 0 {
		t.Fatal("burn_1h lost the bad request inside its window")
	}
	if snap.Good != 9 || snap.Total != 10 {
		t.Fatalf("lifetime good/total = %d/%d, want 9/10", snap.Good, snap.Total)
	}

	// Two hours later every window is clean.
	t2 := t0.Add(2 * time.Hour)
	snap = s.SnapshotAt(t2)
	if snap.BurnRate5m != 0 || snap.BurnRate1h != 0 {
		t.Fatalf("burn after 2h = %v/%v, want 0/0", snap.BurnRate5m, snap.BurnRate1h)
	}
}

// TestSLORegister: the registry surfaces the SLO as function-backed
// gauges, burn rates in milli-units.
func TestSLORegister(t *testing.T) {
	r := NewRegistry()
	s := NewSLO("ep", 50*time.Millisecond, 0.9)
	s.Register(r, "janus_service_slo_ep")
	now := time.Now()
	s.ObserveAt(now, 10*time.Millisecond)
	s.ObserveAt(now, time.Second)
	snap := r.Snapshot()
	if snap.Gauges["janus_service_slo_ep_total"] != 2 ||
		snap.Gauges["janus_service_slo_ep_good_total"] != 1 {
		t.Fatalf("registry gauges: %+v", snap.Gauges)
	}
	// 50% bad over a 10% budget = burn 5.0 = 5000 milli.
	if got := snap.Gauges["janus_service_slo_ep_burn_5m_milli"]; got != 5000 {
		t.Fatalf("burn gauge = %d, want 5000", got)
	}
}

// TestSLONil: a nil SLO observes and snapshots as a no-op.
func TestSLONil(t *testing.T) {
	var s *SLO
	s.Observe(time.Second)
	if snap := s.Snapshot(); snap.Total != 0 {
		t.Fatalf("nil SLO snapshot: %+v", snap)
	}
}

// TestSLOConcurrentSnapshot: parallel observers and snapshotters must be
// race-free (runs under -race in CI).
func TestSLOConcurrentSnapshot(t *testing.T) {
	s := NewSLO("ep", 50*time.Millisecond, 0.99)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				s.Observe(time.Duration(i) * time.Millisecond)
			}
		}()
	}
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				s.Snapshot()
			}
		}()
	}
	wg.Wait()
	if snap := s.Snapshot(); snap.Total != 2000 {
		t.Fatalf("total = %d, want 2000", snap.Total)
	}
}
