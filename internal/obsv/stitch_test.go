package obsv

import (
	"bytes"
	"strings"
	"testing"
)

// TestTraceContextRoundTrip: header format survives parse/format, and
// trace ids containing '-' split correctly at the last separator.
func TestTraceContextRoundTrip(t *testing.T) {
	for _, tc := range []TraceContext{
		{TraceID: "t4f2a-12", Parent: 7},
		{TraceID: "f00:ba.r_8", Parent: 18446744073709551615},
		{TraceID: "x", Parent: 1},
	} {
		got, ok := ParseTraceContext(tc.String())
		if !ok || got != tc {
			t.Fatalf("round trip %q: got %+v ok=%v", tc.String(), got, ok)
		}
	}
}

// TestTraceContextRejects: malformed headers parse to ok=false — no
// separator, junk runes, oversize ids, zero or non-decimal parents.
func TestTraceContextRejects(t *testing.T) {
	for _, s := range []string{
		"", "-", "noparent", "noparent-", "-7", "t1-0", "t1-x7", "t1-7x",
		"sp ace-7", "ёжик-7", strings.Repeat("a", 65) + "-7",
		"t1--", "t1-7-", "t1-18446744073709551616", // uint64 overflow
	} {
		if got, ok := ParseTraceContext(s); ok {
			t.Fatalf("ParseTraceContext(%q) accepted: %+v", s, got)
		}
	}
}

// TestSanitizeRequestID: the shared policy — verbatim or rejected whole.
func TestSanitizeRequestID(t *testing.T) {
	if got := SanitizeRequestID("r1.a:B_c-9"); got != "r1.a:B_c-9" {
		t.Fatalf("valid id mangled: %q", got)
	}
	for _, bad := range []string{"", "a b", "a\nb", "a/b", strings.Repeat("x", 65)} {
		if SanitizeRequestID(bad) != "" {
			t.Fatalf("SanitizeRequestID(%q) accepted", bad)
		}
	}
}

// frontAndBackend builds the two process-local streams of one fleet
// request: a front Route span with one Attempt child, and a backend
// whose Job tree was opened under the attempt's span id via the trace
// context. backendSpans controls the backend's TraceBuffer bound, to
// exercise ring eviction before stitching.
func frontAndBackend(t *testing.T, backendSpans int, backendChildren int) (front, backend []byte, attemptID uint64) {
	t.Helper()
	fbuf := NewTraceBuffer(0, 0)
	ftr := NewTracer(fbuf)
	ftr.SetTrace("t-fleet-1", "front")
	route := Start(ftr, nil, "Route")
	route.SetStr("owner", "b1:7151")
	attempt := route.Child("Attempt")
	attempt.SetStr("backend", "b1:7151")
	attemptID = attempt.ID()

	// The backend parses the X-Janus-Trace header the attempt carried.
	tc, ok := ParseTraceContext(TraceContext{TraceID: "t-fleet-1", Parent: attemptID}.String())
	if !ok {
		t.Fatal("minted trace context failed to parse")
	}
	bbuf := NewTraceBuffer(backendSpans, 0)
	btr := NewTracer(bbuf)
	btr.SetTrace(tc.TraceID, "janusd")
	job := StartRemote(btr, tc.Parent, "Job")
	synth := job.Child("Synthesize")
	for i := 0; i < backendChildren; i++ {
		c := synth.Child("Candidate")
		c.Child("SatSolve").End()
		c.End()
	}
	synth.End()
	job.End()

	attempt.End()
	route.End()
	return fbuf.Bytes(), bbuf.Bytes(), attemptID
}

// TestStitchTraces: a front stream and a backend stream merge into one
// schema-valid trace under one trace id, with the backend's Job rooted
// under the front's Attempt span and children preceding parents
// throughout (every suffix of the stitched stream must validate).
func TestStitchTraces(t *testing.T) {
	front, backend, attemptID := frontAndBackend(t, 0, 3)
	stitched, err := StitchTraces(front, backend)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := ReadTrace(bytes.NewReader(stitched))
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateRecords(recs); err != nil {
		t.Fatalf("stitched trace invalid: %v", err)
	}

	// One trace id across every span.
	for _, rec := range recs {
		if rec.TraceID != "t-fleet-1" {
			t.Fatalf("span %q trace_id = %q, want t-fleet-1", rec.Span, rec.TraceID)
		}
	}

	// Exactly one root: the front's Route. The backend Job became a real
	// child of the Attempt span and its advisory remote_parent is gone.
	var job, route *Record
	index := make(map[uint64]int, len(recs))
	for i := range recs {
		index[recs[i].ID] = i
		switch recs[i].Span {
		case "Job":
			job = &recs[i]
		case "Route":
			route = &recs[i]
		}
		if recs[i].Parent == 0 && recs[i].Span != "Route" {
			t.Fatalf("unexpected extra root %q", recs[i].Span)
		}
	}
	if job == nil || route == nil {
		t.Fatal("stitched trace missing Job or Route span")
	}
	if job.RemoteParent != 0 {
		t.Fatalf("Job kept advisory remote_parent %d after stitching", job.RemoteParent)
	}
	attempt := recs[index[job.Parent]]
	if attempt.Span != "Attempt" || attempt.Proc != "front" {
		t.Fatalf("Job parent is %q/%q, want front Attempt", attempt.Span, attempt.Proc)
	}
	_ = attemptID

	// Children precede parents: each non-root span's parent line comes
	// later, so every suffix of the stream resolves (the TraceBuffer
	// eviction invariant must survive stitching).
	for i, rec := range recs {
		if rec.Parent == 0 {
			continue
		}
		if index[rec.Parent] <= i {
			t.Fatalf("span %q (line %d) follows its parent (line %d): suffix validity broken",
				rec.Span, i, index[rec.Parent])
		}
	}
}

// TestStitchEvictedBackend: when the backend's ring buffer evicted the
// trace down to (nearly) its root, stitching still yields a valid
// stream — the surviving Job root re-roots under the front attempt and
// evicted children are simply absent, never dangling.
func TestStitchEvictedBackend(t *testing.T) {
	front, backend, _ := frontAndBackend(t, 2, 100)
	brecs, err := ReadTrace(bytes.NewReader(backend))
	if err != nil {
		t.Fatal(err)
	}
	if len(brecs) != 2 {
		t.Fatalf("backend retained %d spans, want 2 (eviction not exercised)", len(brecs))
	}
	// The backend stream alone validates even though eviction stranded a
	// suffix (Synthesize's parent Job survives; Candidate children are gone).
	if err := ValidateRecords(brecs); err != nil {
		t.Fatalf("evicted backend trace invalid before stitching: %v", err)
	}
	stitched, err := StitchTraces(front, backend)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ValidateTrace(bytes.NewReader(stitched)); err != nil {
		t.Fatalf("stitched trace with evicted backend invalid: %v", err)
	}
	if !strings.Contains(string(stitched), `"span":"Job"`) ||
		!strings.Contains(string(stitched), `"span":"Route"`) {
		t.Fatal("stitched trace lost a root span")
	}
}

// TestStitchEmptySides: either stream may be empty; the other passes
// through.
func TestStitchEmptySides(t *testing.T) {
	front, backend, _ := frontAndBackend(t, 0, 1)
	if out, err := StitchTraces(front, nil); err != nil || !bytes.Contains(out, []byte(`"Route"`)) {
		t.Fatalf("front-only stitch: %v", err)
	}
	out, err := StitchTraces(nil, backend)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ValidateTrace(bytes.NewReader(out)); err != nil {
		t.Fatalf("backend-only stitch invalid: %v", err)
	}
}

// TestStitchIDCollision: both tracers number spans from 1; the stitcher
// must renumber so ids stay unique (ValidateRecords rejects duplicates).
func TestStitchIDCollision(t *testing.T) {
	mk := func(name string) []byte {
		buf := NewTraceBuffer(0, 0)
		tr := NewTracer(buf)
		root := Start(tr, nil, name)
		root.Child(name + "Child").End()
		root.End()
		return buf.Bytes()
	}
	out, err := StitchTraces(mk("A"), mk("B"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ValidateTrace(bytes.NewReader(out)); err != nil {
		t.Fatalf("colliding-id stitch invalid: %v", err)
	}
}
