package obsv

import (
	"bytes"
	"encoding/json"
	"fmt"
)

// Trace stitching: merging two processes' JSONL streams into one trace.
//
// Every tracer numbers its spans from 1, so the front's stream and a
// backend's stream collide on ids. StitchRecords renumbers the child
// (downstream) process's spans above the parent's id range, rewrites
// intra-child parent edges to match, and resolves RemoteParent markers
// — a child root whose remote_parent names a span in the parent stream
// becomes a real child of that span. The output keeps the child's lines
// first and the parent's last, preserving the buffer invariant the
// validator and TraceBuffer rely on: children precede parents, so every
// suffix of the stitched stream resolves all parent references and the
// overall root (the parent process's, last to end) survives truncation.
//
// Clocks are NOT reconciled: each record keeps the wall time of the
// process that emitted it, and cross-process skew can make a child span
// appear to start before its parent. That is a display problem, not a
// validity problem — per-record duration consistency still holds — and
// tracesum tolerates it (see the -by-hop skew column).

// StitchRecords merges a child process's records under a parent
// process's, returning one stream tagged with the parent's trace id.
// Either side may be empty; the other passes through unchanged (modulo
// the child renumbering never hurting an empty parent).
func StitchRecords(parent, child []Record) []Record {
	var maxID uint64
	parentIDs := make(map[uint64]bool, len(parent))
	traceID := ""
	for _, rec := range parent {
		if rec.ID > maxID {
			maxID = rec.ID
		}
		parentIDs[rec.ID] = true
		if traceID == "" {
			traceID = rec.TraceID
		}
	}
	out := make([]Record, 0, len(parent)+len(child))
	for _, rec := range child {
		rec.ID += maxID
		switch {
		case rec.Parent != 0:
			rec.Parent += maxID
		case rec.RemoteParent != 0 && parentIDs[rec.RemoteParent]:
			// The cross-process edge: this child root was opened under a
			// span the parent process forwarded. It becomes a real edge and
			// the advisory marker goes away.
			rec.Parent = rec.RemoteParent
			rec.RemoteParent = 0
		}
		if traceID != "" {
			rec.TraceID = traceID
		}
		out = append(out, rec)
	}
	return append(out, parent...)
}

// StitchTraces is StitchRecords over raw JSONL: it parses both streams,
// merges them, and re-serializes one line per span.
func StitchTraces(parent, child []byte) ([]byte, error) {
	precs, err := ReadTrace(bytes.NewReader(parent))
	if err != nil {
		return nil, fmt.Errorf("obsv: stitch parent: %w", err)
	}
	crecs, err := ReadTrace(bytes.NewReader(child))
	if err != nil {
		return nil, fmt.Errorf("obsv: stitch child: %w", err)
	}
	var buf bytes.Buffer
	buf.Grow(len(parent) + len(child))
	for _, rec := range StitchRecords(precs, crecs) {
		b, err := json.Marshal(rec)
		if err != nil {
			return nil, fmt.Errorf("obsv: stitch span %q: %w", rec.Span, err)
		}
		buf.Write(b)
		buf.WriteByte('\n')
	}
	return buf.Bytes(), nil
}
