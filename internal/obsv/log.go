package obsv

import (
	"context"
	"io"
	"log/slog"
)

// NewLogger returns a JSON slog logger writing to w at the given level —
// the structured access/lifecycle log format janusd emits (one JSON
// object per line, machine-greppable next to the JSONL traces).
func NewLogger(w io.Writer, level slog.Level) *slog.Logger {
	return slog.New(slog.NewJSONHandler(w, &slog.HandlerOptions{Level: level}))
}

// NopLogger returns a logger that discards everything, with Enabled
// reporting false so disabled call sites skip attribute evaluation. The
// service defaults to it when no logger is configured, keeping call
// sites free of nil checks.
func NopLogger() *slog.Logger { return slog.New(nopHandler{}) }

type nopHandler struct{}

func (nopHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (nopHandler) Handle(context.Context, slog.Record) error { return nil }
func (nopHandler) WithAttrs([]slog.Attr) slog.Handler        { return nopHandler{} }
func (nopHandler) WithGroup(string) slog.Handler             { return nopHandler{} }
