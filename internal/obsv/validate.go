package obsv

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// ReadTrace parses a JSONL trace into its records, validating each line
// against the span schema (see Record) as it goes.
func ReadTrace(r io.Reader) ([]Record, error) {
	var recs []Record
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4<<20)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			return nil, fmt.Errorf("obsv: trace line %d: %w", line, err)
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obsv: trace line %d: %w", line, err)
	}
	return recs, nil
}

// ValidateTrace checks a JSONL trace against the span schema: every line
// is a Record with a non-empty name, a unique non-zero id, end ≥ start, a
// consistent duration, and a parent id that occurs in the trace (0 marks
// a root; at least one root must exist). It returns the span count.
func ValidateTrace(r io.Reader) (int, error) {
	recs, err := ReadTrace(r)
	if err != nil {
		return 0, err
	}
	return len(recs), ValidateRecords(recs)
}

// ValidateRecords is ValidateTrace over already-parsed records.
func ValidateRecords(recs []Record) error {
	if len(recs) == 0 {
		return fmt.Errorf("obsv: empty trace")
	}
	ids := make(map[uint64]bool, len(recs))
	for _, rec := range recs {
		if rec.Span == "" {
			return fmt.Errorf("obsv: span id %d has no name", rec.ID)
		}
		if rec.ID == 0 {
			return fmt.Errorf("obsv: span %q has id 0", rec.Span)
		}
		if ids[rec.ID] {
			return fmt.Errorf("obsv: duplicate span id %d (%q)", rec.ID, rec.Span)
		}
		ids[rec.ID] = true
		if rec.End.Before(rec.Start) {
			return fmt.Errorf("obsv: span %q (id %d) ends before it starts", rec.Span, rec.ID)
		}
		if rec.DurNS != rec.End.Sub(rec.Start).Nanoseconds() {
			return fmt.Errorf("obsv: span %q (id %d) dur_ns %d != end-start %d",
				rec.Span, rec.ID, rec.DurNS, rec.End.Sub(rec.Start).Nanoseconds())
		}
	}
	roots := 0
	for _, rec := range recs {
		if rec.Parent == 0 {
			roots++
			continue
		}
		if !ids[rec.Parent] {
			return fmt.Errorf("obsv: span %q (id %d) references missing parent %d",
				rec.Span, rec.ID, rec.Parent)
		}
	}
	if roots == 0 {
		return fmt.Errorf("obsv: trace has no root span")
	}
	return nil
}
