package obsv

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// promRender renders a registry to a string.
func promRender(t *testing.T, r *Registry, extraKV ...string) string {
	t.Helper()
	var b strings.Builder
	if err := WriteSnapshotProm(&b, r.Snapshot(), extraKV...); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// TestPromNameEscaping: invalid runes in metric names fold to '_',
// including a leading digit.
func TestPromNameEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("janus.test-weird name").Add(3)
	r.Gauge("2fast").Set(1)
	out := promRender(t, r)
	if !strings.Contains(out, "# TYPE janus_test_weird_name counter\njanus_test_weird_name 3\n") {
		t.Fatalf("weird counter name not escaped:\n%s", out)
	}
	if !strings.Contains(out, "_fast 1\n") || strings.Contains(out, "\n2fast") {
		t.Fatalf("leading digit not escaped:\n%s", out)
	}
}

// TestPromLabelEscaping: label values containing backslashes, double
// quotes, and newlines render escaped per the text format.
func TestPromLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.HistogramWith("janus_test_lat_ns", "tenant", "he said \"hi\"\nback\\slash").Observe(3)
	out := promRender(t, r)
	want := `tenant="he said \"hi\"\nback\\slash"`
	if !strings.Contains(out, want) {
		t.Fatalf("label value not escaped, want %s in:\n%s", want, out)
	}
	if strings.Contains(out, "\nback") {
		t.Fatalf("raw newline leaked into exposition:\n%s", out)
	}
}

// TestPromZeroHistogram: a created-but-never-observed histogram still
// renders a full cumulative bucket ladder ending at +Inf, with zero
// sum/count — scrapers must see the family, not a hole.
func TestPromZeroHistogram(t *testing.T) {
	r := NewRegistry()
	r.Histogram("janus_test_empty_ns")
	out := promRender(t, r)
	for _, want := range []string{
		"# TYPE janus_test_empty_ns histogram\n",
		`janus_test_empty_ns_bucket{le="1"} 0` + "\n",
		`janus_test_empty_ns_bucket{le="+Inf"} 0` + "\n",
		"janus_test_empty_ns_sum 0\n",
		"janus_test_empty_ns_count 0\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("zero histogram missing %q:\n%s", want, out)
		}
	}
}

// TestPromHistogramCumulative: _bucket series are cumulative over the
// exponential bounds and _count equals the +Inf bucket.
func TestPromHistogramCumulative(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("janus_test_cum")
	h.Observe(1)   // le="1"
	h.Observe(3)   // le="4"
	h.Observe(100) // le="128"
	out := promRender(t, r)
	for _, want := range []string{
		`janus_test_cum_bucket{le="1"} 1`,
		`janus_test_cum_bucket{le="2"} 1`,
		`janus_test_cum_bucket{le="4"} 2`,
		`janus_test_cum_bucket{le="64"} 2`,
		`janus_test_cum_bucket{le="128"} 3`,
		`janus_test_cum_bucket{le="+Inf"} 3`,
		"janus_test_cum_sum 104",
		"janus_test_cum_count 3",
	} {
		if !strings.Contains(out, want+"\n") {
			t.Fatalf("cumulative render missing %q:\n%s", want, out)
		}
	}
}

// TestPromExtraLabels: extra labels (the front's backend tag) splice
// into every series, including inside histogram bucket label blocks.
func TestPromExtraLabels(t *testing.T) {
	r := NewRegistry()
	r.Counter("janus_test_reqs_total").Inc()
	r.HistogramWith("janus_test_wait_ns", "tenant", "bulk").Observe(2)
	out := promRender(t, r, "backend", "b1:7151")
	for _, want := range []string{
		`janus_test_reqs_total{backend="b1:7151"} 1`,
		`janus_test_wait_ns_bucket{tenant="bulk",backend="b1:7151",le="2"} 1`,
		`janus_test_wait_ns_count{tenant="bulk",backend="b1:7151"} 1`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Fatalf("extra label render missing %q:\n%s", want, out)
		}
	}
}

// TestPromTypeLinePerFamily: labeled variants of one base name share a
// single # TYPE line.
func TestPromTypeLinePerFamily(t *testing.T) {
	r := NewRegistry()
	r.HistogramWith("janus_test_fam_ns", "tenant", "a").Observe(1)
	r.HistogramWith("janus_test_fam_ns", "tenant", "b").Observe(1)
	out := promRender(t, r)
	if n := strings.Count(out, "# TYPE janus_test_fam_ns histogram"); n != 1 {
		t.Fatalf("family emitted %d TYPE lines, want 1:\n%s", n, out)
	}
}

// TestWriteFleetProm: snapshots from several sources merge into one
// exposition — a family present on every source gets exactly one # TYPE
// line, each source's series carry its labels, and a same-key counter
// collision sums instead of silently overwriting.
func TestWriteFleetProm(t *testing.T) {
	own := NewRegistry()
	own.Counter("janus_front_requests_total").Add(5)
	b1 := NewRegistry()
	b1.Counter("janus_service_requests_total").Add(3)
	b1.Histogram("janus_service_solve_ns").Observe(7)
	b2 := NewRegistry()
	b2.Counter("janus_service_requests_total").Add(4)
	b2.Histogram("janus_service_solve_ns").Observe(9)

	var b strings.Builder
	err := WriteFleetProm(&b, []LabeledSnapshot{
		{Snapshot: own.Snapshot()},
		{Snapshot: b1.Snapshot(), Labels: []string{"backend", "h1:7151"}},
		{Snapshot: b2.Snapshot(), Labels: []string{"backend", "h2:7151"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"janus_front_requests_total 5",
		`janus_service_requests_total{backend="h1:7151"} 3`,
		`janus_service_requests_total{backend="h2:7151"} 4`,
		`janus_service_solve_ns_count{backend="h1:7151"} 1`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Fatalf("fleet render missing %q:\n%s", want, out)
		}
	}
	for _, fam := range []string{
		"# TYPE janus_service_requests_total counter",
		"# TYPE janus_service_solve_ns histogram",
	} {
		if n := strings.Count(out, fam); n != 1 {
			t.Fatalf("fleet render has %d %q lines, want 1:\n%s", n, fam, out)
		}
	}

	// Unlabeled collision: counters sum across sources.
	b.Reset()
	if err := WriteFleetProm(&b, []LabeledSnapshot{
		{Snapshot: b1.Snapshot()}, {Snapshot: b2.Snapshot()},
	}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "janus_service_requests_total 7\n") {
		t.Fatalf("colliding counters did not sum:\n%s", b.String())
	}
}

// TestHistogramWithCardinalityBound: past maxLabelVariants distinct
// label sets, new sets fold into the "other" child instead of growing
// the registry.
func TestHistogramWithCardinalityBound(t *testing.T) {
	r := NewRegistry()
	for i := 0; i < maxLabelVariants+16; i++ {
		r.HistogramWith("janus_test_bound_ns", "tenant", "t"+string(rune('a'+i%26))+string(rune('a'+i/26))).Observe(1)
	}
	snap := r.Snapshot()
	n := 0
	for name := range snap.Histograms {
		if strings.HasPrefix(name, "janus_test_bound_ns{") {
			n++
		}
	}
	if n > maxLabelVariants+1 {
		t.Fatalf("cardinality bound leaked: %d variants", n)
	}
	other := snap.Histograms[LabeledName("janus_test_bound_ns", "tenant", "other")]
	if other.Count == 0 {
		t.Fatal("overflow label sets did not fold into the other child")
	}
	// The same overflow set maps to the same child (no drops).
	h1 := r.HistogramWith("janus_test_bound_ns", "tenant", "zz-overflow")
	h2 := r.HistogramWith("janus_test_bound_ns", "tenant", "zz-overflow-2")
	if h1 != h2 {
		t.Fatal("overflow children not shared")
	}
}

// TestPromGolden: a fully populated registry renders byte-for-byte
// against the checked-in golden (series order is sorted, so the render
// is deterministic).
func TestPromGolden(t *testing.T) {
	r := goldenRegistry()
	out := promRender(t, r)
	path := filepath.Join("testdata", "prom_golden.txt")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(path, []byte(out), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (set UPDATE_GOLDEN=1 to create): %v", err)
	}
	if out != string(want) {
		t.Fatalf("prometheus render drifted from golden.\n--- got ---\n%s\n--- want ---\n%s", out, want)
	}
}

// goldenRegistry builds the deterministic registry behind the golden
// render: every metric kind, labeled and not, plus escaping hazards.
func goldenRegistry() *Registry {
	r := NewRegistry()
	r.Counter("janus_service_requests_total").Add(42)
	r.Counter("janus_front_failovers_total").Add(2)
	r.Gauge("janus_service_queue_depth").Set(3)
	r.RegisterFunc("janus_service_slo_synthesize_burn_5m_milli", func() int64 { return 1500 })
	h := r.Histogram("janus_service_solve_ns")
	h.Observe(900)
	h.Observe(1 << 14)
	ht := r.HistogramWith("janus_service_tenant_wait_ns", "tenant", "bulk", "endpoint", "synthesize")
	ht.Observe(5)
	ht.Observe(5000)
	r.HistogramWith("janus_service_tenant_wait_ns", "tenant", "interactive", "endpoint", "synthesize").Observe(1)
	r.Counter("janus.odd-name_total").Add(7)
	return r
}
