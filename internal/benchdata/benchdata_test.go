package benchdata

import (
	"testing"

	"github.com/lattice-tools/janus/internal/minimize"
)

func TestTableIIComplete(t *testing.T) {
	insts := TableII()
	if len(insts) != 48 {
		t.Fatalf("TableII has %d instances, want 48", len(insts))
	}
	seen := map[string]bool{}
	for _, in := range insts {
		if seen[in.Name] {
			t.Fatalf("duplicate instance %s", in.Name)
		}
		seen[in.Name] = true
		if in.PaperLB <= 0 || in.PaperNUB < in.PaperLB || in.PaperOUB < in.PaperNUB {
			t.Fatalf("%s: inconsistent paper bounds lb=%d nub=%d oub=%d",
				in.Name, in.PaperLB, in.PaperNUB, in.PaperOUB)
		}
		for _, k := range []string{"p9", "p11", "approx", "exact", "janus"} {
			if in.Paper[k] == "" {
				t.Fatalf("%s: missing paper column %s", in.Name, k)
			}
		}
	}
}

// TestGeneratorMatchesProfiles is the suite's core guarantee: every
// generated stand-in matches the paper's (#in, #pi, δ) exactly and is an
// irredundant prime cover.
func TestGeneratorMatchesProfiles(t *testing.T) {
	if testing.Short() {
		t.Skip("generator sweep in short mode")
	}
	for _, in := range TableII() {
		f, ok := in.Function()
		if !ok {
			pi, deg, sup := in.GeneratedProfile()
			t.Errorf("%s: generator missed profile: got pi=%d δ=%d support=%d, want pi=%d δ=%d support=%d",
				in.Name, pi, deg, sup, in.PI, in.Degree, in.Inputs)
			continue
		}
		if len(f.Cubes) != in.PI || f.Degree() != in.Degree {
			t.Errorf("%s: profile mismatch", in.Name)
		}
		if minimize.SupportSize(f) != in.Inputs {
			t.Errorf("%s: support mismatch", in.Name)
		}
		if !minimize.IsIrredundantPrimeCover(f, f) {
			t.Errorf("%s: not an ISOP", in.Name)
		}
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	a := Lookup("b12_00")
	f1, _ := a.Function()
	f2, _ := a.Function()
	if !f1.Equiv(f2) {
		t.Fatal("Function not cached/deterministic")
	}
	// A fresh instance with the same seed regenerates the same function.
	b := &Instance{Name: a.Name, Inputs: a.Inputs, PI: a.PI, Degree: a.Degree, seed: a.seed}
	f3, _ := b.Function()
	if !f1.Equiv(f3) {
		t.Fatal("generation not deterministic across instances")
	}
}

func TestLookup(t *testing.T) {
	if Lookup("ex5_14") == nil {
		t.Fatal("ex5_14 missing")
	}
	if Lookup("nope") != nil {
		t.Fatal("phantom instance")
	}
}

func TestTableIII(t *testing.T) {
	ms := TableIII()
	if len(ms) != 3 {
		t.Fatalf("TableIII has %d instances", len(ms))
	}
	for _, mi := range ms {
		outs := mi.Outputs()
		if len(outs) != mi.NumOut {
			t.Fatalf("%s: %d outputs, want %d", mi.Name, len(outs), mi.NumOut)
		}
		for i, f := range outs {
			if f.IsZero() || f.IsOne() {
				t.Fatalf("%s output %d is constant", mi.Name, i)
			}
		}
	}
	if LookupMulti("squar5") == nil || LookupMulti("zzz") != nil {
		t.Fatal("LookupMulti wrong")
	}
}

func TestSquar5IsExact(t *testing.T) {
	outs := LookupMulti("squar5").Outputs()
	for k, f := range outs {
		for x := uint64(0); x < 32; x++ {
			want := (x*x)>>uint(k+2)&1 == 1
			if f.Eval(x) != want {
				t.Fatalf("squar5 bit %d wrong at x=%d", k, x)
			}
		}
	}
}
