package benchdata

import "testing"

// TestPaperBoundReductionHeadline recomputes the paper's headline — "the
// use of new methods ... improves the existing upper bound of [11] by
// 42.8% on average" — from the embedded Table II columns. The figure is
// the reduction of the column averages (41.1 → 23.5).
func TestPaperBoundReductionHeadline(t *testing.T) {
	var oub, nub float64
	insts := TableII()
	for _, in := range insts {
		oub += float64(in.PaperOUB)
		nub += float64(in.PaperNUB)
	}
	reduction := 100 * (oub - nub) / oub
	if reduction < 42.0 || reduction > 43.5 {
		t.Fatalf("aggregate oub->nub reduction = %.1f%%, paper reports 42.8%%", reduction)
	}
}
