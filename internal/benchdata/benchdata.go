// Package benchdata provides the benchmark instances behind the paper's
// Tables II and III.
//
// The original 48 single-output instances are individual outputs of MCNC
// benchmark circuits that are not redistributable here, so this package
// generates a deterministic synthetic stand-in for each: a function whose
// ISOP profile — input count, prime implicant count, and degree — matches
// the profile the paper reports for that instance (the quantities every
// algorithm under test actually consumes). The paper's reported bounds and
// per-algorithm results are embedded alongside so harnesses can print
// paper-vs-measured rows. See DESIGN.md for the substitution rationale.
package benchdata

import (
	"math/rand"
	"sync"

	"github.com/lattice-tools/janus/internal/cube"
	"github.com/lattice-tools/janus/internal/minimize"
)

// Instance is one Table II row: the paper's profile and reported numbers
// plus the generated stand-in function.
type Instance struct {
	Name   string
	Inputs int // paper's #in
	PI     int // paper's #pi (ISOP prime implicants)
	Degree int // paper's δ

	// Paper-reported search-space columns.
	PaperLB, PaperOUB, PaperNUB int
	// Paper-reported solutions per algorithm: keys "p9" ([9]), "p11"
	// ([11]), "approx" (approximate [6]), "exact" (exact [6]), "janus".
	Paper map[string]string

	seed int64

	once    sync.Once
	fn      cube.Cover
	genOK   bool
	genPI   int
	genDeg  int
	genVars int
}

// Function returns the generated stand-in function in ISOP form. The
// second result reports whether the generator matched the paper profile
// exactly (it does for every shipped instance; the flag guards future
// edits).
func (in *Instance) Function() (cube.Cover, bool) {
	in.once.Do(func() {
		in.fn, in.genOK = generate(in.Inputs, in.PI, in.Degree, in.seed)
		in.genPI = len(in.fn.Cubes)
		in.genDeg = in.fn.Degree()
		in.genVars = minimize.SupportSize(in.fn)
	})
	return in.fn, in.genOK
}

// GeneratedProfile reports the achieved (#pi, δ, support) of Function.
func (in *Instance) GeneratedProfile() (pi, degree, support int) {
	in.Function()
	return in.genPI, in.genDeg, in.genVars
}

// generate searches seeded random covers for one whose Auto-minimized ISOP
// has exactly pi products of maximum degree delta using all n inputs.
func generate(n, pi, delta int, seed int64) (cube.Cover, bool) {
	rng := rand.New(rand.NewSource(seed))
	var best cube.Cover
	bestScore := 1 << 30
	for attempt := 0; attempt < 2000; attempt++ {
		// Vary the minimum cube size across attempts; dense profiles need
		// large, pairwise-disjoint cubes to survive minimization, sparse
		// ones benefit from smaller companions.
		lo := delta - 2 - attempt%3
		if lo < 1 {
			lo = 1
		}
		disjoint := attempt%2 == 1
		if disjoint {
			lo = delta - 1
			if lo < 1 {
				lo = 1
			}
		}
		raw := genCover(rng, n, pi, delta, lo, disjoint)
		if raw == nil {
			continue
		}
		isop := minimize.Auto(*raw)
		dPI := abs(len(isop.Cubes) - pi)
		dDeg := abs(isop.Degree() - delta)
		dSup := n - minimize.SupportSize(isop)
		if dPI == 0 && dDeg == 0 && dSup == 0 {
			return isop, true
		}
		if score := dPI*4 + dDeg*8 + dSup; score < bestScore {
			bestScore = score
			best = isop
		}
	}
	return best, false
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// genCover draws pi cubes whose literal counts peak at delta, rejecting
// containment and direct merges so the minimizer is unlikely to collapse
// the cover.
func genCover(rng *rand.Rand, n, pi, delta, lo int, disjoint bool) *cube.Cover {
	f := cube.Zero(n)
	for i := 0; i < pi; i++ {
		k := delta
		if i > 0 {
			k = lo + rng.Intn(delta-lo+1)
		}
		if k > n {
			k = n
		}
		placed := false
		for try := 0; try < 300 && !placed; try++ {
			c := randomCubeK(rng, n, k)
			if !compatible(c, f.Cubes) {
				continue
			}
			if disjoint && intersectsAny(c, f.Cubes) {
				continue
			}
			f.Cubes = append(f.Cubes, c)
			placed = true
		}
		if !placed {
			return nil
		}
	}
	return &f
}

func intersectsAny(c cube.Cube, existing []cube.Cube) bool {
	for _, e := range existing {
		if c.Distance(e) == 0 {
			return true
		}
	}
	return false
}

// randomCubeK draws a cube with exactly k literals on distinct variables.
func randomCubeK(rng *rand.Rand, n, k int) cube.Cube {
	perm := rng.Perm(n)
	var c cube.Cube
	for _, v := range perm[:k] {
		if rng.Intn(2) == 0 {
			c = c.WithPos(v)
		} else {
			c = c.WithNeg(v)
		}
	}
	return c
}

// compatible rejects cubes that are contained in (or contain) an existing
// cube or that would merge with one by consensus into a cube covering both.
func compatible(c cube.Cube, existing []cube.Cube) bool {
	for _, e := range existing {
		if e.Contains(c) || c.Contains(e) {
			return false
		}
		if cons, ok := c.Consensus(e); ok {
			if cons.Contains(c) && cons.Contains(e) {
				return false
			}
		}
	}
	return true
}

var tableIIOnce sync.Once
var tableII []*Instance

// TableII returns the 48 single-function instances of the paper's Table
// II, in paper order.
func TableII() []*Instance {
	tableIIOnce.Do(func() {
		for i, r := range tableIIRows {
			tableII = append(tableII, &Instance{
				Name: r.name, Inputs: r.in, PI: r.pi, Degree: r.delta,
				PaperLB: r.lb, PaperOUB: r.oub, PaperNUB: r.nub,
				Paper: map[string]string{
					"p9": r.p9, "p11": r.p11, "approx": r.approx,
					"exact": r.exact, "janus": r.janus,
				},
				seed: int64(1000 + i*17),
			})
		}
	})
	return tableII
}

// Lookup returns the Table II instance with the given name, or nil.
func Lookup(name string) *Instance {
	for _, in := range TableII() {
		if in.Name == name {
			return in
		}
	}
	return nil
}

type row struct {
	name                        string
	in, pi, delta, lb, oub, nub int
	p9, p11, approx, exact      string
	janus                       string
}

// tableIIRows transcribes Table II of the paper (profile, bounds and the
// sol columns of [9], [11], approximate [6], exact [6], and JANUS).
var tableIIRows = []row{
	{"5xp1_1", 7, 11, 5, 16, 105, 32, "5x10", "5x5", "6x5", "5x5", "4x6"},
	{"5xp1_3", 6, 14, 5, 15, 135, 40, "4x11", "5x27", "11x4", "11x4", "4x9"},
	{"b12_00", 6, 4, 4, 9, 24, 20, "4x3", "4x3", "4x3", "4x3", "4x3"},
	{"b12_01", 7, 7, 4, 12, 35, 20, "4x4", "4x4", "4x4", "5x3", "5x3"},
	{"b12_02", 8, 7, 5, 12, 42, 24, "5x8", "4x4", "5x4", "4x4", "4x4"},
	{"b12_03", 4, 4, 2, 6, 6, 6, "2x5", "3x2", "3x2", "3x2", "3x2"},
	{"b12_06", 9, 9, 6, 15, 44, 24, "5x4", "5x4", "5x4", "5x4", "5x4"},
	{"b12_07", 7, 6, 4, 16, 24, 24, "6x8", "3x6", "5x4", "3x6", "3x6"},
	{"c17_01", 4, 4, 2, 6, 6, 6, "3x2", "3x2", "3x2", "3x2", "3x2"},
	{"clpl_00", 7, 4, 4, 12, 16, 15, "4x5", "3x4", "3x4", "3x4", "3x4"},
	{"clpl_03", 11, 6, 6, 16, 36, 24, "6x9", "3x6", "3x6", "3x6", "3x6"},
	{"clpl_04", 9, 5, 5, 15, 25, 18, "5x8", "3x5", "3x5", "3x5", "3x5"},
	{"dc1_00", 4, 4, 3, 9, 16, 15, "4x4", "3x3", "3x3", "3x3", "3x3"},
	{"dc1_02", 4, 4, 3, 12, 16, 15, "3x5", "3x4", "3x4", "4x3", "4x3"},
	{"dc1_03", 4, 4, 4, 9, 20, 18, "4x5", "4x3", "4x3", "4x3", "4x3"},
	{"ex5_06", 7, 8, 3, 16, 32, 24, "3x10", "3x6", "3x7", "3x6", "3x6"},
	{"ex5_07", 8, 10, 4, 24, 40, 27, "3x13", "4x6", "3x9", "4x6", "3x8"},
	{"ex5_08", 8, 7, 3, 20, 21, 21, "3x9", "3x7", "3x7", "3x7", "3x7"},
	{"ex5_09", 8, 10, 4, 24, 40, 30, "3x11", "4x6", "3x8", "4x6", "3x8"},
	{"ex5_10", 6, 7, 3, 16, 21, 21, "3x9", "3x6", "3x6", "3x6", "3x6"},
	{"ex5_12", 8, 9, 3, 15, 25, 20, "5x9", "3x5", "3x5", "3x5", "3x5"},
	{"ex5_13", 8, 9, 3, 24, 36, 27, "3x13", "3x8", "4x6", "4x6", "3x8"},
	{"ex5_14", 8, 8, 2, 16, 16, 16, "3x11", "2x8", "2x8", "2x8", "2x8"},
	{"ex5_15", 8, 12, 4, 20, 72, 33, "4x13", "4x7", "6x12", "6x5", "3x8"},
	{"ex5_17", 8, 14, 4, 20, 105, 42, "4x10", "4x7", "10x6", "6x6", "3x9"},
	{"ex5_19", 8, 6, 3, 16, 18, 18, "5x7", "3x6", "3x6", "3x6", "3x6"},
	{"ex5_21", 8, 10, 3, 20, 57, 30, "4x9", "3x7", "4x7", "3x7", "3x7"},
	{"ex5_22", 7, 6, 3, 16, 33, 21, "3x8", "3x6", "3x6", "3x6", "3x6"},
	{"ex5_23", 8, 12, 4, 24, 92, 36, "4x11", "4x8", "11x5", "3x9", "3x9"},
	{"ex5_24", 8, 14, 5, 20, 105, 33, "5x14", "15x7", "3x11", "4x7", "3x8"},
	{"ex5_25", 8, 8, 3, 20, 40, 27, "3x8", "3x7", "3x7", "3x7", "3x7"},
	{"ex5_26", 8, 10, 3, 20, 57, 30, "4x11", "3x7", "3x9", "3x7", "3x7"},
	{"ex5_27", 8, 11, 4, 20, 77, 27, "4x10", "4x6", "3x8", "4x6", "3x8"},
	{"ex5_28", 8, 9, 3, 24, 27, 27, "3x13", "3x8", "3x8", "6x4", "3x8"},
	{"misex1_00", 4, 2, 4, 6, 8, 8, "4x3", "4x2", "4x2", "4x2", "4x2"},
	{"misex1_01", 6, 5, 4, 12, 35, 18, "5x5", "3x5", "4x4", "3x5", "3x5"},
	{"misex1_02", 7, 5, 5, 12, 40, 25, "5x5", "5x4", "5x4", "5x4", "5x4"},
	{"misex1_03", 7, 4, 5, 9, 28, 20, "4x6", "4x3", "5x3", "4x3", "4x3"},
	{"misex1_04", 4, 5, 4, 12, 25, 18, "4x7", "3x4", "5x3", "3x4", "3x4"},
	{"misex1_05", 6, 6, 4, 12, 42, 21, "4x6", "4x4", "5x4", "4x4", "4x4"},
	{"misex1_06", 6, 5, 4, 12, 35, 18, "4x7", "5x3", "5x3", "5x3", "5x3"},
	{"misex1_07", 6, 4, 4, 9, 20, 18, "5x5", "4x3", "5x3", "4x3", "4x3"},
	{"mp2d_01", 10, 8, 5, 24, 48, 30, "4x11", "5x7", "4x7", "3x9", "3x9"},
	{"mp2d_02", 11, 10, 4, 28, 50, 33, "4x13", "4x9", "4x7", "4x7", "4x7"},
	{"mp2d_03", 10, 5, 8, 15, 72, 32, "7x6", "5x5", "4x6", "6x4", "4x6"},
	{"mp2d_04", 10, 6, 9, 15, 57, 36, "7x3", "7x3", "7x3", "7x3", "7x3"},
	{"mp2d_06", 5, 3, 5, 8, 18, 16, "5x4", "6x2", "7x2", "4x3", "6x2"},
	{"newtag_00", 8, 8, 3, 16, 32, 24, "3x8", "3x6", "3x6", "3x6", "3x6"},
}
