package benchdata

import (
	"math/rand"
	"sync"

	"github.com/lattice-tools/janus/internal/cube"
	"github.com/lattice-tools/janus/internal/minimize"
)

// MultiInstance is one Table III row: a multi-output block plus the
// paper's reported straight-forward and JANUS-MF solutions.
type MultiInstance struct {
	Name                     string
	NumOut                   int
	PaperSF                  string // straight-forward method solution, e.g. "5x119"
	PaperMF                  string // JANUS-MF solution
	PaperSFSize, PaperMFSize int

	build func() []cube.Cover

	once sync.Once
	outs []cube.Cover
}

// Outputs returns the per-output functions (Auto-minimized ISOPs).
func (mi *MultiInstance) Outputs() []cube.Cover {
	mi.once.Do(func() { mi.outs = mi.build() })
	return mi.outs
}

var tableIIIOnce sync.Once
var tableIII []*MultiInstance

// TableIII returns the three multi-output instances of the paper's Table
// III. squar5 is implemented exactly (the low eight bits of the square of
// the 5-bit input); bw and misex1 are synthetic stand-ins with the right
// output counts and realistic per-output profiles (misex1's outputs reuse
// the Table II misex1_xx profiles).
func TableIII() []*MultiInstance {
	tableIIIOnce.Do(func() {
		tableIII = []*MultiInstance{
			{
				Name: "bw", NumOut: 28,
				PaperSF: "5x119", PaperMF: "3x135",
				PaperSFSize: 595, PaperMFSize: 405,
				build: buildBW,
			},
			{
				Name: "misex1", NumOut: 7,
				PaperSF: "5x31", PaperMF: "3x42",
				PaperSFSize: 155, PaperMFSize: 126,
				build: buildMisex1,
			},
			{
				Name: "squar5", NumOut: 8,
				PaperSF: "5x31", PaperMF: "3x36",
				PaperSFSize: 155, PaperMFSize: 108,
				build: buildSquar5,
			},
		}
	})
	return tableIII
}

// LookupMulti returns the Table III instance with the given name, or nil.
func LookupMulti(name string) *MultiInstance {
	for _, mi := range TableIII() {
		if mi.Name == name {
			return mi
		}
	}
	return nil
}

// buildSquar5 builds the exact squar5 substitute: output k is bit k+2 of
// x·x for the 5-bit input x (bit 1 of a square is constantly 0 and bit 0
// is just x0, so the eight high bits 2..9 are the non-trivial outputs).
func buildSquar5() []cube.Cover {
	outs := make([]cube.Cover, 8)
	for k := 0; k < 8; k++ {
		f := cube.Zero(5)
		for x := uint64(0); x < 32; x++ {
			if (x*x)>>uint(k+2)&1 == 1 {
				var c cube.Cube
				for v := 0; v < 5; v++ {
					if x&(1<<uint(v)) != 0 {
						c = c.WithPos(v)
					} else {
						c = c.WithNeg(v)
					}
				}
				f.Cubes = append(f.Cubes, c)
			}
		}
		outs[k] = minimize.Auto(f)
	}
	return outs
}

// buildBW draws 28 seeded random 5-input functions with small on-sets,
// mirroring bw's many simple outputs.
func buildBW() []cube.Cover {
	outs := make([]cube.Cover, 0, 28)
	rng := rand.New(rand.NewSource(2024))
	for len(outs) < 28 {
		f := cube.Zero(5)
		k := 2 + rng.Intn(3)
		for i := 0; i < k; i++ {
			var c cube.Cube
			lits := 2 + rng.Intn(3)
			perm := rng.Perm(5)
			for _, v := range perm[:lits] {
				if rng.Intn(2) == 0 {
					c = c.WithPos(v)
				} else {
					c = c.WithNeg(v)
				}
			}
			f.Cubes = append(f.Cubes, c)
		}
		m := minimize.Auto(f)
		if m.IsZero() || m.IsOne() {
			continue
		}
		outs = append(outs, m)
	}
	return outs
}

// buildMisex1 reuses the Table II misex1_00..misex1_07 profiles (the
// paper's misex1 block has 7 outputs).
func buildMisex1() []cube.Cover {
	names := []string{
		"misex1_00", "misex1_01", "misex1_02", "misex1_03",
		"misex1_04", "misex1_05", "misex1_06",
	}
	outs := make([]cube.Cover, 0, len(names))
	for _, n := range names {
		in := Lookup(n)
		f, _ := in.Function()
		outs = append(outs, f)
	}
	return outs
}
