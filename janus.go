// Package janus is a Go implementation of JANUS, the satisfiability-based
// approximate algorithm for logic synthesis on switching lattices of
// four-terminal switches (Aksoy & Altun, DATE 2019).
//
// A switching lattice is an m×n grid of four-terminal switches; the
// lattice computes 1 when its on switches form a 4-connected path between
// the top and bottom plates. Synthesize maps a Boolean function onto a
// lattice with (approximately) the minimum number of switches by encoding
// the lattice mapping decision problem as SAT and running a dichotomic
// search over lattice sizes between improved lower and upper bounds;
// SynthesizeMulti packs several functions onto a single lattice.
//
// The package is a thin facade: the algorithm and its substrates (cube
// algebra, two-level minimizer, CDCL SAT solver, path enumeration, bound
// constructions, baselines) live in internal packages and are re-exported
// here as aliases so applications deal with a single import.
//
//	f := janus.NewCover(4,
//	    janus.Product([]int{0, 1, 2, 3}, nil),  // abcd
//	    janus.Product(nil, []int{0, 1, 2, 3}))  // a'b'c'd'
//	res, err := janus.Synthesize(f, janus.Options{})
//	// res.Grid == 4x2, res.Assignment prints the switch grid.
package janus

import (
	"context"
	"io"
	"net"
	"net/http"
	"time"

	"github.com/lattice-tools/janus/internal/baselines"
	"github.com/lattice-tools/janus/internal/bounds"
	"github.com/lattice-tools/janus/internal/core"
	"github.com/lattice-tools/janus/internal/cube"
	"github.com/lattice-tools/janus/internal/encode"
	"github.com/lattice-tools/janus/internal/front"
	"github.com/lattice-tools/janus/internal/lattice"
	"github.com/lattice-tools/janus/internal/memo"
	"github.com/lattice-tools/janus/internal/minimize"
	"github.com/lattice-tools/janus/internal/obsv"
	"github.com/lattice-tools/janus/internal/pla"
	"github.com/lattice-tools/janus/internal/sat"
	"github.com/lattice-tools/janus/internal/service"
)

// Core value types.
type (
	// Cube is a product (conjunction) of literals.
	Cube = cube.Cube
	// Cover is a sum of products; the input and output form for targets.
	Cover = cube.Cover
	// Grid is an m×n lattice shape.
	Grid = lattice.Grid
	// Assignment is a fully specified lattice implementation.
	Assignment = lattice.Assignment
	// Entry is the control assignment of one switch.
	Entry = lattice.Entry
	// Options configures Synthesize.
	Options = core.Options
	// EngineSelect picks the LM solver strategy (auto, shared, fresh).
	EngineSelect = core.EngineSelect
	// Result is the outcome of Synthesize.
	Result = core.Result
	// MultiResult is the outcome of SynthesizeMulti.
	MultiResult = core.MultiResult
	// MultiLattice is a single lattice realizing several functions.
	MultiLattice = core.MultiLattice
	// EncodeOptions tunes the lattice-mapping SAT formulation.
	EncodeOptions = encode.Options
	// SATLimits bounds individual SAT calls.
	SATLimits = sat.Limits
	// PLA is a parsed espresso-format file.
	PLA = pla.File
	// BaselineResult is the outcome of the comparison algorithms.
	BaselineResult = baselines.Result
	// BaselineOptions configures the comparison algorithms.
	BaselineOptions = baselines.Options
	// UpperBound is a named, verified bound construction.
	UpperBound = bounds.Bound
	// MemoStats is a snapshot of the process-wide memoization caches
	// (path enumerations, truth tables, lattice-function covers).
	MemoStats = memo.Stats
	// Tracer writes a synthesis' hierarchical span trace as JSONL; set
	// Options.Tracer to enable (nil keeps tracing free).
	Tracer = obsv.Tracer
	// Span is one node of a trace; Options.TraceParent nests a synthesis
	// under an existing span.
	Span = obsv.Span
	// MetricsSnapshot is a point-in-time copy of the process-wide metrics
	// registry (janus_* counters, gauges, and histograms).
	MetricsSnapshot = obsv.Snapshot
	// LabeledMetricsSnapshot pairs a MetricsSnapshot with labels stamped
	// on every series in a fleet Prometheus render (WriteFleetMetricsProm).
	LabeledMetricsSnapshot = obsv.LabeledSnapshot
	// TraceContext is the cross-process trace coordinate carried by the
	// X-Janus-Trace header: the fleet trace id plus the parent span in the
	// sending process. Client forwards it automatically when present on
	// the request context.
	TraceContext = obsv.TraceContext
	// Server is the janusd synthesis service: a job queue with request
	// coalescing and a persistent result cache in front of Synthesize.
	Server = service.Server
	// ServiceConfig sizes a Server (workers, queue depth, cache tiers).
	ServiceConfig = service.Config
	// ServiceRequest is the POST /v1/synthesize payload.
	ServiceRequest = service.Request
	// ServiceBatchRequest is the POST /v1/synthesize/batch payload: a
	// multi-function workload synthesized onto one lattice via JANUS-MF.
	ServiceBatchRequest = service.BatchRequest
	// ServiceBatchFunction is one function of a batch payload.
	ServiceBatchFunction = service.BatchFunction
	// ServiceBatchResult is the wire form of a finished batch (packed
	// lattice shape plus per-output parts).
	ServiceBatchResult = service.BatchResultJSON
	// ServiceResponse is the wire form of a job's state.
	ServiceResponse = service.Response
	// TenantConfig sizes one tenant's share of a Server (DRR weight,
	// queue share, in-flight cap).
	TenantConfig = service.TenantConfig
	// TenantStats is one tenant's row in the /v1/stats scheduler block.
	TenantStats = service.TenantStats
	// SchedulerStats is the fairness counter block on /v1/stats.
	SchedulerStats = service.SchedulerStats
	// ServiceStats is the /healthz body.
	ServiceStats = service.Stats
	// Client talks to a running janusd.
	Client = service.Client
	// APIError is a non-2xx janusd answer, carrying the HTTP code.
	APIError = service.APIError
	// FlightDump is the /debug/flightrecorder body: recent request
	// summaries plus the ids of pinned traces.
	FlightDump = service.FlightDump
	// FlightEntry is one request summary in the flight recorder.
	FlightEntry = service.FlightEntry
	// SLOSnapshot is one endpoint's latency-objective state (good/total
	// counters and multi-window burn rates), as served on /v1/stats.
	SLOSnapshot = obsv.SLOSnapshot
	// ProgressEvent is one anytime progress notification (phase brackets,
	// verified bound moves, incumbent improvements, dichotomic steps).
	ProgressEvent = obsv.ProgressEvent
	// ProgressSink receives progress events; set Options.Progress (nil
	// keeps progress free).
	ProgressSink = obsv.ProgressSink
	// ProgressWriter is a ProgressSink printing one line per event — the
	// -progress flag of cmd/janus and cmd/tableii.
	ProgressWriter = obsv.ProgressWriter
	// EventsPage is one page of a job's progress stream, as returned by
	// Client.JobEvents (the ?wait= long-poll form of /v1/jobs/{id}/events).
	EventsPage = service.EventsPage
	// ProgressEventJSON is the wire form of one progress event.
	ProgressEventJSON = service.ProgressEventJSON
	// ProgressSnapshot is the rolled-up progress inlined in job polls.
	ProgressSnapshot = service.ProgressJSON
	// ClientOption configures a Client at construction (timeout,
	// transport).
	ClientOption = service.ClientOption
	// CacheEntry is the peer cache-fill wire form served by janusd's
	// GET /v1/cache/{fnKey}.
	CacheEntry = service.CacheEntry
	// Front is the janusfront sharding tier: a rendezvous-hash router
	// over N janusd backends with health-aware membership, failover, and
	// peer cache fill on reshard.
	Front = front.Front
	// FrontConfig sizes a Front (backends, health poll, retry policy).
	FrontConfig = front.Config
	// FrontStats is the front's merged /v1/stats body.
	FrontStats = front.Stats
)

// NewProgressWriter returns a line-per-event progress sink writing to w.
func NewProgressWriter(w io.Writer) *ProgressWriter { return obsv.NewProgressWriter(w) }

// NewServer builds the synthesis service and starts its worker pool;
// serve its Handler and stop it with Shutdown.
func NewServer(cfg ServiceConfig) (*Server, error) { return service.NewServer(cfg) }

// NewClient returns a janusd API client for the daemon at baseURL. The
// zero-option client shares one keep-alive transport per process; see
// WithClientTimeout for bounded control-plane calls.
func NewClient(baseURL string, opts ...ClientOption) *Client {
	return service.NewClient(baseURL, opts...)
}

// WithClientTimeout bounds every request of a NewClient while sharing
// the process transport. For health polls and cache lookups — not for
// Synthesize, whose waits are bounded server-side.
func WithClientTimeout(d time.Duration) ClientOption { return service.WithTimeout(d) }

// WithClientHTTP substitutes the client's whole *http.Client.
func WithClientHTTP(hc *http.Client) ClientOption { return service.WithHTTPClient(hc) }

// WithClientTenant stamps every request from the client with a tenant
// name (the X-Janus-Tenant header), mapping its jobs onto that tenant's
// scheduling share on the daemon.
func WithClientTenant(tenant string) ClientOption { return service.WithTenant(tenant) }

// NewFront builds the sharding front tier and starts its health poller;
// serve its Handler and stop it with Close.
func NewFront(cfg FrontConfig) (*Front, error) { return front.New(cfg) }

// NewTracer starts a JSONL span tracer writing to w. The caller owns w;
// check Err after the run for deferred write failures.
func NewTracer(w io.Writer) *Tracer { return obsv.NewTracer(w) }

// Metrics snapshots the process-wide registry. All synthesis layers
// publish here (janus_core_*, janus_encode_*, janus_sat_*, janus_memo_*);
// the same data is exported through expvar as "janus_metrics".
func Metrics() MetricsSnapshot { return obsv.Default.Snapshot() }

// MetricsPromContentType is the Content-Type of the Prometheus text
// exposition format served by WriteMetricsProm (and by janusd's and
// janusfront's GET /metrics/prom).
const MetricsPromContentType = obsv.PromContentType

// WriteMetricsProm renders the process-wide registry in the Prometheus
// text exposition format (version 0.0.4) — the embedder's form of the
// daemons' GET /metrics/prom.
func WriteMetricsProm(w io.Writer) error { return obsv.WritePrometheus(w, nil) }

// WriteFleetMetricsProm merges several labeled snapshots into ONE
// Prometheus exposition (a single # TYPE line per family even when
// every source exports the same metric) — how the front renders its own
// registry next to each backend's, tagged backend="id".
func WriteFleetMetricsProm(w io.Writer, snaps []LabeledMetricsSnapshot) error {
	return obsv.WriteFleetProm(w, snaps)
}

// TraceHeader is the cross-process trace propagation header,
// "X-Janus-Trace": "<trace_id>-<parent_span_id>".
const TraceHeader = obsv.TraceHeader

// ContextWithTraceContext attaches a trace context for outbound calls:
// Client stamps it onto every request as TraceHeader, and a janusd
// receiving it roots the job's trace under the remote span.
func ContextWithTraceContext(ctx context.Context, tc TraceContext) context.Context {
	return obsv.ContextWithTraceContext(ctx, tc)
}

// ServeDebug starts a background HTTP listener exposing /metrics,
// /debug/vars, and /debug/pprof for live inspection of a long synthesis.
// It returns the bound listener; close it to stop serving.
func ServeDebug(addr string) (net.Listener, error) {
	return obsv.ServeDebug(addr, obsv.Default)
}

// MemoSnapshot returns the current hit/miss counters of the shared
// memoization caches. Repeated solves of similar grids should show the
// hit counts growing; Sub on two snapshots isolates one run's traffic.
func MemoSnapshot() MemoStats { return memo.Snapshot() }

// ResetMemo clears the shared caches and their counters. Useful for
// isolating measurements; concurrent synthesis remains safe during a
// reset, it only loses cached work.
func ResetMemo() { memo.Reset() }

// Engine selection modes for Options.EngineSelect. EngineAuto (the zero
// value and the default) predicts each dichotomic step's remaining
// search depth and picks fresh or shared solvers per step; the other two
// pin the choice.
const (
	EngineAuto   = core.EngineAuto
	EngineShared = core.EngineShared
	EngineFresh  = core.EngineFresh
)

// ParseEngineSelect reads an -engine flag value ("auto", "shared",
// "fresh", or "" meaning auto).
func ParseEngineSelect(s string) (EngineSelect, error) { return core.ParseEngineSelect(s) }

// Switch entry kinds for building assignments by hand.
const (
	Const0 = lattice.Const0
	Const1 = lattice.Const1
	PosVar = lattice.PosVar
	NegVar = lattice.NegVar
)

// Product builds a cube from positive and negated variable index lists.
func Product(pos, neg []int) Cube { return cube.FromLiterals(pos, neg) }

// NewCover builds a sum-of-products function over n input variables.
func NewCover(n int, products ...Cube) Cover { return cube.NewCover(n, products...) }

// Minimize returns an irredundant prime cover of f with a minimized
// product count (the role espresso plays in the paper).
func Minimize(f Cover) Cover { return minimize.Auto(f) }

// Dual returns the dual function f^D(x) = ¬f(¬x) as a cover.
func Dual(f Cover) Cover { return f.Dual() }

// Synthesize runs JANUS on a single-output function and returns a
// verified lattice implementation of (approximately) minimum size.
func Synthesize(f Cover, opt Options) (Result, error) { return core.Synthesize(f, opt) }

// SynthesizeMulti runs JANUS-MF, realizing every function on one lattice;
// with reduce=false it stops after the straight-forward packing.
func SynthesizeMulti(fns []Cover, opt Options, reduce bool) (*MultiResult, error) {
	return core.SynthesizeMulti(fns, opt, reduce)
}

// LMResult is the outcome of a single lattice mapping decision.
type LMResult = encode.Result

// MapOnto decides the paper's core subproblem directly: can f be realized
// on the given lattice? The function is Auto-minimized first; a Sat result
// carries a verified assignment.
func MapOnto(f Cover, g Grid, opt EncodeOptions) (LMResult, error) {
	isop, dual := minimize.AutoDual(f)
	return encode.SolveLM(isop, dual, g, opt)
}

// Bounds returns the verified upper-bound constructions for f, sorted by
// size; improved selects whether IPS and IDPS are included.
func Bounds(f Cover, improved bool) []UpperBound {
	isop, dual := minimize.AutoDual(f)
	return bounds.All(isop, dual, improved)
}

// LowerBound returns the structural lower bound on the lattice size of f,
// capped at max.
func LowerBound(f Cover, max int) int {
	isop, dual := minimize.AutoDual(f)
	return bounds.LowerBound(isop, dual, max)
}

// LatticeFunction returns the lattice function of an m×n grid as a cover
// over the switch indexes (row-major), and its product count is the Table
// I "top" entry.
func LatticeFunction(g Grid) Cover { return g.Function() }

// LatticeDual returns the dual lattice function (8-connected left–right
// paths), the Table I "bottom" entry.
func LatticeDual(g Grid) Cover { return g.DualFunction() }

// ParsePLA reads an espresso-format PLA file.
func ParsePLA(r io.Reader) (*PLA, error) { return pla.Parse(r) }

// ParsePLAString reads a PLA held in a string.
func ParsePLAString(s string) (*PLA, error) { return pla.ParseString(s) }

// WritePLA serializes a PLA file.
func WritePLA(w io.Writer, f *PLA) error { return pla.Write(w, f) }

// ExactBaseline runs the exact method of Gange et al. (TODAES 2014).
func ExactBaseline(f Cover, opt BaselineOptions) (BaselineResult, error) {
	return baselines.ExactGange(f, opt)
}

// ApproxBaseline runs the approximate method of Gange et al.
func ApproxBaseline(f Cover, opt BaselineOptions) (BaselineResult, error) {
	return baselines.ApproxGange(f, opt)
}

// HeuristicBaseline runs the promising-candidate heuristic of Morgül &
// Altun.
func HeuristicBaseline(f Cover, opt BaselineOptions) (BaselineResult, error) {
	return baselines.Heuristic(f, opt)
}

// DecomposeBaseline runs the Shannon-decomposition synthesis modeled on
// Bernasconi et al.'s p-circuit method.
func DecomposeBaseline(f Cover, opt BaselineOptions) (BaselineResult, error) {
	return baselines.Decompose(f, opt)
}
