#!/bin/sh
# bench.sh — run the paper-facing benchmark set and emit BENCH_janus.json.
#
# Usage: scripts/bench.sh [output.json]
#
# Runs the encoding ablation, the Table II JANUS subset, and the CEGAR
# engine bench, and converts `go test -bench` output into a JSON document.
# Every ReportMetric unit lands in the per-benchmark "metrics" map, so the
# CEGAR rows carry the solver-effort counters (conflicts, propagations)
# next to iters and clause volumes:
#
#   {
#     "benchmarks": [ {"name": ..., "ns_per_op": ..., "metrics": {...}}, ... ],
#     "cegar_seed_baseline": { ... }   # pre-incremental engine, for reference
#   }
#
# The cegar_seed_baseline block holds the rebuild-per-iteration engine's
# wall times measured at the growth seed (commit 857da60), so the
# incremental engine's speedup stays visible without checking out the old
# tree: compare them against the BenchmarkCegarEngine ns_per_op values.
#
# A "shared_vs_fresh" block compares the whole dichotomic search with
# fresh per-candidate CEGAR solvers against the shared assumption-based
# solver (BenchmarkSharedSearch): per instance, wall time and the clause
# volume constructed (fresh "clauses-added" vs shared "stamped-clauses").
# Stamped < added is the template-stamping win; the ns columns show the
# wall-clock effect.
#
# An "engine_policy" block compares the auto per-step engine policy
# against both forced modes on the same instances: wall times, the
# policy's step trail (how many steps ran shared vs fresh, the depth
# score at the first step), and the clause-quality filter counters.
# scripts/perfgate.py gates auto_ns against min(fresh_ns, shared_ns)
# within the same run.
#
# A "service_load" block is appended from a cmd/janusload run against a
# freshly started janusd (48 requests cycling 4 functions): rps, latency
# percentiles, and the fresh/coalesced/cached answer composition.
#
# An "anytime" block follows from a second janusload run in -stream mode
# (async submit + progress-event follow against a cold cache): time from
# submission to first verified mapping, p50/p99, plus the event volume
# and how many answers degraded to partial.
#
# A "batch_tenancy" block measures the JANUS-MF batch endpoint and the
# multi-tenant scheduler on a fresh daemon: 16 functions submitted
# independently and then as one POST /v1/synthesize/batch (the batch
# must spend fewer LM solves — the paper's multi-function win, gated in
# CI), plus a two-tenant contended run's per-tenant completion counts
# and the scheduler's fairness block.
#
# A "front_shard" block measures the janusfront sharding tier: the
# latency cost of proxying through a single-backend front vs hitting the
# daemon directly (direct/front1 p50/p99 — the front should cost
# low-single-digit ms), and a 3-backend front's cold-vs-warm composition
# (the warm re-run must be nearly all cache hits, which is exactly the
# shard-affinity property: same function -> same backend -> warm cache).
set -eu

out=${1:-BENCH_janus.json}
cd "$(dirname "$0")/.."

raw=$(mktemp)
svcdir=$(mktemp -d)
svcpid=""
frontpids=""
cleanup() {
    [ -n "$svcpid" ] && kill "$svcpid" 2>/dev/null || true
    for p in $frontpids; do kill "$p" 2>/dev/null || true; done
    rm -rf "$raw" "$svcdir"
}
trap cleanup EXIT

go test -run '^$' \
  -bench 'BenchmarkAblationEncoding|BenchmarkTableIIJanus|BenchmarkCegarEngine' \
  -benchtime 3x . | tee "$raw"

# The engine-policy comparison feeds a perf gate with a 10% tolerance —
# tighter than single in-process runs are repeatable (mode ordering and
# neighbor noise alone skew ±15%). Run it with more iterations and three
# repetitions; the JSON keeps the minimum wall time per benchmark, which
# is the noise-robust statistic for a gate (counters are deterministic).
go test -run '^$' -bench 'BenchmarkSharedSearch' -benchtime 5x -count 3 . | tee -a "$raw"

awk '
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)          # strip -GOMAXPROCS
    ns = ""
    metrics = ""
    for (i = 3; i < NF; i += 2) {
        v = $i; u = $(i + 1)
        if (u == "ns/op") { ns = v; continue }
        gsub(/"/, "", u)
        m = sprintf("\"%s\": %s", u, v)
        metrics = metrics == "" ? m : metrics ", " m
        if (name ~ /^BenchmarkSharedSearch\//) sv[name "/" u] = v
    }
    # Repeated benchmarks (-count > 1) fold to their fastest rep; the
    # ReportMetric counters are deterministic, so keeping the last rep
    # for those loses nothing.
    if (!(name in bestNs) || ns + 0 < bestNs[name] + 0) bestNs[name] = ns
    met[name] = metrics
    if (!(name in seen)) { seen[name] = 1; order[++nbench] = name }
    if (name ~ /^BenchmarkSharedSearch\//) {
        split(name, parts, "/")
        insts[parts[2]] = 1
        sv[name "/ns"] = bestNs[name]
    }
}
END {
    print "{\n  \"benchmarks\": ["
    for (i = 1; i <= nbench; i++) {
        name = order[i]
        printf "%s    {\"name\": \"%s\", \"ns_per_op\": %s, \"metrics\": {%s}}", \
            (i > 1 ? ",\n" : ""), name, bestNs[name], met[name]
    }
    print "\n  ],"
    print "  \"shared_vs_fresh\": {"
    print "    \"comment\": \"whole dichotomic search: fresh per-candidate CEGAR solvers vs one shared assumption-based solver per orientation\","
    firstinst = 1
    for (inst in insts) {
        p = "BenchmarkSharedSearch/" inst
        if (!firstinst) printf ",\n"
        firstinst = 0
        printf "    \"%s\": {\"fresh_ns\": %s, \"fresh_clauses_added\": %s, \"shared_ns\": %s, \"shared_stamped_clauses\": %s, \"solver_reuses\": %s, \"cex_transferred\": %s, \"auto_ns\": %s}", \
            inst, sv[p "/fresh/ns"], sv[p "/fresh/clauses-added"], \
            sv[p "/shared/ns"], sv[p "/shared/stamped-clauses"], \
            sv[p "/shared/solver-reuses"], sv[p "/shared/cex-transferred"], \
            sv[p "/auto/ns"]
    }
    print "\n  },"
    print "  \"engine_policy\": {"
    print "    \"comment\": \"auto per-step engine policy vs the forced modes; auto must stay within the perfgate ratio of the better forced mode\","
    firstinst = 1
    for (inst in insts) {
        p = "BenchmarkSharedSearch/" inst
        if (!firstinst) printf ",\n"
        firstinst = 0
        printf "    \"%s\": {\"fresh_ns\": %s, \"shared_ns\": %s, \"auto_ns\": %s, \"auto_shared_steps\": %s, \"auto_fresh_steps\": %s, \"predicted_depth\": %s, \"auto_cex_filtered\": %s, \"auto_learnts_pruned\": %s}", \
            inst, sv[p "/fresh/ns"], sv[p "/shared/ns"], sv[p "/auto/ns"], \
            sv[p "/auto/shared-steps"], sv[p "/auto/fresh-steps"], \
            sv[p "/auto/predicted-depth"], sv[p "/auto/cex-filtered"], \
            sv[p "/auto/learnts-pruned"]
    }
    print "\n  },"
    print "  \"cegar_seed_baseline\": {"
    print "    \"comment\": \"rebuild-per-iteration CEGAR engine at the growth seed; ns wall per solve\","
    print "    \"dc1_02-4x3\": {\"ns_per_op\": 92080000, \"iters\": 12, \"clauses_pushed\": 26436},"
    print "    \"b12_03-4x4\": {\"ns_per_op\": 6590000, \"iters\": 5, \"clauses_pushed\": 8480},"
    print "    \"mp2d_06-5x4\": {\"ns_per_op\": 53120000, \"iters\": 14, \"clauses_pushed\": 69734},"
    print "    \"misex1_04-4x4\": {\"ns_per_op\": 31830000, \"clauses_pushed\": 36224}"
    print "  }"
    print "}"
}' "$raw" > "$out"

# Service throughput: run a warm-cache workload through a local janusd
# and fold the janusload JSON report into the document.
go build -o "$svcdir" ./cmd/janusd ./cmd/janusload
"$svcdir/janusd" -addr localhost:7163 -cache-dir "$svcdir/cache" -workers 2 &
svcpid=$!
sleep 1
svcjson=$("$svcdir/janusload" -addr http://localhost:7163 \
    -n 48 -c 8 -distinct 4 -timeout-ms 60000 -json)

# Anytime measurement: stream fresh (uncached seed) functions so the
# first-mapping latency reflects real searches, not cache hits.
streamjson=$("$svcdir/janusload" -addr http://localhost:7163 \
    -n 12 -c 4 -distinct 4 -seed 77 -timeout-ms 60000 -stream -json)
anytime=$(printf '%s' "$streamjson" | python3 -c \
    'import json,sys; print(json.dumps(json.load(sys.stdin).get("anytime") or {}))')
kill -TERM "$svcpid" && wait "$svcpid" || true
svcpid=""
merged=$(mktemp)
awk -v svc="$svcjson" -v any="$anytime" '
/^}$/ { print "  ,"; print "  \"service_load\": " svc ","; print "  \"anytime\": " any; print "}"; next }
{ print }
' "$out" > "$merged" && mv "$merged" "$out"

# Batch + tenancy: a fresh daemon (no cache dir — the batch comparison
# needs cold per-function answers) measures the JANUS-MF batching win,
# then a two-tenant contended run's fairness accounting. The batch
# workload is 16 six-input functions: independent submissions first
# (their cache entries never help the batch, whose key is its own), then
# the same functions as one batch.
"$svcdir/janusd" -addr localhost:7167 -workers 2 \
    -tenants "bulk:1:16,inter:4" &
svcpid=$!
sleep 1
batchjson=$("$svcdir/janusload" -addr http://localhost:7167 \
    -batch -distinct 16 -inputs 6 -seed 9 -timeout-ms 60000 -json)
batch=$(printf '%s' "$batchjson" | python3 -c \
    'import json,sys; print(json.dumps(json.load(sys.stdin)["batch_tenancy"]))')
tenantjson=$("$svcdir/janusload" -addr http://localhost:7167 \
    -tenants bulk,inter -n 48 -c 8 -distinct 8 -seed 5 -timeout-ms 60000 -json)
tenants=$(printf '%s' "$tenantjson" | python3 -c \
    'import json,sys; r=json.load(sys.stdin)
print(json.dumps({"completed_by_tenant": r.get("completed_by_tenant"),
                  "scheduler": r.get("scheduler")}))')
kill -TERM "$svcpid" && wait "$svcpid" || true
svcpid=""
merged=$(mktemp)
awk -v b="$batch" -v tn="$tenants" '
/^}$/ {
    print "  ,"
    print "  \"batch_tenancy\": {"
    print "    \"comment\": \"16 functions independently vs as one JANUS-MF batch (batch.batch_lm_solved must beat batch.independent_lm_solved), plus a two-tenant contended run: completion counts and the DRR scheduler block\","
    print "    \"batch\": " b ","
    print "    \"tenants\": " tn
    print "  }"
    print "}"
    next
}
{ print }
' "$out" > "$merged" && mv "$merged" "$out"

# Front tier: proxy overhead (1 backend, direct vs through the front)
# and shard-affinity hit rate (3 backends, cold then warm).
go build -o "$svcdir" ./cmd/janusfront
fleetpeers=http://localhost:7164,http://localhost:7165,http://localhost:7166
"$svcdir/janusd" -addr localhost:7164 -cache-dir "$svcdir/b1" -workers 2 -peers "$fleetpeers" &
frontpids="$frontpids $!"
"$svcdir/janusd" -addr localhost:7165 -cache-dir "$svcdir/b2" -workers 2 -peers "$fleetpeers" &
frontpids="$frontpids $!"
"$svcdir/janusd" -addr localhost:7166 -cache-dir "$svcdir/b3" -workers 2 -peers "$fleetpeers" &
frontpids="$frontpids $!"
"$svcdir/janusfront" -addr localhost:7171 -backends http://localhost:7164 &
frontpids="$frontpids $!"
"$svcdir/janusfront" -addr localhost:7172 \
    -backends http://localhost:7164,http://localhost:7165,http://localhost:7166 &
frontpids="$frontpids $!"
sleep 1

# Warm the single backend directly, then measure warm p50 both ways —
# the delta is the front's own cost, not synthesis noise.
"$svcdir/janusload" -addr http://localhost:7164 \
    -n 32 -c 4 -distinct 4 -seed 11 -timeout-ms 60000 -json > /dev/null
directjson=$("$svcdir/janusload" -addr http://localhost:7164 \
    -n 32 -c 4 -distinct 4 -seed 11 -timeout-ms 60000 -json)
front1json=$("$svcdir/janusload" -addr http://localhost:7171 \
    -n 32 -c 4 -distinct 4 -seed 11 -timeout-ms 60000 -json)

# 3-backend front: cold sweep over 8 distinct functions, then the warm
# re-run — shard affinity makes the repeat nearly all cache hits.
front3cold=$("$svcdir/janusload" -addr http://localhost:7172 \
    -n 32 -c 8 -distinct 8 -seed 23 -timeout-ms 60000 -json)
front3warm=$("$svcdir/janusload" -addr http://localhost:7172 \
    -n 32 -c 8 -distinct 8 -seed 23 -timeout-ms 60000 -json)
frontstats=$(python3 -c 'import json,urllib.request
st = json.load(urllib.request.urlopen("http://localhost:7172/v1/stats"))
print(json.dumps(st["front"]))')
for p in $frontpids; do kill "$p" 2>/dev/null || true; done
for p in $frontpids; do wait "$p" 2>/dev/null || true; done
frontpids=""

merged=$(mktemp)
awk -v d="$directjson" -v f1="$front1json" -v c3="$front3cold" -v w3="$front3warm" -v fs="$frontstats" '
/^}$/ {
    print "  ,"
    print "  \"front_shard\": {"
    print "    \"comment\": \"janusfront tier: warm p50 direct vs through a 1-backend front (proxy overhead), and a 3-backend front cold/warm (shard-affinity hit rate); front block is the 3-backend front routing counters\","
    print "    \"direct\": " d ","
    print "    \"front1\": " f1 ","
    print "    \"front3_cold\": " c3 ","
    print "    \"front3_warm\": " w3 ","
    print "    \"front\": " fs
    print "  }"
    print "}"
    next
}
{ print }
' "$out" > "$merged" && mv "$merged" "$out"

echo "wrote $out"
