#!/usr/bin/env python3
"""Strict checker for a Prometheus text-format 0.0.4 exposition.

CI pipes the body of GET /metrics/prom (janusd's own registry, or the
front's merged fleet view) through this script. It fails on anything a
real Prometheus scraper would reject or silently mangle:

  - malformed lines (not `name{labels} value` / `name value`)
  - invalid metric or label names, unescaped label values
  - a # TYPE line naming a family more than once, or appearing after
    a sample of that family was already emitted
  - a TYPE other than counter/gauge/histogram/untyped
  - histogram families missing their +Inf bucket, _sum, or _count, or
    with non-monotonic cumulative bucket counts
  - non-numeric sample values (NaN is allowed; Prometheus accepts it)

Usage:  promcheck.py [file]        (stdin when no file is given)
        promcheck.py --require NAME [--require NAME ...] [file]

--require asserts the exposition contains a sample whose family name
matches NAME exactly (labels ignored) — CI uses it to pin the series
the dashboards depend on.

Exit 0 and a one-line summary on success; exit 1 with every violation
on stderr otherwise.
"""

import re
import sys

METRIC_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
# name{labels} value  |  name value   (timestamps are not emitted by janus)
SAMPLE_RE = re.compile(r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{([^}]*)\})? (\S+)$")
LABEL_PAIR_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')
VALUE_RE = re.compile(r"^(NaN|[+-]?Inf|[+-]?[0-9]*\.?[0-9]+([eE][+-]?[0-9]+)?)$")
TYPES = {"counter", "gauge", "histogram", "summary", "untyped"}


def base_family(name):
    """Family a sample belongs to for TYPE purposes: histogram series
    carry _bucket/_sum/_count suffixes on the declared family name."""
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


def parse_labels(raw, lineno, errors):
    """Return the label dict, flagging junk between pairs."""
    labels = {}
    rest = raw
    while rest:
        m = LABEL_PAIR_RE.match(rest)
        if not m:
            errors.append(f"line {lineno}: bad label block near {rest!r}")
            return labels
        labels[m.group(1)] = m.group(2)
        rest = rest[m.end():]
        if rest.startswith(","):
            rest = rest[1:]
        elif rest:
            errors.append(f"line {lineno}: junk between labels: {rest!r}")
            return labels
    return labels


def check(text):
    errors = []
    typed = {}          # family -> declared type
    seen_sample = set()  # families that already emitted a sample
    families = set()     # every family with at least one sample
    # histogram family -> {"buckets": [(le, value, lineno)], "sum": n, "count": n}
    hists = {}
    nsamples = 0

    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4:
                errors.append(f"line {lineno}: malformed TYPE line: {line!r}")
                continue
            _, _, fam, typ = parts
            if not METRIC_RE.match(fam):
                errors.append(f"line {lineno}: TYPE names invalid metric {fam!r}")
            if typ not in TYPES:
                errors.append(f"line {lineno}: unknown type {typ!r} for {fam}")
            if fam in typed:
                errors.append(f"line {lineno}: duplicate TYPE line for {fam}")
            if fam in seen_sample:
                errors.append(f"line {lineno}: TYPE for {fam} after its samples")
            typed[fam] = typ
            continue
        if line.startswith("#"):
            continue  # HELP and comments: free-form

        m = SAMPLE_RE.match(line)
        if not m:
            errors.append(f"line {lineno}: malformed sample line: {line!r}")
            continue
        name, _, rawlabels, value = m.groups()
        nsamples += 1
        fam = base_family(name) if typed.get(base_family(name)) == "histogram" else name
        seen_sample.add(fam)
        families.add(fam)
        if not VALUE_RE.match(value):
            errors.append(f"line {lineno}: non-numeric value {value!r} for {name}")
        labels = parse_labels(rawlabels, lineno, errors) if rawlabels else {}
        for k in labels:
            if not LABEL_RE.match(k):
                errors.append(f"line {lineno}: invalid label name {k!r}")

        if typed.get(fam) == "histogram":
            # Histogram series with extra labels (e.g. backend=...) are
            # tracked per label-set so bucket monotonicity is judged
            # within one series, not across backends.
            extra = tuple(sorted((k, v) for k, v in labels.items() if k != "le"))
            h = hists.setdefault((fam, extra), {"buckets": [], "sum": None, "count": None})
            try:
                num = float(value)
            except ValueError:
                num = float("nan")
            if name.endswith("_bucket"):
                if "le" not in labels:
                    errors.append(f"line {lineno}: {name} sample without le label")
                else:
                    le = float("inf") if labels["le"] == "+Inf" else float(labels["le"])
                    h["buckets"].append((le, num, lineno))
            elif name.endswith("_sum"):
                h["sum"] = num
            elif name.endswith("_count"):
                h["count"] = num
            else:
                errors.append(f"line {lineno}: {name} is typed histogram but has no histogram suffix")

    for fam in sorted(families):
        if fam not in typed:
            errors.append(f"family {fam} has samples but no TYPE line")
    for (fam, extra), h in sorted(hists.items()):
        where = fam + ("{" + ",".join(f'{k}="{v}"' for k, v in extra) + "}" if extra else "")
        if h["sum"] is None or h["count"] is None:
            errors.append(f"histogram {where} missing _sum or _count")
        buckets = sorted(h["buckets"])
        if not buckets or buckets[-1][0] != float("inf"):
            errors.append(f"histogram {where} missing +Inf bucket")
        prev = None
        for le, num, lineno in buckets:
            if prev is not None and num < prev:
                errors.append(
                    f"line {lineno}: histogram {where} bucket le={le} count {num} < previous {prev}")
            prev = num
        if buckets and h["count"] is not None and buckets[-1][1] != h["count"]:
            errors.append(f"histogram {where} +Inf bucket {buckets[-1][1]} != _count {h['count']}")

    return errors, nsamples, families


def main(argv):
    require = []
    args = []
    it = iter(argv)
    for a in it:
        if a == "--require":
            try:
                require.append(next(it))
            except StopIteration:
                print("promcheck: --require needs a metric name", file=sys.stderr)
                return 2
        else:
            args.append(a)
    if len(args) > 1:
        print(__doc__, file=sys.stderr)
        return 2

    text = open(args[0]).read() if args else sys.stdin.read()
    errors, nsamples, families = check(text)
    for name in require:
        if name not in families:
            errors.append(f"required family {name} not present")
    if errors:
        for e in errors:
            print(f"promcheck: {e}", file=sys.stderr)
        return 1
    print(f"promcheck OK: {nsamples} samples, {len(families)} families")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
