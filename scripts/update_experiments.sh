#!/bin/sh
# Regenerates the measured-results sections of EXPERIMENTS.md from the
# harness outputs (.tableii_janus.txt / .tableiii.txt produced by
# cmd/tableii and cmd/tableiii).
set -e
cd "$(dirname "$0")/.."
python3 - <<'PY'
import re

doc = open('EXPERIMENTS.md').read()

def block(path):
    try:
        body = open(path).read().strip()
    except FileNotFoundError:
        return f"*(no harness output at {path})*"
    body = body.replace('DONE', '').strip()
    return f"```\n{body}\n```"

doc = re.sub(r'<!-- TABLEII-RESULTS -->.*?(?=\n## )',
             '<!-- TABLEII-RESULTS -->\n\n' + block('.tableii_janus.txt') + '\n\n',
             doc, flags=re.S)
doc = re.sub(r'<!-- TABLEIII-RESULTS -->.*?(?=\n## )',
             '<!-- TABLEIII-RESULTS -->\n\n' + block('.tableiii.txt') + '\n\n',
             doc, flags=re.S)
open('EXPERIMENTS.md','w').write(doc)
print("EXPERIMENTS.md updated")
PY
