#!/usr/bin/env python3
"""perfgate.py — fail CI when the current tree's benchmarks regress.

Usage: perfgate.py BASELINE.json CURRENT.json [max_ratio]

Compares the committed BENCH_janus.json against a fresh scripts/bench.sh
run of the same tree:

  * every BenchmarkCegarEngine/* ns_per_op, and
  * the shared_vs_fresh per-instance wall clocks (fresh_ns, shared_ns,
    auto_ns),

failing when current/baseline exceeds max_ratio (default 1.2, i.e. a
>20% wall-clock regression). Benchmarks present only on one side are
reported but not fatal — renaming an instance shouldn't brick CI, and a
new instance has no baseline yet. The ratio can be loosened via the
PERF_GATE_RATIO environment variable for known-noisy runners.

On top of the baseline comparison, the engine_policy block of the
CURRENT run is gated against itself: on every instance the auto policy's
wall clock must stay within PERF_GATE_AUTO_RATIO (default 1.1) of the
better forced mode, min(fresh_ns, shared_ns). This is a within-run
comparison, so machine speed cancels out — it fails only when the
policy itself picks a losing engine.
"""
import json
import os
import sys


def cegar_rows(doc):
    return {
        b["name"]: float(b["ns_per_op"])
        for b in doc.get("benchmarks", [])
        if b["name"].startswith("BenchmarkCegarEngine/") and b.get("ns_per_op")
    }


def shared_rows(doc):
    rows = {}
    for inst, r in doc.get("shared_vs_fresh", {}).items():
        if not isinstance(r, dict):
            continue
        for col in ("fresh_ns", "shared_ns", "auto_ns"):
            if r.get(col):
                rows[f"{inst}/{col}"] = float(r[col])
    return rows


def auto_gate(cur, ratio):
    """Within-run check: auto within ratio of min(fresh, shared) per
    instance. Returns (failures, checked)."""
    failures, checked = [], 0
    for inst, r in sorted(cur.get("engine_policy", {}).items()):
        if not isinstance(r, dict):
            continue
        try:
            fresh, shared, auto = (float(r[c]) for c in ("fresh_ns", "shared_ns", "auto_ns"))
        except (KeyError, TypeError, ValueError):
            print(f"note: engine_policy {inst} incomplete, skipping")
            continue
        checked += 1
        best = min(fresh, shared)
        rel = auto / best
        status = "FAIL" if rel > ratio else "ok"
        print(f"{status}: auto {inst}: {auto:.0f} ns vs best forced {best:.0f} ns ({rel:.2f}x)")
        if rel > ratio:
            failures.append(
                f"auto engine {rel:.2f}x slower than best forced mode on {inst} (limit {ratio:.2f}x)")
    return failures, checked


def main():
    if len(sys.argv) < 3:
        sys.exit(__doc__)
    base = json.load(open(sys.argv[1]))
    cur = json.load(open(sys.argv[2]))
    ratio = float(sys.argv[3]) if len(sys.argv) > 3 else float(
        os.environ.get("PERF_GATE_RATIO", "1.2"))

    failures, checked = [], 0
    for label, get in (("cegar", cegar_rows), ("shared_vs_fresh", shared_rows)):
        b, c = get(base), get(cur)
        for name in sorted(b):
            if name not in c:
                print(f"note: {label} {name} missing from current run")
                continue
            checked += 1
            r = c[name] / b[name]
            status = "FAIL" if r > ratio else "ok"
            print(f"{status}: {name}: {b[name]:.0f} -> {c[name]:.0f} ns ({r:.2f}x)")
            if r > ratio:
                failures.append(f"{name} regressed {r:.2f}x (limit {ratio:.2f}x)")
        for name in sorted(set(c) - set(b)):
            print(f"note: {label} {name} has no baseline")

    auto_ratio = float(os.environ.get("PERF_GATE_AUTO_RATIO", "1.1"))
    auto_failures, auto_checked = auto_gate(cur, auto_ratio)
    failures += auto_failures
    checked += auto_checked

    if checked == 0:
        sys.exit("perfgate: nothing compared — baseline/current mismatch?")
    if failures:
        sys.exit("perfgate: " + "; ".join(failures))
    print(f"perfgate: {checked} benchmarks within {ratio:.2f}x")


if __name__ == "__main__":
    main()
