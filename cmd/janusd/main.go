// Command janusd serves JANUS synthesis over HTTP: a bounded job queue
// with request coalescing in front of the synthesis engine, plus a
// persistent result/path cache so repeated questions are answered
// without re-searching.
//
// Usage:
//
//	janusd [-addr :7151] [-workers N] [-queue N] [-cache-dir DIR]
//	       [-cache-entries N] [-cache-bytes N] [-mem-entries N]
//	       [-default-timeout D] [-max-timeout D] [-synth-workers N]
//	       [-drain-timeout D] [-debug-addr ADDR]
//
// API:
//
//	POST /v1/synthesize   {"pla": ".i 4\n.o 1\n1111 1\n0000 1\n.e"}
//	GET  /v1/jobs/{id}    poll an async or timed-out job
//	GET  /healthz         queue health (503 while draining)
//	GET  /metrics         process-wide janus_* metrics
//
// SIGINT/SIGTERM starts a graceful shutdown: admission stops, accepted
// jobs finish (bounded by -drain-timeout), and the memo path snapshot is
// persisted to the cache directory. A second signal aborts the drain.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/lattice-tools/janus"
)

func main() {
	var (
		addr       = flag.String("addr", ":7151", "HTTP listen address")
		workers    = flag.Int("workers", 2, "concurrent synthesis jobs")
		queue      = flag.Int("queue", 64, "accepted-job backlog before 429")
		cacheDir   = flag.String("cache-dir", "", "persistent cache directory (empty = memory only)")
		cacheEnts  = flag.Int("cache-entries", 4096, "max results kept on disk")
		cacheBytes = flag.Int64("cache-bytes", 64<<20, "max bytes of results kept on disk")
		memEnts    = flag.Int("mem-entries", 256, "max results kept in memory")
		defTimeout = flag.Duration("default-timeout", 5*time.Minute, "budget for requests without timeout_ms")
		maxTimeout = flag.Duration("max-timeout", time.Hour, "cap on any request budget")
		synthW     = flag.Int("synth-workers", 1, "candidate-level parallelism inside each job")
		drain      = flag.Duration("drain-timeout", 2*time.Minute, "graceful shutdown budget")
		debugAddr  = flag.String("debug-addr", "", "extra listener for /metrics and /debug/pprof")
	)
	flag.Parse()

	srv, err := janus.NewServer(janus.ServiceConfig{
		Workers: *workers, QueueDepth: *queue,
		MemEntries: *memEnts, CacheDir: *cacheDir,
		DiskEntries: *cacheEnts, DiskBytes: *cacheBytes,
		DefaultTimeout: *defTimeout, MaxTimeout: *maxTimeout,
		SynthWorkers: *synthW,
	})
	if err != nil {
		fatal(err)
	}

	if *debugAddr != "" {
		dln, err := janus.ServeDebug(*debugAddr)
		if err != nil {
			fatal(err)
		}
		defer dln.Close()
		fmt.Fprintf(os.Stderr, "janusd: debug server on http://%s/metrics\n", dln.Addr())
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "janusd: serving on http://%s\n", ln.Addr())

	sigCtx, stop := signal.NotifyContext(context.Background(),
		syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	select {
	case <-sigCtx.Done():
		stop() // a second signal kills the process the default way
		fmt.Fprintln(os.Stderr, "janusd: draining...")
	case err := <-errc:
		fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	httpSrv.Shutdown(ctx) //nolint:errcheck // the service drain below is the one that matters
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "janusd: drain:", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "janusd: drained")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "janusd:", err)
	os.Exit(1)
}
