// Command janusd serves JANUS synthesis over HTTP: a bounded job queue
// with request coalescing in front of the synthesis engine, plus a
// persistent result/path cache so repeated questions are answered
// without re-searching.
//
// Usage:
//
//	janusd [-addr :7151] [-workers N] [-queue N] [-cache-dir DIR]
//	       [-cache-entries N] [-cache-bytes N] [-mem-entries N]
//	       [-default-timeout D] [-max-timeout D] [-synth-workers N]
//	       [-drain-timeout D] [-debug-addr ADDR] [-log-level LEVEL]
//	       [-trace-jobs N] [-trace-spans N] [-flight-entries N]
//	       [-flight-slow-ms N] [-slo-synth-ms N] [-slo-jobs-ms N]
//	       [-slo-target F] [-progress-events N] [-slo-first-mapping-ms N]
//	       [-peers URL,URL,...] [-tenants SPEC,SPEC,...]
//	       [-tenant-weight N] [-tenant-queue-share N] [-tenant-inflight N]
//	       [-tenant-slo-synth-ms N] [-tenant-slo-first-mapping-ms N]
//	       [-batch-reduce-budget N] [-trace-propagate=BOOL]
//
// API:
//
//	POST /v1/synthesize         {"pla": ".i 4\n.o 1\n1111 1\n0000 1\n.e"}
//	POST /v1/synthesize/batch   {"functions": [{"pla": …}, …]} — one lattice via JANUS-MF
//	GET  /v1/jobs/{id}          poll an async or timed-out job (live progress inline)
//	GET  /v1/jobs/{id}/events   stream progress events (SSE; ?wait= long-polls)
//	GET  /v1/jobs/{id}/trace    a finished job's span trace (JSONL)
//	GET  /v1/stats              queue health + SLO burn rates
//	GET  /v1/cache/{fnKey}      budget-compatible cached answer (peer cache fill)
//	GET  /healthz               queue health (503 while draining)
//	GET  /debug/flightrecorder  recent request summaries
//	GET  /metrics               process-wide janus_* metrics
//
// Logs are JSON lines on stderr (one access line per request, lifecycle
// lines for jobs and the daemon itself). SIGQUIT dumps the flight
// recorder to stderr and keeps running.
//
// SIGINT/SIGTERM starts a graceful shutdown: admission stops, accepted
// jobs finish (bounded by -drain-timeout), and the memo path snapshot is
// persisted to the cache directory. The HTTP listener keeps answering —
// /healthz reports 503 — until the drain completes, so front tiers can
// see the daemon leaving before its socket does. A second signal aborts
// the drain.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"github.com/lattice-tools/janus"
	"github.com/lattice-tools/janus/internal/obsv"
)

func main() {
	var (
		addr       = flag.String("addr", ":7151", "HTTP listen address")
		workers    = flag.Int("workers", 2, "concurrent synthesis jobs")
		queue      = flag.Int("queue", 64, "accepted-job backlog before 429")
		cacheDir   = flag.String("cache-dir", "", "persistent cache directory (empty = memory only)")
		cacheEnts  = flag.Int("cache-entries", 4096, "max results kept on disk")
		cacheBytes = flag.Int64("cache-bytes", 64<<20, "max bytes of results kept on disk")
		memEnts    = flag.Int("mem-entries", 256, "max results kept in memory")
		defTimeout = flag.Duration("default-timeout", 5*time.Minute, "budget for requests without timeout_ms")
		maxTimeout = flag.Duration("max-timeout", time.Hour, "cap on any request budget")
		synthW     = flag.Int("synth-workers", 1, "candidate-level parallelism inside each job")
		drain      = flag.Duration("drain-timeout", 2*time.Minute, "graceful shutdown budget")
		debugAddr  = flag.String("debug-addr", "", "extra listener for /metrics and /debug/pprof")
		logLevel   = flag.String("log-level", "info", "log level: debug, info, warn, error")
		traceJobs  = flag.Int("trace-jobs", 64, "finished jobs keeping a retrievable trace (0 disables tracing)")
		traceSpans = flag.Int("trace-spans", 0, "max spans kept per job trace (0 = default)")
		flightEnts = flag.Int("flight-entries", 256, "flight recorder ring size (0 disables)")
		flightSlow = flag.Int64("flight-slow-ms", 2000, "pin traces of jobs at least this slow (0 = never)")
		sloSynth   = flag.Int64("slo-synth-ms", 30000, "latency objective for POST /v1/synthesize")
		sloJobs    = flag.Int64("slo-jobs-ms", 100, "latency objective for GET /v1/jobs")
		sloTarget  = flag.Float64("slo-target", 0.99, "fraction of requests that must meet their objective")
		progEvents = flag.Int("progress-events", 512, "progress events kept per job for /v1/jobs/{id}/events (0 disables progress)")
		sloFirstMs = flag.Int64("slo-first-mapping-ms", 10000, "anytime objective: enqueue to first verified mapping")
		peers      = flag.String("peers", "", "comma-separated janusd base URLs allowed as peer cache-fill sources (empty disables X-Janus-Fill-From)")
		tenants    = flag.String("tenants", "", "per-tenant scheduling config: name:weight[:queueshare[:inflight]],... (X-Janus-Tenant header selects the tenant)")
		tenWeight  = flag.Int("tenant-weight", 1, "default DRR weight for tenants not named in -tenants")
		tenShare   = flag.Int("tenant-queue-share", 0, "default per-tenant queue share (0 = the global -queue)")
		tenFlight  = flag.Int("tenant-inflight", 0, "default per-tenant in-flight cap (0 = unlimited)")
		tenSloSyn  = flag.Int64("tenant-slo-synth-ms", 0, "per-tenant job e2e objective (0 = inherit -slo-synth-ms, negative disables per-tenant SLOs)")
		tenSloFM   = flag.Int64("tenant-slo-first-mapping-ms", 0, "per-tenant first-mapping objective (0 = inherit -slo-first-mapping-ms, negative disables)")
		batchRB    = flag.Int("batch-reduce-budget", 8, "LM solves the batch row-reduction phase may spend (0 = unlimited)")
		traceProp  = flag.Bool("trace-propagate", true, "root job traces under an inbound X-Janus-Trace context (false ignores the header)")
	)
	flag.Parse()

	log := obsv.NewLogger(os.Stderr, parseLevel(*logLevel))

	tenantCfg, err := parseTenants(*tenants)
	if err != nil {
		fatal(err)
	}

	// Flag zero means "off" for the bounded-retention knobs; the config
	// encodes off as negative (its own zero means "default").
	srv, err := janus.NewServer(janus.ServiceConfig{
		Workers: *workers, QueueDepth: *queue,
		MemEntries: *memEnts, CacheDir: *cacheDir,
		DiskEntries: *cacheEnts, DiskBytes: *cacheBytes,
		DefaultTimeout: *defTimeout, MaxTimeout: *maxTimeout,
		SynthWorkers: *synthW,
		TraceJobs:    offIfZero(*traceJobs), TraceSpans: *traceSpans,
		FlightEntries:   offIfZero(*flightEnts),
		SlowTrace:       time.Duration(offIfZero64(*flightSlow)) * time.Millisecond,
		SynthSLO:        time.Duration(*sloSynth) * time.Millisecond,
		JobsSLO:         time.Duration(*sloJobs) * time.Millisecond,
		SLOTarget:       *sloTarget,
		ProgressEvents:  offIfZero(*progEvents),
		FirstMappingSLO: time.Duration(*sloFirstMs) * time.Millisecond,
		Peers:           splitList(*peers),
		Tenants:         tenantCfg,
		TenantDefaults: janus.TenantConfig{
			Weight: *tenWeight, QueueShare: *tenShare, MaxInFlight: *tenFlight,
		},
		TenantSynthSLO:          time.Duration(*tenSloSyn) * time.Millisecond,
		TenantFirstMappingSLO:   time.Duration(*tenSloFM) * time.Millisecond,
		DisableTracePropagation: !*traceProp,
		BatchReduceBudget:       offIfZero(*batchRB),
		Logger:                  log,
	})
	if err != nil {
		fatal(err)
	}

	if *debugAddr != "" {
		dln, err := janus.ServeDebug(*debugAddr)
		if err != nil {
			fatal(err)
		}
		defer dln.Close()
		log.Info("debug server up", "addr", dln.Addr().String())
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()
	log.Info("serving", "addr", ln.Addr().String(),
		"workers", *workers, "queue", *queue, "trace_jobs", *traceJobs,
		"flight_entries", *flightEnts)

	// SIGQUIT: dump the flight recorder without dying, the classic
	// "what has this daemon been doing" lever.
	quitc := make(chan os.Signal, 1)
	signal.Notify(quitc, syscall.SIGQUIT)
	go func() {
		for range quitc {
			dumpFlight(srv)
		}
	}()

	sigCtx, stop := signal.NotifyContext(context.Background(),
		syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	select {
	case <-sigCtx.Done():
		stop() // a second signal kills the process the default way
		log.Info("draining")
	case err := <-errc:
		fatal(err)
	}

	// Drain the service FIRST, with the listener still up: load
	// balancers keep getting 503s from /healthz while accepted jobs
	// finish, instead of connection refused. Only then close the socket.
	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	drainErr := srv.Shutdown(ctx)
	httpSrv.Shutdown(ctx) //nolint:errcheck // the service drain above is the one that matters
	if drainErr != nil {
		log.Error("drain failed", "err", drainErr.Error())
		os.Exit(1)
	}
	log.Info("drained")
}

// dumpFlight writes the flight recorder to stderr as one JSON document.
func dumpFlight(srv *janus.Server) {
	d := srv.Flight()
	enc := json.NewEncoder(os.Stderr)
	enc.SetIndent("", "  ")
	fmt.Fprintln(os.Stderr, "janusd: flight recorder dump:")
	enc.Encode(d) //nolint:errcheck // best-effort debug output
}

func parseLevel(s string) slog.Level {
	switch strings.ToLower(s) {
	case "debug":
		return slog.LevelDebug
	case "warn":
		return slog.LevelWarn
	case "error":
		return slog.LevelError
	default:
		return slog.LevelInfo
	}
}

// parseTenants reads the -tenants flag: comma-separated
// name:weight[:queueshare[:inflight]] specs, zero/omitted fields meaning
// "the default". ("bulk:1:8,interactive:4" gives interactive 4× the
// dispatch weight and caps bulk's backlog at 8 queued jobs.)
func parseTenants(s string) (map[string]janus.TenantConfig, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	out := make(map[string]janus.TenantConfig)
	for _, spec := range splitList(s) {
		parts := strings.Split(spec, ":")
		name := strings.TrimSpace(parts[0])
		if name == "" {
			return nil, fmt.Errorf("-tenants: empty tenant name in %q", spec)
		}
		var cfg janus.TenantConfig
		for i, p := range parts[1:] {
			if i > 2 {
				return nil, fmt.Errorf("-tenants: too many fields in %q", spec)
			}
			v, err := strconv.Atoi(strings.TrimSpace(p))
			if err != nil || v < 0 {
				return nil, fmt.Errorf("-tenants: bad value %q in %q", p, spec)
			}
			switch i {
			case 0:
				cfg.Weight = v
			case 1:
				cfg.QueueShare = v
			case 2:
				cfg.MaxInFlight = v
			}
		}
		out[name] = cfg
	}
	return out, nil
}

// splitList parses a comma-separated flag into its non-empty elements.
func splitList(s string) []string {
	var out []string
	for _, v := range strings.Split(s, ",") {
		if v = strings.TrimSpace(v); v != "" {
			out = append(out, v)
		}
	}
	return out
}

func offIfZero(v int) int {
	if v == 0 {
		return -1
	}
	return v
}

func offIfZero64(v int64) int64 {
	if v == 0 {
		return -1
	}
	return v
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "janusd:", err)
	os.Exit(1)
}
