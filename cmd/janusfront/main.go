// Command janusfront shards synthesis traffic across N janusd backends
// by consistent (rendezvous) hashing on the budget-free function key,
// so every budget variant and spelling of the same function lands on
// one daemon — where coalescing, the result cache, the budget index,
// and the path memo already do their work per node.
//
// Usage:
//
//	janusfront -backends http://host1:7151,http://host2:7151,...
//	           [-addr :7251] [-health-interval D] [-health-timeout D]
//	           [-fail-after N] [-retries-429 N] [-retry-after-cap D]
//	           [-stats-timeout D] [-trace-jobs N] [-trace-propagate=BOOL]
//	           [-debug-addr ADDR] [-log-level LEVEL]
//
// API (the janusd surface, routed):
//
//	POST /v1/synthesize         routed to the function key's owning shard
//	GET  /v1/jobs/{id}          job ids embed their shard ("host:port~jab...")
//	GET  /v1/jobs/{id}/events   SSE / ?wait= long-poll passthrough
//	GET  /v1/jobs/{id}/trace    backend trace stitched under the front's Route/Attempt spans
//	GET  /v1/stats              merged backend stats + front routing block (per-backend deadline)
//	GET  /metrics/prom          fleet Prometheus view: front + every backend, backend-labeled
//	GET  /healthz               503 only when no backend is routable
//	GET  /metrics               janus_front_* metrics
//
// A health poller watches each backend's /healthz; backends are ejected
// after -fail-after consecutive failures (a draining daemon counts as
// failed) and re-admitted on recovery. Keys rerouted by a membership
// change carry an X-Janus-Fill-From hint so the new owner fills its
// cache from the previous owner instead of re-solving.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/lattice-tools/janus"
	"github.com/lattice-tools/janus/internal/obsv"
)

func main() {
	var (
		addr       = flag.String("addr", ":7251", "HTTP listen address")
		backends   = flag.String("backends", "", "comma-separated janusd base URLs (required)")
		healthIvl  = flag.Duration("health-interval", time.Second, "backend /healthz poll period")
		healthTO   = flag.Duration("health-timeout", 2*time.Second, "one health probe's budget")
		failAfter  = flag.Int("fail-after", 2, "consecutive probe failures before ejecting a backend")
		retries429 = flag.Int("retries-429", 2, "Retry-After-paced retries on a backpressured backend before passing the 429 through")
		retryCap   = flag.Duration("retry-after-cap", 2*time.Second, "cap on one Retry-After pause")
		statsTO    = flag.Duration("stats-timeout", 2*time.Second, "per-backend budget of a merged /v1/stats or /metrics/prom fan-out")
		traceJobs  = flag.Int("trace-jobs", 256, "routed jobs keeping a stitchable front trace (0 disables fleet tracing)")
		traceProp  = flag.Bool("trace-propagate", true, "mint X-Janus-Trace toward the backends so job traces stitch under the front's spans")
		debugAddr  = flag.String("debug-addr", "", "extra listener for /metrics and /debug/pprof")
		logLevel   = flag.String("log-level", "info", "log level: debug, info, warn, error")
	)
	flag.Parse()

	log := obsv.NewLogger(os.Stderr, parseLevel(*logLevel))
	var urls []string
	for _, b := range strings.Split(*backends, ",") {
		if b = strings.TrimSpace(b); b != "" {
			urls = append(urls, b)
		}
	}
	f, err := janus.NewFront(janus.FrontConfig{
		Backends:       urls,
		HealthInterval: *healthIvl,
		HealthTimeout:  *healthTO,
		FailAfter:      *failAfter,
		Retry429:       *retries429,
		RetryAfterCap:  *retryCap,
		StatsTimeout:   *statsTO,
		// Flag zero means "off"; the config encodes off as negative (its
		// own zero means "default"), matching janusd's -trace-jobs.
		TraceJobs:               offIfZero(*traceJobs),
		DisableTracePropagation: !*traceProp,
		Logger:                  log,
	})
	if err != nil {
		fatal(err)
	}

	if *debugAddr != "" {
		dln, err := janus.ServeDebug(*debugAddr)
		if err != nil {
			fatal(err)
		}
		defer dln.Close()
		log.Info("debug server up", "addr", dln.Addr().String())
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	httpSrv := &http.Server{Handler: f.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()
	log.Info("serving", "addr", ln.Addr().String(), "backends", len(urls))

	sigCtx, stop := signal.NotifyContext(context.Background(),
		syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	select {
	case <-sigCtx.Done():
		stop()
		log.Info("shutting down")
	case err := <-errc:
		fatal(err)
	}

	// The front holds no job state — shutdown is just: stop accepting,
	// let in-flight proxied requests finish briefly, stop the poller.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	httpSrv.Shutdown(ctx) //nolint:errcheck // in-flight synthesis waits belong to the backends
	f.Close()
	log.Info("stopped")
}

func parseLevel(s string) slog.Level {
	switch strings.ToLower(s) {
	case "debug":
		return slog.LevelDebug
	case "warn":
		return slog.LevelWarn
	case "error":
		return slog.LevelError
	default:
		return slog.LevelInfo
	}
}

func offIfZero(v int) int {
	if v == 0 {
		return -1
	}
	return v
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "janusfront:", err)
	os.Exit(1)
}
