// Command latfn prints switching-lattice functions and reproduces Table I
// of the paper.
//
// Usage:
//
//	latfn -m 3 -n 3          # products of f_3x3 and its dual
//	latfn -table [-max 8]    # Table I: product counts for 2..max
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/lattice-tools/janus"
)

func main() {
	var (
		m     = flag.Int("m", 3, "rows")
		n     = flag.Int("n", 3, "columns")
		table = flag.Bool("table", false, "print Table I (product counts)")
		max   = flag.Int("max", 8, "largest dimension for -table")
		dual  = flag.Bool("dual", false, "print only the dual products")
	)
	flag.Parse()

	if *table {
		fmt.Printf("Table I: products of f_mxn (top) and its dual (bottom), 2 <= m,n <= %d\n", *max)
		fmt.Printf("m/n ")
		for nn := 2; nn <= *max; nn++ {
			fmt.Printf("%12d", nn)
		}
		fmt.Println()
		for mm := 2; mm <= *max; mm++ {
			g := janus.Grid{M: mm, N: 1}
			fmt.Printf("%3d ", mm)
			for nn := 2; nn <= *max; nn++ {
				g.N = nn
				fmt.Printf("%12d", countPaths(g, false))
			}
			fmt.Println()
			fmt.Printf("    ")
			for nn := 2; nn <= *max; nn++ {
				g.N = nn
				fmt.Printf("%12d", countPaths(g, true))
			}
			fmt.Println()
		}
		return
	}

	g := janus.Grid{M: *m, N: *n}
	if g.Cells() > 64 {
		fmt.Fprintln(os.Stderr, "latfn: explicit products limited to 64 switches; use -table for counts")
		os.Exit(1)
	}
	if !*dual {
		f := janus.LatticeFunction(g)
		fmt.Printf("f_%s: %d products\n%s\n", g, len(f.Cubes), f)
	}
	d := janus.LatticeDual(g)
	fmt.Printf("dual of f_%s: %d products\n%s\n", g, len(d.Cubes), d)
}

func countPaths(g janus.Grid, dual bool) int64 {
	if dual {
		return g.CountDualPaths()
	}
	return g.CountPaths()
}
