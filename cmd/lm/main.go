// Command lm decides a single lattice mapping (LM) problem: can output o
// of a PLA be realized on an m×n switching lattice?
//
// Usage:
//
//	lm -m 3 -n 3 [-o 0] [-dimacs] [-primal|-dual] [-conflicts N] file.pla
//
// With -dimacs the SAT encoding is printed in DIMACS CNF format instead
// of being solved, for cross-checking against external solvers.
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/lattice-tools/janus"
	"github.com/lattice-tools/janus/internal/encode"
	"github.com/lattice-tools/janus/internal/lattice"
	"github.com/lattice-tools/janus/internal/minimize"
	"github.com/lattice-tools/janus/internal/obsv"
	"github.com/lattice-tools/janus/internal/sat"
)

func main() {
	var (
		m         = flag.Int("m", 3, "lattice rows")
		n         = flag.Int("n", 3, "lattice columns")
		outIdx    = flag.Int("o", 0, "PLA output index")
		dimacs    = flag.Bool("dimacs", false, "print the CNF in DIMACS format instead of solving")
		primal    = flag.Bool("primal", false, "force the primal (top-bottom) formulation")
		dualMode  = flag.Bool("dual", false, "force the dual (left-right) formulation")
		conflicts = flag.Int64("conflicts", 0, "SAT conflict budget (0 = unlimited)")
		tracePath = flag.String("trace", "", "write a JSONL span trace of the LM solve to this file")
	)
	flag.Parse()

	in := os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	p, err := janus.ParsePLA(in)
	if err != nil {
		fatal(err)
	}
	if *outIdx < 0 || *outIdx >= len(p.Covers) {
		fatal(fmt.Errorf("output index %d out of range", *outIdx))
	}
	isop, dual := minimize.AutoDual(p.Covers[*outIdx])
	g := lattice.Grid{M: *m, N: *n}

	opt := encode.Options{Limits: sat.Limits{MaxConflicts: *conflicts}}
	switch {
	case *primal:
		opt.Mode = encode.PrimalOnly
	case *dualMode:
		opt.Mode = encode.DualOnly
	}
	if *tracePath != "" {
		tf, err := os.Create(*tracePath)
		if err != nil {
			fatal(err)
		}
		tracer := obsv.NewTracer(tf)
		root := obsv.Start(tracer, nil, "SolveLM")
		opt.Span = root
		defer func() {
			root.End()
			if err := tracer.Err(); err != nil {
				fmt.Fprintln(os.Stderr, "lm: trace:", err)
			}
			if err := tf.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "lm: trace:", err)
			}
		}()
	}

	if *dimacs {
		b, usedDual, err := encode.BuildCNF(isop, dual, g, opt)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "c LM %s on %v, dual=%v, %d vars %d clauses\n",
			p.OutputNames[*outIdx], g, usedDual, b.NumVars(), b.NumClauses())
		if err := b.WriteDIMACS(os.Stdout); err != nil {
			fatal(err)
		}
		return
	}

	res, err := encode.SolveLM(isop, dual, g, opt)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%s on %v: %v (dual=%v, %d vars, %d clauses, %d conflicts)\n",
		p.OutputNames[*outIdx], g, res.Status, res.UsedDual,
		res.Vars, res.Clauses, res.SolverStat.Conflicts)
	if res.Assignment != nil {
		fmt.Println(res.Assignment.Format(p.InputNames))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lm:", err)
	os.Exit(1)
}
