// Command gosat is a standalone DIMACS CNF solver wrapping the CDCL
// engine this repository uses for lattice mapping. It exists to validate
// the solver against external instances and follows the SAT-competition
// output conventions (s/v lines, exit code 10 for SAT, 20 for UNSAT).
//
// Usage:
//
//	gosat [-conflicts N] [-timeout D] [-stats] [file.cnf]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/lattice-tools/janus/internal/sat"
)

func main() {
	var (
		conflicts = flag.Int64("conflicts", 0, "conflict budget (0 = unlimited)")
		timeout   = flag.Duration("timeout", 0, "time budget (0 = unlimited)")
		stats     = flag.Bool("stats", false, "print search statistics")
	)
	flag.Parse()

	in := os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "gosat:", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}
	s, err := sat.ParseDIMACS(in)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gosat:", err)
		os.Exit(1)
	}
	start := time.Now()
	st := s.Solve(sat.Limits{MaxConflicts: *conflicts, Timeout: *timeout})
	if *stats {
		sst := s.Stats()
		fmt.Printf("c vars=%d clauses=%d conflicts=%d decisions=%d propagations=%d restarts=%d time=%v\n",
			s.NumVars(), s.NumClauses(), sst.Conflicts, sst.Decisions,
			sst.Propagations, sst.Restarts, time.Since(start).Round(time.Millisecond))
	}
	switch st {
	case sat.Sat:
		fmt.Println("s SATISFIABLE")
		var sb strings.Builder
		sb.WriteString("v")
		for v := 0; v < s.NumVars(); v++ {
			if s.Model(v) {
				fmt.Fprintf(&sb, " %d", v+1)
			} else {
				fmt.Fprintf(&sb, " -%d", v+1)
			}
		}
		sb.WriteString(" 0")
		fmt.Println(sb.String())
		os.Exit(10)
	case sat.Unsat:
		fmt.Println("s UNSATISFIABLE")
		os.Exit(20)
	default:
		fmt.Println("s UNKNOWN")
	}
}
