// Command tableiii regenerates Table III of the paper: the
// straight-forward multi-function packing versus JANUS-MF on the bw,
// misex1 and squar5 blocks.
//
// Usage:
//
//	tableiii [-run regexp] [-conflicts N] [-timeout D]
package main

import (
	"flag"
	"fmt"
	"os"
	"regexp"

	"github.com/lattice-tools/janus"
	"github.com/lattice-tools/janus/internal/benchdata"
)

func main() {
	var (
		runRe     = flag.String("run", "", "only instances whose name matches this regexp")
		conflicts = flag.Int64("conflicts", 100000, "SAT conflict budget per LM call")
		timeout   = flag.Duration("timeout", 0, "SAT time budget per LM call")
		budget    = flag.Duration("budget", 0, "wall-clock budget per output synthesis (0 = unlimited)")
		tracePath = flag.String("trace", "", "write a JSONL span trace of every run to this file")
	)
	flag.Parse()

	var re *regexp.Regexp
	if *runRe != "" {
		var err error
		re, err = regexp.Compile(*runRe)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tableiii:", err)
			os.Exit(1)
		}
	}
	opt := janus.Options{Budget: *budget}
	opt.Encode.Limits = janus.SATLimits{MaxConflicts: *conflicts, Timeout: *timeout}
	if *tracePath != "" {
		tf, err := os.Create(*tracePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tableiii:", err)
			os.Exit(1)
		}
		tracer := janus.NewTracer(tf)
		opt.Tracer = tracer
		defer func() {
			if err := tracer.Err(); err != nil {
				fmt.Fprintln(os.Stderr, "tableiii: trace:", err)
			}
			if err := tf.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "tableiii: trace:", err)
			}
		}()
	}

	fmt.Printf("%-8s %4s | %-22s %-22s | %-14s %-14s\n",
		"instance", "#out", "measured SF (sol size s)", "measured MF (sol size s)",
		"paper SF", "paper MF")
	for _, mi := range benchdata.TableIII() {
		if re != nil && !re.MatchString(mi.Name) {
			continue
		}
		outs := mi.Outputs()
		sf, err := janus.SynthesizeMulti(outs, opt, false)
		if err != nil {
			fmt.Printf("%-8s SF error: %v\n", mi.Name, err)
			continue
		}
		mf, err := janus.SynthesizeMulti(outs, opt, true)
		if err != nil {
			fmt.Printf("%-8s MF error: %v\n", mi.Name, err)
			continue
		}
		fmt.Printf("%-8s %4d | %-7s %5d %6.1fs | %-7s %5d %6.1fs | %-6s %5d | %-6s %5d\n",
			mi.Name, mi.NumOut,
			sf.Sol(), sf.Lattice.Size(), sf.Elapsed.Seconds(),
			mf.Sol(), mf.Lattice.Size(), mf.Elapsed.Seconds(),
			mi.PaperSF, mi.PaperSFSize, mi.PaperMF, mi.PaperMFSize)
		if mf.Lattice.Size() > sf.Lattice.Size() {
			fmt.Printf("%-8s WARNING: MF worse than straight-forward\n", mi.Name)
		}
	}
}
