// Command plamin is a two-level logic minimizer for PLA files — the role
// espresso plays in the paper's flow. Each output is brought into
// irredundant prime (ISOP) form with a minimized product count; with
// -exact the minimum-cardinality cover is computed (small functions).
//
// Usage:
//
//	plamin [-exact] [-dual] [-stats] [file.pla]
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/lattice-tools/janus"
	"github.com/lattice-tools/janus/internal/minimize"
	"github.com/lattice-tools/janus/internal/pla"
)

func main() {
	var (
		exact = flag.Bool("exact", false, "exact minimum product count (small functions only)")
		dual  = flag.Bool("dual", false, "also print each output's dual ISOP as comments")
		stats = flag.Bool("stats", false, "print per-output statistics to stderr")
	)
	flag.Parse()

	in := os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	p, err := janus.ParsePLA(in)
	if err != nil {
		fatal(err)
	}

	out := &pla.File{
		Inputs:      p.Inputs,
		Outputs:     p.Outputs,
		InputNames:  p.InputNames,
		OutputNames: p.OutputNames,
		Covers:      make([]janus.Cover, len(p.Covers)),
	}
	for o, cov := range p.Covers {
		var m janus.Cover
		if *exact {
			m = minimize.Exact(cov)
		} else {
			m = minimize.Auto(cov)
		}
		out.Covers[o] = m
		if *stats {
			fmt.Fprintf(os.Stderr, "%s: %d -> %d products, degree %d, %d literals\n",
				p.OutputNames[o], len(cov.Cubes), len(m.Cubes), m.Degree(), m.NumLiterals())
		}
		if *dual {
			fmt.Printf("# dual(%s) = %s\n", p.OutputNames[o],
				minimize.Auto(m.Dual()).Format(p.InputNames))
		}
	}
	if err := janus.WritePLA(os.Stdout, out); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "plamin:", err)
	os.Exit(1)
}
