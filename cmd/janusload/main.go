// Command janusload generates synthesis load against a running janusd,
// measuring throughput, latency percentiles, and where answers came from
// (fresh synthesis, coalesced, memory or disk cache).
//
// Usage:
//
//	janusload [-addr http://localhost:7151] [-targets URL,URL,...]
//	          [-n 64] [-c 8] [-distinct 4] [-inputs 4] [-seed 1]
//	          [-timeout-ms 60000] [-stream] [-json]
//	          [-tenant NAME] [-tenants A,B,...] [-batch]
//
// -targets spreads the run round-robin across several endpoints (e.g.
// a janusfront plus direct backends, or several fronts); it overrides
// -addr. Answers a daemon filled from a peer's cache are counted in the
// report's cached_peer column.
//
// -tenant stamps every request with one tenant name; -tenants cycles
// requests across several, reporting per-tenant completion counts plus
// the daemon's scheduler fairness block — including each tenant's SLO
// burn rates when the daemon tracks per-tenant objectives — the tool
// for eyeballing (or CI asserting) that completed work tracks the
// configured weights and that no tenant is quietly burning its budget.
//
// -batch measures the JANUS-MF batching win: it first submits the
// -distinct functions independently (summing their lm_solved), then the
// same functions as one POST /v1/synthesize/batch, and reports both
// counts in a batch_tenancy block. Independent-first ordering matters —
// a finished batch unpacks per-function cache entries that would
// otherwise serve the independent phase for free.
//
// The workload cycles -n requests through -distinct deterministic random
// functions, so the expected pattern under a warm daemon is a handful of
// syntheses and a long tail of cache hits — which is exactly what the
// cached/coalesced counters in the report make visible. 429 answers are
// retried after the server's Retry-After.
//
// -stream submits every request async and follows its progress stream
// (/v1/jobs/{id}/events via the ?wait= long-poll), measuring the anytime
// latency — submission to first verified mapping — whose p50/p99 land in
// the report's "anytime" block alongside the end-to-end percentiles.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/lattice-tools/janus"
)

type report struct {
	Requests  int     `json:"requests"`
	Errors    int     `json:"errors"`
	Retries   int     `json:"retries_429"`
	ElapsedMS int64   `json:"elapsed_ms"`
	RPS       float64 `json:"rps"`
	P50MS     float64 `json:"p50_ms"`
	P99MS     float64 `json:"p99_ms"`
	Fresh     int     `json:"fresh"`
	Coalesced int     `json:"coalesced"`
	MemHits   int     `json:"cached_mem"`
	DiskHits  int     `json:"cached_disk"`
	PeerHits  int     `json:"cached_peer"`
	// ShedIDs / FailedIDs are the server-assigned request ids of 429
	// answers and failed requests — the handles to grep the daemon's logs
	// and /debug/flightrecorder with.
	ShedIDs   []string `json:"shed_request_ids,omitempty"`
	FailedIDs []string `json:"failed_request_ids,omitempty"`
	// SLOs echoes the daemon's /v1/stats burn-rate block after the run.
	SLOs []janus.SLOSnapshot `json:"slos,omitempty"`
	// Anytime is the -stream measurement block (nil without -stream).
	Anytime *anytimeReport `json:"anytime,omitempty"`
	// CompletedByTenant counts this run's successful answers per tenant
	// (client-side view; only with -tenants).
	CompletedByTenant map[string]int `json:"completed_by_tenant,omitempty"`
	// Scheduler echoes the daemon's fairness block after the run (only
	// with -tenant/-tenants).
	Scheduler *janus.SchedulerStats `json:"scheduler,omitempty"`
	// BatchTenancy is the -batch measurement block.
	BatchTenancy *batchReport `json:"batch_tenancy,omitempty"`
}

// batchReport compares one batch synthesis against the same functions
// submitted independently. The batching win the paper's multi-function
// method promises shows as batch_lm_solved < independent_lm_solved.
type batchReport struct {
	Functions           int    `json:"functions"`
	IndependentLMSolved int    `json:"independent_lm_solved"`
	BatchLMSolved       int    `json:"batch_lm_solved"`
	IndependentSize     int    `json:"independent_size"`
	BatchSol            string `json:"batch_sol"`
	BatchSize           int    `json:"batch_size"`
	Reduced             bool   `json:"reduced"`
}

// anytimeReport measures the anytime path: how fast jobs held their
// first verified mapping, how chatty the event streams were, and how
// many answers degraded to partial.
type anytimeReport struct {
	Streamed          int     `json:"streamed"`
	FirstMappingP50MS float64 `json:"first_mapping_p50_ms"`
	FirstMappingP99MS float64 `json:"first_mapping_p99_ms"`
	EventsTotal       int     `json:"events_total"`
	Partials          int     `json:"partials"`
}

func main() {
	var (
		addr      = flag.String("addr", "http://localhost:7151", "janusd base URL")
		targets   = flag.String("targets", "", "comma-separated base URLs to spread load across round-robin (overrides -addr)")
		n         = flag.Int("n", 64, "total requests")
		c         = flag.Int("c", 8, "concurrent clients")
		distinct  = flag.Int("distinct", 4, "distinct functions cycled through")
		inputs    = flag.Int("inputs", 4, "input variables per generated function")
		seed      = flag.Int64("seed", 1, "workload generator seed")
		timeoutMS = flag.Int64("timeout-ms", 60_000, "per-request budget")
		stream    = flag.Bool("stream", false, "submit async and follow each job's progress stream, measuring time to first mapping")
		jsonOut   = flag.Bool("json", false, "emit the report as JSON")
		tenant    = flag.String("tenant", "", "stamp every request with this tenant name (X-Janus-Tenant)")
		tenantsF  = flag.String("tenants", "", "comma-separated tenant names cycled across requests (overrides -tenant)")
		batch     = flag.Bool("batch", false, "measure the batching win: the -distinct functions independently, then as one batch")
	)
	flag.Parse()
	if *distinct < 1 {
		*distinct = 1
	}

	plas := make([]string, *distinct)
	for i := range plas {
		plas[i] = randomPLA(rand.New(rand.NewSource(*seed+int64(i))), *inputs)
	}

	// One client per target, all sharing the process keep-alive
	// transport; request i goes to clients[i % len].
	var clients []*janus.Client
	for _, t := range strings.Split(*targets, ",") {
		if t = strings.TrimSpace(t); t != "" {
			clients = append(clients, janus.NewClient(t))
		}
	}
	if len(clients) == 0 {
		clients = []*janus.Client{janus.NewClient(*addr)}
	}

	if *batch {
		runBatchMode(clients[0], plas, *timeoutMS, *jsonOut)
		return
	}

	var tenantNames []string
	for _, t := range strings.Split(*tenantsF, ",") {
		if t = strings.TrimSpace(t); t != "" {
			tenantNames = append(tenantNames, t)
		}
	}
	if len(tenantNames) == 0 && *tenant != "" {
		tenantNames = []string{*tenant}
	}

	var (
		mu        sync.Mutex
		latencies []time.Duration
		firstMaps []time.Duration
		anytime   anytimeReport
		rep       report
		next      atomic.Int64
	)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < *c; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= *n {
					return
				}
				client := clients[i%len(clients)]
				tname := ""
				if len(tenantNames) > 0 {
					// A shallow copy per request shares the keep-alive
					// transport; only the tenant header differs.
					tname = tenantNames[i%len(tenantNames)]
					cc := *client
					cc.Tenant = tname
					client = &cc
				}
				req := janus.ServiceRequest{PLA: plas[i%len(plas)], TimeoutMS: *timeoutMS}
				req.Async = *stream
				t0 := time.Now()
				resp, retries, shedIDs, err := submitWithRetry(client, req)
				var watch *watchResult
				if err == nil && *stream {
					resp, watch, err = followJob(client, resp, t0)
				}
				lat := time.Since(t0)
				mu.Lock()
				if watch != nil {
					anytime.Streamed++
					anytime.EventsTotal += watch.events
					if watch.partial {
						anytime.Partials++
					}
					if watch.firstMapping > 0 {
						firstMaps = append(firstMaps, watch.firstMapping)
					}
				}
				rep.Retries += retries
				rep.ShedIDs = append(rep.ShedIDs, shedIDs...)
				if err != nil || resp.Status != "done" {
					rep.Errors++
					if id := requestID(resp, err); id != "" {
						rep.FailedIDs = append(rep.FailedIDs, id)
					}
				} else {
					latencies = append(latencies, lat)
					if tname != "" {
						if rep.CompletedByTenant == nil {
							rep.CompletedByTenant = make(map[string]int)
						}
						rep.CompletedByTenant[tname]++
					}
					switch resp.Cached {
					case "mem":
						rep.MemHits++
					case "disk":
						rep.DiskHits++
					case "peer":
						rep.PeerHits++
					case "coalesced":
						rep.Coalesced++
					default:
						rep.Fresh++
					}
				}
				mu.Unlock()
				if err != nil {
					fmt.Fprintln(os.Stderr, "janusload:", err)
				}
			}
		}()
	}
	wg.Wait()

	elapsed := time.Since(start)
	rep.Requests = *n
	rep.ElapsedMS = elapsed.Milliseconds()
	if elapsed > 0 {
		rep.RPS = float64(*n-rep.Errors) / elapsed.Seconds()
	}
	rep.P50MS = percentile(latencies, 0.50)
	rep.P99MS = percentile(latencies, 0.99)
	if *stream {
		anytime.FirstMappingP50MS = percentile(firstMaps, 0.50)
		anytime.FirstMappingP99MS = percentile(firstMaps, 0.99)
		rep.Anytime = &anytime
	}

	// The daemon's view of the run: SLO burn rates from /v1/stats.
	// Older daemons without the endpoint just leave the block empty.
	// (With -targets this is the first target's view — a front merges
	// its backends, so that is usually the full picture.)
	if st, err := clients[0].ServerStats(context.Background()); err == nil {
		rep.SLOs = st.SLOs
		if len(tenantNames) > 0 {
			rep.Scheduler = st.Scheduler
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintln(os.Stderr, "janusload:", err)
			os.Exit(1)
		}
	} else {
		fmt.Printf("%d requests in %v (%.1f req/s), %d errors, %d retries\n",
			rep.Requests, elapsed.Round(time.Millisecond), rep.RPS, rep.Errors, rep.Retries)
		fmt.Printf("latency p50=%.1fms p99=%.1fms\n", rep.P50MS, rep.P99MS)
		fmt.Printf("answers: %d fresh, %d coalesced, %d mem-cached, %d disk-cached, %d peer-filled\n",
			rep.Fresh, rep.Coalesced, rep.MemHits, rep.DiskHits, rep.PeerHits)
		if rep.Anytime != nil {
			fmt.Printf("anytime: %d streamed, first mapping p50=%.1fms p99=%.1fms, %d events, %d partial\n",
				rep.Anytime.Streamed, rep.Anytime.FirstMappingP50MS,
				rep.Anytime.FirstMappingP99MS, rep.Anytime.EventsTotal, rep.Anytime.Partials)
		}
		if len(rep.CompletedByTenant) > 0 {
			names := make([]string, 0, len(rep.CompletedByTenant))
			for name := range rep.CompletedByTenant {
				names = append(names, name)
			}
			sort.Strings(names)
			for _, name := range names {
				fmt.Printf("tenant %s: %d completed\n", name, rep.CompletedByTenant[name])
			}
		}
		if rep.Scheduler != nil {
			for _, ts := range rep.Scheduler.Tenants {
				fmt.Printf("scheduler %s: weight=%d admitted=%d dispatched=%d completed=%d shed=%d\n",
					ts.Name, ts.Weight, ts.Admitted, ts.Dispatched, ts.Completed, ts.Shed)
				for _, slo := range ts.SLOs {
					fmt.Printf("  tenant %s slo %s: %d/%d good (%.0fms objective), burn 5m=%.2f 1h=%.2f\n",
						ts.Name, slo.Name, slo.Good, slo.Total,
						slo.ObjectiveMS, slo.BurnRate5m, slo.BurnRate1h)
				}
			}
		}
		for _, slo := range rep.SLOs {
			fmt.Printf("slo %s: %d/%d good (target %.0f%%, %.0fms objective), burn 5m=%.2f 1h=%.2f\n",
				slo.Name, slo.Good, slo.Total, slo.Target*100,
				slo.ObjectiveMS, slo.BurnRate5m, slo.BurnRate1h)
		}
		if len(rep.ShedIDs) > 0 {
			fmt.Printf("shed request ids: %v\n", rep.ShedIDs)
		}
		if len(rep.FailedIDs) > 0 {
			fmt.Printf("failed request ids: %v\n", rep.FailedIDs)
		}
	}
	if rep.Errors > 0 {
		os.Exit(1)
	}
}

// runBatchMode measures the batching win on a (preferably fresh) daemon:
// every function independently first, then the same set as one batch.
// Ordering matters: a finished batch unpacks its converged per-output
// answers into the single-function cache, so batch-first would hand the
// independent phase free cache hits and wreck the comparison. Solve
// counts are deterministic for a given function set, so the sequential
// comparison is fair.
func runBatchMode(c *janus.Client, plas []string, timeoutMS int64, jsonOut bool) {
	br := &batchReport{Functions: len(plas)}
	for i, p := range plas {
		resp, _, _, err := submitWithRetry(c, janus.ServiceRequest{PLA: p, TimeoutMS: timeoutMS})
		if err != nil {
			fmt.Fprintf(os.Stderr, "janusload: independent function %d: %v\n", i, err)
			os.Exit(1)
		}
		if resp.Status != "done" || resp.Result == nil {
			fmt.Fprintf(os.Stderr, "janusload: independent function %d: status %s: %s\n", i, resp.Status, resp.Error)
			os.Exit(1)
		}
		br.IndependentLMSolved += resp.Result.LMSolved
		br.IndependentSize += resp.Result.Size
	}

	fns := make([]janus.ServiceBatchFunction, len(plas))
	for i, p := range plas {
		fns[i] = janus.ServiceBatchFunction{PLA: p}
	}
	resp, err := c.SynthesizeBatch(context.Background(),
		janus.ServiceBatchRequest{Functions: fns, TimeoutMS: timeoutMS})
	if err != nil {
		fmt.Fprintln(os.Stderr, "janusload: batch:", err)
		os.Exit(1)
	}
	if resp.Status != "done" || resp.Batch == nil {
		fmt.Fprintf(os.Stderr, "janusload: batch: status %s: %s\n", resp.Status, resp.Error)
		os.Exit(1)
	}
	br.BatchLMSolved = resp.Batch.LMSolved
	br.BatchSol = resp.Batch.Sol
	br.BatchSize = resp.Batch.Size
	br.Reduced = resp.Batch.Reduced

	rep := report{Requests: len(plas) + 1, BatchTenancy: br}
	if jsonOut {
		if err := json.NewEncoder(os.Stdout).Encode(rep); err != nil {
			fmt.Fprintln(os.Stderr, "janusload:", err)
			os.Exit(1)
		}
		return
	}
	fmt.Printf("batch: %d functions, independent lm_solved=%d (total size %d), batch lm_solved=%d (sol %s, size %d, reduced=%v)\n",
		br.Functions, br.IndependentLMSolved, br.IndependentSize,
		br.BatchLMSolved, br.BatchSol, br.BatchSize, br.Reduced)
}

// submitWithRetry retries backpressure answers (429) with the server's
// Retry-After, a bounded number of times, collecting the request id of
// every shed attempt.
func submitWithRetry(c *janus.Client, req janus.ServiceRequest) (*janus.ServiceResponse, int, []string, error) {
	retries := 0
	var shedIDs []string
	for {
		resp, err := c.Synthesize(context.Background(), req)
		if err == nil {
			return resp, retries, shedIDs, nil
		}
		var ae *janus.APIError
		if !errors.As(err, &ae) || ae.Code != 429 || retries >= 50 {
			return nil, retries, shedIDs, err
		}
		if ae.RequestID != "" {
			shedIDs = append(shedIDs, ae.RequestID)
		}
		retries++
		wait := ae.RetryAfter
		if wait <= 0 {
			wait = 200 * time.Millisecond
		}
		time.Sleep(wait)
	}
}

// watchResult is one followed job's anytime measurement.
type watchResult struct {
	firstMapping time.Duration // submission to first verified incumbent event
	events       int
	partial      bool
}

// followJob drains an async job's progress stream via the ?wait=
// long-poll, then returns the final job state. An answer served straight
// from cache (no job to follow) counts its response latency as the
// first-mapping time — the caller held a verified mapping that fast.
func followJob(c *janus.Client, resp *janus.ServiceResponse, t0 time.Time) (*janus.ServiceResponse, *watchResult, error) {
	w := &watchResult{}
	if resp.Status == "done" || resp.JobID == "" {
		w.firstMapping = time.Since(t0)
		if resp.Result != nil {
			w.partial = resp.Result.Partial
		}
		return resp, w, nil
	}
	var after uint64
	for {
		page, err := c.JobEvents(context.Background(), resp.JobID, after, 5*time.Second)
		if err != nil {
			return resp, w, err
		}
		w.events += len(page.Events)
		for _, e := range page.Events {
			if e.Kind == "incumbent" && !e.Sub && w.firstMapping == 0 {
				w.firstMapping = time.Since(t0)
			}
			if e.Kind == "done" {
				w.partial = e.Partial
			}
		}
		after = page.Next
		if page.Terminal {
			break
		}
	}
	final, err := c.Job(context.Background(), resp.JobID)
	if err != nil {
		return resp, w, err
	}
	return final, w, nil
}

// requestID digs the server-assigned id out of a failed exchange.
func requestID(resp *janus.ServiceResponse, err error) string {
	if resp != nil && resp.RequestID != "" {
		return resp.RequestID
	}
	var ae *janus.APIError
	if errors.As(err, &ae) {
		return ae.RequestID
	}
	return ""
}

// randomPLA builds a small deterministic SOP over the given input count.
func randomPLA(rng *rand.Rand, inputs int) string {
	cubes := 2 + rng.Intn(3)
	out := fmt.Sprintf(".i %d\n.o 1\n", inputs)
	for i := 0; i < cubes; i++ {
		row := make([]byte, inputs)
		cares := 0
		for j := range row {
			switch rng.Intn(3) {
			case 0:
				row[j] = '0'
				cares++
			case 1:
				row[j] = '1'
				cares++
			default:
				row[j] = '-'
			}
		}
		if cares == 0 {
			row[rng.Intn(inputs)] = '1'
		}
		out += string(row) + " 1\n"
	}
	return out + ".e\n"
}

// percentile returns the q-quantile of the latencies in milliseconds.
func percentile(lats []time.Duration, q float64) float64 {
	if len(lats) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), lats...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	i := int(q * float64(len(sorted)-1))
	return float64(sorted[i]) / float64(time.Millisecond)
}
