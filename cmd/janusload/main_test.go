package main

import (
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"github.com/lattice-tools/janus"
)

// TestSubmitWithRetry covers the load generator's backpressure path
// against malformed Retry-After headers: a 429 whose header the client
// cannot parse must fall back to the 200ms pacing default instead of
// hot-looping (the old client mis-parsed "2m" as 2ms) — and the retry
// count must reflect every 429 seen before the answer.
func TestSubmitWithRetry(t *testing.T) {
	var hits atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch hits.Add(1) {
		case 1:
			w.Header().Set("Retry-After", "2m") // malformed per RFC 7231
			http.Error(w, `{"error":"queue full"}`, http.StatusTooManyRequests)
		case 2:
			// No header at all: also the fallback path.
			http.Error(w, `{"error":"queue full"}`, http.StatusTooManyRequests)
		default:
			w.Header().Set("Content-Type", "application/json")
			w.Write([]byte(`{"status":"done","result":{"m":4,"n":2,"size":8}}`)) //nolint:errcheck
		}
	}))
	defer ts.Close()

	start := time.Now()
	resp, retries, _, err := submitWithRetry(janus.NewClient(ts.URL),
		janus.ServiceRequest{PLA: ".i 1\n.o 1\n1 1\n.e\n"})
	if err != nil {
		t.Fatal(err)
	}
	if retries != 2 {
		t.Fatalf("retries = %d, want 2", retries)
	}
	if resp.Status != "done" || resp.Result == nil || resp.Result.Size != 8 {
		t.Fatalf("unexpected response: %+v", resp)
	}
	// Two fallback sleeps of 200ms each: the malformed header must not
	// collapse the pacing to milliseconds.
	if elapsed := time.Since(start); elapsed < 400*time.Millisecond {
		t.Fatalf("retry pacing too fast (%v): malformed Retry-After not handled", elapsed)
	}
}

// TestSubmitWithRetryGivesUp: non-429 errors surface immediately.
func TestSubmitWithRetryGivesUp(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"draining"}`, http.StatusServiceUnavailable)
	}))
	defer ts.Close()
	_, retries, _, err := submitWithRetry(janus.NewClient(ts.URL),
		janus.ServiceRequest{PLA: ".i 1\n.o 1\n1 1\n.e\n"})
	if err == nil || retries != 0 {
		t.Fatalf("err = %v retries = %d, want immediate failure", err, retries)
	}
}
