// Command tracesum aggregates a JSONL span trace produced by the -trace
// flag of janus/tableii/tableiii/lm — or fetched from janusd's
// GET /v1/jobs/{id}/trace — into per-phase and per-candidate summary
// tables. Service traces (even several concatenated) additionally get a
// per-request outlier table keyed by the Job root spans: request id,
// outcome, queue wait, and total duration, slowest first.
//
// Stitched fleet traces (the front's GET /v1/jobs/{id}/trace, spans from
// more than one process) additionally get a per-hop table: spans and
// wall-clock per process, plus the handoff gap where a span's parent
// lives in another process. Hop durations come from each process's own
// monotonic dur_ns, never from cross-process timestamp arithmetic;
// handoff gaps are the one cross-clock number, so negative gaps (clock
// skew between hosts) are clamped to zero and counted in the skew
// column instead of poisoning the mean.
//
// Usage:
//
//	tracesum [-validate] [-top N] [-by-hop] [trace.jsonl]
//
// Reads standard input when no file is given. The trace is always checked
// against the span schema first; with -validate the command stops after
// the check and prints the span count (non-zero exit on a bad trace),
// which is what the CI trace job runs. -by-hop forces the per-hop table
// even for single-process traces.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"github.com/lattice-tools/janus/internal/obsv"
	"github.com/lattice-tools/janus/internal/report"
)

func main() {
	validate := flag.Bool("validate", false, "only validate the trace against the span schema")
	top := flag.Int("top", 10, "rows in the per-request outlier table (service traces)")
	byHopFlag := flag.Bool("by-hop", false, "force the per-hop table (automatic for multi-process traces)")
	flag.Parse()

	in := os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	recs, err := obsv.ReadTrace(in)
	if err != nil {
		fatal(err)
	}
	if err := obsv.ValidateRecords(recs); err != nil {
		fatal(err)
	}
	if *validate {
		fmt.Printf("trace OK: %d spans\n", len(recs))
		return
	}

	if byHop(recs, *byHopFlag) {
		fmt.Println()
	}
	if byRequest(recs, *top) {
		fmt.Println()
	}
	byName(recs)
	fmt.Println()
	byCandidate(recs)
}

// byHop prints one row per process in a stitched fleet trace: span
// count, wall-clock accumulated there (from each process's own
// monotonic dur_ns), and the cross-process handoff — for every span
// whose parent lives in another hop, the gap between the parent's start
// and the span's start on their respective clocks. That difference is
// the only cross-clock arithmetic in the tool: when skew makes it
// negative the gap counts as zero and lands in the skewed column.
// Prints nothing (returns false) for single-process traces unless
// forced.
func byHop(recs []obsv.Record, force bool) bool {
	procOf := func(r obsv.Record) string {
		if r.Proc == "" {
			return "local"
		}
		return r.Proc
	}
	type agg struct {
		spans     int64
		durNS     int64
		handoffs  int64
		handoffNS int64
		skewed    int64
	}
	byID := make(map[uint64]obsv.Record, len(recs))
	for _, r := range recs {
		byID[r.ID] = r
	}
	hops := map[string]*agg{}
	var order []string
	for _, r := range recs {
		p := procOf(r)
		a := hops[p]
		if a == nil {
			a = &agg{}
			hops[p] = a
			order = append(order, p)
		}
		a.spans++
		a.durNS += r.DurNS
		if parent, ok := byID[r.Parent]; ok && procOf(parent) != p {
			a.handoffs++
			if gap := r.Start.Sub(parent.Start); gap > 0 {
				a.handoffNS += int64(gap)
			} else {
				a.skewed++
			}
		}
	}
	if len(hops) < 2 && !force {
		return false
	}
	sort.Strings(order)
	t := report.NewTable("hop", "spans", "total", "handoffs", "handoff mean", "skewed")
	for _, p := range order {
		a := hops[p]
		mean := "-"
		if n := a.handoffs - a.skewed; n > 0 {
			mean = dur(a.handoffNS / n)
		}
		t.Add(p, fmt.Sprint(a.spans), dur(a.durNS),
			fmt.Sprint(a.handoffs), mean, fmt.Sprint(a.skewed))
	}
	fmt.Print(t.String())
	return true
}

// byRequest prints one row per Job root span — service traces carry one
// per request — slowest first, capped at top rows. Returns false when
// the trace has no Job spans (an engine-side trace).
func byRequest(recs []obsv.Record, top int) bool {
	var jobs []obsv.Record
	for _, r := range recs {
		if r.Span == "Job" {
			jobs = append(jobs, r)
		}
	}
	if len(jobs) == 0 {
		return false
	}
	sort.Slice(jobs, func(i, j int) bool { return jobs[i].DurNS > jobs[j].DurNS })
	if top > 0 && len(jobs) > top {
		jobs = jobs[:top]
	}
	attr := func(r obsv.Record, key string) string {
		if v, ok := r.Attrs[key].(string); ok {
			return v
		}
		return "-"
	}
	t := report.NewTable("request", "job", "outcome", "queue wait", "total")
	for _, j := range jobs {
		t.Add(attr(j, "request_id"), attr(j, "job_id"), attr(j, "outcome"),
			dur(attrInt(j, "queue_wait_ns")), dur(j.DurNS))
	}
	fmt.Print(t.String())
	return true
}

// byName prints one row per span name: how often the pipeline entered that
// phase and how much wall-clock it accumulated there.
func byName(recs []obsv.Record) {
	type agg struct {
		n     int64
		durNS int64
	}
	names := map[string]*agg{}
	for _, r := range recs {
		a := names[r.Span]
		if a == nil {
			a = &agg{}
			names[r.Span] = a
		}
		a.n++
		a.durNS += r.DurNS
	}
	order := make([]string, 0, len(names))
	for n := range names {
		order = append(order, n)
	}
	sort.Slice(order, func(i, j int) bool {
		return names[order[i]].durNS > names[order[j]].durNS
	})

	t := report.NewTable("span", "count", "total", "mean")
	for _, n := range order {
		a := names[n]
		t.Add(n, fmt.Sprint(a.n),
			dur(a.durNS), dur(a.durNS/a.n))
	}
	fmt.Print(t.String())
}

// byCandidate prints one row per (grid, orientation, engine) LM attempt
// group: outcomes, CEGAR iterations, clause volume, and the SAT conflicts
// its SatSolve descendants report.
func byCandidate(recs []obsv.Record) {
	byID := make(map[uint64]obsv.Record, len(recs))
	for _, r := range recs {
		byID[r.ID] = r
	}
	// candOf walks ancestors to the enclosing Candidate span, if any.
	candOf := func(r obsv.Record) (obsv.Record, bool) {
		for p := r.Parent; p != 0; {
			pr, ok := byID[p]
			if !ok {
				return obsv.Record{}, false
			}
			if pr.Span == "Candidate" {
				return pr, true
			}
			p = pr.Parent
		}
		return obsv.Record{}, false
	}

	type agg struct {
		key       string
		n         int64
		sat       int64
		unsat     int64
		other     int64
		iters     int64
		clauses   int64
		conflicts int64
		durNS     int64
	}
	groups := map[string]*agg{}
	group := func(r obsv.Record) *agg {
		key := fmt.Sprintf("%v %v %v",
			r.Attrs["grid"], r.Attrs["orient"], r.Attrs["engine"])
		a := groups[key]
		if a == nil {
			a = &agg{key: key}
			groups[key] = a
		}
		return a
	}
	for _, r := range recs {
		switch r.Span {
		case "Candidate":
			a := group(r)
			a.n++
			a.durNS += r.DurNS
			a.iters += attrInt(r, "cegar_iters")
			a.clauses += attrInt(r, "clauses_added")
			switch r.Attrs["status"] {
			case "SAT":
				a.sat++
			case "UNSAT":
				a.unsat++
			default:
				a.other++
			}
		case "SatSolve":
			if cand, ok := candOf(r); ok {
				group(cand).conflicts += attrInt(r, "conflicts")
			}
		}
	}
	if len(groups) == 0 {
		fmt.Println("no Candidate spans in trace")
		return
	}
	order := make([]*agg, 0, len(groups))
	for _, a := range groups {
		order = append(order, a)
	}
	sort.Slice(order, func(i, j int) bool { return order[i].durNS > order[j].durNS })

	t := report.NewTable("candidate", "n", "sat", "unsat", "?", "iters", "clauses", "conflicts", "total")
	for _, a := range order {
		t.Add(a.key, fmt.Sprint(a.n), fmt.Sprint(a.sat), fmt.Sprint(a.unsat),
			fmt.Sprint(a.other), fmt.Sprint(a.iters),
			report.Count(a.clauses), report.Count(a.conflicts), dur(a.durNS))
	}
	fmt.Print(t.String())
}

// attrInt reads a numeric attribute; JSON decoding hands ints back as
// float64.
func attrInt(r obsv.Record, key string) int64 {
	switch v := r.Attrs[key].(type) {
	case float64:
		return int64(v)
	case int64:
		return v
	}
	return 0
}

func dur(ns int64) string {
	return time.Duration(ns).Round(10 * time.Microsecond).String()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracesum:", err)
	os.Exit(1)
}
