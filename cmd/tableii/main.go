// Command tableii regenerates Table II of the paper: per-instance lower
// bound, old and new upper bounds, and the solutions of the exact [6],
// approximate [6], heuristic [11] baselines and JANUS, side by side with
// the values the paper reports.
//
// Usage:
//
//	tableii [-run regexp] [-methods janus,exact,approx,heur] \
//	        [-conflicts N] [-timeout D] [-cegar] [-engine MODE] [-progress]
//
// The original MCNC instances are replaced by deterministic synthetic
// stand-ins with the same (#in, #pi, δ) profiles; see DESIGN.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"regexp"
	"strings"
	"time"

	"github.com/lattice-tools/janus"
	"github.com/lattice-tools/janus/internal/benchdata"
	"github.com/lattice-tools/janus/internal/bounds"
	"github.com/lattice-tools/janus/internal/minimize"
	"github.com/lattice-tools/janus/internal/report"
)

func main() {
	var (
		runRe     = flag.String("run", "", "only instances whose name matches this regexp")
		methods   = flag.String("methods", "janus", "comma list: janus,exact,approx,heur,decomp")
		conflicts = flag.Int64("conflicts", 200000, "SAT conflict budget per LM call (0 = unlimited)")
		timeout   = flag.Duration("timeout", 0, "SAT time budget per LM call")
		workers   = flag.Int("workers", 1, "parallel LM solves per search midpoint")
		budget    = flag.Duration("budget", 0, "wall-clock budget per instance for JANUS (0 = unlimited)")
		cegar     = flag.Bool("cegar", false, "use the CEGAR LM engine for JANUS")
		engine    = flag.String("engine", "auto", "LM solver strategy for JANUS: auto, shared, or fresh")
		shared    = flag.Bool("shared", false, "deprecated: alias for -engine shared (implies -cegar)")
		tracePath = flag.String("trace", "", "write a JSONL span trace of every JANUS run to this file")
		progress  = flag.Bool("progress", false, "print live progress events of every JANUS run to stderr")
		debugAddr = flag.String("debug-addr", "", "serve /metrics and /debug/pprof on this address")
	)
	flag.Parse()

	var tracer *janus.Tracer
	if *debugAddr != "" {
		ln, err := janus.ServeDebug(*debugAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tableii:", err)
			os.Exit(1)
		}
		defer ln.Close()
		fmt.Fprintf(os.Stderr, "tableii: debug server on http://%s/metrics\n", ln.Addr())
	}
	if *tracePath != "" {
		tf, err := os.Create(*tracePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tableii:", err)
			os.Exit(1)
		}
		tracer = janus.NewTracer(tf)
		defer func() {
			if err := tracer.Err(); err != nil {
				fmt.Fprintln(os.Stderr, "tableii: trace:", err)
			}
			if err := tf.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "tableii: trace:", err)
			}
		}()
	}

	var re *regexp.Regexp
	if *runRe != "" {
		var err error
		re, err = regexp.Compile(*runRe)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tableii:", err)
			os.Exit(1)
		}
	}
	want := map[string]bool{}
	for _, m := range strings.Split(*methods, ",") {
		want[strings.TrimSpace(m)] = true
	}
	lims := janus.SATLimits{MaxConflicts: *conflicts, Timeout: *timeout}
	sel, err := janus.ParseEngineSelect(*engine)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tableii:", err)
		os.Exit(1)
	}
	if *shared {
		sel = janus.EngineShared
	}

	fmt.Printf("%-10s %3s %3s %2s | %4s %4s %4s | %-28s | %s\n",
		"instance", "in", "pi", "d", "lb", "oub", "nub", "measured (method sol sec)", "paper (lb oub nub | sols)")
	var sumSize, sumPaper, n int
	var added, rebuilt, iters int64
	var reused, stamped, transferred, filtered, pruned int64
	var sharedSteps, freshSteps int
	for _, inst := range benchdata.TableII() {
		if re != nil && !re.MatchString(inst.Name) {
			continue
		}
		f, ok := inst.Function()
		if !ok {
			fmt.Printf("%-10s generator missed profile, skipping\n", inst.Name)
			continue
		}
		isop, dual := minimize.AutoDual(f)
		bs := bounds.All(isop, dual, false)
		bsImp := bounds.All(isop, dual, true)
		oub, nub := bs[0].Size(), bsImp[0].Size()
		lb := bounds.LowerBound(isop, dual, nub)

		var cells []string
		if want["janus"] {
			opt := janus.Options{Workers: *workers, Budget: *budget, Tracer: tracer}
			opt.Encode.Limits = lims
			opt.Encode.CEGAR = *cegar
			opt.EngineSelect = sel
			if *progress {
				fmt.Fprintf(os.Stderr, "tableii: %s\n", inst.Name)
				opt.Progress = janus.NewProgressWriter(os.Stderr)
			}
			r, err := janus.Synthesize(f, opt)
			if err == nil {
				cells = append(cells, fmt.Sprintf("janus %dx%d %.1fs",
					r.Grid.M, r.Grid.N, r.Elapsed.Seconds()))
				sumSize += r.Size
				sumPaper += parseSize(inst.Paper["janus"])
				n++
				added += r.ClausesAdded
				rebuilt += r.ClausesRebuilt
				iters += r.CegarIters
				reused += r.SharedReused
				stamped += r.StampedClauses
				transferred += r.TransferredCEX
				filtered += r.CEXFiltered
				pruned += r.LearntsPruned
				sharedSteps += r.SharedSteps
				freshSteps += r.FreshSteps
				if nub > r.NUB {
					nub = r.NUB // DS may improve on the constructive bounds
				}
			} else {
				cells = append(cells, "janus ERR")
			}
		}
		if want["exact"] {
			r, err := janus.ExactBaseline(f, janus.BaselineOptions{Limits: lims})
			cells = append(cells, cell("exact", r, err))
		}
		if want["approx"] {
			r, err := janus.ApproxBaseline(f, janus.BaselineOptions{Limits: lims})
			cells = append(cells, cell("approx", r, err))
		}
		if want["heur"] {
			r, err := janus.HeuristicBaseline(f, janus.BaselineOptions{Limits: lims})
			cells = append(cells, cell("heur", r, err))
		}
		if want["decomp"] {
			r, err := janus.DecomposeBaseline(f, janus.BaselineOptions{Limits: lims})
			cells = append(cells, cell("decomp", r, err))
		}

		fmt.Printf("%-10s %3d %3d %2d | %4d %4d %4d | %-28s | %d %d %d | j=%s e=%s a=%s h=%s 9=%s\n",
			inst.Name, inst.Inputs, inst.PI, inst.Degree,
			lb, oub, nub, strings.Join(cells, " "),
			inst.PaperLB, inst.PaperOUB, inst.PaperNUB,
			inst.Paper["janus"], inst.Paper["exact"], inst.Paper["approx"],
			inst.Paper["p11"], inst.Paper["p9"])
	}
	if n > 0 {
		fmt.Printf("\nJANUS average switches: measured %.1f vs paper %.1f over %d instances\n",
			float64(sumSize)/float64(n), float64(sumPaper)/float64(n), n)
		fmt.Printf("SAT effort: %s\n", report.Effort(added, rebuilt, iters))
		fmt.Printf("engine policy (%s): %d shared / %d fresh steps\n", sel, sharedSteps, freshSteps)
		if sharedSteps > 0 {
			fmt.Printf("shared solver: %d solver reuses  %d clauses stamped  %d cex clauses transferred  %d cex filtered  %d learnts pruned\n",
				reused, stamped, transferred, filtered, pruned)
		}
		// The rest of the footer reads the process-wide metrics registry,
		// the same data /metrics and expvar serve.
		snap := janus.Metrics()
		rate := func(cache string) string {
			return report.Rate(snap.Get("janus_memo_"+cache+"_hits"),
				snap.Get("janus_memo_"+cache+"_misses"))
		}
		fmt.Printf("memo hit rates: paths %s  tables %s  covers %s\n",
			rate("paths"), rate("tables"), rate("covers"))
		phaseNS := func(phase string) time.Duration {
			return time.Duration(snap.Get("janus_core_phase_" + phase + "_ns_total"))
		}
		fmt.Printf("phase wall-clock: minimize %v  bounds %v  ds %v  search %v\n",
			phaseNS("minimize").Round(10*time.Microsecond),
			phaseNS("bounds").Round(10*time.Microsecond),
			phaseNS("ds").Round(10*time.Microsecond),
			phaseNS("search").Round(10*time.Microsecond))
		fmt.Printf("solver: %s conflicts  %s propagations  %s restarts over %s solves\n",
			report.Count(snap.Get("janus_sat_conflicts_total")),
			report.Count(snap.Get("janus_sat_propagations_total")),
			report.Count(snap.Get("janus_sat_restarts_total")),
			report.Count(snap.Get("janus_sat_solves_total")))
	}
}

func cell(name string, r janus.BaselineResult, err error) string {
	if err != nil || r.Assignment == nil {
		return name + " ERR"
	}
	mark := ""
	if !r.Decided {
		mark = "*" // a SAT budget expired somewhere
	}
	return fmt.Sprintf("%s %dx%d%s %.1fs", name, r.Grid.M, r.Grid.N, mark, r.Elapsed.Seconds())
}

func parseSize(sol string) int {
	var m, n int
	if _, err := fmt.Sscanf(sol, "%dx%d", &m, &n); err != nil {
		return 0
	}
	return m * n
}
