// Command janus synthesizes the functions of a PLA file onto switching
// lattices.
//
// Usage:
//
//	janus [-o N] [-multi] [-cegar] [-portfolio] [-engine MODE] [-conflicts N]
//	      [-timeout D] [-v] [-progress] [-trace FILE] [-debug-addr ADDR] [file.pla]
//
// Without -multi each selected output is synthesized on its own lattice;
// with -multi all outputs are packed onto a single lattice with JANUS-MF.
// Reads standard input when no file is given. -progress prints the live
// anytime stream (bound moves, incumbents, dichotomic steps) to stderr as
// the search runs; -trace writes the synthesis' hierarchical span trace
// as JSONL (aggregate it with cmd/tracesum); -debug-addr serves /metrics
// and /debug/pprof while the run lasts.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/lattice-tools/janus"
)

func main() {
	var (
		outIdx    = flag.Int("o", -1, "synthesize only this output index (default: all)")
		multi     = flag.Bool("multi", false, "realize all outputs on a single lattice (JANUS-MF)")
		cegar     = flag.Bool("cegar", false, "use the CEGAR LM engine")
		portfolio = flag.Bool("portfolio", false, "race the primal and dual orientations of each candidate lattice (implies -cegar)")
		engine    = flag.String("engine", "auto", "LM solver strategy: auto (per-step policy), shared (one assumption-based solver pool), or fresh (per-candidate solvers)")
		shared    = flag.Bool("shared", false, "deprecated: alias for -engine shared (implies -cegar)")
		conflicts = flag.Int64("conflicts", 0, "SAT conflict budget per LM call (0 = unlimited)")
		timeout   = flag.Duration("timeout", 0, "SAT time budget per LM call (0 = unlimited)")
		verbose   = flag.Bool("v", false, "print bounds and search statistics")
		progress  = flag.Bool("progress", false, "print live progress events (bounds, incumbents, steps) to stderr")
		svgPath   = flag.String("svg", "", "write the (first) solution as an SVG drawing to this file")
		tracePath = flag.String("trace", "", "write a JSONL span trace of the synthesis to this file")
		debugAddr = flag.String("debug-addr", "", "serve /metrics and /debug/pprof on this address (e.g. localhost:6060)")
	)
	flag.Parse()

	in := os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	p, err := janus.ParsePLA(in)
	if err != nil {
		fatal(err)
	}

	sel, err := janus.ParseEngineSelect(*engine)
	if err != nil {
		fatal(err)
	}
	if *shared {
		sel = janus.EngineShared
	}

	opt := janus.Options{}
	opt.Encode.Limits = janus.SATLimits{MaxConflicts: *conflicts, Timeout: *timeout}
	opt.Encode.CEGAR = *cegar
	opt.Portfolio = *portfolio
	opt.EngineSelect = sel
	if *progress {
		opt.Progress = janus.NewProgressWriter(os.Stderr)
	}

	if *debugAddr != "" {
		ln, err := janus.ServeDebug(*debugAddr)
		if err != nil {
			fatal(err)
		}
		defer ln.Close()
		fmt.Fprintf(os.Stderr, "janus: debug server on http://%s/metrics\n", ln.Addr())
	}
	if *tracePath != "" {
		tf, err := os.Create(*tracePath)
		if err != nil {
			fatal(err)
		}
		tracer := janus.NewTracer(tf)
		opt.Tracer = tracer
		defer func() {
			if err := tracer.Err(); err != nil {
				fmt.Fprintln(os.Stderr, "janus: trace:", err)
			}
			if err := tf.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "janus: trace:", err)
			}
		}()
	}

	if *multi {
		mr, err := janus.SynthesizeMulti(p.Covers, opt, true)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("multi-function lattice: %s (%d switches, %d LM problems, %v)\n",
			mr.Sol(), mr.Lattice.Size(), mr.LMSolved, mr.Elapsed.Round(time.Millisecond))
		fmt.Println(mr.Lattice.Assignment.Format(p.InputNames))
		return
	}

	for o, cov := range p.Covers {
		if *outIdx >= 0 && o != *outIdx {
			continue
		}
		res, err := janus.Synthesize(cov, opt)
		if err != nil {
			fatal(fmt.Errorf("output %s: %w", p.OutputNames[o], err))
		}
		fmt.Printf("%s: %dx%d (%d switches)\n",
			p.OutputNames[o], res.Grid.M, res.Grid.N, res.Size)
		if *verbose {
			fmt.Printf("  isop: %s\n", res.ISOP.Format(p.InputNames))
			fmt.Printf("  lb=%d oub=%d nub=%d (%s)  LM solved=%d  elapsed=%v  matched-lb=%v\n",
				res.LB, res.OUB, res.NUB, res.UBMethod, res.LMSolved,
				res.Elapsed.Round(time.Millisecond), res.MatchedLB)
			if res.Engine != "" {
				fmt.Printf("  engine: %s (predicted depth %d, %d shared / %d fresh steps)\n",
					res.Engine, res.PredictedDepth, res.SharedSteps, res.FreshSteps)
			}
			if res.SharedSteps > 0 {
				fmt.Printf("  shared: reused=%d stamped=%d cex-transferred=%d cex-filtered=%d learnts-pruned=%d\n",
					res.SharedReused, res.StampedClauses, res.TransferredCEX,
					res.CEXFiltered, res.LearntsPruned)
			}
		}
		fmt.Println(indent(res.Assignment.Format(p.InputNames), "  "))
		if *svgPath != "" {
			f, err := os.Create(*svgPath)
			if err != nil {
				fatal(err)
			}
			if err := res.Assignment.WriteSVG(f, p.InputNames); err != nil {
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote %s\n", *svgPath)
			*svgPath = "" // only the first synthesized output is drawn
		}
	}
}

func indent(s, pad string) string {
	out := pad
	for _, r := range s {
		out += string(r)
		if r == '\n' {
			out += pad
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "janus:", err)
	os.Exit(1)
}
