module github.com/lattice-tools/janus

go 1.22
